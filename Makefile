.PHONY: verify test race lint bench benchdiff fmt

# Tier-1 verify recipe (see ROADMAP.md): gofmt cleanliness, build, vet,
# invariant lint, tests, and race-checked tests for the concurrent
# packages.
verify:
	./scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/eval/... ./internal/exec/... ./internal/obs/... ./internal/pipeline/... ./internal/store/... ./cmd/elfd/...

# lint runs elflint, the module's invariant analyzer (determinism,
# layering, probe gating, context discipline, panic policy, and the
# CFG-based concurrency suite). -timing prints per-check wall-clock to
# stderr so a check that quietly turns quadratic is visible. See
# DESIGN.md §12/§16 and `go run ./cmd/elflint -list`.
lint:
	go run ./cmd/elflint -timing ./...

fmt:
	gofmt -w .

bench:
	go test -bench=. -benchmem

# benchdiff measures the current tree's bench trajectory and compares it
# against the newest checked-in BENCH_*.json (or BASELINE=file). Fails on
# per-cell IPC drift, allocs/cycle growth, or (same host only) a >5%
# geomean throughput regression. See DESIGN.md §17.
benchdiff:
	./scripts/benchdiff.sh $(BASELINE)
