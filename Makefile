.PHONY: verify test race bench

# Tier-1 verify recipe (see ROADMAP.md): build, vet, tests, and
# race-checked tests for the concurrent packages.
verify:
	./scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/eval/...

bench:
	go test -bench=. -benchmem
