.PHONY: verify test race bench fmt

# Tier-1 verify recipe (see ROADMAP.md): gofmt cleanliness, build, vet,
# tests, and race-checked tests for the concurrent packages.
verify:
	./scripts/verify.sh

test:
	go test ./...

race:
	go test -race ./internal/sched/... ./internal/eval/... ./internal/obs/...

fmt:
	gofmt -w .

bench:
	go test -bench=. -benchmem
