package elfetch

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// TestSteadyStateZeroAllocs is the hot-loop memory-discipline contract
// (DESIGN.md §17): after warmup, the cycle loop must not allocate. Every
// per-cycle structure — fetch groups and their uops, the rename queue,
// pending resolutions, prefetches, wheel buckets — is pooled or ring-backed
// and sized from the configuration, so steady state recycles instead of
// growing. testing.AllocsPerRun averages over enough cycles that a rare
// one-off growth event (a cold structure reaching its high-water mark
// late) would still need ~100 allocations to register as nonzero.
func TestSteadyStateZeroAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-config steady-state run")
	}
	base := pipeline.DefaultConfig()
	cases := []struct {
		name     string
		workload string
		cfg      pipeline.Config
	}{
		// The four decode paths of the cycle loop, plus the FAQ-prefetch
		// machinery on the server workload.
		{"dcf", "641.leela_s", base},
		{"nodcf", "641.leela_s", base.NoDCF()},
		{"uelf", "641.leela_s", base.WithVariant(core.UELF)},
		{"lelf", "620.omnetpp_s", base.WithVariant(core.LELF)},
		{"prefetch", "server1_subtest_1", base},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := workload.Lookup(tc.workload)
			if err != nil {
				t.Fatal(err)
			}
			m := pipeline.MustNew(tc.cfg, e.Program())
			m.Run(30_000) // reach steady state: pools primed, rings at depth
			const cycles = 100_000
			allocs := testing.AllocsPerRun(cycles, func() {
				m.Cycle()
			})
			if allocs != 0 {
				t.Errorf("%s/%s: %.2f allocs per cycle in steady state, want 0",
					tc.workload, tc.cfg.Name(), allocs)
			}
		})
	}
}
