// Root benchmark harness: one bench per paper table/figure plus the
// ablation benches called out in DESIGN.md §6. Each bench iteration runs
// the relevant (workload × configuration) cells at laptop scale and reports
// IPC-family metrics via b.ReportMetric, so `go test -bench=. -benchmem`
// regenerates the evaluation's data series in miniature; cmd/elfbench runs
// the full-length versions.
package elfetch

import (
	"context"
	"math"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

const (
	benchWarmup  = 30_000
	benchMeasure = 120_000
)

// benchIPC runs one workload under one config and returns IPC.
func benchIPC(b *testing.B, name string, cfg pipeline.Config) float64 {
	b.Helper()
	e, err := workload.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	r, err := eval.RunOne(context.Background(), e, cfg, eval.Params{Warmup: benchWarmup, Measure: benchMeasure})
	if err != nil {
		b.Fatal(err)
	}
	return r.IPC
}

// benchRelative reports cfg's IPC relative to the DCF baseline for each
// workload, as metric "<workload>:rel".
func benchRelative(b *testing.B, names []string, cfg pipeline.Config) {
	b.Helper()
	base := pipeline.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			d := benchIPC(b, n, base)
			v := benchIPC(b, n, cfg)
			b.ReportMetric(v/d, n+":rel")
		}
	}
}

// figureSubset keeps bench runtime reasonable; cmd/elfbench covers the full
// x-axis.
var figureSubset = []string{
	"641.leela_s", "620.omnetpp_s", "server1_subtest_1", "433.milc", "401.bzip2",
}

// BenchmarkTable1WorkloadRegistry builds every registered workload program
// (the Table I substitution) and reports the registry size.
func BenchmarkTable1WorkloadRegistry(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, e := range workload.All() {
			if e.Program().Len() == 0 {
				b.Fatal("empty program")
			}
			n++
		}
		b.ReportMetric(float64(n), "workloads")
	}
}

// BenchmarkTable2BaselineIPC runs the Table II baseline configuration on
// the figure subset (the denominators of every figure).
func BenchmarkTable2BaselineIPC(b *testing.B) {
	b.ReportAllocs()
	base := pipeline.DefaultConfig()
	for i := 0; i < b.N; i++ {
		for _, n := range figureSubset {
			b.ReportMetric(benchIPC(b, n, base), n+":ipc")
		}
	}
}

// BenchmarkFigure6NoDCF regenerates Figure 6's series: NoDCF IPC relative
// to the DCF baseline.
func BenchmarkFigure6NoDCF(b *testing.B) {
	b.ReportAllocs()
	benchRelative(b, figureSubset, pipeline.DefaultConfig().NoDCF())
}

// BenchmarkFigure7 regenerates Figure 7's series: each limited ELF variant
// relative to DCF.
func BenchmarkFigure7(b *testing.B) {
	b.ReportAllocs()
	for _, v := range []core.Variant{core.LELF, core.RETELF, core.INDELF, core.CONDELF} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			benchRelative(b, figureSubset, pipeline.DefaultConfig().WithVariant(v))
		})
	}
}

// BenchmarkFigure8 regenerates Figure 8's series: L-ELF and U-ELF relative
// IPC plus the avg-coupled-instructions-per-period metric.
func BenchmarkFigure8(b *testing.B) {
	b.ReportAllocs()
	for _, v := range []core.Variant{core.LELF, core.UELF} {
		v := v
		b.Run(v.String(), func(b *testing.B) {
			b.ReportAllocs()
			cfg := pipeline.DefaultConfig().WithVariant(v)
			base := pipeline.DefaultConfig()
			for i := 0; i < b.N; i++ {
				for _, n := range figureSubset {
					e, err := workload.Lookup(n)
					if err != nil {
						b.Fatal(err)
					}
					d, err := eval.RunOne(context.Background(), e, base, eval.Params{Warmup: benchWarmup, Measure: benchMeasure})
					if err != nil {
						b.Fatal(err)
					}
					r, err := eval.RunOne(context.Background(), e, cfg, eval.Params{Warmup: benchWarmup, Measure: benchMeasure})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(r.IPC/d.IPC, n+":rel")
					b.ReportMetric(r.AvgCoupled, n+":cpl/prd")
				}
			}
		})
	}
}

// BenchmarkFigure9Geomean regenerates Figure 9 in miniature: geomean
// speedups of NoDCF / L-ELF / U-ELF over the figure subset.
func BenchmarkFigure9Geomean(b *testing.B) {
	b.ReportAllocs()
	base := pipeline.DefaultConfig()
	cfgs := map[string]pipeline.Config{
		"NoDCF": base.NoDCF(),
		"L-ELF": base.WithVariant(core.LELF),
		"U-ELF": base.WithVariant(core.UELF),
	}
	for i := 0; i < b.N; i++ {
		den := make(map[string]float64)
		for _, n := range figureSubset {
			den[n] = benchIPC(b, n, base)
		}
		for label, cfg := range cfgs {
			prod := 1.0
			for _, n := range figureSubset {
				prod *= benchIPC(b, n, cfg) / den[n]
			}
			geo := pow(prod, 1/float64(len(figureSubset)))
			b.ReportMetric(geo, label+":geomean")
		}
	}
}

func pow(x, y float64) float64 { return math.Pow(x, y) }

// --- Ablation benches (DESIGN.md §6) ---

// ablationPair reports IPC with a design choice on vs off.
func ablationPair(b *testing.B, names []string, on, off pipeline.Config, label string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		for _, n := range names {
			a := benchIPC(b, n, on)
			z := benchIPC(b, n, off)
			b.ReportMetric(a/z, n+":"+label)
		}
	}
}

// BenchmarkAblationCheckpointPolicy compares late-bound coupled checkpoints
// against waiting at the ROB head (Section IV-D1).
func BenchmarkAblationCheckpointPolicy(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig().WithVariant(core.UELF)
	off := on
	off.Ckpt = pipeline.CkptROBHeadWait
	ablationPair(b, []string{"641.leela_s", "401.bzip2"}, on, off, "latebind/robwait")
}

// BenchmarkAblationCondFilter compares COND-ELF with and without the
// saturated-counter speculation filter (Section VI-B).
func BenchmarkAblationCondFilter(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig().WithVariant(core.CONDELF)
	off := on
	off.SatFilter = false
	ablationPair(b, []string{"620.omnetpp_s", "641.leela_s"}, on, off, "filter/nofilter")
}

// BenchmarkAblationFAQPrefetch compares the DCF with and without FAQ-driven
// instruction prefetching (the server-1 mechanism).
func BenchmarkAblationFAQPrefetch(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig()
	off := on
	off.FAQPrefetch = false
	ablationPair(b, []string{"server1_subtest_1"}, on, off, "pf/nopf")
}

// BenchmarkAblationL0BTB compares the DCF with and without its 0-cycle L0
// BTB (the taken-branch-bubble mechanism of Figure 2).
func BenchmarkAblationL0BTB(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig()
	off := on
	off.BTB.L0Entries = 0
	ablationPair(b, []string{"641.leela_s", "437.leslie3d"}, on, off, "l0/nol0")
}

// BenchmarkAblationInterleaveFetch compares fetching across a taken branch
// under the set-interleave condition vs never (Section VI-A / [21]).
func BenchmarkAblationInterleaveFetch(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig()
	off := on
	off.InterleaveFetch = false
	ablationPair(b, []string{"437.leslie3d", "641.leela_s"}, on, off, "ilv/noilv")
}

// BenchmarkAblationCoupledUpdatePolicy compares training the coupled
// predictors on all branches vs only coupled-fetched ones (Section IV-D3).
func BenchmarkAblationCoupledUpdatePolicy(b *testing.B) {
	b.ReportAllocs()
	on := pipeline.DefaultConfig().WithVariant(core.CONDELF)
	off := on
	off.CoupledUpdateAll = false
	ablationPair(b, []string{"641.leela_s", "server1_subtest_1"}, on, off, "all/coupledonly")
}

// BenchmarkSimulatorThroughput measures raw simulation speed (committed
// instructions per wall second) on the baseline.
func BenchmarkSimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	total := uint64(0)
	for i := 0; i < b.N; i++ {
		m := pipeline.MustNew(pipeline.DefaultConfig(), e.Program())
		m.Run(benchMeasure)
		total += benchMeasure
	}
	b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "insts/s")
}

// BenchmarkAblationBoomerang compares the DCF with and without
// predecode-based BTB-miss repair (Section VI-C / Kumar et al. [11]) on the
// BTB-miss-heavy server workload.
func BenchmarkAblationBoomerang(b *testing.B) {
	b.ReportAllocs()
	off := pipeline.DefaultConfig()
	on := off
	on.Boomerang = true
	ablationPair(b, []string{"server1_subtest_1"}, on, off, "boomerang/base")
}

// BenchmarkAblationZeroBubble compares U-ELF with and without the Section
// IV-E sub-cycle coupled redirect.
func BenchmarkAblationZeroBubble(b *testing.B) {
	b.ReportAllocs()
	off := pipeline.DefaultConfig().WithVariant(core.UELF)
	on := off
	on.CoupledZeroBubble = true
	ablationPair(b, []string{"641.leela_s"}, on, off, "zb/base")
}

// BenchmarkAblationCondConfidence compares COND-ELF with and without the
// speculation-confidence filter (the paper's future-work suggestion).
func BenchmarkAblationCondConfidence(b *testing.B) {
	b.ReportAllocs()
	off := pipeline.DefaultConfig().WithVariant(core.CONDELF)
	on := off
	on.CondConfidence = true
	ablationPair(b, []string{"620.omnetpp_s"}, on, off, "conf/base")
}

// BenchmarkSweepFrontDepth reports U-ELF's relative gain at front depths 2
// and 5 — the miniature of the loose-loops sweep (`elfbench -sweep-depth`).
func BenchmarkSweepFrontDepth(b *testing.B) {
	b.ReportAllocs()
	for _, depth := range []int{2, 5} {
		depth := depth
		b.Run(fmtInt(depth), func(b *testing.B) {
			b.ReportAllocs()
			base := pipeline.DefaultConfig()
			base.BPredToFetch = depth
			uelf := base.WithVariant(core.UELF)
			for i := 0; i < b.N; i++ {
				d := benchIPC(b, "641.leela_s", base)
				u := benchIPC(b, "641.leela_s", uelf)
				b.ReportMetric(u/d, "rel")
			}
		})
	}
}

func fmtInt(d int) string { return "depth" + string(rune('0'+d)) }
