// Command elfbench regenerates the paper's evaluation: each figure's data
// series and both tables, over the synthetic workload registry.
//
// Usage:
//
//	elfbench -fig 8                 # one figure (6, 7, 8 or 9)
//	elfbench -all                   # everything
//	elfbench -list                  # Table I (workloads)
//	elfbench -config                # Table II (machine configuration)
//	elfbench -warmup 200000 -insts 800000 -fig 9
//	elfbench -backend fleet -fleet http://w1:8080,http://w2:8080 -fig 6
//
// With -backend fleet, matrix cells are sharded across the elfd workers
// listed in -fleet (each serving POST /v1/cells); the sim core's
// determinism makes the output byte-identical to local execution, and a
// dead fleet degrades to local so the run still completes.
//
// Observability (DESIGN.md §14): -metrics-out dumps the run's metric
// registry in Prometheus text format, -spans-out writes the distributed
// trace of a fleet run as span JSON (render with elfview -spans), and
// -slow-cell-ms flags outlier cells in the flight recorder, which is
// dumped to stderr when a run fails or is interrupted.
//
// -store-dir DIR keeps every cell result in a persistent store
// (DESIGN.md §15): rerunning a figure against the same directory answers
// all of it from disk — a warm restart — and text mode prints the
// per-tier store ledger after the run.
//
// Ctrl-C cancels in-flight simulations promptly (everything runs under a
// signal-aware context). For serving experiments over HTTP, see cmd/elfd.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/obs"
	"elfetch/internal/perf"
	"elfetch/internal/report"
	"elfetch/internal/store"
)

// obsSinks carries the observability plumbing shared by every backend
// variant: one registry, one span log, one flight-recorder ring, plus
// the optional persistent result store.
type obsSinks struct {
	metrics  *obs.Registry
	spans    *obs.SpanLog
	events   *obs.Ring
	slowCell time.Duration
	store    store.Store
}

// buildBackend resolves the -backend/-fleet flags into an execution
// backend ("" or "local" with no fleet = nil: the eval layer's own
// in-process pool, byte-identical output and zero new moving parts).
// needLocal forces a real exec.Local even for -backend local, so the
// observability sinks have a backend to observe; results stay
// byte-identical either way.
func buildBackend(kind, fleet string, parallel int, sinks obsSinks, needLocal bool) (exec.Backend, error) {
	var addrs []string
	for _, a := range strings.Split(fleet, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	switch kind {
	case "", "local":
		if len(addrs) > 0 {
			return nil, fmt.Errorf("-fleet is only meaningful with -backend fleet")
		}
		if needLocal {
			return exec.NewLocal(exec.LocalConfig{
				Workers:  parallel,
				Metrics:  sinks.metrics,
				Events:   sinks.events,
				SlowCell: sinks.slowCell,
				Store:    sinks.store,
			}), nil
		}
		return nil, nil
	case "fleet":
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-backend fleet needs -fleet host1,host2,...")
		}
		return exec.NewFleet(exec.FleetConfig{
			Workers: addrs,
			Fallback: exec.NewLocal(exec.LocalConfig{Workers: parallel,
				Events: sinks.events, SlowCell: sinks.slowCell, Store: sinks.store}),
			Metrics:  sinks.metrics,
			Spans:    sinks.spans,
			Events:   sinks.events,
			SlowCell: sinks.slowCell,
			Store:    sinks.store,
		})
	}
	return nil, fmt.Errorf("unknown backend %q (want local or fleet)", kind)
}

// dumpEvents writes the flight-recorder tail to stderr so a failed or
// interrupted run leaves a post-mortem trail.
func dumpEvents(events *obs.Ring) {
	if events == nil || events.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "flight recorder (%d events recorded, oldest first):\n", events.Total())
	if err := events.WriteJSON(os.Stderr, 0); err != nil {
		fmt.Fprintln(os.Stderr, "flight recorder dump:", err)
	}
	fmt.Fprintln(os.Stderr)
}

// printStoreStats reports the persistent store's per-tier counters after
// a run — the warm-restart ledger: an all-hits/zero-puts second run means
// the store answered everything.
func printStoreStats(w io.Writer, st store.Store) {
	fmt.Fprintln(w, "persistent store:")
	for _, t := range st.Stats() {
		fmt.Fprintf(w, "  %-5s hits=%d misses=%d puts=%d entries=%d bytes=%d",
			t.Tier, t.Hits, t.Misses, t.Puts, t.Entries, t.Bytes)
		if t.Tier == "disk" {
			fmt.Fprintf(w, " segments=%d compactions=%d", t.Segments, t.Compactions)
		}
		if t.Errors > 0 {
			fmt.Fprintf(w, " errors=%d", t.Errors)
		}
		fmt.Fprintln(w)
	}
}

// writeMetricsFile dumps the registry in Prometheus text format.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (6, 7, 8, 9)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	list := flag.Bool("list", false, "print Table I (workload registry)")
	config := flag.Bool("config", false, "print Table II (machine configuration)")
	btbTab := flag.Bool("btb", false, "print per-workload BTB hit rates (Section VI-A)")
	hist := flag.String("hist", "", "print the coupled-period histogram for WORKLOAD:VARIANT (e.g. 641.leela_s:uelf)")
	sweep := flag.Bool("sweep-depth", false, "sweep the BP1→FE depth and report ELF's gain at each (loose-loops experiment)")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations (DESIGN.md §6)")
	sweepFAQ := flag.Bool("sweep-faq", false, "sweep FAQ depth on the server workload (decoupling-depth experiment)")
	format := flag.String("format", "text", "output format for -fig/-ablate: text|csv|json")
	warmup := flag.Uint64("warmup", 200_000, "warmup instructions per run")
	insts := flag.Uint64("insts", 800_000, "measured instructions per run")
	par := flag.Int("parallel", 0, "parallel runs (0 = GOMAXPROCS)")
	backend := flag.String("backend", "local", "execution backend: local or fleet")
	fleet := flag.String("fleet", "", "comma-separated elfd worker base URLs (with -backend fleet)")
	metricsOut := flag.String("metrics-out", "", "write the final metric registry to this file (Prometheus text format)")
	spansOut := flag.String("spans-out", "", "write the fleet run's span log to this file as JSON (needs -backend fleet; render with elfview -spans)")
	slowCellMS := flag.Int("slow-cell-ms", 0, "record a slow_cell flight-recorder event for cells slower than this (0 = off)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = no store); a rerun answers stored cells without re-simulating")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "persistent store quota in bytes (0 = 1 GiB); compaction evicts oldest entries beyond it")
	benchOut := flag.String("bench-out", "", "run the fixed perf suite and write a BENCH_<n>.json trajectory point to this file")
	benchCompare := flag.String("bench-compare", "", "compare two trajectory points as OLD.json,NEW.json; exits 1 on a blocking regression (see make benchdiff)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile at exit to this file")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// Profiling (README "Profiling the simulator"): the CPU profile covers
	// everything from here on; the heap profile snapshots live objects at
	// exit. Both are flushed on the fatal path too.
	stopProfiles := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		stopProfiles = func() {
			pprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "cpuprofile:", err)
			}
		}
	}
	writeHeap := func() {
		if *memProfile == "" {
			return
		}
		f, err := os.Create(*memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
			return
		}
		runtime.GC() // materialise the steady-state live set
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "memprofile:", err)
		}
	}

	p := eval.Params{Warmup: *warmup, Measure: *insts, Parallel: *par}
	sinks := obsSinks{
		metrics:  obs.NewRegistry(),
		spans:    obs.NewSpanLog(0),
		events:   obs.NewRing(0),
		slowCell: time.Duration(*slowCellMS) * time.Millisecond,
	}
	sinks.spans.Seed(uint64(time.Now().UnixNano()))
	flush := func() {
		if *metricsOut != "" {
			if err := writeMetricsFile(*metricsOut, sinks.metrics); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-out:", err)
			}
		}
		stopProfiles()
		writeHeap()
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		dumpEvents(sinks.events)
		flush()
		os.Exit(1)
	}
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := p.Validate(); err != nil {
		usage(err)
	}

	// Bench-trajectory modes are self-contained: they run the fixed perf
	// suite (not the -warmup/-insts figure parameters, so points stay
	// comparable across runs) and exit.
	if *benchOut != "" && *benchCompare != "" {
		usage(fmt.Errorf("-bench-out and -bench-compare are mutually exclusive"))
	}
	if (*benchOut != "" || *benchCompare != "") &&
		(*fig != 0 || *all || *list || *config || *btbTab || *hist != "" || *sweep || *ablate || *sweepFAQ) {
		usage(fmt.Errorf("-bench-out/-bench-compare run the fixed suite and cannot be combined with figure/table modes"))
	}
	if *benchOut != "" {
		rec, err := perf.DefaultSuite().Run(ctx)
		if err != nil {
			fatal(err)
		}
		if err := perf.WriteRecord(*benchOut, rec); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s: geomean %.0f cycles/sec (%.0f insts/sec), %.6f allocs/cycle over %d cells\n",
			*benchOut, rec.CyclesPerSec, rec.InstsPerSec, rec.AllocsPerCycle, len(rec.Cells))
		flush()
		return
	}
	if *benchCompare != "" {
		parts := strings.SplitN(*benchCompare, ",", 2)
		if len(parts) != 2 {
			usage(fmt.Errorf("-bench-compare wants OLD.json,NEW.json"))
		}
		oldRec, err := perf.ReadRecord(parts[0])
		if err != nil {
			fatal(err)
		}
		newRec, err := perf.ReadRecord(parts[1])
		if err != nil {
			fatal(err)
		}
		rep := perf.Compare(oldRec, newRec)
		rep.Write(os.Stdout)
		flush()
		if !rep.OK() {
			os.Exit(1)
		}
		return
	}

	if *spansOut != "" && *backend != "fleet" {
		usage(fmt.Errorf("-spans-out needs -backend fleet (only fleet dispatch records spans)"))
	}
	if *storeDir != "" {
		d, err := store.Open(store.DiskConfig{
			Dir:      *storeDir,
			MaxBytes: *storeMaxBytes,
			Metrics:  sinks.metrics,
			Events:   sinks.events,
		})
		if err != nil {
			fatal(err)
		}
		sinks.store = d
		defer d.Close()
	}
	needLocal := *metricsOut != "" || *slowCellMS > 0 || sinks.store != nil
	be, err := buildBackend(*backend, *fleet, *par, sinks, needLocal)
	if err != nil {
		usage(err)
	}
	var root *obs.Span
	if be != nil {
		p.Runner = be
		// One root span per invocation: every fleet dispatch becomes part
		// of a single stitched trace (DESIGN.md §14).
		root = sinks.spans.StartSpan(nil, "grid")
		root.SetAttr("cmd", "elfbench")
		ctx = obs.ContextWithSpan(ctx, root)
		defer func() {
			st := be.Stats()
			if b, err := json.Marshal(st); err == nil {
				fmt.Fprintf(os.Stderr, "backend stats: %s\n", b)
			}
			be.Close()
		}()
	}
	fmtOut, err := report.ParseFormat(*format)
	if err != nil {
		usage(err)
	}

	// timed gates the trailing wall-clock chatter on text output, so CSV
	// and JSON stay machine-parseable.
	timed := func(f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		if fmtOut == report.Text {
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
		return nil
	}

	ran := false
	if *list || *all {
		if err := eval.Table1(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *config || *all {
		if err := eval.Table2(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *btbTab {
		if err := eval.TableBTB(ctx, os.Stdout, p); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *hist != "" {
		parts := strings.SplitN(*hist, ":", 2)
		if len(parts) != 2 {
			usage(fmt.Errorf("-hist wants WORKLOAD:VARIANT"))
		}
		v, err := core.ParseVariant(parts[1])
		if err != nil {
			usage(err)
		}
		if err := eval.PeriodHistogram(ctx, os.Stdout, parts[0], v, p); err != nil {
			fatal(err)
		}
		ran = true
	}
	runFig := func(n int) {
		err := timed(func() error {
			t, _, err := eval.FigureTable(ctx, n, p)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout, fmtOut)
		})
		if err != nil {
			fatal(err)
		}
		ran = true
	}
	if *ablate {
		err := timed(func() error {
			t, err := eval.AblationTable(ctx, p)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout, fmtOut)
		})
		if err != nil {
			fatal(err)
		}
		ran = true
	}
	if *sweepFAQ {
		if err := eval.SweepFAQ(ctx, os.Stdout, p, nil, ""); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *sweep {
		if err := timed(func() error {
			return eval.SweepFrontDepth(ctx, os.Stdout, p, nil, nil)
		}); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *fig != 0 {
		runFig(*fig)
	}
	if *all {
		for _, n := range []int{6, 7, 8, 9} {
			runFig(n)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if sinks.store != nil && fmtOut == report.Text {
		printStoreStats(os.Stdout, sinks.store)
	}
	if root != nil {
		root.Finish()
	}
	if *spansOut != "" {
		f, err := os.Create(*spansOut)
		if err != nil {
			fatal(err)
		}
		if err := obs.WriteSpansJSON(f, sinks.spans.Snapshot()); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote spans to %s (render with elfview -spans %s -chrome out.json)\n",
			*spansOut, *spansOut)
	}
	flush()
}
