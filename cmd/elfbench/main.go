// Command elfbench regenerates the paper's evaluation: each figure's data
// series and both tables, over the synthetic workload registry.
//
// Usage:
//
//	elfbench -fig 8                 # one figure (6, 7, 8 or 9)
//	elfbench -all                   # everything
//	elfbench -list                  # Table I (workloads)
//	elfbench -config                # Table II (machine configuration)
//	elfbench -warmup 200000 -insts 800000 -fig 9
//	elfbench -backend fleet -fleet http://w1:8080,http://w2:8080 -fig 6
//
// With -backend fleet, matrix cells are sharded across the elfd workers
// listed in -fleet (each serving POST /v1/cells); the sim core's
// determinism makes the output byte-identical to local execution, and a
// dead fleet degrades to local so the run still completes.
//
// Ctrl-C cancels in-flight simulations promptly (everything runs under a
// signal-aware context). For serving experiments over HTTP, see cmd/elfd.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/report"
)

// buildBackend resolves the -backend/-fleet flags into an execution
// backend ("" or "local" with no fleet = nil: the eval layer's own
// in-process pool, byte-identical output and zero new moving parts).
func buildBackend(kind, fleet string, parallel int) (exec.Backend, error) {
	var addrs []string
	for _, a := range strings.Split(fleet, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	switch kind {
	case "", "local":
		if len(addrs) > 0 {
			return nil, fmt.Errorf("-fleet is only meaningful with -backend fleet")
		}
		return nil, nil
	case "fleet":
		if len(addrs) == 0 {
			return nil, fmt.Errorf("-backend fleet needs -fleet host1,host2,...")
		}
		return exec.NewFleet(exec.FleetConfig{
			Workers:  addrs,
			Fallback: exec.NewLocal(exec.LocalConfig{Workers: parallel}),
		})
	}
	return nil, fmt.Errorf("unknown backend %q (want local or fleet)", kind)
}

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (6, 7, 8, 9)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	list := flag.Bool("list", false, "print Table I (workload registry)")
	config := flag.Bool("config", false, "print Table II (machine configuration)")
	btbTab := flag.Bool("btb", false, "print per-workload BTB hit rates (Section VI-A)")
	hist := flag.String("hist", "", "print the coupled-period histogram for WORKLOAD:VARIANT (e.g. 641.leela_s:uelf)")
	sweep := flag.Bool("sweep-depth", false, "sweep the BP1→FE depth and report ELF's gain at each (loose-loops experiment)")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations (DESIGN.md §6)")
	sweepFAQ := flag.Bool("sweep-faq", false, "sweep FAQ depth on the server workload (decoupling-depth experiment)")
	format := flag.String("format", "text", "output format for -fig/-ablate: text|csv|json")
	warmup := flag.Uint64("warmup", 200_000, "warmup instructions per run")
	insts := flag.Uint64("insts", 800_000, "measured instructions per run")
	par := flag.Int("parallel", 0, "parallel runs (0 = GOMAXPROCS)")
	backend := flag.String("backend", "local", "execution backend: local or fleet")
	fleet := flag.String("fleet", "", "comma-separated elfd worker base URLs (with -backend fleet)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := eval.Params{Warmup: *warmup, Measure: *insts, Parallel: *par}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	usage := func(err error) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if err := p.Validate(); err != nil {
		usage(err)
	}
	be, err := buildBackend(*backend, *fleet, *par)
	if err != nil {
		usage(err)
	}
	if be != nil {
		p.Runner = be
		defer func() {
			st := be.Stats()
			if b, err := json.Marshal(st); err == nil {
				fmt.Fprintf(os.Stderr, "backend stats: %s\n", b)
			}
			be.Close()
		}()
	}
	fmtOut, err := report.ParseFormat(*format)
	if err != nil {
		usage(err)
	}

	// timed gates the trailing wall-clock chatter on text output, so CSV
	// and JSON stay machine-parseable.
	timed := func(f func() error) error {
		start := time.Now()
		if err := f(); err != nil {
			return err
		}
		if fmtOut == report.Text {
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
		return nil
	}

	ran := false
	if *list || *all {
		if err := eval.Table1(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *config || *all {
		if err := eval.Table2(os.Stdout); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *btbTab {
		if err := eval.TableBTB(ctx, os.Stdout, p); err != nil {
			fatal(err)
		}
		fmt.Println()
		ran = true
	}
	if *hist != "" {
		parts := strings.SplitN(*hist, ":", 2)
		if len(parts) != 2 {
			usage(fmt.Errorf("-hist wants WORKLOAD:VARIANT"))
		}
		v, err := core.ParseVariant(parts[1])
		if err != nil {
			usage(err)
		}
		if err := eval.PeriodHistogram(ctx, os.Stdout, parts[0], v, p); err != nil {
			fatal(err)
		}
		ran = true
	}
	runFig := func(n int) {
		err := timed(func() error {
			t, _, err := eval.FigureTable(ctx, n, p)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout, fmtOut)
		})
		if err != nil {
			fatal(err)
		}
		ran = true
	}
	if *ablate {
		err := timed(func() error {
			t, err := eval.AblationTable(ctx, p)
			if err != nil {
				return err
			}
			return t.Write(os.Stdout, fmtOut)
		})
		if err != nil {
			fatal(err)
		}
		ran = true
	}
	if *sweepFAQ {
		if err := eval.SweepFAQ(ctx, os.Stdout, p, nil, ""); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *sweep {
		if err := timed(func() error {
			return eval.SweepFrontDepth(ctx, os.Stdout, p, nil, nil)
		}); err != nil {
			fatal(err)
		}
		ran = true
	}
	if *fig != 0 {
		runFig(*fig)
	}
	if *all {
		for _, n := range []int{6, 7, 8, 9} {
			runFig(n)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
