// Command elfbench regenerates the paper's evaluation: each figure's data
// series and both tables, over the synthetic workload registry.
//
// Usage:
//
//	elfbench -fig 8                 # one figure (6, 7, 8 or 9)
//	elfbench -all                   # everything
//	elfbench -list                  # Table I (workloads)
//	elfbench -config                # Table II (machine configuration)
//	elfbench -warmup 200000 -insts 800000 -fig 9
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/report"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (6, 7, 8, 9)")
	all := flag.Bool("all", false, "regenerate every figure and table")
	list := flag.Bool("list", false, "print Table I (workload registry)")
	config := flag.Bool("config", false, "print Table II (machine configuration)")
	btbTab := flag.Bool("btb", false, "print per-workload BTB hit rates (Section VI-A)")
	hist := flag.String("hist", "", "print the coupled-period histogram for WORKLOAD:VARIANT (e.g. 641.leela_s:uelf)")
	sweep := flag.Bool("sweep-depth", false, "sweep the BP1→FE depth and report ELF's gain at each (loose-loops experiment)")
	ablate := flag.Bool("ablate", false, "run the design-choice ablations (DESIGN.md §6)")
	sweepFAQ := flag.Bool("sweep-faq", false, "sweep FAQ depth on the server workload (decoupling-depth experiment)")
	format := flag.String("format", "text", "output format for -fig: text|csv|json")
	warmup := flag.Uint64("warmup", 200_000, "warmup instructions per run")
	insts := flag.Uint64("insts", 800_000, "measured instructions per run")
	par := flag.Int("parallel", 0, "parallel runs (0 = GOMAXPROCS)")
	flag.Parse()

	p := eval.Params{Warmup: *warmup, Measure: *insts, Parallel: *par}

	ran := false
	if *list || *all {
		eval.Table1(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *config || *all {
		eval.Table2(os.Stdout)
		fmt.Println()
		ran = true
	}
	if *btbTab {
		eval.TableBTB(os.Stdout, p)
		fmt.Println()
		ran = true
	}
	if *hist != "" {
		parts := strings.SplitN(*hist, ":", 2)
		if len(parts) != 2 {
			fmt.Fprintln(os.Stderr, "-hist wants WORKLOAD:VARIANT")
			os.Exit(2)
		}
		v, ok := map[string]core.Variant{
			"lelf": core.LELF, "retelf": core.RETELF, "indelf": core.INDELF,
			"condelf": core.CONDELF, "uelf": core.UELF,
		}[strings.ToLower(parts[1])]
		if !ok {
			fmt.Fprintln(os.Stderr, "unknown variant", parts[1])
			os.Exit(2)
		}
		if err := eval.PeriodHistogram(os.Stdout, parts[0], v, p); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		ran = true
	}
	fmtOut := report.Format(*format)
	runFig := func(n int) {
		start := time.Now()
		switch {
		case n == 9:
			// Figure 9 aggregates internally; text only.
			eval.Figure9(os.Stdout, p)
		case n >= 6 && n <= 8:
			var t *report.Table
			switch n {
			case 6:
				t, _ = eval.Figure6Table(p)
			case 7:
				t, _ = eval.Figure7Table(p)
			case 8:
				t, _ = eval.Figure8Table(p)
			}
			if err := t.Write(os.Stdout, fmtOut); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		default:
			fmt.Fprintf(os.Stderr, "unknown figure %d (want 6-9)\n", n)
			os.Exit(2)
		}
		if fmtOut == report.Text {
			fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		}
		ran = true
	}
	if *ablate {
		start := time.Now()
		if err := eval.AblationTable(p).Write(os.Stdout, fmtOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		ran = true
	}
	if *sweepFAQ {
		if err := eval.SweepFAQ(os.Stdout, p, nil, ""); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ran = true
	}
	if *sweep {
		start := time.Now()
		eval.SweepFrontDepth(os.Stdout, p, nil, nil)
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
		ran = true
	}
	if *fig != 0 {
		runFig(*fig)
	}
	if *all {
		for _, n := range []int{6, 7, 8, 9} {
			runFig(n)
		}
	}
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
