package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"elfetch/internal/eval"
	"elfetch/internal/pipeline"
	"elfetch/internal/sched"
)

// envelope pulls the error envelope out of a decoded response, failing
// the test if the shape is wrong.
func envelope(t *testing.T, decoded map[string]any) (code, message string) {
	t.Helper()
	e, ok := decoded["error"].(map[string]any)
	if !ok {
		t.Fatalf("no error envelope in %v", decoded)
	}
	code, _ = e["code"].(string)
	message, _ = e["message"].(string)
	if code == "" || message == "" {
		t.Fatalf("envelope missing code/message: %v", e)
	}
	return code, message
}

// TestErrorEnvelope drives every handler failure path and asserts the
// uniform {"error":{"code","message","detail"}} body.
func TestErrorEnvelope(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		name     string
		method   string
		target   string
		body     any
		status   int
		wantCode string
	}{
		{"submit bad json", "POST", "/v1/jobs", "not json", http.StatusBadRequest, "bad_request"},
		{"submit unknown kind", "POST", "/v1/jobs",
			map[string]any{"kind": "nope"}, http.StatusBadRequest, "bad_request"},
		{"submit no workload", "POST", "/v1/jobs",
			map[string]any{}, http.StatusBadRequest, "bad_request"},
		{"submit unknown workload", "POST", "/v1/jobs",
			map[string]any{"workload": "nope"}, http.StatusNotFound, "not_found"},
		{"submit unknown variant", "POST", "/v1/jobs",
			map[string]any{"workload": "641.leela_s", "variant": "nope"},
			http.StatusBadRequest, "bad_request"},
		{"submit bad figure", "POST", "/v1/jobs",
			map[string]any{"kind": "figure", "figure": 5}, http.StatusBadRequest, "bad_request"},
		{"submit trace on figure", "POST", "/v1/jobs",
			map[string]any{"kind": "figure", "figure": 6, "trace": true},
			http.StatusBadRequest, "bad_request"},
		{"job status unknown id", "GET", "/v1/jobs/j999999", nil, http.StatusNotFound, "not_found"},
		{"job trace unknown id", "GET", "/v1/jobs/j999999/trace", nil, http.StatusNotFound, "not_found"},
		{"cancel unknown id", "DELETE", "/v1/jobs/j999999", nil, http.StatusNotFound, "not_found"},
		{"figure not a number", "GET", "/v1/figures/abc", nil, http.StatusBadRequest, "bad_request"},
		{"figure out of range", "GET", "/v1/figures/5", nil, http.StatusBadRequest, "bad_request"},
		{"figure bad format", "GET", "/v1/figures/6?format=nope", nil, http.StatusBadRequest, "bad_request"},
		{"figure bad warmup", "GET", "/v1/figures/6?warmup=x", nil, http.StatusBadRequest, "bad_request"},
		{"cell bad json", "POST", "/v1/cells", "not json", http.StatusBadRequest, "bad_request"},
		{"cell empty", "POST", "/v1/cells", map[string]any{}, http.StatusBadRequest, "bad_request"},
		{"cell unknown field", "POST", "/v1/cells",
			map[string]any{"bogus": 1}, http.StatusBadRequest, "bad_request"},
		{"cell unknown workload", "POST", "/v1/cells",
			eval.Cell{Workload: "nope", Config: pipeline.DefaultConfig(), Measure: 1000},
			http.StatusNotFound, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec, decoded := doJSON(t, srv, tc.method, tc.target, tc.body)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d: %s", rec.Code, tc.status, rec.Body.String())
			}
			code, _ := envelope(t, decoded)
			if code != tc.wantCode {
				t.Errorf("code %q, want %q (%s)", code, tc.wantCode, rec.Body.String())
			}
		})
	}
}

// TestWriteErrClassification covers the sentinel-driven envelope codes the
// handler table can't reach deterministically (queue pressure, shutdown,
// cancellation, plain internal errors).
func TestWriteErrClassification(t *testing.T) {
	cases := []struct {
		name     string
		err      error
		status   int
		wantCode string
	}{
		{"queue full", sched.ErrQueueFull, http.StatusServiceUnavailable, "queue_full"},
		{"shutting down", sched.ErrShutdown, http.StatusServiceUnavailable, "shutting_down"},
		{"canceled", context.Canceled, http.StatusConflict, "canceled"},
		{"plain error", errors.New("boom"), http.StatusInternalServerError, "internal"},
		{"wrapped queue full", errors.Join(errors.New("ctx"), sched.ErrQueueFull),
			http.StatusServiceUnavailable, "queue_full"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			writeErr(rec, httptest.NewRequest("GET", "/", nil), tc.err)
			if rec.Code != tc.status {
				t.Fatalf("status %d, want %d", rec.Code, tc.status)
			}
			var decoded map[string]any
			if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
				t.Fatalf("body not JSON: %v\n%s", err, rec.Body.String())
			}
			code, msg := envelope(t, decoded)
			if code != tc.wantCode {
				t.Errorf("code %q, want %q", code, tc.wantCode)
			}
			if msg == "" {
				t.Error("empty message")
			}
		})
	}
}

func TestHealthzEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	rec, body := doJSON(t, srv, "GET", "/v1/healthz", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if body["status"] != "ok" {
		t.Fatalf("healthz body: %v", body)
	}
}

func TestCellEndpoint(t *testing.T) {
	srv, s := testServer(t)
	cell := eval.Cell{
		Workload: "641.leela_s",
		Config:   pipeline.DefaultConfig(),
		Warmup:   1_000,
		Measure:  4_000,
	}
	rec, body := doJSON(t, srv, "POST", "/v1/cells", cell)
	if rec.Code != http.StatusOK {
		t.Fatalf("cell: %d %s", rec.Code, rec.Body.String())
	}
	if body["workload"] != "641.leela_s" || body["config"] != "DCF" {
		t.Fatalf("result identity: %v", body)
	}
	if ipc, _ := body["ipc"].(float64); ipc <= 0 {
		t.Fatalf("implausible IPC: %v", body)
	}

	// Identical cell again: content-addressed, so it must be a cache hit.
	rec2, _ := doJSON(t, srv, "POST", "/v1/cells", cell)
	if rec2.Code != http.StatusOK {
		t.Fatalf("repeat cell: %d %s", rec2.Code, rec2.Body.String())
	}
	if rec.Body.String() != rec2.Body.String() {
		t.Fatalf("repeat cell differs:\n%s\nvs\n%s", rec.Body.String(), rec2.Body.String())
	}
	if hits := s.Stats().Cache.Hits; hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}
}
