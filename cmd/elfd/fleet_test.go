package main

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/report"
	"elfetch/internal/workload"
)

// fleetWorker boots a full in-process elfd (scheduler + HTTP surface)
// behind httptest — a real worker, not a stub.
func fleetWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := testServer(t)
	ws := httptest.NewServer(srv)
	t.Cleanup(ws.Close)
	return ws
}

// figure6Text renders the Figure 6 grid through p as canonical text.
func figure6Text(t *testing.T, p eval.Params) string {
	t.Helper()
	tab, res, err := eval.Figure6Table(context.Background(), p)
	if err != nil {
		t.Fatalf("Figure6Table: %v", err)
	}
	want := 2 * len(workload.FigureSet())
	if len(res) != want {
		t.Fatalf("grid has %d cells, want %d", len(res), want)
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf, report.Text); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fleetParams keeps the end-to-end grid fast: the full 20-workload
// Figure 6 grid at short run lengths.
func fleetParams() eval.Params {
	return eval.Params{Warmup: 1_000, Measure: 4_000, Parallel: 4}
}

// TestFleetFigure6ByteIdentical is the tentpole acceptance test: the
// Figure 6 grid sharded across three real in-process elfd workers must
// render byte-identically to the local backend.
func TestFleetFigure6ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	local := figure6Text(t, fleetParams())

	addrs := []string{fleetWorker(t).URL, fleetWorker(t).URL, fleetWorker(t).URL}
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{}),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	p := fleetParams()
	p.Runner = f
	fleet := figure6Text(t, p)
	if fleet != local {
		t.Fatalf("fleet output differs from local:\n--- fleet ---\n%s\n--- local ---\n%s", fleet, local)
	}

	st := f.Stats()
	if st.Fallback != 0 {
		t.Fatalf("healthy fleet used the fallback %d times", st.Fallback)
	}
	for _, w := range st.Workers {
		if w.Dispatched == 0 {
			t.Errorf("worker %s never dispatched: %+v", w.Addr, st.Workers)
		}
	}
}

// TestFleetSurvivesWorkerDeathMidRun kills one of three workers after it
// has served a couple of cells: the grid must still complete, still
// byte-identical, via quarantine and requeue.
func TestFleetSurvivesWorkerDeathMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	local := figure6Text(t, fleetParams())

	// Worker 0 dies after serving two cells: subsequent connections are
	// hijacked and slammed shut, which the fleet sees as a network error.
	mortalSrv, _ := testServer(t)
	var served atomic.Int64
	var dead atomic.Bool
	mortal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/v1/cells" && served.Add(1) >= 2 {
			dead.Store(true) // die after this cell
		}
		mortalSrv.ServeHTTP(w, r)
	}))
	t.Cleanup(mortal.Close)

	addrs := []string{mortal.URL, fleetWorker(t).URL, fleetWorker(t).URL}
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{}),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	p := fleetParams()
	p.Runner = f
	fleet := figure6Text(t, p)
	if fleet != local {
		t.Fatalf("fleet output differs from local after worker death:\n--- fleet ---\n%s\n--- local ---\n%s",
			fleet, local)
	}

	st := f.Stats()
	var mortalWS *exec.WorkerStats
	for i := range st.Workers {
		if st.Workers[i].Addr == mortal.URL {
			mortalWS = &st.Workers[i]
		}
	}
	if mortalWS == nil {
		t.Fatalf("mortal worker missing from stats: %+v", st.Workers)
	}
	if mortalWS.Healthy {
		t.Error("dead worker still marked healthy")
	}
	if mortalWS.Requeued == 0 {
		t.Errorf("expected requeues off the dead worker: %+v", mortalWS)
	}
	if st.Failed != 0 {
		t.Errorf("cells failed despite requeue: %+v", st)
	}
}
