package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/report"
	"elfetch/internal/workload"
)

// fleetWorker boots a full in-process elfd (scheduler + HTTP surface)
// behind httptest — a real worker, not a stub.
func fleetWorker(t *testing.T) *httptest.Server {
	t.Helper()
	srv, _ := testServer(t)
	ws := httptest.NewServer(srv)
	t.Cleanup(ws.Close)
	return ws
}

// figure6Text renders the Figure 6 grid through p as canonical text.
func figure6Text(t *testing.T, p eval.Params) string {
	t.Helper()
	tab, res, err := eval.Figure6Table(context.Background(), p)
	if err != nil {
		t.Fatalf("Figure6Table: %v", err)
	}
	want := 2 * len(workload.FigureSet())
	if len(res) != want {
		t.Fatalf("grid has %d cells, want %d", len(res), want)
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf, report.Text); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// fleetParams keeps the end-to-end grid fast: the full 20-workload
// Figure 6 grid at short run lengths.
func fleetParams() eval.Params {
	return eval.Params{Warmup: 1_000, Measure: 4_000, Parallel: 4}
}

// TestFleetFigure6ByteIdentical is the tentpole acceptance test: the
// Figure 6 grid sharded across three real in-process elfd workers must
// render byte-identically to the local backend.
func TestFleetFigure6ByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	local := figure6Text(t, fleetParams())

	addrs := []string{fleetWorker(t).URL, fleetWorker(t).URL, fleetWorker(t).URL}
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{}),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	p := fleetParams()
	p.Runner = f
	fleet := figure6Text(t, p)
	if fleet != local {
		t.Fatalf("fleet output differs from local:\n--- fleet ---\n%s\n--- local ---\n%s", fleet, local)
	}

	st := f.Stats()
	if st.Fallback != 0 {
		t.Fatalf("healthy fleet used the fallback %d times", st.Fallback)
	}
	for _, w := range st.Workers {
		if w.Dispatched == 0 {
			t.Errorf("worker %s never dispatched: %+v", w.Addr, st.Workers)
		}
	}
}

// TestWorkerRequestIDAndTraceRoundTrip asserts the worker side of the
// per-attempt identifiers the fleet coordinator sends: an incoming
// X-Request-ID and traceparent are echoed back on the response (success
// and error alike), and a request without an id gets a generated one.
func TestWorkerRequestIDAndTraceRoundTrip(t *testing.T) {
	srv, _ := testServer(t)
	const (
		reqID       = "0102030405060708"
		traceparent = "00-0102030405060708090a0b0c0d0e0f10-0102030405060708-01"
	)

	req := httptest.NewRequest("GET", "/v1/healthz", nil)
	req.Header.Set("X-Request-ID", reqID)
	req.Header.Set("Traceparent", traceparent)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if got := rec.Header().Get("X-Request-ID"); got != reqID {
		t.Errorf("X-Request-ID round-trip: got %q, want %q", got, reqID)
	}
	if got := rec.Header().Get("Traceparent"); got != traceparent {
		t.Errorf("traceparent round-trip: got %q, want %q", got, traceparent)
	}

	// Error responses keep the identifiers too, and the envelope names the
	// trace so a failed dispatch is greppable from either side.
	req = httptest.NewRequest("POST", "/v1/cells", bytes.NewReader([]byte("not json")))
	req.Header.Set("X-Request-ID", reqID)
	req.Header.Set("Traceparent", traceparent)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad cell: %d", rec.Code)
	}
	if got := rec.Header().Get("X-Request-ID"); got != reqID {
		t.Errorf("error X-Request-ID round-trip: got %q, want %q", got, reqID)
	}
	var decoded map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
		t.Fatalf("envelope not JSON: %v", err)
	}
	env, _ := decoded["error"].(map[string]any)
	if tr, _ := env["trace"].(string); tr != "0102030405060708090a0b0c0d0e0f10" {
		t.Errorf("error envelope trace = %q, want the traceparent's trace id", env["trace"])
	}

	// No incoming id: the worker mints one.
	req = httptest.NewRequest("GET", "/v1/healthz", nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID generated for an anonymous request")
	}
}

// TestFleetSurvivesWorkerDeathMidRun kills one of three workers after it
// has served a couple of cells: the grid must still complete, still
// byte-identical, via quarantine and requeue.
func TestFleetSurvivesWorkerDeathMidRun(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	local := figure6Text(t, fleetParams())

	// Worker 0 dies after serving two cells: subsequent connections are
	// hijacked and slammed shut, which the fleet sees as a network error.
	mortalSrv, _ := testServer(t)
	var served atomic.Int64
	var dead atomic.Bool
	mortal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/v1/cells" && served.Add(1) >= 2 {
			dead.Store(true) // die after this cell
		}
		mortalSrv.ServeHTTP(w, r)
	}))
	t.Cleanup(mortal.Close)

	addrs := []string{mortal.URL, fleetWorker(t).URL, fleetWorker(t).URL}
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{}),
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	p := fleetParams()
	p.Runner = f
	fleet := figure6Text(t, p)
	if fleet != local {
		t.Fatalf("fleet output differs from local after worker death:\n--- fleet ---\n%s\n--- local ---\n%s",
			fleet, local)
	}

	st := f.Stats()
	var mortalWS *exec.WorkerStats
	for i := range st.Workers {
		if st.Workers[i].Addr == mortal.URL {
			mortalWS = &st.Workers[i]
		}
	}
	if mortalWS == nil {
		t.Fatalf("mortal worker missing from stats: %+v", st.Workers)
	}
	if mortalWS.Healthy {
		t.Error("dead worker still marked healthy")
	}
	if mortalWS.Requeued == 0 {
		t.Errorf("expected requeues off the dead worker: %+v", mortalWS)
	}
	if st.Failed != 0 {
		t.Errorf("cells failed despite requeue: %+v", st)
	}
}
