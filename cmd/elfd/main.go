// Command elfd serves the simulator over HTTP/JSON: a
// simulation-as-a-service daemon with a bounded job scheduler and a
// content-addressed result cache, so many clients can drive experiments
// concurrently and repeated requests are answered without re-simulating.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a run/figure/sweep (?wait=1 blocks)
//	GET    /v1/jobs/{id}       job status and result
//	GET    /v1/jobs/{id}/trace Chrome trace JSON of a traced run
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/workloads       the workload registry
//	GET    /v1/figures/{6..9}  run or fetch a figure matrix (?format=...)
//	POST   /v1/cells           run one evaluation cell (fleet worker endpoint)
//	GET    /v1/cells/{key}     fetch one stored cell result (peer-fill endpoint)
//	GET    /v1/healthz         liveness probe for fleet coordinators
//	GET    /metrics            Prometheus text exposition (fleet view on a coordinator)
//	GET    /debug/stats        scheduler/cache/throughput metrics
//	GET    /debug/events       flight-recorder dump (?n= bounds it)
//	GET    /debug/trace        span log (?format=json|chrome, &canonical=1)
//	GET    /debug/vars         raw expvar dump
//	GET    /debug/pprof/...    Go profiling (with -pprof)
//
// Usage:
//
//	elfd -addr :8080 -workers 8 -queue 128 -job-timeout 5m \
//	     -log-level info -log-format text -pprof
//
// Coordinator mode: -fleet http://w1:8080,http://w2:8080 shards figure
// and sweep matrix cells across the listed elfd workers (each serving
// POST /v1/cells), falling back to local execution when the whole fleet
// is unreachable. The coordinator also federates worker metrics (scraped
// every -federate-interval) into its own /metrics and stitches every
// dispatch into a distributed trace on /debug/trace. See DESIGN.md §13
// and §14.
//
// Persistent store: -store-dir DIR keeps cell results on disk, so a
// restarted elfd answers previously simulated cells without re-running
// them; -store-max-bytes bounds it. -peer URL makes this worker consult
// another elfd's GET /v1/cells/{key} before simulating (combined with
// -store-dir, peer hits land on the local disk). See DESIGN.md §15.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/obs"
	"elfetch/internal/sched"
	"elfetch/internal/store"
)

// buildStore assembles the persistent result store from the CLI flags:
// a disk tier under dir, optionally layered over a peer tier (reads
// promote peer hits into the local disk). Returns nil when no flag asks
// for one.
func buildStore(dir string, maxBytes int64, peer string, reg *obs.Registry, events *obs.Ring, logger *slog.Logger) (store.Store, error) {
	var st store.Store
	if dir != "" {
		d, err := store.Open(store.DiskConfig{
			Dir:      dir,
			MaxBytes: maxBytes,
			Metrics:  reg,
			Events:   events,
			Logger:   logger,
		})
		if err != nil {
			return nil, err
		}
		st = d
	}
	if peer != "" {
		p, err := store.NewPeer(store.PeerConfig{Base: peer, Metrics: reg})
		if err != nil {
			if st != nil {
				st.Close()
			}
			return nil, err
		}
		if st != nil {
			st = store.NewTiered(st, p)
		} else {
			st = p
		}
	}
	return st, nil
}

// splitFleet parses the -fleet flag into worker base URLs.
func splitFleet(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// buildLogger assembles the process logger from the CLI flags.
func buildLogger(level, format string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "", "info":
		lv = slog.LevelInfo
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "max queued jobs before submits fail fast")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job runtime ceiling (0 = none)")
	cacheSize := flag.Int("cache", 512, "result cache entries")
	warmup := flag.Uint64("warmup", 200_000, "default warmup instructions per run")
	insts := flag.Uint64("insts", 800_000, "default measured instructions per run")
	logLevel := flag.String("log-level", "info", "log level: debug, info, warn or error")
	logFormat := flag.String("log-format", "text", "log format: text or json")
	pprofOn := flag.Bool("pprof", false, "serve Go profiling under /debug/pprof/")
	fleet := flag.String("fleet", "", "comma-separated worker base URLs; shard matrix cells across them (coordinator mode)")
	federateInterval := flag.Duration("federate-interval", 10*time.Second, "coordinator scrape cadence for worker /metrics federation")
	slowCellMS := flag.Int("slow-cell-ms", 0, "record a slow_cell flight-recorder event for cells slower than this (0 = off)")
	eventsSize := flag.Int("events", 0, "flight-recorder ring size (0 = 4096)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = no store); restarts answer stored cells without re-simulating")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "persistent store quota in bytes (0 = 1 GiB); compaction evicts oldest entries beyond it")
	peer := flag.String("peer", "", "peer elfd base URL to read-through before simulating (e.g. the coordinator); combined with -store-dir, peer hits land on the local disk")
	flag.Parse()

	logger, err := buildLogger(*logLevel, *logFormat)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elfd:", err)
		os.Exit(2)
	}
	slog.SetDefault(logger)

	defaults := eval.Params{Warmup: *warmup, Measure: *insts}
	if err := defaults.Validate(); err != nil {
		logger.Error("bad default params", "err", err)
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	s := sched.New(sched.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  *cacheSize,
		Metrics:    reg,
	})
	// Flight recorder and span log: shared between the HTTP surface
	// (/debug/events, /debug/trace) and the execution backend. The span
	// log is seeded so this process's traces are distinguishable from
	// other coordinators'.
	events := obs.NewRing(*eventsSize)
	spans := obs.NewSpanLog(0)
	spans.Seed(uint64(time.Now().UnixNano()))
	slowCell := time.Duration(*slowCellMS) * time.Millisecond

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	st, err := buildStore(*storeDir, *storeMaxBytes, *peer, reg, events, logger)
	if err != nil {
		logger.Error("store setup", "err", err)
		os.Exit(2)
	}
	if st != nil {
		defer st.Close()
		logger.Info("persistent store", "dir", *storeDir, "peer", *peer)
	}

	var backend exec.Backend
	var fed *obs.Federation
	if addrs := splitFleet(*fleet); len(addrs) > 0 {
		// The fallback gets its own private pool and no registry: elfd's
		// main scheduler already registers the sched metric families on
		// reg, and merging a second scheduler's counts into them would
		// make both unreadable.
		fb := exec.NewLocal(exec.LocalConfig{Workers: *workers, CacheSize: *cacheSize,
			Events: events, SlowCell: slowCell, Store: st})
		f, err := exec.NewFleet(exec.FleetConfig{
			Workers:  addrs,
			Fallback: fb,
			Metrics:  reg,
			Spans:    spans,
			Events:   events,
			SlowCell: slowCell,
			Store:    st,
		})
		if err != nil {
			logger.Error("fleet setup", "err", err)
			os.Exit(2)
		}
		defer f.Close()
		backend = f

		// Metrics federation: periodically scrape every worker's /metrics
		// so this coordinator's /metrics serves the merged fleet view.
		fed = obs.NewFederation(obs.FederationConfig{Workers: addrs, Metrics: reg})
		go func() {
			fed.Scrape(ctx)
			t := time.NewTicker(*federateInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					fed.Scrape(ctx)
				}
			}
		}()
		logger.Info("coordinator mode", "fleet", addrs, "federate", *federateInterval)
	}
	srv := &http.Server{Addr: *addr, Handler: newServer(s, defaults, serverOptions{
		Metrics:    reg,
		Logger:     logger,
		Pprof:      *pprofOn,
		Backend:    backend,
		Events:     events,
		Spans:      spans,
		Federation: fed,
		Store:      st,
	})}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "workers", s.Stats().Workers,
		"queue", *queue, "pprof", *pprofOn)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve failed", "err", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logger.Info("shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			logger.Error("http shutdown", "err", err)
		}
		if err := s.Shutdown(shutdownCtx); err != nil {
			logger.Error("scheduler shutdown", "err", err)
		}
	}
}
