// Command elfd serves the simulator over HTTP/JSON: a
// simulation-as-a-service daemon with a bounded job scheduler and a
// content-addressed result cache, so many clients can drive experiments
// concurrently and repeated requests are answered without re-simulating.
//
// Endpoints:
//
//	POST   /v1/jobs            submit a run/figure/sweep (?wait=1 blocks)
//	GET    /v1/jobs/{id}       job status and result
//	DELETE /v1/jobs/{id}       cancel a job
//	GET    /v1/workloads       the workload registry
//	GET    /v1/figures/{6..9}  run or fetch a figure matrix (?format=...)
//	GET    /debug/stats        scheduler/cache/throughput metrics
//	GET    /debug/vars         raw expvar dump
//
// Usage:
//
//	elfd -addr :8080 -workers 8 -queue 128 -job-timeout 5m
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/sched"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 128, "max queued jobs before submits fail fast")
	jobTimeout := flag.Duration("job-timeout", 10*time.Minute, "per-job runtime ceiling (0 = none)")
	cacheSize := flag.Int("cache", 512, "result cache entries")
	warmup := flag.Uint64("warmup", 200_000, "default warmup instructions per run")
	insts := flag.Uint64("insts", 800_000, "default measured instructions per run")
	flag.Parse()

	defaults := eval.Params{Warmup: *warmup, Measure: *insts}
	if err := defaults.Validate(); err != nil {
		log.Fatal(err)
	}
	s := sched.New(sched.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		JobTimeout: *jobTimeout,
		CacheSize:  *cacheSize,
	})
	srv := &http.Server{Addr: *addr, Handler: newServer(s, defaults)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("elfd: listening on %s (workers=%d queue=%d)", *addr, s.Stats().Workers, *queue)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		log.Print("elfd: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Printf("elfd: http shutdown: %v", err)
		}
		if err := s.Shutdown(shutdownCtx); err != nil {
			log.Printf("elfd: scheduler shutdown: %v", err)
		}
	}
}
