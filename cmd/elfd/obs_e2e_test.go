package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/obs"
	"elfetch/internal/sched"
)

// obsWorker boots an in-process elfd worker with its own metrics
// registry, so the coordinator's federation scrapes return real families.
func obsWorker(t *testing.T) *httptest.Server {
	t.Helper()
	reg := obs.NewRegistry()
	s := sched.New(sched.Config{Workers: 4, QueueDepth: 64, Metrics: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	srv := newServer(s, eval.Params{Warmup: 2_000, Measure: 10_000}, serverOptions{Metrics: reg})
	ws := httptest.NewServer(srv)
	t.Cleanup(ws.Close)
	return ws
}

// coordinator assembles the full coordinator wiring — fleet backend,
// shared span log and flight recorder, metrics federation — exactly as
// cmd/elfd's main does, and returns the pieces the test asserts on.
type coordinator struct {
	srv    *server
	fleet  *exec.Fleet
	fed    *obs.Federation
	spans  *obs.SpanLog
	events *obs.Ring
}

func newCoordinator(t *testing.T, addrs []string) *coordinator {
	t.Helper()
	reg := obs.NewRegistry()
	spans := obs.NewSpanLog(0)
	events := obs.NewRing(0)
	s := sched.New(sched.Config{Workers: 4, QueueDepth: 64, Metrics: reg})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{Events: events}),
		Metrics:  reg,
		Spans:    spans,
		Events:   events,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	t.Cleanup(func() { f.Close() })
	fed := obs.NewFederation(obs.FederationConfig{Workers: addrs, Metrics: reg})
	srv := newServer(s, eval.Params{Warmup: 1_000, Measure: 4_000, Parallel: 4}, serverOptions{
		Metrics:    reg,
		Backend:    f,
		Events:     events,
		Spans:      spans,
		Federation: fed,
	})
	return &coordinator{srv: srv, fleet: f, fed: fed, spans: spans, events: events}
}

// figureJobResult runs a figure-6 job to completion through a server's
// HTTP surface and returns the result payload re-marshalled to canonical
// JSON (the job envelope around it carries timings, so only the payload
// is comparable across servers).
func figureJobResult(t *testing.T, h http.Handler) string {
	t.Helper()
	w, m := uint64(1_000), uint64(4_000)
	rec, decoded := doJSON(t, h, "POST", "/v1/jobs?wait=1",
		jobRequest{Kind: "figure", Figure: 6, Warmup: &w, Measure: &m})
	if rec.Code != http.StatusOK {
		t.Fatalf("figure job: %d %s", rec.Code, rec.Body.String())
	}
	res, ok := decoded["result"]
	if !ok {
		t.Fatalf("no result in job status: %v", decoded)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestFleetObservabilityE2E is the acceptance test for DESIGN.md §14: a
// coordinator over three real in-process workers (one of which is killed
// mid-run) must produce byte-identical results to a single-node server,
// serve a federated /metrics with per-worker labels, stitch the whole
// grid into a single trace on /debug/trace, and hold the worker-kill
// fallout in /debug/events.
func TestFleetObservabilityE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	// Single-node baseline. The coordinator must reproduce this payload
	// byte-for-byte despite sharding, retries and a mid-run worker death.
	baseline := newServer(func() *sched.Scheduler {
		s := sched.New(sched.Config{Workers: 4, QueueDepth: 64})
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return s
	}(), eval.Params{Warmup: 1_000, Measure: 4_000, Parallel: 4}, serverOptions{})
	local := figureJobResult(t, baseline)

	// Worker 0 dies after serving two cells: subsequent connections are
	// hijacked and slammed shut, which the fleet sees as a network error
	// and the federation as a failed scrape.
	mortalInner := obsWorker(t)
	var served atomic.Int64
	var dead atomic.Bool
	mortal := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if dead.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			panic(http.ErrAbortHandler)
		}
		if r.URL.Path == "/v1/cells" && served.Add(1) >= 2 {
			dead.Store(true)
		}
		mortalProxy(mortalInner, w, r)
	}))
	t.Cleanup(mortal.Close)

	addrs := []string{mortal.URL, obsWorker(t).URL, obsWorker(t).URL}
	co := newCoordinator(t, addrs)

	fleet := figureJobResult(t, co.srv)
	if fleet != local {
		t.Fatalf("fleet result differs from local:\n--- fleet ---\n%s\n--- local ---\n%s", fleet, local)
	}

	// Federation: scrape after the run (the e2e owns the cadence) and
	// assert the merged view — worker="all" aggregates, per-worker rows
	// for the live workers, and the dead worker marked down.
	co.fed.Scrape(context.Background())
	rec := httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics: %d", rec.Code)
	}
	metrics := rec.Body.String()
	for _, want := range []string{
		`elfd_http_requests_total{code="2xx",worker="all"}`,
		`elfd_http_requests_total{code="2xx",worker="` + addrs[1] + `"}`,
		`elfd_http_requests_total{code="2xx",worker="` + addrs[2] + `"}`,
		`elf_fed_worker_up{worker="` + mortal.URL + `"} 0`,
		`elf_fed_worker_up{worker="` + addrs[1] + `"} 1`,
		`elf_exec_hop_seconds_count{outcome="ok"}`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("fleet /metrics missing %q", want)
		}
	}

	// Trace: one figure grid = one stitched trace. Every span — grid
	// root, cells, dispatches — must share a single TraceID.
	rec = httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=json", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace: %d", rec.Code)
	}
	spans, err := obs.ReadSpansJSON(bytes.NewReader(rec.Body.Bytes()))
	if err != nil {
		t.Fatalf("span JSON: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("no spans recorded for the grid run")
	}
	traces := map[obs.TraceID]bool{}
	var grids, cells int
	for _, sp := range spans {
		traces[sp.Trace] = true
		switch sp.Name {
		case "figure-6":
			grids++
		case "cell":
			cells++
		}
	}
	if len(traces) != 1 {
		t.Errorf("grid run produced %d traces, want exactly 1", len(traces))
	}
	if grids != 1 {
		t.Errorf("grid root spans = %d, want 1", grids)
	}
	if cells == 0 {
		t.Error("no cell spans in the trace")
	}

	// The Chrome export renders coordinator and workers on one timeline.
	rec = httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/trace?format=chrome&canonical=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/trace?format=chrome: %d", rec.Code)
	}
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &chrome); err != nil {
		t.Fatalf("chrome export not JSON: %v", err)
	}
	if len(chrome.TraceEvents) <= len(spans) {
		t.Errorf("chrome export has %d events for %d spans (want spans + process metadata)",
			len(chrome.TraceEvents), len(spans))
	}

	// Flight recorder: the induced worker kill must have left quarantine
	// and requeue events behind, all on the grid's trace.
	rec = httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/events: %d", rec.Code)
	}
	var events []obs.Event
	if err := json.Unmarshal(rec.Body.Bytes(), &events); err != nil {
		t.Fatalf("events not JSON: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("/debug/events empty after induced worker kill")
	}
	kinds := map[string]int{}
	for _, e := range events {
		kinds[e.Kind]++
	}
	if kinds[obs.EventQuarantine] == 0 || kinds[obs.EventRequeue] == 0 {
		t.Errorf("worker kill left no quarantine/requeue events: %v", kinds)
	}
	if kinds[obs.EventDispatch] == 0 {
		t.Errorf("no dispatch events recorded: %v", kinds)
	}

	// /debug/events?n= bounds the dump.
	rec = httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=3", nil))
	var bounded []obs.Event
	if err := json.Unmarshal(rec.Body.Bytes(), &bounded); err != nil {
		t.Fatalf("bounded events not JSON: %v", err)
	}
	if len(bounded) != 3 {
		t.Errorf("/debug/events?n=3 returned %d events", len(bounded))
	}

	// /debug/stats carries the per-worker federation breakdown.
	rec = httptest.NewRecorder()
	co.srv.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/stats", nil))
	var stats struct {
		Federation  []obs.FedWorker `json:"federation"`
		EventsTotal uint64          `json:"eventsTotal"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("/debug/stats not JSON: %v", err)
	}
	if len(stats.Federation) != 3 {
		t.Fatalf("federation summary has %d workers, want 3: %+v", len(stats.Federation), stats.Federation)
	}
	for _, w := range stats.Federation {
		wantUp := w.Addr != mortal.URL
		if w.Up != wantUp {
			t.Errorf("worker %s up=%v, want %v", w.Addr, w.Up, wantUp)
		}
	}
	if stats.EventsTotal == 0 {
		t.Error("eventsTotal is zero despite recorded events")
	}
}

// mortalProxy forwards to the inner worker's handler. Split out so the
// mortal wrapper above stays readable.
func mortalProxy(inner *httptest.Server, w http.ResponseWriter, r *http.Request) {
	inner.Config.Handler.ServeHTTP(w, r)
}
