// elfd's HTTP surface: request decoding, job construction and the
// endpoints. The server is a thin adapter — all execution policy (worker
// pool, queue bounds, timeouts, dedupe, caching) lives in internal/sched,
// and all simulation logic in internal/eval.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/pipeline"
	"elfetch/internal/report"
	"elfetch/internal/sched"
	"elfetch/internal/workload"
)

// variantRuns counts completed simulation tasks per configuration name
// ("DCF", "U-ELF", "figure:8", ...). Package-level because expvar's
// registry is process-global.
var variantRuns = expvar.NewMap("elfd_variant_runs")

// server wires the scheduler to the HTTP mux.
type server struct {
	sched    *sched.Scheduler
	defaults eval.Params
	start    time.Time
	mux      *http.ServeMux
}

func newServer(s *sched.Scheduler, defaults eval.Params) *server {
	srv := &server{sched: s, defaults: defaults, start: time.Now(), mux: http.NewServeMux()}
	srv.mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("DELETE /v1/jobs/{id}", srv.handleCancel)
	srv.mux.HandleFunc("GET /v1/workloads", srv.handleWorkloads)
	srv.mux.HandleFunc("GET /v1/figures/{n}", srv.handleFigure)
	srv.mux.HandleFunc("GET /debug/stats", srv.handleStats)
	srv.mux.Handle("GET /debug/vars", expvar.Handler())
	return srv
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// httpError is an error with an HTTP status.
type httpError struct {
	status int
	err    error
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *httpError {
	return &httpError{http.StatusBadRequest, fmt.Errorf(format, args...)}
}

func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var he *httpError
	if errors.As(err, &he) {
		status = he.status
	} else if errors.Is(err, sched.ErrQueueFull) {
		status = http.StatusServiceUnavailable
	} else if errors.Is(err, sched.ErrShutdown) {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	// Kind selects the experiment: "run" (default; one workload × one
	// config), "figure" (a whole figure matrix), "sweep-faq" or
	// "sweep-depth".
	Kind string `json:"kind,omitempty"`

	// Workload names a registered workload (run kind); WorkloadJSON
	// supplies a custom profile instead (see internal/workload's schema).
	Workload     string          `json:"workload,omitempty"`
	WorkloadJSON json.RawMessage `json:"workloadJSON,omitempty"`

	// Variant is an ELF variant name ("dcf", "lelf", ..., "uelf"); NoDCF
	// selects the coupled baseline instead.
	Variant string `json:"variant,omitempty"`
	NoDCF   bool   `json:"noDCF,omitempty"`

	// Figure is 6..9 (figure kind).
	Figure int `json:"figure,omitempty"`

	// Sizes / Depths / Workloads parameterize the sweep kinds.
	Sizes     []int    `json:"sizes,omitempty"`
	Depths    []int    `json:"depths,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	// Warmup/Measure override the server defaults when non-nil.
	Warmup  *uint64 `json:"warmup,omitempty"`
	Measure *uint64 `json:"measure,omitempty"`
}

// params resolves the request's run lengths against the server defaults.
func (s *server) params(req *jobRequest) eval.Params {
	p := s.defaults
	if req.Warmup != nil {
		p.Warmup = *req.Warmup
	}
	if req.Measure != nil {
		p.Measure = *req.Measure
	}
	return p
}

// figureResult is a figure job's cached payload.
type figureResult struct {
	Table   *report.Table                     `json:"table"`
	Results map[string]map[string]eval.Result `json:"results"`
}

// textResult is a sweep job's cached payload.
type textResult struct {
	Text string `json:"text"`
}

// buildJob validates a request and returns the job label, content-address
// key and task. Validation happens here, synchronously, so bad requests
// fail with a 4xx instead of a failed job.
func (s *server) buildJob(req *jobRequest) (label, key string, task sched.Task, err error) {
	p := s.params(req)
	if err := p.Validate(); err != nil {
		return "", "", nil, badRequest("%v", err)
	}
	switch req.Kind {
	case "", "run":
		return s.buildRun(req, p)
	case "figure":
		n := req.Figure
		if n < 6 || n > 9 {
			return "", "", nil, badRequest("eval: unknown figure %d (want 6-9)", n)
		}
		label = fmt.Sprintf("figure-%d", n)
		key = sched.Key("figure", n, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			t, res, err := eval.FigureTable(ctx, n, p)
			if err != nil {
				return nil, err
			}
			variantRuns.Add(label, 1)
			return figureResult{Table: t, Results: res}, nil
		}
		return label, key, task, nil
	case "sweep-faq":
		wl := ""
		if len(req.Workloads) > 0 {
			wl = req.Workloads[0]
		}
		label = "sweep-faq"
		key = sched.Key("sweep-faq", req.Sizes, wl, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			var sb strings.Builder
			if err := eval.SweepFAQ(ctx, &sb, p, req.Sizes, wl); err != nil {
				return nil, err
			}
			variantRuns.Add(label, 1)
			return textResult{Text: sb.String()}, nil
		}
		return label, key, task, nil
	case "sweep-depth":
		label = "sweep-depth"
		key = sched.Key("sweep-depth", req.Depths, req.Workloads, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			var sb strings.Builder
			if err := eval.SweepFrontDepth(ctx, &sb, p, req.Depths, req.Workloads); err != nil {
				return nil, err
			}
			variantRuns.Add(label, 1)
			return textResult{Text: sb.String()}, nil
		}
		return label, key, task, nil
	}
	return "", "", nil, badRequest("unknown kind %q (want run, figure, sweep-faq or sweep-depth)", req.Kind)
}

// buildRun assembles a single (workload, config) measurement job.
func (s *server) buildRun(req *jobRequest, p eval.Params) (label, key string, task sched.Task, err error) {
	cfg := pipeline.DefaultConfig()
	switch {
	case req.NoDCF && req.Variant != "":
		return "", "", nil, badRequest("noDCF and variant are mutually exclusive")
	case req.NoDCF:
		cfg = cfg.NoDCF()
	case req.Variant != "":
		v, err := core.ParseVariant(req.Variant)
		if err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		cfg = cfg.WithVariant(v)
	}

	var entry *workload.Entry
	var workloadKey any
	switch {
	case req.Workload != "" && len(req.WorkloadJSON) > 0:
		return "", "", nil, badRequest("workload and workloadJSON are mutually exclusive")
	case req.Workload != "":
		e, err := workload.Lookup(req.Workload)
		if err != nil {
			return "", "", nil, &httpError{http.StatusNotFound, err}
		}
		entry = e
		workloadKey = e.Name
	case len(req.WorkloadJSON) > 0:
		name, prog, err := workload.FromJSON(strings.NewReader(string(req.WorkloadJSON)))
		if err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		entry = workload.Custom(name, prog)
		// Canonicalize the profile so formatting differences (whitespace,
		// key order) in equivalent submissions still share a cache line.
		var canon any
		if err := json.Unmarshal(req.WorkloadJSON, &canon); err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		workloadKey = canon
	default:
		return "", "", nil, badRequest("a run needs workload or workloadJSON")
	}

	label = fmt.Sprintf("run %s/%s", entry.Name, cfg.Name())
	key = sched.Key("run", cfg, workloadKey, p.Warmup, p.Measure)
	cfgName := cfg.Name()
	task = func(ctx context.Context) (any, error) {
		r, err := eval.RunOne(ctx, entry, cfg, p)
		if err != nil {
			return nil, err
		}
		variantRuns.Add(cfgName, 1)
		return r, nil
	}
	return label, key, task, nil
}

// handleSubmit accepts a job. With ?wait=1 the response blocks until the
// job finishes, tied to the request context — a client abort cancels the
// simulation. Otherwise it returns 202 with the job id for polling.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, badRequest("decoding job request: %v", err))
		return
	}
	label, key, task, err := s.buildJob(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	j, err := s.sched.Submit(label, key, task)
	if err != nil {
		writeErr(w, err)
		return
	}
	if wantWait(r) {
		st, err := j.Wait(r.Context())
		if err != nil {
			// Client gone: the job was cancelled; nothing to write to.
			return
		}
		writeJSON(w, statusCode(st), st)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// statusCode maps a terminal job state to an HTTP status.
func statusCode(st sched.JobStatus) int {
	switch st.State {
	case sched.Failed:
		return http.StatusInternalServerError
	case sched.Canceled:
		return http.StatusConflict
	default:
		return http.StatusOK
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id"))})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, &httpError{http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id"))})
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// workloadInfo is one /v1/workloads row.
type workloadInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	Notes string `json:"notes"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, e := range workload.All() {
		out = append(out, workloadInfo{Name: e.Name, Suite: e.Suite, Notes: e.Notes})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFigure runs (or serves from cache) a whole figure matrix
// synchronously. ?format=text|csv|json selects the rendering; warmup and
// insts query parameters override the server defaults.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeErr(w, badRequest("bad figure number %q", r.PathValue("n")))
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeErr(w, badRequest("%v", err))
		return
	}
	req := jobRequest{Kind: "figure", Figure: n}
	if v := r.URL.Query().Get("warmup"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, badRequest("bad warmup %q", v))
			return
		}
		req.Warmup = &u
	}
	if v := r.URL.Query().Get("insts"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, badRequest("bad insts %q", v))
			return
		}
		req.Measure = &u
	}
	label, key, task, err := s.buildJob(&req)
	if err != nil {
		writeErr(w, err)
		return
	}
	j, err := s.sched.Submit(label, key, task)
	if err != nil {
		writeErr(w, err)
		return
	}
	st, err := j.Wait(r.Context())
	if err != nil {
		return // client gone; job cancelled
	}
	if st.State != sched.Done {
		writeJSON(w, statusCode(st), st)
		return
	}
	fr, ok := st.Result.(figureResult)
	if !ok {
		writeErr(w, fmt.Errorf("unexpected figure payload %T", st.Result))
		return
	}
	switch format {
	case report.JSON:
		writeJSON(w, http.StatusOK, fr)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fr.Table.Write(w, format)
	}
}

// statsResponse is /debug/stats: the live serving metrics the acceptance
// criteria key on (queue depth, cache hit rate, sims/sec, per-variant run
// counts).
type statsResponse struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	SimsPerSec    float64          `json:"simsPerSec"`
	CacheHitRate  float64          `json:"cacheHitRate"`
	Scheduler     sched.Stats      `json:"scheduler"`
	VariantRuns   map[string]int64 `json:"variantRuns"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	uptime := time.Since(s.start).Seconds()
	resp := statsResponse{
		UptimeSeconds: uptime,
		Scheduler:     st,
		VariantRuns:   map[string]int64{},
	}
	if uptime > 0 {
		resp.SimsPerSec = float64(st.Completed) / uptime
	}
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		resp.CacheHitRate = float64(st.Cache.Hits) / float64(total)
	}
	variantRuns.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			resp.VariantRuns[kv.Key] = v.Value()
		}
	})
	writeJSON(w, http.StatusOK, resp)
}
