// elfd's HTTP surface: request decoding, job construction and the
// endpoints. The server is a thin adapter — all execution policy (worker
// pool, queue bounds, timeouts, dedupe, caching) lives in internal/sched,
// and all simulation logic in internal/eval.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/report"
	"elfetch/internal/sched"
	"elfetch/internal/store"
	"elfetch/internal/workload"
)

// variantRuns counts completed simulation tasks per configuration name
// ("DCF", "U-ELF", "figure:8", ...). Package-level because expvar's
// registry is process-global; the per-server obs counters mirror it.
var variantRuns = expvar.NewMap("elfd_variant_runs")

// serverOptions carries the optional wiring newServer accepts.
type serverOptions struct {
	// Metrics is the registry behind GET /metrics (nil = a fresh private
	// registry, so the endpoint always works).
	Metrics *obs.Registry
	// Logger receives access logs and job lifecycle events (nil = discard).
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/.
	Pprof bool
	// Backend, when non-nil, dispatches figure/sweep matrix cells through
	// an execution backend (coordinator mode: a Fleet sharding cells
	// across remote workers) instead of the in-process pool. Single-cell
	// jobs and POST /v1/cells always run locally — a worker forwarding
	// its cells back out would loop.
	Backend exec.Backend
	// Events is the flight-recorder ring behind GET /debug/events (nil =
	// a fresh private ring, so the endpoint always works). Share it with
	// the execution backend so dispatch events land there.
	Events *obs.Ring
	// Spans is the span log behind GET /debug/trace and the coordinator's
	// grid root spans (nil = a fresh private log). Share it with the
	// fleet backend so one grid run yields one stitched trace.
	Spans *obs.SpanLog
	// Federation, when non-nil, merges the scraped worker snapshots into
	// GET /metrics (the fleet view) and adds per-worker scrape status to
	// /debug/stats. The caller owns the scrape cadence.
	Federation *obs.Federation
	// Store, when non-nil, is the persistent result store: POST /v1/cells
	// consults it under the cell key before simulating and fills it after,
	// and GET /v1/cells/{key} serves stored results to peers. The caller
	// owns it (closes it on shutdown).
	Store store.Store
}

// server wires the scheduler to the HTTP mux.
type server struct {
	sched    *sched.Scheduler
	defaults eval.Params
	start    time.Time
	mux      *http.ServeMux
	reg      *obs.Registry
	probe    *pipeline.Probe
	log      *slog.Logger
	backend  exec.Backend
	events   *obs.Ring
	spans    *obs.SpanLog
	fed      *obs.Federation
	store    store.Store
	reqID    atomic.Uint64
}

func newServer(s *sched.Scheduler, defaults eval.Params, opt serverOptions) *server {
	if opt.Metrics == nil {
		opt.Metrics = obs.NewRegistry()
	}
	if opt.Logger == nil {
		opt.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if opt.Events == nil {
		opt.Events = obs.NewRing(0)
	}
	if opt.Spans == nil {
		opt.Spans = obs.NewSpanLog(0)
	}
	srv := &server{
		sched: s, defaults: defaults, start: time.Now(), mux: http.NewServeMux(),
		reg: opt.Metrics, log: opt.Logger, backend: opt.Backend,
		events: opt.Events, spans: opt.Spans, fed: opt.Federation,
		store: opt.Store,
	}
	// Registering the probe up front makes the four elf_* histogram
	// families visible on /metrics from the first scrape, even before any
	// simulation has run.
	srv.probe = eval.NewProbe(srv.reg)
	srv.reg.GaugeFunc("elfd_uptime_seconds", "Seconds since server start.",
		func() float64 { return time.Since(srv.start).Seconds() })
	// Pre-register the common status classes so the family shows up on the
	// first scrape instead of only after it.
	for _, class := range []string{"2xx", "4xx", "5xx"} {
		srv.reg.Counter("elfd_http_requests_total",
			"HTTP requests served, by status class.", obs.L("code", class))
	}
	srv.mux.HandleFunc("POST /v1/cells", srv.handleCell)
	srv.mux.HandleFunc("GET /v1/cells/{key}", srv.handleCellLookup)
	srv.mux.HandleFunc("GET /v1/healthz", srv.handleHealthz)
	srv.mux.HandleFunc("POST /v1/jobs", srv.handleSubmit)
	srv.mux.HandleFunc("GET /v1/jobs/{id}", srv.handleJob)
	srv.mux.HandleFunc("GET /v1/jobs/{id}/trace", srv.handleJobTrace)
	srv.mux.HandleFunc("DELETE /v1/jobs/{id}", srv.handleCancel)
	srv.mux.HandleFunc("GET /v1/workloads", srv.handleWorkloads)
	srv.mux.HandleFunc("GET /v1/figures/{n}", srv.handleFigure)
	if srv.fed != nil {
		// Coordinator: /metrics is the fleet view — own registry merged
		// with the latest worker snapshots under the federation rules.
		srv.mux.Handle("GET /metrics", obs.FleetHandler(srv.reg, srv.fed))
	} else {
		srv.mux.Handle("GET /metrics", obs.Handler(srv.reg))
	}
	srv.mux.HandleFunc("GET /debug/stats", srv.handleStats)
	srv.mux.HandleFunc("GET /debug/events", srv.handleEvents)
	srv.mux.HandleFunc("GET /debug/trace", srv.handleDebugTrace)
	srv.mux.Handle("GET /debug/vars", expvar.Handler())
	if opt.Pprof {
		srv.mux.HandleFunc("/debug/pprof/", pprof.Index)
		srv.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		srv.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		srv.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		srv.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return srv
}

// statusWriter captures the response code for the access log.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

// ServeHTTP is the access-log middleware: every request gets an id
// (reusing the caller's X-Request-ID when present — the fleet coordinator
// sends one per dispatch attempt — else a process-unique one), returned
// as X-Request-ID and attached to all log lines it produces, plus a
// structured access-log line and a status-class counter. An incoming
// `traceparent` header is echoed back and its trace id joins the access
// log, so worker-side lines stitch into the coordinator's trace.
func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := r.Header.Get("X-Request-ID")
	if id == "" {
		id = fmt.Sprintf("r%06d", s.reqID.Add(1))
	}
	w.Header().Set("X-Request-ID", id)
	trace := ""
	if tr, _, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		trace = tr.String()
		w.Header().Set(obs.TraceparentHeader, r.Header.Get(obs.TraceparentHeader))
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	begin := time.Now()
	log := s.log.With("req", id)
	if trace != "" {
		log = log.With("trace", trace)
	}
	s.mux.ServeHTTP(sw, r.WithContext(withReqLog(r.Context(), log)))
	s.reg.Counter("elfd_http_requests_total", "HTTP requests served, by status class.",
		obs.L("code", fmt.Sprintf("%dxx", sw.code/100))).Inc()
	attrs := []any{"req", id, "method", r.Method, "path", r.URL.Path,
		"status", sw.code, "dur", time.Since(begin).Round(time.Microsecond)}
	if trace != "" {
		attrs = append(attrs, "trace", trace)
	}
	s.log.Info("http", attrs...)
}

// reqLogKey carries the request-scoped logger through job contexts.
type reqLogKey struct{}

func withReqLog(ctx context.Context, l *slog.Logger) context.Context {
	return context.WithValue(ctx, reqLogKey{}, l)
}

// reqLog returns the request's logger, falling back to the server's.
func (s *server) reqLog(ctx context.Context) *slog.Logger {
	if l, ok := ctx.Value(reqLogKey{}).(*slog.Logger); ok {
		return l
	}
	return s.log
}

// countRun records a completed simulation task under its config/figure
// name, in both the expvar map and the Prometheus registry.
func (s *server) countRun(name string) {
	variantRuns.Add(name, 1)
	s.reg.Counter("elfd_runs_total", "Completed simulation tasks, by configuration.",
		obs.L("config", name)).Inc()
}

// Error-envelope codes. The fleet backend (internal/exec) classifies
// failures by these: "sim_failed" and any 4xx are permanent (the sim is
// deterministic, retrying elsewhere cannot help); the rest are
// infrastructure trouble worth retrying on another worker.
const (
	codeBadRequest   = "bad_request"
	codeNotFound     = "not_found"
	codeConflict     = "conflict"
	codeCanceled     = "canceled"
	codeQueueFull    = "queue_full"
	codeShuttingDown = "shutting_down"
	codeSimFailed    = "sim_failed"
	codeInternal     = "internal"
)

// httpError is an error with an HTTP status and an envelope code.
type httpError struct {
	status int
	code   string
	err    error
	detail string
}

func (e *httpError) Error() string { return e.err.Error() }
func (e *httpError) Unwrap() error { return e.err }

func badRequest(format string, args ...any) *httpError {
	return &httpError{status: http.StatusBadRequest, code: codeBadRequest, err: fmt.Errorf(format, args...)}
}

func notFound(err error) *httpError {
	return &httpError{status: http.StatusNotFound, code: codeNotFound, err: err}
}

func conflict(err error) *httpError {
	return &httpError{status: http.StatusConflict, code: codeConflict, err: err}
}

// errorEnvelope is the uniform /v1 error body:
// {"error":{"code","message","detail"}}. Code is a stable machine-
// readable identifier, message the human-readable cause, detail optional
// context (which sub-system, what limit).
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	Detail  string `json:"detail,omitempty"`
	// Trace echoes the requester's trace id (from `traceparent`), so an
	// error a coordinator logs can be joined to the worker's view of it.
	Trace string `json:"trace,omitempty"`
}

// writeErr renders any error as the JSON error envelope, classifying
// plain errors by sentinel and defaulting to internal/500. The request's
// trace id, when one was carried, is echoed in the envelope.
func writeErr(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusInternalServerError
	code := codeInternal
	detail := ""
	var he *httpError
	switch {
	case errors.As(err, &he):
		status, code, detail = he.status, he.code, he.detail
		if code == "" {
			code = codeInternal
		}
	case errors.Is(err, sched.ErrQueueFull):
		status, code = http.StatusServiceUnavailable, codeQueueFull
		detail = "the job queue is at capacity; retry with backoff"
	case errors.Is(err, sched.ErrShutdown):
		status, code = http.StatusServiceUnavailable, codeShuttingDown
		detail = "the server is draining; submit to another worker"
	case errors.Is(err, context.Canceled):
		status, code = http.StatusConflict, codeCanceled
	}
	trace := ""
	if tr, _, ok := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader)); ok {
		trace = tr.String()
	}
	writeJSON(w, status, errorEnvelope{Error: errorBody{
		Code: code, Message: err.Error(), Detail: detail, Trace: trace,
	}})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// jobRequest is the POST /v1/jobs body.
type jobRequest struct {
	// Kind selects the experiment: "run" (default; one workload × one
	// config), "figure" (a whole figure matrix), "sweep-faq" or
	// "sweep-depth".
	Kind string `json:"kind,omitempty"`

	// Workload names a registered workload (run kind); WorkloadJSON
	// supplies a custom profile instead (see internal/workload's schema).
	Workload     string          `json:"workload,omitempty"`
	WorkloadJSON json.RawMessage `json:"workloadJSON,omitempty"`

	// Variant is an ELF variant name ("dcf", "lelf", ..., "uelf"); NoDCF
	// selects the coupled baseline instead.
	Variant string `json:"variant,omitempty"`
	NoDCF   bool   `json:"noDCF,omitempty"`

	// Figure is 6..9 (figure kind).
	Figure int `json:"figure,omitempty"`

	// Sizes / Depths / Workloads parameterize the sweep kinds.
	Sizes     []int    `json:"sizes,omitempty"`
	Depths    []int    `json:"depths,omitempty"`
	Workloads []string `json:"workloads,omitempty"`

	// Warmup/Measure override the server defaults when non-nil.
	Warmup  *uint64 `json:"warmup,omitempty"`
	Measure *uint64 `json:"measure,omitempty"`

	// Trace (run kind only) records a cycle-level pipeline trace of the
	// measurement window, retrievable as Chrome trace JSON from
	// GET /v1/jobs/{id}/trace. TraceMax bounds the recorded instruction
	// events (0 = 4096, capped at 65536).
	Trace    bool `json:"trace,omitempty"`
	TraceMax int  `json:"traceMax,omitempty"`
}

// Trace event bounds.
const (
	defaultTraceMax = 4096
	maxTraceMax     = 65536
)

// params resolves the request's run lengths against the server defaults
// and attaches the server's registry-backed probe, so every simulation's
// latency/occupancy distributions land on /metrics.
func (s *server) params(req *jobRequest) eval.Params {
	p := s.defaults
	if req.Warmup != nil {
		p.Warmup = *req.Warmup
	}
	if req.Measure != nil {
		p.Measure = *req.Measure
	}
	p.Probe = s.probe
	if s.backend != nil {
		p.Runner = s.backend
	}
	return p
}

// traceGrid starts a grid root span for a coordinator-dispatched matrix
// task, so every cell the backend fans out becomes a child of one trace.
// Single-node servers (no backend) run untraced — their matrix cells
// never cross a process boundary. Callers must nil-guard the span.
func (s *server) traceGrid(ctx context.Context, name string) (context.Context, *obs.Span) {
	if s.backend == nil {
		return ctx, nil
	}
	grid := s.spans.StartSpan(obs.SpanFromContext(ctx), name)
	if grid == nil {
		return ctx, nil
	}
	return obs.ContextWithSpan(ctx, grid), grid
}

// finishGrid closes a grid root span (nil-safe), recording the failure.
func finishGrid(grid *obs.Span, err error) {
	if grid != nil {
		grid.SetError(err)
		grid.Finish()
	}
}

// figureResult is a figure job's cached payload: the rendered table, the
// legacy map index, and the ordered cell list (stable JSON — nothing in
// it depends on map iteration order).
type figureResult struct {
	Table   *report.Table                     `json:"table"`
	Results map[string]map[string]eval.Result `json:"results"`
	Cells   eval.Results                      `json:"cells"`
}

// textResult is a sweep job's cached payload.
type textResult struct {
	Text string `json:"text"`
}

// buildJob validates a request and returns the job label, content-address
// key and task. Validation happens here, synchronously, so bad requests
// fail with a 4xx instead of a failed job.
func (s *server) buildJob(req *jobRequest) (label, key string, task sched.Task, err error) {
	p := s.params(req)
	if err := p.Validate(); err != nil {
		return "", "", nil, badRequest("%v", err)
	}
	if req.Trace && req.Kind != "" && req.Kind != "run" {
		return "", "", nil, badRequest("trace is only supported for run jobs, not %q", req.Kind)
	}
	switch req.Kind {
	case "", "run":
		return s.buildRun(req, p)
	case "figure":
		n := req.Figure
		if n < 6 || n > 9 {
			return "", "", nil, badRequest("eval: unknown figure %d (want 6-9)", n)
		}
		label = fmt.Sprintf("figure-%d", n)
		key = sched.Key("figure", n, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			ctx, grid := s.traceGrid(ctx, label)
			t, res, err := eval.FigureTable(ctx, n, p)
			finishGrid(grid, err)
			if err != nil {
				return nil, err
			}
			s.countRun(label)
			return figureResult{Table: t, Results: res.Map(), Cells: res}, nil
		}
		return label, key, task, nil
	case "sweep-faq":
		wl := ""
		if len(req.Workloads) > 0 {
			wl = req.Workloads[0]
		}
		label = "sweep-faq"
		key = sched.Key("sweep-faq", req.Sizes, wl, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			ctx, grid := s.traceGrid(ctx, label)
			var sb strings.Builder
			err := eval.SweepFAQ(ctx, &sb, p, req.Sizes, wl)
			finishGrid(grid, err)
			if err != nil {
				return nil, err
			}
			s.countRun(label)
			return textResult{Text: sb.String()}, nil
		}
		return label, key, task, nil
	case "sweep-depth":
		label = "sweep-depth"
		key = sched.Key("sweep-depth", req.Depths, req.Workloads, p.Warmup, p.Measure)
		task = func(ctx context.Context) (any, error) {
			ctx, grid := s.traceGrid(ctx, label)
			var sb strings.Builder
			err := eval.SweepFrontDepth(ctx, &sb, p, req.Depths, req.Workloads)
			finishGrid(grid, err)
			if err != nil {
				return nil, err
			}
			s.countRun(label)
			return textResult{Text: sb.String()}, nil
		}
		return label, key, task, nil
	}
	return "", "", nil, badRequest("unknown kind %q (want run, figure, sweep-faq or sweep-depth)", req.Kind)
}

// buildRun assembles a single (workload, config) measurement job.
func (s *server) buildRun(req *jobRequest, p eval.Params) (label, key string, task sched.Task, err error) {
	cfg := pipeline.DefaultConfig()
	switch {
	case req.NoDCF && req.Variant != "":
		return "", "", nil, badRequest("noDCF and variant are mutually exclusive")
	case req.NoDCF:
		cfg = cfg.NoDCF()
	case req.Variant != "":
		v, err := core.ParseVariant(req.Variant)
		if err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		cfg = cfg.WithVariant(v)
	}

	var entry *workload.Entry
	var workloadKey any
	switch {
	case req.Workload != "" && len(req.WorkloadJSON) > 0:
		return "", "", nil, badRequest("workload and workloadJSON are mutually exclusive")
	case req.Workload != "":
		e, err := workload.Lookup(req.Workload)
		if err != nil {
			return "", "", nil, notFound(err)
		}
		entry = e
		workloadKey = e.Name
	case len(req.WorkloadJSON) > 0:
		name, prog, err := workload.FromJSON(strings.NewReader(string(req.WorkloadJSON)))
		if err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		entry = workload.Custom(name, prog)
		// Canonicalize the profile so formatting differences (whitespace,
		// key order) in equivalent submissions still share a cache line.
		var canon any
		if err := json.Unmarshal(req.WorkloadJSON, &canon); err != nil {
			return "", "", nil, badRequest("%v", err)
		}
		workloadKey = canon
	default:
		return "", "", nil, badRequest("a run needs workload or workloadJSON")
	}

	label = fmt.Sprintf("run %s/%s", entry.Name, cfg.Name())
	cfgName := cfg.Name()
	if req.Trace {
		traceMax := req.TraceMax
		switch {
		case traceMax < 0 || traceMax > maxTraceMax:
			return "", "", nil, badRequest("traceMax %d out of [0, %d]", traceMax, maxTraceMax)
		case traceMax == 0:
			traceMax = defaultTraceMax
		}
		label += " +trace"
		key = sched.Key("run-trace", cfg, workloadKey, p.Warmup, p.Measure, traceMax)
		task = func(ctx context.Context) (any, error) {
			r, tr, err := eval.RunOneTraced(ctx, entry, cfg, p, traceMax)
			if err != nil {
				return nil, err
			}
			var buf strings.Builder
			if err := tr.WriteChromeTrace(&buf); err != nil {
				return nil, err
			}
			s.countRun(cfgName)
			return runResult{Result: r, TraceJSON: []byte(buf.String())}, nil
		}
		return label, key, task, nil
	}
	key = sched.Key("run", cfg, workloadKey, p.Warmup, p.Measure)
	task = func(ctx context.Context) (any, error) {
		r, err := eval.RunOne(ctx, entry, cfg, p)
		if err != nil {
			return nil, err
		}
		s.countRun(cfgName)
		return r, nil
	}
	return label, key, task, nil
}

// runResult is a traced run's cached payload: the measurement plus the
// Chrome trace JSON. The trace is deliberately excluded from the job's
// JSON status — it can be megabytes — and served only by the dedicated
// GET /v1/jobs/{id}/trace endpoint.
type runResult struct {
	eval.Result
	TraceJSON []byte `json:"-"`
}

// handleCell executes one evaluation cell synchronously — the fleet
// worker endpoint internal/exec.Fleet dispatches to. The cell runs
// through the scheduler under the same content-address exec.Local would
// use, so repeats are answered from cache and concurrent identical cells
// coalesce. Cells always run on this worker's own pool, never through
// the coordinator backend — a worker forwarding its cells back out would
// loop.
func (s *server) handleCell(w http.ResponseWriter, r *http.Request) {
	var c eval.Cell
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&c); err != nil {
		writeErr(w, r, badRequest("decoding cell: %v", err))
		return
	}
	if err := c.Validate(); err != nil {
		writeErr(w, r, badRequest("%v", err))
		return
	}
	if _, err := workload.Lookup(c.Workload); err != nil {
		writeErr(w, r, notFound(err))
		return
	}
	label := fmt.Sprintf("cell %s/%s", c.Workload, c.Config.Name())
	cfgName := c.Config.Name()
	key := sched.Key("cell", c)
	j, err := s.sched.Submit(label, key, func(ctx context.Context) (any, error) {
		// The persistent store sits behind the scheduler cache: a stored
		// result decodes without simulating (and still gets promoted into
		// the LRU), a fresh one is written back for restarts and peers.
		if s.store != nil {
			if b, ok, _ := s.store.Get(key); ok {
				var res eval.Result
				if err := json.Unmarshal(b, &res); err == nil {
					return res, nil
				}
			}
		}
		res, err := eval.RunCell(ctx, c, s.probe)
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			if b, err := json.Marshal(res); err == nil {
				s.store.Put(key, b)
			}
		}
		s.countRun(cfgName)
		return res, nil
	})
	if err != nil {
		writeErr(w, r, err)
		return
	}
	st, err := j.Wait(r.Context())
	if err != nil {
		return // client gone; job cancelled
	}
	switch st.State {
	case sched.Done:
		res, ok := st.Result.(eval.Result)
		if !ok {
			writeErr(w, r, fmt.Errorf("unexpected cell payload %T", st.Result))
			return
		}
		writeJSON(w, http.StatusOK, res)
	case sched.Canceled:
		writeErr(w, r, &httpError{status: http.StatusConflict, code: codeCanceled,
			err: fmt.Errorf("cell canceled: %s", st.Error)})
	default:
		// Deterministic sim: this cell fails identically on any worker.
		writeErr(w, r, &httpError{status: http.StatusInternalServerError, code: codeSimFailed,
			err: fmt.Errorf("cell failed: %s", st.Error)})
	}
}

// handleCellLookup serves one stored cell result by its content address
// — the peer-fill endpoint store.Peer reads. The persistent store is
// consulted first; without one (or on a store miss) the scheduler's
// result cache answers, so even a store-less worker can peer-serve what
// it recently computed. A 404 means "not here": the caller simulates.
func (s *server) handleCellLookup(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if s.store != nil {
		if b, ok, _ := s.store.Get(key); ok {
			w.Header().Set("Content-Type", "application/json")
			w.Write(b)
			return
		}
	}
	if v, ok := s.sched.Cache().Get(key); ok {
		if res, ok := v.(eval.Result); ok {
			writeJSON(w, http.StatusOK, res)
			return
		}
	}
	writeErr(w, r, notFound(fmt.Errorf("no stored result for key %q", key)))
}

// handleHealthz is the fleet liveness probe: 200 while the scheduler
// accepts work.
func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleSubmit accepts a job. With ?wait=1 the response blocks until the
// job finishes, tied to the request context — a client abort cancels the
// simulation. Otherwise it returns 202 with the job id for polling.
func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, r, badRequest("decoding job request: %v", err))
		return
	}
	label, key, task, err := s.buildJob(&req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	j, err := s.sched.Submit(label, key, task)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	s.reqLog(r.Context()).Info("job submitted",
		"job", j.ID(), "label", label, "cached", j.Status().Cached, "wait", wantWait(r))
	if wantWait(r) {
		st, err := j.Wait(r.Context())
		if err != nil {
			// Client gone: the job was cancelled; nothing to write to.
			return
		}
		writeJSON(w, statusCode(st), st)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func wantWait(r *http.Request) bool {
	v := r.URL.Query().Get("wait")
	return v == "1" || v == "true"
}

// statusCode maps a terminal job state to an HTTP status.
func statusCode(st sched.JobStatus) int {
	switch st.State {
	case sched.Failed:
		return http.StatusInternalServerError
	case sched.Canceled:
		return http.StatusConflict
	default:
		return http.StatusOK
	}
}

func (s *server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, notFound(fmt.Errorf("unknown job %q", r.PathValue("id"))))
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleJobTrace serves a traced run's Chrome trace JSON (load it in
// Perfetto or chrome://tracing).
func (s *server) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, notFound(fmt.Errorf("unknown job %q", r.PathValue("id"))))
		return
	}
	st := j.Status()
	if !st.State.Terminal() {
		writeErr(w, r, conflict(
			fmt.Errorf("job %s is %s; trace is available once done", st.ID, st.State)))
		return
	}
	rr, ok := st.Result.(runResult)
	if !ok || len(rr.TraceJSON) == 0 {
		writeErr(w, r, notFound(
			fmt.Errorf("job %s has no trace (submit with \"trace\": true)", st.ID)))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(rr.TraceJSON)
}

func (s *server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeErr(w, r, notFound(fmt.Errorf("unknown job %q", r.PathValue("id"))))
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// workloadInfo is one /v1/workloads row.
type workloadInfo struct {
	Name  string `json:"name"`
	Suite string `json:"suite"`
	Notes string `json:"notes"`
}

func (s *server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []workloadInfo
	for _, e := range workload.All() {
		out = append(out, workloadInfo{Name: e.Name, Suite: e.Suite, Notes: e.Notes})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleFigure runs (or serves from cache) a whole figure matrix
// synchronously. ?format=text|csv|json selects the rendering; warmup and
// insts query parameters override the server defaults.
func (s *server) handleFigure(w http.ResponseWriter, r *http.Request) {
	n, err := strconv.Atoi(r.PathValue("n"))
	if err != nil {
		writeErr(w, r, badRequest("bad figure number %q", r.PathValue("n")))
		return
	}
	format, err := report.ParseFormat(r.URL.Query().Get("format"))
	if err != nil {
		writeErr(w, r, badRequest("%v", err))
		return
	}
	req := jobRequest{Kind: "figure", Figure: n}
	if v := r.URL.Query().Get("warmup"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, r, badRequest("bad warmup %q", v))
			return
		}
		req.Warmup = &u
	}
	if v := r.URL.Query().Get("insts"); v != "" {
		u, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeErr(w, r, badRequest("bad insts %q", v))
			return
		}
		req.Measure = &u
	}
	label, key, task, err := s.buildJob(&req)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	j, err := s.sched.Submit(label, key, task)
	if err != nil {
		writeErr(w, r, err)
		return
	}
	st, err := j.Wait(r.Context())
	if err != nil {
		return // client gone; job cancelled
	}
	if st.State != sched.Done {
		writeJSON(w, statusCode(st), st)
		return
	}
	fr, ok := st.Result.(figureResult)
	if !ok {
		writeErr(w, r, fmt.Errorf("unexpected figure payload %T", st.Result))
		return
	}
	switch format {
	case report.JSON:
		writeJSON(w, http.StatusOK, fr)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fr.Table.Write(w, format)
	}
}

// handleEvents serves the flight recorder: the last n structured events
// (?n= bounds the dump; 0 or absent = everything retained).
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	n := 0
	if v := r.URL.Query().Get("n"); v != "" {
		parsed, err := strconv.Atoi(v)
		if err != nil || parsed < 0 {
			writeErr(w, r, badRequest("bad event count %q", v))
			return
		}
		n = parsed
	}
	w.Header().Set("Content-Type", "application/json")
	s.events.WriteJSON(w, n)
}

// handleDebugTrace serves the span log: ?format=json (default) dumps raw
// spans (re-readable by elfview -spans), ?format=chrome renders the
// stitched Chrome trace; &canonical=1 selects the normalised byte-
// deterministic export.
func (s *server) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.spans.Snapshot()
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		w.Header().Set("Content-Type", "application/json")
		obs.WriteSpansJSON(w, spans)
	case "chrome":
		canonical := r.URL.Query().Get("canonical") == "1"
		w.Header().Set("Content-Type", "application/json")
		obs.WriteChromeTrace(w, spans, canonical)
	default:
		writeErr(w, r, badRequest("unknown trace format %q (want json or chrome)", format))
	}
}

// statsResponse is /debug/stats: the live serving metrics the acceptance
// criteria key on (queue depth, cache hit rate, sims/sec, per-variant run
// counts).
type statsResponse struct {
	UptimeSeconds float64          `json:"uptimeSeconds"`
	SimsPerSec    float64          `json:"simsPerSec"`
	CacheHitRate  float64          `json:"cacheHitRate"`
	Scheduler     sched.Stats      `json:"scheduler"`
	VariantRuns   map[string]int64 `json:"variantRuns"`
	// Exec carries the coordinator backend's dispatch counters when the
	// server shards matrix cells across a fleet.
	Exec *exec.Stats `json:"exec,omitempty"`
	// Federation carries the per-worker scrape breakdown when the server
	// federates worker metrics.
	Federation []obs.FedWorker `json:"federation,omitempty"`
	// Store carries the persistent result store's per-tier counters when
	// one is attached (-store-dir).
	Store []store.TierStats `json:"store,omitempty"`
	// Events summarises the flight recorder (total ever recorded).
	EventsTotal uint64 `json:"eventsTotal"`
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.sched.Stats()
	uptime := time.Since(s.start).Seconds()
	resp := statsResponse{
		UptimeSeconds: uptime,
		Scheduler:     st,
		VariantRuns:   map[string]int64{},
	}
	if uptime > 0 {
		resp.SimsPerSec = float64(st.Completed) / uptime
	}
	if total := st.Cache.Hits + st.Cache.Misses; total > 0 {
		resp.CacheHitRate = float64(st.Cache.Hits) / float64(total)
	}
	variantRuns.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			resp.VariantRuns[kv.Key] = v.Value()
		}
	})
	if s.backend != nil {
		es := s.backend.Stats()
		resp.Exec = &es
	}
	if s.fed != nil {
		resp.Federation = s.fed.Summary()
	}
	if s.store != nil {
		resp.Store = s.store.Stats()
	}
	resp.EventsTotal = s.events.Total()
	writeJSON(w, http.StatusOK, resp)
}
