package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/sched"
)

// testServer builds a server over a fresh scheduler with tiny default run
// lengths so handler tests stay fast.
func testServer(t *testing.T) (*server, *sched.Scheduler) {
	t.Helper()
	s := sched.New(sched.Config{Workers: 4, QueueDepth: 64})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return newServer(s, eval.Params{Warmup: 2_000, Measure: 10_000}, serverOptions{}), s
}

func doJSON(t *testing.T, h http.Handler, method, target string, body any) (*httptest.ResponseRecorder, map[string]any) {
	t.Helper()
	var r *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		r = bytes.NewReader(b)
	} else {
		r = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, target, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	var decoded map[string]any
	if ct := rec.Header().Get("Content-Type"); strings.HasPrefix(ct, "application/json") && rec.Body.Len() > 0 {
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("decoding %s %s response: %v\n%s", method, target, err, rec.Body.String())
		}
	}
	return rec, decoded
}

func TestSubmitPollResult(t *testing.T) {
	srv, _ := testServer(t)
	rec, st := doJSON(t, srv, "POST", "/v1/jobs",
		map[string]any{"workload": "641.leela_s", "variant": "uelf"})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	id, _ := st["id"].(string)
	if id == "" {
		t.Fatalf("no job id in %v", st)
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		rec, st = doJSON(t, srv, "GET", "/v1/jobs/"+id, nil)
		if rec.Code != http.StatusOK {
			t.Fatalf("poll: %d %s", rec.Code, rec.Body.String())
		}
		state, _ := st["state"].(string)
		if state == string(sched.Done) {
			break
		}
		if state == string(sched.Failed) || state == string(sched.Canceled) {
			t.Fatalf("job ended %s: %v", state, st)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
	result, _ := st["result"].(map[string]any)
	if result["config"] != "U-ELF" || result["workload"] != "641.leela_s" {
		t.Fatalf("result identity: %v", result)
	}
	if ipc, _ := result["ipc"].(float64); ipc <= 0 {
		t.Fatalf("implausible IPC in %v", result)
	}
}

func TestSubmitWaitServesCacheSecondTime(t *testing.T) {
	srv, s := testServer(t)
	body := map[string]any{"workload": "401.bzip2", "variant": "lelf"}

	rec, st1 := doJSON(t, srv, "POST", "/v1/jobs?wait=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("first submit: %d %s", rec.Code, rec.Body.String())
	}
	if cached, _ := st1["cached"].(bool); cached {
		t.Fatal("first submission claims cached")
	}

	rec, st2 := doJSON(t, srv, "POST", "/v1/jobs?wait=1", body)
	if rec.Code != http.StatusOK {
		t.Fatalf("second submit: %d %s", rec.Code, rec.Body.String())
	}
	if cached, _ := st2["cached"].(bool); !cached {
		t.Fatalf("second submission not served from cache: %v", st2)
	}
	r1, _ := json.Marshal(st1["result"])
	r2, _ := json.Marshal(st2["result"])
	if !bytes.Equal(r1, r2) {
		t.Fatalf("cached result differs:\n%s\n%s", r1, r2)
	}
	if hits := s.Stats().Cache.Hits; hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// The hit must be visible in /debug/stats.
	rec, stats := doJSON(t, srv, "GET", "/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	schedStats, _ := stats["scheduler"].(map[string]any)
	cache, _ := schedStats["cache"].(map[string]any)
	if hits, _ := cache["hits"].(float64); hits != 1 {
		t.Errorf("/debug/stats cache hits = %v", cache)
	}
	if rate, _ := stats["cacheHitRate"].(float64); rate <= 0 {
		t.Errorf("cacheHitRate = %v", stats["cacheHitRate"])
	}
}

func TestSubmitCustomWorkloadJSON(t *testing.T) {
	srv, _ := testServer(t)
	profile := map[string]any{"name": "mini", "funcs": 4, "blocksPerFunc": 3, "blockInsts": 6}
	rec, st := doJSON(t, srv, "POST", "/v1/jobs?wait=1",
		map[string]any{"workloadJSON": profile, "variant": "dcf"})
	if rec.Code != http.StatusOK {
		t.Fatalf("custom workload: %d %s", rec.Code, rec.Body.String())
	}
	result, _ := st["result"].(map[string]any)
	if result["workload"] != "mini" || result["suite"] != "custom" {
		t.Fatalf("custom result: %v", result)
	}
}

func TestSubmitRejectsBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		name string
		code int
		body map[string]any
	}{
		{"bad variant", http.StatusBadRequest,
			map[string]any{"workload": "641.leela_s", "variant": "zelf"}},
		{"unknown workload", http.StatusNotFound,
			map[string]any{"workload": "does-not-exist"}},
		{"no workload", http.StatusBadRequest, map[string]any{"variant": "uelf"}},
		{"bad kind", http.StatusBadRequest, map[string]any{"kind": "explode"}},
		{"bad figure", http.StatusBadRequest, map[string]any{"kind": "figure", "figure": 4}},
		{"zero measure", http.StatusBadRequest,
			map[string]any{"workload": "641.leela_s", "measure": 0}},
		{"both workloads", http.StatusBadRequest,
			map[string]any{"workload": "641.leela_s", "workloadJSON": map[string]any{"name": "x"}}},
		{"bad profile", http.StatusBadRequest,
			map[string]any{"workloadJSON": map[string]any{"memKind": "warp-drive"}}},
		{"unknown field", http.StatusBadRequest, map[string]any{"wrkload": "oops"}},
	}
	for _, c := range cases {
		rec, _ := doJSON(t, srv, "POST", "/v1/jobs", c.body)
		if rec.Code != c.code {
			t.Errorf("%s: code = %d, want %d (%s)", c.name, rec.Code, c.code, rec.Body.String())
		}
	}
}

func TestCancelEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	// A long job: cancellation must interrupt it long before it finishes.
	rec, st := doJSON(t, srv, "POST", "/v1/jobs", map[string]any{
		"workload": "641.leela_s", "warmup": 0, "measure": 500_000_000,
	})
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", rec.Code, rec.Body.String())
	}
	id := st["id"].(string)
	rec, st = doJSON(t, srv, "DELETE", "/v1/jobs/"+id, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cancel: %d", rec.Code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, st = doJSON(t, srv, "GET", "/v1/jobs/"+id, nil)
		if st["state"] == string(sched.Canceled) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not cancelled: %v", st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestClientAbortCancelsWaitedJob(t *testing.T) {
	srv, s := testServer(t)
	body, _ := json.Marshal(map[string]any{
		"workload": "641.leela_s", "warmup": 0, "measure": 500_000_000,
	})
	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/jobs?wait=1", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		srv.ServeHTTP(rec, req)
		close(done)
	}()
	time.Sleep(50 * time.Millisecond) // let the job start
	cancel()                          // client hangs up
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("handler did not return after client abort")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().Canceled == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler never recorded the cancel: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestWorkloadsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest("GET", "/v1/workloads", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("workloads: %d", rec.Code)
	}
	var list []map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, wl := range list {
		names[wl["name"].(string)] = true
	}
	for _, want := range []string{"641.leela_s", "server1_subtest_1", "401.bzip2"} {
		if !names[want] {
			t.Errorf("workload list missing %s", want)
		}
	}
}

func TestUnknownJobIs404(t *testing.T) {
	srv, _ := testServer(t)
	for _, method := range []string{"GET", "DELETE"} {
		rec, _ := doJSON(t, srv, method, "/v1/jobs/j999999", nil)
		if rec.Code != http.StatusNotFound {
			t.Errorf("%s unknown job: %d", method, rec.Code)
		}
	}
}

func TestFigureEndpointBadInputs(t *testing.T) {
	srv, _ := testServer(t)
	for target, want := range map[string]int{
		"/v1/figures/5":               http.StatusBadRequest,
		"/v1/figures/abc":             http.StatusBadRequest,
		"/v1/figures/8?format=xml":    http.StatusBadRequest,
		"/v1/figures/8?warmup=banana": http.StatusBadRequest,
	} {
		rec, _ := doJSON(t, srv, "GET", target, nil)
		if rec.Code != want {
			t.Errorf("%s: code = %d, want %d", target, rec.Code, want)
		}
	}
}

func TestFigureEndpointEndToEndWithCache(t *testing.T) {
	if testing.Short() {
		t.Skip("full figure matrix")
	}
	srv, s := testServer(t)
	target := "/v1/figures/8?warmup=1000&insts=4000&format=json"

	rec, body := doJSON(t, srv, "GET", target, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("figure: %d %s", rec.Code, rec.Body.String())
	}
	table, _ := body["table"].(map[string]any)
	if title, _ := table["title"].(string); !strings.Contains(title, "Figure 8") {
		t.Fatalf("table title: %v", table["title"])
	}
	first := rec.Body.String()

	// Second request: identical payload, served from cache.
	rec, _ = doJSON(t, srv, "GET", target, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("figure rerun: %d", rec.Code)
	}
	if rec.Body.String() != first {
		t.Error("cached figure differs from the original run")
	}
	if hits := s.Stats().Cache.Hits; hits != 1 {
		t.Errorf("cache hits = %d, want 1", hits)
	}

	// Text rendering of the same cached figure.
	rec, _ = doJSON(t, srv, "GET", "/v1/figures/8?warmup=1000&insts=4000&format=text", nil)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "Figure 8") {
		t.Fatalf("text figure: %d %s", rec.Code, rec.Body.String())
	}
}

func TestDebugStatsShape(t *testing.T) {
	srv, _ := testServer(t)
	rec, stats := doJSON(t, srv, "GET", "/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	schedStats, ok := stats["scheduler"].(map[string]any)
	if !ok {
		t.Fatalf("no scheduler block: %v", stats)
	}
	for _, key := range []string{"workers", "queueDepth", "queued", "running", "submitted"} {
		if _, ok := schedStats[key]; !ok {
			t.Errorf("scheduler stats missing %q", key)
		}
	}
	if _, ok := stats["variantRuns"]; !ok {
		t.Error("stats missing variantRuns")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics: %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("content type %q is not Prometheus text format", ct)
	}
	body := rec.Body.String()
	// The pipeline probe histograms must be registered before any job runs.
	for _, want := range []string{
		"# TYPE elf_flush_recovery_cycles histogram",
		`elf_flush_recovery_cycles_bucket{le="+Inf"}`,
		"elf_faq_occupancy_blocks_count",
		"elf_coupled_residency_cycles_sum",
		"elfd_http_requests_total",
		"elfd_uptime_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if rec.Header().Get("X-Request-ID") == "" {
		t.Error("no X-Request-ID header")
	}
}

func TestMetricsObserveSimulations(t *testing.T) {
	srv, _ := testServer(t)
	rec, _ := doJSON(t, srv, "POST", "/v1/jobs?wait=1",
		map[string]any{"workload": "641.leela_s", "variant": "uelf"})
	if rec.Code != http.StatusOK {
		t.Fatalf("run: %d %s", rec.Code, rec.Body.String())
	}
	req := httptest.NewRequest("GET", "/metrics", nil)
	mrec := httptest.NewRecorder()
	srv.ServeHTTP(mrec, req)
	body := mrec.Body.String()
	if !strings.Contains(body, "elf_faq_occupancy_blocks_count") {
		t.Fatalf("no FAQ occupancy family:\n%s", body)
	}
	// The run must have fed the probe: occupancy is sampled periodically,
	// so a 10k-cycle-plus run cannot leave the histogram empty.
	var count float64
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "elf_faq_occupancy_blocks_count") {
			fmt.Sscanf(line, "elf_faq_occupancy_blocks_count %g", &count)
		}
	}
	if count == 0 {
		t.Error("simulation left elf_faq_occupancy_blocks empty; probe not attached")
	}
	if !strings.Contains(body, `elfd_runs_total{config="U-ELF"} 1`) {
		t.Error("metrics missing per-config run counter")
	}
}

func TestStatsHitRateZeroBeforeTraffic(t *testing.T) {
	srv, _ := testServer(t)
	rec, stats := doJSON(t, srv, "GET", "/debug/stats", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	// Before any request the hit rate must be exactly 0, never NaN (NaN
	// does not survive json.Marshal and would 500 the endpoint).
	rate, ok := stats["cacheHitRate"].(float64)
	if !ok || rate != 0 {
		t.Errorf("pre-traffic cacheHitRate = %v, want 0", stats["cacheHitRate"])
	}
	schedStats, _ := stats["scheduler"].(map[string]any)
	if _, ok := schedStats["queueHighWater"]; !ok {
		t.Error("scheduler stats missing queueHighWater")
	}
}

func TestTraceEndpoint(t *testing.T) {
	srv, _ := testServer(t)
	rec, st := doJSON(t, srv, "POST", "/v1/jobs?wait=1",
		map[string]any{"workload": "641.leela_s", "variant": "uelf", "trace": true, "traceMax": 512})
	if rec.Code != http.StatusOK {
		t.Fatalf("traced run: %d %s", rec.Code, rec.Body.String())
	}
	id, _ := st["id"].(string)
	if result, _ := st["result"].(map[string]any); result["traceJSON"] != nil || result["TraceJSON"] != nil {
		t.Error("trace payload leaked into the job status JSON")
	}

	rec, _ = doJSON(t, srv, "GET", "/v1/jobs/"+id+"/trace", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("trace fetch: %d %s", rec.Code, rec.Body.String())
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &trace); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) < 5 {
		t.Fatalf("implausibly small trace: %d events", len(trace.TraceEvents))
	}

	// An untraced job must 404 on the trace endpoint.
	rec, st = doJSON(t, srv, "POST", "/v1/jobs?wait=1",
		map[string]any{"workload": "641.leela_s"})
	if rec.Code != http.StatusOK {
		t.Fatalf("untraced run: %d", rec.Code)
	}
	rec, _ = doJSON(t, srv, "GET", "/v1/jobs/"+st["id"].(string)+"/trace", nil)
	if rec.Code != http.StatusNotFound {
		t.Errorf("untraced job trace fetch: %d, want 404", rec.Code)
	}

	// Trace on a non-run kind is a 400.
	rec, _ = doJSON(t, srv, "POST", "/v1/jobs",
		map[string]any{"kind": "figure", "figure": 8, "trace": true})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("trace on figure kind: %d, want 400", rec.Code)
	}
}
