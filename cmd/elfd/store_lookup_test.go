package main

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/pipeline"
	"elfetch/internal/sched"
	"elfetch/internal/store"
)

// TestCellLookup covers the three answers GET /v1/cells/{key} can give:
// a miss (404, "not here, simulate it yourself"), a hit from the
// scheduler's result cache on a store-less worker, and a hit straight
// from the persistent store on a server whose scheduler never ran the
// cell.
func TestCellLookup(t *testing.T) {
	srv, _ := testServer(t)

	rec, body := doJSON(t, srv, "GET", "/v1/cells/"+sched.Key("nothing"), nil)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("lookup on empty server: %d %s", rec.Code, rec.Body.String())
	}
	if errObj, ok := body["error"].(map[string]any); !ok || errObj["code"] != "not_found" {
		t.Fatalf("want not_found envelope, got %v", body)
	}

	// Cache-backed: POST the cell, then fetch it back by the same content
	// address the server keyed it under. The lookup must reproduce the
	// POST response.
	c := eval.Cell{
		Workload: "641.leela_s",
		Config:   pipeline.DefaultConfig(),
		Warmup:   1_000,
		Measure:  4_000,
	}
	rec, ran := doJSON(t, srv, "POST", "/v1/cells", c)
	if rec.Code != http.StatusOK {
		t.Fatalf("run cell: %d %s", rec.Code, rec.Body.String())
	}
	rec, got := doJSON(t, srv, "GET", "/v1/cells/"+sched.Key("cell", c), nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("cache-backed lookup: %d %s", rec.Code, rec.Body.String())
	}
	if got["ipc"] != ran["ipc"] || got["committed"] != ran["committed"] {
		t.Fatalf("lookup diverged from run:\nrun:    %v\nlookup: %v", ran, got)
	}

	// Store-backed: a server holding only a pre-filled store (its
	// scheduler has run nothing) serves the stored bytes verbatim.
	mem := store.NewMem(store.MemConfig{})
	stored := eval.Result{Workload: "641.leela_s", Config: "DCF", IPC: 1.25, Committed: 42}
	b, err := json.Marshal(stored)
	if err != nil {
		t.Fatal(err)
	}
	key := sched.Key("cell", c)
	if err := mem.Put(key, b); err != nil {
		t.Fatal(err)
	}
	s2 := sched.New(sched.Config{Workers: 1, QueueDepth: 8})
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	})
	srv2 := newServer(s2, eval.Params{Warmup: 1_000, Measure: 4_000}, serverOptions{Store: mem})
	rec, got = doJSON(t, srv2, "GET", "/v1/cells/"+key, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("store-backed lookup: %d %s", rec.Code, rec.Body.String())
	}
	if got["ipc"] != 1.25 || got["committed"] != float64(42) {
		t.Fatalf("store-backed lookup returned %v, want the stored result", got)
	}
}
