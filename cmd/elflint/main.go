// Command elflint runs the simulator's invariant analyzer suite
// (internal/lint) over the module: determinism of the simulation core,
// layering of the model/serving split, nil-gating of observation hooks,
// context discipline, the panic policy, and the CFG-based concurrency
// suite (goroutine exit paths, close-on-every-path, blocking-under-lock
// and lock ordering, atomic/plain access mixing).
//
// Usage:
//
//	elflint [-checks determinism,layering,...] [-json] [-timing] [packages]
//	elflint -fixtures internal/lint/testdata/src
//
// Packages default to ./... resolved against the current directory's
// module. Exit status: 0 clean, 1 findings, 2 usage or load failure.
//
// -json emits a stable envelope instead of file:line:col lines:
//
//	{
//	  "version": 1,
//	  "findings": [
//	    {"file": "...", "line": 1, "col": 1, "check": "...", "message": "..."}
//	  ]
//	}
//
// The version field tracks internal/lint.SchemaVersion and only moves on
// breaking changes, so CI artifact consumers can diff runs across
// commits.
//
// -fixtures flips elflint into self-test mode: every direct subdirectory
// of the given directory is loaded as an independent fixture module, and
// the run passes only if each one produces at least one finding. This is
// how CI proves the checks still bite before trusting a clean run on the
// real tree.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"elfetch/internal/lint"
)

// jsonEnvelope is the -json output shape (see the package comment).
type jsonEnvelope struct {
	Version  int               `json:"version"`
	Findings []lint.Diagnostic `json:"findings"`
}

func main() {
	var (
		checksFlag = flag.String("checks", "all",
			"comma-separated checks to run (all = full suite)")
		jsonFlag = flag.Bool("json", false,
			"emit findings as a versioned JSON envelope instead of file:line:col lines")
		listFlag = flag.Bool("list", false,
			"list available checks and exit")
		dirFlag = flag.String("C", ".",
			"directory whose module is analyzed")
		fixturesFlag = flag.String("fixtures", "",
			"self-test mode: treat each subdirectory as a fixture module and require findings in every one")
		timingFlag = flag.Bool("timing", false,
			"print per-check wall-clock timing to stderr after the run")
	)
	flag.Parse()

	if *listFlag {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name(), c.Doc())
		}
		return
	}

	if *fixturesFlag != "" {
		os.Exit(runFixtures(*fixturesFlag, *checksFlag))
	}

	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	diags, timings, err := lint.RunTimed(*dirFlag, patterns, checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		os.Exit(2)
	}

	if *jsonFlag {
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jsonEnvelope{Version: lint.SchemaVersion, Findings: diags}); err != nil {
			fmt.Fprintln(os.Stderr, "elflint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if *timingFlag {
		for _, tm := range timings {
			fmt.Fprintf(os.Stderr, "elflint: %-12s %8.1fms\n",
				tm.Check, float64(tm.Elapsed.Microseconds())/1000)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "elflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// runFixtures loads every direct subdirectory of dir as a fixture module
// and requires at least one finding from each — the analyzer equivalent
// of testing that the smoke detector still beeps. Returns the process
// exit code.
func runFixtures(dir, sel string) int {
	checks, err := lint.SelectChecks(sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		return 2
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		return 2
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		fmt.Fprintf(os.Stderr, "elflint: no fixture modules under %s\n", dir)
		return 2
	}
	failed := false
	for _, name := range names {
		// Each fixture gets fresh check instances: Finishers accumulate
		// module-wide state that must not bleed between modules.
		checks, err = lint.SelectChecks(sel)
		if err != nil {
			fmt.Fprintln(os.Stderr, "elflint:", err)
			return 2
		}
		diags, err := lint.Run(filepath.Join(dir, name), []string{"./..."}, checks)
		switch {
		case err != nil:
			fmt.Fprintf(os.Stderr, "elflint: fixture %s: %v\n", name, err)
			failed = true
		case len(diags) == 0:
			fmt.Fprintf(os.Stderr, "elflint: fixture %s: no findings — the checks it exists to prove have gone blind\n", name)
			failed = true
		default:
			fmt.Printf("fixture %-14s %d finding(s)\n", name, len(diags))
		}
	}
	if failed {
		return 1
	}
	return 0
}
