// Command elflint runs the simulator's invariant analyzer suite
// (internal/lint) over the module: determinism of the simulation core,
// layering of the model/serving split, nil-gating of observation hooks,
// context discipline, and the panic policy.
//
// Usage:
//
//	elflint [-checks determinism,layering,...] [-json] [packages]
//
// Packages default to ./... resolved against the current directory's
// module. Exit status: 0 clean, 1 findings, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"elfetch/internal/lint"
)

func main() {
	var (
		checksFlag = flag.String("checks", "all",
			"comma-separated checks to run (all = full suite)")
		jsonFlag = flag.Bool("json", false,
			"emit findings as a JSON array instead of file:line:col lines")
		listFlag = flag.Bool("list", false,
			"list available checks and exit")
		dirFlag = flag.String("C", ".",
			"directory whose module is analyzed")
	)
	flag.Parse()

	if *listFlag {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-12s %s\n", c.Name(), c.Doc())
		}
		return
	}

	checks, err := lint.SelectChecks(*checksFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	diags, err := lint.Run(*dirFlag, patterns, checks)
	if err != nil {
		fmt.Fprintln(os.Stderr, "elflint:", err)
		os.Exit(2)
	}

	if *jsonFlag {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "elflint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "elflint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
