// Command elfsim runs one workload on one front-end configuration and
// prints detailed statistics — the single-experiment companion to
// cmd/elfbench.
//
// Usage:
//
//	elfsim -workload 641.leela_s -front uelf -insts 1000000
//	elfsim -workload server1_subtest_1 -front dcf -v
//	elfsim -workload 641.leela_s -front uelf -probe -trace-out trace.json
//	elfsim -workload 641.leela_s -front uelf -backend fleet -fleet http://w1:8080
//
// With -backend fleet the measurement runs on a remote elfd worker
// (POST /v1/cells); the deterministic sim core makes the numbers
// identical to a local run. Machine-introspection flags (-compare,
// -probe, -trace-out, -profile) need the machine in-process and are
// rejected in fleet mode.
//
// -metrics-out dumps the run's metric registry (probe distributions
// locally, dispatch metrics in fleet mode) in Prometheus text format;
// a failed or interrupted fleet run also dumps the flight recorder to
// stderr (DESIGN.md §14).
//
// -store-dir DIR keeps results in a persistent store (DESIGN.md §15): a
// rerun of the same cell is answered from disk without simulating. Like
// fleet mode it prints only the Result summary, so the introspection
// flags are rejected with it.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"elfetch/internal/btb"
	"elfetch/internal/core"
	"elfetch/internal/eval"
	"elfetch/internal/exec"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/report"
	"elfetch/internal/store"
	"elfetch/internal/uop"
	"elfetch/internal/workload"
)

func frontConfig(name string) (pipeline.Config, error) {
	base := pipeline.DefaultConfig()
	switch strings.ToLower(name) {
	case "nodcf":
		return base.NoDCF(), nil
	case "dcf":
		return base, nil
	case "lelf", "l-elf":
		return base.WithVariant(core.LELF), nil
	case "retelf", "ret-elf":
		return base.WithVariant(core.RETELF), nil
	case "indelf", "ind-elf":
		return base.WithVariant(core.INDELF), nil
	case "condelf", "cond-elf":
		return base.WithVariant(core.CONDELF), nil
	case "uelf", "u-elf":
		return base.WithVariant(core.UELF), nil
	default:
		return base, fmt.Errorf("unknown front-end %q (nodcf|dcf|lelf|retelf|indelf|condelf|uelf)", name)
	}
}

func main() {
	wl := flag.String("workload", "641.leela_s", "workload name (see elfbench -list)")
	front := flag.String("front", "dcf", "front-end: nodcf|dcf|lelf|retelf|indelf|condelf|uelf")
	insts := flag.Uint64("insts", 1_000_000, "instructions to measure")
	warmup := flag.Uint64("warmup", 200_000, "warmup instructions")
	compare := flag.Bool("compare", false, "run every front-end on the workload and tabulate")
	profile := flag.String("profile", "", "path to a JSON workload definition (overrides -workload)")
	probeOn := flag.Bool("probe", false, "collect and print front-end latency/occupancy distributions")
	traceOut := flag.String("trace-out", "", "write Chrome trace JSON of the measured window to this file (view in Perfetto)")
	traceMax := flag.Int("trace-max", 4096, "max instruction events recorded for -trace-out")
	backend := flag.String("backend", "local", "execution backend: local or fleet")
	fleet := flag.String("fleet", "", "comma-separated elfd worker base URLs (with -backend fleet)")
	metricsOut := flag.String("metrics-out", "", "write the final metric registry to this file (Prometheus text format)")
	storeDir := flag.String("store-dir", "", "persistent result store directory (empty = no store); a stored cell is answered without re-simulating")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "persistent store quota in bytes (0 = 1 GiB)")
	flag.Parse()

	if *backend == "fleet" {
		runFleet(*wl, *front, *warmup, *insts, *fleet, *metricsOut, *storeDir, *storeMaxBytes,
			*compare, *profile != "", *probeOn, *traceOut != "")
		return
	}
	if *backend != "" && *backend != "local" {
		fmt.Fprintf(os.Stderr, "unknown backend %q (want local or fleet)\n", *backend)
		os.Exit(2)
	}
	if *fleet != "" {
		fmt.Fprintln(os.Stderr, "-fleet is only meaningful with -backend fleet")
		os.Exit(2)
	}
	if *storeDir != "" {
		runStored(*wl, *front, *warmup, *insts, *storeDir, *storeMaxBytes, *metricsOut,
			*compare, *profile != "", *probeOn, *traceOut != "")
		return
	}

	var e *workload.Entry
	if *profile != "" {
		f, err := os.Open(*profile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		name, prog, err := workload.FromJSON(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		e = workload.Custom(name, prog)
	} else {
		var err error
		e, err = workload.Lookup(*wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *compare {
		compareFronts(e, *warmup, *insts)
		return
	}
	cfg, err := frontConfig(*front)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	m := pipeline.MustNew(cfg, e.Program())
	start := time.Now()
	if *warmup > 0 {
		m.Run(*warmup)
		m.ResetStats()
	}
	var reg *obs.Registry
	if *probeOn || *metricsOut != "" {
		// -metrics-out without -probe still attaches the probe: the dump is
		// only useful with the distributions populated.
		reg = obs.NewRegistry()
		m.AttachProbe(eval.NewProbe(reg))
	}
	var tr *pipeline.Tracer
	if *traceOut != "" {
		tr = pipeline.NewTracer(*traceMax)
		m.AttachTracer(tr)
	}
	st := m.Run(*insts)
	wall := time.Since(start)

	fmt.Printf("workload  %s (%s)\n", e.Name, e.Suite)
	fmt.Printf("frontend  %s\n", cfg.Name())
	fmt.Printf("insts     %d committed in %d cycles (%.1f KIPS wall)\n",
		st.Committed, st.Cycles, float64(st.Committed+*warmup)/wall.Seconds()/1000)
	fmt.Printf("IPC       %.4f\n", st.IPC())
	fmt.Printf("MPKI      %.2f cond (%.2f incl. indirect)\n", st.BranchMPKI(), st.TotalMPKI())
	fmt.Printf("branches  %d cond (%d misp), %d indirect (%d misp), %d returns, %d taken\n",
		st.CondBranches, st.CondMispredict, st.IndBranches, st.IndMispredict, st.Returns, st.TakenBranches)
	fmt.Printf("flushes   %d branch, %d target, %d memorder, %d frontend-resteers\n",
		st.Flushes[uop.FlushBranch], st.Flushes[uop.FlushTarget],
		st.Flushes[uop.FlushMemOrder], st.Flushes[uop.FlushFrontend])
	fmt.Printf("fetch     %d uops (%d wrong-path, %.1f%%), %d taken-bubbles, %d prefetches\n",
		st.FetchedUops, st.WrongPathFetched,
		100*float64(st.WrongPathFetched)/float64(st.FetchedUops),
		st.TakenBubbles, st.PrefetchIssued)
	bs := m.BTBStats()
	fmt.Printf("BTB       %.1f%% / %.1f%% / %.1f%% hit (L0/L1/L2), %d misses\n",
		100*bs.HitRate(btb.L0), 100*bs.HitRate(btb.L1), 100*bs.HitRate(btb.L2), bs.Misses)
	h := m.Hierarchy()
	fmt.Printf("caches    L0I %.2f%% miss, L1I %.2f%%, L1D %.2f%%, L2 %.2f%%, L3 %.2f%%\n",
		100*h.L0I.MissRate(), 100*h.L1I.MissRate(), 100*h.L1D.MissRate(),
		100*h.L2.MissRate(), 100*h.L3.MissRate())
	fmt.Printf("backend   %d RAW violations, %d wrong-path executed\n",
		m.Backend().LoadViolations, m.Backend().WrongPathExec)
	if cfg.Front == pipeline.FrontDCF && cfg.Variant.Elastic() {
		elf := m.ELF()
		fmt.Printf("ELF       %d periods, %.1f avg coupled insts/period, %d switches, %d pops\n",
			elf.Periods, elf.AvgCoupledInsts(), elf.ResyncSwitches, elf.ResyncPops)
		fmt.Printf("          divergences: %d direction, %d direct-tgt, %d indirect-tgt; %d overshoot squashes\n",
			elf.Divergences[core.DivDirection], elf.Divergences[core.DivDirectTarget],
			elf.Divergences[core.DivIndirectTarget], elf.OvershootSquashes)
		fmt.Printf("          %d coupled-fetched uops, %d ckpt-deferred cycles\n",
			st.CoupledFetched, st.CkptDeferredCycles)
	}
	fmt.Printf("census    cpl-fetch %d, cpl-stall %d, switch-wait %d, dec-fetch %d, faq-empty %d,\n"+
		"          icache-busy %d, redirect %d, halted %d, backpressure %d\n",
		st.CycCoupledFetch, st.CycCoupledStall, st.CycSwitchPending, st.CycDecoupledFetch,
		st.CycFAQEmpty, st.CycFetchBusy, st.CycRedirect, st.CycHalted, st.CycBackpressure)
	if st.WatchdogRecoveries > 0 {
		fmt.Printf("WARNING   %d watchdog recoveries\n", st.WatchdogRecoveries)
	}
	if *probeOn {
		printProbe(reg, m, cfg)
	}
	if *metricsOut != "" {
		if err := writeMetricsFile(*metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if tr != nil {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\ntrace     %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *traceOut)
	}
}

// writeMetricsFile dumps the registry in Prometheus text format.
func writeMetricsFile(path string, reg *obs.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpEvents writes the flight-recorder tail to stderr so a failed or
// interrupted run leaves a post-mortem trail.
func dumpEvents(events *obs.Ring) {
	if events == nil || events.Total() == 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "flight recorder (%d events recorded, oldest first):\n", events.Total())
	if err := events.WriteJSON(os.Stderr, 0); err != nil {
		fmt.Fprintln(os.Stderr, "flight recorder dump:", err)
	}
	fmt.Fprintln(os.Stderr)
}

// rejectIntrospection fails fast on flags that need the machine in this
// process: the backend paths only carry an eval.Result (and a stored hit
// never builds a machine at all).
func rejectIntrospection(mode string, compare, profile, probe, trace bool) {
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	switch {
	case compare:
		usage("-compare needs the machine in-process; drop " + mode)
	case profile:
		usage("-profile workloads are not content-addressed by registry name; drop " + mode)
	case probe:
		usage("-probe needs the machine in-process; drop " + mode)
	case trace:
		usage("-trace-out needs the machine in-process; drop " + mode)
	}
}

// printResultSummary renders the wire-format Result lines shared by the
// fleet and stored-run paths.
func printResultSummary(r eval.Result) {
	fmt.Printf("insts     %d committed in %d cycles\n", r.Committed, r.Cycles)
	fmt.Printf("IPC       %.4f\n", r.IPC)
	fmt.Printf("MPKI      %.2f\n", r.MPKI)
	fmt.Printf("BTB       %.1f%% / %.1f%% / %.1f%% hit (L0/L1/L2)\n",
		100*r.BTBHit[0], 100*r.BTBHit[1], 100*r.BTBHit[2])
	fmt.Printf("caches    L1I %.2f%% miss\n", 100*r.L1IMiss)
	fmt.Printf("fetch     %d wrong-path uops, %d prefetches, %d resteers\n",
		r.WrongPath, r.Prefetches, r.Resteers)
	if r.AvgCoupled > 0 {
		fmt.Printf("ELF       %.1f avg coupled insts/period\n", r.AvgCoupled)
	}
}

// openStore opens the disk tier behind -store-dir (exiting on failure).
func openStore(dir string, maxBytes int64, reg *obs.Registry, events *obs.Ring) *store.Disk {
	d, err := store.Open(store.DiskConfig{Dir: dir, MaxBytes: maxBytes,
		Metrics: reg, Events: events})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return d
}

// runStored runs one cell through a store-backed local backend: a cell
// already in the store is answered from disk without simulating (only
// the Result summary can be printed — there is no in-process machine to
// introspect on a hit).
func runStored(wl, front string, warmup, insts uint64, dir string, maxBytes int64,
	metricsOut string, compare, profile, probe, trace bool) {
	rejectIntrospection("-store-dir", compare, profile, probe, trace)
	cfg, err := frontConfig(front)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	reg := obs.NewRegistry()
	events := obs.NewRing(0)
	st := openStore(dir, maxBytes, reg, events)
	defer st.Close()
	be := exec.NewLocal(exec.LocalConfig{Metrics: reg, Events: events, Store: st})
	defer be.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	r, err := be.Run(ctx, eval.Cell{Workload: wl, Config: cfg, Warmup: warmup, Measure: insts})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		dumpEvents(events)
		os.Exit(1)
	}
	ts := st.Stats()[0]
	fmt.Printf("workload  %s (%s)\n", r.Workload, r.Suite)
	fmt.Printf("frontend  %s\n", r.Config)
	source := "simulated, stored for next time"
	if ts.Hits > 0 {
		source = "answered from store"
	}
	fmt.Printf("backend   local+store (%s: %s, %d entries) in %.1fs\n",
		source, dir, ts.Entries, time.Since(start).Seconds())
	printResultSummary(r)
	if metricsOut != "" {
		if err := writeMetricsFile(metricsOut, reg); err != nil {
			fmt.Fprintln(os.Stderr, "metrics-out:", err)
			os.Exit(1)
		}
	}
}

// runFleet dispatches one cell to a remote elfd worker and prints the
// Result summary. Introspection flags are rejected: they need the
// machine in this process, and only the Result travels back over the
// wire. With -store-dir the cell is first looked up in (and afterwards
// stored to) the local persistent store.
func runFleet(wl, front string, warmup, insts uint64, fleet, metricsOut, storeDir string,
	storeMaxBytes int64, compare, profile, probe, trace bool) {
	usage := func(msg string) {
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(2)
	}
	rejectIntrospection("-backend fleet", compare, profile, probe, trace)
	var addrs []string
	for _, a := range strings.Split(fleet, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		usage("-backend fleet needs -fleet host1,host2,...")
	}
	cfg, err := frontConfig(front)
	if err != nil {
		usage(err.Error())
	}
	reg := obs.NewRegistry()
	events := obs.NewRing(0)
	var pstore store.Store
	if storeDir != "" {
		d := openStore(storeDir, storeMaxBytes, reg, events)
		defer d.Close()
		pstore = d
	}
	f, err := exec.NewFleet(exec.FleetConfig{
		Workers:  addrs,
		Fallback: exec.NewLocal(exec.LocalConfig{Events: events, Store: pstore}),
		Metrics:  reg,
		Events:   events,
		Store:    pstore,
	})
	if err != nil {
		usage(err.Error())
	}
	defer f.Close()
	flush := func() {
		if metricsOut != "" {
			if err := writeMetricsFile(metricsOut, reg); err != nil {
				fmt.Fprintln(os.Stderr, "metrics-out:", err)
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	start := time.Now()
	r, err := f.Run(ctx, eval.Cell{Workload: wl, Config: cfg, Warmup: warmup, Measure: insts})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		dumpEvents(events)
		flush()
		os.Exit(1)
	}
	defer flush()
	st := f.Stats()
	fmt.Printf("workload  %s (%s)\n", r.Workload, r.Suite)
	fmt.Printf("frontend  %s\n", r.Config)
	fmt.Printf("backend   fleet (%d workers, %d via fallback) in %.1fs\n",
		len(st.Workers), st.Fallback, time.Since(start).Seconds())
	printResultSummary(r)
}

// printProbe renders the measurement-window distributions the probe
// collected. eval.NewProbe is idempotent per registry, so calling it again
// here hands back the same histograms the run observed into.
func printProbe(reg *obs.Registry, m *pipeline.Machine, cfg pipeline.Config) {
	p := eval.NewProbe(reg)
	fmt.Printf("\nFAQ high-water %d of %d blocks\n", m.FAQHighWater(), cfg.FAQSize)
	for _, h := range []struct {
		title string
		obs   pipeline.Observer
	}{
		{"flush recovery latency (cycles)", p.FlushRecovery},
		{"FAQ occupancy (blocks, sampled)", p.FAQOccupancy},
		{"coupled-mode residency (cycles)", p.CoupledResidency},
		{"resync drain latency (cycles)", p.ResyncDrain},
	} {
		fmt.Println()
		report.Hist(h.title, h.obs.(*obs.Histogram).Snapshot()).WriteText(os.Stdout)
	}
}

// compareFronts runs every organisation on one workload.
func compareFronts(e *workload.Entry, warmup, insts uint64) {
	t := report.New("all front-ends on "+e.Name,
		"front", "IPC", "rel-DCF", "MPKI", "flushes", "wrong-path%", "cpl/prd")
	var dcfIPC float64
	for _, name := range []string{"dcf", "nodcf", "lelf", "retelf", "indelf", "condelf", "uelf"} {
		cfg, err := frontConfig(name)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		m := pipeline.MustNew(cfg, e.Program())
		if warmup > 0 {
			m.Run(warmup)
			m.ResetStats()
		}
		st := m.Run(insts)
		if cfg.Name() == "DCF" {
			dcfIPC = st.IPC()
		}
		rel := "-"
		if dcfIPC > 0 {
			rel = report.F(st.IPC() / dcfIPC)
		}
		flushes := st.Flushes[uop.FlushBranch] + st.Flushes[uop.FlushTarget] + st.Flushes[uop.FlushMemOrder]
		t.Add(cfg.Name(), report.F(st.IPC()), rel, report.F1(st.BranchMPKI()),
			report.I(flushes),
			report.Pct(float64(st.WrongPathFetched)/float64(st.FetchedUops)),
			report.F1(m.ELF().AvgCoupledInsts()))
	}
	t.Note("(rel-DCF is relative to the first row)")
	t.WriteText(os.Stdout)
}
