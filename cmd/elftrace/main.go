// Command elftrace inspects a workload's oracle instruction stream: it can
// dump the first N dynamic instructions or summarise the stream's
// composition (branch density, taken rate, call depth, memory mix) — the
// workload-validation companion to elfsim/elfbench.
//
// Usage:
//
//	elftrace -workload 641.leela_s -n 30 -dump
//	elftrace -workload server1_subtest_1 -n 1000000
package main

import (
	"flag"
	"fmt"
	"os"

	"elfetch/internal/isa"
	"elfetch/internal/trace"
	"elfetch/internal/workload"
)

func main() {
	wl := flag.String("workload", "641.leela_s", "workload name (see elfbench -list)")
	n := flag.Uint64("n", 200_000, "instructions to walk")
	dump := flag.Bool("dump", false, "print each instruction instead of a summary")
	flag.Parse()

	e, err := workload.Lookup(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	p := e.Program()
	fmt.Printf("workload %s (%s)\n", e.Name, e.Suite)
	fmt.Printf("notes    %s\n", e.Notes)
	fmt.Printf("code     %d instructions (%.1f KB), %d functions, entry %v\n",
		p.Len(), float64(p.FootprintBytes())/1024, len(p.Funcs), p.Entry)

	o := trace.NewOracle(p)
	var d trace.Dyn
	var classCount [isa.NumClasses]uint64
	var taken, maxDepth uint64
	memAddrs := map[isa.Addr]struct{}{}
	for i := uint64(0); i < *n; i++ {
		o.Step(&d)
		classCount[d.SI.Class]++
		if d.Taken {
			taken++
		}
		if uint64(o.Depth()) > maxDepth {
			maxDepth = uint64(o.Depth())
		}
		if d.SI.Class.IsMemory() && len(memAddrs) < 1<<20 {
			memAddrs[d.MemAddr.Line(64)] = struct{}{}
		}
		if *dump {
			fmt.Printf("%8d  %v  %-8v taken=%-5v next=%v mem=%v\n",
				d.Seq, d.PC, d.SI.Class, d.Taken, d.NextPC, d.MemAddr)
		}
	}
	if *dump {
		return
	}

	fmt.Printf("\ndynamic mix over %d instructions:\n", *n)
	total := float64(*n)
	for c := isa.Class(0); int(c) < isa.NumClasses; c++ {
		if classCount[c] == 0 {
			continue
		}
		fmt.Printf("  %-8v %9d  (%5.2f%%)\n", c, classCount[c], 100*float64(classCount[c])/total)
	}
	branches := classCount[isa.CondBranch] + classCount[isa.Jump] + classCount[isa.Call] +
		classCount[isa.Ret] + classCount[isa.IndirectBranch] + classCount[isa.IndirectCall]
	fmt.Printf("\nbranch density   1 per %.1f insts (%d taken)\n", total/float64(branches), taken)
	fmt.Printf("max call depth   %d\n", maxDepth)
	fmt.Printf("data lines seen  %d (~%d KB touched)\n", len(memAddrs), len(memAddrs)*64/1024)
	if r := o.Restarts; r > 0 {
		fmt.Printf("WARNING: %d oracle restarts (malformed workload)\n", r)
	}
}
