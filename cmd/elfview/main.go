// Command elfview renders a text pipeline view (gem5 pipeview style) of a
// short execution window: one line per instruction, one column per cycle,
// with F/D/R/C marks for fetch, decode, rename and retire. Squashed
// instructions are tagged x (w if wrong-path), coupled-fetched ones c —
// ELF's coupled periods are directly visible after a flush.
//
//	elfview -workload 641.leela_s -front uelf -skip 50000 -window 120
//
// With -chrome the same window is also exported as Chrome trace-event
// JSON for Perfetto / chrome://tracing:
//
//	elfview -workload 641.leela_s -front uelf -chrome window.json
//
// -spans switches to distributed-trace conversion: it reads span JSON
// (from elfbench -spans-out or elfd's GET /debug/trace?format=json) and
// writes a Chrome trace that renders the coordinator and every worker on
// one timeline (DESIGN.md §14). -canonical replaces wall-clock times with
// deterministic logical ones for golden-file diffing:
//
//	elfview -spans spans.json -chrome fleet.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elfetch/internal/core"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// convertSpans renders a span-JSON file as Chrome trace-event JSON —
// to the -chrome path, or stdout when none is given.
func convertSpans(spansPath, chromePath string, canonical bool) error {
	f, err := os.Open(spansPath)
	if err != nil {
		return err
	}
	spans, err := obs.ReadSpansJSON(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", spansPath, err)
	}
	out := os.Stdout
	if chromePath != "" {
		out, err = os.Create(chromePath)
		if err != nil {
			return err
		}
	}
	if err := obs.WriteChromeTrace(out, spans, canonical); err != nil {
		if chromePath != "" {
			out.Close()
		}
		return err
	}
	if chromePath != "" {
		if err := out.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d spans to %s (load in https://ui.perfetto.dev or chrome://tracing)\n",
			len(spans), chromePath)
	}
	return nil
}

func main() {
	wl := flag.String("workload", "641.leela_s", "workload name")
	front := flag.String("front", "uelf", "front-end: nodcf|dcf|lelf|retelf|indelf|condelf|uelf")
	skip := flag.Uint64("skip", 50_000, "instructions to run before recording")
	window := flag.Uint64("window", 96, "instructions to record")
	chrome := flag.String("chrome", "", "also write the window as Chrome trace JSON to this file")
	spansIn := flag.String("spans", "", "convert this span-JSON file (elfbench -spans-out, elfd /debug/trace) to a Chrome trace instead of simulating")
	canonical := flag.Bool("canonical", false, "with -spans: deterministic logical timestamps instead of wall clock")
	flag.Parse()

	if *spansIn != "" {
		if err := convertSpans(*spansIn, *chrome, *canonical); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if *canonical {
		fmt.Fprintln(os.Stderr, "-canonical is only meaningful with -spans")
		os.Exit(2)
	}

	e, err := workload.Lookup(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := pipeline.DefaultConfig()
	var cfg pipeline.Config
	switch strings.ToLower(*front) {
	case "nodcf":
		cfg = base.NoDCF()
	case "dcf":
		cfg = base
	case "lelf":
		cfg = base.WithVariant(core.LELF)
	case "retelf":
		cfg = base.WithVariant(core.RETELF)
	case "indelf":
		cfg = base.WithVariant(core.INDELF)
	case "condelf":
		cfg = base.WithVariant(core.CONDELF)
	case "uelf":
		cfg = base.WithVariant(core.UELF)
	default:
		fmt.Fprintln(os.Stderr, "unknown front-end", *front)
		os.Exit(2)
	}

	m := pipeline.MustNew(cfg, e.Program())
	m.Run(*skip)
	tr := pipeline.NewTracer(int(*window) * 4)
	m.AttachTracer(tr)
	m.Run(*window)

	fmt.Printf("%s on %s — F fetch, D decode, R rename, C retire; tags: c coupled, x squashed, w wrong-path\n\n",
		cfg.Name(), e.Name)
	if err := tr.WritePipeview(os.Stdout, int(*window)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
}
