// Command elfview renders a text pipeline view (gem5 pipeview style) of a
// short execution window: one line per instruction, one column per cycle,
// with F/D/R/C marks for fetch, decode, rename and retire. Squashed
// instructions are tagged x (w if wrong-path), coupled-fetched ones c —
// ELF's coupled periods are directly visible after a flush.
//
//	elfview -workload 641.leela_s -front uelf -skip 50000 -window 120
//
// With -chrome the same window is also exported as Chrome trace-event
// JSON for Perfetto / chrome://tracing:
//
//	elfview -workload 641.leela_s -front uelf -chrome window.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

func main() {
	wl := flag.String("workload", "641.leela_s", "workload name")
	front := flag.String("front", "uelf", "front-end: nodcf|dcf|lelf|retelf|indelf|condelf|uelf")
	skip := flag.Uint64("skip", 50_000, "instructions to run before recording")
	window := flag.Uint64("window", 96, "instructions to record")
	chrome := flag.String("chrome", "", "also write the window as Chrome trace JSON to this file")
	flag.Parse()

	e, err := workload.Lookup(*wl)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	base := pipeline.DefaultConfig()
	var cfg pipeline.Config
	switch strings.ToLower(*front) {
	case "nodcf":
		cfg = base.NoDCF()
	case "dcf":
		cfg = base
	case "lelf":
		cfg = base.WithVariant(core.LELF)
	case "retelf":
		cfg = base.WithVariant(core.RETELF)
	case "indelf":
		cfg = base.WithVariant(core.INDELF)
	case "condelf":
		cfg = base.WithVariant(core.CONDELF)
	case "uelf":
		cfg = base.WithVariant(core.UELF)
	default:
		fmt.Fprintln(os.Stderr, "unknown front-end", *front)
		os.Exit(2)
	}

	m := pipeline.MustNew(cfg, e.Program())
	m.Run(*skip)
	tr := pipeline.NewTracer(int(*window) * 4)
	m.AttachTracer(tr)
	m.Run(*window)

	fmt.Printf("%s on %s — F fetch, D decode, R rename, C retire; tags: c coupled, x squashed, w wrong-path\n\n",
		cfg.Name(), e.Name)
	if err := tr.WritePipeview(os.Stdout, int(*window)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := tr.WriteChromeTrace(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s (load in https://ui.perfetto.dev or chrome://tracing)\n", *chrome)
	}
}
