// Package elfetch is a cycle-level CPU front-end simulator reproducing
// "Elastic Instruction Fetching" (Perais et al., HPCA 2019).
//
// The paper's machine — an 8-wide out-of-order core behind three front-end
// organisations — is implemented in full:
//
//   - NoDCF: a classic coupled pipeline (predictions attributed in parallel
//     with decode; taken branches cost decode-redirect bubbles);
//   - DCF: the baseline decoupled fetcher (BP1/BP2 address generation over a
//     3-level BTB into a Fetch Address Queue, FAQ-driven instruction
//     prefetching, decode-time BTB-miss recovery);
//   - ELF: DCF plus ELastic Fetching — after any pipeline flush the fetcher
//     probes the I-cache immediately in *coupled mode* while BP1 restarts,
//     resynchronizing via the paper's count/bitvector machinery. Five
//     variants are provided: L-ELF, RET-ELF, IND-ELF, COND-ELF and U-ELF.
//
// The package is a facade over the internal packages: build a Config, bind
// it to a workload (a registered synthetic proxy or a program assembled
// with the Builder), and Run.
//
//	m, _ := elfetch.NewMachine(elfetch.DefaultConfig().WithVariant(elfetch.UELF), "641.leela_s")
//	stats := m.Run(1_000_000)
//	fmt.Println(stats.IPC())
package elfetch

import (
	"io"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/program"
	"elfetch/internal/workload"
)

// Config is the full machine configuration (Table II defaults via
// DefaultConfig).
type Config = pipeline.Config

// Machine is one simulated core bound to a workload.
type Machine = pipeline.Machine

// Stats is the per-run metric set (IPC, MPKI, flush taxonomy, ...).
type Stats = pipeline.Stats

// Variant selects an ELF flavor (Section IV-C1 of the paper).
type Variant = core.Variant

// The ELF variants. NoELF is the plain decoupled-fetcher baseline.
const (
	NoELF   = core.NoELF
	LELF    = core.LELF
	RETELF  = core.RETELF
	INDELF  = core.INDELF
	CONDELF = core.CONDELF
	UELF    = core.UELF
)

// ParseVariant parses a variant name ("uelf", "U-ELF", "dcf", ...). It
// round-trips with Variant.String.
func ParseVariant(s string) (Variant, error) { return core.ParseVariant(s) }

// CheckpointPolicy selects how flushes from coupled-fetched instructions
// wait for their branch-prediction checkpoints (Section IV-D1).
type CheckpointPolicy = pipeline.CheckpointPolicy

// Checkpoint policies.
const (
	CkptLateBind    = pipeline.CkptLateBind
	CkptROBHeadWait = pipeline.CkptROBHeadWait
)

// Program is a synthetic static program (code image + behaviour models).
type Program = program.Program

// Builder assembles custom programs from functions and basic blocks.
type Builder = program.Builder

// NewBuilder starts a program at the given base address (use CodeBase).
func NewBuilder() *Builder { return program.NewBuilder(workload.CodeBase) }

// DefaultConfig returns the paper's Table II baseline: the decoupled
// fetcher with no ELF. Use WithVariant / NoDCF to select organisations.
func DefaultConfig() Config { return pipeline.DefaultConfig() }

// Workloads lists the registered synthetic workload names (the Table I
// proxies; see DESIGN.md for the substitution rationale).
func Workloads() []string {
	var names []string
	for _, e := range workload.All() {
		names = append(names, e.Name)
	}
	return names
}

// WorkloadProgram returns the generated program of a registered workload.
func WorkloadProgram(name string) (*Program, error) {
	e, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	return e.Program(), nil
}

// NewMachine builds a machine for a registered workload.
func NewMachine(cfg Config, workloadName string) (*Machine, error) {
	p, err := WorkloadProgram(workloadName)
	if err != nil {
		return nil, err
	}
	return pipeline.New(cfg, p)
}

// NewMachineFor builds a machine for a custom program.
func NewMachineFor(cfg Config, p *Program) (*Machine, error) {
	return pipeline.New(cfg, p)
}

// NewMachineFromJSON builds a machine for a workload defined as JSON (see
// internal/workload's FromJSON for the schema). Returns the workload's
// name alongside the machine.
func NewMachineFromJSON(cfg Config, r io.Reader) (string, *Machine, error) {
	name, p, err := workload.FromJSON(r)
	if err != nil {
		return "", nil, err
	}
	m, err := pipeline.New(cfg, p)
	return name, m, err
}
