package elfetch

import (
	"strings"
	"testing"

	"elfetch/internal/program"
)

func TestFacadeQuickstart(t *testing.T) {
	m, err := NewMachine(DefaultConfig().WithVariant(UELF), "641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(50_000)
	if st.IPC() <= 0 {
		t.Fatal("zero IPC through the facade")
	}
}

func TestFacadeWorkloadList(t *testing.T) {
	names := Workloads()
	if len(names) < 50 {
		t.Fatalf("registry has %d workloads; Table I implies ~60", len(names))
	}
	found := map[string]bool{}
	for _, n := range names {
		found[n] = true
	}
	for _, want := range []string{"641.leela_s", "433.milc", "server1_subtest_1", "server2_subtest_2"} {
		if !found[want] {
			t.Errorf("workload %q missing from the facade list", want)
		}
	}
}

func TestFacadeUnknownWorkload(t *testing.T) {
	if _, err := NewMachine(DefaultConfig(), "no-such"); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestFacadeCustomProgram(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main")
	f.Block("loop").Nop(4).CondTo(program.Loop{Trip: 8}, "loop").JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMachineFor(DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Run(20_000)
	if st.IPC() <= 0 {
		t.Fatal("custom program did not run")
	}
	// A Loop{8} backedge is fully predictable once learned.
	if st.BranchMPKI() > 10 {
		t.Errorf("MPKI %v on a pure loop", st.BranchMPKI())
	}
}

func TestVariantNames(t *testing.T) {
	for v, want := range map[Variant]string{
		NoELF: "DCF", LELF: "L-ELF", RETELF: "RET-ELF",
		INDELF: "IND-ELF", CONDELF: "COND-ELF", UELF: "U-ELF",
	} {
		if got := v.String(); got != want {
			t.Errorf("%v name = %q, want %q", v, got, want)
		}
		if !strings.Contains(DefaultConfig().WithVariant(v).Name(), strings.TrimPrefix(want, "")) {
			t.Errorf("config name for %v", v)
		}
	}
}

func TestFacadeJSONWorkload(t *testing.T) {
	js := `{"name": "jdemo", "funcs": 6, "mix": {"loops": 1}}`
	name, m, err := NewMachineFromJSON(DefaultConfig(), strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	if name != "jdemo" {
		t.Errorf("name = %q", name)
	}
	if st := m.Run(20_000); st.IPC() <= 0 {
		t.Fatal("JSON workload did not run")
	}
}

// TestTable2Defaults pins the DefaultConfig to the paper's Table II.
func TestTable2Defaults(t *testing.T) {
	c := DefaultConfig()
	if c.FetchWidth != 8 {
		t.Errorf("fetch width %d, want 8", c.FetchWidth)
	}
	if c.FAQSize != 32 {
		t.Errorf("FAQ %d, want 32", c.FAQSize)
	}
	if c.BPredToFetch != 3 {
		t.Errorf("BP1→FE %d, want 3 (BP1, BP2, FAQ)", c.BPredToFetch)
	}
	if c.Backend.ROB != 256 || c.Backend.IQ != 128 || c.Backend.LSQ != 128 {
		t.Errorf("ROB/IQ/LSQ %d/%d/%d, want 256/128/128", c.Backend.ROB, c.Backend.IQ, c.Backend.LSQ)
	}
	if w := c.Backend.ALUPorts + c.Backend.MemPorts + c.Backend.SIMDPorts + 1; w != 9 {
		t.Errorf("issue width %d, want 9", w)
	}
	if c.Backend.CommitWidth != 9 {
		t.Errorf("commit width %d, want 9", c.Backend.CommitWidth)
	}
	if c.BTB.L0Entries != 24 || c.BTB.L1Entries != 256 || c.BTB.L2Entries != 4096 {
		t.Errorf("BTB %d/%d/%d, want 24/256/4096", c.BTB.L0Entries, c.BTB.L1Entries, c.BTB.L2Entries)
	}
	if c.MaxPrefetch != 4 {
		t.Errorf("prefetch in flight %d, want 4", c.MaxPrefetch)
	}
	// Extensions beyond the paper default to off.
	if c.Boomerang || c.CoupledZeroBubble || c.CondConfidence {
		t.Error("paper-external extensions must default off")
	}
}
