// btbmiss shows the decoupled fetcher's Achilles heel — the Decode→BP1
// feedback loop exposed on BTB misses (Section III-C) — and how ELF hides
// part of it: a server-style kernel whose instruction footprint exceeds
// every BTB level forces constant sequential guessing and decode resteers.
//
//	go run ./examples/btbmiss
package main

import (
	"fmt"
	"log"

	"elfetch"
)

func main() {
	run := func(name string, cfg elfetch.Config) {
		m, err := elfetch.NewMachine(cfg, "server1_subtest_1")
		if err != nil {
			log.Fatal(err)
		}
		m.Run(150_000)
		m.ResetStats()
		st := m.Run(400_000)
		bs := m.BTBStats()
		fmt.Printf("%-8s IPC %.3f   BTB hit L0/L1/L2 %4.1f%%/%4.1f%%/%4.1f%%   decode-resteers %d\n",
			name, st.IPC(), 100*bs.HitRate(0), 100*bs.HitRate(1), 100*bs.HitRate(2),
			st.DecodeResteers)
	}
	base := elfetch.DefaultConfig()
	run("DCF", base)
	run("L-ELF", base.WithVariant(elfetch.LELF))
	run("U-ELF", base.WithVariant(elfetch.UELF))
}
