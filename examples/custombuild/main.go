// custombuild walks through the program-builder API: functions, blocks,
// every branch-behaviour model, indirect target selection, and memory
// address models — then runs the result on two front-ends.
//
//	go run ./examples/custombuild
package main

import (
	"fmt"
	"log"

	"elfetch"
	"elfetch/internal/program"
)

func main() {
	b := elfetch.NewBuilder()

	// main: drives two kernels forever.
	m := b.Func("main")
	m.Block("loop").
		CallTo("search").
		CallTo("stream").
		JumpTo("loop")

	// search: a recursion-flavoured kernel with a history-correlated
	// branch (TAGE learns it; a bimodal cannot) and an indirect dispatch.
	s := b.Func("search")
	entry := s.Block("entry")
	entry.Load(1, 0, program.RandomIn{Base: program.DataBase, Size: 16 << 10, Salt: 1})
	entry.CondTo(program.HistoryHash{Mask: 0x3F}, "dispatch")
	entry.Nop(3)
	s.Block("dispatch").
		IndirectTo(program.HistoryTarget{Mask: 0xFF}, "case0", "case1", "case2")
	s.Block("case0").Nop(4).JumpTo("done")
	s.Block("case1").MulDiv(2, 1, 1).JumpTo("done")
	s.Block("case2").Nop(2).JumpTo("done")
	s.Block("done").
		CondTo(program.Loop{Trip: 6}, "entry"). // bounded re-run
		Ret()

	// stream: a leslie3d-style strided loop with a store.
	st := b.Func("stream")
	lb := st.Block("body")
	lb.Load(3, 0, program.SeqStream{Base: program.DataBase + 1<<20, Size: 1 << 16, Stride: 8})
	lb.SIMD(4, 3, 3)
	lb.Store(4, 0, program.SeqStream{Base: program.DataBase + 2<<20, Size: 1 << 16, Stride: 8})
	lb.Nop(2)
	lb.CondTo(program.Loop{Trip: 32}, "body")
	st.Block("out").Ret()

	prog, err := b.Build("main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built %d instructions across %d functions\n\n", prog.Len(), len(prog.Funcs))

	for _, v := range []elfetch.Variant{elfetch.NoELF, elfetch.UELF} {
		mach, err := elfetch.NewMachineFor(elfetch.DefaultConfig().WithVariant(v), prog)
		if err != nil {
			log.Fatal(err)
		}
		mach.Run(100_000)
		mach.ResetStats()
		stats := mach.Run(400_000)
		fmt.Printf("%-6s IPC %.3f  MPKI %.1f  (indirect misp %d, returns %d)\n",
			v, stats.IPC(), stats.BranchMPKI(), stats.IndMispredict, stats.Returns)
	}
}
