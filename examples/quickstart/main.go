// Quickstart: build a tiny loop workload by hand, run it on the baseline
// decoupled fetcher (DCF) and on U-ELF, and compare IPC.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"elfetch"
	"elfetch/internal/program"
)

func main() {
	// A small kernel: an inner loop with a hard-to-predict branch, the
	// flush-heavy shape ELastic Fetching targets.
	b := elfetch.NewBuilder()
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(6)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 1}, "alt")
	loop.Nop(4)
	loop.JumpTo("loop")
	f.Block("alt").Nop(4).JumpTo("loop")
	prog, err := b.Build("main")
	if err != nil {
		log.Fatal(err)
	}

	run := func(cfg elfetch.Config) *elfetch.Stats {
		m, err := elfetch.NewMachineFor(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		m.Run(100_000) // warmup
		m.ResetStats()
		return m.Run(500_000)
	}

	base := elfetch.DefaultConfig()
	dcf := run(base)
	uelf := run(base.WithVariant(elfetch.UELF))

	fmt.Printf("DCF   IPC %.3f  (MPKI %.1f)\n", dcf.IPC(), dcf.BranchMPKI())
	fmt.Printf("U-ELF IPC %.3f  (MPKI %.1f)\n", uelf.IPC(), uelf.BranchMPKI())
	fmt.Printf("speedup %.2f%%\n", 100*(uelf.IPC()/dcf.IPC()-1))
}
