// serverprefetch reproduces the paper's server-1 story (Section VI-A): a
// transaction-server instruction footprint far beyond the I-cache makes
// FAQ-driven instruction prefetching worth tens of percent, which is why
// decoupled fetching is worth its costs — DCF beats the coupled NoDCF
// pipeline by a wide margin, and disabling the prefetcher gives the margin
// back.
//
//	go run ./examples/serverprefetch
package main

import (
	"fmt"
	"log"

	"elfetch"
)

func main() {
	run := func(name string, cfg elfetch.Config) float64 {
		m, err := elfetch.NewMachine(cfg, "server1_subtest_1")
		if err != nil {
			log.Fatal(err)
		}
		m.Run(150_000)
		m.ResetStats()
		st := m.Run(400_000)
		h := m.Hierarchy()
		fmt.Printf("%-16s IPC %.3f   L1I miss %5.2f%%   prefetches %d\n",
			name, st.IPC(), 100*h.L1I.MissRate(), st.PrefetchIssued)
		return st.IPC()
	}

	base := elfetch.DefaultConfig()
	noPF := base
	noPF.FAQPrefetch = false

	nodcf := run("NoDCF", base.NoDCF())
	dcf := run("DCF", base)
	run("DCF-noprefetch", noPF)
	fmt.Printf("\nDCF vs NoDCF: %+.1f%% (the paper reports ~+40%% on server 1)\n",
		100*(dcf/nodcf-1))
}
