// takenbubble demonstrates the taken-branch bubble and how the decoupled
// fetcher hides it (Figure 2 of the paper): a branchy kernel is run on the
// coupled pipeline (NoDCF, one decode-redirect bubble per taken branch),
// the full DCF (L0-BTB fast path: no bubble), and DCF without its L0 BTB
// (one bubble per taken branch at BP1).
//
//	go run ./examples/takenbubble
package main

import (
	"fmt"
	"log"

	"elfetch"
)

func main() {
	// A chain of tiny blocks linked by always-taken jumps: nearly every
	// fetch group ends in a taken branch, so taken-branch bubbles
	// dominate.
	b := elfetch.NewBuilder()
	f := b.Func("main")
	const blocks = 16
	for i := 0; i < blocks; i++ {
		blk := f.Block(fmt.Sprintf("b%d", i))
		blk.Nop(3)
		next := fmt.Sprintf("b%d", (i+1)%blocks)
		blk.JumpTo(next)
	}
	prog, err := b.Build("main")
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, cfg elfetch.Config) {
		m, err := elfetch.NewMachineFor(cfg, prog)
		if err != nil {
			log.Fatal(err)
		}
		m.Run(50_000)
		m.ResetStats()
		st := m.Run(300_000)
		fmt.Printf("%-12s IPC %.3f   taken-bubbles %d\n", name, st.IPC(), st.TakenBubbles)
	}

	base := elfetch.DefaultConfig()
	noL0 := base
	noL0.BTB.L0Entries = 0

	run("NoDCF", base.NoDCF())
	run("DCF", base)
	run("DCF-noL0BTB", noL0)
}
