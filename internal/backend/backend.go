// Package backend models the out-of-order execution engine of Table II:
// 8-wide rename, 9-wide issue and commit (4 ALU of which 2 MulDiv-capable,
// 2 load/store, 2 SIMD, 1 store-data), a 256-entry ROB, 128-entry issue
// queue and load/store queue, register renaming with true dependence
// tracking, and the PC-based memory-dependence filter whose RAW-violation
// flushes drive part of the paper's results (Section VI-B, milc).
//
// The backend is trace-agnostic: it executes whatever uops the front-end
// dispatches (including wrong-path ones, which occupy resources and access
// the data cache but never commit or raise flushes) and reports branch
// resolutions and memory-order violations as events for the pipeline to
// act on.
package backend

import (
	"elfetch/internal/cache"
	"elfetch/internal/isa"
	"elfetch/internal/ringq"
	"elfetch/internal/uop"
)

// Config sizes the engine.
type Config struct {
	ROB, IQ, LSQ int
	RenameWidth  int
	CommitWidth  int
	// Ports per class.
	ALUPorts, MulDivPorts, MemPorts, SIMDPorts int
	// Latencies per class (cycles); loads add the cache latency.
	ALULat, MulDivLat, SIMDLat, AGULat, BranchLat int
}

// DefaultConfig is Table II.
func DefaultConfig() Config {
	return Config{
		ROB: 256, IQ: 128, LSQ: 128,
		RenameWidth: 8, CommitWidth: 9,
		ALUPorts: 4, MulDivPorts: 2, MemPorts: 2, SIMDPorts: 2,
		ALULat: 1, MulDivLat: 12, SIMDLat: 4, AGULat: 1, BranchLat: 1,
	}
}

// entry state
const (
	stWaiting uint8 = iota
	stReady
	stIssued
	stDone
)

type robEntry struct {
	u       uop.Uop
	id      uint64 // absolute age
	state   uint8
	pending int8 // outstanding source operands
	doneAt  uint64
	// mdpWait, if >= 0, is the absolute id of a store this load must
	// wait for (memory-dependence filter).
	mdpWait int64
	// srcProd are the absolute ids of the source producers (-1 none);
	// kept so dependence edges can be rebuilt after a squash.
	srcProd [2]int64
	// addrDone marks a store whose address has resolved (it "executed").
	addrDone bool
}

// Resolution is a completed event the pipeline must act on.
type Resolution struct {
	// ID is the rob entry's absolute id.
	ID uint64
	// U is a copy of the resolving uop.
	U uop.Uop
	// Kind classifies the required flush.
	Kind uop.FlushKind
	// RefetchSeq is the correct-path sequence to resteer fetch to.
	RefetchSeq uint64
	// RefetchPC is the PC to resteer fetch to.
	RefetchPC isa.Addr
}

// Backend is the engine.
type Backend struct {
	cfg  Config
	hier *cache.Hierarchy

	rob      []robEntry
	robHead  uint64 // oldest absolute id
	robTail  uint64 // next absolute id
	iqCount  int
	lsqCount int

	// rat maps architectural registers to producing entry ids (-1 none).
	rat [isa.NumArchRegs]int64

	// dependence edges: depHead[slot] is the first edge of the producer
	// in rob slot; edges are identified as consumerSlot*2+srcIndex.
	depHead []int32
	depNext []int32

	ready    []int32 // rob slots ready to issue (unsorted, small)
	deferred []int32 // scratch: port-starved ready entries within a cycle

	// wheel buckets issued entries by completion cycle so complete() does
	// not scan the whole window every cycle. wheelMask+1 exceeds the
	// maximum execution latency (memory: 250 cycles).
	wheel [512][]int32

	mdp MDP
	// mdpWaiters lists rob slots of loads gated by the dependence filter.
	mdpWaiters []int32

	// pendingResolutions holds branch/memory events awaiting pipeline
	// action, oldest first. A ring: resolutions are raised and consumed
	// every few cycles, and the old head-reslice idiom leaked the popped
	// front capacity, forcing a fresh allocation per raise.
	pendingResolutions *ringq.Queue[Resolution]

	// retired accumulates committed uops for the pipeline to drain each
	// cycle (BTB establishment, predictor training).
	retired []uop.Uop

	// commitLimit fences retirement below a deferred resolution: the
	// entry at commitLimit (and younger) may not retire this cycle.
	commitLimit uint64

	// Trace enables debug prints (tests only).
	Trace bool

	// Stats.
	Committed       uint64
	ForwardedLoads  uint64
	WrongPathExec   uint64
	LoadViolations  uint64
	DeferredFlushes uint64
}

// New builds a backend over the given memory hierarchy.
func New(cfg Config, hier *cache.Hierarchy) *Backend {
	b := &Backend{
		commitLimit: ^uint64(0),
		cfg:         cfg,
		hier:        hier,
		rob:         make([]robEntry, cfg.ROB),
		depHead:     make([]int32, cfg.ROB),
		depNext:     make([]int32, cfg.ROB*2),
		// Steady-state allocation discipline (DESIGN.md §17): every
		// per-cycle buffer gets its worst-case capacity up front. ready,
		// deferred and mdpWaiters hold rob slots, so the window size
		// bounds them; retired is drained by the pipeline every cycle.
		ready:              make([]int32, 0, cfg.ROB),
		deferred:           make([]int32, 0, cfg.ROB),
		mdpWaiters:         make([]int32, 0, cfg.ROB),
		retired:            make([]uop.Uop, 0, 2*cfg.CommitWidth),
		pendingResolutions: ringq.New[Resolution](16),
	}
	for i := range b.wheel {
		b.wheel[i] = make([]int32, 0, 16)
	}
	for i := range b.rat {
		b.rat[i] = -1
	}
	for i := range b.depHead {
		b.depHead[i] = -1
	}
	b.mdp.Reset()
	return b
}

func (b *Backend) slot(id uint64) *robEntry { return &b.rob[id%uint64(len(b.rob))] }

// ROBFull reports whether another uop can be accepted.
func (b *Backend) ROBFull() bool { return b.robTail-b.robHead >= uint64(len(b.rob)) }

// ROBEmpty reports an empty window.
func (b *Backend) ROBEmpty() bool { return b.robTail == b.robHead }

// Occupancy returns the number of in-flight uops.
func (b *Backend) Occupancy() int { return int(b.robTail - b.robHead) }

// Accept renames and dispatches one uop; it returns false (and leaves the
// uop untaken) when a resource is exhausted. The caller enforces the
// rename-width limit per cycle.
func (b *Backend) Accept(u uop.Uop) bool {
	if b.ROBFull() || b.iqCount >= b.cfg.IQ {
		return false
	}
	if u.SI.Class.IsMemory() && b.lsqCount >= b.cfg.LSQ {
		return false
	}
	id := b.robTail
	e := b.slot(id)
	*e = robEntry{u: u, id: id, mdpWait: -1, srcProd: [2]int64{-1, -1}}
	slotIdx := int32(id % uint64(len(b.rob)))
	b.depHead[slotIdx] = -1

	// Source dependences through the RAT.
	srcs := [2]isa.Reg{u.SI.Src1, u.SI.Src2}
	for s, r := range srcs {
		if r == isa.RegZero {
			continue
		}
		pid := b.rat[r]
		if pid < 0 || uint64(pid) < b.robHead {
			continue
		}
		pe := b.slot(uint64(pid))
		if pe.id != uint64(pid) || pe.state == stDone {
			continue
		}
		// Link edge consumer(slotIdx, s) onto producer pid's list.
		edge := slotIdx*2 + int32(s)
		pslot := int32(uint64(pid) % uint64(len(b.rob)))
		b.depNext[edge] = b.depHead[pslot]
		b.depHead[pslot] = edge
		e.srcProd[s] = pid
		e.pending++
	}

	// Memory-dependence filter: a load predicted to conflict waits for
	// the youngest older in-flight store with the recorded store PC.
	if u.SI.Class == isa.Load && !u.WrongPath {
		if storePC, ok := b.mdp.Lookup(u.PC); ok {
			for id2 := b.robTail; id2 > b.robHead; id2-- {
				se := b.slot(id2 - 1)
				if se.u.SI.Class == isa.Store && se.u.PC == storePC && !se.addrDone {
					e.mdpWait = int64(se.id)
					b.mdpWaiters = append(b.mdpWaiters, slotIdx)
					break
				}
			}
		}
	}

	if u.SI.Dest != isa.RegZero {
		b.rat[u.SI.Dest] = int64(id)
	}
	b.robTail++
	b.iqCount++
	if u.SI.Class.IsMemory() {
		b.lsqCount++
	}
	if e.pending == 0 && e.mdpWait < 0 {
		e.state = stReady
		b.ready = append(b.ready, slotIdx)
	}
	return true
}

// latencyFor returns the execution latency of a uop, performing the data
// cache access for memory operations (side effects included — wrong-path
// pollution is the point).
func (b *Backend) latencyFor(u *uop.Uop) int {
	switch u.SI.Class {
	case isa.MulDiv:
		return b.cfg.MulDivLat
	case isa.SIMD:
		return b.cfg.SIMDLat
	case isa.Load:
		// Store-to-load forwarding: a load whose address matches an
		// older in-flight store with a resolved address reads the
		// store buffer instead of the cache (1-cycle bypass).
		if b.forwardableStore(u) {
			b.ForwardedLoads++
			return b.cfg.AGULat + 1
		}
		if u.WrongPath {
			return b.cfg.AGULat + b.hier.WrongPathData(u.MemAddr)
		}
		return b.cfg.AGULat + b.hier.DataLatency(u.PC, u.MemAddr)
	case isa.Store:
		return b.cfg.AGULat // address generation; data drains at commit
	default:
		if u.SI.Class.IsBranch() {
			return b.cfg.BranchLat
		}
		return b.cfg.ALULat
	}
}

// forwardableStore reports an older in-flight store to the same 8-byte
// slot whose address has resolved — the store-buffer forwarding case.
func (b *Backend) forwardableStore(u *uop.Uop) bool {
	line := u.MemAddr &^ 7
	// Walk young→old so the *youngest* matching older store decides.
	id := b.robTail
	for id > b.robHead {
		id--
		e := b.slot(id)
		if e.u.FetchID == u.FetchID {
			// Entries younger than the load are not eligible; restart
			// the scan below the load itself.
			continue
		}
		if e.u.SI.Class == isa.Store && e.addrDone && e.u.MemAddr&^7 == line &&
			e.u.WrongPath == u.WrongPath && e.id < b.loadID(u) {
			return true
		}
	}
	return false
}

// loadID finds the in-flight id of u (scan; loads issue rarely enough).
func (b *Backend) loadID(u *uop.Uop) uint64 {
	if id, ok := b.FindByFetchID(u.FetchID); ok {
		return id
	}
	return b.robTail
}

// Cycle advances the engine: completion/wakeup, then issue.
func (b *Backend) Cycle(now uint64) {
	b.complete(now)
	b.issue(now)
}

// complete finishes executions whose latency elapsed, wakes dependents,
// and raises resolution events.
func (b *Backend) complete(now uint64) {
	slot := now % uint64(len(b.wheel))
	bucket := b.wheel[slot]
	b.wheel[slot] = bucket[:0]
	for _, slotIdx32 := range bucket {
		e := &b.rob[slotIdx32]
		if e.state == stIssued && e.doneAt > now && e.id != ^uint64(0) {
			// Latency beyond one wheel revolution (e.g. MSHR-queued
			// misses): re-arm for the next pass.
			b.wheel[slot] = append(b.wheel[slot], slotIdx32)
			continue
		}
		if e.state != stIssued || e.doneAt != now || e.id == ^uint64(0) {
			continue // squashed or re-allocated slot
		}
		e.state = stDone
		slotIdx := slotIdx32
		// Wake dependents.
		for edge := b.depHead[slotIdx]; edge >= 0; edge = b.depNext[edge] {
			cons := edge / 2
			ce := &b.rob[cons]
			if ce.state != stWaiting {
				continue
			}
			ce.pending--
			if ce.pending == 0 && ce.mdpWaitSatisfied(b) {
				ce.state = stReady
				b.ready = append(b.ready, cons)
			}
		}
		b.depHead[slotIdx] = -1

		switch {
		case e.u.SI.Class == isa.Store:
			e.addrDone = true
			if !e.u.WrongPath {
				b.checkStoreOrderViolation(e)
			}
			b.wakeMDPWaiters(e.id)
		case e.u.IsBranch() && !e.u.WrongPath && e.u.Mispredicted():
			b.raiseBranchResolution(e)
		}
	}
}

func (e *robEntry) mdpWaitSatisfied(b *Backend) bool {
	if e.mdpWait < 0 {
		return true
	}
	se := b.slot(uint64(e.mdpWait))
	if se.id != uint64(e.mdpWait) || uint64(e.mdpWait) < b.robHead {
		return true // store squashed or committed
	}
	return se.addrDone
}

// wakeMDPWaiters re-checks loads that were waiting on this store.
func (b *Backend) wakeMDPWaiters(storeID uint64) {
	kept := b.mdpWaiters[:0]
	for _, s := range b.mdpWaiters {
		e := &b.rob[s]
		if e.id == ^uint64(0) || e.id < b.robHead || e.u.SI.Class != isa.Load || e.mdpWait < 0 {
			continue // squashed or stale
		}
		if e.mdpWait == int64(storeID) {
			e.mdpWait = -1
			if e.state == stWaiting && e.pending == 0 {
				e.state = stReady
				b.ready = append(b.ready, s)
			}
			continue
		}
		kept = append(kept, s)
	}
	b.mdpWaiters = kept
}

// checkStoreOrderViolation finds younger loads to the same line that
// already executed: a RAW order violation (Table II "Memory
// Disambiguation"). The filter trains and the pipeline refetches from the
// load.
func (b *Backend) checkStoreOrderViolation(store *robEntry) {
	line := store.u.MemAddr &^ 7
	for id := store.id + 1; id < b.robTail; id++ {
		e := b.slot(id)
		if e.u.WrongPath || e.u.SI.Class != isa.Load {
			continue
		}
		if e.state != stIssued && e.state != stDone {
			continue
		}
		if e.u.MemAddr&^7 != line {
			continue
		}
		b.LoadViolations++
		b.mdp.Train(e.u.PC, store.u.PC)
		b.pendingResolutions.PushBack(Resolution{
			ID:         e.id,
			U:          e.u,
			Kind:       uop.FlushMemOrder,
			RefetchSeq: e.u.Seq,
			RefetchPC:  e.u.PC,
		})
		return
	}
}

func (b *Backend) raiseBranchResolution(e *robEntry) {
	if b.Trace {
		println("RAISE resolution id", e.id, "fid", e.u.FetchID, "pc", uint64(e.u.PC))
	}
	kind := uop.FlushBranch
	if e.u.SI.Class.IsIndirect() || (e.u.PredTaken && e.u.ActTaken && e.u.PredTarget != e.u.ActTarget) {
		kind = uop.FlushTarget
	}
	b.pendingResolutions.PushBack(Resolution{
		ID:         e.id,
		U:          e.u,
		Kind:       kind,
		RefetchSeq: e.u.Seq + 1,
		RefetchPC:  e.u.ActTarget,
	})
}

// issue selects ready uops oldest-first within port constraints.
func (b *Backend) issue(now uint64) {
	if len(b.ready) == 0 {
		return
	}
	alu, muldiv, mem, simd := b.cfg.ALUPorts, b.cfg.MulDivPorts, b.cfg.MemPorts, b.cfg.SIMDPorts
	issuedTotal := 0
	limit := b.cfg.ALUPorts + b.cfg.MemPorts + b.cfg.SIMDPorts + 1
	// Selection: repeatedly pick the oldest ready entry that fits a port.
	for issuedTotal < limit {
		bestIdx := -1
		var bestID uint64
		for i, s := range b.ready {
			e := &b.rob[s]
			if e.state != stReady {
				continue
			}
			if bestIdx < 0 || e.id < bestID {
				bestIdx, bestID = i, e.id
			}
		}
		if bestIdx < 0 {
			break
		}
		s := b.ready[bestIdx]
		e := &b.rob[s]
		fits := false
		switch e.u.SI.Class {
		case isa.MulDiv:
			if muldiv > 0 && alu > 0 {
				muldiv--
				alu--
				fits = true
			}
		case isa.SIMD:
			if simd > 0 {
				simd--
				fits = true
			}
		case isa.Load, isa.Store:
			if mem > 0 {
				mem--
				fits = true
			}
		default:
			if alu > 0 {
				alu--
				fits = true
			}
		}
		// Remove from ready list regardless of fit this cycle? No:
		// keep unfitting entries for next cycle; but remove to avoid
		// rescanning — push back after the loop.
		b.ready[bestIdx] = b.ready[len(b.ready)-1]
		b.ready = b.ready[:len(b.ready)-1]
		if !fits {
			// No port this cycle: try again next cycle.
			b.deferred = append(b.deferred, s)
			continue
		}
		e.state = stIssued
		e.doneAt = now + uint64(b.latencyFor(&e.u))
		wslot := e.doneAt % uint64(len(b.wheel))
		b.wheel[wslot] = append(b.wheel[wslot], s)
		if e.u.WrongPath {
			b.WrongPathExec++
		}
		b.iqCount--
		issuedTotal++
	}
	// Return port-starved entries to the ready list.
	b.ready = append(b.ready, b.deferred...)
	b.deferred = b.deferred[:0]
}

// LimitCommit fences retirement: entries with id >= limit stay in the ROB
// this cycle (a deferred flush must fire before its instruction retires).
// The fence resets to "no limit" automatically each Commit call via
// ResetCommitLimit from the pipeline.
func (b *Backend) LimitCommit(limit uint64) { b.commitLimit = limit }

// ResetCommitLimit removes the retirement fence.
func (b *Backend) ResetCommitLimit() { b.commitLimit = ^uint64(0) }

// Commit retires completed head entries (up to CommitWidth), appending them
// to the retired buffer. Wrong-path entries at the head are discarded
// without retiring (they were squashed logically; see SquashFrom).
func (b *Backend) Commit(now uint64) {
	for n := 0; n < b.cfg.CommitWidth && b.robHead < b.robTail; n++ {
		if b.robHead >= b.commitLimit {
			return
		}
		e := b.slot(b.robHead)
		if e.state != stDone {
			return
		}
		if b.Trace && !e.u.WrongPath {
			for i := 0; i < b.pendingResolutions.Len(); i++ {
				if r := b.pendingResolutions.At(i); r.ID == e.id {
					println("COMMIT-PENDING id", e.id, "fid", e.u.FetchID, "kind", int(r.Kind))
				}
			}
		}
		if e.u.SI.Class.IsMemory() {
			b.lsqCount--
		}
		if !e.u.WrongPath {
			b.retired = append(b.retired, e.u)
			b.Committed++
		}
		b.clearRATIfOwner(e)
		b.robHead++
	}
}

func (b *Backend) clearRATIfOwner(e *robEntry) {
	d := e.u.SI.Dest
	if d != isa.RegZero && b.rat[d] == int64(e.id) {
		b.rat[d] = -1
	}
}

// DrainRetired returns and clears the committed-uop buffer.
func (b *Backend) DrainRetired() []uop.Uop {
	r := b.retired
	b.retired = b.retired[:0]
	return r
}

// OldestResolution returns the oldest pending resolution event, or nil.
// Resolutions whose uop was squashed in the meantime are dropped.
func (b *Backend) OldestResolution() *Resolution {
	for b.pendingResolutions.Len() > 0 {
		r := b.pendingResolutions.Front()
		e := b.slot(r.ID)
		if r.ID < b.robHead || e.id != r.ID || e.u.FetchID != r.U.FetchID {
			if b.Trace {
				println("DROP resolution id", r.ID, "fid", r.U.FetchID, "head", b.robHead)
			}
			b.pendingResolutions.PopFront()
			continue
		}
		return r
	}
	return nil
}

// PopResolution removes the oldest pending resolution.
func (b *Backend) PopResolution() {
	if b.pendingResolutions.Len() > 0 {
		b.pendingResolutions.PopFront()
	}
}

// SquashFrom discards every entry with id >= boundary (exclusive flush of
// younger instructions) and repairs the RAT.
func (b *Backend) SquashFrom(boundary uint64) {
	if boundary < b.robHead {
		boundary = b.robHead
	}
	for id := boundary; id < b.robTail; id++ {
		e := b.slot(id)
		if e.state != stIssued && e.state != stDone {
			if e.state == stWaiting || e.state == stReady {
				b.iqCount--
			}
		}
		if e.u.SI.Class.IsMemory() {
			b.lsqCount--
		}
		b.clearRATIfOwner(e)
		e.id = ^uint64(0) // invalidate
	}
	b.robTail = boundary
	// Drop squashed entries from the ready list and dependence edges.
	kept := b.ready[:0]
	for _, s := range b.ready {
		e := &b.rob[s]
		if e.id != ^uint64(0) && e.id < b.robTail {
			kept = append(kept, s)
		}
	}
	b.ready = kept
	// Release loads whose gating store was squashed (they would otherwise
	// wait forever: wakeMDPWaiters only fires on store completion).
	keptW := b.mdpWaiters[:0]
	for _, s := range b.mdpWaiters {
		e := &b.rob[s]
		if e.id == ^uint64(0) || e.id >= b.robTail || e.id < b.robHead || e.mdpWait < 0 {
			continue
		}
		if uint64(e.mdpWait) >= b.robTail {
			e.mdpWait = -1
			if e.state == stWaiting && e.pending == 0 {
				e.state = stReady
				b.ready = append(b.ready, s)
			}
			continue
		}
		keptW = append(keptW, s)
	}
	b.mdpWaiters = keptW
	// Drop squashed resolutions lazily via OldestResolution.
	// Repair the RAT and rebuild the dependence edges from survivors:
	// squashed consumers left dangling edges in producers' lists, and a
	// reused consumer slot re-linking the same producer would otherwise
	// corrupt the list into a cycle.
	for i := range b.rat {
		b.rat[i] = -1
	}
	for i := range b.depHead {
		b.depHead[i] = -1
	}
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		if d := e.u.SI.Dest; d != isa.RegZero {
			b.rat[d] = int64(id)
		}
		if e.state != stWaiting {
			continue
		}
		slotIdx := int32(id % uint64(len(b.rob)))
		e.pending = 0
		for s, pid := range e.srcProd {
			if pid < 0 || uint64(pid) < b.robHead || uint64(pid) >= b.robTail {
				continue
			}
			pe := b.slot(uint64(pid))
			if pe.id != uint64(pid) || pe.state == stDone {
				continue
			}
			edge := slotIdx*2 + int32(s)
			pslot := int32(uint64(pid) % uint64(len(b.rob)))
			b.depNext[edge] = b.depHead[pslot]
			b.depHead[pslot] = edge
			e.pending++
		}
		if e.pending == 0 && e.mdpWaitSatisfied(b) && e.mdpWait < 0 {
			e.state = stReady
			b.ready = append(b.ready, slotIdx)
		}
	}
}

// SquashAll empties the window.
func (b *Backend) SquashAll() { b.SquashFrom(b.robHead) }

// HeadID returns the oldest in-flight absolute id (== NextID when empty).
func (b *Backend) HeadID() uint64 { return b.robHead }

// NextID returns the id the next accepted uop will get.
func (b *Backend) NextID() uint64 { return b.robTail }

// EntryByID returns the uop at an absolute id, if still in flight.
func (b *Backend) EntryByID(id uint64) *uop.Uop {
	if id < b.robHead || id >= b.robTail {
		return nil
	}
	e := b.slot(id)
	if e.id != id {
		return nil
	}
	return &e.u
}

// MarkCkptBound sets the checkpoint-bound flag on in-flight coupled uops up
// to and including id (Section IV-D1 late binding).
func (b *Backend) MarkCkptBound(upTo uint64) {
	for id := b.robHead; id < b.robTail && id <= upTo; id++ {
		e := b.slot(id)
		if e.id == id {
			e.u.CkptBound = true
		}
	}
}

// FindByCoupledIdx locates the in-flight coupled uop with the given ELF
// period index in the given period generation (divergence recovery).
func (b *Backend) FindByCoupledIdx(gen uint64, idx int) (uint64, bool) {
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		if e.id == id && e.u.Coupled && e.u.CoupledGen == gen && e.u.CoupledIdx == idx {
			return id, true
		}
	}
	return 0, false
}

// FirstCoupledAfter returns the oldest in-flight coupled uop of the given
// period generation with an index greater than idx (the squash boundary on
// a DCF divergence win).
func (b *Backend) FirstCoupledAfter(gen uint64, idx int) (uint64, bool) {
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		if e.id == id && e.u.Coupled && e.u.CoupledGen == gen && e.u.CoupledIdx > idx {
			return id, true
		}
	}
	return 0, false
}

// DumpWindow describes in-flight entries (debug).
func (b *Backend) DumpWindow(f func(id uint64, pc uint64, class string, state uint8, pending int8, mdpWait int64, doneAt uint64, wrong bool)) {
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		f(id, uint64(e.u.PC), e.u.SI.Class.String(), e.state, e.pending, e.mdpWait, e.doneAt, e.u.WrongPath)
	}
}

// IQCount exposes the issue-queue occupancy (debug).
func (b *Backend) IQCount() int { return b.iqCount }

// HasCorrectPathWork reports whether any non-wrong-path uop is in flight —
// i.e. whether a future commit or flush anchor exists.
func (b *Backend) HasCorrectPathWork() bool {
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		if e.id == id && !e.u.WrongPath {
			return true
		}
	}
	return false
}

// FindByFetchID locates an in-flight uop by its fetch identity.
func (b *Backend) FindByFetchID(fid uint64) (uint64, bool) {
	for id := b.robHead; id < b.robTail; id++ {
		e := b.slot(id)
		if e.id == id && e.u.FetchID == fid {
			return id, true
		}
	}
	return 0, false
}

// ReResolve re-evaluates a (possibly already completed) branch after its
// prediction was amended by ELF resynchronization: if it now counts as
// mispredicted and has already executed, a resolution is raised so the
// flush is not lost.
func (b *Backend) ReResolve(id uint64) {
	if id < b.robHead || id >= b.robTail {
		return
	}
	e := b.slot(id)
	if e.id != id || e.u.WrongPath || !e.u.IsBranch() {
		return
	}
	if e.state == stDone && e.u.Mispredicted() {
		b.raiseBranchResolution(e)
	}
}
