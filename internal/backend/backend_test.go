package backend

import (
	"testing"

	"elfetch/internal/cache"
	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/uop"
)

type bench struct {
	b    *Backend
	h    *cache.Hierarchy
	now  uint64
	fid  uint64
	seq  uint64
	pcs  isa.Addr
	rets []uop.Uop
}

func newBench() *bench {
	h := cache.NewHierarchy()
	return &bench{b: New(DefaultConfig(), h), h: h, pcs: 0x1000}
}

func st(pc isa.Addr, class isa.Class, dest, s1, s2 isa.Reg) *program.Static {
	return &program.Static{PC: pc, Class: class, Dest: dest, Src1: s1, Src2: s2, StateID: -1}
}

// mk builds a correct-path uop.
func (t *bench) mk(si *program.Static) uop.Uop {
	t.fid++
	t.seq++
	return uop.Uop{Seq: t.seq, FetchID: t.fid, PC: si.PC, SI: si}
}

// step runs one machine cycle: commit, execute, issue.
func (t *bench) step() {
	t.b.Commit(t.now)
	t.rets = append(t.rets, t.b.DrainRetired()...)
	t.b.Cycle(t.now)
	t.now++
}

// runUntilDrained steps until the window empties (bounded).
func (t *bench) runUntilDrained(tt *testing.T, max int) {
	tt.Helper()
	for i := 0; i < max; i++ {
		if t.b.ROBEmpty() {
			return
		}
		t.step()
	}
	tt.Fatalf("backend did not drain in %d cycles (occupancy %d)", max, t.b.Occupancy())
}

func TestIndependentALUThroughput(t *testing.T) {
	tb := newBench()
	const n = 400
	for i := 0; i < n; i++ {
		u := tb.mk(st(isa.Addr(0x1000+i*4), isa.ALU, 0, 0, 0))
		for !tb.b.Accept(u) {
			tb.step()
		}
	}
	start := tb.now
	tb.runUntilDrained(t, 1000)
	cycles := tb.now - start
	// 4 ALU ports: 400 independent ops need >= 100 cycles but far fewer
	// than serial execution.
	if cycles > 150 {
		t.Errorf("400 independent ALU ops took %d cycles (want ~100-150)", cycles)
	}
	if tb.b.Committed != n {
		t.Errorf("committed %d, want %d", tb.b.Committed, n)
	}
}

func TestSerialChainThroughput(t *testing.T) {
	tb := newBench()
	const n = 100
	for i := 0; i < n; i++ {
		// r1 = r1 + r1: a strict chain.
		u := tb.mk(st(isa.Addr(0x1000+i*4), isa.ALU, 1, 1, 0))
		for !tb.b.Accept(u) {
			tb.step()
		}
	}
	start := tb.now
	tb.runUntilDrained(t, 1000)
	cycles := tb.now - start
	if cycles < n {
		t.Errorf("serial chain of %d finished in %d cycles — dependences not honoured", n, cycles)
	}
}

func TestLoadLatencyFromHierarchy(t *testing.T) {
	tb := newBench()
	ld := tb.mk(st(0x1000, isa.Load, 1, 0, 0))
	ld.MemAddr = 0x2000000 // cold: memory latency
	use := tb.mk(st(0x1004, isa.ALU, 2, 1, 0))
	tb.b.Accept(ld)
	tb.b.Accept(use)
	start := tb.now
	tb.runUntilDrained(t, 2000)
	if got := tb.now - start; got < 250 {
		t.Errorf("cold load chain drained in %d cycles, want >= 250 (memory)", got)
	}
	// Warm: L1D hit.
	ld2 := tb.mk(st(0x1008, isa.Load, 1, 0, 0))
	ld2.MemAddr = 0x2000000
	use2 := tb.mk(st(0x100c, isa.ALU, 2, 1, 0))
	tb.b.Accept(ld2)
	tb.b.Accept(use2)
	start = tb.now
	tb.runUntilDrained(t, 100)
	if got := tb.now - start; got > 12 {
		t.Errorf("warm load chain took %d cycles, want a handful", got)
	}
}

func TestBranchMispredictionRaisesResolution(t *testing.T) {
	tb := newBench()
	br := tb.mk(st(0x1000, isa.CondBranch, 0, 0, 0))
	br.PredTaken = false
	br.ActTaken = true
	br.ActTarget = 0x4000
	tb.b.Accept(br)
	for i := 0; i < 10 && tb.b.OldestResolution() == nil; i++ {
		tb.step()
	}
	r := tb.b.OldestResolution()
	if r == nil {
		t.Fatal("no resolution raised")
	}
	if r.Kind != uop.FlushBranch || r.RefetchPC != 0x4000 || r.RefetchSeq != br.Seq+1 {
		t.Errorf("resolution = %+v", r)
	}
}

func TestIndirectTargetMispredictKind(t *testing.T) {
	tb := newBench()
	br := tb.mk(st(0x1000, isa.IndirectBranch, 0, 0, 0))
	br.PredTaken = true
	br.PredTarget = 0x2000
	br.ActTaken = true
	br.ActTarget = 0x3000
	tb.b.Accept(br)
	for i := 0; i < 10 && tb.b.OldestResolution() == nil; i++ {
		tb.step()
	}
	r := tb.b.OldestResolution()
	if r == nil || r.Kind != uop.FlushTarget {
		t.Fatalf("resolution = %+v, want target flush", r)
	}
}

func TestWrongPathBranchesRaiseNothing(t *testing.T) {
	tb := newBench()
	br := tb.mk(st(0x1000, isa.CondBranch, 0, 0, 0))
	br.WrongPath = true
	br.PredTaken = false
	br.ActTaken = true
	tb.b.Accept(br)
	tb.runUntilDrained(t, 50)
	if tb.b.OldestResolution() != nil {
		t.Error("wrong-path branch raised a resolution")
	}
	if len(tb.rets) != 0 {
		t.Error("wrong-path uop retired")
	}
}

func TestMemOrderViolationAndFilterTraining(t *testing.T) {
	tb := newBench()
	// Store whose address depends on a slow producer, then a load to the
	// same address that issues first -> violation.
	slow := tb.mk(st(0x1000, isa.MulDiv, 5, 0, 0))
	store := tb.mk(st(0x1004, isa.Store, 0, 5, 0)) // waits on r5
	store.MemAddr = 0x3000000
	load := tb.mk(st(0x1008, isa.Load, 1, 0, 0))
	load.MemAddr = 0x3000000
	tb.b.Accept(slow)
	tb.b.Accept(store)
	tb.b.Accept(load)
	var r *Resolution
	for i := 0; i < 100; i++ {
		tb.step()
		if r = tb.b.OldestResolution(); r != nil {
			break
		}
	}
	if r == nil {
		t.Fatal("no memory-order violation raised")
	}
	if r.Kind != uop.FlushMemOrder || r.RefetchPC != 0x1008 {
		t.Fatalf("resolution = %+v", r)
	}
	if tb.b.LoadViolations != 1 {
		t.Errorf("violations = %d", tb.b.LoadViolations)
	}

	// Second encounter: the filter should make the load wait — no second
	// violation.
	tb2 := newBench()
	tb2.b.mdp = tb.b.mdp // carry the trained filter
	slow2 := tb2.mk(st(0x1000, isa.MulDiv, 5, 0, 0))
	store2 := tb2.mk(st(0x1004, isa.Store, 0, 5, 0))
	store2.MemAddr = 0x3000000
	load2 := tb2.mk(st(0x1008, isa.Load, 1, 0, 0))
	load2.MemAddr = 0x3000000
	tb2.b.Accept(slow2)
	tb2.b.Accept(store2)
	tb2.b.Accept(load2)
	tb2.runUntilDrained(t, 500)
	if tb2.b.LoadViolations != 0 {
		t.Errorf("trained filter did not prevent the violation")
	}
	if tb2.b.Committed != 3 {
		t.Errorf("committed %d, want 3", tb2.b.Committed)
	}
}

func TestSquashFromDiscardsYounger(t *testing.T) {
	tb := newBench()
	a := tb.mk(st(0x1000, isa.ALU, 1, 0, 0))
	br := tb.mk(st(0x1004, isa.CondBranch, 0, 0, 0))
	young := tb.mk(st(0x1008, isa.ALU, 2, 1, 0))
	tb.b.Accept(a)
	tb.b.Accept(br)
	brID := tb.b.NextID() - 1
	tb.b.Accept(young)
	tb.b.SquashFrom(brID + 1)
	if tb.b.Occupancy() != 2 {
		t.Fatalf("occupancy = %d, want 2", tb.b.Occupancy())
	}
	// Re-dispatch a different younger op reusing r2.
	y2 := tb.mk(st(0x400C, isa.ALU, 2, 1, 0))
	if !tb.b.Accept(y2) {
		t.Fatal("accept after squash failed")
	}
	tb.runUntilDrained(t, 100)
	if tb.b.Committed != 3 {
		t.Errorf("committed %d, want 3", tb.b.Committed)
	}
}

func TestROBBackpressure(t *testing.T) {
	tb := newBench()
	// Block the head behind a never-issuing producer chain... use a cold
	// load to stall the head long enough to fill the ROB.
	ld := tb.mk(st(0x1000, isa.Load, 1, 0, 0))
	ld.MemAddr = 0x5000000
	tb.b.Accept(ld)
	n := 1
	for tb.b.Accept(tb.mk(st(isa.Addr(0x2000+n*4), isa.ALU, 0, 1, 0))) {
		n++
	}
	if n != DefaultConfig().IQ && n != DefaultConfig().ROB {
		t.Logf("filled %d entries before back-pressure", n)
	}
	if tb.b.Accept(tb.mk(st(0x9000, isa.ALU, 0, 0, 0))) {
		t.Fatal("Accept succeeded past capacity")
	}
	tb.runUntilDrained(t, 2000)
}

func TestCommitInOrder(t *testing.T) {
	tb := newBench()
	fast := tb.mk(st(0x1004, isa.ALU, 2, 0, 0))
	slow := tb.mk(st(0x1000, isa.MulDiv, 1, 0, 0))
	tb.b.Accept(slow)
	tb.b.Accept(fast)
	tb.runUntilDrained(t, 100)
	if len(tb.rets) != 2 {
		t.Fatalf("retired %d", len(tb.rets))
	}
	if tb.rets[0].PC != 0x1000 || tb.rets[1].PC != 0x1004 {
		t.Errorf("retire order: %v then %v", tb.rets[0].PC, tb.rets[1].PC)
	}
}

func TestMarkCkptBound(t *testing.T) {
	tb := newBench()
	u := tb.mk(st(0x1000, isa.ALU, 0, 0, 0))
	u.Coupled = true
	tb.b.Accept(u)
	id := tb.b.NextID() - 1
	if e := tb.b.EntryByID(id); e == nil || e.CkptBound {
		t.Fatal("setup")
	}
	tb.b.MarkCkptBound(id)
	if e := tb.b.EntryByID(id); e == nil || !e.CkptBound {
		t.Error("MarkCkptBound did not set the flag")
	}
}

func TestMDPTableBasics(t *testing.T) {
	var m MDP
	m.Reset()
	if _, ok := m.Lookup(0x100); ok {
		t.Fatal("cold hit")
	}
	m.Train(0x100, 0x200)
	sp, ok := m.Lookup(0x100)
	if !ok || sp != 0x200 {
		t.Fatalf("Lookup = %v,%v", sp, ok)
	}
	// Retraining with a different store replaces.
	m.Train(0x100, 0x300)
	if sp, _ := m.Lookup(0x100); sp != 0x300 {
		t.Errorf("retrain: %v", sp)
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	tb := newBench()
	// Store with a resolved address, then a load to the same slot that
	// issues a few cycles later (its address register depends on a
	// MulDiv): by then the store's address is known, so the load must
	// forward (fast) instead of paying the cold-memory latency.
	slow := tb.mk(st(0x0ffc, isa.MulDiv, 3, 0, 0))
	store := tb.mk(st(0x1000, isa.Store, 0, 0, 0))
	store.MemAddr = 0x7000000
	load := tb.mk(st(0x1004, isa.Load, 1, 3, 0)) // waits on the MulDiv
	load.MemAddr = 0x7000000
	tb.b.Accept(slow)
	tb.b.Accept(store)
	tb.b.Accept(load)
	start := tb.now
	tb.runUntilDrained(t, 200)
	if tb.b.ForwardedLoads != 1 {
		t.Errorf("forwarded loads = %d, want 1", tb.b.ForwardedLoads)
	}
	if got := tb.now - start; got > 40 {
		t.Errorf("forwarded chain took %d cycles — looks like a memory access", got)
	}
}

func TestNoForwardingAcrossDifferentSlots(t *testing.T) {
	tb := newBench()
	store := tb.mk(st(0x1000, isa.Store, 0, 0, 0))
	store.MemAddr = 0x7000000
	load := tb.mk(st(0x1004, isa.Load, 1, 0, 0))
	load.MemAddr = 0x7000100 // different 8-byte slot
	tb.b.Accept(store)
	tb.b.Accept(load)
	tb.runUntilDrained(t, 600)
	if tb.b.ForwardedLoads != 0 {
		t.Errorf("forwarded loads = %d, want 0", tb.b.ForwardedLoads)
	}
}
