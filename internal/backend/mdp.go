package backend

import "elfetch/internal/isa"

// MDP is the PC-based memory-dependence filter of Table II: "violating
// load-store pair is recorded in the table. When load PC is renamed, load
// waits for older store if matching store PC was fetched."
//
// It is a small direct-mapped, tagged table from load PC to the store PC it
// last violated against. Entries decay via simple replacement; a saturating
// confidence bit avoids permanent serialisation from one-off violations.
type MDP struct {
	entries [mdpSize]mdpEntry
	// Trains/Hits count filter activity for stats.
	Trains, Hits uint64
}

const mdpSize = 256

type mdpEntry struct {
	loadPC  isa.Addr
	storePC isa.Addr
	conf    int8
	valid   bool
}

// Reset clears the table.
func (m *MDP) Reset() {
	for i := range m.entries {
		m.entries[i] = mdpEntry{}
	}
}

func (m *MDP) idx(loadPC isa.Addr) int {
	return int(uint64(loadPC) >> 2 % mdpSize)
}

// Train records a violation between loadPC and storePC.
func (m *MDP) Train(loadPC, storePC isa.Addr) {
	m.Trains++
	e := &m.entries[m.idx(loadPC)]
	if e.valid && e.loadPC == loadPC && e.storePC == storePC {
		if e.conf < 3 {
			e.conf++
		}
		return
	}
	*e = mdpEntry{loadPC: loadPC, storePC: storePC, conf: 1, valid: true}
}

// Lookup returns the store PC the load should wait for, if the filter
// predicts a conflict.
func (m *MDP) Lookup(loadPC isa.Addr) (isa.Addr, bool) {
	e := &m.entries[m.idx(loadPC)]
	if e.valid && e.loadPC == loadPC && e.conf >= 1 {
		m.Hits++
		return e.storePC, true
	}
	return 0, false
}
