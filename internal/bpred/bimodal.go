package bpred

import "elfetch/internal/isa"

// Bimodal is the coupled fetcher's conditional predictor for COND-ELF /
// U-ELF (Table II: "2K-entry bimodal, 3-bit ctrs — 0.75KB").
//
// COND-ELF only speculates past a conditional when the counter is
// *saturated* (Section VI-B), so the predictor distinguishes Confident from
// merely Taken. Per Section IV-D3 it is updated only by branches fetched in
// coupled mode (the caller enforces the policy; UpdateAlways exists for the
// ablation bench).
type Bimodal struct {
	ctrs []int8 // 3-bit counters 0..7, taken when >= 4
	mask uint64
}

// NewBimodal returns an n-entry predictor (n must be a power of two).
func NewBimodal(n int) *Bimodal {
	mustPow2(n, "bimodal")
	c := make([]int8, n)
	for i := range c {
		c[i] = 3 // weakly not-taken mid-point
	}
	return &Bimodal{ctrs: c, mask: uint64(n - 1)}
}

func (b *Bimodal) idx(pc isa.Addr) uint64 { return uint64(pc) >> 2 & b.mask }

// Predict returns the direction and whether the counter is saturated
// (confident).
func (b *Bimodal) Predict(pc isa.Addr) (taken, confident bool) {
	c := b.ctrs[b.idx(pc)]
	return c >= 4, c == 0 || c == 7
}

// Update trains the counter with the resolved outcome.
func (b *Bimodal) Update(pc isa.Addr, taken bool) {
	i := b.idx(pc)
	if taken {
		b.ctrs[i] = satInc8(b.ctrs[i], 7)
	} else {
		b.ctrs[i] = satDec8(b.ctrs[i], 0)
	}
}

// StorageBits approximates the hardware budget.
func (b *Bimodal) StorageBits() int { return len(b.ctrs) * 3 }
