// Package bpred implements the branch-prediction structures of Table II:
// the decoupled fetcher's 32KB TAGE conditional predictor, the two-level
// indirect target predictor (64-entry L0 branch target cache + ITTAGE L1),
// the 32-entry return address stack, and the coupled fetcher's small
// predictors for U-ELF (2K-entry 3-bit bimodal, its own RAS and BTC).
//
// All predictors speculate: global history is updated at prediction time and
// repaired on pipeline flushes via checkpoints (Section IV-D), so every
// predictor exposes a value-type checkpoint that the pipeline stores per
// in-flight branch.
package bpred

// History is the speculative global state shared by the history-based
// predictors: a 64-bit conditional-outcome history (newest outcome in bit 0)
// and a 16-bit path history of low PC bits. It is a value type; a copy *is*
// a checkpoint.
type History struct {
	// GHR is the global conditional-outcome history.
	GHR uint64
	// Path is the folded path history.
	Path uint16
}

// UpdateCond shifts a conditional outcome into the history.
func (h *History) UpdateCond(pc uint64, taken bool) {
	t := uint64(0)
	if taken {
		t = 1
	}
	h.GHR = h.GHR<<1 | t
	h.Path = h.Path<<1 ^ uint16(pc>>2)&0x3ff
}

// UpdateIndirect folds an indirect-branch target into the path history so
// ITTAGE can distinguish target-dependent contexts.
func (h *History) UpdateIndirect(target uint64) {
	h.Path = h.Path<<2 ^ uint16(target>>2)&0xfff
}

// fold compresses the low n bits of the history into width bits.
func fold(v uint64, n, width uint) uint64 {
	if n < 64 {
		v &= (uint64(1) << n) - 1
	}
	out := uint64(0)
	for n > 0 {
		out ^= v & ((uint64(1) << width) - 1)
		v >>= width
		if n >= width {
			n -= width
		} else {
			n = 0
		}
	}
	return out
}
