package bpred

import "elfetch/internal/isa"

// The indirect-target infrastructure of Table II: a fast 64-entry
// direct-mapped, partially tagged L0 Branch Target Cache (1 cycle — an L0
// hit costs a single bubble like a direct taken branch) backed by an ITTAGE
// L1 (3 cycles — an L0 miss costs three bubbles, Section III-B2).

// BTC is the L0 indirect branch target cache, also reused as the coupled
// fetcher's indirect predictor in U-ELF (64-entry direct-mapped, 12-bit
// tags — Table II).
type BTC struct {
	tags    []uint16
	targets []isa.Addr
	valid   []bool
	mask    uint64
}

// NewBTC returns a BTC with n entries (n must be a power of two).
func NewBTC(n int) *BTC {
	mustPow2(n, "BTC")
	return &BTC{
		tags:    make([]uint16, n),
		targets: make([]isa.Addr, n),
		valid:   make([]bool, n),
		mask:    uint64(n - 1),
	}
}

func (b *BTC) slot(pc isa.Addr) (uint64, uint16) {
	v := uint64(pc) >> 2
	return v & b.mask, uint16(v >> 6 & 0xfff)
}

// Predict returns the cached target for the indirect branch at pc.
func (b *BTC) Predict(pc isa.Addr) (isa.Addr, bool) {
	i, tag := b.slot(pc)
	if !b.valid[i] || b.tags[i] != tag {
		return 0, false
	}
	return b.targets[i], true
}

// Update installs the resolved target.
func (b *BTC) Update(pc isa.Addr, target isa.Addr) {
	i, tag := b.slot(pc)
	b.valid[i] = true
	b.tags[i] = tag
	b.targets[i] = target
}

// StorageBits approximates the hardware budget (tag + 48-bit target).
func (b *BTC) StorageBits() int { return len(b.tags) * (12 + 48) }

// ITTAGE is the L1 indirect target predictor (Table II: "32KB ITTAGE
// predictor (4 tagged tables)"), after Seznec [20]: TAGE indexing, but
// entries hold targets and a 2-bit confidence.
type ITTAGE struct {
	base   []ittageEntry // direct-mapped base table
	tables [NumITTAGETables]ittageTable
}

// NumITTAGETables is the number of tagged tables.
const NumITTAGETables = 4

var ittageHistLens = [NumITTAGETables]uint{4, 10, 24, 48}

type ittageEntry struct {
	tag    uint16
	target isa.Addr
	conf   int8 // 2-bit confidence, -2..1
	useful uint8
}

type ittageTable struct {
	entries []ittageEntry
	histLen uint
}

const (
	ittageBaseBits = 10
	ittageIdxBits  = 9
	ittageTagBits  = 11
)

// ITTAGEPred is the per-branch state Update needs.
type ITTAGEPred struct {
	// Target is the predicted target (zero if no component had one).
	Target isa.Addr
	// Hit reports whether any component provided a target.
	Hit      bool
	provider int8 // -1 = base
	baseIdx  uint32
	idx      [NumITTAGETables]uint32
	tag      [NumITTAGETables]uint16
}

// NewITTAGE returns a predictor with the Table II geometry.
func NewITTAGE() *ITTAGE {
	t := &ITTAGE{base: make([]ittageEntry, 1<<ittageBaseBits)}
	for i := range t.tables {
		t.tables[i] = ittageTable{
			entries: make([]ittageEntry, 1<<ittageIdxBits),
			histLen: ittageHistLens[i],
		}
	}
	return t
}

// StorageBits approximates the hardware budget.
func (t *ITTAGE) StorageBits() int {
	per := ittageTagBits + 48 + 2 + 2
	n := len(t.base)
	for i := range t.tables {
		n += len(t.tables[i].entries)
	}
	return n * per
}

func (tb *ittageTable) index(pc uint64, h History) uint32 {
	hf := fold(h.GHR, tb.histLen, ittageIdxBits)
	pf := fold(uint64(h.Path), minUint(tb.histLen, 16), ittageIdxBits)
	return uint32((pc>>2 ^ pc>>(2+ittageIdxBits) ^ hf ^ pf<<1) & (1<<ittageIdxBits - 1))
}

func (tb *ittageTable) tagOf(pc uint64, h History) uint16 {
	hf := fold(h.GHR, tb.histLen, ittageTagBits)
	pf := fold(uint64(h.Path), minUint(tb.histLen, 16), ittageTagBits-1)
	return uint16((pc>>2 ^ hf ^ pf<<1) & (1<<ittageTagBits - 1))
}

// Predict returns the ITTAGE target prediction for the indirect branch at
// pc under history h.
func (t *ITTAGE) Predict(pc isa.Addr, h History) ITTAGEPred {
	var p ITTAGEPred
	p.provider = -1
	p.baseIdx = uint32(uint64(pc) >> 2 & (1<<ittageBaseBits - 1))
	for i := 0; i < NumITTAGETables; i++ {
		p.idx[i] = t.tables[i].index(uint64(pc), h)
		p.tag[i] = t.tables[i].tagOf(uint64(pc), h)
	}
	for i := NumITTAGETables - 1; i >= 0; i-- {
		e := &t.tables[i].entries[p.idx[i]]
		if e.tag == p.tag[i] && e.target != 0 {
			p.provider = int8(i)
			p.Target = e.target
			p.Hit = true
			return p
		}
	}
	if e := &t.base[p.baseIdx]; e.target != 0 {
		p.Target = e.target
		p.Hit = true
	}
	return p
}

// Update trains with the resolved target.
func (t *ITTAGE) Update(pc isa.Addr, pred ITTAGEPred, target isa.Addr) {
	correct := pred.Hit && pred.Target == target
	if pred.provider >= 0 {
		e := &t.tables[pred.provider].entries[pred.idx[pred.provider]]
		if e.target == target {
			e.conf = satInc8(e.conf, 1)
			if e.useful < 3 {
				e.useful++
			}
		} else {
			e.conf = satDec8(e.conf, -2)
			if e.conf < 0 {
				e.target = target
			}
			if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		e := &t.base[pred.baseIdx]
		if e.target == target {
			e.conf = satInc8(e.conf, 1)
		} else {
			e.conf = satDec8(e.conf, -2)
			if e.conf < 0 || e.target == 0 {
				e.target = target
				e.conf = 0
			}
		}
	}
	if !correct {
		t.allocate(pred, target)
	}
}

func (t *ITTAGE) allocate(pred ITTAGEPred, target isa.Addr) {
	for i := int(pred.provider) + 1; i < NumITTAGETables; i++ {
		e := &t.tables[i].entries[pred.idx[i]]
		if e.useful == 0 {
			*e = ittageEntry{tag: pred.tag[i], target: target, conf: 0}
			return
		}
	}
	for i := int(pred.provider) + 1; i < NumITTAGETables; i++ {
		e := &t.tables[i].entries[pred.idx[i]]
		if e.useful > 0 {
			e.useful--
		}
	}
}
