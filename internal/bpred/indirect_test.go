package bpred

import (
	"testing"
	"testing/quick"

	"elfetch/internal/isa"
	"elfetch/internal/program"
)

func TestBTCMonomorphic(t *testing.T) {
	btc := NewBTC(64)
	if _, ok := btc.Predict(0x100); ok {
		t.Fatal("cold BTC hit")
	}
	btc.Update(0x100, 0x2000)
	got, ok := btc.Predict(0x100)
	if !ok || got != 0x2000 {
		t.Fatalf("Predict = %v,%v want 0x2000,true", got, ok)
	}
}

func TestBTCConflictsEvict(t *testing.T) {
	btc := NewBTC(64)
	// Same set (64 entries, stride 64 insts = 256 bytes), different tags.
	btc.Update(0x1000, 0xA)
	btc.Update(0x1000+64*4, 0xB)
	if _, ok := btc.Predict(0x1000); ok {
		t.Error("direct-mapped conflict did not evict")
	}
	got, ok := btc.Predict(0x1000 + 64*4)
	if !ok || got != 0xB {
		t.Errorf("second mapping lost: %v %v", got, ok)
	}
}

func TestBTCTagMismatchMisses(t *testing.T) {
	f := func(a, b uint32) bool {
		pcA := isa.Addr(a) &^ 3
		pcB := isa.Addr(b) &^ 3
		btc := NewBTC(64)
		btc.Update(pcA, 0x42)
		tgt, ok := btc.Predict(pcB)
		if pcA == pcB {
			return ok && tgt == 0x42
		}
		// Either miss, or alias (same slot+tag) returning 0x42; never
		// a wrong target.
		return !ok || tgt == 0x42
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestITTAGELearnsHistoryCorrelatedTargets(t *testing.T) {
	it := NewITTAGE()
	var h History
	sel := program.HistoryTarget{Mask: 0x1F}
	targets := []isa.Addr{0x100, 0x200, 0x300, 0x400}
	env := &program.Env{}
	var st program.State
	correct, counted := 0, 0
	const n = 30000
	pc := isa.Addr(0x7000)
	for i := 0; i < n; i++ {
		// Interleave conditional history so GHR moves.
		h.UpdateCond(0x10, i%3 == 0)
		env.GHR = h.GHR
		pred := it.Predict(pc, h)
		actual := targets[sel.NextTarget(&st, env, len(targets))]
		if i > n/2 {
			counted++
			if pred.Hit && pred.Target == actual {
				correct++
			}
		}
		it.Update(pc, pred, actual)
		h.UpdateIndirect(uint64(actual))
	}
	if acc := float64(correct) / float64(counted); acc < 0.90 {
		t.Errorf("ITTAGE history-target accuracy = %v, want >= 0.90", acc)
	}
}

func TestITTAGEMonomorphicBase(t *testing.T) {
	it := NewITTAGE()
	var h History
	pc := isa.Addr(0x8000)
	for i := 0; i < 100; i++ {
		pred := it.Predict(pc, h)
		it.Update(pc, pred, 0xCAFE0)
	}
	pred := it.Predict(pc, h)
	if !pred.Hit || pred.Target != 0xCAFE0 {
		t.Errorf("monomorphic target not learned: %+v", pred)
	}
}

func TestITTAGERoundRobinBeatsBTC(t *testing.T) {
	// A round-robin polymorphic branch: the BTC (last-target) gets ~0%,
	// ITTAGE with history should do much better — the gap that makes the
	// two-level arrangement worth its extra bubbles.
	it := NewITTAGE()
	btc := NewBTC(64)
	var h History
	targets := []isa.Addr{0x100, 0x200, 0x300}
	pc := isa.Addr(0x9000)
	itCorrect, btcCorrect, counted := 0, 0, 0
	const n = 30000
	for i := 0; i < n; i++ {
		actual := targets[i%3]
		itp := it.Predict(pc, h)
		bt, bok := btc.Predict(pc)
		if i > n/2 {
			counted++
			if itp.Hit && itp.Target == actual {
				itCorrect++
			}
			if bok && bt == actual {
				btcCorrect++
			}
		}
		it.Update(pc, itp, actual)
		btc.Update(pc, actual)
		h.UpdateIndirect(uint64(actual))
	}
	itAcc := float64(itCorrect) / float64(counted)
	btcAcc := float64(btcCorrect) / float64(counted)
	if itAcc < 0.9 {
		t.Errorf("ITTAGE round-robin accuracy = %v, want >= 0.9", itAcc)
	}
	if btcAcc > 0.2 {
		t.Errorf("BTC round-robin accuracy = %v — should be near zero", btcAcc)
	}
}

func TestITTAGEStorageNear32KB(t *testing.T) {
	kb := float64(NewITTAGE().StorageBits()) / 8 / 1024
	if kb < 10 || kb > 40 {
		t.Errorf("ITTAGE storage = %.1fKB, want tens of KB (Table II: 32KB)", kb)
	}
}

func TestBTCPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBTC(10) did not panic")
		}
	}()
	NewBTC(10)
}
