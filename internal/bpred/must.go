package bpred

// mustPow2 asserts a table size is a non-zero power of two; predictor
// geometry comes from compile-time configuration, so a bad size is a
// programming error, not a runtime condition.
func mustPow2(n int, what string) {
	if n&(n-1) != 0 || n == 0 {
		panic("bpred: " + what + " size must be a power of two")
	}
}

// mustPositive asserts a capacity is at least one.
func mustPositive(n int, what string) {
	if n <= 0 {
		panic("bpred: " + what + " size must be positive")
	}
}
