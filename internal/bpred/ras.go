package bpred

import "elfetch/internal/isa"

// RAS is a return address stack (Table II: 32 entries, 0.25KB). Both the
// decoupled fetcher and — in RET-ELF / U-ELF — the coupled fetcher own one.
//
// The stack is a circular buffer; overflow silently wraps (oldest entries
// are lost), underflow predicts 0. Speculative operation is repaired with
// value-type checkpoints capturing the top-of-stack pointer and the top
// entry (the standard low-cost RAS repair: enough to undo any single-path
// sequence of pushes/pops between checkpoint and restore in the common
// case; deep wrap-around corruption behaves like a real, imperfect RAS).
type RAS struct {
	entries []isa.Addr
	top     int // index of the current top (valid when depth > 0)
	depth   int // logical depth, saturates at len(entries)
}

// RASCheckpoint restores the stack to a prior speculative point.
type RASCheckpoint struct {
	top, depth int
	topValue   isa.Addr
}

// NewRAS returns a stack with n entries.
func NewRAS(n int) *RAS {
	mustPositive(n, "RAS")
	return &RAS{entries: make([]isa.Addr, n), top: n - 1}
}

// Checkpoint captures the repair state.
func (r *RAS) Checkpoint() RASCheckpoint {
	return RASCheckpoint{top: r.top, depth: r.depth, topValue: r.entries[r.top]}
}

// Restore rewinds to a checkpoint.
func (r *RAS) Restore(c RASCheckpoint) {
	r.top, r.depth = c.top, c.depth
	r.entries[r.top] = c.topValue
}

// Push records a return address on a call.
func (r *RAS) Push(ra isa.Addr) {
	r.top = (r.top + 1) % len(r.entries)
	r.entries[r.top] = ra
	if r.depth < len(r.entries) {
		r.depth++
	}
}

// Pop predicts and consumes the top return address. ok is false on
// underflow.
func (r *RAS) Pop() (ra isa.Addr, ok bool) {
	if r.depth == 0 {
		return 0, false
	}
	ra = r.entries[r.top]
	r.top = (r.top - 1 + len(r.entries)) % len(r.entries)
	r.depth--
	return ra, true
}

// Peek returns the top without consuming it.
func (r *RAS) Peek() (isa.Addr, bool) {
	if r.depth == 0 {
		return 0, false
	}
	return r.entries[r.top], true
}

// Depth returns the logical depth.
func (r *RAS) Depth() int { return r.depth }

// CopyFrom overwrites this stack with the full contents of src (same
// capacity required). Used to repair a speculative RAS from the
// architectural (retire-time) one when no per-branch checkpoint exists —
// e.g. a flush triggered by a coupled-fetched instruction whose checkpoint
// was never bound (Section IV-D1).
func (r *RAS) CopyFrom(src *RAS) {
	if len(r.entries) != len(src.entries) {
		//lint:allow panic repair invariant: speculative and architectural RAS share one configured depth
		panic("bpred: RAS CopyFrom size mismatch")
	}
	copy(r.entries, src.entries)
	r.top, r.depth = src.top, src.depth
}

// StorageBits approximates the hardware budget (48-bit addresses).
func (r *RAS) StorageBits() int { return len(r.entries) * 48 }
