package bpred

import (
	"testing"

	"elfetch/internal/isa"
)

func TestRASPushPop(t *testing.T) {
	r := NewRAS(32)
	r.Push(0x100)
	r.Push(0x200)
	if top, ok := r.Peek(); !ok || top != 0x200 {
		t.Fatalf("Peek = %v,%v", top, ok)
	}
	if ra, ok := r.Pop(); !ok || ra != 0x200 {
		t.Fatalf("Pop = %v,%v", ra, ok)
	}
	if ra, ok := r.Pop(); !ok || ra != 0x100 {
		t.Fatalf("Pop = %v,%v", ra, ok)
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("Pop on empty stack succeeded")
	}
}

func TestRASDeepRecursionWithinCapacity(t *testing.T) {
	r := NewRAS(32)
	for i := 0; i < 32; i++ {
		r.Push(isa.Addr(0x1000 + i*4))
	}
	for i := 31; i >= 0; i-- {
		ra, ok := r.Pop()
		if !ok || ra != isa.Addr(0x1000+i*4) {
			t.Fatalf("Pop %d = %v,%v", i, ra, ok)
		}
	}
}

func TestRASOverflowWraps(t *testing.T) {
	r := NewRAS(4)
	for i := 0; i < 6; i++ {
		r.Push(isa.Addr(0x1000 + i*4))
	}
	// The newest 4 survive; the oldest two were overwritten.
	want := []isa.Addr{0x1014, 0x1010, 0x100c, 0x1008}
	for i, w := range want {
		ra, ok := r.Pop()
		if !ok || ra != w {
			t.Fatalf("Pop %d = %v,%v want %v", i, ra, ok, w)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Error("depth not saturated at capacity")
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	r.Push(0x200)
	cp := r.Checkpoint()
	// Wrong path: pop twice, push garbage.
	r.Pop()
	r.Pop()
	r.Push(0xBAD)
	r.Restore(cp)
	if ra, ok := r.Pop(); !ok || ra != 0x200 {
		t.Fatalf("post-restore Pop = %v,%v want 0x200", ra, ok)
	}
	// Note: entries *below* the checkpointed top that were overwritten on
	// the wrong path (the 0xBAD push landed in 0x100's slot) are NOT
	// repaired by the (tos, top-value) checkpoint — matching real
	// low-cost RAS repair, which mispredicts in exactly this situation.
	if ra, ok := r.Pop(); !ok || ra != 0xBAD {
		t.Fatalf("post-restore deep Pop = %v,%v; expected the documented "+
			"corruption (0xBAD)", ra, ok)
	}
}

func TestRASCheckpointRepairsOverwrittenTop(t *testing.T) {
	r := NewRAS(8)
	r.Push(0x100)
	cp := r.Checkpoint()
	r.Pop()
	r.Push(0xBAD) // overwrites the same slot
	r.Restore(cp)
	if ra, ok := r.Pop(); !ok || ra != 0x100 {
		t.Fatalf("post-restore Pop = %v,%v want 0x100", ra, ok)
	}
}

func TestBimodalSaturationAndConfidence(t *testing.T) {
	b := NewBimodal(2048)
	pc := isa.Addr(0x100)
	// Initial mid-point: not taken, not confident.
	taken, conf := b.Predict(pc)
	if taken || conf {
		t.Fatalf("initial Predict = %v,%v", taken, conf)
	}
	for i := 0; i < 10; i++ {
		b.Update(pc, true)
	}
	taken, conf = b.Predict(pc)
	if !taken || !conf {
		t.Fatalf("after training taken: %v,%v want true,true", taken, conf)
	}
	// One not-taken breaks saturation but not direction.
	b.Update(pc, false)
	taken, conf = b.Predict(pc)
	if !taken || conf {
		t.Fatalf("after one not-taken: %v,%v want true,false", taken, conf)
	}
}

func TestBimodalStorage(t *testing.T) {
	if bits := NewBimodal(2048).StorageBits(); bits != 2048*3 {
		t.Errorf("storage = %d bits, want %d (Table II 0.75KB)", bits, 2048*3)
	}
}

func TestBimodalAliasing(t *testing.T) {
	b := NewBimodal(64)
	b.Update(0x100, true)
	// 64 entries * 4 bytes apart: pc + 256 aliases.
	for i := 0; i < 10; i++ {
		b.Update(0x100+256, false)
	}
	if taken, _ := b.Predict(0x100); taken {
		t.Error("aliased counter should now predict not-taken")
	}
}

func TestNewRASPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRAS(0) did not panic")
		}
	}()
	NewRAS(0)
}

func TestNewBimodalPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBimodal(3) did not panic")
		}
	}()
	NewBimodal(3)
}
