package bpred

import "elfetch/internal/isa"

// TAGE is the decoupled fetcher's conditional predictor (Table II:
// "state-of-art 32KB TAGE predictor (8 tagged tables)"), after Seznec [14].
//
// A bimodal table provides the base prediction; eight tagged tables indexed
// with geometrically increasing history lengths override it when they match.
// The paper's L0-BTB fast path uses only the bimodal component in the same
// cycle and treats a disagreeing tagged prediction as a one-bubble override
// in BP2 (Section III-B2) — hence the exported BimodalPredict alongside the
// full Predict.
type TAGE struct {
	bimodal []int8 // 2-bit counters, -2..1 (taken when >= 0)

	tables [NumTAGETables]tageTable

	// useAltCtr implements USE_ALT_ON_NA: when newly allocated entries
	// are unreliable, prefer the alternate prediction.
	useAltCtr int8

	// allocSeed decorrelates allocation victim choice.
	allocSeed uint64
}

// NumTAGETables is the number of tagged tables.
const NumTAGETables = 8

// tageHistLens are the geometric history lengths per tagged table.
var tageHistLens = [NumTAGETables]uint{2, 4, 8, 12, 18, 27, 40, 60}

type tageEntry struct {
	tag    uint16
	ctr    int8  // 3-bit signed counter, -4..3 (taken when >= 0)
	useful uint8 // 2-bit usefulness
}

type tageTable struct {
	entries []tageEntry
	histLen uint
	idxBits uint
	tagBits uint
}

// TAGEPred carries everything Update needs to apply the outcome without
// re-reading predictor state: the indexing decisions made at prediction
// time. It is stored per in-flight conditional branch.
type TAGEPred struct {
	// Taken is the overall prediction.
	Taken bool
	// BimodalTaken is the base component's prediction (the only one
	// available on the L0-BTB fast path).
	BimodalTaken bool
	// provider is the matching table (-1 = bimodal), alt the next-longest
	// match (-1 = bimodal).
	provider, alt int8
	providerTaken bool
	altTaken      bool
	bimIdx        uint32
	idx           [NumTAGETables]uint32
	tag           [NumTAGETables]uint16
	weak          bool
}

// Disagree reports whether the tagged prediction overrides the bimodal —
// the condition that costs one bubble on the L0-BTB fast path.
func (p *TAGEPred) Disagree() bool { return p.Taken != p.BimodalTaken }

const (
	tageBimodalBits = 13 // 8K-entry bimodal
	tageIdxBits     = 10 // 1K entries per tagged table
	tageTagBits     = 11
)

// NewTAGE returns a predictor with the Table II geometry.
func NewTAGE() *TAGE {
	t := &TAGE{bimodal: make([]int8, 1<<tageBimodalBits)}
	for i := range t.tables {
		t.tables[i] = tageTable{
			entries: make([]tageEntry, 1<<tageIdxBits),
			histLen: tageHistLens[i],
			idxBits: tageIdxBits,
			tagBits: tageTagBits,
		}
	}
	return t
}

// StorageBits returns the approximate storage budget, for the Table II test.
func (t *TAGE) StorageBits() int {
	bits := len(t.bimodal) * 2
	for i := range t.tables {
		bits += len(t.tables[i].entries) * (tageTagBits + 3 + 2)
	}
	return bits
}

func (tb *tageTable) index(pc uint64, h History) uint32 {
	hf := fold(h.GHR, tb.histLen, tb.idxBits)
	pf := uint64(h.Path) & ((1 << minUint(tb.histLen, 16)) - 1)
	v := pc>>2 ^ pc>>(2+tb.idxBits) ^ hf ^ pf<<1
	return uint32(v & ((1 << tb.idxBits) - 1))
}

func (tb *tageTable) tagOf(pc uint64, h History) uint16 {
	hf := fold(h.GHR, tb.histLen, tb.tagBits)
	hf2 := fold(h.GHR, tb.histLen, tb.tagBits-1)
	v := pc>>2 ^ hf ^ hf2<<1
	return uint16(v & ((1 << tb.tagBits) - 1))
}

func (t *TAGE) bimodalIndex(pc isa.Addr) uint32 {
	return uint32(uint64(pc) >> 2 & (1<<tageBimodalBits - 1))
}

// BimodalPredict returns only the base component's prediction — available
// in the same cycle as an L0 BTB hit.
func (t *TAGE) BimodalPredict(pc isa.Addr) bool {
	return t.bimodal[t.bimodalIndex(pc)] >= 0
}

// Predict returns the full TAGE prediction for the conditional branch at pc
// under speculative history h.
func (t *TAGE) Predict(pc isa.Addr, h History) TAGEPred {
	var p TAGEPred
	p.provider, p.alt = -1, -1
	p.bimIdx = t.bimodalIndex(pc)
	p.BimodalTaken = t.bimodal[p.bimIdx] >= 0
	p.providerTaken = p.BimodalTaken
	p.altTaken = p.BimodalTaken

	for i := 0; i < NumTAGETables; i++ {
		tb := &t.tables[i]
		p.idx[i] = tb.index(uint64(pc), h)
		p.tag[i] = tb.tagOf(uint64(pc), h)
	}
	for i := NumTAGETables - 1; i >= 0; i-- {
		e := &t.tables[i].entries[p.idx[i]]
		if e.tag != p.tag[i] {
			continue
		}
		if p.provider < 0 {
			p.provider = int8(i)
			p.providerTaken = e.ctr >= 0
			p.weak = e.ctr == 0 || e.ctr == -1
		} else if p.alt < 0 {
			p.alt = int8(i)
			p.altTaken = e.ctr >= 0
			break
		}
	}
	p.Taken = p.providerTaken
	if p.provider >= 0 && p.weak && t.useAltCtr >= 0 {
		// Newly-allocated (weak) providers are unreliable; fall back to
		// the alternate prediction while useAltCtr says so.
		p.Taken = p.altTaken
	}
	return p
}

// Update trains the predictor with the resolved outcome. pred must be the
// value returned by Predict for this dynamic branch.
func (t *TAGE) Update(pc isa.Addr, pred TAGEPred, taken bool) {
	// USE_ALT_ON_NA bookkeeping.
	if pred.provider >= 0 && pred.weak && pred.providerTaken != pred.altTaken {
		if pred.altTaken == taken {
			t.useAltCtr = satInc8(t.useAltCtr, 3)
		} else {
			t.useAltCtr = satDec8(t.useAltCtr, -4)
		}
	}

	if pred.provider >= 0 {
		e := &t.tables[pred.provider].entries[pred.idx[pred.provider]]
		if taken {
			e.ctr = satInc8(e.ctr, 3)
		} else {
			e.ctr = satDec8(e.ctr, -4)
		}
		// Usefulness: provider was right where alt was wrong.
		if pred.providerTaken != pred.altTaken {
			if pred.providerTaken == taken {
				if e.useful < 3 {
					e.useful++
				}
			} else if e.useful > 0 {
				e.useful--
			}
		}
	} else {
		b := &t.bimodal[pred.bimIdx]
		if taken {
			*b = satInc8(*b, 1)
		} else {
			*b = satDec8(*b, -2)
		}
	}

	// Allocate a longer-history entry on misprediction.
	if pred.Taken != taken && pred.provider < int8(NumTAGETables)-1 {
		t.allocate(pred, taken)
	}
}

func (t *TAGE) allocate(pred TAGEPred, taken bool) {
	start := int(pred.provider) + 1
	// Find a victim with useful == 0 among longer tables, preferring
	// shorter ones (classic TAGE allocation).
	t.allocSeed = t.allocSeed*6364136223846793005 + 1442695040888963407
	skip := int(t.allocSeed>>62) & 1 // probabilistic start offset
	allocated := false
	for i := start + skip; i < NumTAGETables; i++ {
		e := &t.tables[i].entries[pred.idx[i]]
		if e.useful == 0 {
			e.tag = pred.tag[i]
			e.useful = 0
			if taken {
				e.ctr = 0
			} else {
				e.ctr = -1
			}
			allocated = true
			break
		}
	}
	if !allocated {
		// Decay usefulness so future allocations succeed.
		for i := start; i < NumTAGETables; i++ {
			e := &t.tables[i].entries[pred.idx[i]]
			if e.useful > 0 {
				e.useful--
			}
		}
	}
}

func satInc8(v, max int8) int8 {
	if v < max {
		return v + 1
	}
	return v
}

func satDec8(v, min int8) int8 {
	if v > min {
		return v - 1
	}
	return v
}

func minUint(a, b uint) uint {
	if a < b {
		return a
	}
	return b
}
