package bpred

import (
	"testing"

	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/xrand"
)

// trainTAGE runs a behaviour stream through the predictor and returns the
// accuracy over the last half (post-warmup).
func trainTAGE(t *testing.T, b program.Behavior, n int, pc isa.Addr) float64 {
	t.Helper()
	tage := NewTAGE()
	var h History
	var st program.State
	env := &program.Env{PC: uint64(pc)}
	correct, counted := 0, 0
	for i := 0; i < n; i++ {
		pred := tage.Predict(pc, h)
		taken := b.Taken(&st, env)
		env.GHR = env.GHR<<1 | b2u(taken)
		if i >= n/2 {
			counted++
			if pred.Taken == taken {
				correct++
			}
		}
		tage.Update(pc, pred, taken)
		h.UpdateCond(uint64(pc), taken)
	}
	return float64(correct) / float64(counted)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestTAGELearnsLoops(t *testing.T) {
	if acc := trainTAGE(t, program.Loop{Trip: 9}, 8000, 0x1000); acc < 0.97 {
		t.Errorf("loop accuracy = %v, want >= 0.97", acc)
	}
}

func TestTAGELearnsPatterns(t *testing.T) {
	if acc := trainTAGE(t, program.Pattern{Bits: 0b1101001, Len: 7}, 8000, 0x2000); acc < 0.97 {
		t.Errorf("pattern accuracy = %v, want >= 0.97", acc)
	}
}

func TestTAGELearnsHistoryHash(t *testing.T) {
	// The archetypal TAGE-predictable / bimodal-hostile branch.
	acc := trainTAGE(t, program.HistoryHash{Mask: 0x3F}, 20000, 0x3000)
	if acc < 0.95 {
		t.Errorf("history-hash accuracy = %v, want >= 0.95", acc)
	}
}

func TestTAGECannotLearnChaos(t *testing.T) {
	acc := trainTAGE(t, program.Bernoulli{P: 0.5, Salt: 1}, 20000, 0x4000)
	if acc > 0.62 {
		t.Errorf("chaos accuracy = %v — suspiciously high for a fair coin", acc)
	}
}

func TestTAGEBiasTracking(t *testing.T) {
	acc := trainTAGE(t, program.Bernoulli{P: 0.95, Salt: 2}, 20000, 0x5000)
	if acc < 0.90 {
		t.Errorf("biased accuracy = %v, want >= 0.90", acc)
	}
}

func TestBimodalComponentVsTagged(t *testing.T) {
	// For a history-hash branch, the full TAGE prediction should
	// frequently disagree with the bimodal component — that disagreement
	// is what costs a bubble on the L0-BTB fast path (Section III-B2).
	tage := NewTAGE()
	var h History
	var st program.State
	env := &program.Env{PC: 0x6000}
	beh := program.HistoryHash{Mask: 0x1F}
	disagree := 0
	const n = 20000
	for i := 0; i < n; i++ {
		pred := tage.Predict(0x6000, h)
		taken := beh.Taken(&st, env)
		env.GHR = env.GHR<<1 | b2u(taken)
		if i > n/2 && pred.Disagree() {
			disagree++
		}
		tage.Update(0x6000, pred, taken)
		h.UpdateCond(0x6000, taken)
	}
	if disagree < n/10 {
		t.Errorf("tagged/bimodal disagreement = %d of %d, want a substantial fraction", disagree, n/2)
	}
}

func TestTAGEMultipleBranchesDoNotDestroyEachOther(t *testing.T) {
	tage := NewTAGE()
	var h History
	behs := []program.Behavior{
		program.Loop{Trip: 5},
		program.Pattern{Bits: 0b0011, Len: 4},
		program.Bernoulli{P: 0.9, Salt: 3},
	}
	sts := make([]program.State, len(behs))
	pcs := []isa.Addr{0x1000, 0x1004, 0x1008}
	correct, counted := 0, 0
	const rounds = 6000
	for i := 0; i < rounds; i++ {
		for j := range behs {
			env := &program.Env{PC: uint64(pcs[j]), GHR: h.GHR}
			pred := tage.Predict(pcs[j], h)
			taken := behs[j].Taken(&sts[j], env)
			if i > rounds/2 {
				counted++
				if pred.Taken == taken {
					correct++
				}
			}
			tage.Update(pcs[j], pred, taken)
			h.UpdateCond(uint64(pcs[j]), taken)
		}
	}
	if acc := float64(correct) / float64(counted); acc < 0.95 {
		t.Errorf("interleaved accuracy = %v, want >= 0.95", acc)
	}
}

func TestTAGEStorageNear32KB(t *testing.T) {
	bits := NewTAGE().StorageBits()
	kb := float64(bits) / 8 / 1024
	if kb < 16 || kb > 40 {
		t.Errorf("TAGE storage = %.1fKB, want ~32KB (Table II)", kb)
	}
}

func TestFoldProperties(t *testing.T) {
	// fold must confine output to width bits and depend on all folded
	// chunks.
	if v := fold(0xFFFF_FFFF_FFFF_FFFF, 64, 10); v >= 1<<10 {
		t.Errorf("fold exceeded width: %x", v)
	}
	if fold(0b1010, 4, 2) != 0b10^0b10 {
		t.Errorf("fold(0b1010,4,2) = %b", fold(0b1010, 4, 2))
	}
	a := fold(0x1234_5678, 32, 12)
	b := fold(0x1234_5679, 32, 12)
	if a == b {
		t.Error("fold insensitive to low bit")
	}
}

func TestHistoryUpdateShifts(t *testing.T) {
	var h History
	h.UpdateCond(0x40, true)
	h.UpdateCond(0x44, false)
	h.UpdateCond(0x48, true)
	if h.GHR&0b111 != 0b101 {
		t.Errorf("GHR low bits = %b, want 101", h.GHR&0b111)
	}
	p0 := h.Path
	h.UpdateIndirect(0xbeef00)
	if h.Path == p0 {
		t.Error("UpdateIndirect did not change path history")
	}
}

func TestTAGECheckpointRestoreViaValueCopy(t *testing.T) {
	// History is a value type: a copy must be a full checkpoint.
	var h History
	r := xrand.New(1)
	for i := 0; i < 100; i++ {
		h.UpdateCond(uint64(i*4), r.Bool(0.5))
	}
	cp := h
	for i := 0; i < 50; i++ {
		h.UpdateCond(uint64(i*8), r.Bool(0.5))
	}
	h = cp
	if h != cp {
		t.Error("history restore by assignment failed")
	}
}

func TestTAGEPredictIsPureFunction(t *testing.T) {
	// Predict must not mutate predictor state: same (pc, history) twice
	// in a row gives identical read-outs.
	tage := NewTAGE()
	var h History
	var st program.State
	env := &program.Env{PC: 0x9000}
	beh := program.Pattern{Bits: 0b1011, Len: 4}
	for i := 0; i < 2000; i++ {
		p1 := tage.Predict(0x9000, h)
		p2 := tage.Predict(0x9000, h)
		if p1 != p2 {
			t.Fatalf("Predict mutated state at step %d", i)
		}
		taken := beh.Taken(&st, env)
		tage.Update(0x9000, p1, taken)
		h.UpdateCond(0x9000, taken)
	}
}

func TestTAGETwoInstancesStayIdentical(t *testing.T) {
	// Determinism: two predictors fed the same stream predict identically
	// forever (the repo-wide reproducibility requirement).
	a, b := NewTAGE(), NewTAGE()
	var ha, hb History
	var st program.State
	env := &program.Env{PC: 0xA000}
	beh := program.HistoryHash{Mask: 0x7F}
	for i := 0; i < 5000; i++ {
		pa := a.Predict(0xA000, ha)
		pb := b.Predict(0xA000, hb)
		if pa.Taken != pb.Taken {
			t.Fatalf("instances diverged at %d", i)
		}
		env.GHR = ha.GHR
		taken := beh.Taken(&st, env)
		a.Update(0xA000, pa, taken)
		b.Update(0xA000, pb, taken)
		ha.UpdateCond(0xA000, taken)
		hb.UpdateCond(0xA000, taken)
	}
}
