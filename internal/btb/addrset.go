package btb

import "elfetch/internal/isa"

// addrSet is an open-addressing (linear probe) set of instruction
// addresses. It replaces the builder's map[isa.Addr]bool sets on the
// retire path, where 2-3 map operations per retired instruction showed up
// as hashing overhead: Fibonacci-hash index arithmetic over a flat array
// keeps the probe to a couple of cache lines with no interface or bucket
// machinery. Semantics are an exact set — membership answers must match
// the map it replaced bit-for-bit, or golden-stats equivalence breaks.
//
// The zero address doubles as the empty-slot marker, so it is tracked in
// a side flag (front-end code does pass PC 0 sentinels around; the set
// must not conflate them with emptiness).
type addrSet struct {
	slots   []isa.Addr // 0 = empty
	n       int        // non-zero keys stored
	hasZero bool
}

// newAddrSet returns a set with capacity for about cap keys before the
// first rehash.
func newAddrSet(capacity int) *addrSet {
	size := 16
	for size*3/4 < capacity {
		size <<= 1
	}
	return &addrSet{slots: make([]isa.Addr, size)}
}

// idx is the Fibonacci-hash start index for a in a table of len(slots)
// (always a power of two).
func (s *addrSet) idx(a isa.Addr) int {
	return int((uint64(a) * 0x9E3779B97F4A7C15) >> 32 & uint64(len(s.slots)-1))
}

// Contains reports membership.
func (s *addrSet) Contains(a isa.Addr) bool {
	if a == 0 {
		return s.hasZero
	}
	for i := s.idx(a); ; i = (i + 1) & (len(s.slots) - 1) {
		switch s.slots[i] {
		case a:
			return true
		case 0:
			return false
		}
	}
}

// Add inserts a, growing at 3/4 load so probes stay short.
func (s *addrSet) Add(a isa.Addr) {
	if a == 0 {
		s.hasZero = true
		return
	}
	if (s.n+1)*4 > len(s.slots)*3 {
		s.grow()
	}
	for i := s.idx(a); ; i = (i + 1) & (len(s.slots) - 1) {
		switch s.slots[i] {
		case a:
			return
		case 0:
			s.slots[i] = a
			s.n++
			return
		}
	}
}

func (s *addrSet) grow() {
	old := s.slots
	s.slots = make([]isa.Addr, 2*len(old))
	s.n = 0
	for _, a := range old {
		if a != 0 {
			s.Add(a)
		}
	}
}

// Len returns the number of stored addresses.
func (s *addrSet) Len() int {
	if s.hasZero {
		return s.n + 1
	}
	return s.n
}

// Reset empties the set, keeping the backing array.
func (s *addrSet) Reset() {
	for i := range s.slots {
		s.slots[i] = 0
	}
	s.n = 0
	s.hasZero = false
}
