package btb

import (
	"math/rand"
	"testing"

	"elfetch/internal/isa"
)

// TestAddrSetMatchesMap cross-checks the open-addressing set against the
// map[isa.Addr]bool it replaced: membership must be exact through
// insertions, duplicate adds, growth, and resets — the builder's
// "observed taken before" predicate feeds golden-pinned stats.
func TestAddrSetMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	s := newAddrSet(4)
	ref := map[isa.Addr]bool{}
	// Small key space forces duplicates; occasional wide keys force probe
	// wraps near the table end.
	key := func() isa.Addr {
		if rng.Intn(10) == 0 {
			return isa.Addr(rng.Uint64())
		}
		return isa.Addr(rng.Intn(2000)) * 4
	}
	for i := 0; i < 20_000; i++ {
		switch rng.Intn(4) {
		case 0, 1:
			a := key()
			s.Add(a)
			ref[a] = true
		case 2:
			a := key()
			if s.Contains(a) != ref[a] {
				t.Fatalf("op %d: Contains(%#x) = %v, map says %v", i, uint64(a), s.Contains(a), ref[a])
			}
		case 3:
			if s.Len() != len(ref) {
				t.Fatalf("op %d: Len() = %d, map has %d", i, s.Len(), len(ref))
			}
		}
	}
	for a := range ref {
		if !s.Contains(a) {
			t.Fatalf("lost key %#x after growth", uint64(a))
		}
	}
}

func TestAddrSetZeroKey(t *testing.T) {
	s := newAddrSet(4)
	if s.Contains(0) {
		t.Fatal("empty set must not contain the zero address")
	}
	s.Add(0)
	if !s.Contains(0) || s.Len() != 1 {
		t.Fatalf("zero address not tracked: len=%d", s.Len())
	}
	s.Reset()
	if s.Contains(0) || s.Len() != 0 {
		t.Fatal("Reset must clear the zero address too")
	}
}

func TestAddrSetReset(t *testing.T) {
	s := newAddrSet(4)
	for i := 1; i <= 100; i++ {
		s.Add(isa.Addr(i * 8))
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("len after reset = %d", s.Len())
	}
	for i := 1; i <= 100; i++ {
		if s.Contains(isa.Addr(i * 8)) {
			t.Fatalf("key %d survived reset", i)
		}
	}
	s.Add(24)
	if !s.Contains(24) || s.Len() != 1 {
		t.Fatal("set unusable after reset")
	}
}
