// Package btb implements the three-level Branch Target Buffer hierarchy of
// Table II and the entry format of Section III-A:
//
//   - an entry is indexed by the address of its first instruction and covers
//     up to MaxInsts (16) sequential instructions;
//   - it tracks up to MaxBranches (2) "observed taken before" branches, with
//     targets when direct;
//   - an entry ends at an unconditional branch, at the point a third
//     taken-observed conditional would be needed, or at 16 instructions;
//   - entries are established non-speculatively at retire (a Builder
//     accumulates the retired stream), and an entry is amended — possibly
//     split in two — when a never-observed-taken conditional turns taken.
//
// Hierarchy (Table II): L0 24-entry fully associative (0-cycle: a hit can
// drive the next lookup with no bubble), L1 256-entry 4-way (1 cycle),
// L2 4K-entry 8-way (3 cycles).
package btb

import (
	"elfetch/internal/isa"
)

// MaxInsts is the maximum sequential instructions per entry.
const MaxInsts = 16

// MaxBranches is the maximum tracked branches per entry.
const MaxBranches = 2

// Branch is one tracked branch within an entry.
type Branch struct {
	// Offset is the branch's position from the entry start, in
	// instructions.
	Offset uint8
	// Class is the branch type (the fetcher needs it to route the
	// prediction: conditional → TAGE, return → RAS, indirect → BTC/ITTAGE).
	Class isa.Class
	// Target is the stored target for direct branches (0 for indirect:
	// the BTB does not store indirect targets; the target predictor does).
	Target isa.Addr
}

// TermKind says why an entry ended — the fetcher's sequencing depends on it.
type TermKind uint8

const (
	// TermFallthrough: ended by the 16-instruction limit or branch-slot
	// exhaustion; the next BPred PC is Start + Count insts.
	TermFallthrough TermKind = iota
	// TermUncond: ended by an unconditional branch (the last tracked
	// branch).
	TermUncond
)

// Entry is one BTB entry.
type Entry struct {
	// Start is the address of the first covered instruction (the tag).
	Start isa.Addr
	// Count is the number of covered instructions, 1..MaxInsts.
	Count uint8
	// NumBranches is the number of valid Branches.
	NumBranches uint8
	// Branches are the tracked branches in program order.
	Branches [MaxBranches]Branch
	// Term is the termination cause.
	Term TermKind
}

// FallThrough returns the address just past the entry.
func (e *Entry) FallThrough() isa.Addr { return e.Start.Plus(int(e.Count)) }

// Level identifies which BTB level served a lookup.
type Level int8

const (
	// Miss means no level had the entry.
	Miss Level = -1
	// L0, L1, L2 are the hierarchy levels.
	L0 Level = 0
	L1 Level = 1
	L2 Level = 2
)

func (l Level) String() string {
	switch l {
	case L0:
		return "L0"
	case L1:
		return "L1"
	case L2:
		return "L2"
	default:
		return "miss"
	}
}

// bank is one set-associative level.
type bank struct {
	sets    int
	ways    int
	entries []Entry // sets × ways
	valid   []bool
	lru     []uint8 // per-way age within a set; 0 = MRU
}

func newBank(sets, ways int) *bank {
	b := &bank{sets: sets, ways: ways,
		entries: make([]Entry, sets*ways),
		valid:   make([]bool, sets*ways),
		lru:     make([]uint8, sets*ways),
	}
	for i := range b.lru {
		b.lru[i] = uint8(i % ways)
	}
	return b
}

func (b *bank) setOf(pc isa.Addr) int {
	return int(uint64(pc) >> 2 % uint64(b.sets))
}

// lookup returns the entry starting exactly at pc.
func (b *bank) lookup(pc isa.Addr) (*Entry, bool) {
	s := b.setOf(pc)
	base := s * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.entries[i].Start == pc {
			b.touch(s, w)
			return &b.entries[i], true
		}
	}
	return nil, false
}

// touch marks way w of set s most-recently used.
func (b *bank) touch(s, w int) {
	base := s * b.ways
	old := b.lru[base+w]
	for i := 0; i < b.ways; i++ {
		if b.lru[base+i] < old {
			b.lru[base+i]++
		}
	}
	b.lru[base+w] = 0
}

// insert installs (or replaces) the entry for e.Start.
func (b *bank) insert(e Entry) {
	s := b.setOf(e.Start)
	base := s * b.ways
	victim := 0
	var worst uint8
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.entries[i].Start == e.Start {
			b.entries[i] = e
			b.touch(s, w)
			return
		}
		if !b.valid[i] {
			victim = w
			worst = 255
			continue
		}
		if b.lru[i] >= worst {
			worst = b.lru[i]
			victim = w
		}
	}
	i := base + victim
	b.entries[i] = e
	b.valid[i] = true
	b.touch(s, victim)
}

// invalidate removes the entry starting at pc, if present.
func (b *bank) invalidate(pc isa.Addr) {
	s := b.setOf(pc)
	base := s * b.ways
	for w := 0; w < b.ways; w++ {
		i := base + w
		if b.valid[i] && b.entries[i].Start == pc {
			b.valid[i] = false
		}
	}
}

// Stats counts per-level lookup outcomes.
type Stats struct {
	Lookups uint64
	Hits    [3]uint64
	Misses  uint64
}

// HitRate returns the hit fraction of level l over all lookups.
func (s *Stats) HitRate(l Level) float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Hits[l]) / float64(s.Lookups)
}

// BTB is the three-level hierarchy.
type BTB struct {
	l0, l1, l2 *bank
	// Stats accumulates lookup outcomes.
	Stats Stats
}

// Config sizes the hierarchy.
type Config struct {
	L0Entries         int // fully associative
	L1Entries, L1Ways int
	L2Entries, L2Ways int
}

// DefaultConfig is Table II: L0 24-entry FA, L1 256-entry 4-way, L2
// 4K-entry 8-way.
func DefaultConfig() Config {
	return Config{L0Entries: 24, L1Entries: 256, L1Ways: 4, L2Entries: 4096, L2Ways: 8}
}

// New builds the hierarchy. A zero L0Entries disables that level (for the
// L0-ablation bench).
func New(cfg Config) *BTB {
	b := &BTB{}
	if cfg.L0Entries > 0 {
		b.l0 = newBank(1, cfg.L0Entries)
	}
	b.l1 = newBank(cfg.L1Entries/cfg.L1Ways, cfg.L1Ways)
	b.l2 = newBank(cfg.L2Entries/cfg.L2Ways, cfg.L2Ways)
	return b
}

// Lookup searches the hierarchy for the entry starting at pc. On an outer-
// level hit the entry is promoted into the faster levels (so the hot
// working set migrates toward L0). The returned entry is a copy — levels
// may replace their slots at any time.
func (b *BTB) Lookup(pc isa.Addr) (Entry, Level) {
	b.Stats.Lookups++
	if b.l0 != nil {
		if e, ok := b.l0.lookup(pc); ok {
			b.Stats.Hits[L0]++
			return *e, L0
		}
	}
	if e, ok := b.l1.lookup(pc); ok {
		b.Stats.Hits[L1]++
		cp := *e
		if b.l0 != nil {
			b.l0.insert(cp)
		}
		return cp, L1
	}
	if e, ok := b.l2.lookup(pc); ok {
		b.Stats.Hits[L2]++
		cp := *e
		b.l1.insert(cp)
		if b.l0 != nil {
			b.l0.insert(cp)
		}
		return cp, L2
	}
	b.Stats.Misses++
	return Entry{}, Miss
}

// Probe is Lookup without promotion or statistics (for tests/tools).
func (b *BTB) Probe(pc isa.Addr) (Entry, Level) {
	if b.l0 != nil {
		if e, ok := b.l0.lookup(pc); ok {
			return *e, L0
		}
	}
	if e, ok := b.l1.lookup(pc); ok {
		return *e, L1
	}
	if e, ok := b.l2.lookup(pc); ok {
		return *e, L2
	}
	return Entry{}, Miss
}

// Install establishes a retired entry into L2 and L1 (Section III-A: BTB
// entries are established non-speculatively as instructions retire). A
// same-start entry already resident in L0 is refreshed in place so the
// fast level does not serve amended layouts forever; absent entries are
// not pulled into L0 (promotion happens on lookup).
func (b *BTB) Install(e Entry) {
	b.l2.insert(e)
	b.l1.insert(e)
	if b.l0 != nil {
		if _, ok := b.l0.lookup(e.Start); ok {
			b.l0.insert(e)
		}
	}
}

// Invalidate removes any entry starting at pc from every level (entry
// amendment replaces stale layouts).
func (b *BTB) Invalidate(pc isa.Addr) {
	if b.l0 != nil {
		b.l0.invalidate(pc)
	}
	b.l1.invalidate(pc)
	b.l2.invalidate(pc)
}
