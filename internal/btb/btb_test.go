package btb

import (
	"testing"

	"elfetch/internal/isa"
)

func newDefault() *BTB { return New(DefaultConfig()) }

func entryAt(start isa.Addr, count uint8) Entry {
	return Entry{Start: start, Count: count}
}

func TestInstallAndLookupPromotes(t *testing.T) {
	b := newDefault()
	e := entryAt(0x1000, 8)
	b.Install(e)
	// First lookup: L1 hit (install goes to L1+L2), promotes to L0.
	got, lvl := b.Lookup(0x1000)
	if lvl != L1 || got.Start != 0x1000 {
		t.Fatalf("first lookup level = %v, want L1", lvl)
	}
	got, lvl = b.Lookup(0x1000)
	if lvl != L0 {
		t.Fatalf("second lookup level = %v, want L0 (promoted)", lvl)
	}
	if got.Count != 8 {
		t.Errorf("entry content lost: %+v", got)
	}
}

func TestLookupMiss(t *testing.T) {
	b := newDefault()
	if _, lvl := b.Lookup(0x9999000); lvl != Miss {
		t.Fatalf("level = %v, want Miss", lvl)
	}
	if b.Stats.Misses != 1 || b.Stats.Lookups != 1 {
		t.Errorf("stats = %+v", b.Stats)
	}
}

func TestL0CapacityEviction(t *testing.T) {
	b := newDefault()
	// Install and touch 30 distinct entries; L0 holds 24.
	for i := 0; i < 30; i++ {
		pc := isa.Addr(0x1000 + i*64)
		b.Install(entryAt(pc, 16))
		b.Lookup(pc) // promote to L0
	}
	// The most recent is in L0, the oldest is not.
	if _, lvl := b.Lookup(0x1000 + 29*64); lvl != L0 {
		t.Errorf("most recent entry level = %v, want L0", lvl)
	}
	if _, lvl := b.Lookup(0x1000); lvl == L0 {
		t.Error("oldest entry still in 24-entry L0 after 30 inserts")
	}
}

func TestL1FallsBackToL2(t *testing.T) {
	b := newDefault()
	// Flood one L1 set: L1 has 64 sets × 4 ways; entries 64 sets apart
	// collide. After 5 inserts the first is L1-evicted but L2-resident.
	stride := 64 * isa.InstBytes
	for i := 0; i < 5; i++ {
		b.Install(entryAt(isa.Addr(0x4000+i*stride), 4))
	}
	if _, lvl := b.Probe(0x4000); lvl != L2 {
		t.Errorf("evicted-from-L1 entry level = %v, want L2", lvl)
	}
}

func TestInvalidateRemovesEverywhere(t *testing.T) {
	b := newDefault()
	b.Install(entryAt(0x2000, 4))
	b.Lookup(0x2000)
	b.Lookup(0x2000) // now in L0
	b.Invalidate(0x2000)
	if _, lvl := b.Lookup(0x2000); lvl != Miss {
		t.Errorf("level after invalidate = %v, want Miss", lvl)
	}
}

func TestInstallRefreshesResidentL0(t *testing.T) {
	b := newDefault()
	b.Install(entryAt(0x3000, 16))
	b.Lookup(0x3000) // promote to L0
	if _, lvl := b.Probe(0x3000); lvl != L0 {
		t.Fatal("setup: entry not in L0")
	}
	amended := entryAt(0x3000, 7)
	b.Install(amended)
	got, lvl := b.Probe(0x3000)
	if lvl != L0 || got.Count != 7 {
		t.Errorf("L0 not refreshed: lvl=%v count=%d", lvl, got.Count)
	}
}

func TestNoL0Config(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L0Entries = 0
	b := New(cfg)
	b.Install(entryAt(0x1000, 4))
	for i := 0; i < 3; i++ {
		if _, lvl := b.Lookup(0x1000); lvl != L1 {
			t.Fatalf("lookup %d level = %v, want L1 (no L0 configured)", i, lvl)
		}
	}
}

func TestHitRate(t *testing.T) {
	b := newDefault()
	b.Install(entryAt(0x1000, 4))
	b.Lookup(0x1000) // L1
	b.Lookup(0x1000) // L0
	b.Lookup(0x2000) // miss
	if got := b.Stats.HitRate(L0); got != 1.0/3 {
		t.Errorf("L0 hit rate = %v, want 1/3", got)
	}
	if got := b.Stats.HitRate(L1); got != 1.0/3 {
		t.Errorf("L1 hit rate = %v, want 1/3", got)
	}
}

func TestEntryFallThrough(t *testing.T) {
	e := entryAt(0x1000, 10)
	if e.FallThrough() != 0x1000+10*isa.InstBytes {
		t.Errorf("FallThrough = %v", e.FallThrough())
	}
}
