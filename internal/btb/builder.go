package btb

import "elfetch/internal/isa"

// Builder establishes BTB entries non-speculatively from the retired
// instruction stream (Section III-A). The pipeline feeds it every retiring
// instruction in order; completed entries are installed into the hierarchy.
//
// Slot discipline: only "observed taken before" conditionals occupy one of
// the MaxBranches slots; a conditional that has never retired taken is
// invisible to the BTB. Unconditional branches always take a slot and
// terminate the entry. An entry also ends when a third slot would be
// needed (this is the "split" case: the follow-on instructions start a
// fresh entry) or at MaxInsts.
type Builder struct {
	btb *BTB

	cur    Entry
	active bool

	// everTaken tracks which static conditionals have retired taken —
	// the "observed taken before" predicate. (Hardware derives this from
	// the BTB content itself; the simulator keeps it exact.)
	everTaken *addrSet

	// boundaries are addresses where an entry must start: front-end
	// resteer targets. Without them, a flush target that lands mid-entry
	// would miss the start-indexed BTB on every recurrence.
	boundaries *addrSet

	// Installed counts completed entries, for stats/tests.
	Installed uint64
}

// NewBuilder returns a builder installing into btb.
func NewBuilder(b *BTB) *Builder {
	return &Builder{
		btb:        b,
		everTaken:  newAddrSet(1 << 10),
		boundaries: newAddrSet(1 << 10),
	}
}

// ForceBoundary records a front-end resteer target: the next time the
// retire stream reaches pc, the open entry closes so an entry starts
// exactly at pc (fetch-region alignment).
func (b *Builder) ForceBoundary(pc isa.Addr) {
	if b.boundaries.Len() > 1<<16 {
		b.boundaries.Reset()
	}
	b.boundaries.Add(pc)
}

// ObservedTaken reports whether the conditional at pc has ever retired
// taken (exposed for divergence logic and tests).
func (b *Builder) ObservedTaken(pc isa.Addr) bool { return b.everTaken.Contains(pc) }

// Retire feeds one retiring instruction: its address, class, branch outcome
// and — for direct branches — its (decoded) target.
func (b *Builder) Retire(pc isa.Addr, class isa.Class, taken bool, target isa.Addr) {
	if b.active && b.boundaries.Contains(pc) && b.cur.Start != pc {
		b.close(TermFallthrough)
	}
	if b.active && b.cur.Start.Plus(int(b.cur.Count)) != pc {
		// Retire stream jumped (taken branch closed the entry last
		// call, or a flush restarted the stream): finish the open
		// entry as-is.
		b.close(TermFallthrough)
	}
	if !b.active {
		b.open(pc)
	}

	switch {
	case class == isa.CondBranch:
		if taken {
			b.everTaken.Add(pc)
		}
		if b.everTaken.Contains(pc) {
			if b.cur.NumBranches == MaxBranches {
				// Needs a third slot: split — close here and
				// restart at the branch itself.
				b.close(TermFallthrough)
				b.open(pc)
			}
			b.addBranch(pc, class, target)
		}
		b.cur.Count++
		if taken {
			// Dynamic redirect: the sequential walk ends here.
			b.close(TermFallthrough)
		} else if b.cur.Count == MaxInsts {
			b.close(TermFallthrough)
		}

	case class.IsBranch(): // unconditional: direct or indirect
		if b.cur.NumBranches == MaxBranches {
			b.close(TermFallthrough)
			b.open(pc)
		}
		if class.IsDirect() {
			b.addBranch(pc, class, target)
		} else {
			b.addBranch(pc, class, 0) // indirect: no stored target
		}
		b.cur.Count++
		b.close(TermUncond)

	default:
		b.cur.Count++
		if b.cur.Count == MaxInsts {
			b.close(TermFallthrough)
		}
	}
}

func (b *Builder) open(pc isa.Addr) {
	b.cur = Entry{Start: pc}
	b.active = true
}

func (b *Builder) addBranch(pc isa.Addr, class isa.Class, target isa.Addr) {
	b.cur.Branches[b.cur.NumBranches] = Branch{
		Offset: uint8(b.cur.Start.InstsTo(pc)),
		Class:  class,
		Target: target,
	}
	b.cur.NumBranches++
}

func (b *Builder) close(term TermKind) {
	if !b.active || b.cur.Count == 0 {
		b.active = false
		return
	}
	b.cur.Term = term
	b.btb.Install(b.cur)
	b.Installed++
	b.active = false
}
