package btb

import (
	"testing"

	"elfetch/internal/isa"
)

// retireSeq feeds a straight-line run of n non-branch instructions.
func retireSeq(b *Builder, start isa.Addr, n int) {
	for i := 0; i < n; i++ {
		b.Retire(start.Plus(i), isa.ALU, false, 0)
	}
}

func TestBuilderMaxInstsEntry(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	retireSeq(b, 0x1000, 16)
	e, lvl := hier.Probe(0x1000)
	if lvl == Miss {
		t.Fatal("16-instruction run did not install an entry")
	}
	if e.Count != 16 || e.NumBranches != 0 || e.Term != TermFallthrough {
		t.Errorf("entry = %+v", e)
	}
	// The next instruction opens the follow-on entry at the fallthrough.
	retireSeq(b, 0x1000+16*4, 16)
	if _, lvl := hier.Probe(0x1000 + 16*4); lvl == Miss {
		t.Error("follow-on entry missing")
	}
}

func TestBuilderUncondTerminates(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	retireSeq(b, 0x2000, 3)
	b.Retire(0x2000+3*4, isa.Jump, true, 0x4000)
	e, lvl := hier.Probe(0x2000)
	if lvl == Miss {
		t.Fatal("entry not installed at unconditional")
	}
	if e.Count != 4 || e.Term != TermUncond || e.NumBranches != 1 {
		t.Fatalf("entry = %+v", e)
	}
	br := e.Branches[0]
	if br.Offset != 3 || br.Class != isa.Jump || br.Target != 0x4000 {
		t.Errorf("branch = %+v", br)
	}
}

func TestBuilderNeverTakenCondInvisible(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	retireSeq(b, 0x3000, 2)
	b.Retire(0x3000+2*4, isa.CondBranch, false, 0x5000) // never taken
	retireSeq(b, 0x3000+3*4, 13)
	e, _ := hier.Probe(0x3000)
	if e.NumBranches != 0 {
		t.Errorf("never-taken conditional occupies a slot: %+v", e)
	}
	if e.Count != 16 {
		t.Errorf("count = %d, want 16", e.Count)
	}
}

func TestBuilderTakenCondEndsWalkAndOccupiesSlot(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	retireSeq(b, 0x4000, 2)
	b.Retire(0x4000+2*4, isa.CondBranch, true, 0x6000)
	e, lvl := hier.Probe(0x4000)
	if lvl == Miss {
		t.Fatal("entry not installed at taken conditional")
	}
	if e.Count != 3 || e.NumBranches != 1 {
		t.Fatalf("entry = %+v", e)
	}
	if e.Branches[0].Target != 0x6000 || e.Branches[0].Class != isa.CondBranch {
		t.Errorf("branch = %+v", e.Branches[0])
	}
}

func TestBuilderAmendmentOnNewlyTakenCond(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	// First pass: conditional not taken -> invisible, entry covers 16.
	retireSeq(b, 0x5000, 2)
	b.Retire(0x5000+2*4, isa.CondBranch, false, 0x7000)
	retireSeq(b, 0x5000+3*4, 13)
	e, _ := hier.Probe(0x5000)
	if e.NumBranches != 0 {
		t.Fatalf("setup: %+v", e)
	}
	// Second pass: the conditional turns taken -> amended entry.
	retireSeq(b, 0x5000, 2)
	b.Retire(0x5000+2*4, isa.CondBranch, true, 0x7000)
	e, _ = hier.Probe(0x5000)
	if e.NumBranches != 1 || e.Count != 3 {
		t.Fatalf("amended entry = %+v", e)
	}
	// Third pass, not taken again: branch still occupies a slot
	// ("observed taken before"), and the entry can now extend past it.
	retireSeq(b, 0x5000, 2)
	b.Retire(0x5000+2*4, isa.CondBranch, false, 0x7000)
	retireSeq(b, 0x5000+3*4, 13)
	e, _ = hier.Probe(0x5000)
	if e.NumBranches != 1 || e.Count != 16 {
		t.Fatalf("re-extended entry = %+v", e)
	}
	if !b.ObservedTaken(0x5000 + 2*4) {
		t.Error("ObservedTaken lost")
	}
}

func TestBuilderSplitOnThirdTakenCond(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	// Make three conditionals observed-taken (separate passes).
	pcs := []isa.Addr{0x6000 + 1*4, 0x6000 + 3*4, 0x6000 + 5*4}
	for _, pc := range pcs {
		b.Retire(pc, isa.CondBranch, true, 0x9000)
	}
	// Now a straight-line pass where all three are not taken: the third
	// needs a slot the entry does not have -> split before it.
	b.Retire(0x6000, isa.ALU, false, 0)
	b.Retire(pcs[0], isa.CondBranch, false, 0x9000)
	b.Retire(0x6000+2*4, isa.ALU, false, 0)
	b.Retire(pcs[1], isa.CondBranch, false, 0x9000)
	b.Retire(0x6000+4*4, isa.ALU, false, 0)
	b.Retire(pcs[2], isa.CondBranch, false, 0x9000)
	retireSeq(b, 0x6000+6*4, 10)

	first, lvl := hier.Probe(0x6000)
	if lvl == Miss {
		t.Fatal("first split entry missing")
	}
	if first.Count != 5 || first.NumBranches != 2 {
		t.Fatalf("first = %+v", first)
	}
	second, lvl := hier.Probe(pcs[2])
	if lvl == Miss {
		t.Fatal("second split entry missing (should start at the third branch)")
	}
	if second.NumBranches != 1 || second.Branches[0].Offset != 0 {
		t.Fatalf("second = %+v", second)
	}
}

func TestBuilderIndirectStoresNoTarget(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	b.Retire(0x7000, isa.IndirectBranch, true, 0xDEAD0)
	e, _ := hier.Probe(0x7000)
	if e.NumBranches != 1 || e.Branches[0].Target != 0 {
		t.Errorf("indirect branch should store no target: %+v", e)
	}
	if e.Term != TermUncond {
		t.Errorf("term = %v, want TermUncond", e.Term)
	}
}

func TestBuilderRetireStreamJumpClosesEntry(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	retireSeq(b, 0x8000, 5)
	// Stream jumps (e.g. after a flush): open entry is finished as-is.
	retireSeq(b, 0x9000, 16)
	e, lvl := hier.Probe(0x8000)
	if lvl == Miss || e.Count != 5 {
		t.Errorf("jump-closed entry = %+v (lvl %v)", e, lvl)
	}
}

func TestBuilderCallAndRet(t *testing.T) {
	hier := newDefault()
	b := NewBuilder(hier)
	b.Retire(0xA000, isa.Call, true, 0xB000)
	b.Retire(0xB000, isa.ALU, false, 0)
	b.Retire(0xB004, isa.Ret, true, 0)
	call, _ := hier.Probe(0xA000)
	if call.NumBranches != 1 || call.Branches[0].Class != isa.Call || call.Branches[0].Target != 0xB000 {
		t.Errorf("call entry = %+v", call)
	}
	callee, _ := hier.Probe(0xB000)
	if callee.Count != 2 || callee.Branches[0].Class != isa.Ret || callee.Branches[0].Target != 0 {
		t.Errorf("callee entry = %+v", callee)
	}
}
