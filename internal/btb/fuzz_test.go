package btb

import (
	"testing"

	"elfetch/internal/isa"
	"elfetch/internal/xrand"
)

// TestBuilderFuzzInvariants drives the retire-time builder with a long
// randomized retire stream (random basic-block walks with calls, returns,
// taken/not-taken conditionals and stream jumps) and checks the structural
// invariants of every installed entry:
//
//   - 1 <= Count <= MaxInsts
//   - NumBranches <= MaxBranches
//   - branch offsets strictly increasing and < Count
//   - a TermUncond entry's last branch is unconditional and terminal
//   - direct branches carry their target; indirect carry none
func TestBuilderFuzzInvariants(t *testing.T) {
	hier := New(DefaultConfig())
	b := NewBuilder(hier)
	r := xrand.New(0xB77B)

	pc := isa.Addr(0x10000)
	checked := 0
	for step := 0; step < 200_000; step++ {
		roll := r.Intn(100)
		var class isa.Class
		taken := false
		var target isa.Addr
		switch {
		case roll < 70:
			class = isa.ALU
		case roll < 82:
			class = isa.CondBranch
			taken = r.Bool(0.4)
			target = isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
		case roll < 88:
			class = isa.Jump
			taken = true
			target = isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
		case roll < 93:
			class = isa.Call
			taken = true
			target = isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
		case roll < 97:
			class = isa.Ret
			taken = true
		default:
			class = isa.IndirectBranch
			taken = true
		}
		b.Retire(pc, class, taken, target)
		if taken {
			pc = isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
		} else {
			pc = pc.Next()
		}
		if r.Intn(50) == 0 {
			// Simulate a flush: the retire stream jumps and a
			// boundary is forced at the new point.
			pc = isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
			b.ForceBoundary(pc)
		}

		// Periodically audit a random resident entry.
		if step%64 == 0 {
			probe := isa.Addr(0x10000 + uint64(r.Intn(1<<14))*4)
			e, lvl := hier.Probe(probe)
			if lvl == Miss {
				continue
			}
			checked++
			if e.Count < 1 || e.Count > MaxInsts {
				t.Fatalf("entry %v: count %d", e.Start, e.Count)
			}
			if e.NumBranches > MaxBranches {
				t.Fatalf("entry %v: %d branches", e.Start, e.NumBranches)
			}
			prev := -1
			for i := 0; i < int(e.NumBranches); i++ {
				br := e.Branches[i]
				if int(br.Offset) >= int(e.Count) {
					t.Fatalf("entry %v: branch offset %d >= count %d", e.Start, br.Offset, e.Count)
				}
				if int(br.Offset) <= prev {
					t.Fatalf("entry %v: offsets not increasing", e.Start)
				}
				prev = int(br.Offset)
				if br.Class.IsDirect() && br.Target == 0 {
					t.Fatalf("entry %v: direct branch without target", e.Start)
				}
				if br.Class.IsIndirect() && br.Target != 0 {
					t.Fatalf("entry %v: indirect branch with stored target", e.Start)
				}
				if !br.Class.IsBranch() {
					t.Fatalf("entry %v: non-branch in slot", e.Start)
				}
			}
			if e.Term == TermUncond {
				if e.NumBranches == 0 {
					t.Fatalf("entry %v: TermUncond without branches", e.Start)
				}
				last := e.Branches[e.NumBranches-1]
				if !last.Class.IsUnconditional() {
					t.Fatalf("entry %v: TermUncond but last slot is %v", e.Start, last.Class)
				}
				if int(last.Offset) != int(e.Count)-1 {
					t.Fatalf("entry %v: terminal uncond not last instruction", e.Start)
				}
			}
		}
	}
	if checked < 500 {
		t.Fatalf("audited only %d entries; fuzz coverage too thin", checked)
	}
	if b.Installed == 0 {
		t.Fatal("no entries installed")
	}
}
