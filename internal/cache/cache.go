// Package cache models the memory hierarchy of Table II: a two-level
// instruction path (L0I 24KB/3-way/1-cycle with 2-way set interleaving,
// L1I 64KB/8-way/3-cycle), an L1D (32KB/8-way/3-cycle load-to-use), a
// unified L2 (512KB/8-way/13-cycle), a unified L3 (16MB/16-way/35-cycle)
// and 250-cycle memory, plus an advanced stride-based data prefetcher.
//
// Caches are tag-only (the simulator never needs data contents) with true
// LRU. Latencies are returned to the pipeline, which models overlap itself;
// fills are immediate (no MSHR contention model) — the front-end separately
// bounds in-flight instruction prefetches per Table II.
package cache

import "elfetch/internal/isa"

// Cache is one tag-only set-associative cache with LRU replacement.
type Cache struct {
	name      string
	sets      int
	ways      int
	lineBytes int
	shift     uint
	tags      []uint64
	valid     []bool
	age       []uint8 // 0 = MRU

	// Stats
	Accesses uint64
	Misses   uint64
}

// NewCache builds a cache of the given total size. sizeBytes/lineBytes must
// be divisible by ways.
func NewCache(name string, sizeBytes, ways, lineBytes int) *Cache {
	lines := sizeBytes / lineBytes
	sets := lines / ways
	if sets == 0 || lines%ways != 0 {
		//lint:allow panic geometry comes from compile-time config tables; an inconsistent one is a modeling bug
		panic("cache: inconsistent geometry for " + name)
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	c := &Cache{
		name: name, sets: sets, ways: ways, lineBytes: lineBytes, shift: shift,
		tags:  make([]uint64, lines),
		valid: make([]bool, lines),
		age:   make([]uint8, lines),
	}
	for i := range c.age {
		c.age[i] = uint8(i % ways)
	}
	return c
}

// Name returns the cache's label.
func (c *Cache) Name() string { return c.name }

// LineBytes returns the line size.
func (c *Cache) LineBytes() int { return c.lineBytes }

func (c *Cache) setAndTag(addr isa.Addr) (int, uint64) {
	line := uint64(addr) >> c.shift
	return int(line % uint64(c.sets)), line / uint64(c.sets)
}

// Access looks up addr, updating LRU and statistics. It does not fill.
func (c *Cache) Access(addr isa.Addr) bool {
	c.Accesses++
	s, tag := c.setAndTag(addr)
	base := s * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.touch(s, w)
			return true
		}
	}
	c.Misses++
	return false
}

// Probe looks up addr without LRU or statistics side effects.
func (c *Cache) Probe(addr isa.Addr) bool {
	s, tag := c.setAndTag(addr)
	base := s * c.ways
	for w := 0; w < c.ways; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			return true
		}
	}
	return false
}

// Fill installs the line containing addr (LRU victim), marking it MRU.
func (c *Cache) Fill(addr isa.Addr) {
	s, tag := c.setAndTag(addr)
	base := s * c.ways
	victim, worst := 0, uint8(0)
	for w := 0; w < c.ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.touch(s, w)
			return
		}
		if !c.valid[i] {
			victim, worst = w, 255
			continue
		}
		if c.age[i] >= worst && worst != 255 {
			victim, worst = w, c.age[i]
		}
	}
	i := base + victim
	c.tags[i] = tag
	c.valid[i] = true
	c.touch(s, victim)
}

func (c *Cache) touch(s, w int) {
	base := s * c.ways
	old := c.age[base+w]
	for i := 0; i < c.ways; i++ {
		if c.age[base+i] < old {
			c.age[base+i]++
		}
	}
	c.age[base+w] = 0
}

// MissRate returns Misses/Accesses.
func (c *Cache) MissRate() float64 {
	if c.Accesses == 0 {
		return 0
	}
	return float64(c.Misses) / float64(c.Accesses)
}

// Interleave returns which of the two L0I set-interleave banks the line of
// addr maps to. The fetcher can fetch across a taken branch in one cycle
// only when branch and target lines map to different banks (Section VI-A,
// [21]).
func (c *Cache) Interleave(addr isa.Addr) int {
	return int(uint64(addr) >> c.shift & 1)
}
