package cache

import (
	"testing"
	"testing/quick"

	"elfetch/internal/isa"
)

func TestAccessMissThenFillHits(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	if c.Access(0x1000) {
		t.Fatal("cold hit")
	}
	c.Fill(0x1000)
	if !c.Access(0x1000) {
		t.Fatal("miss after fill")
	}
	if !c.Access(0x1030) {
		t.Fatal("same line treated as different")
	}
	if c.MissRate() != 1.0/3 {
		t.Errorf("miss rate = %v, want 1/3", c.MissRate())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, 64B lines, 8 sets => same set every 512 bytes.
	c := NewCache("t", 1<<10, 2, 64)
	c.Fill(0x0000)
	c.Fill(0x0200)
	c.Access(0x0000) // make 0x0000 MRU
	c.Fill(0x0400)   // evicts LRU = 0x0200
	if !c.Probe(0x0000) {
		t.Error("MRU line evicted")
	}
	if c.Probe(0x0200) {
		t.Error("LRU line survived")
	}
	if !c.Probe(0x0400) {
		t.Error("filled line absent")
	}
}

func TestProbeHasNoSideEffects(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	c.Fill(0x0000)
	c.Fill(0x0200)
	// Probing 0x0000 must NOT refresh it.
	for i := 0; i < 10; i++ {
		c.Probe(0x0000)
	}
	c.Fill(0x0400) // LRU should still be 0x0000
	if c.Probe(0x0000) {
		t.Error("Probe refreshed LRU state")
	}
	if c.Accesses != 0 {
		t.Error("Probe counted as access")
	}
}

func TestFillIsIdempotentOnResidentLine(t *testing.T) {
	c := NewCache("t", 1<<10, 2, 64)
	c.Fill(0x0000)
	c.Fill(0x0200)
	c.Fill(0x0200) // refresh, not duplicate
	c.Fill(0x0400) // evicts 0x0000
	if c.Probe(0x0000) {
		t.Error("double-fill duplicated a line instead of refreshing")
	}
	if !c.Probe(0x0200) || !c.Probe(0x0400) {
		t.Error("resident lines lost")
	}
}

func TestCapacityWorksetFits(t *testing.T) {
	c := NewCache("t", 8<<10, 4, 64) // 128 lines
	f := func(seed uint8) bool {
		// Any 32-line working set must fit (128-line cache, 32 sets).
		base := isa.Addr(seed) * 64
		for i := 0; i < 32; i++ {
			c.Fill(base + isa.Addr(i*64))
		}
		for i := 0; i < 32; i++ {
			if !c.Probe(base + isa.Addr(i*64)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestInterleaveAlternatesByLine(t *testing.T) {
	c := NewCache("t", 24<<10, 3, 64)
	if c.Interleave(0x0000) == c.Interleave(0x0040) {
		t.Error("adjacent lines map to the same interleave bank")
	}
	if c.Interleave(0x0000) != c.Interleave(0x0080) {
		t.Error("lines two apart map to different banks")
	}
	if c.Interleave(0x0000) != c.Interleave(0x003C) {
		t.Error("same line, different banks")
	}
}

func TestHierarchyFetchLatencies(t *testing.T) {
	h := NewHierarchy()
	pc := isa.Addr(0x10000)
	if lat := h.FetchLatency(pc); lat != h.Lat.Mem {
		t.Errorf("cold fetch latency = %d, want %d", lat, h.Lat.Mem)
	}
	if lat := h.FetchLatency(pc); lat != h.Lat.L0I {
		t.Errorf("warm fetch latency = %d, want %d", lat, h.Lat.L0I)
	}
}

func TestHierarchyL1IBackstop(t *testing.T) {
	h := NewHierarchy()
	pc := isa.Addr(0x10000)
	h.FetchLatency(pc)
	// Evict from L0I (24KB/64B = 384 lines, 3-way, 128 sets: lines 128
	// apart collide; 3 conflicting fills evict pc's line).
	for i := 1; i <= 3; i++ {
		h.L0I.Fill(pc + isa.Addr(i*128*64))
	}
	if h.L0I.Probe(pc) {
		t.Skip("eviction pattern did not land; geometry changed")
	}
	if lat := h.FetchLatency(pc); lat != h.Lat.L1I {
		t.Errorf("L1I-resident fetch latency = %d, want %d", lat, h.Lat.L1I)
	}
}

func TestPrefetchIInstallsIntoL0I(t *testing.T) {
	h := NewHierarchy()
	pc := isa.Addr(0x20000)
	lat := h.PrefetchI(pc)
	if lat != h.Lat.Mem {
		t.Errorf("cold prefetch cost = %d, want %d", lat, h.Lat.Mem)
	}
	if got := h.FetchLatency(pc); got != h.Lat.L0I {
		t.Errorf("post-prefetch fetch latency = %d, want %d", got, h.Lat.L0I)
	}
	if again := h.PrefetchI(pc); again != 0 {
		t.Errorf("prefetch of resident line = %d, want 0", again)
	}
}

func TestDataLatencyLevels(t *testing.T) {
	h := NewHierarchy()
	a := isa.Addr(0x1000000)
	if lat := h.DataLatency(0x40, a); lat != h.Lat.Mem {
		t.Errorf("cold = %d, want %d", lat, h.Lat.Mem)
	}
	if lat := h.DataLatency(0x40, a); lat != h.Lat.L1D {
		t.Errorf("warm = %d, want %d", lat, h.Lat.L1D)
	}
}

func TestStridePrefetcherHidesStreamMisses(t *testing.T) {
	h := NewHierarchy()
	pc := isa.Addr(0x40)
	misses := 0
	const n = 200
	for i := 0; i < n; i++ {
		addr := isa.Addr(0x2000000 + i*64)
		if h.DataLatency(pc, addr) > h.Lat.L1D {
			misses++
		}
	}
	if h.DPrefetch.Issued == 0 {
		t.Fatal("stride prefetcher never fired on a pure stream")
	}
	if misses > n/3 {
		t.Errorf("stream missed %d of %d with stride prefetcher", misses, n)
	}
}

func TestStridePrefetcherIgnoresRandom(t *testing.T) {
	h := NewHierarchy()
	pc := isa.Addr(0x44)
	addrs := []isa.Addr{0x100000, 0x900040, 0x230080, 0x7777c0, 0x345000}
	for i := 0; i < 50; i++ {
		h.DataLatency(pc, addrs[i%len(addrs)]*2+isa.Addr(i*12345)&^7)
	}
	if h.DPrefetch.Issued > 10 {
		t.Errorf("prefetcher fired %d times on random traffic", h.DPrefetch.Issued)
	}
}

func TestWrongPathDataPollutes(t *testing.T) {
	h := NewHierarchy()
	// Fill a victim line, then wrong-path accesses to its set evict it.
	victim := isa.Addr(0x3000000)
	h.DataLatency(0x40, victim)
	if !h.L1D.Probe(victim) {
		t.Fatal("setup: victim not resident")
	}
	// L1D: 32KB/64B/8-way = 64 sets; same set every 4096 bytes.
	for i := 1; i <= 8; i++ {
		h.WrongPathData(victim + isa.Addr(i*4096))
	}
	if h.L1D.Probe(victim) {
		t.Error("wrong-path traffic failed to evict (pollution not modelled)")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inconsistent geometry did not panic")
		}
	}()
	NewCache("bad", 100, 3, 64)
}

func TestMSHRBoundQueuesMisses(t *testing.T) {
	h := NewHierarchy()
	h.MaxDMSHR = 2
	h.SetClock(0)
	// Three cold misses in the same cycle: the third must queue behind
	// the earliest of the first two.
	l1 := h.DataLatency(0x40, 0x9000000)
	l2 := h.DataLatency(0x44, 0x9100000)
	l3 := h.DataLatency(0x48, 0x9200000)
	if l1 != h.Lat.Mem || l2 != h.Lat.Mem {
		t.Fatalf("first misses: %d %d, want %d", l1, l2, h.Lat.Mem)
	}
	if l3 <= h.Lat.Mem {
		t.Errorf("third concurrent miss latency %d — MSHR bound not applied", l3)
	}
	if h.DMSHRQueued != 1 {
		t.Errorf("queued count = %d, want 1", h.DMSHRQueued)
	}
	// After the in-flight misses complete, new misses are unqueued.
	h.SetClock(uint64(h.Lat.Mem) * 3)
	if l := h.DataLatency(0x4c, 0x9300000); l != h.Lat.Mem {
		t.Errorf("post-drain miss latency %d, want %d", l, h.Lat.Mem)
	}
}

func TestMSHRDisabled(t *testing.T) {
	h := NewHierarchy()
	h.MaxDMSHR = 0
	h.DPrefetch = nil // keep the stride prefetcher from hiding the misses
	h.SetClock(0)
	for i := 0; i < 40; i++ {
		if l := h.DataLatency(0x40, isa.Addr(0xA000000+i*0x10000)); l != h.Lat.Mem {
			t.Fatalf("latency %d with MSHR bound disabled", l)
		}
	}
	if h.DMSHRQueued != 0 {
		t.Error("queued counter moved while disabled")
	}
}
