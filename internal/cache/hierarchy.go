package cache

import "elfetch/internal/isa"

// Latencies per Table II, in cycles.
type Latencies struct {
	L0I, L1I, L1D, L2, L3, Mem int
}

// DefaultLatencies is Table II.
func DefaultLatencies() Latencies {
	return Latencies{L0I: 1, L1I: 3, L1D: 3, L2: 13, L3: 35, Mem: 250}
}

// Hierarchy wires the Table II caches together. Inclusive fills: a miss
// serviced at an outer level fills all inner levels on the path.
type Hierarchy struct {
	L0I, L1I, L1D, L2, L3 *Cache
	Lat                   Latencies

	// DPrefetch, if non-nil, observes demand data accesses and issues
	// prefetch fills (the "Advanced Stride-based prefetch" of Table II).
	DPrefetch *StridePrefetcher

	// MaxDMSHR bounds concurrent outstanding data misses (miss-status
	// holding registers). A miss issued while all MSHRs are busy queues
	// behind the earliest completion. 0 disables the bound.
	MaxDMSHR int
	// dMSHR holds the completion times of in-flight data misses
	// relative to the caller-maintained clock (see SetClock).
	dMSHR []uint64
	now   uint64

	// DMSHRQueued counts accesses delayed by MSHR exhaustion.
	DMSHRQueued uint64
}

// SetClock advances the hierarchy's notion of time (the pipeline calls it
// once per cycle); completed MSHRs free up.
func (h *Hierarchy) SetClock(now uint64) {
	h.now = now
	kept := h.dMSHR[:0]
	for _, t := range h.dMSHR {
		if t > now {
			kept = append(kept, t)
		}
	}
	h.dMSHR = kept
}

// mshrDelay reserves an MSHR for a miss of the given latency and returns
// the extra queuing delay (0 when a register is free).
func (h *Hierarchy) mshrDelay(lat int) int {
	if h.MaxDMSHR <= 0 {
		return 0
	}
	extra := 0
	if len(h.dMSHR) >= h.MaxDMSHR {
		// Wait for the earliest in-flight miss to complete.
		earliest := h.dMSHR[0]
		for _, t := range h.dMSHR {
			if t < earliest {
				earliest = t
			}
		}
		if earliest > h.now {
			extra = int(earliest - h.now)
		}
		if extra > h.Lat.Mem {
			extra = h.Lat.Mem // sanity cap: one full memory round
		}
		// Replace the earliest (it retires as we occupy its slot).
		for i, t := range h.dMSHR {
			if t == earliest {
				h.dMSHR[i] = h.now + uint64(extra+lat)
				break
			}
		}
		h.DMSHRQueued++
		return extra
	}
	h.dMSHR = append(h.dMSHR, h.now+uint64(lat))
	return 0
}

// NewHierarchy builds the Table II configuration.
func NewHierarchy() *Hierarchy {
	h := &Hierarchy{
		L0I: NewCache("L0I", 24<<10, 3, 64),
		L1I: NewCache("L1I", 64<<10, 8, 64),
		L1D: NewCache("L1D", 32<<10, 8, 64),
		L2:  NewCache("L2", 512<<10, 8, 128),
		L3:  NewCache("L3", 16<<20, 16, 128),
		Lat: DefaultLatencies(),
	}
	h.DPrefetch = NewStridePrefetcher(h)
	h.MaxDMSHR = 16
	return h
}

// FetchLatency performs a demand instruction fetch of the line containing
// pc and returns the access latency in cycles (1 on an L0I hit).
func (h *Hierarchy) FetchLatency(pc isa.Addr) int {
	if h.L0I.Access(pc) {
		return h.Lat.L0I
	}
	if h.L1I.Access(pc) {
		h.L0I.Fill(pc)
		return h.Lat.L1I
	}
	if h.L2.Access(pc) {
		h.L1I.Fill(pc)
		h.L0I.Fill(pc)
		return h.Lat.L2
	}
	if h.L3.Access(pc) {
		h.L2.Fill(pc)
		h.L1I.Fill(pc)
		h.L0I.Fill(pc)
		return h.Lat.L3
	}
	h.L3.Fill(pc)
	h.L2.Fill(pc)
	h.L1I.Fill(pc)
	h.L0I.Fill(pc)
	return h.Lat.Mem
}

// PrefetchI prefetches the line containing pc into L1I and L0I (the
// FAQ-driven instruction prefetch of Table II) and returns the cycles the
// fill will take to arrive (0 if already resident in L0I).
func (h *Hierarchy) PrefetchI(pc isa.Addr) int {
	if h.L0I.Probe(pc) {
		return 0
	}
	var lat int
	switch {
	case h.L1I.Probe(pc):
		lat = h.Lat.L1I
	case h.L2.Probe(pc):
		lat = h.Lat.L2
	case h.L3.Probe(pc):
		lat = h.Lat.L3
	default:
		lat = h.Lat.Mem
		h.L3.Fill(pc)
	}
	h.L2.Fill(pc)
	h.L1I.Fill(pc)
	h.L0I.Fill(pc)
	return lat
}

// DataLatency performs a demand load/store access and returns the
// load-to-use latency. Demand accesses train the stride prefetcher.
func (h *Hierarchy) DataLatency(pc, addr isa.Addr) int {
	if h.DPrefetch != nil {
		h.DPrefetch.Observe(pc, addr)
	}
	return h.dataAccess(addr)
}

// WrongPathData performs a wrong-path data access: it disturbs cache state
// exactly like a demand access (pollution is the point — Section VI-B) but
// does not train the prefetcher.
func (h *Hierarchy) WrongPathData(addr isa.Addr) int {
	return h.dataAccess(addr)
}

func (h *Hierarchy) dataAccess(addr isa.Addr) int {
	if h.L1D.Access(addr) {
		return h.Lat.L1D
	}
	var lat int
	switch {
	case h.L2.Access(addr):
		h.L1D.Fill(addr)
		lat = h.Lat.L2
	case h.L3.Access(addr):
		h.L2.Fill(addr)
		h.L1D.Fill(addr)
		lat = h.Lat.L3
	default:
		h.L3.Fill(addr)
		h.L2.Fill(addr)
		h.L1D.Fill(addr)
		lat = h.Lat.Mem
	}
	return lat + h.mshrDelay(lat)
}

// StridePrefetcher is a PC-indexed stride detector: two consecutive
// accesses with the same stride from the same load PC trigger prefetches of
// the next lines into L1D/L2.
type StridePrefetcher struct {
	h      *Hierarchy
	table  [256]strideEntry
	Issued uint64
	Degree int // lines ahead to prefetch
}

type strideEntry struct {
	pc     isa.Addr
	last   isa.Addr
	stride int64
	conf   int8
}

// NewStridePrefetcher returns a prefetcher filling into h.
func NewStridePrefetcher(h *Hierarchy) *StridePrefetcher {
	return &StridePrefetcher{h: h, Degree: 2}
}

// Observe trains on a demand access and issues prefetch fills when
// confident.
func (p *StridePrefetcher) Observe(pc, addr isa.Addr) {
	e := &p.table[uint64(pc)>>2&255]
	if e.pc != pc {
		*e = strideEntry{pc: pc, last: addr}
		return
	}
	stride := int64(addr) - int64(e.last)
	e.last = addr
	if stride == 0 {
		return
	}
	if stride == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = stride
		e.conf = 0
		return
	}
	if e.conf >= 2 {
		next := addr
		for d := 0; d < p.Degree; d++ {
			next = isa.Addr(int64(next) + stride)
			if !p.h.L1D.Probe(next) {
				p.h.L2.Fill(next)
				p.h.L1D.Fill(next)
				p.Issued++
			}
		}
	}
}
