package core

import "elfetch/internal/isa"

// ConfTable is the "smarter filtering mechanism" the paper's conclusion
// calls for ("future work may investigate the use of a better conditional
// predictor and/or filtering scheme to further improve COND-ELF and
// specifically ensure that performance does not decrease", Section VII):
// a small table of 2-bit counters, indexed by branch PC, tracking whether
// coupled-mode speculation on that branch has been paying off. COND-ELF
// then speculates only on branches with a good track record, on top of the
// saturated-bimodal filter.
type ConfTable struct {
	ctrs []int8
	mask uint64
	// Allows/Blocks count filter decisions for stats.
	Allows, Blocks uint64
}

// NewConfTable returns an n-entry table (n must be a power of two).
func NewConfTable(n int) *ConfTable {
	if n&(n-1) != 0 || n == 0 {
		//lint:allow panic table sizes are compile-time constants (pipeline.NewMachine passes 512)
		panic("core: confidence table size must be a power of two")
	}
	c := make([]int8, n)
	for i := range c {
		c[i] = 2 // start mildly confident so new branches get a chance
	}
	return &ConfTable{ctrs: c, mask: uint64(n - 1)}
}

func (c *ConfTable) idx(pc isa.Addr) uint64 { return uint64(pc) >> 2 & c.mask }

// Allow reports whether speculation past the branch at pc is permitted.
func (c *ConfTable) Allow(pc isa.Addr) bool {
	ok := c.ctrs[c.idx(pc)] >= 2
	if ok {
		c.Allows++
	} else {
		c.Blocks++
	}
	return ok
}

// Train records whether a coupled-mode speculation on pc turned out
// correct. Wrong speculations reset confidence (one bad episode silences
// the branch until it re-earns trust).
func (c *ConfTable) Train(pc isa.Addr, correct bool) {
	i := c.idx(pc)
	if correct {
		if c.ctrs[i] < 3 {
			c.ctrs[i]++
		}
	} else {
		c.ctrs[i] = 0
	}
}

// StorageBits approximates the hardware budget.
func (c *ConfTable) StorageBits() int { return len(c.ctrs) * 2 }
