package core

import (
	"elfetch/internal/isa"
)

// Mode is the fetcher's PC-generation mode (Section IV-A).
type Mode uint8

const (
	// Decoupled: the FAQ drives the fetcher — the steady state.
	Decoupled Mode = iota
	// Coupled: the fetcher generates its own PCs — the transient state
	// entered after a flush or a decode-resolved BTB miss.
	Coupled
)

func (m Mode) String() string {
	if m == Coupled {
		return "coupled"
	}
	return "decoupled"
}

// ResyncAction is the per-cycle decision of the Figure 5 algorithm.
type ResyncAction uint8

const (
	// ResyncNone: DCF has not caught up; keep fetching coupled.
	ResyncNone ResyncAction = iota
	// ResyncPop: the FAQ head is fully covered by decoded coupled
	// instructions; pop it and stay coupled.
	ResyncPop
	// ResyncSwitch: switch to decoupled mode now. keepInHead says how
	// many of the head's instructions remain for decoupled fetch.
	ResyncSwitch
	// ResyncPrepare: the FAQ covers everything fetched so far; stop
	// initiating coupled fetches and let decode drain — the switch fires
	// once the decode count catches the fetch count. (The paper switches
	// one cycle earlier using a fixed-quantity in-flight adjustment,
	// Figure 5; draining instead costs at most the fetch-to-decode
	// latency and removes the in-flight-discard race.)
	ResyncPrepare
)

// Controller is the per-machine ELF state.
type Controller struct {
	// Variant is fixed at construction.
	Variant Variant
	// Pred are the coupled predictors (fields nil per variant).
	Pred CoupledPredictors
	// SatFilter gates COND-ELF speculation on counter saturation
	// (Section VI-B; the ablation bench flips it).
	SatFilter bool

	mode Mode

	// The three counts of Sections IV-B1/IV-C3, in instructions,
	// relative to the current coupled period:
	fetchCoupled  int // speculative: incremented as fetches initiate
	decodeCoupled int // non-speculative: incremented at decode
	decoupled     int // instructions covered by processed FAQ entries

	// draining: mode switched to Decoupled but coupled instructions are
	// still in flight to decode; vectors keep comparing until
	// decodeCoupled == fetchCoupled (Section IV-C3).
	draining bool

	// Divergence tracking (U-ELF family).
	CoupledVec, DecoupledVec   TrackVec
	CoupledTgts, DecoupledTgts TgtQueue

	// Stats.
	Periods           uint64 // completed coupled periods
	CoupledInstsTotal uint64 // decoded coupled insts summed over periods
	// PeriodHist buckets period lengths by powers of two: bucket i counts
	// periods of [2^i, 2^(i+1)) coupled instructions (bucket 0: 0-1).
	PeriodHist        [12]uint64
	Divergences       [4]uint64
	ResyncSwitches    uint64
	ResyncPops        uint64
	OvershootSquashes uint64
}

// NewController builds the controller for a variant.
func NewController(v Variant) *Controller {
	return &Controller{
		Variant:   v,
		Pred:      NewCoupledPredictors(v),
		SatFilter: true,
	}
}

// Mode returns the current fetch mode.
func (c *Controller) Mode() Mode { return c.mode }

// Draining reports coupled instructions still in flight after a switch.
func (c *Controller) Draining() bool { return c.draining }

// Counts exposes (fetchCoupled, decodeCoupled, decoupled) for tests and the
// Figure 5 reproduction.
func (c *Controller) Counts() (fetch, decode, decoupled int) {
	return c.fetchCoupled, c.decodeCoupled, c.decoupled
}

// EnterCoupled starts a coupled period (pipeline flush or BTB-miss
// recovery). The caller resteers the coupled fetch PC and the DCF; the
// controller resets its period-relative state. No-op for NoELF.
func (c *Controller) EnterCoupled() {
	if !c.Variant.Elastic() {
		return
	}
	c.mode = Coupled
	c.draining = false
	c.resetPeriodState()
}

func (c *Controller) resetPeriodState() {
	c.fetchCoupled, c.decodeCoupled, c.decoupled = 0, 0, 0
	c.CoupledVec.Reset()
	c.DecoupledVec.Reset()
	c.CoupledTgts.Reset()
	c.DecoupledTgts.Reset()
}

// OnCoupledFetch accounts a coupled fetch initiation of n instructions
// (the speculative "+FW" of Figure 5).
func (c *Controller) OnCoupledFetch(n int) { c.fetchCoupled += n }

// OnCoupledSquash rolls back n speculatively counted instructions
// (squashed cache accesses and decode-discarded overshoot — Figure 5's
// "-FW, -4" rollback).
func (c *Controller) OnCoupledSquash(n int) {
	c.fetchCoupled -= n
	if c.fetchCoupled < c.decodeCoupled {
		c.fetchCoupled = c.decodeCoupled
	}
}

// OnCoupledDecoded accounts n kept (non-discarded) coupled instructions
// passing decode. During draining it also completes resynchronization once
// every coupled instruction has been decoded.
func (c *Controller) OnCoupledDecoded(n int) {
	c.decodeCoupled += n
	if c.draining && c.decodeCoupled >= c.fetchCoupled {
		c.finishPeriod()
	}
}

// finishPeriod completes resynchronization: all coupled instructions have
// passed decode; counts and tracking reset (Figure 5, cycle 2).
func (c *Controller) finishPeriod() {
	c.Periods++
	c.CoupledInstsTotal += uint64(c.decodeCoupled)
	b := 0
	for v := c.decodeCoupled; v > 1 && b < len(c.PeriodHist)-1; v >>= 1 {
		b++
	}
	c.PeriodHist[b]++
	c.draining = false
	c.resetPeriodState()
}

// AvgCoupledInsts returns the average instructions fetched per coupled
// period (the Figure 8 secondary metric).
func (c *Controller) AvgCoupledInsts() float64 {
	if c.Periods == 0 {
		return 0
	}
	return float64(c.CoupledInstsTotal) / float64(c.Periods)
}

// ProcessHead runs the Figure 5 comparison for a *newly available* FAQ head
// covering `count` instructions. It must be called exactly once per head
// block, after this cycle's OnCoupledFetch/OnCoupledDecoded/OnCoupledSquash
// accounting. (The Section IV-B1 case-2b overshoot — a stalling variant
// blindly fetched past a control-flow decision — is the caller's job: when
// coupled fetch stalls at a decision, it squashes its in-flight excess via
// OnCoupledSquash, after which the count comparison below resolves the
// switch naturally.)
//
// Results:
//   - ResyncSwitch: switch to decoupled mode. keepInHead is how many of the
//     head's instructions remain for decoupled fetch (0 = consume it
//     whole; the rest are already covered by coupled fetches).
//   - ResyncPop: decode already covered the head; pop it and stay coupled.
//   - ResyncNone: DCF not caught up; stay coupled, head stays (call
//     RetryPop on later cycles).
func (c *Controller) ProcessHead(count int) (a ResyncAction, keepInHead int) {
	if c.mode != Coupled {
		return ResyncNone, 0
	}
	c.decoupled += count
	return c.evaluate(count)
}

// evaluate applies the mode-switch/pop rules against the current counts.
// headCount is the current head's contribution (already in decoupled).
func (c *Controller) evaluate(headCount int) (ResyncAction, int) {
	switch {
	case c.decoupled >= c.fetchCoupled && c.decodeCoupled >= c.fetchCoupled:
		// Everything fetched coupled has been decoded AND is covered
		// by processed FAQ entries: switch, trimming the overlap out
		// of the head.
		keep := c.decoupled - c.fetchCoupled
		if keep > headCount {
			keep = headCount
		}
		c.switchToDecoupled()
		return ResyncSwitch, keep
	case c.decoupled >= c.fetchCoupled:
		// Covered, but coupled instructions are still in flight to
		// decode: stop fetching and drain.
		return ResyncPrepare, 0
	case c.decodeCoupled >= c.decoupled:
		c.ResyncPops++
		return ResyncPop, 0
	default:
		return ResyncNone, 0
	}
}

// Reevaluate re-runs the switch/pop decision for an already-processed head
// (decode progress, squashes, or a prepare-drain may have unblocked it).
func (c *Controller) Reevaluate(headCount int) (ResyncAction, int) {
	if c.mode != Coupled {
		return ResyncNone, 0
	}
	return c.evaluate(headCount)
}

// OnCoupledStall is the case-2b hook: coupled fetch has stalled at a
// control-flow decision it cannot resolve, so every speculatively counted
// instruction beyond the decode coupled count is overshoot and is
// discarded.
func (c *Controller) OnCoupledStall() {
	if over := c.fetchCoupled - c.decodeCoupled; over > 0 {
		c.OnCoupledSquash(over)
		c.OvershootSquashes++
	}
}

func (c *Controller) switchToDecoupled() {
	c.mode = Decoupled
	c.ResyncSwitches++
	// The switch requires decodeCoupled == fetchCoupled, so the period
	// completes immediately; nothing drains.
	c.finishPeriod()
}

// SwitchAfterDivergence applies a DCF win: the pipeline has squashed every
// coupled instruction younger than the divergence (so nothing undecoded
// remains in flight) and fast-forwarded the FAQ; fetching continues
// decoupled.
func (c *Controller) SwitchAfterDivergence() {
	if c.mode == Coupled {
		c.switchToDecoupled()
	}
}

// FetcherWins applies a fetcher win (stale direct target / unconditional
// unknown to the BTB): the DCF is flushed and restarts on the fetcher's
// path at period-relative instruction index resumeIdx and taken-branch
// ordinal resumeTgt. Fetching stays coupled; the decoupled stream's
// tracking state fast-forwards so comparison resumes aligned.
func (c *Controller) FetcherWins(resumeIdx, resumeTgt int) {
	c.DecoupledVec.ResumeAt(resumeIdx)
	c.DecoupledTgts.ResumeAt(resumeTgt)
	c.CoupledVec.release(resumeIdx)
	c.CoupledTgts.release(resumeTgt)
	c.decoupled = resumeIdx
}

// --- Divergence recording (U-ELF family; Section IV-C2) ---

// TrackingEnabled reports whether this variant maintains the vectors (only
// variants that speculate past control-flow decisions need them; L-ELF
// resynchronizes by counts alone).
func (c *Controller) TrackingEnabled() bool {
	return c.Variant.canCond() || c.Variant.canRet() || c.Variant.canInd()
}

// tracking reports whether records are being accepted right now.
func (c *Controller) tracking() bool {
	return c.TrackingEnabled() && (c.mode == Coupled || c.draining)
}

// CoupledIdx returns the period-relative index the next decoded coupled
// instruction will occupy.
func (c *Controller) CoupledIdx() int { return c.CoupledVec.Next() }

// DecoupledIdx returns the period-relative index the next decoupled record
// will occupy.
func (c *Controller) DecoupledIdx() int { return c.DecoupledVec.Next() }

// RecordCoupled logs a decoded coupled instruction into the coupled
// bitvector (and target queue for taken branches). taken/target describe
// what the coupled fetcher did (its prediction). Returns false when the
// structures are full — the caller must stall coupled fetch.
func (c *Controller) RecordCoupled(class isa.Class, taken bool, target isa.Addr) bool {
	if !c.tracking() {
		return true
	}
	if !c.CoupledVec.CanAppend() {
		return false
	}
	isBr := class.IsBranch()
	if isBr && taken {
		if !c.CoupledTgts.CanAppend() {
			return false
		}
		c.CoupledTgts.Append(target, class.IsDirect(), c.CoupledVec.Next())
	}
	c.CoupledVec.Append(isBr, isBr && taken)
	return true
}

// RecordDecoupled logs one instruction of a processed FAQ block into the
// decoupled bitvector/target queue.
func (c *Controller) RecordDecoupled(class isa.Class, isBranch, taken bool, target isa.Addr) bool {
	if !c.tracking() {
		return true
	}
	if !c.DecoupledVec.CanAppend() {
		return false
	}
	if isBranch && taken {
		if !c.DecoupledTgts.CanAppend() {
			return false
		}
		c.DecoupledTgts.Append(target, class.IsDirect(), c.DecoupledVec.Next())
	}
	c.DecoupledVec.Append(isBranch, taken)
	return true
}

// CheckDivergence compares the two streams and returns the first
// divergence, if any (Section IV-C2). The caller applies the winner.
func (c *Controller) CheckDivergence() Divergence {
	if !c.tracking() {
		return Divergence{Kind: DivNone}
	}
	if d := CompareVectors(&c.CoupledVec, &c.DecoupledVec); d.Kind != DivNone {
		c.Divergences[d.Kind]++
		return d
	}
	if d := CompareTargets(&c.CoupledTgts, &c.DecoupledTgts); d.Kind != DivNone {
		c.Divergences[d.Kind]++
		return d
	}
	return Divergence{Kind: DivNone}
}

// CanRecordDecoupled reports whether a block of n instructions with t taken
// branches fits the decoupled tracking structures right now.
func (c *Controller) CanRecordDecoupled(n, t int) bool {
	if !c.tracking() {
		return true
	}
	return c.DecoupledVec.Next()-c.DecoupledVec.base+n <= TrackCap &&
		c.DecoupledTgts.Next()-c.DecoupledTgts.base+t <= TgtCap
}

// CanRecordCoupled reports whether one more decoded instruction of the
// given shape (branch/taken) fits the coupled tracking structures. When it
// does not, decode must stall — hardware stalls the fetcher on full
// bitvectors (Section IV-C2); silently skipping a record would desynchronise
// the period-relative indexing.
func (c *Controller) CanRecordCoupled(isBranch, taken bool) bool {
	if !c.tracking() {
		return true
	}
	if !c.CoupledVec.CanAppend() {
		return false
	}
	if isBranch && taken && !c.CoupledTgts.CanAppend() {
		return false
	}
	return true
}
