package core

import (
	"testing"

	"elfetch/internal/isa"
)

// TestFigure5ResyncScenario reproduces the paper's Figure 5 walk-through
// cycle by cycle: fetch width 8, decode already holding 8 instructions.
func TestFigure5ResyncScenario(t *testing.T) {
	c := NewController(UELF)
	c.EnterCoupled()
	const FW = 8

	// Pre-history: 8 instructions were fetched in a previous cycle and
	// are at decode; another 8 are in the I-cache access initiated last
	// cycle. Fetch coupled count = 16, decode coupled count = 8.
	c.OnCoupledFetch(FW) // cycle -2's access (now at decode)
	c.OnCoupledFetch(FW) // cycle -1's access (in flight)
	c.OnCoupledDecoded(8)
	if f, d, dc := c.Counts(); f != 16 || d != 8 || dc != 0 {
		t.Fatalf("pre-history counts = %d,%d,%d", f, d, dc)
	}

	// --- Cycle 0 ---
	// Decode receives 8 but the 4th is a taken branch: it keeps 4 and
	// the fetch access initiated last cycle will be squashed. Decode
	// coupled count 8 -> 12.
	c.OnCoupledDecoded(4)
	// Fetch initiates a new 8-wide access: fetch coupled count -> 24.
	c.OnCoupledFetch(FW)
	if f, d, _ := c.Counts(); f != 24 || d != 12 {
		t.Fatalf("cycle0 counts = %d,%d", f, d)
	}
	// FAQ entry A (count 12) becomes available. Next decoupled (12) <
	// next fetch coupled (24), but next decode (12) >= next decoupled
	// (12): pop.
	a, _ := c.ProcessHead(12)
	if a != ResyncPop {
		t.Fatalf("cycle0 action = %v, want pop", a)
	}

	// --- Cycle 1 ---
	// The squashed access (-8) and the taken-branch overshoot (-4) roll
	// back; a new access (+8) starts: 24-8-4+8 = 20.
	c.OnCoupledSquash(FW + 4)
	c.OnCoupledFetch(FW)
	if f, _, dc := c.Counts(); f != 20 || dc != 12 {
		t.Fatalf("cycle1 counts fetch=%d decoupled=%d", f, dc)
	}
	// FAQ entry B (count 10) arrives: next decoupled = 22 >= 20. The
	// paper switches immediately, adjusting the entry by "a fixed
	// quantity: fetch width times fetch-to-decode latency" to cover the
	// in-flight instructions (Figure 5 cycle 1). This implementation
	// instead *prepares*: coupled fetch pauses and the switch fires when
	// decode drains — at most FetchToDecode cycles later — which removes
	// the race where in-flight instructions are discarded after the
	// switch point was computed (see ResyncPrepare).
	a, _ = c.ProcessHead(10)
	if a != ResyncPrepare {
		t.Fatalf("cycle1 action = %v, want prepare", a)
	}
	if c.Mode() != Coupled {
		t.Fatal("still coupled while draining decode")
	}

	// --- Cycle 2 ---
	// Decode receives the last 8 coupled instructions: decode coupled
	// count reaches fetch coupled count -> the switch fires, the entry
	// keeps the 2 uncovered instructions, and the period completes.
	c.OnCoupledDecoded(8)
	var keep int
	a, keep = c.Reevaluate(10)
	if a != ResyncSwitch {
		t.Fatalf("cycle2 action = %v, want switch", a)
	}
	if keep != 2 {
		t.Fatalf("keep=%d, want 2", keep)
	}
	if c.Mode() != Decoupled || c.Draining() {
		t.Fatal("should be decoupled with nothing draining")
	}
	if f, d, dc := c.Counts(); f != 0 || d != 0 || dc != 0 {
		t.Fatalf("post-resync counts = %d,%d,%d, want zeros", f, d, dc)
	}
	if c.Periods != 1 || c.CoupledInstsTotal != 20 {
		t.Fatalf("period stats = %d periods, %d insts (want 1, 20)", c.Periods, c.CoupledInstsTotal)
	}
	if c.AvgCoupledInsts() != 20 {
		t.Fatalf("AvgCoupledInsts = %v", c.AvgCoupledInsts())
	}
}

func TestLELFOvershootSquash(t *testing.T) {
	// L-ELF blindly fetched 16 sequential instructions, but the FAQ head
	// says a taken branch ends the block after 10: the 6 overshot are
	// squashed and the machine switches from the next block (Section
	// IV-B1 case 2b).
	c := NewController(LELF)
	c.EnterCoupled()
	c.OnCoupledFetch(16)
	c.OnCoupledDecoded(10)
	// Decode stalls at the control decision (inst 10): the pipeline
	// discards the blind overshoot.
	c.OnCoupledStall()
	if f, _, _ := c.Counts(); f != 10 {
		t.Fatalf("fetch count after stall squash = %d, want 10", f)
	}
	a, keep := c.ProcessHead(10)
	if a != ResyncSwitch || keep != 0 {
		t.Fatalf("action=%v keep=%d, want switch,0", a, keep)
	}
	if c.OvershootSquashes != 1 {
		t.Fatalf("overshoot squashes = %d", c.OvershootSquashes)
	}
	// All kept coupled insts decoded: period closed immediately.
	if c.Draining() {
		t.Fatal("nothing left to drain")
	}
	if c.CoupledInstsTotal != 10 {
		t.Fatalf("coupled insts = %d, want 10", c.CoupledInstsTotal)
	}
}

func TestResyncPopThenSwitch(t *testing.T) {
	c := NewController(LELF)
	c.EnterCoupled()
	// 20 insts fetched & decoded; FAQ delivers blocks of 8.
	c.OnCoupledFetch(20)
	c.OnCoupledDecoded(20)
	if a, _ := c.ProcessHead(8); a != ResyncPop {
		t.Fatal("first head should pop")
	}
	if a, _ := c.ProcessHead(8); a != ResyncPop {
		t.Fatal("second head should pop")
	}
	a, keep := c.ProcessHead(16)
	if a != ResyncSwitch {
		t.Fatalf("third head action = %v, want switch", a)
	}
	// decoupled 32 vs fetched 20: 12 instructions of the head remain.
	if keep != 12 {
		t.Fatalf("keep = %d, want 12", keep)
	}
}

func TestReevaluateAfterDecodeProgress(t *testing.T) {
	c := NewController(LELF)
	c.EnterCoupled()
	c.OnCoupledFetch(16)
	c.OnCoupledDecoded(4)
	if a, _ := c.ProcessHead(8); a != ResyncNone {
		t.Fatal("head should not resolve yet")
	}
	if a, _ := c.Reevaluate(8); a != ResyncNone {
		t.Fatal("reevaluate should still say none")
	}
	c.OnCoupledDecoded(4)
	if a, _ := c.Reevaluate(8); a != ResyncPop {
		t.Fatal("reevaluate after decode progress should pop")
	}
}

func TestPrepareDrainThenSwitch(t *testing.T) {
	// The FAQ covers everything fetched, but some coupled instructions
	// are still in flight to decode: prepare (pause fetch), then switch
	// once decode catches up.
	c := NewController(LELF)
	c.EnterCoupled()
	c.OnCoupledFetch(16)
	c.OnCoupledDecoded(8)
	a, _ := c.ProcessHead(16)
	if a != ResyncPrepare {
		t.Fatalf("action = %v, want prepare (8 insts undecoded)", a)
	}
	c.OnCoupledDecoded(8)
	a, keep := c.Reevaluate(16)
	if a != ResyncSwitch || keep != 0 {
		t.Fatalf("action = %v keep=%d, want switch,0", a, keep)
	}
	if c.Draining() {
		t.Fatal("switch with drained decode must not leave draining set")
	}
	if c.Periods != 1 || c.CoupledInstsTotal != 16 {
		t.Fatalf("period stats %d/%d", c.Periods, c.CoupledInstsTotal)
	}
}

func TestEnterCoupledNoopForBaseline(t *testing.T) {
	c := NewController(NoELF)
	c.EnterCoupled()
	if c.Mode() != Decoupled {
		t.Error("NoELF must never enter coupled mode")
	}
}

func TestVariantCapabilities(t *testing.T) {
	cases := []struct {
		v              Variant
		ret, ind, cond bool
	}{
		{LELF, false, false, false},
		{RETELF, true, false, false},
		{INDELF, false, true, false},
		{CONDELF, false, false, true},
		{UELF, true, true, true},
	}
	for _, tc := range cases {
		p := NewCoupledPredictors(tc.v)
		if (p.RAS != nil) != tc.ret {
			t.Errorf("%v RAS presence = %v", tc.v, p.RAS != nil)
		}
		if (p.BTC != nil) != tc.ind {
			t.Errorf("%v BTC presence = %v", tc.v, p.BTC != nil)
		}
		if (p.Bimodal != nil) != tc.cond {
			t.Errorf("%v Bimodal presence = %v", tc.v, p.Bimodal != nil)
		}
	}
}

func TestCoupledPredictorBudgetUnder2KB(t *testing.T) {
	p := NewCoupledPredictors(UELF)
	if kb := float64(p.StorageBits()) / 8 / 1024; kb >= 2 {
		t.Errorf("U-ELF coupled predictors = %.2fKB, Table II promises < 2KB", kb)
	}
}

func TestResolveDecisions(t *testing.T) {
	v := UELF
	p := NewCoupledPredictors(v)

	// Non-branch: sequential.
	if d, _, _, _ := v.Resolve(p, isa.ALU, 0x100, 0, true); d != Sequential {
		t.Error("ALU should be sequential")
	}
	// Direct unconditional: redirect to the decoded target, even for
	// L-ELF ("not a control-flow decision").
	if d, tgt, taken, used := v.Resolve(p, isa.Jump, 0x100, 0x2000, true); d != Redirect || tgt != 0x2000 || !taken || used {
		t.Error("jump should redirect to decoded target without a predictor")
	}
	if d, _, _, _ := LELF.Resolve(NewCoupledPredictors(LELF), isa.Call, 0x100, 0x2000, true); d != Redirect {
		t.Error("L-ELF should follow direct calls")
	}
	// Return with empty coupled RAS: stall.
	if d, _, _, _ := v.Resolve(p, isa.Ret, 0x100, 0, true); d != Stall {
		t.Error("return with empty RAS should stall")
	}
	p.RAS.Push(0x3000)
	if d, tgt, _, used := v.Resolve(p, isa.Ret, 0x100, 0, true); d != Redirect || tgt != 0x3000 || !used {
		t.Error("return should pop the coupled RAS")
	}
	// Indirect: BTC miss stalls, hit redirects.
	if d, _, _, _ := v.Resolve(p, isa.IndirectBranch, 0x100, 0, true); d != Stall {
		t.Error("indirect with cold BTC should stall")
	}
	p.BTC.Update(0x100, 0x4000)
	if d, tgt, _, _ := v.Resolve(p, isa.IndirectBranch, 0x100, 0, true); d != Redirect || tgt != 0x4000 {
		t.Error("indirect with BTC hit should redirect")
	}
	// Conditional: mid-counter stalls under the saturation filter.
	if d, _, _, _ := v.Resolve(p, isa.CondBranch, 0x200, 0x5000, true); d != Stall {
		t.Error("unsaturated conditional should stall under the filter")
	}
	// ... but speculates when the filter is off.
	if d, _, _, _ := v.Resolve(p, isa.CondBranch, 0x200, 0x5000, false); d == Stall {
		t.Error("filter off: conditional should not stall")
	}
	// Saturate taken: redirect.
	for i := 0; i < 8; i++ {
		p.Bimodal.Update(0x200, true)
	}
	if d, tgt, taken, used := v.Resolve(p, isa.CondBranch, 0x200, 0x5000, true); d != Redirect || tgt != 0x5000 || !taken || !used {
		t.Error("saturated-taken conditional should redirect")
	}
	// Saturate not-taken: sequential.
	for i := 0; i < 16; i++ {
		p.Bimodal.Update(0x200, false)
	}
	if d, _, taken, _ := v.Resolve(p, isa.CondBranch, 0x200, 0x5000, true); d != Sequential || taken {
		t.Error("saturated-not-taken conditional should be sequential")
	}
	// L-ELF stalls on all of them.
	lp := NewCoupledPredictors(LELF)
	for _, cls := range []isa.Class{isa.CondBranch, isa.Ret, isa.IndirectBranch, isa.IndirectCall} {
		if d, _, _, _ := LELF.Resolve(lp, cls, 0x100, 0x2000, true); d != Stall {
			t.Errorf("L-ELF should stall on %v", cls)
		}
	}
}

func TestRecordAndDivergenceLifecycle(t *testing.T) {
	c := NewController(UELF)
	c.EnterCoupled()
	c.OnCoupledFetch(8)

	// Coupled decodes: nop, cond predicted taken to 0x100.
	if !c.RecordCoupled(isa.ALU, false, 0) {
		t.Fatal("record failed")
	}
	if !c.RecordCoupled(isa.CondBranch, true, 0x100) {
		t.Fatal("record failed")
	}
	// DCF: same nop, cond predicted NOT taken.
	c.RecordDecoupled(isa.ALU, false, false, 0)
	c.RecordDecoupled(isa.CondBranch, true, false, 0)
	div := c.CheckDivergence()
	if div.Kind != DivDirection || div.Winner != WinDCF || div.Index != 1 {
		t.Fatalf("div = %+v", div)
	}
	if c.Divergences[DivDirection] != 1 {
		t.Error("divergence not counted")
	}

	// Apply the DCF win: squash the coupled excess and switch.
	c.OnCoupledSquash(6) // 8 fetched, keep the 2 decoded
	c.SwitchAfterDivergence()
	if c.Mode() != Decoupled {
		t.Fatal("not switched")
	}
}

func TestLELFDoesNotTrack(t *testing.T) {
	c := NewController(LELF)
	c.EnterCoupled()
	if c.TrackingEnabled() {
		t.Fatal("L-ELF needs no divergence tracking")
	}
	// Records are accepted (as no-ops) and never diverge.
	c.RecordCoupled(isa.CondBranch, true, 0x100)
	c.RecordDecoupled(isa.CondBranch, true, false, 0)
	if div := c.CheckDivergence(); div.Kind != DivNone {
		t.Fatalf("L-ELF diverged: %+v", div)
	}
}

func TestFetcherWinsRealignsDecoupledStream(t *testing.T) {
	c := NewController(UELF)
	c.EnterCoupled()
	c.OnCoupledFetch(8)
	// Coupled: decoded a taken unconditional at idx 0 that the DCF
	// missed (BTB miss).
	c.RecordCoupled(isa.Jump, true, 0x4000)
	c.RecordDecoupled(isa.ALU, false, false, 0)
	div := c.CheckDivergence()
	if div.Winner != WinFetcher {
		t.Fatalf("div = %+v", div)
	}
	// Apply: DCF restarts at the jump target; decoupled stream resumes
	// at inst index 1, taken-branch ordinal 1.
	c.FetcherWins(div.InstIdx+1, 1)
	if c.Mode() != Coupled {
		t.Fatal("fetcher win must stay coupled")
	}
	// New DCF stream from 0x4000 agrees with coupled fetch.
	c.RecordCoupled(isa.ALU, false, 0)
	c.RecordDecoupled(isa.ALU, false, false, 0)
	if d := c.CheckDivergence(); d.Kind != DivNone {
		t.Fatalf("post-realign divergence: %+v", d)
	}
	_, _, dc := c.Counts()
	if dc != 1 {
		t.Errorf("decoupled count = %d, want fast-forwarded 1", dc)
	}
}

func TestVariantStrings(t *testing.T) {
	if NoELF.String() != "DCF" || UELF.String() != "U-ELF" {
		t.Error("variant names")
	}
	if len(Variants()) != 5 {
		t.Error("Variants() should list the 5 elastic variants")
	}
}

func TestParseVariantRoundTrip(t *testing.T) {
	for _, v := range append(Variants(), NoELF) {
		got, err := ParseVariant(v.String())
		if err != nil || got != v {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", v.String(), got, err, v)
		}
	}
	for in, want := range map[string]Variant{
		"uelf": UELF, "U-ELF": UELF, "condelf": CONDELF, "ret-elf": RETELF,
		"IndElf": INDELF, "lelf": LELF, "dcf": NoELF, "NoELF": NoELF, "none": NoELF,
		" u-elf ": UELF,
	} {
		got, err := ParseVariant(in)
		if err != nil || got != want {
			t.Errorf("ParseVariant(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, in := range []string{"", "xelf", "variant(?)"} {
		if _, err := ParseVariant(in); err == nil {
			t.Errorf("ParseVariant(%q) accepted", in)
		}
	}
}
