package core

import "elfetch/internal/isa"

// Divergence machinery of Section IV-C2. Both the coupled stream (decoded
// instructions) and the decoupled stream (FAQ block contents) are recorded
// against a shared, period-relative instruction index; sibling entries are
// compared as soon as both are valid. Entries are *not* circular buffers in
// hardware (valid bits guard the comparison); the simulator keeps the same
// capacity limits and exposes fullness so the pipeline can stall the faster
// side.

// TrackCap is the tracking-vector depth (Table II: 64-entry bitvectors).
const TrackCap = 64

// TgtCap is the target-queue depth (Table II: 16-entry target buffers).
const TgtCap = 16

// trackEntry is one (taken, branch, valid) record.
type trackEntry struct {
	branch bool
	taken  bool
	valid  bool
}

// TrackVec is one side's bitvector, indexed by period-relative instruction
// number.
type TrackVec struct {
	entries [TrackCap]trackEntry
	// base is the absolute index of slot 0; next the absolute index the
	// next append will get.
	base, next int
}

// Reset empties the vector (period start).
func (v *TrackVec) Reset() {
	*v = TrackVec{}
}

// Next returns the absolute index the next append will use.
func (v *TrackVec) Next() int { return v.next }

// ResumeAt empties the vector and restarts indexing at absolute index i
// (fetcher-win recovery).
func (v *TrackVec) ResumeAt(i int) {
	for j := range v.entries {
		v.entries[j].valid = false
	}
	v.base, v.next = i, i
}

// CanAppend reports whether there is room for another entry.
func (v *TrackVec) CanAppend() bool { return v.next-v.base < TrackCap }

// Append records one instruction.
func (v *TrackVec) Append(branch, taken bool) {
	if !v.CanAppend() {
		//lint:allow panic capacity invariant: every call site checks CanAppend first
		panic("core: tracking vector overflow")
	}
	v.entries[v.next%TrackCap] = trackEntry{branch: branch, taken: taken, valid: true}
	v.next++
}

// get returns the entry at absolute index i, if valid and in window.
func (v *TrackVec) get(i int) (trackEntry, bool) {
	if i < v.base || i >= v.next {
		return trackEntry{}, false
	}
	e := v.entries[i%TrackCap]
	return e, e.valid
}

// release invalidates all entries below absolute index i.
func (v *TrackVec) release(i int) {
	for ; v.base < i && v.base < v.next; v.base++ {
		v.entries[v.base%TrackCap].valid = false
	}
	if v.base < i {
		v.base = i
		if v.next < v.base {
			v.next = v.base
		}
	}
}

// DivergeKind classifies a detected divergence; the winner rules differ.
type DivergeKind uint8

const (
	// DivNone: streams agree so far.
	DivNone DivergeKind = iota
	// DivDirection: the taken bits disagree (conditional predicted
	// differently, or one side saw a taken branch the other missed).
	// Winner: the DCF — unless the coupled side's branch is a decoded
	// unconditional the DCF did not know about (BTB miss case 1 of
	// Section IV-C2), where the fetcher wins.
	DivDirection
	// DivDirectTarget: a taken direct branch's targets disagree (stale
	// BTB). Winner: the fetcher, which holds the decoded target.
	DivDirectTarget
	// DivIndirectTarget: an indirect branch's predicted targets disagree.
	// Winner: the DCF (its ITTAGE outranks the coupled BTC).
	DivIndirectTarget
)

func (k DivergeKind) String() string {
	switch k {
	case DivNone:
		return "none"
	case DivDirection:
		return "direction"
	case DivDirectTarget:
		return "direct-target"
	case DivIndirectTarget:
		return "indirect-target"
	default:
		return "?"
	}
}

// Winner says which stream survives a divergence.
type Winner uint8

const (
	// WinNone: no divergence.
	WinNone Winner = iota
	// WinDCF: flush coupled instructions past the divergence point and
	// continue decoupled.
	WinDCF
	// WinFetcher: flush the DCF (clear FAQ, resteer BP1) and continue
	// coupled.
	WinFetcher
)

// tgtEntry is one target-queue record.
type tgtEntry struct {
	target isa.Addr
	direct bool
	valid  bool
	// instIdx is the period-relative instruction index of the branch, so
	// target divergences can be mapped back to a bitvector position.
	instIdx int
}

// TgtQueue is one side's target queue.
type TgtQueue struct {
	entries    [TgtCap]tgtEntry
	base, next int
}

// Reset empties the queue.
func (q *TgtQueue) Reset() { *q = TgtQueue{} }

// CanAppend reports whether there is room.
func (q *TgtQueue) CanAppend() bool { return q.next-q.base < TgtCap }

// Append records a taken branch's target; direct says the branch type is
// direct (decoded targets win) vs indirect (predictor targets — DCF wins).
// instIdx is the branch's period-relative instruction index.
func (q *TgtQueue) Append(target isa.Addr, direct bool, instIdx int) {
	if !q.CanAppend() {
		//lint:allow panic capacity invariant: every call site checks CanAppend first
		panic("core: target queue overflow")
	}
	q.entries[q.next%TgtCap] = tgtEntry{target: target, direct: direct, valid: true, instIdx: instIdx}
	q.next++
}

// Next returns the taken-branch ordinal the next append will use.
func (q *TgtQueue) Next() int { return q.next }

// ResumeAt empties the queue and restarts indexing at ordinal i (fetcher-
// win recovery: the DCF stream restarts mid-period).
func (q *TgtQueue) ResumeAt(i int) {
	for j := range q.entries {
		q.entries[j].valid = false
	}
	q.base, q.next = i, i
}

func (q *TgtQueue) get(i int) (tgtEntry, bool) {
	if i < q.base || i >= q.next {
		return tgtEntry{}, false
	}
	e := q.entries[i%TgtCap]
	return e, e.valid
}

func (q *TgtQueue) release(i int) {
	for ; q.base < i && q.base < q.next; q.base++ {
		q.entries[q.base%TgtCap].valid = false
	}
	if q.base < i {
		q.base = i
		if q.next < q.base {
			q.next = q.base
		}
	}
}

// Divergence is the result of a comparison pass.
type Divergence struct {
	Kind DivergeKind
	// Index is the period-relative instruction index of the diverging
	// entry (bitvector divergences) or the taken-branch ordinal (target
	// divergences).
	Index int
	// InstIdx is the period-relative instruction index of the diverging
	// branch for target divergences (equals Index for bitvector ones).
	InstIdx int
	// Winner per the arbitration rules.
	Winner Winner
	// Target is the winning target for target divergences.
	Target isa.Addr
}

// CompareVectors checks sibling bitvector entries that both sides have
// filled and reports the first divergence. Matching prefixes are released.
//
// Mismatch semantics: a taken-bit mismatch always diverges. A branch-bit
// mismatch alone diverges only when the branch side also says taken —
// a not-taken conditional invisible to the BTB is *expected* to look like a
// non-branch to the DCF (never-observed-taken branches occupy no BTB slot,
// Section III-A) and must not trigger recovery.
func CompareVectors(coupled, decoupled *TrackVec) Divergence {
	i := maxInt(coupled.base, decoupled.base)
	for {
		c, okC := coupled.get(i)
		d, okD := decoupled.get(i)
		if !okC || !okD {
			break
		}
		if c.taken != d.taken {
			w := WinDCF
			if c.taken && c.branch && !d.branch {
				// The fetcher decoded a taken branch at an
				// instruction the DCF thought was a non-branch:
				// BTB miss/stale — trust the fetcher.
				w = WinFetcher
			}
			if d.taken && !c.branch {
				// Type mismatch: the DCF claims a taken branch at
				// an instruction decode knows is not a branch. The
				// paper trusts the DCF here because its framework
				// allows self-modifying code (stale I-cache bytes);
				// our workloads never modify code, so the decoded
				// type is ground truth and the DCF's (misaligned or
				// stale) stream must be flushed.
				w = WinFetcher
			}
			return Divergence{Kind: DivDirection, Index: i, InstIdx: i, Winner: w}
		}
		if c.branch != d.branch && (c.taken || d.taken) {
			w := WinDCF
			if d.taken && !c.branch {
				w = WinFetcher // type mismatch, as above
			}
			return Divergence{Kind: DivDirection, Index: i, InstIdx: i, Winner: w}
		}
		i++
		coupled.release(i)
		decoupled.release(i)
	}
	return Divergence{Kind: DivNone}
}

// CompareTargets checks sibling target-queue entries and reports the first
// divergence. The branch type decides the winner: direct → fetcher (it has
// the decoded target), indirect → DCF (Section IV-C2).
func CompareTargets(coupled, decoupled *TgtQueue) Divergence {
	i := maxInt(coupled.base, decoupled.base)
	for {
		c, okC := coupled.get(i)
		d, okD := decoupled.get(i)
		if !okC || !okD {
			break
		}
		if c.target != d.target {
			if c.direct {
				return Divergence{Kind: DivDirectTarget, Index: i, InstIdx: c.instIdx, Winner: WinFetcher, Target: c.target}
			}
			return Divergence{Kind: DivIndirectTarget, Index: i, InstIdx: c.instIdx, Winner: WinDCF, Target: d.target}
		}
		i++
		coupled.release(i)
		decoupled.release(i)
	}
	return Divergence{Kind: DivNone}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// IntentAt returns the (branch, taken) bits recorded at absolute index i,
// if present — used by divergence recovery to learn the winning side's
// intent.
func (v *TrackVec) IntentAt(i int) (branch, taken, ok bool) {
	e, ok := v.get(i)
	return e.branch, e.taken, ok
}

// TargetAt returns the recorded target of the taken branch at
// period-relative instruction index instIdx, if present.
func (q *TgtQueue) TargetAt(instIdx int) (isa.Addr, bool) {
	for i := q.base; i < q.next; i++ {
		e, ok := q.get(i)
		if ok && e.instIdx == instIdx {
			return e.target, true
		}
	}
	return 0, false
}
