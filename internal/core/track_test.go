package core

import (
	"testing"

	"elfetch/internal/isa"
)

func TestCompareVectorsAgreement(t *testing.T) {
	var c, d TrackVec
	// Identical streams: nop, taken branch, nop.
	for _, v := range []struct{ br, tk bool }{{false, false}, {true, true}, {false, false}} {
		c.Append(v.br, v.tk)
		d.Append(v.br, v.tk)
	}
	if div := CompareVectors(&c, &d); div.Kind != DivNone {
		t.Fatalf("divergence on identical streams: %+v", div)
	}
	// Matching prefix released: both sides should have space again.
	for i := 0; i < TrackCap; i++ {
		if !c.CanAppend() {
			t.Fatal("release did not free space")
		}
		c.Append(false, false)
		d.Append(false, false)
		CompareVectors(&c, &d)
	}
}

func TestCompareVectorsDirectionDivergenceDCFWins(t *testing.T) {
	var c, d TrackVec
	// Both see a conditional at index 1; coupled predicted taken, DCF
	// (longer predictor) predicted not-taken.
	c.Append(false, false)
	d.Append(false, false)
	c.Append(true, true)
	d.Append(true, false)
	div := CompareVectors(&c, &d)
	if div.Kind != DivDirection || div.Index != 1 {
		t.Fatalf("div = %+v", div)
	}
	if div.Winner != WinDCF {
		t.Errorf("winner = %v, want WinDCF (cond direction: trust the DCF)", div.Winner)
	}
}

func TestCompareVectorsUncondUnknownToBTBFetcherWins(t *testing.T) {
	var c, d TrackVec
	// BTB miss case: DCF believes the stream is sequential (branch=0),
	// the fetcher decoded a taken unconditional (branch=1, taken=1) —
	// Section IV-C2 exception 1.
	c.Append(true, true)
	d.Append(false, false)
	div := CompareVectors(&c, &d)
	if div.Kind != DivDirection || div.Winner != WinFetcher {
		t.Fatalf("div = %+v, want fetcher win", div)
	}
}

func TestCompareVectorsInvisibleNotTakenCondIsNoDivergence(t *testing.T) {
	var c, d TrackVec
	// The fetcher decoded a conditional that was never observed taken:
	// branch=1 taken=0 on the coupled side, branch=0 on the DCF side.
	// Both continue sequentially — must NOT diverge.
	c.Append(true, false)
	d.Append(false, false)
	if div := CompareVectors(&c, &d); div.Kind != DivNone {
		t.Fatalf("spurious divergence: %+v", div)
	}
}

func TestCompareVectorsStaleBranchBitDiverges(t *testing.T) {
	var c, d TrackVec
	// Type mismatch: DCF says taken branch, decode says the instruction
	// is not a branch. The paper's SMC framework trusts the DCF; without
	// self-modifying code the decoded type is ground truth, so the
	// fetcher wins (see CompareVectors).
	c.Append(false, false)
	d.Append(true, true)
	div := CompareVectors(&c, &d)
	if div.Kind != DivDirection || div.Winner != WinFetcher {
		t.Fatalf("div = %+v", div)
	}
}

func TestCompareTargetsDirectFetcherWins(t *testing.T) {
	var c, d TgtQueue
	c.Append(0x100, true, 5)
	d.Append(0x200, true, 5)
	div := CompareTargets(&c, &d)
	if div.Kind != DivDirectTarget || div.Winner != WinFetcher || div.Target != 0x100 {
		t.Fatalf("div = %+v", div)
	}
	if div.InstIdx != 5 {
		t.Errorf("InstIdx = %d, want 5", div.InstIdx)
	}
}

func TestCompareTargetsIndirectDCFWins(t *testing.T) {
	var c, d TgtQueue
	c.Append(0x100, false, 7)
	d.Append(0x200, false, 7)
	div := CompareTargets(&c, &d)
	if div.Kind != DivIndirectTarget || div.Winner != WinDCF || div.Target != 0x200 {
		t.Fatalf("div = %+v", div)
	}
}

func TestCompareTargetsAgreementReleases(t *testing.T) {
	var c, d TgtQueue
	for i := 0; i < TgtCap*3; i++ {
		if !c.CanAppend() {
			t.Fatal("target queue filled despite releases")
		}
		c.Append(isa.Addr(0x100+i), true, i)
		d.Append(isa.Addr(0x100+i), true, i)
		if div := CompareTargets(&c, &d); div.Kind != DivNone {
			t.Fatalf("spurious divergence at %d: %+v", i, div)
		}
	}
}

func TestTrackVecOverflowPanics(t *testing.T) {
	var v TrackVec
	for i := 0; i < TrackCap; i++ {
		v.Append(false, false)
	}
	if v.CanAppend() {
		t.Fatal("CanAppend true at capacity")
	}
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	v.Append(false, false)
}

func TestResumeAtRealignsComparison(t *testing.T) {
	var c, d TrackVec
	c.Append(false, false)
	c.Append(true, true) // idx 1: fetcher-won divergence happened here
	d.Append(false, false)
	d.Append(false, false)
	// Fetcher won: DCF restarts; decoupled side resumes at index 2.
	d.ResumeAt(2)
	c.release(2)
	c.Append(false, false) // idx 2 on coupled side
	d.Append(false, false) // idx 2 on new DCF stream
	if div := CompareVectors(&c, &d); div.Kind != DivNone {
		t.Fatalf("post-resume comparison diverged: %+v", div)
	}
}
