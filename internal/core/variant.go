// Package core implements ELastic Fetching (Section IV) — the paper's
// contribution. After any pipeline flush (or decode-resolved BTB miss) the
// machine enters Coupled mode: the fetcher probes the I-cache immediately
// with the known-correct PC while the decoupled engine restarts from BP1.
// The Controller owns everything that makes that safe:
//
//   - the Coupled/Decoupled mode state machine and the three instruction
//     counts (speculative fetch coupled count, non-speculative decode
//     coupled count, decoupled count) whose comparison drives
//     resynchronization (Section IV-B1, Figure 5);
//   - the coupled predictors of the U-ELF family (2K-entry bimodal,
//     32-entry RAS, 64-entry branch target cache — Table II) and the
//     decode-time control decisions they allow;
//   - the divergence-detection machinery of Section IV-C2: two 64-entry
//     (taken, branch, valid) tracking vectors and two 16-entry target
//     queues, compared entry-wise, with the paper's winner arbitration
//     (trust the DCF, except that the fetcher's decoded *direct* targets
//     always win).
package core

import (
	"fmt"
	"strings"

	"elfetch/internal/bpred"
	"elfetch/internal/isa"
)

// Variant selects which control-flow decisions coupled mode may speculate
// past (Section IV-C1).
type Variant uint8

const (
	// NoELF is the baseline decoupled fetcher: no coupled mode at all.
	NoELF Variant = iota
	// LELF fetches only sequential instructions in coupled mode (may
	// cross unconditional direct branches), stalling at any control-flow
	// decision.
	LELF
	// RETELF adds a 32-entry coupled RAS: returns are predictable.
	RETELF
	// INDELF adds a 64-entry coupled branch target cache: non-return
	// indirect branches are predictable when they hit the BTC.
	INDELF
	// CONDELF adds a 2K-entry 3-bit bimodal: conditionals are
	// predictable when the counter is saturated.
	CONDELF
	// UELF combines RET-, IND- and COND-ELF.
	UELF
)

var variantNames = map[Variant]string{
	NoELF: "DCF", LELF: "L-ELF", RETELF: "RET-ELF",
	INDELF: "IND-ELF", CONDELF: "COND-ELF", UELF: "U-ELF",
}

func (v Variant) String() string {
	if s, ok := variantNames[v]; ok {
		return s
	}
	return "variant(?)"
}

// ParseVariant parses a variant name. It round-trips with String() —
// ParseVariant(v.String()) == v for every variant — and is forgiving about
// case and dashes, so "uelf", "U-ELF" and "UElf" all name UELF. The NoELF
// baseline parses from "DCF", "NoELF" or "none".
func ParseVariant(s string) (Variant, error) {
	key := strings.ToLower(strings.ReplaceAll(strings.TrimSpace(s), "-", ""))
	switch key {
	case "noelf", "none":
		return NoELF, nil
	}
	for v, name := range variantNames {
		if strings.ToLower(strings.ReplaceAll(name, "-", "")) == key {
			return v, nil
		}
	}
	return NoELF, fmt.Errorf("core: unknown variant %q (want DCF, L-ELF, RET-ELF, IND-ELF, COND-ELF or U-ELF)", s)
}

// Variants lists all ELF variants (excluding the NoELF baseline).
func Variants() []Variant { return []Variant{LELF, RETELF, INDELF, CONDELF, UELF} }

// canRet reports whether coupled mode predicts returns.
func (v Variant) canRet() bool { return v == RETELF || v == UELF }

// canInd reports whether coupled mode predicts non-return indirects.
func (v Variant) canInd() bool { return v == INDELF || v == UELF }

// canCond reports whether coupled mode predicts conditionals.
func (v Variant) canCond() bool { return v == CONDELF || v == UELF }

// Elastic reports whether the variant has a coupled mode at all.
func (v Variant) Elastic() bool { return v != NoELF }

// Decision is a decode-time control resolution in coupled mode.
type Decision uint8

const (
	// Sequential: not a control-flow decision (non-branch, or a
	// conditional confidently predicted not-taken); keep fetching.
	Sequential Decision = iota
	// Redirect: fetch continues at Decision target next cycle.
	Redirect
	// Stall: coupled mode cannot resolve this instruction; fetch stalls
	// until the DCF catches up (or a divergence/flush intervenes).
	Stall
)

func (d Decision) String() string {
	switch d {
	case Sequential:
		return "sequential"
	case Redirect:
		return "redirect"
	default:
		return "stall"
	}
}

// CoupledPredictors bundles the fetcher-owned structures of Table II
// (total storage < 2KB). Nil fields are absent per variant. Conf is the
// optional speculation-confidence filter extension (see ConfTable) and is
// attached by the pipeline when enabled.
type CoupledPredictors struct {
	Bimodal *bpred.Bimodal
	RAS     *bpred.RAS
	BTC     *bpred.BTC
	Conf    *ConfTable
}

// NewCoupledPredictors builds the predictor set a variant needs.
func NewCoupledPredictors(v Variant) CoupledPredictors {
	var p CoupledPredictors
	if v.canCond() {
		p.Bimodal = bpred.NewBimodal(2048)
	}
	if v.canRet() || v == UELF {
		p.RAS = bpred.NewRAS(32)
	}
	if v.canInd() {
		p.BTC = bpred.NewBTC(64)
	}
	return p
}

// StorageBits totals the coupled-predictor budget (Table II: < 2KB).
func (p CoupledPredictors) StorageBits() int {
	bits := 0
	if p.Bimodal != nil {
		bits += p.Bimodal.StorageBits()
	}
	if p.RAS != nil {
		bits += p.RAS.StorageBits()
	}
	if p.BTC != nil {
		bits += p.BTC.StorageBits()
	}
	if p.Conf != nil {
		bits += p.Conf.StorageBits()
	}
	return bits
}

// Resolve makes the coupled-mode decode decision for the instruction at pc.
// decodedTarget is the target recoverable from the instruction word (direct
// branches only). usedPred is set when a coupled predictor supplied the
// decision (the Section IV-D3 update policy keys on it).
func (v Variant) Resolve(p CoupledPredictors, class isa.Class, pc isa.Addr,
	decodedTarget isa.Addr, satFilter bool) (d Decision, target isa.Addr, predTaken, usedPred bool) {

	switch {
	case !class.IsBranch():
		return Sequential, 0, false, false

	case class == isa.Jump || class == isa.Call:
		// Following an unconditional direct branch is not a
		// control-flow decision (Section IV-B): the decoded target is
		// exact. All variants, including L-ELF.
		return Redirect, decodedTarget, true, false

	case class.IsReturn():
		if v.canRet() && p.RAS != nil {
			if ra, ok := p.RAS.Pop(); ok {
				return Redirect, ra, true, true
			}
		}
		return Stall, 0, true, false

	case class.IsIndirect():
		if v.canInd() && p.BTC != nil {
			if tgt, ok := p.BTC.Predict(pc); ok {
				return Redirect, tgt, true, true
			}
		}
		return Stall, 0, true, false

	default: // conditional
		if v.canCond() && p.Bimodal != nil {
			taken, confident := p.Bimodal.Predict(pc)
			allowed := confident || !satFilter
			if allowed && p.Conf != nil {
				allowed = p.Conf.Allow(pc)
			}
			if allowed {
				if taken {
					return Redirect, decodedTarget, true, true
				}
				return Sequential, 0, false, true
			}
		}
		return Stall, 0, false, false
	}
}
