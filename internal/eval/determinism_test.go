package eval

import (
	"context"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// TestRunOneDeterministic is the runtime twin of elflint's static
// determinism check: two RunOne invocations of the same Params must
// produce identical stat tables, bit for bit. The paper's L-ELF/U-ELF
// deltas (and elfd's content-addressed result cache) are only meaningful
// if replays are exact.
func TestRunOneDeterministic(t *testing.T) {
	entries := workload.All()
	if len(entries) == 0 {
		t.Fatal("empty workload registry")
	}
	e := entries[0]
	p := Params{Warmup: 20_000, Measure: 100_000}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{
		base,
		base.NoDCF(),
		base.WithVariant(core.LELF),
		base.WithVariant(core.UELF),
	}
	for _, cfg := range cfgs {
		cfg := cfg
		t.Run(cfg.Name(), func(t *testing.T) {
			t.Parallel()
			first, err := RunOne(context.Background(), e, cfg, p)
			if err != nil {
				t.Fatalf("first run: %v", err)
			}
			second, err := RunOne(context.Background(), e, cfg, p)
			if err != nil {
				t.Fatalf("second run: %v", err)
			}
			if first != second {
				t.Errorf("replay diverged for %s on %s:\n first: %+v\nsecond: %+v",
					cfg.Name(), e.Name, first, second)
			}
		})
	}
}

// TestRunOneDeterministicWithProbe re-runs one config with a probe
// attached and requires the architectural results to match the unprobed
// run exactly — the contract the probegate lint check protects.
func TestRunOneDeterministicWithProbe(t *testing.T) {
	entries := workload.All()
	if len(entries) == 0 {
		t.Fatal("empty workload registry")
	}
	e := entries[0]
	cfg := pipeline.DefaultConfig()
	plain := Params{Warmup: 20_000, Measure: 100_000}
	probed := plain
	probed.Probe = NewProbe(obs.NewRegistry())

	bare, err := RunOne(context.Background(), e, cfg, plain)
	if err != nil {
		t.Fatalf("unprobed run: %v", err)
	}
	obs, err := RunOne(context.Background(), e, cfg, probed)
	if err != nil {
		t.Fatalf("probed run: %v", err)
	}
	if bare != obs {
		t.Errorf("probe attachment perturbed the run:\nunprobed: %+v\n  probed: %+v", bare, obs)
	}
}
