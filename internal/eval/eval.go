// Package eval regenerates the paper's evaluation section: the per-figure
// experiment runners and table formatters behind cmd/elfbench, cmd/elfd and
// the root-level benchmarks (DESIGN.md §4 maps each figure to its runner).
//
// Every runner takes a context.Context and returns an error: cancelling the
// context aborts in-flight simulations within a few thousand simulated
// cycles (pipeline.Machine.RunContext's poll interval), which is what lets
// the elfd server cancel jobs when clients abort.
package eval

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"sync"

	"elfetch/internal/btb"
	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/report"
	"elfetch/internal/uop"
	"elfetch/internal/workload"
)

// Params controls run lengths. The paper uses 100M-instruction SimPoints;
// the defaults here are laptop-scale and configurable from the CLI/server.
type Params struct {
	// Warmup instructions before counters reset.
	Warmup uint64
	// Measure instructions counted after warmup.
	Measure uint64
	// Parallel workers (0 = GOMAXPROCS).
	Parallel int
	// Probe, when non-nil, is attached to every machine after warmup so
	// measurement-window latency/occupancy distributions land in its
	// observers (see NewProbe for the registry-backed construction). It is
	// deliberately invisible to JSON so cache keys derived from Params are
	// unaffected. Observers must be safe for concurrent use when runs are
	// parallel (obs histograms are).
	Probe *pipeline.Probe `json:"-"`
	// Runner, when non-nil, dispatches matrix cells through an execution
	// backend (see internal/exec: Local wraps a scheduler worker pool and
	// result cache, Fleet shards cells across remote elfd workers)
	// instead of the in-process pool. Like Probe it is invisible to JSON
	// so cache keys derived from Params are unaffected. Runner-dispatched
	// grids address workloads by name, so every entry must be registered.
	Runner CellRunner `json:"-"`
}

// DefaultParams is a laptop-scale default.
func DefaultParams() Params {
	return Params{Warmup: 200_000, Measure: 800_000}
}

// MaxRunInsts bounds warmup+measure per run. It exists so a remote caller
// cannot tie up an elfd worker for hours with one request; raise it if you
// really are reproducing 100M-instruction SimPoints.
const MaxRunInsts = 1_000_000_000

// Validate rejects parameter sets no runner can honour.
func (p Params) Validate() error {
	if p.Measure == 0 {
		return fmt.Errorf("eval: Measure must be positive")
	}
	if p.Warmup+p.Measure > MaxRunInsts {
		return fmt.Errorf("eval: Warmup+Measure %d exceeds the %d-instruction budget",
			p.Warmup+p.Measure, uint64(MaxRunInsts))
	}
	if p.Parallel < 0 {
		return fmt.Errorf("eval: negative Parallel")
	}
	return nil
}

// workers resolves the worker count.
func (p Params) workers() int {
	if p.Parallel <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return p.Parallel
}

// Result is one (workload, configuration) measurement.
type Result struct {
	Workload string `json:"workload"`
	Suite    string `json:"suite"`
	Config   string `json:"config"`

	IPC        float64    `json:"ipc"`
	MPKI       float64    `json:"mpki"`
	AvgCoupled float64    `json:"avgCoupled"` // avg insts per coupled period (Figure 8)
	BTBHit     [3]float64 `json:"btbHit"`
	L1IMiss    float64    `json:"l1iMiss"`
	RAWFlushes uint64     `json:"rawFlushes"`
	Resteers   uint64     `json:"resteers"`
	WrongPath  uint64     `json:"wrongPath"`
	Prefetches uint64     `json:"prefetches"`
	Committed  uint64     `json:"committed"`
	Cycles     uint64     `json:"cycles"`
}

// RunOne measures one workload under one configuration. It returns early
// with ctx.Err() when the context is cancelled mid-run.
func RunOne(ctx context.Context, e *workload.Entry, cfg pipeline.Config, p Params) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	m, err := pipeline.New(cfg, e.Program())
	if err != nil {
		return Result{}, err
	}
	if p.Warmup > 0 {
		if _, err := m.RunContext(ctx, p.Warmup); err != nil {
			return Result{}, err
		}
		m.ResetStats()
	}
	if p.Probe != nil {
		m.AttachProbe(p.Probe)
	}
	st, err := m.RunContext(ctx, p.Measure)
	if err != nil {
		return Result{}, err
	}
	return resultFrom(e, cfg, m, st), nil
}

// resultFrom assembles a Result from a finished measurement run.
func resultFrom(e *workload.Entry, cfg pipeline.Config, m *pipeline.Machine, st *pipeline.Stats) Result {
	bs := m.BTBStats()
	r := Result{
		Workload:   e.Name,
		Suite:      e.Suite,
		Config:     cfg.Name(),
		IPC:        st.IPC(),
		MPKI:       st.BranchMPKI(),
		AvgCoupled: m.ELF().AvgCoupledInsts(),
		L1IMiss:    m.Hierarchy().L1I.MissRate(),
		RAWFlushes: st.Flushes[uop.FlushMemOrder],
		Resteers:   st.DecodeResteers,
		WrongPath:  st.WrongPathFetched,
		Prefetches: st.PrefetchIssued,
		Committed:  st.Committed,
		Cycles:     st.Cycles,
	}
	for l := btb.L0; l <= btb.L2; l++ {
		r.BTBHit[l] = bs.HitRate(l)
	}
	return r
}

// job identifies one matrix cell and its slot in the ordered output.
type job struct {
	idx   int
	entry *workload.Entry
	cell  Cell
}

// MatrixResults evaluates the cross product of workloads × configs and
// returns an ordered result set (workloads outer, configs inner — the
// order given). Cells run on the in-process pool (p.workers() wide), or
// are dispatched through p.Runner when set.
//
// Partial-results contract: a cell failure cancels the cells still
// running, but every cell that already completed is returned alongside a
// joined error naming each failed cell; when the caller's context is
// cancelled mid-grid, the completed prefix is returned with ctx.Err()
// folded into the joined error. Callers that only care about
// success can keep treating a non-nil error as fatal; callers that want
// completed work (elfd's figure cache, long fleet runs) can consume the
// partial Results.
func MatrixResults(ctx context.Context, entries []*workload.Entry, cfgs []pipeline.Config, p Params) (Results, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	n := len(entries) * len(cfgs)
	var (
		jobs    = make(chan job)
		results = make([]Result, n)
		cellErr = make([]error, n)
		done    = make([]bool, n)
		wg      sync.WaitGroup
	)
	for w := 0; w < p.workers(); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs { // keep draining after cancel so the feeder never blocks
				var r Result
				var err error
				if p.Runner != nil {
					r, err = p.Runner.Run(ctx, j.cell)
				} else {
					r, err = RunOne(ctx, j.entry, j.cell.Config, p)
				}
				if err != nil {
					cellErr[j.idx] = err
					cancel()
					continue
				}
				results[j.idx] = r
				done[j.idx] = true
			}
		}()
	}
	idx := 0
	cells := make([]Cell, 0, n)
	for _, e := range entries {
		for _, c := range cfgs {
			cell := Cell{Workload: e.Name, Config: c, Warmup: p.Warmup, Measure: p.Measure}
			cells = append(cells, cell)
			jobs <- job{idx, e, cell}
			idx++
		}
	}
	close(jobs)
	wg.Wait()

	out := make(Results, 0, n)
	var errs []error
	for i, cell := range cells {
		switch {
		case done[i]:
			out = append(out, CellResult{Cell: cell, Result: results[i]})
		case cellErr[i] != nil && !errors.Is(cellErr[i], context.Canceled):
			errs = append(errs, fmt.Errorf("cell %s/%s: %w", cell.Workload, cell.Config.Name(), cellErr[i]))
		}
	}
	if err := parent.Err(); err != nil {
		errs = append(errs, err)
	}
	if len(errs) == 0 && len(out) < n {
		// Cells were cancelled by a sibling's abort without a reportable
		// cause of their own; never let an incomplete grid look complete.
		errs = append(errs, context.Canceled)
	}
	return out, errors.Join(errs...)
}

// Matrix evaluates the cross product of workloads × configs in parallel
// and returns results indexed [workload][config name] — the map form of
// MatrixResults, which see for the dispatch and partial-results contract.
// On error the completed cells are still returned (nil only when nothing
// completed), so cancelled grids no longer discard finished work.
func Matrix(ctx context.Context, entries []*workload.Entry, cfgs []pipeline.Config, p Params) (map[string]map[string]Result, error) {
	rs, err := MatrixResults(ctx, entries, cfgs, p)
	if len(rs) == 0 && err != nil {
		return nil, err
	}
	return rs.Map(), err
}

func figureEntries() ([]*workload.Entry, error) {
	var out []*workload.Entry
	for _, name := range workload.FigureSet() {
		e, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

// Figure6Table builds "Performance of No Decoupled Fetcher (NoDCF)
// relative to baseline DCF", with branch MPKI on the secondary axis.
func Figure6Table(ctx context.Context, p Params) (*report.Table, Results, error) {
	entries, err := figureEntries()
	if err != nil {
		return nil, nil, err
	}
	base := pipeline.DefaultConfig()
	res, err := MatrixResults(ctx, entries, []pipeline.Config{base, base.NoDCF()}, p)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 6: NoDCF IPC relative to DCF (and branch MPKI)",
		"workload", "NoDCF/DCF", "MPKI")
	for _, e := range entries {
		nodcf, _ := res.Get(e.Name, "NoDCF")
		dcf, _ := res.Get(e.Name, "DCF")
		t.Add(e.Name, report.F(nodcf.IPC/dcf.IPC), report.F1(dcf.MPKI))
	}
	return t, res, nil
}

// Figure6 renders Figure6Table as text.
func Figure6(ctx context.Context, w io.Writer, p Params) (map[string]map[string]Result, error) {
	t, res, err := Figure6Table(ctx, p)
	if err != nil {
		return nil, err
	}
	return res.Map(), t.WriteText(w)
}

// Figure7Table builds "Performance improvement of L-ELF and different
// variants of U-ELF with respect to DCF".
func Figure7Table(ctx context.Context, p Params) (*report.Table, Results, error) {
	entries, err := figureEntries()
	if err != nil {
		return nil, nil, err
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{
		base,
		base.WithVariant(core.LELF),
		base.WithVariant(core.RETELF),
		base.WithVariant(core.INDELF),
		base.WithVariant(core.CONDELF),
	}
	res, err := MatrixResults(ctx, entries, cfgs, p)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 7: L/RET/IND/COND-ELF IPC relative to DCF (and branch MPKI)",
		"workload", "L-ELF", "RET-ELF", "IND-ELF", "COND-ELF", "MPKI")
	for _, e := range entries {
		dcf, _ := res.Get(e.Name, "DCF")
		rel := func(cfg string) string {
			r, _ := res.Get(e.Name, cfg)
			return report.F(r.IPC / dcf.IPC)
		}
		t.Add(e.Name,
			rel("L-ELF"), rel("RET-ELF"), rel("IND-ELF"), rel("COND-ELF"),
			report.F1(dcf.MPKI))
	}
	return t, res, nil
}

// Figure7 renders Figure7Table as text.
func Figure7(ctx context.Context, w io.Writer, p Params) (map[string]map[string]Result, error) {
	t, res, err := Figure7Table(ctx, p)
	if err != nil {
		return nil, err
	}
	return res.Map(), t.WriteText(w)
}

// Figure8Table builds "Performance improvement of L-ELF and U-ELF, as well
// as average number of instructions fetched during a run in coupled mode".
func Figure8Table(ctx context.Context, p Params) (*report.Table, Results, error) {
	entries, err := figureEntries()
	if err != nil {
		return nil, nil, err
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.WithVariant(core.LELF), base.WithVariant(core.UELF)}
	res, err := MatrixResults(ctx, entries, cfgs, p)
	if err != nil {
		return nil, nil, err
	}
	t := report.New("Figure 8: L-ELF and U-ELF IPC relative to DCF, avg coupled insts per period",
		"workload", "L-ELF", "U-ELF", "L-cpl/prd", "U-cpl/prd")
	for _, e := range entries {
		dcf, _ := res.Get(e.Name, "DCF")
		lelf, _ := res.Get(e.Name, "L-ELF")
		uelf, _ := res.Get(e.Name, "U-ELF")
		t.Add(e.Name,
			report.F(lelf.IPC/dcf.IPC), report.F(uelf.IPC/dcf.IPC),
			report.F1(lelf.AvgCoupled), report.F1(uelf.AvgCoupled))
	}
	return t, res, nil
}

// Figure8 renders Figure8Table as text.
func Figure8(ctx context.Context, w io.Writer, p Params) (map[string]map[string]Result, error) {
	t, res, err := Figure8Table(ctx, p)
	if err != nil {
		return nil, err
	}
	return res.Map(), t.WriteText(w)
}

// Figure9Table builds "Speedup (geomean) of NoDCF, L-ELF, U-ELF relative to
// the baseline DCF configuration", per suite and overall.
func Figure9Table(ctx context.Context, p Params) (*report.Table, Results, error) {
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.NoDCF(), base.WithVariant(core.LELF), base.WithVariant(core.UELF)}
	res, err := MatrixResults(ctx, workload.All(), cfgs, p)
	if err != nil {
		return nil, nil, err
	}

	t := report.New("Figure 9: geomean IPC relative to DCF, per suite",
		"suite", "NoDCF", "L-ELF", "U-ELF")
	addRow := func(label string, entries []*workload.Entry) {
		rel := func(cfg string) float64 {
			prod, n := 1.0, 0
			for _, e := range entries {
				d, _ := res.Get(e.Name, "DCF")
				if d.IPC <= 0 {
					continue
				}
				r, _ := res.Get(e.Name, cfg)
				prod *= r.IPC / d.IPC
				n++
			}
			if n == 0 {
				return math.NaN()
			}
			return math.Pow(prod, 1/float64(n))
		}
		t.Add(label, report.F(rel("NoDCF")), report.F(rel("L-ELF")), report.F(rel("U-ELF")))
	}
	for _, s := range workload.Suites() {
		addRow(s, workload.Suite(s))
	}
	addRow("Geomean", workload.All())
	return t, res, nil
}

// Figure9 renders Figure9Table as text.
func Figure9(ctx context.Context, w io.Writer, p Params) (map[string]map[string]Result, error) {
	t, res, err := Figure9Table(ctx, p)
	if err != nil {
		return nil, err
	}
	return res.Map(), t.WriteText(w)
}

// FigureTable dispatches to the figure builders by number (6–9) — the
// single entry point behind elfd's /v1/figures/{n} and elfbench's -fig.
func FigureTable(ctx context.Context, n int, p Params) (*report.Table, Results, error) {
	switch n {
	case 6:
		return Figure6Table(ctx, p)
	case 7:
		return Figure7Table(ctx, p)
	case 8:
		return Figure8Table(ctx, p)
	case 9:
		return Figure9Table(ctx, p)
	}
	return nil, nil, fmt.Errorf("eval: unknown figure %d (want 6-9)", n)
}

// Table1 writes the workload registry (the Table I substitution).
func Table1(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table I: workloads (synthetic proxies; see DESIGN.md §2)\n"); err != nil {
		return err
	}
	suites := workload.Suites()
	sort.Strings(suites)
	for _, s := range suites {
		if _, err := fmt.Fprintf(w, "\n%s:\n", s); err != nil {
			return err
		}
		for _, e := range workload.Suite(s) {
			if _, err := fmt.Fprintf(w, "  %-22s %s\n", e.Name, e.Notes); err != nil {
				return err
			}
		}
	}
	return nil
}

// Table2 writes the machine configuration (Table II).
func Table2(w io.Writer) error {
	c := pipeline.DefaultConfig()
	ctrl := core.NewCoupledPredictors(core.UELF)
	_, err := fmt.Fprintf(w, `Table II: baseline pipeline configuration
  Fetch/Rename width        %d
  Issue width               %d (4 ALU/2 MulDiv, 2 LD/ST, 2 SIMD, 1 StData)
  ROB/IQ/LSQ                %d/%d/%d
  BTB                       L0 %d FA / L1 %d %d-way / L2 %d %d-way
  FAQ                       %d-entry FIFO
  BP1 to FE latency         %d cycles
  Cond pred                 32KB TAGE (8 tagged tables)
  Ind pred                  64-entry L0 BTC + 32KB ITTAGE (4 tables)
  RAS                       32-entry
  I-prefetch                FAQ-driven, <=%d in flight
  Caches                    L0I 24KB/3w/1c, L1I 64KB/8w/3c, L1D 32KB/8w/3c,
                            L2 512KB/8w/13c, L3 16MB/16w/35c, Mem 250c
  Coupled preds (U-ELF)     2K-entry 3-bit bimodal, 32-entry RAS, 64-entry BTC
  Coupled pred storage      %.2f KB (< 2KB per Table II)
`,
		c.FetchWidth,
		c.Backend.ALUPorts+c.Backend.MemPorts+c.Backend.SIMDPorts+1,
		c.Backend.ROB, c.Backend.IQ, c.Backend.LSQ,
		c.BTB.L0Entries, c.BTB.L1Entries, c.BTB.L1Ways, c.BTB.L2Entries, c.BTB.L2Ways,
		c.FAQSize,
		c.BPredToFetch,
		c.MaxPrefetch,
		float64(ctrl.StorageBits())/8/1024)
	return err
}

// TableBTB reports per-workload BTB hit rates under the DCF baseline — the
// statistic behind the paper's Section VI-A server-1 discussion ("28.3%,
// 48.5% and 70.6% hit rate for L0/L1/L2BTB in subtest 1").
func TableBTB(ctx context.Context, w io.Writer, p Params) error {
	entries, err := figureEntries()
	if err != nil {
		return err
	}
	res, err := MatrixResults(ctx, entries, []pipeline.Config{pipeline.DefaultConfig()}, p)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "BTB hit rates under DCF (%% of lookups served per level)\n")
	fmt.Fprintf(w, "%-22s %8s %8s %8s %10s\n", "workload", "L0", "L1", "L2", "L1I miss")
	for _, e := range entries {
		r, _ := res.Get(e.Name, "DCF")
		if _, err := fmt.Fprintf(w, "%-22s %7.1f%% %7.1f%% %7.1f%% %9.1f%%\n", e.Name,
			100*r.BTBHit[0], 100*r.BTBHit[1], 100*r.BTBHit[2], 100*r.L1IMiss); err != nil {
			return err
		}
	}
	return nil
}

// PeriodHistogram prints the coupled-period length distribution for a
// variant on one workload (Figure 8 colour).
func PeriodHistogram(ctx context.Context, w io.Writer, name string, v core.Variant, p Params) error {
	if err := p.Validate(); err != nil {
		return err
	}
	e, err := workload.Lookup(name)
	if err != nil {
		return err
	}
	m, err := pipeline.New(pipeline.DefaultConfig().WithVariant(v), e.Program())
	if err != nil {
		return err
	}
	if p.Warmup > 0 {
		if _, err := m.RunContext(ctx, p.Warmup); err != nil {
			return err
		}
		m.ResetStats()
	}
	if _, err := m.RunContext(ctx, p.Measure); err != nil {
		return err
	}
	elf := m.ELF()
	fmt.Fprintf(w, "%s on %s: %d coupled periods, avg %.1f insts\n",
		v, name, elf.Periods, elf.AvgCoupledInsts())
	lo := 0
	for i, c := range elf.PeriodHist {
		hi := 1 << uint(i)
		if c > 0 {
			fmt.Fprintf(w, "  %4d..%-5d %8d (%.1f%%)\n", lo, hi, c,
				100*float64(c)/float64(elf.Periods))
		}
		lo = hi + 1
	}
	return nil
}

// SweepFrontDepth measures how ELF's benefit scales with the decoupled
// front-end's depth (BP1→FE stages) — the paper's Section III-C point via
// Borch et al.'s "loose loops sink chips" [15]: the Decode→BP1 loop's cost,
// and therefore ELF's recoverable latency, grows with the number of cycles
// between BP1 and Decode.
func SweepFrontDepth(ctx context.Context, w io.Writer, p Params, depths []int, names []string) error {
	if len(depths) == 0 {
		depths = []int{2, 3, 4, 5, 6}
	}
	if len(names) == 0 {
		names = []string{"641.leela_s", "620.omnetpp_s", "401.bzip2"}
	}
	fmt.Fprintf(w, "ELF gain vs front depth (geomean U-ELF/DCF over %v)\n", names)
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "depth", "DCF IPC*", "U-ELF IPC*", "U/DCF")
	for _, d := range depths {
		base := pipeline.DefaultConfig()
		base.BPredToFetch = d
		uelf := base.WithVariant(core.UELF)
		prodD, prodU := 1.0, 1.0
		for _, n := range names {
			e, err := workload.Lookup(n)
			if err != nil {
				return err
			}
			rd, err := RunOne(ctx, e, base, p)
			if err != nil {
				return err
			}
			ru, err := RunOne(ctx, e, uelf, p)
			if err != nil {
				return err
			}
			prodD *= rd.IPC
			prodU *= ru.IPC
		}
		gd := math.Pow(prodD, 1/float64(len(names)))
		gu := math.Pow(prodU, 1/float64(len(names)))
		fmt.Fprintf(w, "%8d %12.3f %12.3f %12.3f\n", d, gd, gu, gu/gd)
	}
	_, err := fmt.Fprintf(w, "(* geomean IPC over the subset)\n")
	return err
}

// AblationTable runs every design-choice ablation DESIGN.md §6 calls out
// and reports the IPC ratio of choice-on vs choice-off on the workload
// where the mechanism matters.
func AblationTable(ctx context.Context, p Params) (*report.Table, error) {
	t := report.New("Ablations: design choice on/off IPC ratios",
		"ablation", "workload", "on/off", "section")
	type abl struct {
		name, wl, section string
		on, off           pipeline.Config
	}
	base := pipeline.DefaultConfig()
	uelf := base.WithVariant(core.UELF)
	cond := base.WithVariant(core.CONDELF)

	mk := func(c pipeline.Config, f func(*pipeline.Config)) pipeline.Config {
		f(&c)
		return c
	}
	cases := []abl{
		{"late-bound checkpoints", "641.leela_s", "IV-D1",
			uelf, mk(uelf, func(c *pipeline.Config) { c.Ckpt = pipeline.CkptROBHeadWait })},
		{"COND saturation filter", "620.omnetpp_s", "VI-B",
			cond, mk(cond, func(c *pipeline.Config) { c.SatFilter = false })},
		{"FAQ instruction prefetch", "server1_subtest_1", "VI-A",
			base, mk(base, func(c *pipeline.Config) { c.FAQPrefetch = false })},
		{"L0 BTB", "437.leslie3d", "III-B2",
			base, mk(base, func(c *pipeline.Config) { c.BTB.L0Entries = 0 })},
		{"interleave cross-fetch", "437.leslie3d", "VI-A",
			base, mk(base, func(c *pipeline.Config) { c.InterleaveFetch = false })},
		{"coupled update-all policy", "641.leela_s", "IV-D3",
			cond, mk(cond, func(c *pipeline.Config) { c.CoupledUpdateAll = false })},
		{"Boomerang predecode", "server1_subtest_1", "VI-C",
			mk(base, func(c *pipeline.Config) { c.Boomerang = true }), base},
		{"coupled zero-bubble", "641.leela_s", "IV-E",
			mk(uelf, func(c *pipeline.Config) { c.CoupledZeroBubble = true }), uelf},
		{"COND confidence filter", "620.omnetpp_s", "VII",
			mk(cond, func(c *pipeline.Config) { c.CondConfidence = true }), cond},
	}
	for _, a := range cases {
		e, err := workload.Lookup(a.wl)
		if err != nil {
			return nil, err
		}
		on, err := RunOne(ctx, e, a.on, p)
		if err != nil {
			return nil, err
		}
		off, err := RunOne(ctx, e, a.off, p)
		if err != nil {
			return nil, err
		}
		t.Add(a.name, a.wl, report.F(on.IPC/off.IPC), a.section)
	}
	t.Note("(on/off > 1 means the design choice pays off on that workload)")
	return t, nil
}

// SweepFAQ measures the DCF's sensitivity to decoupling depth (FAQ
// capacity): deeper queues let branch prediction run further ahead,
// feeding the prefetcher and absorbing fetch stalls — until the returns
// saturate. (Reinman et al. [5] study exactly this trade-off.)
func SweepFAQ(ctx context.Context, w io.Writer, p Params, sizes []int, name string) error {
	if len(sizes) == 0 {
		sizes = []int{4, 8, 16, 32, 64}
	}
	if name == "" {
		name = "server1_subtest_1"
	}
	e, err := workload.Lookup(name)
	if err != nil {
		return err
	}
	t := report.New("DCF IPC vs FAQ depth on "+name, "faq", "IPC", "prefetches")
	for _, s := range sizes {
		cfg := pipeline.DefaultConfig()
		cfg.FAQSize = s
		r, err := RunOne(ctx, e, cfg, p)
		if err != nil {
			return err
		}
		t.Add(report.I(s), report.F(r.IPC), report.I(r.Prefetches))
	}
	return t.WriteText(w)
}
