package eval

import (
	"bytes"
	"strings"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// tiny keeps harness tests fast.
func tiny() Params { return Params{Warmup: 5_000, Measure: 20_000, Parallel: 4} }

func TestRunOneProducesMetrics(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	r := RunOne(e, pipeline.DefaultConfig(), tiny())
	if r.IPC <= 0 || r.Committed < 20_000 || r.Cycles == 0 {
		t.Fatalf("implausible result: %+v", r)
	}
	if r.Workload != "641.leela_s" || r.Config != "DCF" {
		t.Fatalf("identity fields: %+v", r)
	}
}

func TestFigure6Harness(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	var buf bytes.Buffer
	res := Figure6(&buf, tiny())
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "641.leela_s") {
		t.Fatalf("output missing expected rows:\n%s", out)
	}
	// Every figure workload must have both configs measured.
	for _, name := range workload.FigureSet() {
		r := res[name]
		if r == nil || r["DCF"].IPC <= 0 || r["NoDCF"].IPC <= 0 {
			t.Errorf("%s: incomplete matrix cell", name)
		}
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	Table1(&buf)
	if !strings.Contains(buf.String(), "server1_subtest_1") {
		t.Error("Table I missing server workloads")
	}
	buf.Reset()
	Table2(&buf)
	out := buf.String()
	for _, want := range []string{"ROB/IQ/LSQ", "256/128/128", "TAGE", "< 2KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestPeriodHistogramRenders(t *testing.T) {
	var buf bytes.Buffer
	if err := PeriodHistogram(&buf, "641.leela_s", core.UELF, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coupled periods") {
		t.Errorf("histogram output:\n%s", buf.String())
	}
	if err := PeriodHistogram(&buf, "nope", core.UELF, tiny()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSweepFrontDepthRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	var buf bytes.Buffer
	SweepFrontDepth(&buf, tiny(), []int{2, 3}, []string{"641.leela_s"})
	out := buf.String()
	if !strings.Contains(out, "depth") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("sweep output:\n%s", out)
	}
}

func TestSweepFAQRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	var buf bytes.Buffer
	if err := SweepFAQ(&buf, tiny(), []int{8, 32}, "server1_subtest_1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAQ depth") {
		t.Fatalf("output:\n%s", buf.String())
	}
	if err := SweepFAQ(&buf, tiny(), nil, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
