package eval

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// tiny keeps harness tests fast.
func tiny() Params { return Params{Warmup: 5_000, Measure: 20_000, Parallel: 4} }

func TestParamsValidate(t *testing.T) {
	if err := tiny().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{
		{Warmup: 100, Measure: 0},
		{Warmup: MaxRunInsts, Measure: 1},
		{Measure: 1, Parallel: -1},
	} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", p)
		}
	}
}

func TestRunOneProducesMetrics(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunOne(context.Background(), e, pipeline.DefaultConfig(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if r.IPC <= 0 || r.Committed < 20_000 || r.Cycles == 0 {
		t.Fatalf("implausible result: %+v", r)
	}
	if r.Workload != "641.leela_s" || r.Config != "DCF" {
		t.Fatalf("identity fields: %+v", r)
	}
}

func TestRunOneRejectsBadParams(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunOne(context.Background(), e, pipeline.DefaultConfig(), Params{}); err == nil {
		t.Error("zero Measure accepted")
	}
}

func TestRunOneCancelled(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunOne(ctx, e, pipeline.DefaultConfig(), tiny()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestMatrixCancellation proves Matrix returns promptly when its context is
// cancelled mid-matrix: a full-length matrix would take many seconds, but a
// cancel a few milliseconds in must return within the poll latency.
func TestMatrixCancellation(t *testing.T) {
	entries, err := figureEntries()
	if err != nil {
		t.Fatal(err)
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.WithVariant(core.UELF)}
	big := Params{Warmup: 100_000, Measure: 10_000_000, Parallel: 4}

	// Prebuild the lazily-generated programs so the timing below measures
	// cancellation latency, not first-touch program generation.
	for _, e := range entries {
		e.Program()
	}

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = Matrix(ctx, entries, cfgs, big)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Generous bound: each worker aborts within one 2048-cycle poll, so
	// anything near a full-matrix runtime means cancellation didn't happen.
	if elapsed > 5*time.Second {
		t.Fatalf("Matrix took %v after cancel; not prompt", elapsed)
	}
}

func TestFigure6Harness(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	var buf bytes.Buffer
	res, err := Figure6(context.Background(), &buf, tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Figure 6") || !strings.Contains(out, "641.leela_s") {
		t.Fatalf("output missing expected rows:\n%s", out)
	}
	// Every figure workload must have both configs measured.
	for _, name := range workload.FigureSet() {
		r := res[name]
		if r == nil || r["DCF"].IPC <= 0 || r["NoDCF"].IPC <= 0 {
			t.Errorf("%s: incomplete matrix cell", name)
		}
	}
}

func TestFigureTableDispatch(t *testing.T) {
	if _, _, err := FigureTable(context.Background(), 5, tiny()); err == nil {
		t.Error("figure 5 accepted")
	}
	if _, _, err := FigureTable(context.Background(), 10, tiny()); err == nil {
		t.Error("figure 10 accepted")
	}
}

func TestTablesRender(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "server1_subtest_1") {
		t.Error("Table I missing server workloads")
	}
	buf.Reset()
	if err := Table2(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ROB/IQ/LSQ", "256/128/128", "TAGE", "< 2KB"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table II missing %q", want)
		}
	}
}

func TestPeriodHistogramRenders(t *testing.T) {
	ctx := context.Background()
	var buf bytes.Buffer
	if err := PeriodHistogram(ctx, &buf, "641.leela_s", core.UELF, tiny()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "coupled periods") {
		t.Errorf("histogram output:\n%s", buf.String())
	}
	if err := PeriodHistogram(ctx, &buf, "nope", core.UELF, tiny()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestSweepFrontDepthRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	var buf bytes.Buffer
	if err := SweepFrontDepth(context.Background(), &buf, tiny(), []int{2, 3}, []string{"641.leela_s"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "depth") || len(strings.Split(out, "\n")) < 4 {
		t.Fatalf("sweep output:\n%s", out)
	}
}

func TestSweepFAQRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	ctx := context.Background()
	var buf bytes.Buffer
	if err := SweepFAQ(ctx, &buf, tiny(), []int{8, 32}, "server1_subtest_1"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "FAQ depth") {
		t.Fatalf("output:\n%s", buf.String())
	}
	if err := SweepFAQ(ctx, &buf, tiny(), nil, "nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}
