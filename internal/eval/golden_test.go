package eval

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/report"
	"elfetch/internal/workload"
)

// updateGolden rewrites the golden equivalence fixtures from the current
// simulator output. Run it ONLY when a PR deliberately changes modeled
// behaviour; performance work must leave these files byte-identical.
var updateGolden = flag.Bool("update-golden", false, "rewrite golden stats fixtures from current simulator output")

const (
	goldenWarmup  = 5_000
	goldenMeasure = 12_000
)

// goldenConfigs covers the four decode paths of the cycle loop: the DCF
// baseline (decoupled decode), NoDCF (coupled-with-inline-prediction),
// U-ELF (elastic with full tracking vectors), and L-ELF (counts-only
// elastic, the uncondChecks consumer).
func goldenConfigs() []pipeline.Config {
	base := pipeline.DefaultConfig()
	return []pipeline.Config{
		base,
		base.NoDCF(),
		base.WithVariant(core.UELF),
		base.WithVariant(core.LELF),
	}
}

// goldenCell is one (workload, config) fingerprint: the full Stats struct,
// so any behavioural drift in the cycle loop — not just IPC — fails.
type goldenCell struct {
	Workload string          `json:"workload"`
	Config   string          `json:"config"`
	Stats    *pipeline.Stats `json:"stats"`
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (generate with -update-golden): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: simulator output diverged from the golden fixture.\n"+
			"The optimized cycle loop must be byte-identical to the recorded behaviour; "+
			"if this PR deliberately changes modeled behaviour, regenerate with -update-golden.",
			path)
	}
}

// TestGoldenStatsEquivalence pins the cycle loop's observable behaviour:
// every registered workload under every golden config must produce the
// exact *pipeline.Stats recorded before the zero-allocation rework. This
// is the contract that lets the hot loop be restructured freely.
func TestGoldenStatsEquivalence(t *testing.T) {
	if raceEnabled {
		t.Skip("golden equivalence is a determinism fingerprint; the race build re-runs the same single-goroutine code 10x slower")
	}
	var cells []goldenCell
	for _, e := range workload.All() {
		for _, cfg := range goldenConfigs() {
			m := pipeline.MustNew(cfg, e.Program())
			m.Run(goldenWarmup)
			m.ResetStats()
			st := m.Run(goldenMeasure)
			cells = append(cells, goldenCell{Workload: e.Name, Config: cfg.Name(), Stats: st})
		}
	}
	got, err := json.MarshalIndent(cells, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	checkGolden(t, filepath.Join("testdata", "golden_stats.json"), got)
}

// TestGoldenFigure6Table pins the rendered Figure 6 table (CSV): the
// figure-regeneration path through MatrixResults and report formatting
// must survive the hot-loop rework byte-for-byte too.
func TestGoldenFigure6Table(t *testing.T) {
	if raceEnabled {
		t.Skip("covered by the non-race run; see TestGoldenStatsEquivalence")
	}
	tab, _, err := Figure6Table(context.Background(), Params{Warmup: goldenWarmup, Measure: goldenMeasure})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tab.Write(&buf, report.CSV); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, filepath.Join("testdata", "golden_fig6.csv"), buf.Bytes())
}
