//go:build !race

package eval

// raceEnabled reports that this test binary was built with -race.
const raceEnabled = false
