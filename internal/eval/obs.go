package eval

import (
	"context"

	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// NewProbe builds a pipeline.Probe whose observers are histograms on reg,
// named for the paper's front-end distributions:
//
//	elf_flush_recovery_cycles   flush applied -> next commit
//	elf_faq_occupancy_blocks    FAQ depth, sampled every SampleEvery cycles
//	elf_coupled_residency_cycles  EnterCoupled -> switch back to decoupled
//	elf_resync_drain_cycles     resync prepare -> actual mode switch
//
// Registration is idempotent, so calling NewProbe repeatedly against one
// registry (e.g. once per elfd job) accumulates into the same series.
func NewProbe(reg *obs.Registry) *pipeline.Probe {
	return &pipeline.Probe{
		FlushRecovery: reg.Histogram("elf_flush_recovery_cycles",
			"Cycles from a pipeline flush to the next instruction commit.",
			obs.ExpBuckets(4, 2, 10)),
		FAQOccupancy: reg.Histogram("elf_faq_occupancy_blocks",
			"Fetch address queue occupancy in blocks, sampled periodically.",
			obs.LinearBuckets(0, 4, 9)),
		CoupledResidency: reg.Histogram("elf_coupled_residency_cycles",
			"Cycles spent in coupled mode per coupled period.",
			obs.ExpBuckets(8, 2, 12)),
		ResyncDrain: reg.Histogram("elf_resync_drain_cycles",
			"Cycles from resync-prepare to the coupled->decoupled switch.",
			obs.ExpBuckets(1, 2, 10)),
	}
}

// RunOneTraced is RunOne plus a cycle-level trace of the measurement
// window: a Tracer capturing up to maxEvents instruction records is
// attached after warmup (alongside p.Probe, if set) and returned for
// export via Tracer.WritePipeview or Tracer.WriteChromeTrace.
func RunOneTraced(ctx context.Context, e *workload.Entry, cfg pipeline.Config, p Params, maxEvents int) (Result, *pipeline.Tracer, error) {
	if err := p.Validate(); err != nil {
		return Result{}, nil, err
	}
	m, err := pipeline.New(cfg, e.Program())
	if err != nil {
		return Result{}, nil, err
	}
	if p.Warmup > 0 {
		if _, err := m.RunContext(ctx, p.Warmup); err != nil {
			return Result{}, nil, err
		}
		m.ResetStats()
	}
	if p.Probe != nil {
		m.AttachProbe(p.Probe)
	}
	tr := pipeline.NewTracer(maxEvents)
	m.AttachTracer(tr)
	st, err := m.RunContext(ctx, p.Measure)
	if err != nil {
		return Result{}, nil, err
	}
	r := resultFrom(e, cfg, m, st)
	return r, tr, nil
}
