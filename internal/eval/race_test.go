//go:build race

package eval

// raceEnabled reports that this test binary was built with -race; the
// golden equivalence fingerprints skip themselves there (single-goroutine
// determinism replays gain nothing from the detector and cost ~10x).
const raceEnabled = true
