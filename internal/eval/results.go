package eval

import (
	"context"
	"fmt"

	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// Cell is one (workload, configuration, run-length) unit of an evaluation
// grid — the quantum of work execution backends dispatch. Its JSON
// encoding is both the wire format of elfd's POST /v1/cells worker
// endpoint and the content-address input for result caching, so the
// struct must stay flat, exported and free of non-serialisable state
// (probes attach on the executing side, never travel with the cell).
type Cell struct {
	// Workload names a registered workload (workload.Lookup); custom
	// programs cannot be dispatched remotely.
	Workload string          `json:"workload"`
	Config   pipeline.Config `json:"config"`
	Warmup   uint64          `json:"warmup"`
	Measure  uint64          `json:"measure"`
}

// Params lifts the cell's run lengths into a Params value.
func (c Cell) Params() Params { return Params{Warmup: c.Warmup, Measure: c.Measure} }

// Validate rejects cells no worker could honour.
func (c Cell) Validate() error {
	if c.Workload == "" {
		return fmt.Errorf("eval: cell has no workload")
	}
	if err := c.Config.Validate(); err != nil {
		return err
	}
	return c.Params().Validate()
}

// RunCell resolves and measures one cell in-process — the per-cell twin
// of RunOne, and what both execution backends (internal/exec) and elfd's
// POST /v1/cells endpoint ultimately call. probe, when non-nil, is
// attached to the machine after warmup exactly as Params.Probe would be.
// Determinism of the sim core guarantees RunCell returns bit-identical
// Results for the same cell no matter which process runs it, which is
// what makes remote execution transparent.
func RunCell(ctx context.Context, c Cell, probe *pipeline.Probe) (Result, error) {
	if err := c.Validate(); err != nil {
		return Result{}, err
	}
	e, err := workload.Lookup(c.Workload)
	if err != nil {
		return Result{}, err
	}
	p := c.Params()
	p.Probe = probe
	return RunOne(ctx, e, c.Config, p)
}

// CellRunner dispatches evaluation cells to an execution backend. The
// interface is defined here (rather than in internal/exec, which provides
// the implementations) so the eval layer can fan grids out through a
// backend without importing it.
type CellRunner interface {
	// Run executes one cell to completion, honouring ctx.
	Run(ctx context.Context, c Cell) (Result, error)
}

// CellResult pairs a cell with its measurement.
type CellResult struct {
	Cell   Cell   `json:"cell"`
	Result Result `json:"result"`
}

// Results is an ordered evaluation result set: cells appear in grid order
// (workloads outer, configurations inner, both in the order given to
// MatrixResults), so its JSON marshalling is stable across runs and
// processes — unlike the map form, nothing depends on map iteration
// order. Failed or cancelled cells are absent.
type Results []CellResult

// Get returns the result for (workload, config name).
func (rs Results) Get(workload, config string) (Result, bool) {
	for _, cr := range rs {
		if cr.Cell.Workload == workload && cr.Cell.Config.Name() == config {
			return cr.Result, true
		}
	}
	return Result{}, false
}

// ByEntry returns the cells measuring workload, preserving order.
func (rs Results) ByEntry(workload string) Results {
	var out Results
	for _, cr := range rs {
		if cr.Cell.Workload == workload {
			out = append(out, cr)
		}
	}
	return out
}

// ByConfig returns the cells measuring the named configuration,
// preserving order.
func (rs Results) ByConfig(config string) Results {
	var out Results
	for _, cr := range rs {
		if cr.Cell.Config.Name() == config {
			out = append(out, cr)
		}
	}
	return out
}

// Map reindexes the results as [workload][config name] — the legacy shape
// the figure payloads and older callers consume.
func (rs Results) Map() map[string]map[string]Result {
	out := make(map[string]map[string]Result)
	for _, cr := range rs {
		wl := cr.Cell.Workload
		if out[wl] == nil {
			out[wl] = make(map[string]Result)
		}
		out[wl][cr.Cell.Config.Name()] = cr.Result
	}
	return out
}
