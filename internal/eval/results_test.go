package eval

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

func TestCellValidate(t *testing.T) {
	good := Cell{Workload: "641.leela_s", Config: pipeline.DefaultConfig(), Warmup: 100, Measure: 1_000}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	for name, c := range map[string]Cell{
		"no workload": {Config: pipeline.DefaultConfig(), Measure: 1_000},
		"no measure":  {Workload: "641.leela_s", Config: pipeline.DefaultConfig()},
	} {
		if err := c.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRunCellMatchesRunOne(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	p := tiny()
	want, err := RunOne(context.Background(), e, pipeline.DefaultConfig(), p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunCell(context.Background(), Cell{
		Workload: e.Name, Config: pipeline.DefaultConfig(),
		Warmup: p.Warmup, Measure: p.Measure,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("RunCell differs from RunOne:\n got  %+v\n want %+v", got, want)
	}
}

func TestResultsAccessors(t *testing.T) {
	base := pipeline.DefaultConfig()
	uelf := base.WithVariant(core.UELF)
	mk := func(wl string, cfg pipeline.Config, ipc float64) CellResult {
		return CellResult{
			Cell:   Cell{Workload: wl, Config: cfg, Warmup: 1, Measure: 2},
			Result: Result{Workload: wl, Config: cfg.Name(), IPC: ipc},
		}
	}
	rs := Results{
		mk("a", base, 1.0), mk("a", uelf, 1.5),
		mk("b", base, 0.8), mk("b", uelf, 1.1),
	}

	if r, ok := rs.Get("b", uelf.Name()); !ok || r.IPC != 1.1 {
		t.Fatalf("Get(b, %s) = %+v, %v", uelf.Name(), r, ok)
	}
	if _, ok := rs.Get("c", "DCF"); ok {
		t.Fatal("Get for absent workload succeeded")
	}
	if by := rs.ByEntry("a"); len(by) != 2 || by[0].Result.IPC != 1.0 || by[1].Result.IPC != 1.5 {
		t.Fatalf("ByEntry(a) = %+v", by)
	}
	if by := rs.ByConfig("DCF"); len(by) != 2 || by[0].Cell.Workload != "a" || by[1].Cell.Workload != "b" {
		t.Fatalf("ByConfig(DCF) = %+v", by)
	}
	m := rs.Map()
	if len(m) != 2 || m["a"][uelf.Name()].IPC != 1.5 || m["b"]["DCF"].IPC != 0.8 {
		t.Fatalf("Map() = %+v", m)
	}
}

// TestResultsJSONStable proves the ordered form's marshalling is
// byte-stable — the property the map form can't give HTTP payloads.
func TestResultsJSONStable(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.NoDCF()}
	p := tiny()

	var first []byte
	for i := 0; i < 3; i++ {
		rs, err := MatrixResults(context.Background(), []*workload.Entry{e}, cfgs, p)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rs)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = b
		} else if string(b) != string(first) {
			t.Fatalf("run %d marshalled differently:\n%s\nvs\n%s", i, b, first)
		}
	}
	if !strings.Contains(string(first), `"workload":"641.leela_s"`) {
		t.Fatalf("cells missing from payload: %s", first)
	}
}

// failingRunner fails exactly one named cell and delegates the rest, for
// exercising the partial-results contract.
type failingRunner struct {
	failConfig string
}

func (f failingRunner) Run(ctx context.Context, c Cell) (Result, error) {
	if c.Config.Name() == f.failConfig {
		return Result{}, fmt.Errorf("injected failure for %s", f.failConfig)
	}
	return RunCell(ctx, c, nil)
}

// TestMatrixPartialResults is the bugfix regression test: a failing cell
// must surface a joined error naming it, while completed cells are still
// returned instead of being discarded.
func TestMatrixPartialResults(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.NoDCF()}
	p := tiny()
	p.Parallel = 1 // deterministic: DCF completes before NoDCF fails
	p.Runner = failingRunner{failConfig: base.NoDCF().Name()}

	rs, err := MatrixResults(context.Background(), []*workload.Entry{e}, cfgs, p)
	if err == nil {
		t.Fatal("failed cell must produce an error")
	}
	if !strings.Contains(err.Error(), "injected failure") ||
		!strings.Contains(err.Error(), base.NoDCF().Name()) {
		t.Fatalf("error does not name the failed cell: %v", err)
	}
	if _, ok := rs.Get(e.Name, base.Name()); !ok {
		t.Fatalf("completed cell discarded; results: %+v", rs)
	}
	if _, ok := rs.Get(e.Name, base.NoDCF().Name()); ok {
		t.Fatal("failed cell present in results")
	}

	// The map wrapper keeps the same contract.
	m, err := Matrix(context.Background(), []*workload.Entry{e}, cfgs, p)
	if err == nil {
		t.Fatal("Matrix must propagate the joined error")
	}
	if m[e.Name][base.Name()].IPC <= 0 {
		t.Fatalf("Matrix discarded completed work: %+v", m)
	}
}

// countingRunner proves matrix dispatch actually flows through
// Params.Runner when one is set.
type countingRunner struct{ calls *int }

func (c countingRunner) Run(ctx context.Context, cell Cell) (Result, error) {
	*c.calls++
	return RunCell(ctx, cell, nil)
}

func TestMatrixDispatchesThroughRunner(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	base := pipeline.DefaultConfig()
	cfgs := []pipeline.Config{base, base.NoDCF()}

	p := tiny()
	p.Parallel = 1
	calls := 0
	p.Runner = countingRunner{calls: &calls}

	viaRunner, err := MatrixResults(context.Background(), []*workload.Entry{e}, cfgs, p)
	if err != nil {
		t.Fatal(err)
	}
	if calls != len(cfgs) {
		t.Fatalf("runner saw %d cells, want %d", calls, len(cfgs))
	}

	plain := tiny()
	direct, err := MatrixResults(context.Background(), []*workload.Entry{e}, cfgs, plain)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaRunner) != len(direct) {
		t.Fatalf("result counts differ: %d vs %d", len(viaRunner), len(direct))
	}
	for i := range direct {
		if viaRunner[i] != direct[i] {
			t.Fatalf("cell %d differs through runner:\n got  %+v\n want %+v",
				i, viaRunner[i], direct[i])
		}
	}
}

func TestMatrixRunnerCancellation(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	p := tiny()
	p.Runner = countingRunner{calls: new(int)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = MatrixResults(ctx, []*workload.Entry{e}, []pipeline.Config{pipeline.DefaultConfig()}, p)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
