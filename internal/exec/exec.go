// Package exec provides pluggable execution backends for the evaluation
// grid. The eval layer describes work as eval.Cells — one (workload,
// configuration, run-length) measurement each — and fans grids out
// through an eval.CellRunner; this package supplies the two runners:
//
//   - Local wraps an internal/sched worker pool plus its content-addressed
//     result cache, so in-process grids coalesce duplicate cells and
//     answer repeats without re-simulating.
//   - Fleet shards cells across a fleet of remote elfd workers over
//     HTTP (POST /v1/cells), with per-worker health tracking, bounded
//     retries with exponential backoff and jitter, quarantine-and-requeue
//     on worker failure, and graceful degradation to a local fallback
//     when the whole fleet is unreachable.
//
// The sim core is deterministic (enforced by elflint and the runtime
// determinism tests), so a cell produces bit-identical Results no matter
// which backend — or which machine — executes it. That equivalence is
// what makes the backends interchangeable and the fleet testable against
// the local backend byte-for-byte.
//
// Wire contract (shared with cmd/elfd): a worker accepts an eval.Cell as
// the JSON body of POST /v1/cells and answers 200 with an eval.Result, or
// an error envelope {"error":{"code","message","detail"}} whose code
// classifies the failure — "sim_failed" and 4xx codes are permanent
// (retrying elsewhere cannot help, the sim is deterministic), everything
// else is infrastructure trouble worth retrying on another worker.
// GET /v1/healthz answers 200 when the worker can accept cells.
package exec

import (
	"context"

	"elfetch/internal/eval"
	"elfetch/internal/sched"
	"elfetch/internal/store"
)

// Backend executes evaluation cells. It extends eval.CellRunner with
// lifecycle and introspection, so drivers (elfbench, elfd's coordinator
// mode) can manage the backend they dispatch through.
type Backend interface {
	// Run executes one cell to completion, honouring ctx. It satisfies
	// eval.CellRunner, so a Backend plugs directly into
	// eval.Params.Runner.
	Run(ctx context.Context, c eval.Cell) (eval.Result, error)
	// Stats snapshots the backend's dispatch counters.
	Stats() Stats
	// Close releases the backend's resources (worker pool, health
	// checker, fallback). A closed backend fails further Run calls.
	Close() error
}

// Both backends must satisfy the interface, and the interface must keep
// satisfying the eval layer's dispatch contract.
var (
	_ Backend         = (*Local)(nil)
	_ Backend         = (*Fleet)(nil)
	_ eval.CellRunner = (Backend)(nil)
)

// WorkerStats is one fleet worker's dispatch ledger.
type WorkerStats struct {
	// Addr is the worker's base URL.
	Addr string `json:"addr"`
	// Healthy is false while the worker is quarantined.
	Healthy bool `json:"healthy"`
	// InFlight is the number of cells currently posted to the worker.
	InFlight int64 `json:"inFlight"`
	// Dispatched counts cells posted (including ones that later failed).
	Dispatched uint64 `json:"dispatched"`
	// Retried counts dispatch attempts that failed retriably.
	Retried uint64 `json:"retried"`
	// Requeued counts cells re-queued to another worker because this one
	// was quarantined mid-cell.
	Requeued uint64 `json:"requeued"`
}

// Stats is a point-in-time backend counter snapshot.
type Stats struct {
	// Backend is "local" or "fleet".
	Backend string `json:"backend"`
	// Cells counts successfully completed cells.
	Cells uint64 `json:"cells"`
	// Failed counts cells that exhausted every avenue and returned an
	// error.
	Failed uint64 `json:"failed"`
	// Fallback counts cells the fleet handed to its local fallback.
	Fallback uint64 `json:"fallback,omitempty"`
	// Scheduler carries the local backend's pool/cache counters.
	Scheduler *sched.Stats `json:"scheduler,omitempty"`
	// Workers carries the fleet's per-worker ledgers.
	Workers []WorkerStats `json:"workers,omitempty"`
	// Store carries per-tier persistent-store counters when a store is
	// attached.
	Store []store.TierStats `json:"store,omitempty"`
}
