package exec

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/pipeline"
)

// testCell is a small real measurement: big enough to exercise the sim,
// small enough to keep the suite fast.
func testCell() eval.Cell {
	return eval.Cell{
		Workload: "641.leela_s",
		Config:   pipeline.DefaultConfig(),
		Warmup:   1_000,
		Measure:  4_000,
	}
}

// cellMux is an in-process stand-in for elfd's worker surface: it serves
// POST /v1/cells by running the cell for real (the sim core is
// deterministic, so its results are interchangeable with any worker's)
// and GET /v1/healthz with 200.
func cellMux(t *testing.T) *http.ServeMux {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/cells", func(w http.ResponseWriter, r *http.Request) {
		var c eval.Cell
		if err := json.NewDecoder(r.Body).Decode(&c); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := eval.RunCell(r.Context(), c, nil)
		if err != nil {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			json.NewEncoder(w).Encode(map[string]map[string]string{
				"error": {"code": "sim_failed", "message": err.Error()},
			})
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	return mux
}

func TestLocalRunAndCache(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 2})
	defer l.Close()
	c := testCell()

	r1, err := l.Run(context.Background(), c)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if r1.Committed == 0 || r1.IPC <= 0 {
		t.Fatalf("implausible result: %+v", r1)
	}
	r2, err := l.Run(context.Background(), c)
	if err != nil {
		t.Fatalf("repeat Run: %v", err)
	}
	if r1 != r2 {
		t.Fatalf("repeat run differs: %+v vs %+v", r1, r2)
	}
	st := l.Stats()
	if st.Backend != "local" || st.Cells != 2 || st.Failed != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	if st.Scheduler == nil || st.Scheduler.Cache.Hits == 0 {
		t.Fatalf("second identical cell should hit the result cache: %+v", st.Scheduler)
	}
}

func TestLocalRejectsInvalidCell(t *testing.T) {
	l := NewLocal(LocalConfig{Workers: 1})
	defer l.Close()
	if _, err := l.Run(context.Background(), eval.Cell{}); err == nil {
		t.Fatal("empty cell should fail validation")
	}
	if _, err := l.Run(context.Background(), eval.Cell{Workload: "no-such-workload",
		Config: pipeline.DefaultConfig(), Measure: 1_000}); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestFleetShardsAcrossWorkers(t *testing.T) {
	var hits [3]atomic.Int64
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < 3; i++ {
		i := i
		mux := cellMux(t)
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/cells" {
				hits[i].Add(1)
			}
			mux.ServeHTTP(w, r)
		}))
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.URL)
	}
	_ = servers

	f, err := NewFleet(FleetConfig{Workers: addrs})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	want, err := eval.RunCell(context.Background(), testCell(), nil)
	if err != nil {
		t.Fatalf("local reference run: %v", err)
	}
	// Vary warmup so each cell is distinct (no worker-side cache merging).
	for i := 0; i < 6; i++ {
		c := testCell()
		c.Warmup += uint64(i)
		got, err := f.Run(context.Background(), c)
		if err != nil {
			t.Fatalf("fleet Run %d: %v", i, err)
		}
		if i == 0 && got != want {
			t.Fatalf("fleet result differs from local:\n got  %+v\n want %+v", got, want)
		}
	}
	for i := range hits {
		if hits[i].Load() == 0 {
			t.Fatalf("round-robin left worker %d idle: %v %v %v",
				i, hits[0].Load(), hits[1].Load(), hits[2].Load())
		}
	}
	st := f.Stats()
	if st.Backend != "fleet" || st.Cells != 6 || st.Failed != 0 || st.Fallback != 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}
}

func TestFleetQuarantinesAndRequeues(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(cellMux(t))
	defer good.Close()

	f, err := NewFleet(FleetConfig{
		Workers:        []string{bad.URL, good.URL},
		HealthInterval: time.Hour, // keep the prober from reviving bad mid-test
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	// Run enough distinct cells that round-robin is guaranteed to hand at
	// least one to the bad worker first.
	for i := 0; i < 3; i++ {
		c := testCell()
		c.Warmup += uint64(i)
		if _, err := f.Run(context.Background(), c); err != nil {
			t.Fatalf("Run %d should recover via requeue: %v", i, err)
		}
	}
	st := f.Stats()
	var badWS, goodWS *WorkerStats
	for i := range st.Workers {
		switch st.Workers[i].Addr {
		case bad.URL:
			badWS = &st.Workers[i]
		case good.URL:
			goodWS = &st.Workers[i]
		}
	}
	if badWS == nil || goodWS == nil {
		t.Fatalf("missing worker stats: %+v", st.Workers)
	}
	if badWS.Healthy {
		t.Fatal("failing worker should be quarantined")
	}
	if badWS.Requeued == 0 {
		t.Fatalf("expected requeues off the failing worker: %+v", badWS)
	}
	if goodWS.Dispatched == 0 || !goodWS.Healthy {
		t.Fatalf("healthy worker should have absorbed the cells: %+v", goodWS)
	}
	if st.Failed != 0 {
		t.Fatalf("no cell should have failed: %+v", st)
	}
}

func TestFleetPermanentErrorDoesNotRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(map[string]map[string]string{
			"error": {"code": "bad_request", "message": "no such workload"},
		})
	}))
	defer srv.Close()

	f, err := NewFleet(FleetConfig{Workers: []string{srv.URL}, HealthInterval: time.Hour})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	if _, err := f.Run(context.Background(), testCell()); err == nil {
		t.Fatal("4xx must surface as a permanent error")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("permanent error retried: %d dispatches", n)
	}
	if st := f.Stats(); st.Failed != 1 || !st.Workers[0].Healthy {
		t.Fatalf("permanent error must not quarantine the worker: %+v", st)
	}
}

func TestFleetFallsBackWhenFleetDown(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // address now refuses connections

	f, err := NewFleet(FleetConfig{
		Workers:        []string{dead.URL},
		Fallback:       NewLocal(LocalConfig{Workers: 1}),
		HealthInterval: time.Hour,
		MaxAttempts:    2,
		RetryBase:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	r, err := f.Run(context.Background(), testCell())
	if err != nil {
		t.Fatalf("Run should degrade to the local fallback: %v", err)
	}
	if r.Committed == 0 {
		t.Fatalf("implausible fallback result: %+v", r)
	}
	st := f.Stats()
	if st.Fallback == 0 {
		t.Fatalf("fallback counter not incremented: %+v", st)
	}
	if st.Workers[0].Healthy {
		t.Fatal("dead worker should be quarantined")
	}
}

func TestFleetHealthProbeRevivesWorker(t *testing.T) {
	var healthy atomic.Bool
	mux := cellMux(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/healthz" && !healthy.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	f, err := NewFleet(FleetConfig{
		Workers:        []string{srv.URL},
		HealthInterval: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	// Probe sees 503 → quarantine.
	deadline := time.Now().Add(5 * time.Second)
	for f.Stats().Workers[0].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("prober never quarantined the draining worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Worker recovers → prober revives it.
	healthy.Store(true)
	for !f.Stats().Workers[0].Healthy {
		if time.Now().After(deadline) {
			t.Fatal("prober never revived the recovered worker")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := f.Run(context.Background(), testCell()); err != nil {
		t.Fatalf("Run after revival: %v", err)
	}
}

func TestFleetExhaustedWithoutFallbackFails(t *testing.T) {
	busy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "full", http.StatusServiceUnavailable)
	}))
	defer busy.Close()

	f, err := NewFleet(FleetConfig{
		Workers:        []string{busy.URL},
		MaxAttempts:    2,
		RetryBase:      time.Millisecond,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	if _, err := f.Run(context.Background(), testCell()); err == nil {
		t.Fatal("exhausted retries with no fallback must fail the cell")
	}
	st := f.Stats()
	if st.Failed != 1 {
		t.Fatalf("expected one failed cell: %+v", st)
	}
	// 503 is overload, not breakage: the worker must not be quarantined.
	if !st.Workers[0].Healthy {
		t.Fatal("503 must not quarantine the worker")
	}
	if st.Workers[0].Retried == 0 {
		t.Fatalf("expected retries recorded: %+v", st.Workers[0])
	}
}
