package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/obs"
	"elfetch/internal/store"
)

// FleetConfig wires a fleet of remote elfd workers.
type FleetConfig struct {
	// Workers is the list of worker base URLs ("http://host:port").
	Workers []string
	// Client is the HTTP client used for dispatch and health checks
	// (nil = a client with a 10-minute timeout, generous enough for a
	// long measurement cell; cancellation still flows through ctx).
	Client *http.Client
	// MaxAttempts bounds dispatch attempts per cell, across workers
	// (0 = 4).
	MaxAttempts int
	// RetryBase is the first backoff delay (0 = 100ms); each retry
	// doubles it, jittered, capped at RetryMax (0 = 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// HealthPath is the worker liveness endpoint (0 = "/v1/healthz").
	HealthPath string
	// HealthInterval paces the background health prober, which is what
	// revives quarantined workers (0 = 5s).
	HealthInterval time.Duration
	// Fallback, when non-nil, receives cells while no fleet worker is
	// healthy, so a grid degrades to local execution instead of failing.
	// The fleet owns it: Close closes it too.
	Fallback Backend
	// Metrics, when non-nil, receives per-worker dispatch counters, the
	// worker_healthy gauge, the cell latency histogram and the per-hop
	// latency histograms split by outcome.
	Metrics *obs.Registry
	// Spans, when non-nil, collects the fleet's dispatch spans (one cell
	// span per Run, one child span per dispatch attempt). When nil the
	// fleet allocates a private log, so trace identity always flows to
	// workers even if nobody collects the spans locally.
	Spans *obs.SpanLog
	// Events, when non-nil, receives flight-recorder events (dispatch,
	// retry, quarantine, revive, fallback, slow-cell).
	Events *obs.Ring
	// SlowCell, when positive, is the wall-clock threshold beyond which a
	// completed cell is recorded as a slow_cell event.
	SlowCell time.Duration
	// Store, when non-nil, is the persistent result store: consulted
	// under the cell key before dispatching (a hit skips the fleet
	// entirely) and filled after a successful remote run. The fleet does
	// not own the store (the caller closes it); the fallback backend
	// fills it on its own when it carries the same store.
	Store store.Store
}

// worker is one remote elfd's dispatch ledger.
type worker struct {
	addr string

	healthy    atomic.Bool
	inFlight   atomic.Int64
	dispatched atomic.Uint64
	retried    atomic.Uint64
	requeued   atomic.Uint64

	// registry children (nil without FleetConfig.Metrics)
	mDispatched *obs.Counter
	mRetried    *obs.Counter
	mRequeued   *obs.Counter
	mHealthy    *obs.Gauge
}

// setHealthy flips the worker's state, mirroring it to the gauge.
func (w *worker) setHealthy(v bool) {
	w.healthy.Store(v)
	if w.mHealthy != nil {
		w.mHealthy.SetBool(v)
	}
}

// Fleet shards cells across remote elfd workers. Dispatch is
// round-robin over the healthy set; a worker that errors in a way that
// suggests infrastructure trouble (network failure, unexpected 5xx) is
// quarantined and its cell re-queued to another worker, and a background
// prober revives quarantined workers that pass their health check. When
// no worker is healthy the fleet degrades to its local fallback, so a
// grid never hard-fails just because the fleet is down.
//
// The sim core's determinism makes all of this safe: any worker — or the
// fallback — produces bit-identical Results for a given cell, so retries
// and requeues cannot change a grid's output, only its wall-clock time.
type Fleet struct {
	cfg     FleetConfig
	client  *http.Client
	workers []*worker
	rr      atomic.Uint64 // round-robin cursor

	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	cells    atomic.Uint64
	failed   atomic.Uint64
	fallback atomic.Uint64

	spans  *obs.SpanLog
	events *obs.Ring // nil without FleetConfig.Events

	cellSeconds *obs.Histogram            // nil without Metrics
	hopSeconds  map[string]*obs.Histogram // outcome -> histogram; nil without Metrics

	mu  sync.Mutex // guards rng (math/rand.Rand is not race-safe)
	rng *rand.Rand
}

// NewFleet starts a fleet backend over cfg.Workers. The health prober
// starts immediately; workers begin healthy and are quarantined on their
// first failure.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("exec: fleet needs at least one worker address")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Minute}
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = 100 * time.Millisecond
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = 5 * time.Second
	}
	if cfg.HealthPath == "" {
		cfg.HealthPath = "/v1/healthz"
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = 5 * time.Second
	}
	f := &Fleet{
		cfg:    cfg,
		client: cfg.Client,
		stop:   make(chan struct{}),
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		spans:  cfg.Spans,
		events: cfg.Events,
	}
	if f.spans == nil {
		f.spans = obs.NewSpanLog(0)
	}
	for _, addr := range cfg.Workers {
		addr = strings.TrimRight(addr, "/")
		w := &worker{addr: addr}
		if cfg.Metrics != nil {
			lbl := obs.L("worker", addr)
			w.mDispatched = cfg.Metrics.Counter("elf_exec_cells_dispatched_total",
				"Cells posted to a fleet worker (including later failures).", lbl)
			w.mRetried = cfg.Metrics.Counter("elf_exec_cells_retried_total",
				"Cell dispatch attempts that failed retriably.", lbl)
			w.mRequeued = cfg.Metrics.Counter("elf_exec_cells_requeued_total",
				"Cells re-queued to another worker after a quarantine.", lbl)
			w.mHealthy = cfg.Metrics.Gauge("elf_exec_worker_healthy",
				"1 while the worker is in the dispatchable set, 0 while quarantined.", lbl)
		}
		w.setHealthy(true)
		f.workers = append(f.workers, w)
	}
	if cfg.Metrics != nil {
		f.cellSeconds = cfg.Metrics.Histogram("elf_exec_cell_seconds",
			"Wall-clock time to complete one cell through the fleet.",
			obs.ExpBuckets(0.005, 4, 8))
		f.hopSeconds = make(map[string]*obs.Histogram)
		for _, outcome := range []string{hopOK, hopRetry, hopRequeue, hopPermanent} {
			f.hopSeconds[outcome] = cfg.Metrics.Histogram("elf_exec_hop_seconds",
				"Wall-clock time of one dispatch attempt (coordinator to worker and back), by outcome.",
				obs.ExpBuckets(0.001, 4, 8), obs.L("outcome", outcome))
		}
	}
	f.wg.Add(1)
	go f.probeLoop()
	return f, nil
}

// Hop outcomes labelling elf_exec_hop_seconds.
const (
	hopOK        = "ok"
	hopRetry     = "retry"
	hopRequeue   = "requeue"
	hopPermanent = "permanent"
)

// Spans exposes the fleet's span log (always non-nil), so drivers can
// export the stitched trace after a grid run.
func (f *Fleet) Spans() *obs.SpanLog { return f.spans }

// record appends one flight-recorder event when a ring is configured.
func (f *Fleet) record(e obs.Event) {
	if f.events != nil {
		f.events.Add(e)
	}
}

// observeHop feeds one dispatch attempt into the outcome-split histogram.
func (f *Fleet) observeHop(outcome string, d time.Duration) {
	if h := f.hopSeconds[outcome]; h != nil {
		h.Observe(d.Seconds())
	}
}

// probeLoop periodically health-checks every worker, quarantining ones
// that fail and reviving ones that recover.
func (f *Fleet) probeLoop() {
	defer f.wg.Done()
	t := time.NewTicker(f.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-f.stop:
			return
		case <-t.C:
			for _, w := range f.workers {
				was := w.healthy.Load()
				now := f.probe(w)
				w.setHealthy(now)
				if now && !was {
					f.record(obs.Event{Kind: obs.EventRevive, Worker: w.addr,
						Detail: "health check passed after quarantine"})
				}
			}
		}
	}
}

// probe is one liveness check.
func (f *Fleet) probe(w *worker) bool {
	ctx, cancel := context.WithTimeout(context.Background(), f.cfg.HealthInterval)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.addr+f.cfg.HealthPath, nil)
	if err != nil {
		return false
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return false
	}
	obs.DrainClose(resp.Body)
	return resp.StatusCode == http.StatusOK
}

// pick returns the next healthy worker round-robin, or nil when the
// whole fleet is quarantined.
func (f *Fleet) pick() *worker {
	n := uint64(len(f.workers))
	start := f.rr.Add(1)
	for i := uint64(0); i < n; i++ {
		if w := f.workers[(start+i)%n]; w.healthy.Load() {
			return w
		}
	}
	return nil
}

// backoff returns the jittered delay before attempt (1-based retry
// count): base·2^(attempt-1) capped at RetryMax, scaled by a random
// factor in [0.5, 1) so a burst of retries doesn't re-synchronise.
func (f *Fleet) backoff(attempt int) time.Duration {
	d := f.cfg.RetryBase << (attempt - 1)
	if d > f.cfg.RetryMax || d <= 0 {
		d = f.cfg.RetryMax
	}
	f.mu.Lock()
	jitter := 0.5 + f.rng.Float64()/2
	f.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}

// cellError is a classified dispatch failure.
type cellError struct {
	err        error
	permanent  bool // deterministic failure: retrying cannot change it
	quarantine bool // infrastructure failure: sideline the worker
}

func (e *cellError) Error() string { return e.err.Error() }
func (e *cellError) Unwrap() error { return e.err }

// errEnvelope is the elfd /v1 error body {"error":{code,message,detail}}.
type errEnvelope struct {
	Error struct {
		Code    string `json:"code"`
		Message string `json:"message"`
		Detail  string `json:"detail"`
	} `json:"error"`
}

// post dispatches one cell to one worker and classifies the outcome.
// hop, when non-nil, is the attempt's span: its identity crosses the wire
// as `traceparent` (stitching the worker into the coordinator's trace)
// and as `X-Request-ID` (one ID per attempt, joining worker access logs
// to this exact dispatch).
func (f *Fleet) post(ctx context.Context, w *worker, body []byte, hop *obs.Span) (eval.Result, *cellError) {
	w.inFlight.Add(1)
	defer w.inFlight.Add(-1)
	w.dispatched.Add(1)
	if w.mDispatched != nil {
		w.mDispatched.Inc()
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return eval.Result{}, &cellError{err: err, permanent: true}
	}
	req.Header.Set("Content-Type", "application/json")
	if hop != nil {
		req.Header.Set(obs.TraceparentHeader, hop.Traceparent())
		req.Header.Set("X-Request-ID", hop.ID.String())
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return eval.Result{}, &cellError{err: ctx.Err(), permanent: true}
		}
		return eval.Result{}, &cellError{err: fmt.Errorf("%s: %w", w.addr, err), quarantine: true}
	}
	// Bounded drain-before-close: the decoder stops at the end of the JSON
	// document, and error arms may abandon the body entirely; reading the
	// remainder out is what lets the transport reuse the connection.
	defer obs.DrainClose(resp.Body)

	if resp.StatusCode == http.StatusOK {
		var r eval.Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			return eval.Result{}, &cellError{
				err:        fmt.Errorf("%s: undecodable result: %w", w.addr, err),
				quarantine: true,
			}
		}
		return r, nil
	}

	var env errEnvelope
	msg := resp.Status
	code := ""
	if err := json.NewDecoder(resp.Body).Decode(&env); err == nil && env.Error.Message != "" {
		code = env.Error.Code
		msg = env.Error.Message
		if env.Error.Detail != "" {
			msg += ": " + env.Error.Detail
		}
	}
	werr := fmt.Errorf("%s: %s (%s)", w.addr, msg, resp.Status)
	switch {
	case code == "sim_failed" || (resp.StatusCode >= 400 && resp.StatusCode < 500):
		// The sim is deterministic: a cell the worker rejected or failed
		// on would fail identically anywhere. Don't blame the worker.
		return eval.Result{}, &cellError{err: werr, permanent: true}
	case resp.StatusCode == http.StatusServiceUnavailable:
		// Overloaded or draining, not broken — retry without quarantine.
		return eval.Result{}, &cellError{err: werr}
	default:
		return eval.Result{}, &cellError{err: werr, quarantine: true}
	}
}

// Run dispatches one cell: round-robin over healthy workers with bounded
// jittered retries, quarantine-and-requeue on infrastructure failure,
// and the local fallback once no worker is healthy. The whole Run is one
// "cell" span (a child of any span carried by ctx — the grid's root);
// every dispatch attempt is a "dispatch" child span whose identity
// travels to the worker as traceparent and X-Request-ID.
func (f *Fleet) Run(ctx context.Context, c eval.Cell) (result eval.Result, runErr error) {
	if f.closed.Load() {
		return eval.Result{}, errors.New("exec: fleet closed")
	}
	if err := c.Validate(); err != nil {
		return eval.Result{}, err
	}
	body, err := json.Marshal(c)
	if err != nil {
		return eval.Result{}, fmt.Errorf("exec: encode cell: %w", err)
	}

	cellName := c.Workload + "/" + c.Config.Name()
	key := cellKey(c)
	if f.cfg.Store != nil {
		if b, ok, _ := f.cfg.Store.Get(key); ok {
			var r eval.Result
			if err := json.Unmarshal(b, &r); err == nil {
				f.record(obs.Event{Kind: obs.EventCacheHit, Cell: cellName,
					Trace: traceOf(obs.SpanFromContext(ctx))})
				f.cells.Add(1)
				return r, nil
			}
		}
	}
	span := f.spans.StartSpan(obs.SpanFromContext(ctx), "cell")
	if span != nil {
		span.SetAttr("cell", cellName)
	}
	start := time.Now()
	defer func() {
		if span != nil {
			span.SetError(runErr)
			span.Finish()
		}
		if d := time.Since(start); runErr == nil && f.cfg.SlowCell > 0 && d > f.cfg.SlowCell {
			f.record(obs.Event{Kind: obs.EventSlowCell, Cell: cellName,
				Trace: traceOf(span), Seconds: d.Seconds(),
				Detail: fmt.Sprintf("exceeded %s threshold", f.cfg.SlowCell)})
		}
	}()
	ctx = obs.ContextWithSpan(ctx, span)

	var lastErr error
	for attempt := 1; attempt <= f.cfg.MaxAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			f.failed.Add(1)
			return eval.Result{}, err
		}
		w := f.pick()
		if w == nil {
			return f.runFallback(ctx, c, lastErr)
		}
		hop := f.spans.StartSpan(span, "dispatch")
		if hop != nil {
			hop.Worker = w.addr
			hop.SetAttr("cell", cellName)
			hop.SetAttr("attempt", strconv.Itoa(attempt))
		}
		hopStart := time.Now()
		r, cerr := f.post(ctx, w, body, hop)
		hopTime := time.Since(hopStart)
		if cerr == nil {
			if hop != nil {
				hop.Finish()
			}
			f.observeHop(hopOK, hopTime)
			f.record(obs.Event{Kind: obs.EventDispatch, Worker: w.addr, Cell: cellName,
				Trace: traceOf(span), Seconds: hopTime.Seconds()})
			f.cells.Add(1)
			if f.cellSeconds != nil {
				f.cellSeconds.Observe(time.Since(start).Seconds())
			}
			if f.cfg.Store != nil {
				if b, err := json.Marshal(r); err == nil {
					_ = f.cfg.Store.Put(key, b)
				}
			}
			return r, nil
		}
		if hop != nil {
			hop.SetError(cerr)
			hop.Finish()
		}
		lastErr = cerr
		if cerr.permanent {
			f.observeHop(hopPermanent, hopTime)
			f.record(obs.Event{Kind: obs.EventError, Worker: w.addr, Cell: cellName,
				Trace: traceOf(span), Detail: cerr.Error(), Seconds: hopTime.Seconds()})
			f.failed.Add(1)
			return eval.Result{}, fmt.Errorf("exec: cell %s: %w", cellName, cerr)
		}
		w.retried.Add(1)
		if w.mRetried != nil {
			w.mRetried.Inc()
		}
		if cerr.quarantine {
			f.observeHop(hopRequeue, hopTime)
			w.setHealthy(false)
			w.requeued.Add(1)
			if w.mRequeued != nil {
				w.mRequeued.Inc()
			}
			f.record(obs.Event{Kind: obs.EventQuarantine, Worker: w.addr, Cell: cellName,
				Trace: traceOf(span), Detail: cerr.Error()})
			f.record(obs.Event{Kind: obs.EventRequeue, Worker: w.addr, Cell: cellName,
				Trace: traceOf(span)})
			// The cell goes straight back in the queue: the next attempt
			// picks a different (healthy) worker, no backoff needed.
			continue
		}
		f.observeHop(hopRetry, hopTime)
		f.record(obs.Event{Kind: obs.EventRetry, Worker: w.addr, Cell: cellName,
			Trace: traceOf(span), Detail: cerr.Error(), Seconds: hopTime.Seconds()})
		select {
		case <-ctx.Done():
			f.failed.Add(1)
			return eval.Result{}, ctx.Err()
		case <-time.After(f.backoff(attempt)):
		}
	}
	// Retries exhausted without a permanent verdict — infrastructure
	// flapping. One last chance on the fallback before giving up.
	return f.runFallback(ctx, c, lastErr)
}

// traceOf extracts a span's trace ID as a string ("" for no span).
func traceOf(s *obs.Span) string {
	if s == nil {
		return ""
	}
	return s.Trace.String()
}

// runFallback degrades one cell to the local backend (or fails the cell
// when no fallback was configured).
func (f *Fleet) runFallback(ctx context.Context, c eval.Cell, cause error) (eval.Result, error) {
	cellName := c.Workload + "/" + c.Config.Name()
	if f.cfg.Fallback == nil {
		f.failed.Add(1)
		if cause == nil {
			cause = errors.New("no healthy workers")
		}
		f.record(obs.Event{Kind: obs.EventError, Cell: cellName,
			Trace: traceOf(obs.SpanFromContext(ctx)), Detail: cause.Error()})
		return eval.Result{}, fmt.Errorf("exec: fleet exhausted for cell %s: %w",
			cellName, cause)
	}
	f.fallback.Add(1)
	detail := "no healthy workers"
	if cause != nil {
		detail = cause.Error()
	}
	f.record(obs.Event{Kind: obs.EventFallback, Worker: "local", Cell: cellName,
		Trace: traceOf(obs.SpanFromContext(ctx)), Detail: detail})
	hop := f.spans.StartSpan(obs.SpanFromContext(ctx), "fallback")
	if hop != nil {
		hop.Worker = "local"
		hop.SetAttr("cell", cellName)
	}
	r, err := f.cfg.Fallback.Run(ctx, c)
	if hop != nil {
		hop.SetError(err)
		hop.Finish()
	}
	if err != nil {
		f.failed.Add(1)
		return eval.Result{}, err
	}
	f.cells.Add(1)
	return r, nil
}

// Stats snapshots the fleet, including each worker's ledger. The
// fallback's own counters are not merged in; Fallback counts how many
// cells it absorbed.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Backend:  "fleet",
		Cells:    f.cells.Load(),
		Failed:   f.failed.Load(),
		Fallback: f.fallback.Load(),
	}
	for _, w := range f.workers {
		st.Workers = append(st.Workers, WorkerStats{
			Addr:       w.addr,
			Healthy:    w.healthy.Load(),
			InFlight:   w.inFlight.Load(),
			Dispatched: w.dispatched.Load(),
			Retried:    w.retried.Load(),
			Requeued:   w.requeued.Load(),
		})
	}
	if f.cfg.Store != nil {
		st.Store = f.cfg.Store.Stats()
	}
	return st
}

// Close stops the health prober and closes the fallback backend.
func (f *Fleet) Close() error {
	if f.closed.Swap(true) {
		return nil
	}
	close(f.stop)
	f.wg.Wait()
	if f.cfg.Fallback != nil {
		return f.cfg.Fallback.Close()
	}
	return nil
}
