package exec

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestFleetPostReusesConnections forces a retriable 503 (with an error
// body) before the successful attempt and requires both hops to ride one
// TCP connection. If post closes the 503 body without draining it, the
// transport tears the connection down and the retry pays a second dial.
func TestFleetPostReusesConnections(t *testing.T) {
	mux := cellMux(t)
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cells" && calls.Add(1) == 1 {
			http.Error(w, `{"error":{"code":"busy","message":"draining"}}`,
				http.StatusServiceUnavailable)
			return
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	var dials atomic.Int32
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	defer tr.CloseIdleConnections()

	f, err := NewFleet(FleetConfig{
		Workers:        []string{srv.URL},
		Client:         &http.Client{Transport: tr},
		RetryBase:      time.Millisecond,
		HealthInterval: time.Hour, // keep the prober's dials out of the count
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	if _, err := f.Run(context.Background(), testCell()); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("worker saw %d cell posts, want 2 (503 then 200)", got)
	}
	if n := dials.Load(); n != 1 {
		t.Errorf("dispatch with one retry opened %d connections, want 1 (post is closing an undrained body)", n)
	}
}

// TestFleetCloseStopsGoroutines is the goroutine-leak regression gate:
// after Close, the prober goroutine must be gone and the process must
// return to its pre-fleet goroutine count. Run under -race in verify.sh.
func TestFleetCloseStopsGoroutines(t *testing.T) {
	srv := httptest.NewServer(cellMux(t))
	defer srv.Close()
	tr := &http.Transport{}
	client := &http.Client{Transport: tr}

	base := runtime.NumGoroutine()
	f, err := NewFleet(FleetConfig{
		Workers:        []string{srv.URL},
		Client:         client,
		HealthInterval: 5 * time.Millisecond, // let the prober actually cycle
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	time.Sleep(25 * time.Millisecond) // a few probe ticks
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	tr.CloseIdleConnections() // release the transport's per-conn goroutines

	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not return to baseline %d after Close (now %d):\n%s",
				base, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
