package exec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/sched"
	"elfetch/internal/store"
)

// LocalConfig sizes the in-process backend.
type LocalConfig struct {
	// Workers is the simulation pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued cells (0 = 1024 — generous, because a
	// grid dispatcher queues bursts and a fast-failing Submit would turn
	// a full queue into a failed cell).
	QueueDepth int
	// CacheSize bounds the result cache (0 = the sched default).
	CacheSize int
	// Metrics, when non-nil, receives the wrapped scheduler's
	// operational metric families.
	Metrics *obs.Registry
	// Probe, when non-nil, is attached to every cell's machine after
	// warmup (see eval.Params.Probe).
	Probe *pipeline.Probe
	// Events, when non-nil, receives flight-recorder events (cache
	// hit/miss, slow-cell, error).
	Events *obs.Ring
	// SlowCell, when positive, is the wall-clock threshold beyond which a
	// completed cell is recorded as a slow_cell event.
	SlowCell time.Duration
	// Store, when non-nil, is the persistent result store consulted under
	// the cell key before simulating and filled after: restarts and other
	// processes sharing the store skip completed cells entirely. The
	// backend does not own the store (the caller closes it).
	Store store.Store
}

// Local is the in-process Backend: cells run on a sched worker pool and
// identical cells coalesce in flight and are answered from the
// content-addressed result cache afterwards. It is behaviourally
// identical to the eval layer's built-in pool — same RunOne, same
// determinism — plus the cache.
type Local struct {
	sched    *sched.Scheduler
	probe    *pipeline.Probe
	events   *obs.Ring   // nil without LocalConfig.Events
	store    store.Store // nil without LocalConfig.Store
	slowCell time.Duration
	cells    atomic.Uint64
	failed   atomic.Uint64
}

// NewLocal starts an in-process backend sized by cfg.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return &Local{
		sched: sched.New(sched.Config{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			CacheSize:  cfg.CacheSize,
			Metrics:    cfg.Metrics,
		}),
		probe:    cfg.Probe,
		events:   cfg.Events,
		store:    cfg.Store,
		slowCell: cfg.SlowCell,
	}
}

// storeTask wraps a cell task with the persistent store: a stored result
// decodes without simulating (the scheduler still promotes it into its
// LRU), and a fresh simulation is written back for the next process.
// Store failures degrade to plain simulation — the store never blocks
// progress.
func storeTask(st store.Store, key string, run func(context.Context) (eval.Result, error)) func(context.Context) (any, error) {
	return func(ctx context.Context) (any, error) {
		if b, ok, _ := st.Get(key); ok {
			var r eval.Result
			if err := json.Unmarshal(b, &r); err == nil {
				return r, nil
			}
			// An undecodable value (format drift) is treated as a miss.
		}
		r, err := run(ctx)
		if err != nil {
			return nil, err
		}
		if b, err := json.Marshal(r); err == nil {
			_ = st.Put(key, b)
		}
		return r, nil
	}
}

// record appends one flight-recorder event when a ring is configured.
func (l *Local) record(e obs.Event) {
	if l.events != nil {
		l.events.Add(e)
	}
}

// cellKey content-addresses a cell. elfd's POST /v1/cells keys its jobs
// identically, so a worker's cache serves coordinator and direct traffic
// alike.
func cellKey(c eval.Cell) string { return sched.Key("cell", c) }

// Run executes one cell on the pool, waiting for completion or ctx.
func (l *Local) Run(ctx context.Context, c eval.Cell) (eval.Result, error) {
	if err := c.Validate(); err != nil {
		return eval.Result{}, err
	}
	cellName := c.Workload + "/" + c.Config.Name()
	trace := traceOf(obs.SpanFromContext(ctx))
	start := time.Now()
	key := cellKey(c)
	task := func(ctx context.Context) (any, error) {
		return eval.RunCell(ctx, c, l.probe)
	}
	if l.store != nil {
		task = storeTask(l.store, key, func(ctx context.Context) (eval.Result, error) {
			return eval.RunCell(ctx, c, l.probe)
		})
	}
	j, err := l.sched.Submit("cell "+cellName, key, task)
	if err != nil {
		l.failed.Add(1)
		l.record(obs.Event{Kind: obs.EventError, Worker: "local", Cell: cellName,
			Trace: trace, Detail: err.Error()})
		return eval.Result{}, err
	}
	st, err := j.Wait(ctx)
	if err != nil {
		l.failed.Add(1)
		return eval.Result{}, err
	}
	switch st.State {
	case sched.Done:
		r, ok := st.Result.(eval.Result)
		if !ok {
			l.failed.Add(1)
			return eval.Result{}, fmt.Errorf("exec: unexpected cell payload %T", st.Result)
		}
		kind := obs.EventCacheMiss
		if st.Cached {
			kind = obs.EventCacheHit
		}
		d := time.Since(start)
		l.record(obs.Event{Kind: kind, Worker: "local", Cell: cellName,
			Trace: trace, Seconds: d.Seconds()})
		if !st.Cached && l.slowCell > 0 && d > l.slowCell {
			l.record(obs.Event{Kind: obs.EventSlowCell, Worker: "local", Cell: cellName,
				Trace: trace, Seconds: d.Seconds(),
				Detail: fmt.Sprintf("exceeded %s threshold", l.slowCell)})
		}
		l.cells.Add(1)
		return r, nil
	case sched.Canceled:
		l.failed.Add(1)
		return eval.Result{}, context.Canceled
	default:
		l.failed.Add(1)
		l.record(obs.Event{Kind: obs.EventError, Worker: "local", Cell: cellName,
			Trace: trace, Detail: st.Error})
		return eval.Result{}, errors.New(st.Error)
	}
}

// Stats snapshots the backend, including the wrapped scheduler's pool and
// cache counters.
func (l *Local) Stats() Stats {
	ss := l.sched.Stats()
	s := Stats{
		Backend:   "local",
		Cells:     l.cells.Load(),
		Failed:    l.failed.Load(),
		Scheduler: &ss,
	}
	if l.store != nil {
		s.Store = l.store.Stats()
	}
	return s
}

// Close drains the pool (bounded, so a wedged simulation cannot hang
// process shutdown forever).
func (l *Local) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return l.sched.Shutdown(ctx)
}
