package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"elfetch/internal/eval"
	"elfetch/internal/obs"
	"elfetch/internal/pipeline"
	"elfetch/internal/sched"
)

// LocalConfig sizes the in-process backend.
type LocalConfig struct {
	// Workers is the simulation pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued cells (0 = 1024 — generous, because a
	// grid dispatcher queues bursts and a fast-failing Submit would turn
	// a full queue into a failed cell).
	QueueDepth int
	// CacheSize bounds the result cache (0 = the sched default).
	CacheSize int
	// Metrics, when non-nil, receives the wrapped scheduler's
	// operational metric families.
	Metrics *obs.Registry
	// Probe, when non-nil, is attached to every cell's machine after
	// warmup (see eval.Params.Probe).
	Probe *pipeline.Probe
}

// Local is the in-process Backend: cells run on a sched worker pool and
// identical cells coalesce in flight and are answered from the
// content-addressed result cache afterwards. It is behaviourally
// identical to the eval layer's built-in pool — same RunOne, same
// determinism — plus the cache.
type Local struct {
	sched  *sched.Scheduler
	probe  *pipeline.Probe
	cells  atomic.Uint64
	failed atomic.Uint64
}

// NewLocal starts an in-process backend sized by cfg.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 1024
	}
	return &Local{
		sched: sched.New(sched.Config{
			Workers:    cfg.Workers,
			QueueDepth: cfg.QueueDepth,
			CacheSize:  cfg.CacheSize,
			Metrics:    cfg.Metrics,
		}),
		probe: cfg.Probe,
	}
}

// cellKey content-addresses a cell. elfd's POST /v1/cells keys its jobs
// identically, so a worker's cache serves coordinator and direct traffic
// alike.
func cellKey(c eval.Cell) string { return sched.Key("cell", c) }

// Run executes one cell on the pool, waiting for completion or ctx.
func (l *Local) Run(ctx context.Context, c eval.Cell) (eval.Result, error) {
	if err := c.Validate(); err != nil {
		return eval.Result{}, err
	}
	label := fmt.Sprintf("cell %s/%s", c.Workload, c.Config.Name())
	j, err := l.sched.Submit(label, cellKey(c), func(ctx context.Context) (any, error) {
		return eval.RunCell(ctx, c, l.probe)
	})
	if err != nil {
		l.failed.Add(1)
		return eval.Result{}, err
	}
	st, err := j.Wait(ctx)
	if err != nil {
		l.failed.Add(1)
		return eval.Result{}, err
	}
	switch st.State {
	case sched.Done:
		r, ok := st.Result.(eval.Result)
		if !ok {
			l.failed.Add(1)
			return eval.Result{}, fmt.Errorf("exec: unexpected cell payload %T", st.Result)
		}
		l.cells.Add(1)
		return r, nil
	case sched.Canceled:
		l.failed.Add(1)
		return eval.Result{}, context.Canceled
	default:
		l.failed.Add(1)
		return eval.Result{}, errors.New(st.Error)
	}
}

// Stats snapshots the backend, including the wrapped scheduler's pool and
// cache counters.
func (l *Local) Stats() Stats {
	ss := l.sched.Stats()
	return Stats{
		Backend:   "local",
		Cells:     l.cells.Load(),
		Failed:    l.failed.Load(),
		Scheduler: &ss,
	}
}

// Close drains the pool (bounded, so a wedged simulation cannot hang
// process shutdown forever).
func (l *Local) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return l.sched.Shutdown(ctx)
}
