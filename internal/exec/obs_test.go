package exec

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"elfetch/internal/obs"
)

// TestFleetTraceAndRequestIDPropagation asserts the wire side of trace
// propagation: every POST /v1/cells carries a parseable traceparent whose
// TraceID is the grid's, and an X-Request-ID equal to the attempt span's
// ID — one fresh ID per attempt.
func TestFleetTraceAndRequestIDPropagation(t *testing.T) {
	var mu sync.Mutex
	var traceparents, requestIDs []string
	mux := cellMux(t)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/cells" {
			mu.Lock()
			traceparents = append(traceparents, r.Header.Get(obs.TraceparentHeader))
			requestIDs = append(requestIDs, r.Header.Get("X-Request-ID"))
			mu.Unlock()
		}
		mux.ServeHTTP(w, r)
	}))
	defer srv.Close()

	spans := obs.NewSpanLog(0)
	f, err := NewFleet(FleetConfig{Workers: []string{srv.URL}, Spans: spans, HealthInterval: time.Hour})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	root := spans.StartSpan(nil, "grid")
	ctx := obs.ContextWithSpan(context.Background(), root)
	for i := 0; i < 2; i++ {
		c := testCell()
		c.Warmup += uint64(i)
		if _, err := f.Run(ctx, c); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	root.Finish()

	mu.Lock()
	defer mu.Unlock()
	if len(traceparents) != 2 {
		t.Fatalf("saw %d dispatches, want 2", len(traceparents))
	}
	seenIDs := map[string]bool{}
	for i, tp := range traceparents {
		tr, sp, ok := obs.ParseTraceparent(tp)
		if !ok {
			t.Fatalf("dispatch %d: unparseable traceparent %q", i, tp)
		}
		if tr != root.Trace {
			t.Errorf("dispatch %d: trace %s, want grid trace %s", i, tr, root.Trace)
		}
		if requestIDs[i] != sp.String() {
			t.Errorf("dispatch %d: X-Request-ID %q != span id %s", i, requestIDs[i], sp)
		}
		if seenIDs[requestIDs[i]] {
			t.Errorf("dispatch %d: request id %q reused across attempts", i, requestIDs[i])
		}
		seenIDs[requestIDs[i]] = true
	}

	// Span topology: every cell span is a child of the grid root, every
	// dispatch span a child of its cell span, all under one TraceID.
	byID := map[obs.SpanID]obs.Span{}
	for _, s := range spans.Snapshot() {
		byID[s.ID] = s
	}
	var cells, dispatches int
	for _, s := range byID {
		if s.Trace != root.Trace {
			t.Errorf("span %s has trace %s, want %s", s.Name, s.Trace, root.Trace)
		}
		switch s.Name {
		case "cell":
			cells++
			if s.Parent != root.ID {
				t.Errorf("cell span parented to %s, want grid %s", s.Parent, root.ID)
			}
		case "dispatch":
			dispatches++
			parent, ok := byID[s.Parent]
			if !ok || parent.Name != "cell" {
				t.Errorf("dispatch span parented to %v, want a cell span", s.Parent)
			}
			if s.Worker != srv.URL {
				t.Errorf("dispatch span worker %q, want %q", s.Worker, srv.URL)
			}
		}
	}
	if cells != 2 || dispatches != 2 {
		t.Errorf("span census: %d cells, %d dispatches, want 2 and 2", cells, dispatches)
	}
}

// TestFleetRetrySpansAndEvents drives a quarantine-and-requeue through a
// failing worker and asserts the retry shows up everywhere it should:
// as an extra child dispatch span with an error, as quarantine/requeue
// flight-recorder events, and in the outcome-split hop histogram.
func TestFleetRetrySpansAndEvents(t *testing.T) {
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()
	good := httptest.NewServer(cellMux(t))
	defer good.Close()

	spans := obs.NewSpanLog(0)
	events := obs.NewRing(64)
	reg := obs.NewRegistry()
	f, err := NewFleet(FleetConfig{
		Workers:        []string{bad.URL, good.URL},
		Spans:          spans,
		Events:         events,
		Metrics:        reg,
		HealthInterval: time.Hour,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	root := spans.StartSpan(nil, "grid")
	ctx := obs.ContextWithSpan(context.Background(), root)
	for i := 0; i < 3; i++ {
		c := testCell()
		c.Warmup += uint64(i)
		if _, err := f.Run(ctx, c); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	root.Finish()

	var errSpans int
	for _, s := range spans.Snapshot() {
		if s.Name == "dispatch" && s.Err != "" {
			errSpans++
			if s.Worker != bad.URL {
				t.Errorf("failed dispatch span names worker %q, want %q", s.Worker, bad.URL)
			}
			if s.Trace != root.Trace {
				t.Errorf("failed dispatch span off-trace: %s", s.Trace)
			}
		}
	}
	if errSpans == 0 {
		t.Error("no failed dispatch span recorded for the quarantined attempt")
	}

	kinds := map[string]int{}
	for _, e := range events.Snapshot(0) {
		kinds[e.Kind]++
		if e.Trace != root.Trace.String() {
			t.Errorf("event %s carries trace %q, want %s", e.Kind, e.Trace, root.Trace)
		}
	}
	if kinds[obs.EventDispatch] != 3 {
		t.Errorf("dispatch events = %d, want 3", kinds[obs.EventDispatch])
	}
	if kinds[obs.EventQuarantine] == 0 || kinds[obs.EventRequeue] == 0 {
		t.Errorf("quarantine/requeue events missing: %v", kinds)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`elf_exec_hop_seconds_count{outcome="ok"} 3`,
		`elf_exec_hop_seconds_count{outcome="requeue"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("hop histogram missing %q:\n%s", want, sb.String())
		}
	}
}

func TestLocalEventsCacheHitMissAndSlowCell(t *testing.T) {
	events := obs.NewRing(16)
	l := NewLocal(LocalConfig{Workers: 1, Events: events, SlowCell: time.Nanosecond})
	defer l.Close()

	c := testCell()
	for i := 0; i < 2; i++ {
		if _, err := l.Run(context.Background(), c); err != nil {
			t.Fatalf("Run %d: %v", i, err)
		}
	}
	kinds := map[string]int{}
	for _, e := range events.Snapshot(0) {
		kinds[e.Kind]++
		if e.Worker != "local" {
			t.Errorf("local event names worker %q", e.Worker)
		}
	}
	if kinds[obs.EventCacheMiss] != 1 || kinds[obs.EventCacheHit] != 1 {
		t.Errorf("cache events = %v, want one miss then one hit", kinds)
	}
	// Any real simulation exceeds a 1ns threshold; the cached repeat must
	// not re-trigger it.
	if kinds[obs.EventSlowCell] != 1 {
		t.Errorf("slow_cell events = %d, want 1: %v", kinds[obs.EventSlowCell], kinds)
	}
}

// TestFleetSpanStitchCanonicalExportDeterministic runs the same cell
// sequence twice against the same 3-worker fleet, each pass with a fresh
// unseeded span log, and asserts the canonical Chrome exports are
// byte-identical: counter-allocated IDs plus logical timestamps make the
// stitched trace a golden-diffable artifact.
func TestFleetSpanStitchCanonicalExportDeterministic(t *testing.T) {
	var workers []string
	for i := 0; i < 3; i++ {
		srv := httptest.NewServer(cellMux(t))
		t.Cleanup(srv.Close)
		workers = append(workers, srv.URL)
	}

	export := func() string {
		spans := obs.NewSpanLog(0)
		f, err := NewFleet(FleetConfig{Workers: workers, Spans: spans, HealthInterval: time.Hour})
		if err != nil {
			t.Fatalf("NewFleet: %v", err)
		}
		defer f.Close()
		root := spans.StartSpan(nil, "grid")
		ctx := obs.ContextWithSpan(context.Background(), root)
		for i := 0; i < 4; i++ {
			c := testCell()
			c.Warmup += uint64(i)
			if _, err := f.Run(ctx, c); err != nil {
				t.Fatalf("Run %d: %v", i, err)
			}
		}
		root.Finish()
		var sb strings.Builder
		if err := obs.WriteChromeTrace(&sb, spans.Snapshot(), true); err != nil {
			t.Fatalf("WriteChromeTrace: %v", err)
		}
		return sb.String()
	}

	first, second := export(), export()
	if first != second {
		t.Fatalf("canonical exports differ across runs:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	// The export must place all three workers (plus the coordinator) on
	// the timeline by name.
	for _, w := range append([]string{"coordinator"}, workers...) {
		if !strings.Contains(first, w) {
			t.Errorf("canonical export missing process %q", w)
		}
	}
}

// TestFleetFallbackEvent asserts the degraded path is visible in the
// flight recorder.
func TestFleetFallbackEvent(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()

	events := obs.NewRing(16)
	f, err := NewFleet(FleetConfig{
		Workers:        []string{dead.URL},
		Fallback:       NewLocal(LocalConfig{Workers: 1}),
		Events:         events,
		HealthInterval: time.Hour,
		MaxAttempts:    2,
		RetryBase:      time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewFleet: %v", err)
	}
	defer f.Close()

	if _, err := f.Run(context.Background(), testCell()); err != nil {
		t.Fatalf("Run should degrade to fallback: %v", err)
	}
	var sawFallback bool
	for _, e := range events.Snapshot(0) {
		if e.Kind == obs.EventFallback {
			sawFallback = true
			if e.Worker != "local" || e.Detail == "" {
				t.Errorf("fallback event = %+v", e)
			}
		}
	}
	if !sawFallback {
		t.Error("no fallback event recorded")
	}
}
