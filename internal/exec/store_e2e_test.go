package exec

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"elfetch/internal/eval"
	"elfetch/internal/store"
)

// figure6Params is the laptop-scale grid the warm-restart test runs twice.
func figure6Params(r eval.CellRunner) eval.Params {
	return eval.Params{Warmup: 1_000, Measure: 4_000, Parallel: 2, Runner: r}
}

// diskStats extracts the disk tier from a backend's stats.
func diskStats(t *testing.T, s Stats) store.TierStats {
	t.Helper()
	for _, ts := range s.Store {
		if ts.Tier == "disk" {
			return ts
		}
	}
	t.Fatalf("no disk tier in stats: %+v", s.Store)
	return store.TierStats{}
}

// TestWarmRestartE2E is the acceptance gate for the persistent store: a
// full Figure 6 grid run against a store directory, then — after closing
// the store and backend, as a process restart would — a second run over a
// freshly opened store on the same directory must answer every cell from
// disk (zero re-simulations) and render a byte-identical table.
func TestWarmRestartE2E(t *testing.T) {
	dir := t.TempDir()

	run := func() (string, string, store.TierStats) {
		d, err := store.Open(store.DiskConfig{Dir: dir})
		if err != nil {
			t.Fatalf("store.Open: %v", err)
		}
		l := NewLocal(LocalConfig{Workers: 2, Store: d})
		tab, res, err := eval.Figure6Table(context.Background(), figure6Params(l))
		if err != nil {
			t.Fatalf("Figure6Table: %v", err)
		}
		var rendered bytes.Buffer
		if err := tab.WriteText(&rendered); err != nil {
			t.Fatalf("WriteText: %v", err)
		}
		resJSON, err := json.Marshal(res)
		if err != nil {
			t.Fatalf("marshal results: %v", err)
		}
		st := diskStats(t, l.Stats())
		if err := l.Close(); err != nil {
			t.Fatalf("backend Close: %v", err)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("store Close: %v", err)
		}
		return rendered.String(), string(resJSON), st
	}

	tab1, res1, cold := run()
	if cold.Puts == 0 {
		t.Fatalf("cold run stored nothing: %+v", cold)
	}
	if cold.Hits != 0 {
		t.Fatalf("cold run hit a fresh store: %+v", cold)
	}

	tab2, res2, warm := run()
	if warm.Puts != 0 {
		t.Fatalf("warm restart re-simulated %d cells: %+v", warm.Puts, warm)
	}
	if warm.Hits != cold.Puts {
		t.Fatalf("warm restart answered %d cells from disk, want %d: %+v",
			warm.Hits, cold.Puts, warm)
	}
	if warm.Errors != 0 {
		t.Fatalf("warm restart saw store errors: %+v", warm)
	}
	if res1 != res2 {
		t.Fatalf("warm-restart results differ:\ncold: %s\nwarm: %s", res1, res2)
	}
	if tab1 != tab2 {
		t.Fatalf("warm-restart table differs:\ncold:\n%s\nwarm:\n%s", tab1, tab2)
	}
}
