package frontend

import (
	"elfetch/internal/bpred"
	"elfetch/internal/btb"
	"elfetch/internal/isa"
)

// DCF is the decoupled fetch-address generator: the BP1/BP2 stages of
// Figure 1. Each non-bubble cycle it looks up the BTB with the current
// BPred PC, maps branch predictions onto the entry, and enqueues one FAQ
// block. Bubble accounting follows Section III-B2 exactly:
//
//   - L0 BTB hit: the 0-cycle loop lets the next BPred PC issue next cycle
//     with predictions from TAGE's bimodal component; if the tagged TAGE
//     components override the bimodal, BP2 resteers BP1 — one bubble.
//     Indirect targets from the L0 BTC or the RAS are assumed fast enough
//     to hide the bubble; an L0-BTC/RAS miss exposes the full ITTAGE
//     latency — three bubbles.
//   - L1 BTB hit: one bubble on a predicted-taken terminator, and one
//     bubble when the entry tracks fewer than MaxInsts instructions (the
//     speculative PC+16 proxy fallthrough was wrong). Indirect: one bubble
//     when the L0 BTC/RAS provides the target (like a direct taken
//     branch), three when ITTAGE must.
//   - L2 BTB hit: two additional bubbles (3-cycle access) on top of the
//     L1 rules.
//   - BTB miss: enqueue a sequential PC+MaxInsts guess each cycle.
type DCF struct {
	BTB  *btb.BTB
	Tage *bpred.TAGE
	IT   *bpred.ITTAGE
	BTC  *bpred.BTC
	RAS  *bpred.RAS

	// Hist is the DCF's speculative history (checkpointed per branch).
	Hist bpred.History

	// FAQ is the decoupling queue.
	FAQ *FAQ

	// BPredToFAQ is the latency (cycles) from block generation in BP1 to
	// consumability by fetch: 3 in the paper's 3-stage front (BP1, BP2,
	// FAQ) — the extra depth every flush pays and ELF hides (Figure 3).
	BPredToFAQ uint64

	pc      isa.Addr
	bubbles int
	halted  bool

	// predecoder, when set, resolves BTB misses from cached instruction
	// bytes (Boomerang-lite; Section VI-C / [11]).
	predecoder Predecoder

	// Stats
	Blocks        uint64
	SeqBlocks     uint64
	BubbleCount   uint64
	PredecodeHits uint64
	PredecodeMiss uint64
}

// NewDCF wires the generator; callers share the BTB/predictor instances
// with retire-time update logic.
func NewDCF(b *btb.BTB, tage *bpred.TAGE, it *bpred.ITTAGE, btc *bpred.BTC, ras *bpred.RAS, faq *FAQ) *DCF {
	return &DCF{BTB: b, Tage: tage, IT: it, BTC: btc, RAS: ras, FAQ: faq, BPredToFAQ: 3}
}

// PC returns the current BPred PC.
func (d *DCF) PC() isa.Addr { return d.pc }

// Halted reports whether the generator is waiting for a resteer (e.g. an
// unpredictable indirect with no target anywhere).
func (d *DCF) Halted() bool { return d.halted }

// Resteer restarts BP1 at pc with repaired speculative state. The FAQ is
// cleared by the caller when the resteer implies a full front-end squash
// (it does not when decode redirects only the generator).
func (d *DCF) Resteer(pc isa.Addr, h bpred.History, rasCp *bpred.RASCheckpoint) {
	d.pc = pc
	d.Hist = h
	if rasCp != nil {
		d.RAS.Restore(*rasCp)
	}
	// The resteer takes effect next cycle: one bubble before BP1 restarts.
	d.bubbles = 1
	d.halted = false
}

// Cycle advances BP1 by one cycle at the given time, possibly enqueuing a
// block.
func (d *DCF) Cycle(now uint64) {
	if d.halted || d.FAQ.Full() {
		return
	}
	if d.bubbles > 0 {
		d.bubbles--
		d.BubbleCount++
		return
	}

	entry, level := d.BTB.Lookup(d.pc)
	if level == btb.Miss && d.predecoder != nil {
		// Boomerang-lite: rebuild the entry from cached instruction
		// bytes instead of guessing sequentially; costs the probe +
		// predecode latency but avoids the Decode→BP1 loop.
		if e, ok := d.predecoder.Predecode(d.pc); ok {
			d.BTB.Install(e)
			entry, level = e, btb.L2
			d.bubbles += PredecodeBubbles
			d.PredecodeHits++
		} else {
			d.PredecodeMiss++
		}
	}
	if level == btb.Miss {
		// Sequential guessing past a BTB miss (Section III-C).
		blk := FAQBlock{
			Start:   d.pc,
			Count:   btb.MaxInsts,
			NextPC:  d.pc.Plus(btb.MaxInsts),
			SeqMiss: true,
			Level:   btb.Miss,
			ReadyAt: now + d.BPredToFAQ,
		}
		d.pc = blk.NextPC
		d.FAQ.Push(blk)
		d.Blocks++
		d.SeqBlocks++
		return
	}

	blk := FAQBlock{
		Start:   d.pc,
		Count:   int(entry.Count),
		NextPC:  entry.FallThrough(),
		Level:   level,
		ReadyAt: now + d.BPredToFAQ,
	}

	bimodalOverride := false // tagged TAGE overrode the bimodal on the L0 path
	indirectSlow := false    // ITTAGE (not L0 BTC/RAS) provided the target
	indirectFast := false    // L0 BTC/RAS provided the target

	for i := 0; i < int(entry.NumBranches); i++ {
		src := entry.Branches[i]
		br := BlockBranch{
			Offset: int(src.Offset),
			Class:  src.Class,
			HistCp: d.Hist,
			RASCp:  d.RAS.Checkpoint(),
		}
		brPC := d.pc.Plus(br.Offset)

		switch {
		case src.Class == isa.CondBranch:
			br.Tage = d.Tage.Predict(brPC, d.Hist)
			br.HasTage = true
			br.PredTaken = br.Tage.Taken
			br.Target = src.Target
			if level == btb.L0 && br.Tage.Disagree() {
				bimodalOverride = true
			}
			d.Hist.UpdateCond(uint64(brPC), br.PredTaken)

		case src.Class == isa.Ret:
			br.PredTaken = true
			if ra, ok := d.RAS.Pop(); ok {
				br.Target = ra
				indirectFast = true
			} else {
				// Underflow: fall back to ITTAGE.
				br.IT = d.IT.Predict(brPC, d.Hist)
				br.HasIT = true
				br.Target = br.IT.Target
				indirectSlow = true
			}
			d.Hist.UpdateIndirect(uint64(br.Target))

		case src.Class.IsIndirect(): // indirect branch / indirect call
			br.PredTaken = true
			if tgt, ok := d.BTC.Predict(brPC); ok {
				br.Target = tgt
				indirectFast = true
			} else {
				br.IT = d.IT.Predict(brPC, d.Hist)
				br.HasIT = true
				br.Target = br.IT.Target
				indirectSlow = true
			}
			if src.Class.IsCall() {
				d.RAS.Push(brPC.Next())
			}
			d.Hist.UpdateIndirect(uint64(br.Target))

		default: // direct unconditional: jump or call
			br.PredTaken = true
			br.Target = src.Target
			if src.Class.IsCall() {
				d.RAS.Push(brPC.Next())
			}
		}

		blk.Brs[blk.NumBr] = br
		blk.NumBr++

		if br.PredTaken {
			blk.Count = br.Offset + 1
			blk.TermTaken = true
			if br.Target != 0 {
				blk.NextPC = br.Target
			} else {
				// No target from any predictor: the generator
				// cannot follow; halt until resteered.
				blk.NextPC = 0
			}
			break
		}
	}

	// Bubble accounting.
	switch {
	case blk.TermTaken && indirectSlow:
		d.bubbles += 3
	case blk.TermTaken && indirectFast:
		if level != btb.L0 {
			d.bubbles++
		}
	case blk.TermTaken: // direct or conditional taken
		if level != btb.L0 {
			d.bubbles++
		}
	default: // fallthrough termination
		if level != btb.L0 && blk.Count < btb.MaxInsts {
			d.bubbles++ // proxy fallthrough (PC+16) was wrong
		}
	}
	if level == btb.L0 && bimodalOverride {
		d.bubbles++ // BP2 resteers BP1
	}
	if level == btb.L2 {
		d.bubbles += 2 // 3-cycle L2 BTB access
	}

	d.pc = blk.NextPC
	if blk.NextPC == 0 {
		d.halted = true
	}
	d.FAQ.Push(blk)
	d.Blocks++
}

// Halt stops address generation until the next Resteer (no target is known
// anywhere — e.g. an indirect branch that missed every predictor must wait
// for execution).
func (d *DCF) Halt() { d.halted = true }
