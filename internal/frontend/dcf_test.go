package frontend

import (
	"testing"

	"elfetch/internal/bpred"
	"elfetch/internal/btb"
	"elfetch/internal/isa"
)

type rig struct {
	btb  *btb.BTB
	tage *bpred.TAGE
	it   *bpred.ITTAGE
	btc  *bpred.BTC
	ras  *bpred.RAS
	faq  *FAQ
	dcf  *DCF
	now  uint64
}

func newRig(cfg btb.Config) *rig {
	r := &rig{
		btb:  btb.New(cfg),
		tage: bpred.NewTAGE(),
		it:   bpred.NewITTAGE(),
		btc:  bpred.NewBTC(64),
		ras:  bpred.NewRAS(32),
		faq:  NewFAQ(32),
	}
	r.dcf = NewDCF(r.btb, r.tage, r.it, r.btc, r.ras, r.faq)
	return r
}

// run advances n cycles, draining the FAQ so it never back-pressures, and
// returns the blocks produced.
func (r *rig) run(n int) []FAQBlock {
	var out []FAQBlock
	for i := 0; i < n; i++ {
		r.dcf.Cycle(r.now)
		r.now++
		for r.faq.Len() > 0 {
			out = append(out, *r.faq.Head())
			r.faq.Pop()
		}
	}
	return out
}

// jumpPair installs A -> B -> A unconditional-jump entries.
func jumpPair(r *rig) (a, b isa.Addr) {
	a, b = isa.Addr(0x1000), isa.Addr(0x2000)
	r.btb.Install(btb.Entry{
		Start: a, Count: 2, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 1, Class: isa.Jump, Target: b}},
	})
	r.btb.Install(btb.Entry{
		Start: b, Count: 2, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 1, Class: isa.Jump, Target: a}},
	})
	return a, b
}

func TestDCFL0HitZeroBubbles(t *testing.T) {
	r := newRig(btb.DefaultConfig())
	a, _ := jumpPair(r)
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(6) // absorb the resteer bubble and warm both entries into L0
	blocks := r.run(10)
	// Steady state: one block per cycle — the Figure 2 "L0 BTB hit" case.
	if len(blocks) != 10 {
		t.Errorf("L0 steady state produced %d blocks in 10 cycles, want 10", len(blocks))
	}
}

func TestDCFTakenBubbleWithoutL0(t *testing.T) {
	cfg := btb.DefaultConfig()
	cfg.L0Entries = 0
	r := newRig(cfg)
	a, _ := jumpPair(r)
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(6)
	blocks := r.run(10)
	// L1 hit + taken terminator = 1 bubble per block: 5 blocks / 10 cycles
	// — Figure 2's "L1 BTB hit" timing.
	if len(blocks) != 5 {
		t.Errorf("L1 steady state produced %d blocks in 10 cycles, want 5", len(blocks))
	}
}

func TestDCFShortFallthroughBubble(t *testing.T) {
	cfg := btb.DefaultConfig()
	cfg.L0Entries = 0
	r := newRig(cfg)
	// Chain of 8-instruction fallthrough entries (no branches): the
	// PC+16 proxy is wrong each time -> 1 bubble each.
	start := isa.Addr(0x4000)
	pc := start
	for i := 0; i < 8; i++ {
		r.btb.Install(btb.Entry{Start: pc, Count: 8})
		pc = pc.Plus(8)
	}
	r.dcf.Resteer(start, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(8)
	if len(blocks) != 4 {
		t.Errorf("short-fallthrough chain: %d blocks in 8 cycles, want 4", len(blocks))
	}
}

func TestDCFFullFallthroughNoBubble(t *testing.T) {
	cfg := btb.DefaultConfig()
	cfg.L0Entries = 0
	r := newRig(cfg)
	start := isa.Addr(0x8000)
	pc := start
	for i := 0; i < 10; i++ {
		r.btb.Install(btb.Entry{Start: pc, Count: 16})
		pc = pc.Plus(16)
	}
	r.dcf.Resteer(start, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(8)
	// 16-instruction fallthrough entries: the PC+16 proxy is right, no
	// bubbles even from L1.
	if len(blocks) != 8 {
		t.Errorf("full-fallthrough chain: %d blocks in 8 cycles, want 8", len(blocks))
	}
}

func TestDCFBTBMissSequentialBlocks(t *testing.T) {
	r := newRig(btb.DefaultConfig())
	r.dcf.Resteer(0x100000, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(5)
	if len(blocks) != 5 {
		t.Fatalf("%d blocks in 5 cycles on BTB miss, want 5 (sequential guessing)", len(blocks))
	}
	for i, b := range blocks {
		if !b.SeqMiss || b.Count != btb.MaxInsts {
			t.Errorf("block %d: %+v, want SeqMiss 16-inst", i, b)
		}
		if b.Start != isa.Addr(0x100000).Plus(i*btb.MaxInsts) {
			t.Errorf("block %d start = %v", i, b.Start)
		}
	}
}

func TestDCFIndirectBTCFastVsITTAGESlow(t *testing.T) {
	cfg := btb.DefaultConfig()
	cfg.L0Entries = 0
	r := newRig(cfg)
	a, b := isa.Addr(0x1000), isa.Addr(0x2000)
	r.btb.Install(btb.Entry{
		Start: a, Count: 1, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 0, Class: isa.IndirectBranch}},
	})
	r.btb.Install(btb.Entry{
		Start: b, Count: 1, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 0, Class: isa.Jump, Target: a}},
	})

	// Cold BTC, cold ITTAGE: ITTAGE path (3 bubbles) and no target at
	// all -> the generator halts awaiting resteer.
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(2)
	if !r.dcf.Halted() {
		t.Fatal("generator should halt with no indirect target anywhere")
	}

	// Train the BTC: now the a-entry resolves in 1 bubble like a direct
	// taken branch.
	r.btc.Update(a, b)
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(8)
	// Cycle pattern: a (1 bubble), b (1 bubble) -> 2 blocks per 4 cycles.
	if len(blocks) != 4 {
		t.Errorf("BTC-hit steady state: %d blocks in 8 cycles, want 4", len(blocks))
	}

	// ITTAGE path: clear BTC by conflicting update, train ITTAGE.
	r2 := newRig(cfg)
	r2.btb.Install(btb.Entry{
		Start: a, Count: 1, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 0, Class: isa.IndirectBranch}},
	})
	r2.btb.Install(btb.Entry{
		Start: b, Count: 1, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 0, Class: isa.Jump, Target: a}},
	})
	for i := 0; i < 50; i++ {
		p := r2.it.Predict(a, bpred.History{})
		r2.it.Update(a, p, b)
	}
	r2.dcf.Resteer(a, bpred.History{}, nil)
	r2.run(1) // resteer bubble
	blocks = r2.run(12)
	// a costs 3 bubbles (ITTAGE), b costs 1 (direct, L1): 2 blocks / 6
	// cycles.
	if len(blocks) != 4 {
		t.Errorf("ITTAGE steady state: %d blocks in 12 cycles, want 4", len(blocks))
	}
}

func TestDCFCallPushesAndRetPops(t *testing.T) {
	r := newRig(btb.DefaultConfig())
	caller, callee := isa.Addr(0x1000), isa.Addr(0x3000)
	// caller: 2 insts, call at offset 1 -> callee; callee: ret at offset 0.
	r.btb.Install(btb.Entry{
		Start: caller, Count: 2, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 1, Class: isa.Call, Target: callee}},
	})
	r.btb.Install(btb.Entry{
		Start: callee, Count: 1, NumBranches: 1, Term: btb.TermUncond,
		Branches: [2]btb.Branch{{Offset: 0, Class: isa.Ret}},
	})
	r.dcf.Resteer(caller, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(6)
	if len(blocks) < 3 {
		t.Fatalf("only %d blocks generated", len(blocks))
	}
	if blocks[0].NextPC != callee {
		t.Errorf("call block NextPC = %v, want %v", blocks[0].NextPC, callee)
	}
	// The return should pop the pushed fallthrough: caller+2 insts.
	wantRA := caller.Plus(2)
	if blocks[1].NextPC != wantRA {
		t.Errorf("ret block NextPC = %v, want %v (popped RAS)", blocks[1].NextPC, wantRA)
	}
	// And the third block resumes at the return address.
	if blocks[2].Start != wantRA {
		t.Errorf("post-return block start = %v, want %v", blocks[2].Start, wantRA)
	}
}

func TestDCFCondUsesTAGEAndCheckpoints(t *testing.T) {
	r := newRig(btb.DefaultConfig())
	a := isa.Addr(0x1000)
	tgt := isa.Addr(0x5000)
	r.btb.Install(btb.Entry{
		Start: a, Count: 4, NumBranches: 1,
		Branches: [2]btb.Branch{{Offset: 3, Class: isa.CondBranch, Target: tgt}},
	})
	r.btb.Install(btb.Entry{Start: a.Plus(4), Count: 16})
	r.btb.Install(btb.Entry{Start: tgt, Count: 16})

	// Train TAGE to predict taken at a+3.
	brPC := a.Plus(3)
	for i := 0; i < 64; i++ {
		p := r.tage.Predict(brPC, r.dcf.Hist)
		r.tage.Update(brPC, p, true)
	}
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(1) // resteer bubble
	blocks := r.run(3)
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	b := blocks[0]
	if !b.TermTaken || b.NextPC != tgt || b.Count != 4 {
		t.Fatalf("cond-taken block = %+v", b)
	}
	br := b.TakenBranch()
	if br == nil || !br.HasTage {
		t.Fatal("taken branch missing TAGE payload")
	}
	// The history checkpoint must predate the branch's own update.
	if br.HistCp.GHR != 0 {
		t.Errorf("checkpoint GHR = %x, want pre-branch value 0", br.HistCp.GHR)
	}
	if r.dcf.Hist.GHR&1 != 1 {
		t.Error("speculative history not updated with the taken prediction")
	}
}

func TestFAQRingBehaviour(t *testing.T) {
	q := NewFAQ(4)
	for i := 0; i < 4; i++ {
		q.Push(FAQBlock{Start: isa.Addr(0x1000 + i*64)})
	}
	if !q.Full() {
		t.Fatal("queue should be full")
	}
	if q.At(2).Start != 0x1080 {
		t.Errorf("At(2) = %v", q.At(2).Start)
	}
	q.Pop()
	q.Push(FAQBlock{Start: 0x9000})
	if q.Head().Start != 0x1040 {
		t.Errorf("head = %v", q.Head().Start)
	}
	if q.At(3).Start != 0x9000 {
		t.Errorf("wrap-around At(3) = %v", q.At(3).Start)
	}
	if q.At(4) != nil {
		t.Error("At out of range should be nil")
	}
	q.Clear()
	if q.Len() != 0 || q.Head() != nil {
		t.Error("Clear did not empty")
	}
}

func TestFAQOverflowPanics(t *testing.T) {
	q := NewFAQ(2)
	q.Push(FAQBlock{})
	q.Push(FAQBlock{})
	defer func() {
		if recover() == nil {
			t.Error("overflow did not panic")
		}
	}()
	q.Push(FAQBlock{})
}

func TestDCFBackpressureWhenFAQFull(t *testing.T) {
	r := newRig(btb.DefaultConfig())
	r.dcf.Resteer(0x100000, bpred.History{}, nil)
	for i := 0; i < 101; i++ {
		r.dcf.Cycle(uint64(i))
	}
	if r.faq.Len() != r.faq.Cap() {
		t.Errorf("FAQ len = %d, want %d (full)", r.faq.Len(), r.faq.Cap())
	}
	if got := r.dcf.Blocks; got != uint64(r.faq.Cap()) {
		t.Errorf("generated %d blocks, want exactly FAQ capacity %d", got, r.faq.Cap())
	}
}

func TestDCFResteerTiming(t *testing.T) {
	cfg := btb.DefaultConfig()
	cfg.L0Entries = 0
	r := newRig(cfg)
	a, _ := jumpPair(r)
	r.dcf.Resteer(a, bpred.History{}, nil)
	r.run(2) // bubble + first block (schedules a taken bubble)
	r.dcf.Resteer(a, bpred.History{GHR: 0xABC}, nil)
	if r.dcf.Hist.GHR != 0xABC {
		t.Error("history not restored on resteer")
	}
	// Resteer replaces any pending bubbles with exactly one restart
	// bubble: no block next cycle, then one per the L1 cadence.
	if blocks := r.run(1); len(blocks) != 0 {
		t.Error("block generated during the resteer bubble")
	}
	if blocks := r.run(1); len(blocks) != 1 {
		t.Error("BP1 did not restart after the resteer bubble")
	}
}
