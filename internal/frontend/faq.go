// Package frontend implements the decoupled fetching (DCF) infrastructure
// of Section III and Figure 1: the BP1/BP2 address-generation stages built
// on the 3-level BTB and the TAGE/ITTAGE/BTC/RAS predictors, and the Fetch
// Address Queue that decouples them from instruction retrieval.
package frontend

import (
	"elfetch/internal/bpred"
	"elfetch/internal/btb"
	"elfetch/internal/isa"
)

// BlockBranch is one predicted branch inside an FAQ block, in program
// order. It carries everything needed later: the update payloads for the
// predictors and the checkpoints to restore on a flush through this branch
// (the paper's checkpoint-queue payload, Section IV-D1).
type BlockBranch struct {
	// Offset of the branch from the block start, in instructions.
	Offset int
	Class  isa.Class
	// PredTaken is the predicted direction (true for unconditional).
	PredTaken bool
	// Target is the predicted target when PredTaken.
	Target isa.Addr
	// Tage/IT are the predictor read-outs to hand back at update time.
	Tage bpred.TAGEPred
	IT   bpred.ITTAGEPred
	// HistCp/RASCp snapshot speculative state *before* this branch.
	HistCp bpred.History
	RASCp  bpred.RASCheckpoint
	// HasTage/HasIT say which payloads are valid.
	HasTage, HasIT bool
}

// FAQBlock is one Fetch Address Queue entry: a run of sequential
// instructions, the branches predicted inside it, and the next fetch PC.
type FAQBlock struct {
	// Start is the first instruction address.
	Start isa.Addr
	// Count is the number of sequential instructions, >= 1.
	Count int
	// NumBr and Brs list predicted branches inside the block.
	NumBr int
	Brs   [btb.MaxBranches]BlockBranch
	// TermTaken: the block ends because its last listed branch is
	// predicted taken (the "cause of termination" the L-ELF resync
	// comparison needs, Section IV-B1).
	TermTaken bool
	// NextPC is the predicted address of the instruction after this
	// block (branch target or fallthrough).
	NextPC isa.Addr
	// SeqMiss marks blocks generated while missing the BTB: pure
	// sequential guesses that decode will likely have to correct.
	SeqMiss bool
	// Level is the BTB level that served the block (btb.Miss for
	// SeqMiss blocks).
	Level btb.Level
	// ReadyAt is the cycle the block reaches the FAQ stage and becomes
	// consumable by fetch (BP1→FAQ is 2 cycles after generation).
	ReadyAt uint64
}

// End returns the address one past the block.
func (b *FAQBlock) End() isa.Addr { return b.Start.Plus(b.Count) }

// TakenBranch returns the terminating taken branch, if TermTaken.
func (b *FAQBlock) TakenBranch() *BlockBranch {
	if !b.TermTaken || b.NumBr == 0 {
		return nil
	}
	return &b.Brs[b.NumBr-1]
}

// FAQ is the fetch address queue (Table II: 32-entry FIFO).
type FAQ struct {
	blocks []FAQBlock
	head   int
	n      int
	hw     int // high-water mark of n since construction/ResetHighWater
}

// NewFAQ returns a queue with the given capacity.
func NewFAQ(capacity int) *FAQ {
	return &FAQ{blocks: make([]FAQBlock, capacity)}
}

// Len returns the number of queued blocks.
func (q *FAQ) Len() int { return q.n }

// Cap returns the capacity.
func (q *FAQ) Cap() int { return len(q.blocks) }

// Full reports whether another block can be pushed.
func (q *FAQ) Full() bool { return q.n == len(q.blocks) }

// Push enqueues a block; the queue must not be full.
func (q *FAQ) Push(b FAQBlock) {
	if q.Full() {
		//lint:allow panic ring invariant: the DCF checks Full before pushing; overflow means a modeling bug
		panic("frontend: FAQ overflow")
	}
	q.blocks[(q.head+q.n)%len(q.blocks)] = b
	q.n++
	if q.n > q.hw {
		q.hw = q.n
	}
}

// HighWater returns the deepest occupancy observed since construction (or
// the last ResetHighWater) — the summary companion to the per-cycle
// occupancy distribution a pipeline.Probe samples.
func (q *FAQ) HighWater() int { return q.hw }

// ResetHighWater restarts high-water tracking (post-warmup measurement).
func (q *FAQ) ResetHighWater() { q.hw = q.n }

// Head returns the oldest block, or nil if empty.
func (q *FAQ) Head() *FAQBlock {
	if q.n == 0 {
		return nil
	}
	return &q.blocks[q.head]
}

// At returns the i-th oldest block (0 = head); nil if out of range. The
// FAQ prefetcher walks blocks older-to-younger with it.
func (q *FAQ) At(i int) *FAQBlock {
	if i < 0 || i >= q.n {
		return nil
	}
	return &q.blocks[(q.head+i)%len(q.blocks)]
}

// Pop removes the oldest block.
func (q *FAQ) Pop() {
	if q.n == 0 {
		//lint:allow panic ring invariant: fetch checks Empty before popping; underflow means a modeling bug
		panic("frontend: FAQ underflow")
	}
	q.head = (q.head + 1) % len(q.blocks)
	q.n--
}

// Clear empties the queue (front-end flush).
func (q *FAQ) Clear() {
	q.head, q.n = 0, 0
}
