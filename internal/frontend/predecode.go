package frontend

import (
	"elfetch/internal/btb"
	"elfetch/internal/isa"
)

// Predecoder resolves a BTB miss from instruction bytes already resident in
// the I-cache — the Boomerang mechanism of Kumar et al. [11], which the
// paper names as the way to fully hide the BTB-miss penalty (Section VI-C:
// "Fully hiding the BTB miss penalty could be achieved through a mechanism
// such as Boomerang"). Given a fetch region start, it returns a
// freshly-predecoded BTB entry when the underlying line(s) are cached, or
// ok=false when the bytes are not available without a memory access.
type Predecoder interface {
	Predecode(pc isa.Addr) (btb.Entry, bool)
}

// PredecodeBubbles is the extra BP1 latency of a predecode-resolved miss:
// probing the I-cache and scanning the predecode bits.
const PredecodeBubbles = 2

// attachPredecoder is used by the pipeline to enable Boomerang-lite.
func (d *DCF) SetPredecoder(p Predecoder) { d.predecoder = p }
