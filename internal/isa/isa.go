// Package isa defines the synthetic fixed-length instruction set used by the
// simulator.
//
// The paper targets ARMv8 (Section IV-F: "Elastic Instruction Fetching ...
// is especially well-suited to fixed-length ISAs"), so every instruction is
// InstBytes (4) bytes long and program counters advance in fixed steps. The
// ISA carries exactly the information the front-end and back-end models need:
// an instruction class, register operands, and — for branches — enough typing
// to distinguish conditional, unconditional direct, call, return, and other
// indirect branches, because the BTB, the decoupled fetcher, and every ELF
// variant treat those classes differently.
package isa

import "fmt"

// InstBytes is the size of every instruction in bytes (fixed-length ISA).
const InstBytes = 4

// Addr is a virtual address. Instruction addresses are InstBytes-aligned.
type Addr uint64

// Next returns the address of the sequential successor instruction.
func (a Addr) Next() Addr { return a + InstBytes }

// Plus returns the address n instructions after a.
func (a Addr) Plus(n int) Addr { return a + Addr(n*InstBytes) }

// InstsTo returns the number of instructions in [a, b). It is the caller's
// responsibility that b >= a and both are aligned.
func (a Addr) InstsTo(b Addr) int { return int((b - a) / InstBytes) }

// Line returns the address of the cache line of the given size containing a.
func (a Addr) Line(lineBytes int) Addr { return a &^ Addr(lineBytes-1) }

func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// Class is the coarse instruction class, which determines the functional
// unit an instruction issues to and how the front-end sequences past it.
type Class uint8

const (
	// ALU is a simple integer operation (1-cycle).
	ALU Class = iota
	// MulDiv is a long-latency integer operation; only the two
	// MulDiv-capable ALU ports may execute it.
	MulDiv
	// SIMD is a floating-point/vector operation.
	SIMD
	// Load reads memory through the data cache hierarchy.
	Load
	// Store writes memory; it occupies a LD/ST address port and the
	// StData port.
	Store
	// CondBranch is a conditional direct branch.
	CondBranch
	// Jump is an unconditional direct branch (always taken).
	Jump
	// Call is an unconditional direct branch that pushes a return address.
	Call
	// Ret is an indirect branch predicted by the return address stack.
	Ret
	// IndirectBranch is an unconditional indirect branch other than a
	// return (computed jump, indirect call without matching return use).
	IndirectBranch
	// IndirectCall is an indirect branch that also pushes a return address.
	IndirectCall
	numClasses
)

// NumClasses is the number of distinct instruction classes.
const NumClasses = int(numClasses)

var classNames = [...]string{
	ALU:            "alu",
	MulDiv:         "muldiv",
	SIMD:           "simd",
	Load:           "load",
	Store:          "store",
	CondBranch:     "condbr",
	Jump:           "jump",
	Call:           "call",
	Ret:            "ret",
	IndirectBranch: "indbr",
	IndirectCall:   "indcall",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsBranch reports whether the class is any control-flow instruction.
func (c Class) IsBranch() bool {
	switch c {
	case CondBranch, Jump, Call, Ret, IndirectBranch, IndirectCall:
		return true
	}
	return false
}

// IsConditional reports whether the class is a conditional branch.
func (c Class) IsConditional() bool { return c == CondBranch }

// IsUnconditional reports whether the class is an always-taken branch.
func (c Class) IsUnconditional() bool { return c.IsBranch() && c != CondBranch }

// IsDirect reports whether the branch target is encoded in the instruction
// word (and therefore recoverable at decode, and storable in the BTB).
func (c Class) IsDirect() bool {
	switch c {
	case CondBranch, Jump, Call:
		return true
	}
	return false
}

// IsIndirect reports whether the branch target comes from a register.
// Returns are indirect but are predicted by the RAS rather than the
// indirect target predictor.
func (c Class) IsIndirect() bool {
	switch c {
	case Ret, IndirectBranch, IndirectCall:
		return true
	}
	return false
}

// IsCall reports whether the instruction pushes a return address.
func (c Class) IsCall() bool { return c == Call || c == IndirectCall }

// IsReturn reports whether the instruction pops the return address stack.
func (c Class) IsReturn() bool { return c == Ret }

// IsMemory reports whether the instruction accesses data memory.
func (c Class) IsMemory() bool { return c == Load || c == Store }

// Reg is an architectural register identifier.
type Reg uint8

// NumArchRegs is the number of architectural integer+SIMD registers the
// rename stage tracks. Register 0 is the hardwired zero register and never
// creates a dependence.
const NumArchRegs = 64

// RegZero is the hardwired zero register.
const RegZero Reg = 0
