package isa

import (
	"testing"
	"testing/quick"
)

func TestAddrArithmetic(t *testing.T) {
	a := Addr(0x1000)
	if got := a.Next(); got != 0x1004 {
		t.Errorf("Next() = %v, want 0x1004", got)
	}
	if got := a.Plus(16); got != 0x1040 {
		t.Errorf("Plus(16) = %v, want 0x1040", got)
	}
	if got := a.InstsTo(0x1040); got != 16 {
		t.Errorf("InstsTo = %d, want 16", got)
	}
	if got := Addr(0x1234).Line(64); got != 0x1200 {
		t.Errorf("Line(64) = %v, want 0x1200", got)
	}
}

func TestAddrPlusInstsToRoundTrip(t *testing.T) {
	f := func(base uint32, n uint8) bool {
		a := Addr(base) * InstBytes
		b := a.Plus(int(n))
		return a.InstsTo(b) == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		c                                            Class
		branch, cond, uncond, direct, indirect, call bool
	}{
		{ALU, false, false, false, false, false, false},
		{MulDiv, false, false, false, false, false, false},
		{SIMD, false, false, false, false, false, false},
		{Load, false, false, false, false, false, false},
		{Store, false, false, false, false, false, false},
		{CondBranch, true, true, false, true, false, false},
		{Jump, true, false, true, true, false, false},
		{Call, true, false, true, true, false, true},
		{Ret, true, false, true, false, true, false},
		{IndirectBranch, true, false, true, false, true, false},
		{IndirectCall, true, false, true, false, true, true},
	}
	for _, tc := range cases {
		if got := tc.c.IsBranch(); got != tc.branch {
			t.Errorf("%v.IsBranch() = %v, want %v", tc.c, got, tc.branch)
		}
		if got := tc.c.IsConditional(); got != tc.cond {
			t.Errorf("%v.IsConditional() = %v, want %v", tc.c, got, tc.cond)
		}
		if got := tc.c.IsUnconditional(); got != tc.uncond {
			t.Errorf("%v.IsUnconditional() = %v, want %v", tc.c, got, tc.uncond)
		}
		if got := tc.c.IsDirect(); got != tc.direct {
			t.Errorf("%v.IsDirect() = %v, want %v", tc.c, got, tc.direct)
		}
		if got := tc.c.IsIndirect(); got != tc.indirect {
			t.Errorf("%v.IsIndirect() = %v, want %v", tc.c, got, tc.indirect)
		}
		if got := tc.c.IsCall(); got != tc.call {
			t.Errorf("%v.IsCall() = %v, want %v", tc.c, got, tc.call)
		}
	}
}

func TestBranchClassPartition(t *testing.T) {
	// Every branch is exactly one of conditional or unconditional, and
	// exactly one of direct or indirect.
	for c := Class(0); c < Class(NumClasses); c++ {
		if !c.IsBranch() {
			if c.IsDirect() || c.IsIndirect() || c.IsConditional() {
				t.Errorf("%v: non-branch with branch property", c)
			}
			continue
		}
		if c.IsConditional() == c.IsUnconditional() {
			t.Errorf("%v: conditional/unconditional not a partition", c)
		}
		if c.IsDirect() == c.IsIndirect() {
			t.Errorf("%v: direct/indirect not a partition", c)
		}
	}
}

func TestClassString(t *testing.T) {
	if ALU.String() != "alu" || Ret.String() != "ret" {
		t.Errorf("unexpected class names: %v %v", ALU, Ret)
	}
	if got := Class(200).String(); got != "class(200)" {
		t.Errorf("out-of-range class name = %q", got)
	}
}

func TestIsMemory(t *testing.T) {
	for c := Class(0); c < Class(NumClasses); c++ {
		want := c == Load || c == Store
		if got := c.IsMemory(); got != want {
			t.Errorf("%v.IsMemory() = %v, want %v", c, got, want)
		}
	}
}
