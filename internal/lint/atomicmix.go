package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// atomicMixCheck takes a module-wide census of struct fields touched
// through sync/atomic's pointer-based functions (atomic.AddInt64(&s.n, 1)
// and friends) and reports every *plain* read or write of the same field
// anywhere in the module. Mixing atomic and non-atomic access to one
// word is a data race the race detector only catches when the schedule
// cooperates; the lint catches it on every run. The fix is either atomic
// access everywhere or — better, and the repo's house style — a typed
// atomic.Int64/Uint64/Bool field, which makes the mix inexpressible.
//
// The census must span packages (the field can be defined in
// internal/store and poked from cmd/elfd), so the check is a Finisher:
// Run accumulates, Finish reports.
type atomicMixCheck struct {
	atomicUse  map[string]Diagnostic   // field key → first atomic site
	plainSites map[string][]Diagnostic // field key → plain-access sites
}

func newAtomicMixCheck() *atomicMixCheck {
	return &atomicMixCheck{
		atomicUse:  map[string]Diagnostic{},
		plainSites: map[string][]Diagnostic{},
	}
}

func (*atomicMixCheck) Name() string { return "atomicmix" }
func (*atomicMixCheck) Doc() string {
	return "a struct field accessed via sync/atomic must never be accessed non-atomically anywhere in the module"
}

func (c *atomicMixCheck) Run(pkg *Package) []Diagnostic {
	for _, f := range pkg.Files {
		// First pass: atomic call sites. The &x.f argument selectors are
		// remembered so the second pass does not count them as plain.
		atomicArgs := map[*ast.SelectorExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || !isAtomicFunc(pkg, call) {
				return true
			}
			for _, arg := range call.Args {
				un, ok := unparen(arg).(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				sel, ok := unparen(un.X).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				key, ok := fieldKey(pkg, sel)
				if !ok {
					continue
				}
				atomicArgs[sel] = true
				if _, seen := c.atomicUse[key]; !seen {
					c.atomicUse[key] = diag(pkg, call, c.Name(), "%s", key)
				}
			}
			return true
		})
		// Second pass: every other access to a struct field.
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || atomicArgs[sel] {
				return true
			}
			key, ok := fieldKey(pkg, sel)
			if !ok {
				return true
			}
			c.plainSites[key] = append(c.plainSites[key],
				diag(pkg, sel, c.Name(),
					"plain access to %s, which is accessed via sync/atomic elsewhere in the module; mixing atomic and plain access races — use atomic loads/stores everywhere (or a typed atomic value)",
					key))
			return true
		})
	}
	return nil
}

// Finish reports every plain access to a field that also has atomic uses.
func (c *atomicMixCheck) Finish() []Diagnostic {
	var diags []Diagnostic
	for key := range c.atomicUse {
		diags = append(diags, c.plainSites[key]...)
	}
	return diags
}

// isAtomicFunc reports whether call targets a sync/atomic package-level
// function (the pointer-based API; typed atomics are methods and cannot
// mix).
func isAtomicFunc(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == "sync/atomic" && fn.Type().(*types.Signature).Recv() == nil
}

// fieldKey renders a module-wide identity for a struct-field selector:
// "pkgname.Type.field". Non-field selectors (methods, package members,
// map/slice elements) report ok=false.
func fieldKey(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := pkg.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return "", false
	}
	t := selection.Recv()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name, true
}
