package lint

// Control-flow-graph engine shared by the concurrency and resource-safety
// checks (goroleak, closecheck, lockheld). The builder lowers one function
// body to basic blocks with explicit successor edges — branches keep their
// condition so flow-sensitive checks can prune edges by branch facts (the
// `err != nil` arm after an acquisition, the `v == nil` arm of a guard) —
// and the engine provides the two queries the checks share:
//
//   - reachability (blocksReaching / canReach with block- and edge-level
//     pruning), which is how goroleak proves "every reachable block can
//     still reach the exit" and closecheck proves "no path escapes the
//     acquisition without passing a Close";
//   - dominators (iterative Cooper–Harvey–Kennedy over reverse postorder),
//     which is how lockheld distinguishes a lock that is *always* held at
//     an inner acquisition (a real ordering edge) from one held only on
//     some path.
//
// The lowering is deliberately conservative where Go's control flow is
// exotic: a select without a default has no fall-through edge (it blocks
// until a case fires), panic/os.Exit/log.Fatal/runtime.Goexit edges to the
// exit block, and goto targets are patched after the walk so forward jumps
// resolve.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: nodes executed in order, then a transfer of
// control along Succs. When the block ends in a two-way branch, Cond is
// the branch condition and by convention Succs[0] is the true edge and
// Succs[1] the false edge; otherwise Cond is nil.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
	Cond  ast.Expr
}

// CFG is one function body lowered to basic blocks. Entry has no
// predecessors; Exit collects every return path and has no successors.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block

	// SelectComm marks comm statements (`case <-ch:`, `case ch <- v:`)
	// lowered out of select clauses. Checks that classify channel
	// operations as blocking must skip these and judge the SelectStmt head
	// instead: a send inside `select { case ch <- v: default: }` never
	// blocks even though the bare send would.
	SelectComm map[ast.Stmt]bool

	pkg *Package // for type-informed lowering (terminating calls)
}

// BuildCFG lowers body (a function or closure body) to a CFG. pkg supplies
// type information used to recognise terminating calls; it may be nil, in
// which case only panic / builtin names are recognised.
func BuildCFG(pkg *Package, body *ast.BlockStmt) *CFG {
	c := &CFG{pkg: pkg, SelectComm: map[ast.Stmt]bool{}}
	b := &cfgBuilder{cfg: c, labels: map[string]*labelTargets{}}
	c.Entry = b.newBlock()
	c.Exit = b.newBlock()
	b.cur = c.Entry
	b.stmts(body.List)
	b.edge(b.cur, c.Exit)
	b.patchGotos()
	return c
}

// labelTargets resolves `break L`, `continue L` and `goto L`.
type labelTargets struct {
	breakTo    *Block
	continueTo *Block
	gotoTo     *Block   // the labeled statement's own block
	pending    []*Block // blocks waiting on a forward goto
}

type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// Innermost-first stacks of break/continue targets; the label field is
	// non-empty when the enclosing loop/switch was labeled.
	breaks    []targetEntry
	continues []targetEntry

	labels map[string]*labelTargets

	// pendingLabel is set between a LabeledStmt and the loop/switch it
	// labels, so `break L` / `continue L` resolve to that construct.
	pendingLabel string

	// fallTarget is the next case body during a switch walk.
	fallTarget *Block
}

type targetEntry struct {
	label string
	block *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

// edge appends to → from.Succs unless already present.
func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// startUnreachable begins a fresh block with no predecessors (the code
// after a return/branch); analyses that walk from Entry never see it.
func (b *cfgBuilder) startUnreachable() {
	b.cur = b.newBlock()
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, st := range list {
		b.stmt(st)
	}
}

func (b *cfgBuilder) stmt(st ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch st := st.(type) {
	case *ast.ReturnStmt:
		b.add(st)
		b.edge(b.cur, b.cfg.Exit)
		b.startUnreachable()
	case *ast.ExprStmt:
		b.add(st)
		if callTerminates(b.cfg.pkg, st.X) {
			b.edge(b.cur, b.cfg.Exit)
			b.startUnreachable()
		}
	case *ast.IfStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.cur
		head.Cond = st.Cond
		head.Nodes = append(head.Nodes, st.Cond)
		then := b.newBlock()
		b.edge(head, then) // Succs[0]: condition true
		var elseEntry *Block
		if st.Else != nil {
			elseEntry = b.newBlock()
			b.edge(head, elseEntry) // Succs[1]: condition false
		}
		b.cur = then
		b.stmts(st.Body.List)
		thenEnd := b.cur
		var elseEnd *Block
		if st.Else != nil {
			b.cur = elseEntry
			b.stmt(st.Else)
			elseEnd = b.cur
		}
		done := b.newBlock()
		b.edge(thenEnd, done)
		if st.Else != nil {
			b.edge(elseEnd, done)
		} else {
			b.edge(head, done) // Succs[1]: condition false
		}
		b.cur = done
	case *ast.ForStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		head := b.newBlock()
		b.edge(b.cur, head)
		body := b.newBlock()
		done := b.newBlock()
		if st.Cond != nil {
			head.Cond = st.Cond
			head.Nodes = append(head.Nodes, st.Cond)
			b.edge(head, body) // true
			b.edge(head, done) // false
		} else {
			b.edge(head, body) // `for {`: no exit edge without a break
		}
		// continue target: the post statement when present, else the head.
		contTo := head
		var post *Block
		if st.Post != nil {
			post = b.newBlock()
			post.Nodes = append(post.Nodes, st.Post)
			b.edge(post, head)
			contTo = post
		}
		b.pushLoop(label, done, contTo)
		b.cur = body
		b.stmts(st.Body.List)
		b.popLoop()
		if post != nil {
			b.edge(b.cur, post)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = done
	case *ast.RangeStmt:
		b.add(st.X)
		head := b.newBlock()
		head.Nodes = append(head.Nodes, st)
		b.edge(b.cur, head)
		body := b.newBlock()
		done := b.newBlock()
		b.edge(head, body)
		b.edge(head, done) // a range always terminates (or its channel closes)
		b.pushLoop(label, done, head)
		b.cur = body
		b.stmts(st.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = done
	case *ast.SwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		if st.Tag != nil {
			b.add(st.Tag)
		}
		b.switchClauses(label, st.Body.List, nil)
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			b.stmt(st.Init)
		}
		b.add(st.Assign)
		b.switchClauses(label, st.Body.List, nil)
	case *ast.SelectStmt:
		b.selectStmt(label, st)
	case *ast.BranchStmt:
		b.branch(st)
	case *ast.LabeledStmt:
		lt, ok := b.labels[st.Label.Name]
		if !ok {
			lt = &labelTargets{}
			b.labels[st.Label.Name] = lt
		}
		target := b.newBlock()
		b.edge(b.cur, target)
		lt.gotoTo = target
		for _, from := range lt.pending {
			b.edge(from, target)
		}
		lt.pending = nil
		b.cur = target
		b.pendingLabel = st.Label.Name
		b.stmt(st.Stmt)
	case *ast.BlockStmt:
		b.stmts(st.List)
	case *ast.GoStmt, *ast.DeferStmt, *ast.SendStmt, *ast.AssignStmt,
		*ast.IncDecStmt, *ast.DeclStmt, *ast.EmptyStmt:
		b.add(st)
	default:
		b.add(st)
	}
}

// switchClauses lowers the case list shared by switch and type switch.
func (b *cfgBuilder) switchClauses(label string, clauses []ast.Stmt, _ *Block) {
	head := b.cur
	done := b.newBlock()
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		bodies[i] = b.newBlock()
		b.edge(head, bodies[i])
		if clause, ok := cc.(*ast.CaseClause); ok && clause.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, done)
	}
	b.pushBreak(label, done)
	for i, cc := range clauses {
		clause, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.cur = bodies[i]
		for _, e := range clause.List {
			b.add(e)
		}
		if i+1 < len(clauses) {
			b.fallTarget = bodies[i+1]
		} else {
			b.fallTarget = done
		}
		b.stmts(clause.Body)
		b.fallTarget = nil
		b.edge(b.cur, done)
	}
	b.popBreak()
	b.cur = done
}

// selectStmt lowers a select: one block per comm clause, no fall-through
// edge unless a default case exists (a default-less select blocks until a
// case fires — and forever, if none ever can).
func (b *cfgBuilder) selectStmt(label string, st *ast.SelectStmt) {
	head := b.cur
	head.Nodes = append(head.Nodes, st)
	done := b.newBlock()
	b.pushBreak(label, done)
	for _, cc := range st.Body.List {
		clause, ok := cc.(*ast.CommClause)
		if !ok {
			continue
		}
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		if clause.Comm != nil {
			b.cfg.SelectComm[clause.Comm] = true
			b.stmt(clause.Comm)
		}
		b.stmts(clause.Body)
		b.edge(b.cur, done)
	}
	b.popBreak()
	b.cur = done
}

func (b *cfgBuilder) branch(st *ast.BranchStmt) {
	switch st.Tok {
	case token.BREAK:
		b.edge(b.cur, b.findTarget(b.breaks, st.Label))
		b.startUnreachable()
	case token.CONTINUE:
		b.edge(b.cur, b.findTarget(b.continues, st.Label))
		b.startUnreachable()
	case token.GOTO:
		if st.Label != nil {
			lt, ok := b.labels[st.Label.Name]
			if !ok {
				lt = &labelTargets{}
				b.labels[st.Label.Name] = lt
			}
			if lt.gotoTo != nil {
				b.edge(b.cur, lt.gotoTo)
			} else {
				lt.pending = append(lt.pending, b.cur)
			}
		}
		b.startUnreachable()
	case token.FALLTHROUGH:
		b.edge(b.cur, b.fallTarget)
		b.startUnreachable()
	}
}

func (b *cfgBuilder) findTarget(stack []targetEntry, label *ast.Ident) *Block {
	if len(stack) == 0 {
		return b.cfg.Exit // malformed; be safe
	}
	if label == nil {
		return stack[len(stack)-1].block
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label.Name {
			return stack[i].block
		}
	}
	return stack[len(stack)-1].block
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, targetEntry{label, brk})
	b.continues = append(b.continues, targetEntry{label, cont})
}

func (b *cfgBuilder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

func (b *cfgBuilder) pushBreak(label string, brk *Block) {
	b.breaks = append(b.breaks, targetEntry{label, brk})
}

func (b *cfgBuilder) popBreak() {
	b.breaks = b.breaks[:len(b.breaks)-1]
}

func (b *cfgBuilder) patchGotos() {
	// Unresolved forward gotos (no such label — ill-formed code) fall
	// through to the exit so analyses stay conservative.
	for _, lt := range b.labels {
		for _, from := range lt.pending {
			b.edge(from, b.cfg.Exit)
		}
	}
}

// callTerminates reports whether e is a call that never returns: panic,
// os.Exit, runtime.Goexit, or a log.Fatal* variant.
func callTerminates(pkg *Package, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		if fn.Name == "panic" {
			return true
		}
	case *ast.SelectorExpr:
		if pkg == nil {
			return false
		}
		obj, ok := pkg.Info.Uses[fn.Sel].(*types.Func)
		if !ok || obj.Pkg() == nil {
			return false
		}
		switch obj.Pkg().Path() {
		case "os":
			return obj.Name() == "Exit"
		case "runtime":
			return obj.Name() == "Goexit"
		case "log":
			switch obj.Name() {
			case "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln":
				return true
			}
		}
	}
	return false
}

// preds computes the predecessor lists (indexed by Block.Index).
func (c *CFG) preds() [][]*Block {
	out := make([][]*Block, len(c.Blocks))
	for _, blk := range c.Blocks {
		for _, s := range blk.Succs {
			out[s.Index] = append(out[s.Index], blk)
		}
	}
	return out
}

// Reachable returns the set of blocks reachable from Entry.
func (c *CFG) Reachable() []bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(*Block)
	walk = func(blk *Block) {
		if seen[blk.Index] {
			return
		}
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	return seen
}

// CanReach reports whether target is reachable from start. Traversal does
// not continue *through* a block for which stop returns true (the start
// block's own stop status is ignored: the question is about paths leaving
// it), and skips edges for which pruneEdge(from, i) returns true, where i
// indexes from.Succs. Either predicate may be nil.
func (c *CFG) CanReach(start, target *Block, stop func(*Block) bool, pruneEdge func(*Block, int) bool) bool {
	seen := make([]bool, len(c.Blocks))
	var walk func(*Block, bool) bool
	walk = func(blk *Block, isStart bool) bool {
		if blk == target && !isStart {
			return true
		}
		if seen[blk.Index] {
			return false
		}
		seen[blk.Index] = true
		if !isStart && stop != nil && stop(blk) {
			return false
		}
		for i, s := range blk.Succs {
			if pruneEdge != nil && pruneEdge(blk, i) {
				continue
			}
			if walk(s, false) {
				return true
			}
		}
		return false
	}
	if start == target {
		// A self-loop query: does start reach itself again?
		for i, s := range start.Succs {
			if pruneEdge != nil && pruneEdge(start, i) {
				continue
			}
			if s == target || walk(s, false) {
				return true
			}
		}
		return false
	}
	return walk(start, true)
}

// Dominators computes the immediate-dominator table over blocks reachable
// from Entry (Cooper–Harvey–Kennedy, iterating to fixpoint over reverse
// postorder). idom[Entry] = Entry; unreachable blocks map to nil.
func (c *CFG) Dominators() []*Block {
	n := len(c.Blocks)
	idom := make([]*Block, n)
	if n == 0 {
		return idom
	}

	// Reverse postorder over the reachable subgraph.
	order := make([]*Block, 0, n)
	seen := make([]bool, n)
	var dfs func(*Block)
	dfs = func(blk *Block) {
		if seen[blk.Index] {
			return
		}
		seen[blk.Index] = true
		for _, s := range blk.Succs {
			dfs(s)
		}
		order = append(order, blk)
	}
	dfs(c.Entry)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, blk := range order {
		rpoNum[blk.Index] = i
	}

	preds := c.preds()
	idom[c.Entry.Index] = c.Entry
	intersect := func(a, b *Block) *Block {
		for a != b {
			for rpoNum[a.Index] > rpoNum[b.Index] {
				a = idom[a.Index]
			}
			for rpoNum[b.Index] > rpoNum[a.Index] {
				b = idom[b.Index]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, blk := range order {
			if blk == c.Entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[blk.Index] {
				if idom[p.Index] == nil {
					continue // predecessor not yet processed / unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom != nil && idom[blk.Index] != newIdom {
				idom[blk.Index] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// Dominates reports whether a dominates b under idom (a Dominators()
// result). Every block dominates itself.
func Dominates(idom []*Block, a, b *Block) bool {
	if a == nil || b == nil || idom[b.Index] == nil {
		return false
	}
	for {
		if b == a {
			return true
		}
		next := idom[b.Index]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}
