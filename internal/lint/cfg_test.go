package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseBody parses `func f() { <src> }` and returns the body. Type info
// is absent (BuildCFG tolerates a nil pkg), so these tests cover the pure
// structural lowering.
func parseBody(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	file := "package p\nfunc f() {\n" + src + "\n}\n"
	f, err := parser.ParseFile(token.NewFileSet(), "t.go", file, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return f.Decls[0].(*ast.FuncDecl).Body
}

// blockWithCall finds the block containing a call to the named function.
func blockWithCall(t *testing.T, cfg *CFG, name string) *Block {
	t.Helper()
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return !found
			})
			if found {
				return blk
			}
		}
	}
	t.Fatalf("no block contains a call to %s", name)
	return nil
}

// TestCFGDivergence drives the goroleak core on small bodies: diverging
// blocks exist exactly when some reachable control flow can never reach
// the exit.
func TestCFGDivergence(t *testing.T) {
	cases := []struct {
		name     string
		src      string
		diverges bool
	}{
		{"plain return", "return", false},
		{"infinite loop", "for {\nwork()\n}", true},
		{"bounded loop", "for i := 0; i < 10; i++ {\nwork()\n}", false},
		{"range loop", "for range xs {\nwork()\n}", false},
		{"loop with break", "for {\nif done() {\nbreak\n}\n}", false},
		{"labeled break from select", "loop:\nfor {\nselect {\ncase <-ch:\nbreak loop\n}\n}", false},
		{"select break bug", "for {\nselect {\ncase <-ch:\nbreak\n}\n}", true},
		{"select with returning case", "for {\nselect {\ncase <-ch:\nreturn\n}\n}", false},
		{"empty select", "select {}", true},
		{"goto self", "l:\ngoto l", true},
		{"panic diverts to exit", "panic(\"boom\")", false},
		{"infinite loop after cond", "if done() {\nreturn\n}\nfor {\nwork()\n}", true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := BuildCFG(nil, parseBody(t, tc.src))
			got := divergingBlocks(cfg) > 0
			if got != tc.diverges {
				t.Errorf("diverges = %v, want %v", got, tc.diverges)
			}
		})
	}
}

// TestCFGDominators checks the classic diamond: the branch head dominates
// both arms and the join, while neither arm dominates the join.
func TestCFGDominators(t *testing.T) {
	cfg := BuildCFG(nil, parseBody(t, `
head()
if cond() {
	left()
} else {
	right()
}
join()`))
	idom := cfg.Dominators()
	head := blockWithCall(t, cfg, "head")
	left := blockWithCall(t, cfg, "left")
	right := blockWithCall(t, cfg, "right")
	join := blockWithCall(t, cfg, "join")

	for _, blk := range []*Block{left, right, join} {
		if !Dominates(idom, head, blk) {
			t.Errorf("head should dominate block %d", blk.Index)
		}
	}
	if Dominates(idom, left, join) {
		t.Error("left arm must not dominate the join")
	}
	if Dominates(idom, right, join) {
		t.Error("right arm must not dominate the join")
	}
	if !Dominates(idom, join, join) {
		t.Error("every block dominates itself")
	}
	if !Dominates(idom, cfg.Entry, cfg.Exit) {
		t.Error("entry dominates exit")
	}
}

// TestCFGLoopDominators: the loop head dominates the body and the
// post-loop code; the body does not dominate the post-loop code.
func TestCFGLoopDominators(t *testing.T) {
	cfg := BuildCFG(nil, parseBody(t, `
for cond() {
	body()
}
after()`))
	idom := cfg.Dominators()
	body := blockWithCall(t, cfg, "body")
	after := blockWithCall(t, cfg, "after")
	head := blockWithCall(t, cfg, "cond")
	if !Dominates(idom, head, body) || !Dominates(idom, head, after) {
		t.Error("loop head should dominate body and after")
	}
	if Dominates(idom, body, after) {
		t.Error("loop body must not dominate post-loop code")
	}
}

// TestCFGCanReach exercises the stop and pruneEdge hooks closecheck
// depends on.
func TestCFGCanReach(t *testing.T) {
	cfg := BuildCFG(nil, parseBody(t, `
acquire()
if bad() {
	early()
	return
}
use()
release()`))
	acquire := blockWithCall(t, cfg, "acquire")
	release := blockWithCall(t, cfg, "release")
	early := blockWithCall(t, cfg, "early")

	if !cfg.CanReach(acquire, cfg.Exit, nil, nil) {
		t.Fatal("exit should be reachable from the acquisition")
	}
	// Stopping at the releasing block leaves only the early-return path.
	stop := func(b *Block) bool { return b == release }
	if !cfg.CanReach(acquire, cfg.Exit, stop, nil) {
		t.Error("early-return path should still reach exit when release blocks are stopped")
	}
	// Pruning the true edge (the early-return arm) as well closes it.
	prune := func(from *Block, i int) bool { return from.Cond != nil && i == 0 }
	if cfg.CanReach(acquire, cfg.Exit, stop, prune) {
		t.Error("no path should remain with the true edge pruned and release stopped")
	}
	if !cfg.CanReach(acquire, early, nil, nil) {
		t.Error("early block should be reachable")
	}
	if cfg.CanReach(early, release, nil, nil) {
		t.Error("release must not be reachable from the early-return arm")
	}
}

// TestCFGSelectComm: comm statements are marked so lockheld can exempt
// sends and receives that sit inside a select (non-blocking when a
// default case exists).
func TestCFGSelectComm(t *testing.T) {
	cfg := BuildCFG(nil, parseBody(t, `
select {
case ch <- v:
	sent()
default:
	dropped()
}`))
	if len(cfg.SelectComm) != 1 {
		t.Fatalf("SelectComm has %d entries, want 1", len(cfg.SelectComm))
	}
	for st := range cfg.SelectComm {
		if _, ok := st.(*ast.SendStmt); !ok {
			t.Errorf("marked comm statement is %T, want *ast.SendStmt", st)
		}
	}
}

// TestCFGReachable: code after a return is in the graph but unreachable.
func TestCFGReachable(t *testing.T) {
	cfg := BuildCFG(nil, parseBody(t, `
live()
return
dead()`))
	reach := cfg.Reachable()
	if !reach[blockWithCall(t, cfg, "live").Index] {
		t.Error("pre-return code should be reachable")
	}
	if reach[blockWithCall(t, cfg, "dead").Index] {
		t.Error("post-return code should be unreachable")
	}
}
