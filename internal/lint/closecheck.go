package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// closeCheck proves that every value acquired from a call whose type
// carries `Close() error` — an *http.Response, an os.File, a store tier —
// is closed on every path from the acquisition to the function exit. The
// fleet paths hold long-lived HTTP connections and mmap-backed segment
// files; a response body left unclosed on one error branch quietly
// disables connection reuse and, under the prober's cadence, exhausts
// file descriptors in hours.
//
// Mechanics, per function body:
//
//  1. find acquisitions: `v, err := f(...)` / `v := f(...)` where v's
//     static type (or its pointer) has Close() error in its method set.
//     *net/http.Response is special-cased — the obligation is v.Body.Close.
//  2. find closes: any statement (including a deferred closure body)
//     containing `v.Close()` / `v.Body.Close()` discharges the
//     obligation from that block onward.
//  3. path-search the CFG from the acquisition block to Exit, refusing to
//     pass through closing blocks, and pruning branch edges on which the
//     value is known invalid: the `err != nil` arm of the acquisition's
//     error, and the `v == nil` arm of a nil guard. If Exit is still
//     reachable, some live-value path escapes without a Close — finding.
//
// The obligation also ends when the value escapes the function's care:
// returned, stored into a composite literal or struct field, reassigned
// to another variable, or passed to a call that is not a known borrowing
// reader (io.ReadAll, io.Copy, json.NewDecoder and friends only read —
// ownership stays here).
type closeCheck struct{}

func (closeCheck) Name() string { return "closecheck" }
func (closeCheck) Doc() string {
	return "call-acquired values with Close() error must be closed on every path from acquisition to exit"
}

func (c closeCheck) Run(pkg *Package) []Diagnostic {
	if !concurrentPackages[pkg.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			diags = append(diags, checkBody(pkg, fd.Body, c.Name())...)
			// Function literals get their own independent analysis: a
			// closure acquiring a resource owes its own Close.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					diags = append(diags, checkBody(pkg, lit.Body, c.Name())...)
					return false
				}
				return true
			})
		}
	}
	return diags
}

// obligation is one tracked acquisition within a body.
type obligation struct {
	name     string          // variable holding the closer
	errName  string          // paired error variable ("" if none)
	acquire  *ast.AssignStmt // the acquiring statement
	block    *Block          // block containing the acquisition
	special  bool            // *http.Response: obligation is name.Body.Close
	typeName string          // rendered type, for the message
}

func checkBody(pkg *Package, body *ast.BlockStmt, check string) []Diagnostic {
	cfg := BuildCFG(pkg, body)
	nodeBlock := indexNodes(cfg)

	obls := findAcquisitions(pkg, cfg, nodeBlock)
	if len(obls) == 0 {
		return nil
	}

	var diags []Diagnostic
	for _, ob := range obls {
		if escapes(pkg, body, ob) {
			continue
		}
		closing := closingBlocks(cfg, ob)
		if len(closing) == 0 {
			diags = append(diags, diag(pkg, ob.acquire, check,
				"%s (%s) is never closed; close it on every path (a `defer %s` right after the error check is simplest)",
				ob.name, ob.typeName, closeCallString(ob)))
			continue
		}
		stop := func(blk *Block) bool { return closing[blk.Index] }
		prune := func(from *Block, i int) bool { return pruneInvalidEdge(pkg, ob, from, i) }
		if cfg.CanReach(ob.block, cfg.Exit, stop, prune) {
			diags = append(diags, diag(pkg, ob.acquire, check,
				"%s (%s) is not closed on every path from its acquisition; a live-value path reaches the function exit without %s",
				ob.name, ob.typeName, closeCallString(ob)))
		}
	}
	return diags
}

func closeCallString(ob obligation) string {
	if ob.special {
		return ob.name + ".Body.Close()"
	}
	return ob.name + ".Close()"
}

// indexNodes maps every node placed in a block (and the statements inside
// those nodes) to that block.
func indexNodes(cfg *CFG) map[ast.Node]*Block {
	out := make(map[ast.Node]*Block)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			out[n] = blk
		}
	}
	return out
}

// findAcquisitions scans the CFG's blocks for assignments that acquire a
// closable value from a call.
func findAcquisitions(pkg *Package, cfg *CFG, nodeBlock map[ast.Node]*Block) []obligation {
	var out []obligation
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			as, ok := stmtAssign(n)
			if !ok {
				continue
			}
			if len(as.Rhs) != 1 {
				continue
			}
			if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
				continue
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				t := pkg.Info.TypeOf(id)
				if t == nil {
					continue
				}
				special, closable := closableType(t)
				if !closable {
					continue
				}
				ob := obligation{
					name:     id.Name,
					acquire:  as,
					block:    blk,
					special:  special,
					typeName: types.TypeString(t, types.RelativeTo(pkg.Types)),
				}
				// Find the paired error result, if any.
				for j, other := range as.Lhs {
					if j == i {
						continue
					}
					oid, ok := other.(*ast.Ident)
					if !ok || oid.Name == "_" {
						continue
					}
					if ot := pkg.Info.TypeOf(oid); ot != nil && isErrorType(ot) {
						ob.errName = oid.Name
					}
				}
				out = append(out, ob)
			}
		}
	}
	return out
}

func stmtAssign(n ast.Node) (*ast.AssignStmt, bool) {
	as, ok := n.(*ast.AssignStmt)
	return as, ok
}

// closableType reports whether t's method set (of t or *t) contains
// `Close() error`. special is true for *net/http.Response, whose
// obligation is Body.Close.
func closableType(t types.Type) (special, closable bool) {
	if ptr, ok := t.(*types.Pointer); ok {
		if named, ok := ptr.Elem().(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response" {
				return true, true
			}
		}
	}
	if hasCloseError(t) {
		return false, true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if hasCloseError(types.NewPointer(t)) {
			return false, true
		}
	}
	return false, false
}

func hasCloseError(t types.Type) bool {
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		fn, ok := ms.At(i).Obj().(*types.Func)
		if !ok || fn.Name() != "Close" {
			continue
		}
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if sig.Params().Len() != 0 || sig.Results().Len() != 1 {
			continue
		}
		return isErrorType(sig.Results().At(0).Type())
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// closingBlocks returns the set of blocks (by index) containing a close of
// the obligation, including closes inside deferred or immediate closures
// in that block.
func closingBlocks(cfg *CFG, ob obligation) map[int]bool {
	out := make(map[int]bool)
	for _, blk := range cfg.Blocks {
		for _, n := range blk.Nodes {
			if n == ob.acquire {
				continue
			}
			if nodeCloses(n, ob) {
				out[blk.Index] = true
			}
		}
	}
	return out
}

// nodeCloses reports whether n's subtree contains `name.Close()` (or
// `name.Body.Close()` for the response special case). Deliberately
// includes FuncLit bodies: `defer func() { ... v.Close() ... }()` counts.
func nodeCloses(n ast.Node, ob obligation) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Close" {
			return true
		}
		if ob.special {
			inner, ok := sel.X.(*ast.SelectorExpr)
			if ok && inner.Sel.Name == "Body" {
				if id, ok := inner.X.(*ast.Ident); ok && id.Name == ob.name {
					found = true
					return false
				}
			}
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == ob.name {
			found = true
			return false
		}
		return true
	})
	return found
}

// borrowingReaders are call targets that only read from their argument —
// passing the tracked value to them does not transfer the close
// obligation.
var borrowingReaders = map[string]map[string]bool{
	"io":            {"ReadAll": true, "Copy": true, "CopyN": true, "LimitReader": true, "TeeReader": true, "ReadFull": true},
	"io/ioutil":     {"ReadAll": true},
	"encoding/json": {"NewDecoder": true},
	"bufio":         {"NewReader": true, "NewScanner": true},
}

func isBorrowingCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	names := borrowingReaders[fn.Pkg().Path()]
	return names != nil && names[fn.Name()]
}

// escapes reports whether the obligation's value leaves the function's
// ownership: returned, sent somewhere, stored into something, reassigned,
// address-taken, or passed to a non-borrowing call. Once it escapes, the
// close is someone else's job and the path analysis would only produce
// noise.
func escapes(pkg *Package, body *ast.BlockStmt, ob obligation) bool {
	escaped := false
	refersToOb := func(e ast.Expr) bool {
		used := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id.Name == ob.name {
				used = true
			}
			return !used
		})
		return used
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if escaped {
			return false
		}
		switch n := n.(type) {
		case *ast.ReturnStmt:
			// Only returning the value itself transfers ownership;
			// `return resp.StatusCode` is a field read, not an escape.
			// Returns through composite literals or call results are
			// handled by the CompositeLit / CallExpr cases on descent.
			for _, r := range n.Results {
				if id, ok := unparen(r).(*ast.Ident); ok && id.Name == ob.name {
					escaped = true
				}
			}
		case *ast.SendStmt:
			if id, ok := unparen(n.Value).(*ast.Ident); ok && id.Name == ob.name {
				escaped = true
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				if refersToOb(el) {
					escaped = true
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := n.X.(*ast.Ident); ok && id.Name == ob.name {
					escaped = true
				}
			}
		case *ast.AssignStmt:
			if n == ob.acquire {
				return true
			}
			// v reassigned → old value's obligation is gone (it was either
			// closed before or this is a different bug class); something =
			// v → ownership transferred.
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && id.Name == ob.name {
					escaped = true
				}
				if sel, ok := lhs.(*ast.SelectorExpr); ok && refersToOb(sel.X) {
					// writing a field of v is fine; writing v into a field
					// is handled by the Rhs scan below.
					_ = sel
				}
			}
			for _, rhs := range n.Rhs {
				if id, ok := rhs.(*ast.Ident); ok && id.Name == ob.name {
					escaped = true
				}
			}
		case *ast.CallExpr:
			// v.Method(...) and name.Body accesses are uses, not escapes;
			// v as an *argument* to a non-borrowing call is an escape.
			if isBorrowingCall(pkg, n) {
				return true
			}
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && refersToOb(sel.X) {
				// method call on v itself: check only the arguments
				for _, arg := range n.Args {
					if refersToOb(arg) {
						escaped = true
					}
				}
				return false
			}
			for _, arg := range n.Args {
				if id, ok := unparen(arg).(*ast.Ident); ok && id.Name == ob.name {
					escaped = true
				}
				// For a response, handing resp.Body itself to a
				// non-borrowing callee (obs.DrainClose, a decompressing
				// wrapper that closes downstream) transfers the body's
				// close obligation just like handing over the value.
				if ob.special {
					if sel, ok := unparen(arg).(*ast.SelectorExpr); ok && sel.Sel.Name == "Body" {
						if id, ok := sel.X.(*ast.Ident); ok && id.Name == ob.name {
							escaped = true
						}
					}
				}
			}
		}
		return !escaped
	})
	return escaped
}

// pruneInvalidEdge drops CFG edges along which the tracked value is known
// invalid: the true arm of `err != nil` / `v == nil`, and the false arm of
// `err == nil` / `v != nil`. On those paths there is nothing to close
// (http contract: a non-nil *Response only comes with a nil error).
func pruneInvalidEdge(pkg *Package, ob obligation, from *Block, i int) bool {
	if from.Cond == nil || len(from.Succs) < 2 {
		return false
	}
	bin, ok := unparen(from.Cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	operand, isNilCmp := nilComparand(pkg, bin)
	if !isNilCmp {
		return false
	}
	invalidWhenTrue := false
	switch operand {
	case ob.errName:
		if ob.errName == "" {
			return false
		}
		invalidWhenTrue = bin.Op == token.NEQ // err != nil → invalid on true arm
	case ob.name:
		invalidWhenTrue = bin.Op == token.EQL // v == nil → invalid on true arm
	default:
		return false
	}
	if invalidWhenTrue {
		return i == 0 // prune the true edge
	}
	return i == 1 // prune the false edge
}

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}
