package lint

import (
	"go/ast"
	"go/types"
)

// ctxCheck enforces context discipline. Contexts are plumbed down call
// chains, never stored: a context.Context struct field outlives the
// request that created it and silently detaches cancellation, so the only
// blessed holder is the scheduler's Job (a job *is* a reified request —
// sched.Job owns the context that elfd's handlers cancel through).
// Separately, an exported function in internal/{sched,eval} that accepts
// a ctx must actually honour it: calling context.Background() (or TODO)
// inside discards the caller's cancellation, which is exactly the bug
// that would make elfd unable to abort a simulation.
type ctxCheck struct{}

func (ctxCheck) Name() string { return "ctx" }
func (ctxCheck) Doc() string {
	return "no context.Context struct fields outside sched's Job; exported sched/eval funcs taking ctx must not call context.Background/TODO"
}

// ctxFieldAllowed reports whether a struct named typeName in pkg may
// carry a context field.
func ctxFieldAllowed(pkg *Package, typeName string) bool {
	return pkg.Rel == "internal/sched" && (typeName == "Job" || typeName == "job")
}

// ctxHonourPackages are the packages whose exported context-taking API is
// held to the no-Background rule.
var ctxHonourPackages = map[string]bool{
	"internal/sched": true,
	"internal/eval":  true,
}

func (c ctxCheck) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			switch decl := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range decl.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						if isContextType(pkg, field.Type) && !ctxFieldAllowed(pkg, ts.Name.Name) {
							diags = append(diags, diag(pkg, field, c.Name(),
								"struct %s stores a context.Context; contexts are plumbed, not stored (only sched's Job may hold one)",
								ts.Name.Name))
						}
					}
				}
			case *ast.FuncDecl:
				diags = append(diags, c.checkFunc(pkg, decl)...)
			}
		}
	}
	return diags
}

// checkFunc flags context.Background/TODO calls inside exported
// ctx-taking functions of the honour packages.
func (c ctxCheck) checkFunc(pkg *Package, fd *ast.FuncDecl) []Diagnostic {
	if !ctxHonourPackages[pkg.Rel] || !fd.Name.IsExported() || fd.Body == nil {
		return nil
	}
	if !hasContextParam(pkg, fd) {
		return nil
	}
	var diags []Diagnostic
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() == "Background" || fn.Name() == "TODO" {
			diags = append(diags, diag(pkg, sel, c.Name(),
				"%s takes a context.Context but calls context.%s internally, detaching it from the caller's cancellation",
				fd.Name.Name, fn.Name()))
		}
		return true
	})
	return diags
}

func hasContextParam(pkg *Package, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, p := range fd.Type.Params.List {
		if isContextType(pkg, p.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether the type expression denotes
// context.Context.
func isContextType(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
