package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismCheck bans nondeterminism sources from the simulation core:
// wall clocks, ambient randomness, environment reads, and order-sensitive
// iteration over maps. Two runs of the same config must produce
// bit-identical counts — the paper's L-ELF/U-ELF deltas are meaningless
// otherwise — so randomness must come from explicitly seeded
// internal/xrand streams and iteration order must be fixed.
type determinismCheck struct{}

func (determinismCheck) Name() string { return "determinism" }
func (determinismCheck) Doc() string {
	return "sim-core packages must be replayable: no wall clock, ambient randomness, env reads, or order-sensitive map iteration"
}

// bannedImports are packages the sim core may not depend on at all.
var bannedImports = map[string]string{
	"math/rand":    "use elfetch/internal/xrand (explicitly seeded, version-stable)",
	"math/rand/v2": "use elfetch/internal/xrand (explicitly seeded, version-stable)",
}

// bannedFuncs are ambient-state functions; referencing one (not just
// calling it) is a finding. Keyed by package path, then name.
var bannedFuncs = map[string]map[string]string{
	"time": {
		"Now": "wall clock", "Since": "wall clock", "Until": "wall clock",
		"After": "wall clock", "AfterFunc": "wall clock", "Tick": "wall clock",
		"NewTicker": "wall clock", "NewTimer": "wall clock", "Sleep": "wall clock",
	},
	"os": {
		"Getenv": "environment read", "LookupEnv": "environment read",
		"Environ": "environment read",
	},
}

func (c determinismCheck) Run(pkg *Package) []Diagnostic {
	if !simCorePackages[pkg.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := importPath(imp)
			if why, bad := bannedImports[path]; bad {
				diags = append(diags, diag(pkg, imp, c.Name(),
					"sim-core package %s imports %s; %s", pkg.Rel, path, why))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if fn, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok && fn.Pkg() != nil {
					if why, bad := bannedFuncs[fn.Pkg().Path()][fn.Name()]; bad {
						diags = append(diags, diag(pkg, n, c.Name(),
							"%s.%s (%s) in sim-core package %s; two runs of one config must be bit-identical",
							fn.Pkg().Path(), fn.Name(), why, pkg.Rel))
					}
				}
			case *ast.RangeStmt:
				diags = append(diags, c.checkMapRange(pkg, n)...)
			}
			return true
		})
	}
	return diags
}

// checkMapRange flags ranging over a map when the body observably depends
// on iteration order: appending to state declared outside the loop,
// accumulating floats (addition is not associative), or writing output.
func (c determinismCheck) checkMapRange(pkg *Package, rs *ast.RangeStmt) []Diagnostic {
	tv, ok := pkg.Info.Types[rs.X]
	if !ok || tv.Type == nil {
		return nil
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, what string) {
		diags = append(diags, diag(pkg, n, c.Name(),
			"map iteration order is nondeterministic and the loop body %s; collect and sort the keys first", what))
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pkg, call) &&
					len(n.Lhs) > 0 && declaredOutside(pkg, n.Lhs[0], rs) {
					report(n, "appends to state declared outside it")
				}
			}
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range n.Lhs {
					if isFloat(pkg, lhs) && declaredOutside(pkg, lhs, rs) {
						report(n, "accumulates floating point (addition is order-sensitive)")
					}
				}
			}
		case *ast.CallExpr:
			if name, isPrint := printLike(pkg, n); isPrint {
				report(n, "writes output via "+name)
			}
		}
		return true
	})
	return diags
}

func importPath(imp *ast.ImportSpec) string {
	path := imp.Path.Value
	return path[1 : len(path)-1] // strip quotes
}

func isBuiltinAppend(pkg *Package, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// declaredOutside reports whether expr denotes storage declared outside
// the range statement. Non-identifier lvalues (selectors, indexes) are
// conservatively treated as outside.
func declaredOutside(pkg *Package, expr ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return true
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		obj = pkg.Info.Defs[id]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

func isFloat(pkg *Package, expr ast.Expr) bool {
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// printLike recognises fmt print calls and Write-style method calls.
func printLike(pkg *Package, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	name := fn.Name()
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		switch name {
		case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
			return "fmt." + name, true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		switch name {
		case "Write", "WriteString", "WriteByte", "WriteRune":
			return name, true
		}
	}
	return "", false
}
