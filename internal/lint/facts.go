package lint

// Path-sensitive guard-fact engine shared by the dominance-style checks.
// It grew out of probegate's dominating-nil-guard walker and is the
// structural half of the analysis engine (cfg.go is the basic-block half):
// a statement walker that threads a set of facts — "this expression is
// known non-nil on the current path" — through branches, short-circuit
// chains, early returns, loops and assignments. A check instantiates it
// with two callbacks: `tracked` decides which dereferences the check cares
// about, `report` fires when one happens on a path with no dominating
// guard.
//
// The fact rules:
//
//   - `if x != nil { ... }` establishes x inside the then-branch;
//     `if x == nil { ... }` establishes it in the else-branch;
//   - `if x == nil { return }` (or any terminating body) establishes x for
//     the rest of the enclosing block — the early-exit dominator idiom;
//   - `a != nil && a.b != nil` threads left-to-right, so the right
//     conjunct is checked under the left's fact; `a == nil || ...`
//     mirrors it for disjunctions;
//   - assigning to x destroys facts about x and everything reached
//     through it (x.y, x.y.z); assigning a fresh allocation (&T{...},
//     new(T)) establishes the fact at birth;
//   - a function literal restarts from the per-declaration baseline:
//     closures may run long after the local guard was established.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// guards is the set of expressions (rendered with types.ExprString) known
// non-nil on the current path.
type guards map[string]bool

func (g guards) clone() guards {
	out := make(guards, len(g))
	for k, v := range g {
		out[k] = v
	}
	return out
}

// invalidate drops facts about an assigned-to expression and anything
// reached through it (assigning to m kills knowledge about m.probe).
func (g guards) invalidate(key string) {
	for k := range g {
		if k == key || strings.HasPrefix(k, key+".") {
			delete(g, k)
		}
	}
}

// factWalker is the reusable walker. Zero value is not usable: pkg,
// tracked and report must be set.
type factWalker struct {
	pkg  *Package
	base guards // facts that hold for any closure in the current decl

	// tracked reports the rendered key of sel.X when sel dereferences an
	// expression the instantiating check wants guarded.
	tracked func(sel *ast.SelectorExpr) (string, bool)
	// report fires for a dereference of a tracked expression on a path
	// where its guard fact does not hold.
	report func(sel *ast.SelectorExpr, key string)
}

// checkExpr reports unguarded tracked dereferences inside e. Function
// literals get a fresh (baseline) guard set: they may run long after the
// enclosing guard was established.
func (w *factWalker) checkExpr(e ast.Expr, g guards) {
	if e == nil {
		return
	}
	switch e := e.(type) {
	case *ast.FuncLit:
		// Closures may run long after local guards were established, so
		// they restart from the per-declaration baseline only.
		w.walkStmts(e.Body.List, w.base.clone())
		return
	case *ast.BinaryExpr:
		if e.Op == token.LAND || e.Op == token.LOR {
			w.checkCond(e, g.clone())
			return
		}
	case *ast.SelectorExpr:
		if key, isTracked := w.tracked(e); isTracked && !g[key] {
			w.report(e, key)
		}
	}
	// Descend into children, re-dispatching so nested short-circuit
	// chains and funclits are handled.
	ast.Inspect(e, func(n ast.Node) bool {
		if n == e {
			return true
		}
		if child, ok := n.(ast.Expr); ok {
			w.checkExpr(child, g)
			return false
		}
		return true
	})
}

// checkCond walks a boolean condition, threading short-circuit facts:
// in `a != nil && a.b != nil` the right conjunct only evaluates with a
// non-nil, and in `a == nil || a.b == nil` the right disjunct only
// evaluates when a survived the first test. It returns the facts that
// hold when the condition is true and when it is false.
func (w *factWalker) checkCond(e ast.Expr, g guards) (whenTrue, whenFalse guards) {
	whenTrue, whenFalse = guards{}, guards{}
	switch e := e.(type) {
	case *ast.ParenExpr:
		return w.checkCond(e.X, g)
	case *ast.UnaryExpr:
		if e.Op == token.NOT {
			t, f := w.checkCond(e.X, g)
			return f, t
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			lt, _ := w.checkCond(e.X, g)
			rg := g.clone()
			for k := range lt {
				rg[k] = true
			}
			rt, _ := w.checkCond(e.Y, rg)
			for k := range lt {
				whenTrue[k] = true
			}
			for k := range rt {
				whenTrue[k] = true
			}
			return whenTrue, guards{}
		case token.LOR:
			_, lf := w.checkCond(e.X, g)
			rg := g.clone()
			for k := range lf {
				rg[k] = true
			}
			_, rf := w.checkCond(e.Y, rg)
			for k := range lf {
				whenFalse[k] = true
			}
			for k := range rf {
				whenFalse[k] = true
			}
			return guards{}, whenFalse
		case token.NEQ, token.EQL:
			if key, ok := nilComparand(w.pkg, e); ok {
				// The comparison itself is not a dereference; still check
				// the non-nil operand's own subexpressions.
				w.checkOperands(e, g)
				if e.Op == token.NEQ {
					whenTrue[key] = true
				} else {
					whenFalse[key] = true
				}
				return whenTrue, whenFalse
			}
		}
	}
	w.checkExpr(e, g)
	return guards{}, guards{}
}

// checkOperands checks both sides of a nil comparison for *nested*
// unguarded dereferences (e.g. `m.probe.F != nil` needs m.probe guarded
// even though m.probe.F itself is only compared).
func (w *factWalker) checkOperands(e *ast.BinaryExpr, g guards) {
	for _, op := range []ast.Expr{e.X, e.Y} {
		w.checkExpr(op, g)
	}
}

// nilComparand returns the rendered non-nil side of an `x ==/!= nil`
// comparison.
func nilComparand(pkg *Package, e *ast.BinaryExpr) (string, bool) {
	if isNilIdent(pkg, e.Y) {
		return types.ExprString(e.X), true
	}
	if isNilIdent(pkg, e.X) {
		return types.ExprString(e.Y), true
	}
	return "", false
}

func isNilIdent(pkg *Package, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := pkg.Info.Uses[id].(*types.Nil)
	return isNil
}

// walkStmts processes a statement list, mutating g as guard facts are
// established (early-return nil checks) or destroyed (assignments).
func (w *factWalker) walkStmts(stmts []ast.Stmt, g guards) {
	for _, st := range stmts {
		w.walkStmt(st, g)
	}
}

func (w *factWalker) walkStmt(st ast.Stmt, g guards) {
	switch st := st.(type) {
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, g)
		}
		whenTrue, whenFalse := w.checkCond(st.Cond, g)
		thenG := g.clone()
		for k := range whenTrue {
			thenG[k] = true
		}
		w.walkStmts(st.Body.List, thenG)
		if st.Else != nil {
			elseG := g.clone()
			for k := range whenFalse {
				elseG[k] = true
			}
			w.walkStmt(st.Else, elseG)
		} else if terminates(st.Body) {
			// `if x == nil { return }` guards x for the rest of the block.
			for k := range whenFalse {
				g[k] = true
			}
		}
	case *ast.AssignStmt:
		for _, rhs := range st.Rhs {
			w.checkExpr(rhs, g)
		}
		for i, lhs := range st.Lhs {
			// Writing *through* a tracked pointer is a dereference too.
			if sel, ok := lhs.(*ast.SelectorExpr); ok {
				w.checkExpr(sel, g)
			}
			key := types.ExprString(lhs)
			g.invalidate(key)
			// A fresh allocation (`s := &Span{...}`, `s := new(Span)`) is
			// definitely non-nil, so the guard is established at birth.
			if len(st.Lhs) == len(st.Rhs) && definitelyNonNil(st.Rhs[i]) {
				g[key] = true
			}
		}
	case *ast.ExprStmt:
		w.checkExpr(st.X, g)
	case *ast.ReturnStmt:
		for _, r := range st.Results {
			w.checkExpr(r, g)
		}
	case *ast.DeferStmt:
		w.checkExpr(st.Call, g)
	case *ast.GoStmt:
		w.checkExpr(st.Call, g)
	case *ast.SendStmt:
		w.checkExpr(st.Chan, g)
		w.checkExpr(st.Value, g)
	case *ast.IncDecStmt:
		w.checkExpr(st.X, g)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.checkExpr(v, g)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List, g)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt, g)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, g)
		}
		loopG := g.clone()
		if st.Cond != nil {
			whenTrue, _ := w.checkCond(st.Cond, loopG)
			for k := range whenTrue {
				loopG[k] = true
			}
		}
		if st.Post != nil {
			w.walkStmt(st.Post, loopG)
		}
		w.walkStmts(st.Body.List, loopG)
	case *ast.RangeStmt:
		w.checkExpr(st.X, g)
		w.walkStmts(st.Body.List, g.clone())
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init, g)
		}
		if st.Tag != nil {
			w.checkExpr(st.Tag, g)
		}
		for _, cc := range st.Body.List {
			if clause, ok := cc.(*ast.CaseClause); ok {
				caseG := g.clone()
				for _, e := range clause.List {
					w.checkExpr(e, caseG)
				}
				w.walkStmts(clause.Body, caseG)
			}
		}
	case *ast.TypeSwitchStmt, *ast.SelectStmt:
		// Rare in the hot loop; walk nested statements conservatively.
		ast.Inspect(st, func(n ast.Node) bool {
			if body, ok := n.(*ast.BlockStmt); ok {
				w.walkStmts(body.List, g.clone())
				return false
			}
			return true
		})
	}
}

// definitelyNonNil reports expressions whose value cannot be nil: taking
// the address of a composite literal, or a new() allocation.
func definitelyNonNil(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return definitelyNonNil(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, isLit := e.X.(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		id, ok := e.Fun.(*ast.Ident)
		return ok && id.Name == "new"
	}
	return false
}

// terminates reports whether a block always transfers control away
// (return / break / continue / goto / panic as its final statement).
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
