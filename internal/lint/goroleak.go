package lint

import (
	"go/ast"
	"go/types"
)

// goroLeakCheck proves every goroutine spawned in the fleet-path packages
// can terminate. The repo's serving layer is goroutine-heavy — the fleet
// health prober, scheduler workers, the coordinator's federation scrape
// loop — and a goroutine with no exit path outlives every request and
// pins its captures forever. The proof obligation is control-flow, not
// style: the spawned function's CFG must not contain a block that is
// reachable from the entry but cannot reach the exit. A `for { select {
// case <-ctx.Done(): return ... } }` loop passes because the Done case
// reaches the exit; a bounded or range loop passes through its natural
// exit edge; `for { work() }` and a select whose cancellation case merely
// `break`s the select (the classic bug — break leaves the select, not the
// loop) are findings.
//
// The check resolves `go f()` / `go s.worker()` to same-package function
// declarations and analyzes `go func() { ... }()` literals directly;
// goroutines running functions from other packages are out of scope (the
// defining package is where they get checked).
type goroLeakCheck struct{}

func (goroLeakCheck) Name() string { return "goroleak" }
func (goroLeakCheck) Doc() string {
	return "every `go` statement in the fleet paths needs a provable exit path (ctx/quit select that returns, or a bounded loop)"
}

// concurrentPackages are the module-relative packages whose goroutines,
// locks and resources the CFG suite walks: the serving layer that runs in
// production processes.
var concurrentPackages = map[string]bool{
	"internal/exec":  true,
	"internal/sched": true,
	"internal/store": true,
	"internal/obs":   true,
	"cmd/elfd":       true,
}

func (c goroLeakCheck) Run(pkg *Package) []Diagnostic {
	if !concurrentPackages[pkg.Rel] {
		return nil
	}
	decls := funcDeclsByObject(pkg)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body := goroutineBody(pkg, decls, gs)
			if body == nil {
				return true
			}
			cfg := BuildCFG(pkg, body)
			if divergingBlocks(cfg) > 0 {
				diags = append(diags, diag(pkg, gs, c.Name(),
					"goroutine has no provable exit path: part of its control flow can never reach the function exit (add a ctx.Done()/quit-channel case that returns, or bound the loop)"))
			}
			return true
		})
	}
	return diags
}

// funcDeclsByObject indexes the package's function declarations by their
// types.Func object, so `go name()` and `go recv.method()` resolve.
func funcDeclsByObject(pkg *Package) map[*types.Func]*ast.FuncDecl {
	out := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
				out[fn] = fd
			}
		}
	}
	return out
}

// goroutineBody resolves the body of the function a go statement spawns:
// a literal's body directly, or a same-package declaration's body.
func goroutineBody(pkg *Package, decls map[*types.Func]*ast.FuncDecl, gs *ast.GoStmt) *ast.BlockStmt {
	switch fun := gs.Call.Fun.(type) {
	case *ast.FuncLit:
		return fun.Body
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			if fd := decls[fn]; fd != nil {
				return fd.Body
			}
		}
	}
	return nil
}

// divergingBlocks counts blocks reachable from the entry that cannot
// reach the exit — the diverging region of the function.
func divergingBlocks(cfg *CFG) int {
	reachable := cfg.Reachable()
	// Reverse reachability from the exit over predecessor edges.
	preds := cfg.preds()
	reachesExit := make([]bool, len(cfg.Blocks))
	var walk func(*Block)
	walk = func(blk *Block) {
		if reachesExit[blk.Index] {
			return
		}
		reachesExit[blk.Index] = true
		for _, p := range preds[blk.Index] {
			walk(p)
		}
	}
	walk(cfg.Exit)
	n := 0
	for i := range cfg.Blocks {
		if reachable[i] && !reachesExit[i] {
			n++
		}
	}
	return n
}
