package lint

import (
	"go/ast"
	"strings"
)

// layeringCheck enforces the module's import DAG: the model layer
// (sim-core packages) may not import the serving layer
// (internal/{sched,obs,eval,exec,report,store}) or any cmd/* package,
// internal/obs — the metrics registry every layer may depend on — imports
// nothing module-internal at all, and internal/store — the persistence
// leaf that must stay ignorant of what it stores — imports only
// internal/obs. The split is what keeps the cycle-level hot loop free of
// serving concerns and lets the serving system evolve without perturbing
// modeled behaviour.
type layeringCheck struct{}

func (layeringCheck) Name() string { return "layering" }
func (layeringCheck) Doc() string {
	return "sim-core must not import the serving layer (sched/obs/eval/exec/report/store, cmd/*); internal/obs imports nothing internal; internal/store imports only internal/obs"
}

func (c layeringCheck) Run(pkg *Package) []Diagnostic {
	var diags []Diagnostic
	forEachImport := func(fn func(spec *ast.ImportSpec, path string)) {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				fn(imp, importPath(imp))
			}
		}
	}
	switch {
	case simCorePackages[pkg.Rel]:
		forEachImport(func(spec *ast.ImportSpec, path string) {
			rel, inModule := strings.CutPrefix(path, pkg.ModPath+"/")
			if !inModule {
				return
			}
			switch {
			case servingLayerPackages[rel]:
				diags = append(diags, diag(pkg, spec, c.Name(),
					"sim-core package %s imports serving-layer package %s; the model must not depend on scheduling, metrics, eval or reporting",
					pkg.Rel, rel))
			case strings.HasPrefix(rel, "cmd/"):
				diags = append(diags, diag(pkg, spec, c.Name(),
					"sim-core package %s imports %s; library code must not depend on commands", pkg.Rel, rel))
			}
		})
	case pkg.Rel == "internal/obs":
		forEachImport(func(spec *ast.ImportSpec, path string) {
			if path == pkg.ModPath || strings.HasPrefix(path, pkg.ModPath+"/") {
				diags = append(diags, diag(pkg, spec, c.Name(),
					"internal/obs imports %s; the metrics registry must stay leaf-level (stdlib only) so any layer can depend on it",
					path))
			}
		})
	case pkg.Rel == "internal/store":
		forEachImport(func(spec *ast.ImportSpec, path string) {
			rel, inModule := strings.CutPrefix(path, pkg.ModPath+"/")
			if (path == pkg.ModPath || inModule) && rel != "internal/obs" {
				diags = append(diags, diag(pkg, spec, c.Name(),
					"internal/store imports %s; the persistence layer may depend only on internal/obs — it stores opaque bytes and must not learn result or scheduling types",
					path))
			}
		})
	}
	return diags
}
