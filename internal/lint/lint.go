// Package lint is elflint's analyzer suite: a dependency-free (stdlib
// go/ast + go/parser + go/types, no x/tools) static checker that enforces
// the simulator's architectural invariants — the seams the paper's
// methodology depends on but the compiler cannot see:
//
//   - determinism: the simulation core must be bit-for-bit replayable, so
//     wall clocks, ambient randomness, environment reads and
//     order-sensitive map iteration are banned there (randomness flows
//     through internal/xrand).
//   - layering: the model layer must not import the serving layer
//     (internal/{sched,obs,eval,exec,report,store}, cmd/*),
//     internal/obs imports nothing internal, and internal/store — the
//     persistence leaf — imports only internal/obs, so the hot loop can
//     never grow a metrics or storage dependency by accident.
//   - probegate: every dereference of a nil-able observation hook —
//     *pipeline.Probe, *pipeline.Tracer, or the distributed-trace
//     *obs.Span — must be dominated by a nil guard, preserving the
//     "a probed run is architecturally identical to an unprobed one"
//     contract across pipeline, obs and exec.
//   - ctx: context.Context is plumbed, never stored — struct fields are
//     banned outside sched's Job — and exported sched/eval functions that
//     accept a ctx must not manufacture context.Background() internally.
//   - panicpolicy: sim-core panics are allowed only inside must*/Must*
//     helpers and init funcs, or with an explicit pragma carrying a
//     reason.
//
// Findings can be suppressed per line with
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or alone on the line above it, and
// //lint:allow panic <reason> is accepted as an alias for
// //lint:ignore panicpolicy <reason>.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding: file:line:col, the check that produced it,
// and a message.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"` // module-relative path
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the canonical file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// Check is one invariant analyzer. Run inspects a loaded, type-checked
// package and reports findings; pragma filtering happens in the runner.
type Check interface {
	Name() string
	Doc() string
	Run(pkg *Package) []Diagnostic
}

// AllChecks returns the full suite in stable order.
func AllChecks() []Check {
	return []Check{
		determinismCheck{},
		layeringCheck{},
		probeGateCheck{},
		ctxCheck{},
		panicPolicyCheck{},
	}
}

// SelectChecks resolves a comma-separated -checks selector ("" or "all"
// means the full suite).
func SelectChecks(sel string) ([]Check, error) {
	all := AllChecks()
	if sel == "" || sel == "all" {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	var out []Check
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, checkNames(all))
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty -checks selector")
	}
	return out, nil
}

func checkNames(checks []Check) string {
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name()
	}
	return strings.Join(names, ",")
}

// simCorePackages are the module-relative import paths of the simulation
// core: the packages whose cycle-level behaviour must be deterministic and
// free of serving-layer dependencies.
var simCorePackages = map[string]bool{
	"internal/pipeline": true,
	"internal/frontend": true,
	"internal/bpred":    true,
	"internal/btb":      true,
	"internal/cache":    true,
	"internal/core":     true,
	"internal/isa":      true,
	"internal/uop":      true,
	"internal/program":  true,
	"internal/trace":    true,
	"internal/workload": true,
	// backend is not named in the original invariant list but sits on the
	// same side of the model/serving split (the OoO engine).
	"internal/backend": true,
}

// servingLayerPackages are module-relative paths the sim core must never
// import.
var servingLayerPackages = map[string]bool{
	"internal/sched":  true,
	"internal/obs":    true,
	"internal/eval":   true,
	"internal/exec":   true,
	"internal/report": true,
	"internal/store":  true,
}

// Run loads every package matched by patterns under dir's module and runs
// checks over them, returning pragma-filtered diagnostics sorted by
// position. A non-nil error means the load itself failed (not a finding).
func Run(dir string, patterns []string, checks []Check) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ignores := collectIgnores(pkg)
		for _, c := range checks {
			for _, d := range c.Run(pkg) {
				if !suppressed(ignores, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Check < diags[j].Check
	})
	return diags, nil
}

// ignoreKey identifies one pragma's reach: a (file, line, check) triple.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// collectIgnores gathers //lint:ignore and //lint:allow pragmas. A pragma
// suppresses matching diagnostics on its own line and on the following
// line (covering both trailing-comment and comment-above placement).
func collectIgnores(pkg *Package) map[ignoreKey]bool {
	ignores := make(map[ignoreKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, ok := parsePragma(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, pos.Line, check}] = true
				ignores[ignoreKey{pos.Filename, pos.Line + 1, check}] = true
			}
		}
	}
	return ignores
}

// parsePragma recognises "//lint:ignore <check> <reason>" and
// "//lint:allow panic <reason>" (a space after // is tolerated). The
// reason is mandatory: a pragma without one is ignored, so unexplained
// suppressions do not silence findings.
func parsePragma(text string) (check string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	switch {
	case strings.HasPrefix(body, "lint:ignore"):
		fields := strings.Fields(strings.TrimPrefix(body, "lint:ignore"))
		if len(fields) >= 2 { // check name + at least one reason word
			return fields[0], true
		}
	case strings.HasPrefix(body, "lint:allow"):
		fields := strings.Fields(strings.TrimPrefix(body, "lint:allow"))
		if len(fields) >= 2 && fields[0] == "panic" {
			return "panicpolicy", true
		}
	}
	return "", false
}

func suppressed(ignores map[ignoreKey]bool, d Diagnostic) bool {
	return ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}]
}

// diag builds a Diagnostic for a node in pkg.
func diag(pkg *Package, node ast.Node, check, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(node.Pos())
	return Diagnostic{
		Pos:     pos,
		File:    pkg.RelPath(pos.Filename),
		Line:    pos.Line,
		Col:     pos.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}
