// Package lint is elflint's analyzer suite: a dependency-free (stdlib
// go/ast + go/parser + go/types, no x/tools) static checker that enforces
// the simulator's architectural invariants — the seams the paper's
// methodology depends on but the compiler cannot see:
//
//   - determinism: the simulation core must be bit-for-bit replayable, so
//     wall clocks, ambient randomness, environment reads and
//     order-sensitive map iteration are banned there (randomness flows
//     through internal/xrand).
//   - layering: the model layer must not import the serving layer
//     (internal/{sched,obs,eval,exec,report,store}, cmd/*),
//     internal/obs imports nothing internal, and internal/store — the
//     persistence leaf — imports only internal/obs, so the hot loop can
//     never grow a metrics or storage dependency by accident.
//   - probegate: every dereference of a nil-able observation hook —
//     *pipeline.Probe, *pipeline.Tracer, or the distributed-trace
//     *obs.Span — must be dominated by a nil guard, preserving the
//     "a probed run is architecturally identical to an unprobed one"
//     contract across pipeline, obs and exec.
//   - ctx: context.Context is plumbed, never stored — struct fields are
//     banned outside sched's Job — and exported sched/eval functions that
//     accept a ctx must not manufacture context.Background() internally.
//   - panicpolicy: sim-core panics are allowed only inside must*/Must*
//     helpers and init funcs, or with an explicit pragma carrying a
//     reason.
//
// On top of the single-statement checks sits a control-flow-graph +
// dominator engine (cfg.go, facts.go) powering the concurrency and
// resource-safety suite over the fleet paths
// (internal/{exec,sched,store,obs} and cmd/elfd):
//
//   - goroleak: every `go` statement must spawn a function with a
//     provable exit path — some reachable block that cannot reach the
//     function exit (a `for {}` with no returning select case, a select
//     on channels nobody closes) is a leaked goroutine;
//   - closecheck: a value acquired from a call whose type carries
//     `Close() error` (an *http.Response body, an os.File, a store tier)
//     must be closed on every path from the acquisition to the exit,
//     via defer or per-branch closes; error-arm and nil-arm branches are
//     pruned since the value is invalid there;
//   - lockheld: no blocking operation — channel send/receive, a
//     default-less select, http.Client.Do, time.Sleep, WaitGroup.Wait —
//     while a sync.Mutex/RWMutex acquired in the same function is still
//     held; nested acquisitions feed a module-wide lock-ordering graph
//     whose cycles (potential deadlocks) are reported at Finish;
//   - atomicmix: a struct field accessed through sync/atomic anywhere in
//     the module must never be read or written non-atomically elsewhere.
//
// Findings can be suppressed per line with
//
//	//lint:ignore <check> <reason>
//
// placed on the offending line or alone on the line above it, and
// //lint:allow panic <reason> is accepted as an alias for
// //lint:ignore panicpolicy <reason>.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: file:line:col, the check that produced it,
// and a message.
type Diagnostic struct {
	Pos     token.Position `json:"-"`
	File    string         `json:"file"` // module-relative path
	Line    int            `json:"line"`
	Col     int            `json:"col"`
	Check   string         `json:"check"`
	Message string         `json:"message"`
}

// String renders the canonical file:line:col: [check] message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// SchemaVersion identifies the shape of elflint's -json output. Bump it
// only on breaking changes to the Diagnostic fields or the envelope, so
// CI artifacts from different runs stay diffable.
const SchemaVersion = 1

// Check is one invariant analyzer. Run inspects a loaded, type-checked
// package and reports findings; pragma filtering happens in the runner.
type Check interface {
	Name() string
	Doc() string
	Run(pkg *Package) []Diagnostic
}

// Finisher is implemented by checks that accumulate cross-package state
// during Run (the lock-ordering graph, the atomic-field census) and emit
// whole-module findings once every package has been visited. A Finisher
// check instance is good for exactly one lint.Run; AllChecks returns
// fresh instances.
type Finisher interface {
	Finish() []Diagnostic
}

// AllChecks returns the full suite in stable order. Stateful checks
// (Finishers) are freshly allocated per call.
func AllChecks() []Check {
	return []Check{
		determinismCheck{},
		layeringCheck{},
		probeGateCheck{},
		ctxCheck{},
		panicPolicyCheck{},
		goroLeakCheck{},
		closeCheck{},
		newLockHeldCheck(),
		newAtomicMixCheck(),
	}
}

// SelectChecks resolves a comma-separated -checks selector ("" or "all"
// means the full suite). Duplicate names are an error: a CI gate that
// lists a check twice is almost always a typo'd list, and a silently
// deduplicated one would hide it.
func SelectChecks(sel string) ([]Check, error) {
	all := AllChecks()
	if sel == "" || sel == "all" {
		return all, nil
	}
	byName := make(map[string]Check, len(all))
	for _, c := range all {
		byName[c.Name()] = c
	}
	seen := make(map[string]bool)
	var out []Check
	for _, name := range strings.Split(sel, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		c, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown check %q (have %s)", name, checkNames(all))
		}
		if seen[name] {
			return nil, fmt.Errorf("lint: check %q selected twice", name)
		}
		seen[name] = true
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("lint: empty -checks selector")
	}
	return out, nil
}

func checkNames(checks []Check) string {
	names := make([]string, len(checks))
	for i, c := range checks {
		names[i] = c.Name()
	}
	return strings.Join(names, ",")
}

// simCorePackages are the module-relative import paths of the simulation
// core: the packages whose cycle-level behaviour must be deterministic and
// free of serving-layer dependencies.
var simCorePackages = map[string]bool{
	"internal/pipeline": true,
	"internal/frontend": true,
	"internal/bpred":    true,
	"internal/btb":      true,
	"internal/cache":    true,
	"internal/core":     true,
	"internal/isa":      true,
	"internal/uop":      true,
	"internal/program":  true,
	"internal/trace":    true,
	"internal/workload": true,
	// backend is not named in the original invariant list but sits on the
	// same side of the model/serving split (the OoO engine).
	"internal/backend": true,
	// ringq backs the cycle loop's queues; it carries the same
	// determinism and layering obligations as its callers.
	"internal/ringq": true,
}

// servingLayerPackages are module-relative paths the sim core must never
// import.
var servingLayerPackages = map[string]bool{
	"internal/sched":  true,
	"internal/obs":    true,
	"internal/eval":   true,
	"internal/exec":   true,
	"internal/report": true,
	"internal/store":  true,
	// perf is the bench-trajectory writer/comparator: host-dependent
	// (wall-clock, hostnames) by design, so it must stay out of the core.
	"internal/perf": true,
}

// CheckTiming is one check's cumulative wall-clock across every package
// it ran over (plus its Finish pass, for Finishers).
type CheckTiming struct {
	Check   string
	Elapsed time.Duration
}

// Run loads every package matched by patterns under dir's module and runs
// checks over them, returning pragma-filtered diagnostics sorted by
// position. Checks implementing Finisher get a final whole-module pass
// after every package has been visited; their findings go through the
// same pragma filter. A non-nil error means the load itself failed (not a
// finding).
func Run(dir string, patterns []string, checks []Check) ([]Diagnostic, error) {
	diags, _, err := RunTimed(dir, patterns, checks)
	return diags, err
}

// RunTimed is Run plus per-check wall-clock timing, in the order checks
// were given (`make lint` prints it so a check that quietly turns
// quadratic is caught by eye, not by a slow CI three months later).
func RunTimed(dir string, patterns []string, checks []Check) ([]Diagnostic, []CheckTiming, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	elapsed := make([]time.Duration, len(checks))
	// Pragmas are collected module-wide up front: Finisher diagnostics can
	// land in any package, and the ignore keys carry the filename so there
	// is no cross-package collision.
	ignores := make(map[ignoreKey]bool)
	for _, pkg := range pkgs {
		collectIgnores(pkg, ignores)
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for i, c := range checks {
			start := time.Now()
			found := c.Run(pkg)
			elapsed[i] += time.Since(start)
			for _, d := range found {
				if !suppressed(ignores, d) {
					diags = append(diags, d)
				}
			}
		}
	}
	for i, c := range checks {
		f, ok := c.(Finisher)
		if !ok {
			continue
		}
		start := time.Now()
		found := f.Finish()
		elapsed[i] += time.Since(start)
		for _, d := range found {
			if !suppressed(ignores, d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].File != diags[j].File {
			return diags[i].File < diags[j].File
		}
		if diags[i].Line != diags[j].Line {
			return diags[i].Line < diags[j].Line
		}
		if diags[i].Col != diags[j].Col {
			return diags[i].Col < diags[j].Col
		}
		return diags[i].Check < diags[j].Check
	})
	timings := make([]CheckTiming, len(checks))
	for i, c := range checks {
		timings[i] = CheckTiming{Check: c.Name(), Elapsed: elapsed[i]}
	}
	return diags, timings, nil
}

// ignoreKey identifies one pragma's reach: a (file, line, check) triple.
type ignoreKey struct {
	file  string
	line  int
	check string
}

// collectIgnores gathers //lint:ignore and //lint:allow pragmas into
// ignores. A pragma suppresses matching diagnostics on its own line and
// on the following line (covering both trailing-comment and comment-above
// placement).
func collectIgnores(pkg *Package, ignores map[ignoreKey]bool) {
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				check, ok := parsePragma(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ignores[ignoreKey{pos.Filename, pos.Line, check}] = true
				ignores[ignoreKey{pos.Filename, pos.Line + 1, check}] = true
			}
		}
	}
}

// parsePragma recognises "//lint:ignore <check> <reason>" and
// "//lint:allow panic <reason>" (a space after // is tolerated). The
// reason is mandatory: a pragma without one is ignored, so unexplained
// suppressions do not silence findings.
func parsePragma(text string) (check string, ok bool) {
	body := strings.TrimPrefix(text, "//")
	body = strings.TrimSpace(body)
	switch {
	case strings.HasPrefix(body, "lint:ignore"):
		fields := strings.Fields(strings.TrimPrefix(body, "lint:ignore"))
		if len(fields) >= 2 { // check name + at least one reason word
			return fields[0], true
		}
	case strings.HasPrefix(body, "lint:allow"):
		fields := strings.Fields(strings.TrimPrefix(body, "lint:allow"))
		if len(fields) >= 2 && fields[0] == "panic" {
			return "panicpolicy", true
		}
	}
	return "", false
}

func suppressed(ignores map[ignoreKey]bool, d Diagnostic) bool {
	return ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Check}]
}

// diag builds a Diagnostic for a node in pkg.
func diag(pkg *Package, node ast.Node, check, format string, args ...any) Diagnostic {
	pos := pkg.Fset.Position(node.Pos())
	return Diagnostic{
		Pos:     pos,
		File:    pkg.RelPath(pos.Filename),
		Line:    pos.Line,
		Col:     pos.Column,
		Check:   check,
		Message: fmt.Sprintf(format, args...),
	}
}
