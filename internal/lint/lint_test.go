package lint

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files from current analyzer output")

// TestFixtures runs the full suite over each testdata/src mini-module and
// compares against the golden diagnostics. Every fixture must produce at
// least one finding: the fixtures are what guarantees `elflint` exits
// nonzero when an invariant is violated.
func TestFixtures(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures under testdata/src")
	}
	for _, dir := range fixtures {
		name := filepath.Base(dir)
		t.Run(name, func(t *testing.T) {
			diags, err := Run(dir, []string{"./..."}, AllChecks())
			if err != nil {
				t.Fatalf("Run(%s): %v", dir, err)
			}
			if len(diags) == 0 {
				t.Errorf("fixture %s produced no findings; fixtures exist to prove elflint fails on violations", name)
			}
			var b strings.Builder
			for _, d := range diags {
				fmt.Fprintln(&b, d)
			}
			got := b.String()
			golden := filepath.Join("testdata", "golden", name+".txt")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run `go test ./internal/lint -update`): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch for %s:\n--- got ---\n%s--- want ---\n%s", name, got, want)
			}
		})
	}
}

// TestFixturesCoverEveryCheck makes sure no check silently loses its
// fixture coverage.
func TestFixturesCoverEveryCheck(t *testing.T) {
	covered := map[string]bool{}
	goldens, err := filepath.Glob(filepath.Join("testdata", "golden", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range goldens {
		data, err := os.ReadFile(g)
		if err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if open := strings.Index(line, "["); open >= 0 {
				if close := strings.Index(line[open:], "]"); close > 0 {
					covered[line[open+1:open+close]] = true
				}
			}
		}
	}
	var missing []string
	for _, c := range AllChecks() {
		if !covered[c.Name()] {
			missing = append(missing, c.Name())
		}
	}
	sort.Strings(missing)
	if len(missing) > 0 {
		t.Errorf("checks with no golden fixture coverage: %s", strings.Join(missing, ", "))
	}
}

// TestRepoIsClean is the merge gate's runtime twin: the module this
// analyzer ships in must itself lint clean, so scripts/verify.sh failing
// on a finding is demonstrated here without committing a violation.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := Run(filepath.Join("..", ".."), []string{"./..."}, AllChecks())
	if err != nil {
		t.Fatalf("Run(module root): %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestCmdExitsNonzeroOnFixture runs the real elflint command against a
// violating fixture module and requires exit status 1 — the behaviour
// scripts/verify.sh relies on to fail the build.
func TestCmdExitsNonzeroOnFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs the elflint command")
	}
	fixture, err := filepath.Abs(filepath.Join("testdata", "src", "probegate"))
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command("go", "run", "./cmd/elflint", "-C", fixture, "./...")
	cmd.Dir = filepath.Join("..", "..")
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("elflint exited 0 on a violating fixture; output:\n%s", out)
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("running elflint: %v\n%s", err, out)
	}
	if code := ee.ExitCode(); code != 1 {
		t.Fatalf("elflint exit code = %d, want 1; output:\n%s", code, out)
	}
	if !strings.Contains(string(out), "[probegate]") {
		t.Fatalf("elflint output missing [probegate] finding:\n%s", out)
	}
}

func TestSelectChecks(t *testing.T) {
	all, err := SelectChecks("all")
	if err != nil || len(all) != len(AllChecks()) {
		t.Fatalf("SelectChecks(all) = %d checks, err %v", len(all), err)
	}
	sub, err := SelectChecks("determinism, layering")
	if err != nil || len(sub) != 2 || sub[0].Name() != "determinism" || sub[1].Name() != "layering" {
		t.Fatalf("SelectChecks subset = %v, err %v", sub, err)
	}
	if _, err := SelectChecks("nosuch"); err == nil {
		t.Fatal("SelectChecks(nosuch) should fail")
	}
	if _, err := SelectChecks(","); err == nil {
		t.Fatal("SelectChecks(,) should fail")
	}
	if _, err := SelectChecks("determinism,layering,determinism"); err == nil {
		t.Fatal("SelectChecks with a duplicate name should fail (a CI gate listing a check twice is a typo'd list)")
	}
	if _, err := SelectChecks("goroleak, goroleak"); err == nil {
		t.Fatal("duplicate detection should survive whitespace")
	}
	if sub, err := SelectChecks("lockheld"); err != nil || len(sub) != 1 || sub[0].Name() != "lockheld" {
		t.Fatalf("SelectChecks(lockheld) = %v, err %v", sub, err)
	}
}

func TestParsePragma(t *testing.T) {
	cases := []struct {
		text  string
		check string
		ok    bool
	}{
		{"//lint:ignore determinism keys sorted below", "determinism", true},
		{"// lint:ignore probegate reason here", "probegate", true},
		{"//lint:allow panic ring invariant", "panicpolicy", true},
		{"// lint:allow panic ring invariant", "panicpolicy", true},
		{"//lint:ignore determinism", "", false}, // reason is mandatory
		{"//lint:allow panic", "", false},        // reason is mandatory
		{"//lint:allow shrug because", "", false},
		{"// plain comment", "", false},
	}
	for _, c := range cases {
		check, ok := parsePragma(c.text)
		if check != c.check || ok != c.ok {
			t.Errorf("parsePragma(%q) = (%q, %v), want (%q, %v)", c.text, check, ok, c.check, c.ok)
		}
	}
}
