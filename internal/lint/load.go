package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked module package.
type Package struct {
	ImportPath string
	Rel        string // module-relative path ("." for the module root)
	Dir        string
	ModRoot    string
	ModPath    string
	Imports    []string // direct imports, as written

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	// TypeErrors collects non-fatal type-check problems. Checks run
	// best-effort when this is non-empty; callers may surface them.
	TypeErrors []error
}

// RelPath renders filename relative to the module root (diagnostics stay
// stable no matter where the tree is checked out).
func (p *Package) RelPath(filename string) string {
	if rel, err := filepath.Rel(p.ModRoot, filename); err == nil {
		return filepath.ToSlash(rel)
	}
	return filename
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Export     string
	Standard   bool
	DepOnly    bool
	Name       string
	GoFiles    []string
	Imports    []string
	Module     *struct {
		Path string
		Dir  string
	}
}

// Load resolves patterns (e.g. "./...") against the module containing dir
// and returns its matched packages parsed and type-checked.
//
// The loader leans on the go command the same way `go vet` does: one
// `go list -export -deps -json` invocation yields, for every dependency
// (standard library included), a compiled export-data file, which go/types
// consumes through go/importer's gc lookup mode. The matched packages
// themselves are parsed from source so diagnostics carry exact positions.
// This keeps the analyzer on the pure standard library — no x/tools —
// while still type-checking a module, something go/importer cannot do
// alone since precompiled stdlib archives left the distribution.
func Load(dir string, patterns []string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,Export,Standard,DepOnly,Name,GoFiles,Imports,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("lint: starting go list: %w", err)
	}
	var listed []*listPackage
	dec := json.NewDecoder(out)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err != nil {
			if err == io.EOF {
				break
			}
			cmd.Wait()
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		listed = append(listed, lp)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %w\n%s",
			strings.Join(patterns, " "), err, strings.TrimSpace(stderr.String()))
	}

	// The module under analysis is the one owning dir.
	modPath, modRoot, err := moduleOf(dir)
	if err != nil {
		return nil, err
	}

	// Export data for everything importable; source packages to lint.
	exports := make(map[string]string)
	var targets []*listPackage
	for _, lp := range listed {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		inModule := lp.Module != nil && lp.Module.Path == modPath
		if inModule && !lp.DepOnly {
			targets = append(targets, lp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	})

	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		pkg, err := typeCheck(fset, imp, modPath, modRoot, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// moduleOf reports the module path and root directory owning dir.
func moduleOf(dir string) (path, root string, err error) {
	cmd := exec.Command("go", "list", "-m", "-json")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", "", fmt.Errorf("lint: go list -m: %w", err)
	}
	var m struct{ Path, Dir string }
	if err := json.Unmarshal(out, &m); err != nil {
		return "", "", fmt.Errorf("lint: decoding go list -m: %w", err)
	}
	if m.Path == "" || m.Dir == "" {
		return "", "", fmt.Errorf("lint: not inside a module (dir %s)", dir)
	}
	return m.Path, m.Dir, nil
}

// typeCheck parses one package's non-test sources and type-checks them
// against the export-data importer.
func typeCheck(fset *token.FileSet, imp types.Importer, modPath, modRoot string, lp *listPackage) (*Package, error) {
	pkg := &Package{
		ImportPath: lp.ImportPath,
		Rel:        relImportPath(modPath, lp.ImportPath),
		Dir:        lp.Dir,
		ModRoot:    modRoot,
		ModPath:    modPath,
		Imports:    lp.Imports,
		Fset:       fset,
	}
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Checks run best-effort on whatever type information survives, so a
	// type error is recorded rather than fatal.
	pkg.Types, _ = conf.Check(lp.ImportPath, fset, pkg.Files, pkg.Info)
	return pkg, nil
}

// relImportPath maps an import path inside the module to its
// module-relative form.
func relImportPath(modPath, importPath string) string {
	if importPath == modPath {
		return "."
	}
	return strings.TrimPrefix(importPath, modPath+"/")
}
