package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockHeldCheck enforces the two mutex disciplines the fleet paths live
// by:
//
//  1. No blocking operation while a sync.Mutex / sync.RWMutex acquired in
//     the same function is still held. Blocking means: channel send or
//     receive, a default-less select, a channel range, time.Sleep,
//     http.Client round-trips, sync.WaitGroup.Wait / sync.Cond.Wait,
//     os/exec child waits, net.Dial*, and io.ReadAll / io.Copy — the
//     operations whose latency is unbounded by this process. A scheduler
//     that sends on a full queue while holding its own mutex wedges every
//     other caller; the store's flush path learned this the hard way.
//     File I/O (os.File ReadAt/WriteAt/Sync) is deliberately *not* in the
//     blocking set: the disk tier's mutex intentionally serializes its
//     segment files, and bounded local I/O under a lock is that design,
//     not a bug (see DESIGN.md §16).
//
//  2. Consistent lock ordering across the module. Whenever Lock(B) runs
//     at a point dominated by a still-held Lock(A), the check records the
//     edge A→B in a module-wide graph keyed by "pkg.Type.field"; a cycle
//     in that graph is a potential deadlock and is reported from Finish
//     once every package has been visited.
//
// Held-ness is path-honest: a lock is held at a node if some path from
// the Lock() reaches it without passing the matching Unlock(). A
// `defer mu.Unlock()` releases only at return, so everything after the
// Lock counts as under-lock — which is exactly the hazard the check
// exists to catch. Ordering edges additionally require dominance (the
// outer lock is held on *every* path), so the graph carries must-hold
// facts, not maybes.
type lockHeldCheck struct {
	edges map[[2]string]*orderingEdge
}

// orderingEdge is the first-seen site of a nested acquisition.
type orderingEdge struct {
	site Diagnostic // position of the inner Lock; message filled at Finish
}

func newLockHeldCheck() *lockHeldCheck {
	return &lockHeldCheck{edges: map[[2]string]*orderingEdge{}}
}

func (*lockHeldCheck) Name() string { return "lockheld" }
func (*lockHeldCheck) Doc() string {
	return "no blocking operation while a same-function mutex is held; module-wide lock acquisition order must be acyclic"
}

// lockEvent is one Lock/RLock (or Unlock/RUnlock) call inside a block.
type lockEvent struct {
	key   string // rendered mutex expression ("s.mu")
	label string // module-wide identity ("sched.Scheduler.mu")
	block *Block
	idx   int // node index within the block
	node  ast.Node
}

// blockingOp is one blocking operation inside a block.
type blockingOp struct {
	desc  string
	block *Block
	idx   int
	node  ast.Node
}

func (c *lockHeldCheck) Run(pkg *Package) []Diagnostic {
	if !concurrentPackages[pkg.Rel] {
		return nil
	}
	var diags []Diagnostic
	analyze := func(body *ast.BlockStmt) {
		diags = append(diags, c.analyzeBody(pkg, body)...)
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			analyze(fd.Body)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					analyze(lit.Body)
					return false
				}
				return true
			})
		}
	}
	return diags
}

func (c *lockHeldCheck) analyzeBody(pkg *Package, body *ast.BlockStmt) []Diagnostic {
	cfg := BuildCFG(pkg, body)

	var locks, unlocks []lockEvent
	var blocking []blockingOp
	for _, blk := range cfg.Blocks {
		for i, n := range blk.Nodes {
			if cfg.SelectComm[asStmt(n)] {
				continue // judged via the SelectStmt head instead
			}
			scanLockNode(pkg, blk, i, n, &locks, &unlocks)
			scanBlockingNode(pkg, cfg, blk, i, n, &blocking)
		}
	}
	if len(locks) == 0 {
		return nil
	}

	unlockIn := map[string]map[int][]int{} // key → block index → node indices
	for _, u := range unlocks {
		m := unlockIn[u.key]
		if m == nil {
			m = map[int][]int{}
			unlockIn[u.key] = m
		}
		m[u.block.Index] = append(m[u.block.Index], u.idx)
	}

	held := func(l lockEvent, blk *Block, idx int) bool {
		return lockHeldAt(cfg, unlockIn[l.key], l, blk, idx)
	}

	var diags []Diagnostic
	for _, op := range blocking {
		for _, l := range locks {
			if held(l, op.block, op.idx) {
				diags = append(diags, diag(pkg, op.node, c.Name(),
					"%s while %s is held (locked at line %d); release the lock before blocking or move the operation out of the critical section",
					op.desc, l.key, pkg.Fset.Position(l.node.Pos()).Line))
				break // one report per operation is enough
			}
		}
	}

	// Nested acquisitions feed the module-wide ordering graph. Dominance
	// keeps it must-hold: the outer Lock is on every path to the inner one.
	idom := cfg.Dominators()
	for _, inner := range locks {
		for _, outer := range locks {
			if outer.label == inner.label {
				continue
			}
			dominated := Dominates(idom, outer.block, inner.block) &&
				(outer.block != inner.block || outer.idx < inner.idx)
			if !dominated || !held(outer, inner.block, inner.idx) {
				continue
			}
			k := [2]string{outer.label, inner.label}
			if c.edges[k] == nil {
				c.edges[k] = &orderingEdge{site: diag(pkg, inner.node, c.Name(), "")}
			}
		}
	}
	return diags
}

// Finish reports lock-ordering cycles discovered across the whole module.
func (c *lockHeldCheck) Finish() []Diagnostic {
	adj := map[string][]string{}
	for k := range c.edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, succs := range adj {
		sort.Strings(succs)
	}
	keys := make([][2]string, 0, len(c.edges))
	for k := range c.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	var diags []Diagnostic
	for _, k := range keys {
		chain := pathBetween(adj, k[1], k[0])
		if chain == nil {
			continue // edge not on a cycle
		}
		d := c.edges[k].site
		full := append([]string{k[0]}, chain...)
		d.Message = fmt.Sprintf(
			"lock ordering cycle: %s; two goroutines taking these locks in opposite orders deadlock — pick one global order",
			strings.Join(full, " → "))
		diags = append(diags, d)
	}
	return diags
}

// pathBetween returns a from→to node chain (inclusive) in adj, or nil.
func pathBetween(adj map[string][]string, from, to string) []string {
	prev := map[string]string{}
	seen := map[string]bool{from: true}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == to {
			var chain []string
			for at := to; ; at = prev[at] {
				chain = append([]string{at}, chain...)
				if at == from {
					return chain
				}
			}
		}
		for _, s := range adj[n] {
			if !seen[s] {
				seen[s] = true
				prev[s] = n
				queue = append(queue, s)
			}
		}
	}
	return nil
}

func asStmt(n ast.Node) ast.Stmt {
	st, _ := n.(ast.Stmt)
	return st
}

// lockHeldAt reports whether lock l is still held at node index idx of
// blk: some path from the Lock reaches it without passing the matching
// Unlock. Deferred unlocks are not releases on the path — that is the
// point.
func lockHeldAt(cfg *CFG, unlockIn map[int][]int, l lockEvent, blk *Block, idx int) bool {
	unlockBetween := func(b int, lo, hi int) bool {
		for _, ui := range unlockIn[b] {
			if ui > lo && ui < hi {
				return true
			}
		}
		return false
	}
	if blk == l.block {
		if l.idx < idx && !unlockBetween(blk.Index, l.idx, idx) {
			return true
		}
		// Same block but before the lock (or separated by an unlock): the
		// lock can still be held if control loops back around to blk.
	}
	// Leaving the lock's block: released if an unlock follows the Lock in
	// its own block.
	if unlockBetween(l.block.Index, l.idx, len(l.block.Nodes)) {
		return false
	}
	stop := func(b *Block) bool { return len(unlockIn[b.Index]) > 0 }
	if !cfg.CanReach(l.block, blk, stop, nil) {
		return false
	}
	// Reached blk from outside: held at idx unless an unlock sits earlier
	// in blk.
	return !unlockBetween(blk.Index, -1, idx)
}

// scanLockNode finds sync mutex Lock/RLock/Unlock/RUnlock calls in n's
// subtree (skipping closures, deferred calls and constructs whose bodies
// live in other blocks).
func scanLockNode(pkg *Package, blk *Block, idx int, n ast.Node, locks, unlocks *[]lockEvent) {
	switch n.(type) {
	case *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt, *ast.RangeStmt:
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
			return true
		}
		ev := lockEvent{
			key:   types.ExprString(sel.X),
			label: lockLabel(pkg, sel.X),
			block: blk,
			idx:   idx,
			node:  call,
		}
		switch fn.Name() {
		case "Lock", "RLock":
			*locks = append(*locks, ev)
		case "Unlock", "RUnlock":
			*unlocks = append(*unlocks, ev)
		}
		return true
	})
}

// lockLabel renders a module-wide identity for a mutex expression:
// "pkg.Type.field" when the mutex is a struct field, else "pkgrel.expr".
func lockLabel(pkg *Package, mutexExpr ast.Expr) string {
	if sel, ok := unparen(mutexExpr).(*ast.SelectorExpr); ok {
		if t := pkg.Info.TypeOf(sel.X); t != nil {
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + sel.Sel.Name
			}
		}
	}
	return pkg.Rel + "." + types.ExprString(mutexExpr)
}

// scanBlockingNode classifies blocking operations in n.
func scanBlockingNode(pkg *Package, cfg *CFG, blk *Block, idx int, n ast.Node, out *[]blockingOp) {
	add := func(node ast.Node, desc string) {
		*out = append(*out, blockingOp{desc: desc, block: blk, idx: idx, node: node})
	}
	switch n := n.(type) {
	case *ast.SelectStmt:
		hasDefault := false
		for _, cc := range n.Body.List {
			if clause, ok := cc.(*ast.CommClause); ok && clause.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			add(n, "blocking on a default-less select")
		}
		return // clause bodies live in their own blocks
	case *ast.RangeStmt:
		if t := pkg.Info.TypeOf(n.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				add(n, "ranging over a channel")
			}
		}
		return // loop body lives in its own blocks
	case *ast.GoStmt, *ast.DeferStmt:
		return
	case *ast.SendStmt:
		add(n, "channel send")
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				add(m, "channel receive")
			}
		case *ast.CallExpr:
			if desc, ok := blockingCall(pkg, m); ok {
				add(m, desc)
			}
		}
		return true
	})
}

// blockingCall recognises stdlib calls with unbounded latency.
func blockingCall(pkg *Package, call *ast.CallExpr) (string, bool) {
	var fn *types.Func
	switch f := call.Fun.(type) {
	case *ast.SelectorExpr:
		fn, _ = pkg.Info.Uses[f.Sel].(*types.Func)
	case *ast.Ident:
		fn, _ = pkg.Info.Uses[f].(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil {
		return "", false
	}
	name := fn.Name()
	switch fn.Pkg().Path() {
	case "time":
		if name == "Sleep" {
			return "time.Sleep", true
		}
	case "net/http":
		switch name {
		case "Do", "Get", "Post", "PostForm", "Head":
			return "an HTTP round-trip (http." + name + ")", true
		}
	case "sync":
		if name == "Wait" {
			return "sync Wait", true
		}
	case "os/exec":
		switch name {
		case "Run", "Wait", "Output", "CombinedOutput":
			return "waiting on a child process (exec." + name + ")", true
		}
	case "net":
		if strings.HasPrefix(name, "Dial") {
			return "a network dial (net." + name + ")", true
		}
	case "io":
		switch name {
		case "ReadAll", "Copy", "CopyN":
			return "an unbounded read (io." + name + ")", true
		}
	}
	return "", false
}
