package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// panicPolicyCheck constrains panics in the simulation core. A panic in
// sim-core is either an invariant assertion (corrupted simulator state —
// legitimately fatal, but it must say so with a pragma carrying the
// reason) or a must*-style constructor wrapper whose name advertises the
// behaviour. Anything else should return an error: the serving layer runs
// untrusted configs, and sched survives task panics only as a last-resort
// backstop.
type panicPolicyCheck struct{}

func (panicPolicyCheck) Name() string { return "panicpolicy" }
func (panicPolicyCheck) Doc() string {
	return "sim-core panics only inside must*/Must* or init, or with a //lint:allow panic <reason> pragma"
}

func (c panicPolicyCheck) Run(pkg *Package) []Diagnostic {
	if !simCorePackages[pkg.Rel] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || panicAllowedIn(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pkg.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				diags = append(diags, diag(pkg, call, c.Name(),
					"panic in %s (sim-core package %s); return an error, wrap in a must* helper, or annotate the invariant with //lint:allow panic <reason>",
					fd.Name.Name, pkg.Rel))
				return true
			})
		}
	}
	return diags
}

// panicAllowedIn reports whether a function name licenses panics: init
// funcs and must*/Must* wrappers, whose contract is exactly
// "panic instead of returning an error".
func panicAllowedIn(name string) bool {
	return name == "init" ||
		strings.HasPrefix(name, "must") || strings.HasPrefix(name, "Must")
}
