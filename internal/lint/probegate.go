package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// probeGateCheck enforces the observability contract from the probe/tracer
// design: a probed run must be architecturally identical to an unprobed
// one, which the pipeline achieves by making every observation hook a
// nil-able pointer (*Probe, *Tracer, and the distributed-trace *Span)
// whose dereferences all sit behind a nil guard. The check instantiates
// the shared guard-fact engine (facts.go) with a "hook-typed pointer"
// tracker: a field access or method call on a hook-typed expression is a
// finding unless every path to it passes a `x != nil` test (including
// `if x == nil { return }` early exits and short-circuit && / || chains).
// Methods on the hook types themselves are exempt for their own
// receiver — guarding is the caller's job.
type probeGateCheck struct{}

func (probeGateCheck) Name() string { return "probegate" }
func (probeGateCheck) Doc() string {
	return "every *pipeline.Probe / *pipeline.Tracer / *obs.Span dereference must be dominated by a nil guard"
}

// hookTypes maps each defining package (module-relative) to its nil-able
// hook type names. Spans join the probe/tracer discipline: an untraced
// fleet run carries nil spans end to end, so every deref needs a guard.
var hookTypes = map[string]map[string]bool{
	"internal/pipeline": {"Probe": true, "Tracer": true},
	"internal/obs":      {"Span": true},
}

// gatedPackages are the packages the dominance analysis walks: the hook
// definers plus internal/exec, whose fleet dispatch threads optional
// spans through every attempt.
var gatedPackages = map[string]bool{
	"internal/pipeline": true,
	"internal/obs":      true,
	"internal/exec":     true,
}

// isHookType reports whether obj names a hook type, matching the defining
// package by module-relative suffix so fixtures under any module path and
// the real module both resolve.
func isHookType(obj *types.TypeName) bool {
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	for rel, names := range hookTypes {
		if names[obj.Name()] && (path == rel || strings.HasSuffix(path, "/"+rel)) {
			return true
		}
	}
	return false
}

func (c probeGateCheck) Run(pkg *Package) []Diagnostic {
	if !gatedPackages[pkg.Rel] {
		return nil
	}
	var diags []Diagnostic
	w := &factWalker{
		pkg:     pkg,
		tracked: func(sel *ast.SelectorExpr) (string, bool) { return hookBase(pkg, sel) },
		report: func(sel *ast.SelectorExpr, key string) {
			diags = append(diags, diag(pkg, sel, c.Name(),
				"%s is dereferenced without a dominating nil guard; hook pointers are nil on unprobed runs (guard with `if %s != nil`)",
				types.ExprString(sel), key))
		},
	}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A method on a hook type trusts its own receiver: the nil
			// check belongs at the call site (which this check also sees).
			// The exemption is the baseline for closures inside the method
			// too — they capture the same already-vetted receiver.
			w.base = guards{}
			if name, isHook := receiverHookName(pkg, fd); isHook {
				w.base[name] = true
			}
			w.walkStmts(fd.Body.List, w.base.clone())
		}
	}
	return diags
}

// hookBase reports the rendered key of sel.X when sel dereferences a
// hook-typed pointer.
func hookBase(pkg *Package, sel *ast.SelectorExpr) (string, bool) {
	tv, ok := pkg.Info.Types[sel.X]
	if !ok || tv.Type == nil {
		return "", false
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return "", false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return "", false
	}
	if !isHookType(named.Obj()) {
		return "", false
	}
	return types.ExprString(sel.X), true
}

// receiverHookName reports the receiver identifier when fd is a method on
// one of the hook types.
func receiverHookName(pkg *Package, fd *ast.FuncDecl) (string, bool) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", false
	}
	field := fd.Recv.List[0]
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	id, ok := t.(*ast.Ident)
	if !ok || !hookTypes[pkg.Rel][id.Name] {
		return "", false
	}
	if len(field.Names) == 0 {
		return "", false
	}
	return field.Names[0].Name, true
}
