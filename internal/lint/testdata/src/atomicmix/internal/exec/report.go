// Package exec holds the cross-package half of the atomicmix fixture: a
// plain increment of a field the store package updates atomically.
package exec

import "elfetch/internal/store"

func Bump(g *store.Gauge) {
	g.Val++
}
