// Package store is the atomicmix fixture: fields updated through
// sync/atomic and then read or written plainly.
package store

import "sync/atomic"

type Counter struct {
	hits  int64
	total int64
}

// Inc updates hits atomically.
func (c *Counter) Inc() {
	atomic.AddInt64(&c.hits, 1)
}

// Read races: a plain load of the atomically-updated field.
func (c *Counter) Read() int64 {
	return c.hits
}

// IncTotal and ReadTotal use atomic access consistently; no finding.
func (c *Counter) IncTotal() {
	atomic.AddInt64(&c.total, 1)
}

func (c *Counter) ReadTotal() int64 {
	return atomic.LoadInt64(&c.total)
}

// Gauge's field is exported so another package can race on it.
type Gauge struct {
	Val int64
}

// SetGauge stores atomically — the cross-package plain increment in
// internal/exec is the other half of the race.
func SetGauge(g *Gauge, v int64) {
	atomic.StoreInt64(&g.Val, v)
}
