// Package store is the closecheck fixture: call-acquired closers that
// are leaked outright, leaked on one path, or handled correctly.
package store

import (
	"errors"
	"io"
	"net/http"
	"os"
)

var errBad = errors.New("bad status")

// FetchLeaky never closes the response body at all.
func FetchLeaky(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	return resp.StatusCode, nil
}

// FetchPartial closes on the happy path but leaks on the bad-status
// return.
func FetchPartial(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return 0, errBad
	}
	resp.Body.Close()
	return resp.StatusCode, nil
}

// FetchClean defers the close right after the error check — every path is
// covered, including the bad-status return.
func FetchClean(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, errBad
	}
	return resp.StatusCode, nil
}

// FetchDeferredClosure closes inside a deferred closure (drain-then-close
// for connection reuse); that counts.
func FetchDeferredClosure(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	return resp.StatusCode, nil
}

// ReadMetaLeaky leaks the file when the read fails.
func ReadMetaLeaky(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	b, err2 := io.ReadAll(f)
	if err2 != nil {
		return nil, err2
	}
	f.Close()
	return b, nil
}

// ReadMetaClean borrows the file to io.ReadAll and closes it via defer.
func ReadMetaClean(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

// OpenForCaller transfers ownership by returning the file; the caller
// owes the close, not this function.
func OpenForCaller(path string) (*os.File, error) {
	return os.Open(path)
}

// OpenEscapes hands the file to another function; no finding here.
func OpenEscapes(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	register(f)
	return nil
}

func register(c io.Closer) { sink = c }

var sink io.Closer

// drainClose closes its argument on the caller's behalf.
func drainClose(rc io.ReadCloser) {
	io.Copy(io.Discard, rc)
	rc.Close()
}

// FetchDelegated hands the body to a closing helper: the obligation
// transfers with it, so there is no finding here.
func FetchDelegated(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer drainClose(resp.Body)
	return resp.StatusCode, nil
}
