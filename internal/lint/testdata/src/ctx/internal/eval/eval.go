// Package eval is a ctx-check fixture for the honour rule in the second
// honour package.
package eval

import "context"

// Matrix takes a ctx but manufactures a TODO internally: flagged.
func Matrix(ctx context.Context) error {
	c := context.TODO()
	_, _ = c, ctx
	return nil
}
