// Package pipeline shows the struct-field rule is module-wide: a stored
// context outside sched's Job is flagged wherever it lives.
package pipeline

import "context"

type runState struct {
	ctx context.Context
}

// Ctx exposes the stored context so the field is used.
func (r *runState) Ctx() context.Context { return r.ctx }
