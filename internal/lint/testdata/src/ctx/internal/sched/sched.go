// Package sched is a ctx-check fixture: Job may hold a context, nothing
// else may, and exported ctx-taking functions must not detach.
package sched

import "context"

// Job is the blessed context holder.
type Job struct {
	ctx context.Context
}

// Scheduler illegally stores a context.
type Scheduler struct {
	base context.Context
}

// Run takes a ctx and then discards it for a detached one: flagged.
func Run(ctx context.Context) error {
	_ = ctx
	_ = context.Background()
	return nil
}

// helper is unexported; internal plumbing may build detached contexts.
func helper() context.Context {
	return context.Background()
}

// Detached is exported but takes no context, so constructing a root
// context is its stated job: no finding.
func Detached() context.Context {
	return helper()
}
