// Package eval is outside the simulation core: wall-clock reads here are
// legitimate (job timing, logs) and must not be flagged.
package eval

import "time"

// Elapsed times a closure.
func Elapsed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}
