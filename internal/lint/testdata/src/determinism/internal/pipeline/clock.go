// Package pipeline is a determinism-check fixture: every ambient-state
// read below must be flagged, and the pragma-suppressed one must not.
package pipeline

import (
	"fmt"
	"math/rand"
	"os"
	"time"
)

// Tick reads the wall clock twice.
func Tick() int64 {
	start := time.Now()
	_ = time.Since(start)
	return start.UnixNano()
}

// Seed leans on ambient randomness via the banned import.
func Seed() int { return rand.Int() }

// Env reads the environment.
func Env() string { return os.Getenv("ELF") }

// Sum accumulates floats and appends across a map range: both
// order-sensitive.
func Sum(m map[string]float64) (float64, []string) {
	var total float64
	var keys []string
	for k, v := range m {
		total += v
		keys = append(keys, k)
	}
	return total, keys
}

// Dump prints in map order.
func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}

// CountOK shows an order-insensitive map range: integer accumulation
// commutes, so no finding.
func CountOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedOK appends inside the loop but to a slice declared inside a
// nested loop scope is still outside-the-range; the sanctioned pattern is
// collecting into a locally sorted copy, which the pragma documents.
func SortedOK(m map[string]int) []string {
	var keys []string
	for k := range m {
		//lint:ignore determinism keys are sorted by the caller immediately after
		keys = append(keys, k)
	}
	return keys
}
