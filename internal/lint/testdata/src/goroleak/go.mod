module elfetch

go 1.22
