// Package exec is the goroleak fixture: goroutines with and without a
// provable exit path.
package exec

func work() {}

// SpawnForever leaks: the loop has no exit edge and no case returns.
func SpawnForever() {
	go func() {
		for {
			work()
		}
	}()
}

// SpawnBreakBug leaks the classic way: break only exits the select, so
// the enclosing for spins again and the goroutine never ends.
func SpawnBreakBug(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				break
			}
		}
	}()
}

// runForever leaks when spawned: an unconditional loop around a send.
func runForever(ch chan int) {
	for {
		ch <- 1
	}
}

// SpawnNamed resolves the named same-package function and finds the leak
// in its body.
func SpawnNamed(ch chan int) {
	go runForever(ch)
}

// SpawnIgnored leaks by design (a process-lifetime pump) and is
// suppressed with a reasoned pragma, so it must not appear in the golden.
func SpawnIgnored() {
	//lint:ignore goroleak metrics pump is process-lifetime by design
	go func() {
		for {
			work()
		}
	}()
}

// SpawnClean is the idiomatic shutdown shape: the done case returns.
func SpawnClean(done chan struct{}, ch chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case v := <-ch:
				_ = v
			}
		}
	}()
}

// SpawnBounded exits through the range's natural exit edge.
func SpawnBounded(items []int) {
	go func() {
		for range items {
			work()
		}
	}()
}

// SpawnLabeledBreak exits by breaking out of the labeled loop from inside
// the select — the correct version of SpawnBreakBug.
func SpawnLabeledBreak(done chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-done:
				break loop
			}
		}
	}()
}
