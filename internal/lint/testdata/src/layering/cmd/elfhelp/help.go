// Package elfhelp is an importable cmd/ package for the layering fixture.
package elfhelp

// Banner is a greeting.
const Banner = "elf"
