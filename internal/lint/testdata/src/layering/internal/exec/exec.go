// Package exec is a serving-layer stand-in (execution backends) for the
// layering fixture.
package exec

// Cells reports dispatched cells.
func Cells() int { return 0 }
