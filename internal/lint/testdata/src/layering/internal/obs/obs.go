// Package obs must stay leaf-level; this fixture file violates that by
// importing a module-internal package.
package obs

import "elfetch/internal/report"

// Export leaks a serving-layer type through the metrics registry.
func Export() report.Table { return report.Table{} }
