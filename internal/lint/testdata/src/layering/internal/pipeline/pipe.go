// Package pipeline is a sim-core stand-in that illegally reaches into the
// serving layer and into cmd/*.
package pipeline

import (
	"elfetch/cmd/elfhelp"
	"elfetch/internal/exec"
	"elfetch/internal/report"
	"elfetch/internal/sched"
	"elfetch/internal/store"
)

// Cycle pretends to need serving-layer facilities.
func Cycle() (string, int) {
	_ = report.Table{}
	return elfhelp.Banner, sched.Workers() + exec.Cells() + store.Persist()
}
