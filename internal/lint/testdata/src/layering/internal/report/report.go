// Package report is a serving-layer stand-in for the layering fixture.
package report

// Table is a result table.
type Table struct{}
