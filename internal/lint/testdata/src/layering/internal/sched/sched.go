// Package sched is a serving-layer stand-in for the layering fixture.
package sched

// Workers reports the pool size.
func Workers() int { return 1 }
