// Package store is the persistence-leaf stand-in: importing
// internal/obs is sanctioned, importing any other module-internal
// package is a layering violation.
package store

import (
	"elfetch/internal/obs"
	"elfetch/internal/sched"
)

// Persist pretends the store needs scheduler types, which the layering
// rule bans — values must stay opaque bytes.
func Persist() int {
	_ = obs.Export()
	return sched.Workers()
}
