// Package exec closes the lock-ordering cycle: it acquires Queue.Mu
// while holding Registry.Mu, the opposite of sched.Link.
package exec

import "elfetch/internal/sched"

func Relink(q *sched.Queue, r *sched.Registry) {
	r.Mu.Lock()
	q.Mu.Lock()
	q.Mu.Unlock()
	r.Mu.Unlock()
}
