// Package sched is the lockheld fixture: blocking operations under a
// held mutex, and one half of a cross-package lock-ordering cycle.
package sched

import (
	"sync"
	"time"
)

type Queue struct {
	Mu    sync.Mutex
	items chan int
}

type Registry struct {
	Mu sync.Mutex
}

// Push blocks on a channel send while holding Mu (the deferred unlock
// releases only at return).
func (q *Queue) Push(v int) {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	q.items <- v
}

// PushUnlocked releases before the send; no finding.
func (q *Queue) PushUnlocked(v int) {
	q.Mu.Lock()
	q.Mu.Unlock()
	q.items <- v
}

// TryPush sends inside a select with a default case, which never blocks;
// no finding.
func (q *Queue) TryPush(v int) bool {
	q.Mu.Lock()
	defer q.Mu.Unlock()
	select {
	case q.items <- v:
		return true
	default:
		return false
	}
}

// SlowDrain sleeps under the lock.
func (q *Queue) SlowDrain() {
	q.Mu.Lock()
	time.Sleep(time.Millisecond)
	q.Mu.Unlock()
}

// Link acquires Registry.Mu under Queue.Mu: the sched half of the
// ordering cycle (exec.Relink takes them in the opposite order).
func Link(q *Queue, r *Registry) {
	q.Mu.Lock()
	r.Mu.Lock()
	r.Mu.Unlock()
	q.Mu.Unlock()
}
