// Package core is a panicpolicy fixture: sim-core panics must live in
// must*/Must* helpers or init, or carry an //lint:allow panic pragma.
package core

// New panics from a plain constructor: flagged.
func New(size int) int {
	if size <= 0 {
		panic("core: bad size")
	}
	return size
}

// mustSize is the sanctioned wrapper shape: its name advertises the
// panic, so no finding.
func mustSize(size int) int {
	if size <= 0 {
		panic("core: bad size")
	}
	return size
}

// MustNew is the exported wrapper shape.
func MustNew(size int) int {
	if size <= 0 {
		panic("core: bad size")
	}
	return mustSize(size)
}

func init() {
	if mustSize(1) != 1 {
		panic("core: init self-check failed")
	}
}

// checked carries the pragma alias with a reason: suppressed.
func checked(x int) {
	if x < 0 {
		//lint:allow panic fixture demonstrates the allow alias
		panic("core: negative")
	}
}

var _ = checked
