// Package eval sits outside the simulation core, where the panic policy
// does not apply.
package eval

// Boom panics freely; not a finding.
func Boom() {
	panic("eval: boom")
}
