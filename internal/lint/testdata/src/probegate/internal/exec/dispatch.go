// Package exec is a probegate fixture for cross-package hook use: the
// fleet dispatcher threads optional *obs.Span pointers through every
// attempt, and each deref outside the defining package needs a guard —
// the receiver exemption does not travel.
package exec

import "elfetch/internal/obs"

// badDispatch dereferences the hop span with no guard.
func badDispatch(hop *obs.Span) {
	hop.SetError("unreachable worker")
}

// badField reads a hook field through an unguarded local copy.
func badField(hop *obs.Span) string {
	h := hop
	return h.Name
}

// goodDispatch guards the deref on every path.
func goodDispatch(hop *obs.Span, failed bool) {
	if hop != nil {
		if failed {
			hop.SetError("unreachable worker")
		}
		hop.Name = "dispatch"
	}
}

// traceOf is the nil-safe accessor idiom the real dispatcher uses.
func traceOf(s *obs.Span) string {
	if s == nil {
		return ""
	}
	return s.Name
}
