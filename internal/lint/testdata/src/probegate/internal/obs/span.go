// Package obs is a probegate fixture for the *Span hook: spans are nil
// on untraced runs, so every dereference outside the type's own methods
// needs a dominating nil guard.
package obs

// Span is the nil-able distributed-trace hook.
type Span struct {
	Name string
	Err  string
}

// SetError is a method on the hook: the receiver is the caller's
// responsibility, so the unguarded derefs here are exempt.
func (s *Span) SetError(msg string) {
	s.Err = msg
}

// finish exercises the receiver exemption through a closure.
func (s *Span) finish(f func()) {
	f()
	s.Name = "done"
}

// badRead dereferences a span parameter with no guard.
func badRead(s *Span) string {
	return s.Name
}

// goodRead uses the early-return idiom.
func goodRead(s *Span) string {
	if s == nil {
		return ""
	}
	return s.Name
}

// fresh allocates its own span: non-nil by construction, so the derefs
// need no guard.
func fresh(name string) *Span {
	s := &Span{Name: name}
	s.Err = ""
	return s
}

// goodCall guards a method call with the canonical && chain.
func goodCall(s *Span, failed bool) {
	if s != nil && failed {
		s.SetError("boom")
	}
}
