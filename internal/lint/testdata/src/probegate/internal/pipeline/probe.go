// Package pipeline is a probegate fixture: hook pointers (*Probe,
// *Tracer) must only be dereferenced behind nil guards. Guarded forms —
// && chains, || early exits, early returns, receiver methods and their
// closures — must stay clean; the unguarded forms must be flagged.
package pipeline

// Observer receives one sample.
type Observer interface{ Observe(v float64) }

// Probe is the nil-able observation hook.
type Probe struct {
	Flush Observer
	Every uint64
}

// every resolves the sampling period; the receiver is the caller's
// responsibility, so no finding here.
func (p *Probe) every() uint64 {
	if p.Every == 0 {
		return 64
	}
	return p.Every
}

// Tracer is the second hook type.
type Tracer struct{ n int }

func (t *Tracer) bump(f func()) {
	t.n++
	f()
}

// closure exercises the receiver exemption through a closure.
func (t *Tracer) closure() {
	t.bump(func() { t.n++ })
}

// Machine owns the hooks.
type Machine struct {
	probe  *Probe
	tracer *Tracer
}

// bad dereferences the probe with no guard at all.
func (m *Machine) bad(now uint64) {
	m.probe.Flush.Observe(float64(now))
}

// alias dereferences through an unguarded local copy.
func (m *Machine) alias() uint64 {
	p := m.probe
	return p.Every
}

// guarded uses the canonical && chain.
func (m *Machine) guarded(now uint64) {
	if m.probe != nil && m.probe.Flush != nil {
		m.probe.Flush.Observe(float64(now))
	}
}

// early uses the early-return idiom.
func (m *Machine) early() uint64 {
	p := m.probe
	if p == nil {
		return 0
	}
	return p.every()
}

// orChain uses short-circuit || in the exit test.
func (m *Machine) orChain() {
	if m.probe == nil || m.probe.Flush == nil {
		return
	}
	m.probe.Flush.Observe(1)
}

// reassigned shows a guard destroyed by assignment: the second
// dereference must be flagged.
func (m *Machine) reassigned() uint64 {
	if m.probe != nil {
		m.probe = nil
		return m.probe.Every
	}
	return 0
}

// pragma demonstrates suppression with a recorded reason.
func (m *Machine) pragma() {
	//lint:ignore probegate fixture demonstrates suppression
	m.tracer.n++
}
