package obs

// Metrics federation: a -fleet coordinator periodically scrapes each
// worker's /metrics (the text format prom.go emits), keeps the latest
// snapshot per worker, and serves one merged fleet view. Merge rules:
//
//   - every worker series is re-exported with a `worker="<addr>"` label,
//     so per-worker attribution survives federation;
//   - an aggregate series per (family, label set) is emitted with
//     `worker="all"`: counters and histograms (bucket-wise, plus sum and
//     count) are summed across workers; gauges take the last-scraped
//     worker's value in configured order (summing gauges is meaningless
//     — the per-worker series carry the truth);
//   - each scrape replaces that worker's snapshot wholesale (the scraped
//     counters are already cumulative; adding snapshots would double
//     count).
//
// The parser understands exactly the dialect prom.go writes (HELP/TYPE
// comments, escaped labels, cumulative histogram buckets) and tolerates
// unknown lines, so a coordinator can also federate a stock Prometheus
// client's output.

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// fedSeries is one parsed sample row (one label set within a family).
type fedSeries struct {
	labels      []Label // without the histogram's le label
	value       float64 // counter or gauge value
	buckets     map[string]float64
	bucketOrder []string // le values in appearance order
	sum         float64
	count       float64
}

// fedFamily is one parsed metric family.
type fedFamily struct {
	name, help, typ string
	order           []string
	series          map[string]*fedSeries
}

func (f *fedFamily) get(labels []Label) *fedSeries {
	key := labelKey(labels)
	s, ok := f.series[key]
	if !ok {
		s = &fedSeries{labels: append([]Label(nil), labels...)}
		f.series[key] = s
		f.order = append(f.order, key)
	}
	return s
}

// parsePromText parses a Prometheus text exposition into families.
func parsePromText(r io.Reader) ([]*fedFamily, error) {
	byName := map[string]*fedFamily{}
	var order []*fedFamily
	family := func(name string) *fedFamily {
		f, ok := byName[name]
		if !ok {
			f = &fedFamily{name: name, typ: "untyped", series: map[string]*fedSeries{}}
			byName[name] = f
			order = append(order, f)
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "# HELP "):
			rest := line[len("# HELP "):]
			if name, help, ok := strings.Cut(rest, " "); ok {
				family(name).help = help
			} else {
				family(rest)
			}
			continue
		case strings.HasPrefix(line, "# TYPE "):
			rest := line[len("# TYPE "):]
			if name, typ, ok := strings.Cut(rest, " "); ok {
				family(name).typ = typ
			}
			continue
		case strings.HasPrefix(line, "#"):
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return nil, err
		}
		// Histogram sub-series fold into their base family.
		base, part := name, ""
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, suffix)
			if trimmed != name {
				if f, ok := byName[trimmed]; ok && f.typ == typeHistogram {
					base, part = trimmed, suffix
				}
				break
			}
		}
		f := family(base)
		switch part {
		case "_bucket":
			le := ""
			rest := labels[:0]
			for _, l := range labels {
				if l.Name == "le" {
					le = l.Value
				} else {
					rest = append(rest, l)
				}
			}
			s := f.get(rest)
			if s.buckets == nil {
				s.buckets = map[string]float64{}
			}
			if _, seen := s.buckets[le]; !seen {
				s.bucketOrder = append(s.bucketOrder, le)
			}
			s.buckets[le] = value
		case "_sum":
			f.get(labels).sum = value
		case "_count":
			f.get(labels).count = value
		default:
			f.get(labels).value = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading exposition: %w", err)
	}
	return order, nil
}

// parseSample splits `name{a="b",...} value` into its parts.
func parseSample(line string) (name string, labels []Label, value float64, err error) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i >= 0 {
		name, rest = rest[:i], rest[i:]
	} else {
		return "", nil, 0, fmt.Errorf("obs: sample %q has no value", line)
	}
	if strings.HasPrefix(rest, "{") {
		end, err := labelSetEnd(rest)
		if err != nil {
			return "", nil, 0, fmt.Errorf("obs: sample %q: %w", line, err)
		}
		labels, err = parseLabels(rest[1:end])
		if err != nil {
			return "", nil, 0, fmt.Errorf("obs: sample %q: %w", line, err)
		}
		rest = rest[end+1:]
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("obs: sample %q: bad value: %w", line, err)
	}
	return name, labels, v, nil
}

// labelSetEnd finds the index of the closing '}' of a label set opened at
// rest[0], honouring quoted, escaped values.
func labelSetEnd(rest string) (int, error) {
	inQuote := false
	for i := 1; i < len(rest); i++ {
		switch rest[i] {
		case '\\':
			if inQuote {
				i++
			}
		case '"':
			inQuote = !inQuote
		case '}':
			if !inQuote {
				return i, nil
			}
		}
	}
	return 0, fmt.Errorf("unterminated label set")
}

// parseLabels parses `a="b",c="d"` (already stripped of braces).
func parseLabels(s string) ([]Label, error) {
	var out []Label
	for len(s) > 0 {
		eq := strings.Index(s, "=")
		if eq < 0 {
			return nil, fmt.Errorf("bad label in %q", s)
		}
		name := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, fmt.Errorf("unquoted label value for %q", name)
		}
		var sb strings.Builder
		i := 1
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					sb.WriteByte('\n')
				default:
					sb.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			sb.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated value for label %q", name)
		}
		out = append(out, Label{Name: name, Value: sb.String()})
		s = strings.TrimPrefix(s[i+1:], ",")
	}
	return out, nil
}

// FederationConfig wires a Federation.
type FederationConfig struct {
	// Workers lists the worker base URLs to scrape, in the order gauges
	// resolve their last-write aggregate.
	Workers []string
	// Client performs the scrapes (nil = 10-second timeout).
	Client *http.Client
	// Path is the exposition endpoint (0 = "/metrics").
	Path string
	// Metrics, when non-nil, receives the federation's own counters
	// (elf_fed_scrapes_total, elf_fed_scrape_errors_total,
	// elf_fed_worker_up) — on a coordinator this is its main registry, so
	// scrape health shows up in the fleet view itself.
	Metrics *Registry
}

// fedWorkerState is one worker's scrape ledger.
type fedWorkerState struct {
	up         bool
	lastScrape time.Time
	lastErr    string
	families   []*fedFamily

	mScrapes *Counter
	mErrors  *Counter
	mUp      *Gauge
}

// Federation scrapes worker /metrics endpoints and serves the merged
// fleet view (see the package comment for the merge rules).
type Federation struct {
	cfg    FederationConfig
	client *http.Client

	mu    sync.Mutex
	state map[string]*fedWorkerState
}

// NewFederation returns a federation over cfg.Workers. No scraping
// happens until Scrape is called (callers own the cadence).
func NewFederation(cfg FederationConfig) *Federation {
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if cfg.Path == "" {
		cfg.Path = "/metrics"
	}
	f := &Federation{cfg: cfg, client: cfg.Client, state: map[string]*fedWorkerState{}}
	for i, addr := range cfg.Workers {
		addr = strings.TrimRight(addr, "/")
		cfg.Workers[i] = addr
		st := &fedWorkerState{}
		if cfg.Metrics != nil {
			lbl := L("worker", addr)
			st.mScrapes = cfg.Metrics.Counter("elf_fed_scrapes_total",
				"Completed federation scrapes of a worker's /metrics.", lbl)
			st.mErrors = cfg.Metrics.Counter("elf_fed_scrape_errors_total",
				"Federation scrapes that failed.", lbl)
			st.mUp = cfg.Metrics.Gauge("elf_fed_worker_up",
				"1 while the worker's last federation scrape succeeded.", lbl)
		}
		f.state[addr] = st
	}
	return f
}

// Scrape fetches every worker's exposition once, replacing snapshots.
// Failures mark the worker down and keep its previous snapshot (stale
// beats absent for post-mortems); the error lands in Summary.
func (f *Federation) Scrape(ctx context.Context) {
	for _, addr := range f.cfg.Workers {
		if err := f.scrapeOne(ctx, addr); err != nil {
			f.markDown(addr, err)
		}
	}
}

func (f *Federation) scrapeOne(ctx context.Context, addr string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, addr+f.cfg.Path, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer DrainClose(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape %s: %s", addr+f.cfg.Path, resp.Status)
	}
	return f.UpdateFrom(addr, resp.Body)
}

// UpdateFrom parses one exposition and installs it as worker's snapshot
// (exported so tests and push-style feeders can bypass HTTP).
func (f *Federation) UpdateFrom(worker string, r io.Reader) error {
	fams, err := parsePromText(r)
	if err != nil {
		f.markDown(worker, err)
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.state[worker]
	if !ok {
		return fmt.Errorf("obs: federation has no worker %q", worker)
	}
	st.families = fams
	st.up = true
	st.lastScrape = time.Now()
	st.lastErr = ""
	if st.mScrapes != nil {
		st.mScrapes.Inc()
	}
	if st.mUp != nil {
		st.mUp.SetBool(true)
	}
	return nil
}

// markDown records a failed scrape.
func (f *Federation) markDown(worker string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.state[worker]
	if !ok {
		return
	}
	st.up = false
	st.lastErr = err.Error()
	if st.mErrors != nil {
		st.mErrors.Inc()
	}
	if st.mUp != nil {
		st.mUp.SetBool(false)
	}
}

// FedWorker is one worker's federation status for /debug/stats.
type FedWorker struct {
	Addr       string    `json:"addr"`
	Up         bool      `json:"up"`
	LastScrape time.Time `json:"lastScrape,omitempty"`
	Error      string    `json:"error,omitempty"`
	Families   int       `json:"families"`
}

// Summary snapshots every worker's scrape state in configured order.
func (f *Federation) Summary() []FedWorker {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FedWorker, 0, len(f.cfg.Workers))
	for _, addr := range f.cfg.Workers {
		st := f.state[addr]
		out = append(out, FedWorker{
			Addr: addr, Up: st.up, LastScrape: st.lastScrape,
			Error: st.lastErr, Families: len(st.families),
		})
	}
	return out
}

// snapshot copies the per-worker family lists under the lock. The family
// structures are replaced wholesale by UpdateFrom, never mutated, so the
// returned pointers are safe to read without it.
func (f *Federation) snapshot() map[string][]*fedFamily {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string][]*fedFamily, len(f.state))
	for addr, st := range f.state {
		out[addr] = st.families
	}
	return out
}

// mergedRow is one exposition row of the fleet view.
type mergedRow struct {
	labels []Label
	s      *fedSeries
	typ    string
}

// WriteFleetMetrics renders the coordinator's fleet view: its own
// registry merged with every worker's latest snapshot under the
// federation merge rules. Families sort by name; within a family the
// coordinator's own series come first, then the `worker="all"`
// aggregates, then per-worker series in configured worker order —
// deterministic, golden-testable output.
func WriteFleetMetrics(w io.Writer, own *Registry, fed *Federation) error {
	var sb strings.Builder
	if err := own.WritePrometheus(&sb); err != nil {
		return err
	}
	ownFams, err := parsePromText(strings.NewReader(sb.String()))
	if err != nil {
		return err
	}

	type outFamily struct {
		help, typ string
		rows      []mergedRow
	}
	fams := map[string]*outFamily{}
	var names []string
	get := func(name, help, typ string) *outFamily {
		f, ok := fams[name]
		if !ok {
			f = &outFamily{help: help, typ: typ}
			fams[name] = f
			names = append(names, name)
		}
		return f
	}
	for _, f := range ownFams {
		of := get(f.name, f.help, f.typ)
		for _, key := range f.order {
			of.rows = append(of.rows, mergedRow{labels: f.series[key].labels, s: f.series[key], typ: f.typ})
		}
	}

	if fed != nil {
		snaps := fed.snapshot()
		// Aggregate pass: sum counters/histograms, last-write gauges.
		type aggKey struct{ fam, labels string }
		aggs := map[aggKey]*fedSeries{}
		var aggOrder []aggKey
		for _, addr := range fed.cfg.Workers {
			for _, f := range snaps[addr] {
				of := get(f.name, f.help, f.typ)
				if of.typ == "untyped" && f.typ != "untyped" {
					of.typ, of.help = f.typ, f.help
				}
				for _, key := range f.order {
					s := f.series[key]
					k := aggKey{f.name, key}
					a, ok := aggs[k]
					if !ok {
						a = &fedSeries{labels: append([]Label(nil), s.labels...)}
						aggs[k] = a
						aggOrder = append(aggOrder, k)
					}
					mergeSeries(a, s, f.typ)
				}
			}
		}
		for _, k := range aggOrder {
			of := fams[k.fam]
			of.rows = append(of.rows, mergedRow{
				labels: append(append([]Label(nil), aggs[k].labels...), L("worker", "all")),
				s:      aggs[k], typ: of.typ,
			})
		}
		// Per-worker pass: every series re-labeled with its worker.
		for _, addr := range fed.cfg.Workers {
			for _, f := range snaps[addr] {
				of := fams[f.name]
				for _, key := range f.order {
					s := f.series[key]
					of.rows = append(of.rows, mergedRow{
						labels: append(append([]Label(nil), s.labels...), L("worker", addr)),
						s:      s, typ: of.typ,
					})
				}
			}
		}
	}

	sort.Strings(names)
	for _, name := range names {
		f := fams[name]
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		for _, row := range f.rows {
			if err := writeMergedRow(w, name, row); err != nil {
				return err
			}
		}
	}
	return nil
}

// mergeSeries folds src into agg under the family-type merge rule.
func mergeSeries(agg, src *fedSeries, typ string) {
	switch typ {
	case typeHistogram:
		if agg.buckets == nil {
			agg.buckets = map[string]float64{}
		}
		for _, le := range src.bucketOrder {
			if _, seen := agg.buckets[le]; !seen {
				agg.bucketOrder = append(agg.bucketOrder, le)
			}
			agg.buckets[le] += src.buckets[le]
		}
		agg.sum += src.sum
		agg.count += src.count
	case typeGauge:
		agg.value = src.value // last write wins, worker order
	default: // counter, untyped
		agg.value += src.value
	}
}

// writeMergedRow renders one fleet-view row in prom.go's dialect.
func writeMergedRow(w io.Writer, name string, row mergedRow) error {
	if row.typ == typeHistogram {
		for _, le := range row.s.bucketOrder {
			ls := append(append([]Label(nil), row.labels...), L("le", le))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %s\n",
				name, labelString(ls), formatFloat(row.s.buckets[le])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n",
			name, labelString(row.labels), formatFloat(row.s.sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %s\n",
			name, labelString(row.labels), formatFloat(row.s.count))
		return err
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, labelString(row.labels), formatFloat(row.s.value))
	return err
}

// FleetHandler serves the merged fleet view at GET /metrics.
func FleetHandler(own *Registry, fed *Federation) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		WriteFleetMetrics(w, own, fed)
	})
}
