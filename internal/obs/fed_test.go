package obs

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestParsePromTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("reqs_total", "requests", L("code", "2xx")).Add(7)
	r.Gauge("depth", "queue depth").Set(2.5)
	r.Counter("escaped", "", L("path", `a"b\c`+"\n")).Inc()
	h := r.Histogram("lat", "latency", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := parsePromText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*fedFamily{}
	for _, f := range fams {
		byName[f.name] = f
	}
	if f := byName["reqs_total"]; f == nil || f.typ != "counter" || f.help != "requests" {
		t.Fatalf("reqs_total family = %+v", f)
	} else {
		s := f.series[f.order[0]]
		if s.value != 7 || len(s.labels) != 1 || s.labels[0].Value != "2xx" {
			t.Errorf("reqs_total series = %+v", s)
		}
	}
	if f := byName["depth"]; f == nil || f.series[""].value != 2.5 {
		t.Fatalf("depth family = %+v", f)
	}
	if f := byName["escaped"]; f == nil {
		t.Fatal("escaped family missing")
	} else if got := f.series[f.order[0]].labels[0].Value; got != `a"b\c`+"\n" {
		t.Errorf("label unescape = %q", got)
	}
	f := byName["lat"]
	if f == nil || f.typ != "histogram" {
		t.Fatalf("lat family = %+v", f)
	}
	s := f.series[""]
	if s == nil {
		t.Fatal("lat series missing")
	}
	if s.buckets["1"] != 1 || s.buckets["2"] != 1 || s.buckets["+Inf"] != 2 {
		t.Errorf("lat buckets = %v", s.buckets)
	}
	if s.sum != 9.5 || s.count != 2 {
		t.Errorf("lat sum/count = %v/%v", s.sum, s.count)
	}
	if len(byName) != 4 {
		t.Errorf("parsed %d families, want 4 (histogram parts must fold in)", len(byName))
	}
}

func TestParsePromTextErrors(t *testing.T) {
	for _, bad := range []string{
		"metric",             // no value
		`metric{a="b} 1`,     // unterminated quote
		`metric{a} 1`,        // label without value
		"metric notanumber",  // bad value
		`metric{a="b"} oops`, // bad value after labels
	} {
		if _, err := parsePromText(strings.NewReader(bad)); err == nil {
			t.Errorf("parsePromText(%q) accepted", bad)
		}
	}
}

const fedWorker1 = `# HELP elfd_cells_total cells
# TYPE elfd_cells_total counter
elfd_cells_total{code="ok"} 3
# HELP elfd_queue_depth depth
# TYPE elfd_queue_depth gauge
elfd_queue_depth 2
# HELP elfd_run_seconds run time
# TYPE elfd_run_seconds histogram
elfd_run_seconds_bucket{le="1"} 1
elfd_run_seconds_bucket{le="+Inf"} 2
elfd_run_seconds_sum 2.5
elfd_run_seconds_count 2
`

const fedWorker2 = `# HELP elfd_cells_total cells
# TYPE elfd_cells_total counter
elfd_cells_total{code="ok"} 4
# HELP elfd_queue_depth depth
# TYPE elfd_queue_depth gauge
elfd_queue_depth 5
# HELP elfd_run_seconds run time
# TYPE elfd_run_seconds histogram
elfd_run_seconds_bucket{le="1"} 3
elfd_run_seconds_bucket{le="+Inf"} 3
elfd_run_seconds_sum 1.5
elfd_run_seconds_count 3
`

// TestFleetMetricsGolden pins the federated exposition byte-for-byte:
// merge rules (summed counters and histograms, last-write gauges), the
// worker="all" aggregate, per-worker labels, and deterministic ordering.
func TestFleetMetricsGolden(t *testing.T) {
	own := NewRegistry()
	own.Counter("coord_grids_total", "grids").Inc()
	fed := NewFederation(FederationConfig{Workers: []string{"http://w1:9", "http://w2:9"}})
	if err := fed.UpdateFrom("http://w1:9", strings.NewReader(fedWorker1)); err != nil {
		t.Fatal(err)
	}
	if err := fed.UpdateFrom("http://w2:9", strings.NewReader(fedWorker2)); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := WriteFleetMetrics(&sb, own, fed); err != nil {
		t.Fatal(err)
	}
	want := `# HELP coord_grids_total grids
# TYPE coord_grids_total counter
coord_grids_total 1
# HELP elfd_cells_total cells
# TYPE elfd_cells_total counter
elfd_cells_total{code="ok",worker="all"} 7
elfd_cells_total{code="ok",worker="http://w1:9"} 3
elfd_cells_total{code="ok",worker="http://w2:9"} 4
# HELP elfd_queue_depth depth
# TYPE elfd_queue_depth gauge
elfd_queue_depth{worker="all"} 5
elfd_queue_depth{worker="http://w1:9"} 2
elfd_queue_depth{worker="http://w2:9"} 5
# HELP elfd_run_seconds run time
# TYPE elfd_run_seconds histogram
elfd_run_seconds_bucket{worker="all",le="1"} 4
elfd_run_seconds_bucket{worker="all",le="+Inf"} 5
elfd_run_seconds_sum{worker="all"} 4
elfd_run_seconds_count{worker="all"} 5
elfd_run_seconds_bucket{worker="http://w1:9",le="1"} 1
elfd_run_seconds_bucket{worker="http://w1:9",le="+Inf"} 2
elfd_run_seconds_sum{worker="http://w1:9"} 2.5
elfd_run_seconds_count{worker="http://w1:9"} 2
elfd_run_seconds_bucket{worker="http://w2:9",le="1"} 3
elfd_run_seconds_bucket{worker="http://w2:9",le="+Inf"} 3
elfd_run_seconds_sum{worker="http://w2:9"} 1.5
elfd_run_seconds_count{worker="http://w2:9"} 3
`
	if sb.String() != want {
		t.Errorf("fleet exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}

	// A second render from the same snapshots must be byte-identical
	// (the merge must not mutate the stored snapshots).
	var again strings.Builder
	if err := WriteFleetMetrics(&again, own, fed); err != nil {
		t.Fatal(err)
	}
	if again.String() != sb.String() {
		t.Error("second render differs — merge mutated the snapshots")
	}
}

func TestFederationScrapeAndMarkDown(t *testing.T) {
	workerReg := NewRegistry()
	workerReg.Counter("elfd_cells_total", "cells").Add(5)
	srv := httptest.NewServer(Handler(workerReg))

	coord := NewRegistry()
	fed := NewFederation(FederationConfig{Workers: []string{srv.URL}, Metrics: coord})
	fed.Scrape(context.Background())

	sum := fed.Summary()
	if len(sum) != 1 || !sum[0].Up || sum[0].Families != 1 || sum[0].Error != "" {
		t.Fatalf("summary after scrape = %+v", sum)
	}
	var sb strings.Builder
	if err := WriteFleetMetrics(&sb, coord, fed); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`elfd_cells_total{worker="all"} 5`,
		`elf_fed_worker_up{worker="` + srv.URL + `"} 1`,
		"elf_fed_scrapes_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("fleet view missing %q:\n%s", want, sb.String())
		}
	}

	// Kill the worker: the next scrape marks it down but keeps the stale
	// snapshot for post-mortems.
	srv.Close()
	fed.Scrape(context.Background())
	sum = fed.Summary()
	if sum[0].Up || sum[0].Error == "" || sum[0].Families != 1 {
		t.Fatalf("summary after kill = %+v", sum)
	}
	sb.Reset()
	if err := WriteFleetMetrics(&sb, coord, fed); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `elf_fed_worker_up{worker="`+srv.URL+`"} 0`) {
		t.Errorf("worker not marked down:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), `elfd_cells_total{worker="all"} 5`) {
		t.Errorf("stale snapshot dropped:\n%s", sb.String())
	}
}

func TestFederationUnknownWorker(t *testing.T) {
	fed := NewFederation(FederationConfig{Workers: []string{"http://w1:9"}})
	if err := fed.UpdateFrom("http://nope:9", strings.NewReader(fedWorker1)); err == nil {
		t.Error("UpdateFrom accepted an unconfigured worker")
	}
}
