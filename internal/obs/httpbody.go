package obs

import (
	"io"
)

// drainLimit bounds how much of a response body DrainClose will read
// before giving up and closing anyway. Draining exists to return the
// connection to the transport's idle pool — if a server ships more than
// this past the point we stopped caring, a fresh connection is cheaper
// than reading it out.
const drainLimit = 256 << 10

// DrainClose discards the unread remainder of an HTTP response body
// (bounded by drainLimit) and closes it. net/http only reuses a
// keep-alive connection when the body has been read to EOF before Close;
// the easy mistake is `defer resp.Body.Close()` on a non-200 path, which
// silently turns every error response into a torn-down connection and a
// fresh dial on the next request. Use `defer obs.DrainClose(resp.Body)`
// wherever the body may be abandoned part-read (or never read).
func DrainClose(body io.ReadCloser) {
	io.Copy(io.Discard, io.LimitReader(body, drainLimit))
	body.Close()
}
