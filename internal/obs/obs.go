// Package obs is the observability layer's metric registry: counters,
// gauges and fixed-bucket histograms with Prometheus text-format
// exposition (prom.go). It is dependency-free and race-safe — every
// mutation is a single atomic operation, so hot paths (the scheduler's
// per-job accounting, the pipeline's sampled probes) pay no lock.
//
// Metrics are created through a Registry and identified by a family name
// plus an optional constant label set. Creation is idempotent: asking for
// the same (name, labels) returns the existing metric, which lets
// independent components share a family ("elfd_variant_runs_total" with
// one label value per variant) without coordination.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant name="value" pair attached to a metric at
// creation. Values are escaped at exposition time.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must not make the counter decrease).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetBool sets 1 for true, 0 for false — the Prometheus convention for
// binary state gauges ("worker_healthy" and friends).
func (g *Gauge) SetBool(v bool) {
	if v {
		g.Set(1)
	} else {
		g.Set(0)
	}
}

// Add increments the value by d (CAS loop; gauges are not hot-path).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution. Bucket bounds are inclusive
// upper limits (Prometheus `le` semantics); one implicit +Inf bucket
// catches everything beyond the last bound. Observe is two atomic adds.
type Histogram struct {
	bounds []float64       // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	// Linear scan: bucket lists are short (≤ ~20) and the branch
	// predictor handles them better than binary search at this size.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramSnapshot is a point-in-time copy of a histogram: per-bucket
// (non-cumulative) counts aligned with Bounds, plus the +Inf overflow.
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, ascending
	Counts []uint64  // len(Bounds)+1; last entry is the +Inf bucket
	Sum    float64
	Count  uint64
}

// Mean returns the average observed value (0 with no observations).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the containing bucket. The +Inf bucket reports the last finite
// bound (there is no upper edge to interpolate toward).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if c == 0 {
			return s.Bounds[i]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + frac*(s.Bounds[i]-lo)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
		s.Count += s.Counts[i]
	}
	return s
}

// LinearBuckets returns count bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExpBuckets returns count bounds start, start*factor, ...
func ExpBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// metric kinds, also the Prometheus TYPE strings.
const (
	typeCounter   = "counter"
	typeGauge     = "gauge"
	typeHistogram = "histogram"
)

// family is one named metric family: shared help/type, one child per
// label set.
type family struct {
	name, help, typ string
	order           []string          // label-set keys in registration order
	children        map[string]*child // label-set key -> child
}

type child struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	gfunc  func() float64
	hist   *Histogram
}

// Registry holds metric families. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey canonicalises a label set (sorted by name).
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var sb strings.Builder
	for _, l := range ls {
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(',')
	}
	return sb.String()
}

// lookup returns (creating if needed) the child for (name, labels),
// enforcing family type consistency.
func (r *Registry) lookup(name, help, typ string, labels []Label) *child {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, children: make(map[string]*child)}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	key := labelKey(labels)
	c, ok := f.children[key]
	if !ok {
		c = &child{labels: append([]Label(nil), labels...)}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter returns the counter for (name, labels), creating it on first
// use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := r.lookup(name, help, typeCounter, labels)
	if c.ctr == nil {
		c.ctr = &Counter{}
	}
	return c.ctr
}

// Gauge returns the settable gauge for (name, labels).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	c := r.lookup(name, help, typeGauge, labels)
	if c.gauge == nil {
		c.gauge = &Gauge{}
	}
	return c.gauge
}

// GaugeFunc registers a computed gauge: f is evaluated at exposition
// time. Re-registering the same (name, labels) replaces the function.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	c := r.lookup(name, help, typeGauge, labels)
	c.gfunc = f
}

// Histogram returns the histogram for (name, labels), creating it with
// the given bucket upper bounds on first use (bounds are sorted; later
// calls may pass nil to retrieve the existing histogram).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	c := r.lookup(name, help, typeHistogram, labels)
	if c.hist == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		h := &Histogram{bounds: bs, counts: make([]atomic.Uint64, len(bs)+1)}
		c.hist = h
	}
	return c.hist
}
