package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2, 5})
	// Prometheus `le` semantics: bounds are inclusive upper limits.
	for _, v := range []float64{0, 0.5, 1} { // all land in le=1
		h.Observe(v)
	}
	h.Observe(1.5) // le=2
	h.Observe(2)   // le=2 (boundary is inclusive)
	h.Observe(5)   // le=5
	h.Observe(6)   // +Inf
	s := h.Snapshot()
	want := []uint64{3, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Count != 7 {
		t.Errorf("count = %d, want 7", s.Count)
	}
	if s.Sum != 0+0.5+1+1.5+2+5+6 {
		t.Errorf("sum = %v", s.Sum)
	}
	if m := s.Mean(); math.Abs(m-16.0/7) > 1e-9 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", LinearBuckets(10, 10, 10)) // 10..100
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 40 || q > 60 {
		t.Errorf("p50 = %v, want ~50", q)
	}
	if q := s.Quantile(0.99); q < 90 || q > 100 {
		t.Errorf("p99 = %v, want ~99", q)
	}
	if q := (HistogramSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v", q)
	}
}

// TestConcurrentUpdates exercises every metric type from many goroutines;
// the -race run in scripts/verify.sh is the real assertion here.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", ExpBuckets(1, 2, 8))
	const workers, each = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i % 300))
				// Concurrent get-or-create of the same labeled child.
				r.Counter("labeled", "", L("w", "shared")).Inc()
			}
		}(w)
	}
	wg.Wait()
	if c.Value() != workers*each {
		t.Errorf("counter = %d, want %d", c.Value(), workers*each)
	}
	if g.Value() != workers*each {
		t.Errorf("gauge = %v, want %d", g.Value(), workers*each)
	}
	if h.Count() != workers*each {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*each)
	}
	if lc := r.Counter("labeled", "", L("w", "shared")).Value(); lc != workers*each {
		t.Errorf("labeled counter = %d, want %d", lc, workers*each)
	}
}

// TestHistogramExpositionUnderConcurrentObservers hammers Observe while
// repeatedly rendering and re-parsing the exposition, asserting the
// invariants scrapers rely on: the +Inf bucket line is present and equals
// _count, and cumulative bucket values never decrease left to right. Run
// under -race in scripts/verify.sh.
func TestHistogramExpositionUnderConcurrentObservers(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("elf_hammer_seconds", "hammered", []float64{1, 2, 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Observe(float64((i + w) % 6))
			}
		}(w)
	}
	for iter := 0; iter < 200; iter++ {
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		fams, err := parsePromText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("exposition unparseable: %v\n%s", err, sb.String())
		}
		s := fams[0].series[""]
		inf, ok := s.buckets["+Inf"]
		if !ok {
			t.Fatalf("+Inf bucket line missing:\n%s", sb.String())
		}
		if inf != s.count {
			t.Fatalf("+Inf bucket %v != _count %v:\n%s", inf, s.count, sb.String())
		}
		prev := 0.0
		for _, le := range []string{"1", "2", "4", "+Inf"} {
			if s.buckets[le] < prev {
				t.Fatalf("cumulative bucket le=%s decreased (%v after %v):\n%s",
					le, s.buckets[le], prev, sb.String())
			}
			prev = s.buckets[le]
		}
	}
	close(stop)
	wg.Wait()
}

func TestGaugeSetBool(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("healthy", "")
	g.SetBool(true)
	if g.Value() != 1 {
		t.Errorf("SetBool(true) = %v, want 1", g.Value())
	}
	g.SetBool(false)
	if g.Value() != 0 {
		t.Errorf("SetBool(false) = %v, want 0", g.Value())
	}
}

func TestIdempotentCreation(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x", "help")
	b := r.Counter("x", "ignored on second call")
	if a != b {
		t.Fatal("same (name, labels) returned different counters")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("type mismatch did not panic")
		}
	}()
	r.Gauge("x", "")
}

// TestPrometheusGolden pins the exposition byte-for-byte: family sorting,
// HELP/TYPE lines, label rendering, cumulative buckets, sum and count.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last", "sorted last").Add(3)
	r.Counter("aa_requests_total", "reqs", L("code", "2xx")).Add(7)
	r.Counter("aa_requests_total", "reqs", L("code", "5xx")).Inc()
	r.Gauge("mid_gauge", "a gauge").Set(2.5)
	r.GaugeFunc("mid_func", "computed", func() float64 { return 42 })
	h := r.Histogram("elf_demo_cycles", "demo", []float64{1, 2, 4})
	h.Observe(1)
	h.Observe(3)
	h.Observe(9)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total reqs
# TYPE aa_requests_total counter
aa_requests_total{code="2xx"} 7
aa_requests_total{code="5xx"} 1
# HELP elf_demo_cycles demo
# TYPE elf_demo_cycles histogram
elf_demo_cycles_bucket{le="1"} 1
elf_demo_cycles_bucket{le="2"} 1
elf_demo_cycles_bucket{le="4"} 2
elf_demo_cycles_bucket{le="+Inf"} 3
elf_demo_cycles_sum 13
elf_demo_cycles_count 3
# HELP mid_func computed
# TYPE mid_func gauge
mid_func 42
# HELP mid_gauge a gauge
# TYPE mid_gauge gauge
mid_gauge 2.5
# HELP zz_last sorted last
# TYPE zz_last counter
zz_last 3
`
	if sb.String() != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c", "", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `c{path="a\"b\\c\n"} 1`) {
		t.Errorf("unescaped label:\n%s", sb.String())
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "").Inc()
	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); ct != ContentType {
		t.Errorf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "ok_total 1") {
		t.Errorf("body:\n%s", rec.Body.String())
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 2, 4)
	if len(lin) != 4 || lin[0] != 0 || lin[3] != 6 {
		t.Errorf("linear buckets = %v", lin)
	}
	exp := ExpBuckets(1, 2, 5)
	if len(exp) != 5 || exp[0] != 1 || exp[4] != 16 {
		t.Errorf("exp buckets = %v", exp)
	}
}
