package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// ContentType is the Prometheus text exposition format version we emit.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family in Prometheus text
// format, families sorted by name and children in registration order, so
// output is deterministic (golden-testable) and scrape-friendly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	for _, f := range fams {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		for _, key := range f.order {
			if err := writeChild(w, f, f.children[key]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.typ {
	case typeCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(c.labels), c.ctr.Value())
		return err
	case typeGauge:
		v := 0.0
		if c.gfunc != nil {
			v = c.gfunc()
		} else if c.gauge != nil {
			v = c.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(c.labels), formatFloat(v))
		return err
	case typeHistogram:
		s := c.hist.Snapshot()
		cum := uint64(0)
		for i, bound := range s.Bounds {
			cum += s.Counts[i]
			le := append(append([]Label(nil), c.labels...), L("le", formatFloat(bound)))
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(le), cum); err != nil {
				return err
			}
		}
		inf := append(append([]Label(nil), c.labels...), L("le", "+Inf"))
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(inf), s.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(c.labels), formatFloat(s.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(c.labels), s.Count)
		return err
	}
	return nil
}

// labelString renders {a="b",c="d"} or "" for no labels.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`, `"`, `\"`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders integral values without an exponent or trailing
// zeros ("32" not "32.0"), matching prometheus client conventions.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry at GET /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.WritePrometheus(w)
	})
}
