package obs

// Flight recorder: a fixed-size, lock-free ring of structured events.
// Execution backends append dispatch/retry/quarantine/cache/slow-cell
// events as they happen; when a run fails (or a human asks, via elfd's
// GET /debug/events) the last N events reconstruct what the fleet was
// doing — a post-mortem artifact that costs two atomics per event while
// everything is healthy.
//
// Writers never block and never allocate beyond the one event record:
// a sequence counter claims a slot, an atomic pointer store publishes
// it. Readers snapshot the slot array without stopping writers; an event
// being overwritten mid-snapshot yields either the old or the new record,
// both internally consistent.

import (
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// Event kinds recorded by the execution backends.
const (
	EventDispatch   = "dispatch"
	EventRetry      = "retry"
	EventRequeue    = "requeue"
	EventQuarantine = "quarantine"
	EventRevive     = "revive"
	EventCacheHit   = "cache_hit"
	EventCacheMiss  = "cache_miss"
	EventSlowCell   = "slow_cell"
	EventFallback   = "fallback"
	EventError      = "error"
)

// Event kinds recorded by the persistent result store (internal/store).
const (
	// EventStoreHitDisk marks a disk-tier lookup that skipped a
	// simulation.
	EventStoreHitDisk = "store_hit_disk"
	// EventStoreFill marks a result written into the store.
	EventStoreFill = "store_fill"
	// EventStoreCompact marks a completed compaction pass.
	EventStoreCompact = "store_compact"
)

// Event is one flight-recorder record.
type Event struct {
	// Seq is the process-wide event number (1-based, assigned by Add).
	Seq uint64 `json:"seq"`
	// At is the wall-clock timestamp (stamped by Add when zero).
	At time.Time `json:"at"`
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// Worker is the worker address involved ("local" for the in-process
	// backend, "" when not applicable).
	Worker string `json:"worker,omitempty"`
	// Cell names the evaluation cell ("workload/config").
	Cell string `json:"cell,omitempty"`
	// Trace is the hex TraceID joining the event to a stitched trace.
	Trace string `json:"trace,omitempty"`
	// Detail carries the human-readable cause (error text, threshold).
	Detail string `json:"detail,omitempty"`
	// Seconds is the elapsed time that triggered the event, for timed
	// kinds (slow_cell, dispatch outcomes).
	Seconds float64 `json:"seconds,omitempty"`
}

// Ring is the fixed-size lock-free event buffer. The zero value is not
// usable; call NewRing.
type Ring struct {
	slots []atomic.Pointer[Event]
	seq   atomic.Uint64
}

// DefaultRingSize bounds a Ring constructed with size <= 0.
const DefaultRingSize = 4096

// NewRing returns a recorder keeping the last size events
// (size <= 0 = DefaultRingSize).
func NewRing(size int) *Ring {
	if size <= 0 {
		size = DefaultRingSize
	}
	return &Ring{slots: make([]atomic.Pointer[Event], size)}
}

// Add records one event, stamping Seq (and At, when zero). It is safe
// from any goroutine and never blocks.
func (r *Ring) Add(e Event) {
	if e.At.IsZero() {
		e.At = time.Now()
	}
	n := r.seq.Add(1)
	e.Seq = n
	r.slots[(n-1)%uint64(len(r.slots))].Store(&e)
}

// Total counts events ever recorded (recorded minus retained = evicted).
func (r *Ring) Total() uint64 { return r.seq.Load() }

// Snapshot returns up to n of the most recent events in ascending Seq
// order (n <= 0 = everything retained).
func (r *Ring) Snapshot(n int) []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		if e := r.slots[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if n > 0 && len(out) > n {
		out = out[len(out)-n:]
	}
	return out
}

// WriteJSON dumps the last n events (n <= 0 = all retained) as indented
// JSON — the /debug/events payload and the CLI post-mortem artifact.
func (r *Ring) WriteJSON(w io.Writer, n int) error {
	events := r.Snapshot(n)
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(events)
}
