package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingAddSnapshot(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 6; i++ {
		r.Add(Event{Kind: EventDispatch, Cell: "c", Worker: "w"})
	}
	if r.Total() != 6 {
		t.Errorf("total = %d, want 6", r.Total())
	}
	got := r.Snapshot(0)
	if len(got) != 4 {
		t.Fatalf("retained %d events, want 4", len(got))
	}
	for i, e := range got {
		if want := uint64(i + 3); e.Seq != want {
			t.Errorf("event %d seq = %d, want %d", i, e.Seq, want)
		}
		if e.At.IsZero() {
			t.Errorf("event %d missing timestamp", i)
		}
	}
	if last2 := r.Snapshot(2); len(last2) != 2 || last2[1].Seq != 6 {
		t.Errorf("Snapshot(2) = %+v", last2)
	}
}

func TestRingWriteJSON(t *testing.T) {
	r := NewRing(8)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "[]" {
		t.Errorf("empty ring dumped %q, want []", buf.String())
	}

	r.Add(Event{Kind: EventQuarantine, Worker: "http://w1", Detail: "boom", Seconds: 1.5})
	buf.Reset()
	if err := r.WriteJSON(&buf, 0); err != nil {
		t.Fatal(err)
	}
	var events []Event
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, buf.String())
	}
	if len(events) != 1 || events[0].Kind != EventQuarantine || events[0].Seconds != 1.5 {
		t.Errorf("round-trip = %+v", events)
	}
}

// TestRingConcurrent hammers Add and Snapshot together; the -race run in
// scripts/verify.sh is the real assertion, but we also check that every
// observed record is internally consistent (no torn events).
func TestRingConcurrent(t *testing.T) {
	r := NewRing(64)
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			kind := []string{EventDispatch, EventRetry, EventCacheHit, EventSlowCell}[w]
			for i := 0; i < 2000; i++ {
				r.Add(Event{Kind: kind, Worker: kind})
			}
		}(w)
	}
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, e := range r.Snapshot(0) {
				if e.Kind != e.Worker {
					t.Errorf("torn event: %+v", e)
					return
				}
			}
		}
	}()
	writers.Wait()
	close(stop)
	<-readerDone
	if r.Total() != 8000 {
		t.Errorf("total = %d, want 8000", r.Total())
	}
	got := r.Snapshot(0)
	if len(got) != 64 {
		t.Errorf("retained %d, want 64", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Errorf("snapshot not ascending at %d: %d then %d", i, got[i-1].Seq, got[i].Seq)
		}
	}
}
