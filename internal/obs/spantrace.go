package obs

// Chrome trace-event export for distributed spans: the same Trace Event
// JSON dialect internal/pipeline's Tracer.WriteChromeTrace emits for
// cycle windows, so one viewer (Perfetto / chrome://tracing) renders
// both. Each fleet worker becomes one Chrome "process" (the coordinator
// is pid 0), spans become complete "X" slices, and a whole grid run —
// coordinator plus N workers — lands on one stitched timeline.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// spanEvent is one trace-event record (mirrors the pipeline exporter's
// field subset).
type spanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type spanTrace struct {
	TraceEvents     []spanEvent `json:"traceEvents"`
	DisplayTimeUnit string      `json:"displayTimeUnit"`
}

// WriteChromeTrace renders finished spans as Trace Event JSON. Workers
// map to Chrome processes: pid 0 is the coordinator (spans with no
// Worker), pids 1..N the workers in sorted-address order. Slice
// timestamps are microseconds relative to the earliest span start.
//
// With canonical=true the export is normalised for byte-diffing: spans
// sort by (trace, name, worker, id) and wall-clock timestamps are
// replaced by that rank, so two runs of the same sequentially-dispatched
// grid against an unseeded SpanLog produce identical bytes. Canonical
// output keeps the trace topology (ids, parents, workers) but says
// nothing about real latency.
func WriteChromeTrace(w io.Writer, spans []Span, canonical bool) error {
	ordered := append([]Span(nil), spans...)
	if canonical {
		sort.SliceStable(ordered, func(i, j int) bool {
			a, b := ordered[i], ordered[j]
			if a.Trace != b.Trace {
				return a.Trace.String() < b.Trace.String()
			}
			if a.Name != b.Name {
				return a.Name < b.Name
			}
			if a.Worker != b.Worker {
				return a.Worker < b.Worker
			}
			return a.ID.String() < b.ID.String()
		})
	} else {
		sort.SliceStable(ordered, func(i, j int) bool {
			return ordered[i].Start.Before(ordered[j].Start)
		})
	}

	// Worker -> Chrome pid, coordinator first, then sorted addresses.
	pids := map[string]int{"": 0}
	var addrs []string
	for _, s := range ordered {
		if s.Worker != "" {
			if _, ok := pids[s.Worker]; !ok {
				pids[s.Worker] = -1
				addrs = append(addrs, s.Worker)
			}
		}
	}
	sort.Strings(addrs)
	for i, a := range addrs {
		pids[a] = i + 1
	}

	out := spanTrace{DisplayTimeUnit: "ms"}
	name := func(pid int) string {
		if pid == 0 {
			return "coordinator"
		}
		return "worker " + addrs[pid-1]
	}
	for pid := 0; pid <= len(addrs); pid++ {
		out.TraceEvents = append(out.TraceEvents, spanEvent{
			Name: "process_name", Ph: "M", PID: pid, TID: 0,
			Args: map[string]any{"name": name(pid)},
		})
	}

	var epoch time.Time
	for _, s := range ordered {
		if !s.Start.IsZero() && (epoch.IsZero() || s.Start.Before(epoch)) {
			epoch = s.Start
		}
	}
	for i, s := range ordered {
		args := map[string]any{
			"trace": s.Trace.String(),
			"span":  s.ID.String(),
		}
		if !s.Parent.IsZero() {
			args["parent"] = s.Parent.String()
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		for _, a := range s.Attrs {
			args["attr."+a.Name] = a.Value
		}
		ts := uint64(i) * 2
		dur := uint64(1)
		if !canonical {
			ts = uint64(s.Start.Sub(epoch).Microseconds())
			if d := s.End.Sub(s.Start).Microseconds(); d > 0 {
				dur = uint64(d)
			}
		}
		cat := "span"
		if s.Err != "" {
			cat = "error"
		}
		out.TraceEvents = append(out.TraceEvents, spanEvent{
			Name: s.Name, Cat: cat, Ph: "X",
			TS: ts, Dur: dur, PID: pids[s.Worker], TID: 1, Args: args,
		})
	}
	return json.NewEncoder(w).Encode(out)
}

// WriteSpansJSON dumps finished spans as a JSON array — the raw form
// `elfview -spans` re-reads for Chrome conversion.
func WriteSpansJSON(w io.Writer, spans []Span) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(spans)
}

// ReadSpansJSON parses a WriteSpansJSON dump.
func ReadSpansJSON(r io.Reader) ([]Span, error) {
	var spans []Span
	if err := json.NewDecoder(r).Decode(&spans); err != nil {
		return nil, fmt.Errorf("obs: decoding span dump: %w", err)
	}
	return spans, nil
}
