package obs

// Distributed tracing: the span model that stitches one coordinator grid
// run and its fleet dispatches into a single trace. A Span is one timed
// operation (a grid, a cell, one dispatch attempt); spans link through
// (TraceID, SpanID, Parent) exactly like W3C Trace Context, and the
// coordinator carries the identity across the HTTP hop in a
// `traceparent` header so worker access logs and error envelopes can be
// joined to the run that caused them.
//
// Like *pipeline.Probe, *Span is a nil-able observation hook: code that
// may run untraced must guard every dereference (elflint's probegate
// check enforces this in internal/{pipeline,obs,exec}).
//
// IDs are allocated from per-SpanLog counters, not randomness: within a
// process they are unique, and with an unseeded log they are
// deterministic, which is what lets tests pin a stitched trace
// byte-for-byte. Processes that want globally distinguishable traces
// (elfd) seed the log once at startup.

import (
	"context"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one distributed trace — one grid run, end to end.
type TraceID [16]byte

// String renders the 32-hex-digit W3C form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// IsZero reports the absent trace.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// MarshalText encodes the ID as hex (used by the span JSON dump).
func (t TraceID) MarshalText() ([]byte, error) { return []byte(t.String()), nil }

// UnmarshalText decodes the 32-hex-digit form.
func (t *TraceID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*t = TraceID{}
		return nil
	}
	if len(b) != 32 {
		return fmt.Errorf("obs: trace id %q: want 32 hex digits", b)
	}
	_, err := hex.Decode(t[:], b)
	return err
}

// SpanID identifies one span within a trace.
type SpanID [8]byte

// String renders the 16-hex-digit W3C form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports the absent span (a root span's parent).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// MarshalText encodes the ID as hex.
func (s SpanID) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText decodes the 16-hex-digit form.
func (s *SpanID) UnmarshalText(b []byte) error {
	if len(b) == 0 {
		*s = SpanID{}
		return nil
	}
	if len(b) != 16 {
		return fmt.Errorf("obs: span id %q: want 16 hex digits", b)
	}
	_, err := hex.Decode(s[:], b)
	return err
}

// Span is one timed operation in a distributed trace.
type Span struct {
	Trace  TraceID   `json:"trace"`
	ID     SpanID    `json:"id"`
	Parent SpanID    `json:"parent,omitempty"` // zero for a trace root
	Name   string    `json:"name"`
	Worker string    `json:"worker,omitempty"` // "" = the recording process itself
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Attrs  []Label   `json:"attrs,omitempty"`
	Err    string    `json:"err,omitempty"`

	log *SpanLog // where Finish records the span; nil after decode
}

// SetAttr attaches (or replaces) one name=value attribute.
func (s *Span) SetAttr(name, value string) {
	for i := range s.Attrs {
		if s.Attrs[i].Name == name {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Label{Name: name, Value: value})
}

// SetError records the span's failure cause.
func (s *Span) SetError(err error) {
	if err != nil {
		s.Err = err.Error()
	}
}

// Traceparent renders the W3C Trace Context header value for this span:
// version 00, this span as the parent of whatever the receiver starts.
func (s *Span) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", s.Trace, s.ID)
}

// Finish stamps the end time and records the span into its log. A span
// must be finished exactly once; Finish on an already-finished span is a
// no-op, so error paths can finish defensively.
func (s *Span) Finish() {
	if !s.End.IsZero() {
		return
	}
	s.End = time.Now()
	if s.log != nil {
		s.log.add(*s)
	}
}

// TraceparentHeader is the canonical header name (Go's http canonicalises
// the on-wire lowercase form to this).
const TraceparentHeader = "Traceparent"

// ParseTraceparent decodes a `00-<trace>-<span>-<flags>` header value.
func ParseTraceparent(v string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	if len(v) < 55 || v[:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return t, s, false
	}
	if err := t.UnmarshalText([]byte(v[3:35])); err != nil || t.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	if err := s.UnmarshalText([]byte(v[36:52])); err != nil || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// SpanLog collects finished spans and allocates span identity. It is
// bounded: once max spans are held, the oldest are dropped (Dropped
// counts them), so a long-lived coordinator cannot grow without limit.
type SpanLog struct {
	mu      sync.Mutex
	max     int
	spans   []Span
	dropped uint64

	seed   uint64
	traces atomic.Uint64
	ids    atomic.Uint64
}

// DefaultSpanLogSize bounds a SpanLog constructed with max <= 0.
const DefaultSpanLogSize = 8192

// NewSpanLog returns an empty log holding at most max finished spans
// (max <= 0 = DefaultSpanLogSize).
func NewSpanLog(max int) *SpanLog {
	if max <= 0 {
		max = DefaultSpanLogSize
	}
	return &SpanLog{max: max}
}

// Seed distinguishes this log's trace IDs from other processes' (the
// high 8 bytes of every TraceID). Call once, before the first trace; an
// unseeded log allocates deterministic IDs, which tests rely on.
func (l *SpanLog) Seed(seed uint64) {
	l.mu.Lock()
	l.seed = seed
	l.mu.Unlock()
}

// StartSpan begins a span under parent. A nil parent starts a new trace
// (the span becomes the trace root). The clock starts immediately; call
// Finish to record the span.
func (l *SpanLog) StartSpan(parent *Span, name string) *Span {
	s := &Span{Name: name, Start: time.Now(), log: l}
	putUint64(s.ID[:], l.ids.Add(1))
	if parent == nil {
		l.mu.Lock()
		seed := l.seed
		l.mu.Unlock()
		putUint64(s.Trace[:8], seed)
		putUint64(s.Trace[8:], l.traces.Add(1))
		return s
	}
	s.Trace = parent.Trace
	s.Parent = parent.ID
	return s
}

// add appends one finished span, evicting the oldest beyond the bound.
func (l *SpanLog) add(s Span) {
	s.log = nil
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.spans) >= l.max {
		n := copy(l.spans, l.spans[1:])
		l.spans = l.spans[:n]
		l.dropped++
	}
	l.spans = append(l.spans, s)
}

// Snapshot copies the finished spans in finish order.
func (l *SpanLog) Snapshot() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// Dropped counts spans evicted by the size bound.
func (l *SpanLog) Dropped() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Reset discards all finished spans (ID allocation continues).
func (l *SpanLog) Reset() {
	l.mu.Lock()
	l.spans = nil
	l.mu.Unlock()
}

// putUint64 writes v big-endian into b[:8].
func putUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

// spanCtxKey carries the current span through contexts.
type spanCtxKey struct{}

// ContextWithSpan returns ctx with s as the current span; work dispatched
// under the returned context becomes children of s.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, s)
}

// SpanFromContext returns the current span, or nil when the context
// carries none — callers must nil-guard anything they do with it.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(spanCtxKey{}).(*Span)
	return s
}
