package obs

import (
	"bytes"
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanIDsAndTraceparent(t *testing.T) {
	l := NewSpanLog(0)
	root := l.StartSpan(nil, "grid")
	if root.Trace.IsZero() || root.ID.IsZero() {
		t.Fatalf("root span missing identity: %+v", root)
	}
	if !root.Parent.IsZero() {
		t.Errorf("root parent = %s, want zero", root.Parent)
	}
	child := l.StartSpan(root, "cell")
	if child.Trace != root.Trace {
		t.Errorf("child trace %s != root trace %s", child.Trace, child.ID)
	}
	if child.Parent != root.ID {
		t.Errorf("child parent %s, want %s", child.Parent, root.ID)
	}
	if child.ID == root.ID {
		t.Error("child reused root's span id")
	}

	tp := child.Traceparent()
	if len(tp) != 55 || !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent %q not W3C-shaped", tp)
	}
	tr, sp, ok := ParseTraceparent(tp)
	if !ok || tr != child.Trace || sp != child.ID {
		t.Errorf("ParseTraceparent(%q) = %s,%s,%v", tp, tr, sp, ok)
	}
	for _, bad := range []string{
		"", "00", "01-" + tp[3:],
		"00-00000000000000000000000000000000-0000000000000001-01",
		"00-" + strings.Repeat("0", 31) + "1-0000000000000000-01",
		"00-xyzw0000000000000000000000000001-0000000000000001-01",
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestSpanLogDeterministicWhenUnseeded(t *testing.T) {
	ids := func() []string {
		l := NewSpanLog(0)
		a := l.StartSpan(nil, "grid")
		b := l.StartSpan(a, "cell")
		return []string{a.Trace.String(), a.ID.String(), b.ID.String()}
	}
	x, y := ids(), ids()
	for i := range x {
		if x[i] != y[i] {
			t.Errorf("run ids diverge at %d: %s vs %s", i, x[i], y[i])
		}
	}
	seeded := NewSpanLog(0)
	seeded.Seed(0xdeadbeef)
	if got := seeded.StartSpan(nil, "grid").Trace.String(); got == x[0] {
		t.Errorf("seeded log produced the unseeded trace id %s", got)
	}
}

func TestSpanFinishRecordsOnce(t *testing.T) {
	l := NewSpanLog(0)
	s := l.StartSpan(nil, "op")
	s.SetAttr("cell", "w/c")
	s.SetAttr("cell", "w/c2") // replace, not append
	s.SetError(nil)
	s.Finish()
	s.Finish() // idempotent
	got := l.Snapshot()
	if len(got) != 1 {
		t.Fatalf("snapshot has %d spans, want 1", len(got))
	}
	if got[0].End.IsZero() || got[0].End.Before(got[0].Start) {
		t.Errorf("bad span times: %+v", got[0])
	}
	if len(got[0].Attrs) != 1 || got[0].Attrs[0].Value != "w/c2" {
		t.Errorf("attrs = %v", got[0].Attrs)
	}
	if got[0].Err != "" {
		t.Errorf("err = %q, want empty", got[0].Err)
	}
}

func TestSpanLogBound(t *testing.T) {
	l := NewSpanLog(3)
	for i := 0; i < 5; i++ {
		l.StartSpan(nil, "op").Finish()
	}
	if got := l.Snapshot(); len(got) != 3 {
		t.Errorf("retained %d spans, want 3", len(got))
	}
	if d := l.Dropped(); d != 2 {
		t.Errorf("dropped = %d, want 2", d)
	}
	l.Reset()
	if got := l.Snapshot(); len(got) != 0 {
		t.Errorf("snapshot after reset = %d spans", len(got))
	}
}

func TestSpanContext(t *testing.T) {
	if s := SpanFromContext(context.Background()); s != nil {
		t.Fatalf("empty context carried span %+v", s)
	}
	l := NewSpanLog(0)
	s := l.StartSpan(nil, "grid")
	ctx := ContextWithSpan(context.Background(), s)
	if got := SpanFromContext(ctx); got != s {
		t.Errorf("SpanFromContext = %p, want %p", got, s)
	}
}

func TestSpanLogConcurrent(t *testing.T) {
	l := NewSpanLog(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			root := l.StartSpan(nil, "grid")
			for i := 0; i < 100; i++ {
				c := l.StartSpan(root, "cell")
				c.Finish()
			}
			root.Finish()
		}()
	}
	wg.Wait()
	seen := map[string]bool{}
	for _, s := range l.Snapshot() {
		if seen[s.ID.String()] {
			t.Fatalf("duplicate span id %s", s.ID)
		}
		seen[s.ID.String()] = true
	}
}

func TestChromeTraceCanonicalDeterminism(t *testing.T) {
	render := func() string {
		l := NewSpanLog(0)
		grid := l.StartSpan(nil, "grid")
		for _, w := range []string{"w1", "w2"} {
			c := l.StartSpan(grid, "cell")
			c.Worker = w
			c.SetAttr("cell", "srv64k/base")
			c.Finish()
		}
		bad := l.StartSpan(grid, "attempt")
		bad.Worker = "w2"
		bad.SetError(context.DeadlineExceeded)
		bad.Finish()
		grid.Finish()
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, l.Snapshot(), true); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("canonical Chrome export not byte-deterministic:\n%s\n---\n%s", a, b)
	}
	for _, want := range []string{
		`"coordinator"`, `"worker w1"`, `"worker w2"`,
		`"cat":"error"`, `"attr.cell":"srv64k/base"`, `"parent"`,
	} {
		if !strings.Contains(a, want) {
			t.Errorf("export missing %s:\n%s", want, a)
		}
	}
}

func TestChromeTraceWallClockMode(t *testing.T) {
	base := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	spans := []Span{
		{Name: "grid", Start: base, End: base.Add(30 * time.Microsecond)},
		{Name: "cell", Worker: "w", Start: base.Add(10 * time.Microsecond), End: base.Add(25 * time.Microsecond)},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans, false); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"ts":10,"dur":15`) {
		t.Errorf("wall-clock ts/dur missing:\n%s", out)
	}
}

func TestSpansJSONRoundTrip(t *testing.T) {
	l := NewSpanLog(0)
	root := l.StartSpan(nil, "grid")
	c := l.StartSpan(root, "cell")
	c.Worker = "w1"
	c.SetAttr("cell", "a/b")
	c.Finish()
	root.Finish()

	var buf bytes.Buffer
	if err := WriteSpansJSON(&buf, l.Snapshot()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSpansJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("round-tripped %d spans, want 2", len(back))
	}
	if back[0].Trace != root.Trace || back[0].ID.IsZero() {
		t.Errorf("identity lost: %+v", back[0])
	}
	if back[1].Worker != "" && back[1].Worker != "w1" && back[0].Worker != "w1" {
		t.Errorf("worker lost: %+v", back)
	}
}
