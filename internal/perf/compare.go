package perf

import (
	"fmt"
	"io"
)

// MaxRegression is the blocking throughput-regression threshold: a new
// record whose geomean cycles/sec falls more than 5% below the baseline
// fails the comparison (same-host records only).
const MaxRegression = 0.05

// allocSlack absorbs measurement noise in allocs-per-cycle (a stray
// runtime allocation — GC bookkeeping, a timer — across millions of
// cycles). The steady-state target is 0; anything past the slack is a
// real leak back into the hot loop.
const allocSlack = 0.001

// Report is the outcome of comparing two trajectory points.
type Report struct {
	// Failures are blocking regressions: IPC drift (deterministic),
	// allocs/cycle growth (machine-independent), or a same-host
	// throughput drop beyond MaxRegression.
	Failures []string
	// Warnings are advisory: cross-host wall-clock changes, suite shape
	// changes.
	Warnings []string
	// Summary lines always print (throughput and alloc movement).
	Summary []string
}

// OK reports a comparison with no blocking failure.
func (r *Report) OK() bool { return len(r.Failures) == 0 }

func (r *Report) failf(format string, args ...any) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *Report) warnf(format string, args ...any) {
	r.Warnings = append(r.Warnings, fmt.Sprintf(format, args...))
}

// Compare checks new against the old baseline.
func Compare(old, new *Record) *Report {
	r := &Report{}

	// 1. Per-cell IPC: the simulator is deterministic, so any drift is a
	// behavioural change, regardless of host.
	oldCells := make(map[string]Cell, len(old.Cells))
	key := func(c Cell) string { return c.Workload + "/" + c.Config }
	for _, c := range old.Cells {
		oldCells[key(c)] = c
	}
	matched := 0
	sameSuite := old.Warmup == new.Warmup && old.Measure == new.Measure
	if !sameSuite {
		r.warnf("suite sizes differ (warmup %d→%d, measure %d→%d): skipping IPC equivalence",
			old.Warmup, new.Warmup, old.Measure, new.Measure)
	}
	for _, c := range new.Cells {
		o, ok := oldCells[key(c)]
		if !ok {
			r.warnf("cell %s is new (not in baseline)", key(c))
			continue
		}
		matched++
		if sameSuite && (c.IPC != o.IPC || c.Cycles != o.Cycles) {
			r.failf("IPC drift in %s: %.6f (%d cycles) vs baseline %.6f (%d cycles) — simulated behaviour changed",
				key(c), c.IPC, c.Cycles, o.IPC, o.Cycles)
		}
	}
	if matched < len(old.Cells) {
		r.warnf("%d baseline cell(s) missing from the new record", len(old.Cells)-matched)
	}

	// 2. Allocation discipline: allocs/cycle is machine-independent, so
	// growth always blocks.
	if new.AllocsPerCycle > old.AllocsPerCycle+allocSlack {
		r.failf("allocs/cycle grew: %.6f vs baseline %.6f — the hot loop is allocating again",
			new.AllocsPerCycle, old.AllocsPerCycle)
	}
	r.Summary = append(r.Summary, fmt.Sprintf("allocs/cycle %.6f → %.6f, bytes/cycle %.3f → %.3f",
		old.AllocsPerCycle, new.AllocsPerCycle, old.BytesPerCycle, new.BytesPerCycle))

	// 3. Throughput: wall clock only means something on the same host.
	if old.CyclesPerSec > 0 {
		ratio := new.CyclesPerSec / old.CyclesPerSec
		line := fmt.Sprintf("geomean throughput %.0f → %.0f cycles/sec (%+.1f%%), %.0f → %.0f insts/sec",
			old.CyclesPerSec, new.CyclesPerSec, (ratio-1)*100, old.InstsPerSec, new.InstsPerSec)
		r.Summary = append(r.Summary, line)
		if old.Host == new.Host {
			if ratio < 1-MaxRegression {
				r.failf("throughput regressed %.1f%% on %s (threshold %.0f%%)",
					(1-ratio)*100, new.Host.Name, MaxRegression*100)
			}
		} else {
			r.warnf("records are from different hosts (%s/%d vs %s/%d): wall-clock change is advisory only",
				old.Host.Name, old.Host.CPUs, new.Host.Name, new.Host.CPUs)
		}
	}
	return r
}

// Write renders the report.
func (r *Report) Write(w io.Writer) {
	for _, s := range r.Summary {
		fmt.Fprintln(w, s)
	}
	for _, s := range r.Warnings {
		fmt.Fprintln(w, "warning:", s)
	}
	for _, s := range r.Failures {
		fmt.Fprintln(w, "FAIL:", s)
	}
	if r.OK() {
		fmt.Fprintln(w, "benchdiff: ok")
	}
}
