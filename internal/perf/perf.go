// Package perf is the bench-trajectory harness (DESIGN.md §17): it runs a
// fixed simulation suite, writes one BENCH_<n>.json trajectory point per
// run, and compares two points for regressions. The suite's IPC numbers
// are deterministic (they must be bit-equal between runs on any host);
// the wall-clock numbers are host-dependent and only gate when both
// records come from the same host.
package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"elfetch/internal/core"
	"elfetch/internal/pipeline"
	"elfetch/internal/workload"
)

// Schema identifies the record layout for future readers.
const Schema = 1

// Host fingerprints the machine a record was measured on. Wall-clock
// comparisons are only meaningful when two records share it.
type Host struct {
	Name      string `json:"name"`
	CPUs      int    `json:"cpus"`
	GoVersion string `json:"go_version"`
	GoArch    string `json:"go_arch"`
}

// Cell is one (workload, config) measurement.
type Cell struct {
	Workload     string  `json:"workload"`
	Config       string  `json:"config"`
	IPC          float64 `json:"ipc"` // deterministic: must match exactly across hosts
	Cycles       uint64  `json:"cycles"`
	CyclesPerSec float64 `json:"cycles_per_sec"` // host-dependent
}

// Record is one bench-trajectory point.
type Record struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at"`
	Host      Host   `json:"host"`
	Warmup    uint64 `json:"warmup"`
	Measure   uint64 `json:"measure"`

	// Geomeans over the suite's cells.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	InstsPerSec  float64 `json:"insts_per_sec"`

	// Allocation discipline, machine-independent: heap allocations (and
	// bytes) per simulated cycle across the whole measured region. The
	// steady-state target is 0 (DESIGN.md §17).
	AllocsPerCycle float64 `json:"allocs_per_cycle"`
	BytesPerCycle  float64 `json:"bytes_per_cycle"`

	Cells []Cell `json:"cells"`
}

// Suite is the workload × config matrix a record measures.
type Suite struct {
	Workloads []string
	Configs   []pipeline.Config
	Warmup    uint64
	Measure   uint64
}

// DefaultSuite is the Figure 6 bench set (bench_test.go's figureSubset)
// under the four decode paths of the cycle loop. Fixed sizes: trajectory
// points are only comparable when the suite is identical.
func DefaultSuite() Suite {
	base := pipeline.DefaultConfig()
	return Suite{
		Workloads: []string{
			"641.leela_s", "620.omnetpp_s", "server1_subtest_1", "433.milc", "401.bzip2",
		},
		Configs: []pipeline.Config{
			base,
			base.NoDCF(),
			base.WithVariant(core.UELF),
			base.WithVariant(core.LELF),
		},
		Warmup:  30_000,
		Measure: 120_000,
	}
}

// Run measures the suite and returns its trajectory point. Machine
// construction and warmup are excluded from each cell's wall clock; the
// allocation counters cover only the measured regions, so they report the
// steady-state loop, not setup.
func (s Suite) Run(ctx context.Context) (*Record, error) {
	host, _ := os.Hostname()
	rec := &Record{
		Schema:    Schema,
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
		Host: Host{
			Name:      host,
			CPUs:      runtime.NumCPU(),
			GoVersion: runtime.Version(),
			GoArch:    runtime.GOARCH,
		},
		Warmup:  s.Warmup,
		Measure: s.Measure,
	}
	var totalCycles uint64
	var totalMallocs, totalBytes uint64
	var ms0, ms1 runtime.MemStats
	for _, name := range s.Workloads {
		e, err := workload.Lookup(name)
		if err != nil {
			return nil, err
		}
		prog := e.Program()
		for _, cfg := range s.Configs {
			m, err := pipeline.New(cfg, prog)
			if err != nil {
				return nil, err
			}
			if _, err := m.RunContext(ctx, s.Warmup); err != nil {
				return nil, fmt.Errorf("perf: %s/%s warmup: %w", name, cfg.Name(), err)
			}
			m.ResetStats()
			runtime.ReadMemStats(&ms0)
			start := time.Now()
			st, err := m.RunContext(ctx, s.Measure)
			wall := time.Since(start)
			runtime.ReadMemStats(&ms1)
			if err != nil {
				return nil, fmt.Errorf("perf: %s/%s: %w", name, cfg.Name(), err)
			}
			totalMallocs += ms1.Mallocs - ms0.Mallocs
			totalBytes += ms1.TotalAlloc - ms0.TotalAlloc
			totalCycles += st.Cycles
			rec.Cells = append(rec.Cells, Cell{
				Workload:     name,
				Config:       cfg.Name(),
				IPC:          float64(st.Committed) / float64(st.Cycles),
				Cycles:       st.Cycles,
				CyclesPerSec: float64(st.Cycles) / wall.Seconds(),
			})
		}
	}
	if totalCycles > 0 {
		rec.AllocsPerCycle = float64(totalMallocs) / float64(totalCycles)
		rec.BytesPerCycle = float64(totalBytes) / float64(totalCycles)
	}
	rec.CyclesPerSec = geomean(rec.Cells, func(c Cell) float64 { return c.CyclesPerSec })
	rec.InstsPerSec = geomean(rec.Cells, func(c Cell) float64 { return c.IPC * c.CyclesPerSec })
	return rec, nil
}

func geomean(cells []Cell, f func(Cell) float64) float64 {
	if len(cells) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range cells {
		v := f(c)
		if v <= 0 {
			return 0
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(cells)))
}

// WriteRecord writes r as indented JSON.
func WriteRecord(path string, r *Record) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ReadRecord loads a trajectory point.
func ReadRecord(path string) (*Record, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Record
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("perf: %s: %w", path, err)
	}
	if r.Schema != Schema {
		return nil, fmt.Errorf("perf: %s: schema %d, want %d", path, r.Schema, Schema)
	}
	return &r, nil
}
