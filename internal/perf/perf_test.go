package perf

import (
	"context"
	"path/filepath"
	"testing"

	"elfetch/internal/pipeline"
)

func tinySuite() Suite {
	return Suite{
		Workloads: []string{"401.bzip2"},
		Configs:   []pipeline.Config{pipeline.DefaultConfig()},
		Warmup:    2_000,
		Measure:   5_000,
	}
}

func TestSuiteRunAndRoundTrip(t *testing.T) {
	rec, err := tinySuite().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Cells) != 1 || rec.Cells[0].IPC <= 0 || rec.CyclesPerSec <= 0 {
		t.Fatalf("implausible record: %+v", rec)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := WriteRecord(path, rec); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Cells[0].IPC != rec.Cells[0].IPC || back.CyclesPerSec != rec.CyclesPerSec {
		t.Fatalf("round trip lost data: %+v vs %+v", back, rec)
	}
}

func TestSuiteDeterministicIPC(t *testing.T) {
	a, err := tinySuite().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	b, err := tinySuite().Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if a.Cells[0].IPC != b.Cells[0].IPC || a.Cells[0].Cycles != b.Cells[0].Cycles {
		t.Fatalf("suite is not deterministic: %+v vs %+v", a.Cells[0], b.Cells[0])
	}
	if r := Compare(a, b); !r.OK() {
		t.Fatalf("self-comparison failed: %+v", r.Failures)
	}
}

func TestCompareFlagsIPCDrift(t *testing.T) {
	base := &Record{
		Schema: Schema, Warmup: 1, Measure: 2,
		Host:         Host{Name: "h", CPUs: 1},
		CyclesPerSec: 1000,
		Cells:        []Cell{{Workload: "w", Config: "c", IPC: 1.5, Cycles: 100, CyclesPerSec: 1000}},
	}
	drifted := *base
	drifted.Cells = []Cell{{Workload: "w", Config: "c", IPC: 1.6, Cycles: 100, CyclesPerSec: 1000}}
	if r := Compare(base, &drifted); r.OK() {
		t.Fatal("IPC drift not flagged")
	}
}

func TestCompareThroughputGate(t *testing.T) {
	base := &Record{
		Schema: Schema, Warmup: 1, Measure: 2,
		Host:         Host{Name: "h", CPUs: 1},
		CyclesPerSec: 1000,
		Cells:        []Cell{{Workload: "w", Config: "c", IPC: 1.5, Cycles: 100, CyclesPerSec: 1000}},
	}
	slow := *base
	slow.CyclesPerSec = 900 // -10%: past the 5% gate
	if r := Compare(base, &slow); r.OK() {
		t.Fatal("same-host 10% regression not flagged")
	}
	// The same slowdown from a different host is advisory, not blocking.
	slow.Host = Host{Name: "other", CPUs: 64}
	if r := Compare(base, &slow); !r.OK() {
		t.Fatalf("cross-host wall-clock change must not block: %+v", r.Failures)
	}
	// Small same-host jitter passes.
	jitter := *base
	jitter.CyclesPerSec = 970
	if r := Compare(base, &jitter); !r.OK() {
		t.Fatalf("3%% jitter must pass: %+v", r.Failures)
	}
}

func TestCompareFlagsAllocGrowth(t *testing.T) {
	base := &Record{Schema: Schema, Host: Host{Name: "h"}, AllocsPerCycle: 0}
	leaky := *base
	leaky.AllocsPerCycle = 0.5
	if r := Compare(base, &leaky); r.OK() {
		t.Fatal("alloc growth not flagged")
	}
	if r := Compare(base, base); !r.OK() {
		t.Fatal("zero-alloc self-compare must pass")
	}
}
