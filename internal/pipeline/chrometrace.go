package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace-event export: renders a Tracer's bounded cycle window in
// the Trace Event Format (the JSON that chrome://tracing and Perfetto's
// legacy loader consume), so a pipeline window can be inspected on a real
// timeline instead of the text pipeview. One simulated cycle maps to one
// microsecond of trace time; stages render as three threads (fetch,
// decode, backend) under one process.

// chromeEvent is one trace-event record. Only the fields we emit.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Stage thread ids within the trace process.
const (
	tidFetch   = 1
	tidDecode  = 2
	tidBackend = 3
)

// WriteChromeTrace renders the recorded window as Trace Event JSON. Each
// instruction contributes up to three complete ("X") slices — time in
// fetch (fetched→decoded), in decode (decoded→renamed) and in the back
// end (renamed→retired) — tagged with its sequence number, class, and
// wrong-path/coupled/squashed flags. Squashed instructions keep whatever
// slices they earned before dying.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	t.CloseSquashed()
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: metadataEvents()}
	for i := range t.events {
		e := &t.events[i]
		name := fmt.Sprintf("%v %v", e.Class, e.PC)
		args := map[string]any{
			"seq":     e.Seq,
			"fetchID": e.FetchID,
		}
		if e.WrongPath {
			args["wrongPath"] = true
		}
		if e.Coupled {
			args["coupled"] = true
		}
		if e.Squashed {
			args["squashed"] = true
		}
		slice := func(tid int, start, end uint64) {
			if start == 0 || end < start {
				return
			}
			dur := end - start
			if dur == 0 {
				dur = 1
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: name, Cat: category(e), Ph: "X",
				TS: start, Dur: dur, PID: 0, TID: tid, Args: args,
			})
		}
		slice(tidFetch, e.Fetched, e.Decoded)
		slice(tidDecode, e.Decoded, e.Renamed)
		slice(tidBackend, e.Renamed, e.Retired)
		if e.Squashed {
			// An instant mark where the record ends, so squash points
			// stand out on the timeline.
			ts := lastMark(e)
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: "squash " + name, Cat: "squash", Ph: "i",
				TS: ts, PID: 0, TID: tidForSquash(e), Args: args,
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// category tags slices for Perfetto's filter box.
func category(e *TraceEvent) string {
	switch {
	case e.WrongPath:
		return "wrong-path"
	case e.Coupled:
		return "coupled"
	default:
		return "decoupled"
	}
}

// lastMark returns the newest timestamp the event holds.
func lastMark(e *TraceEvent) uint64 {
	ts := e.Fetched
	if e.Decoded > ts {
		ts = e.Decoded
	}
	if e.Renamed > ts {
		ts = e.Renamed
	}
	return ts
}

// tidForSquash places the squash mark on the deepest stage reached.
func tidForSquash(e *TraceEvent) int {
	switch {
	case e.Renamed != 0:
		return tidBackend
	case e.Decoded != 0:
		return tidDecode
	default:
		return tidFetch
	}
}

// metadataEvents names the process and stage threads.
func metadataEvents() []chromeEvent {
	names := map[int]string{tidFetch: "fetch", tidDecode: "decode", tidBackend: "backend"}
	out := []chromeEvent{{
		Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "elfetch pipeline"},
	}}
	for _, tid := range []int{tidFetch, tidDecode, tidBackend} {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": names[tid]},
		})
	}
	return out
}
