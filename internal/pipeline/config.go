// Package pipeline wires the front-end organisations against the shared
// out-of-order back-end and runs the cycle loop. Three organisations are
// supported (Section VI):
//
//   - NoDCF: a classic coupled pipeline — fetch generates sequential PCs,
//     branch predictions are attributed in parallel with decode, taken
//     branches cost one decode-redirect bubble (more for slow indirect
//     predictions), and flushes resteer fetch directly.
//   - DCF: the baseline decoupled fetcher — BP1/BP2 generate FAQ blocks,
//     fetch consumes them, decode recovers BTB misses, and every flush
//     restarts BP1 (3 extra cycles before fetch sees an address).
//   - ELF: DCF plus ELastic Fetching (internal/core) in one of its five
//     variants — after a flush the fetcher probes the I-cache immediately
//     in coupled mode while the DCF restarts, resynchronizing per Figure 5.
package pipeline

import (
	"fmt"

	"elfetch/internal/backend"
	"elfetch/internal/btb"
	"elfetch/internal/core"
)

// FrontKind selects the front-end organisation.
type FrontKind uint8

const (
	// FrontNoDCF is the coupled baseline.
	FrontNoDCF FrontKind = iota
	// FrontDCF is the decoupled fetcher; Variant selects plain DCF
	// (core.NoELF) or an ELF variant.
	FrontDCF
)

func (k FrontKind) String() string {
	if k == FrontNoDCF {
		return "NoDCF"
	}
	return "DCF"
}

// CheckpointPolicy says how a flush from a coupled-fetched instruction
// whose branch-prediction checkpoint is not yet bound is handled
// (Section IV-D1).
type CheckpointPolicy uint8

const (
	// CkptLateBind: checkpoint queue entries are populated from FAQ
	// information as the DCF catches up; flushes wait only until their
	// entry binds.
	CkptLateBind CheckpointPolicy = iota
	// CkptROBHeadWait: the flush waits until the instruction reaches the
	// ROB head — simpler hardware, slower recovery.
	CkptROBHeadWait
)

func (p CheckpointPolicy) String() string {
	if p == CkptROBHeadWait {
		return "rob-head-wait"
	}
	return "late-bind"
}

// Config is the full machine configuration (Table II defaults).
type Config struct {
	Front   FrontKind
	Variant core.Variant

	FetchWidth int
	// FAQSize is the decoupling queue depth (32).
	FAQSize int
	// BPredToFetch is the number of front stages between BP1 and fetch
	// consumption (3: BP1, BP2, FAQ) — the extra flush depth DCF pays.
	BPredToFetch int
	// FetchToDecode is the fetch→decode latency (1).
	FetchToDecode int
	// IndirectSlowBubbles is the extra decode-redirect penalty when only
	// the slow (ITTAGE) indirect predictor has the target.
	IndirectSlowBubbles int

	BTB     btb.Config
	Backend backend.Config

	// SatFilter gates COND-ELF on bimodal saturation (Section VI-B).
	SatFilter bool
	// CoupledUpdateAll trains the coupled predictors on every retired
	// branch instead of only coupled-fetched ones. The paper argues for
	// coupled-only updates (Section IV-D3: "it makes little sense to
	// allocate entries for branches that will never ... be fetched in
	// coupled mode"); with this simulator's synthetic flush distribution
	// the sparse training leaves counters stale, so the all-branches
	// policy is the default and the paper's policy is the ablation
	// (BenchmarkAblationCoupledUpdatePolicy).
	CoupledUpdateAll bool
	// Ckpt selects the coupled-checkpoint flush policy.
	Ckpt CheckpointPolicy
	// InterleaveFetch enables fetching across a predicted-taken branch in
	// one cycle when branch and target map to different L0I interleave
	// banks (Section VI-A).
	InterleaveFetch bool
	// FAQPrefetch enables instruction prefetching from FAQ addresses on
	// idle L0I cycles.
	FAQPrefetch bool
	// MaxPrefetch bounds in-flight instruction prefetches (4).
	MaxPrefetch int

	// Boomerang enables predecode-based BTB-miss resolution (Kumar et
	// al. [11]; the paper points to it as the way to fully hide the
	// BTB-miss penalty, Section VI-C). Off in the paper's baseline.
	Boomerang bool
	// CoupledZeroBubble models the Section IV-E optimization: with a
	// sub-cycle L0I and the tiny coupled predictors, coupled-mode taken
	// redirects insert no bubble. Off in the paper's evaluation.
	CoupledZeroBubble bool
	// CondConfidence adds the "smarter filtering mechanism" the paper's
	// conclusion calls for: COND-ELF speculates only when a per-branch
	// confidence counter (trained on coupled-speculation outcomes) is
	// high, on top of the saturated-bimodal filter. Off by default.
	CondConfidence bool
}

// DefaultConfig returns the Table II baseline (decoupled fetcher, no ELF).
func DefaultConfig() Config {
	return Config{
		Front:               FrontDCF,
		Variant:             core.NoELF,
		FetchWidth:          8,
		FAQSize:             32,
		BPredToFetch:        3,
		FetchToDecode:       1,
		IndirectSlowBubbles: 2,
		BTB:                 btb.DefaultConfig(),
		Backend:             backend.DefaultConfig(),
		SatFilter:           true,
		CoupledUpdateAll:    true,
		Ckpt:                CkptLateBind,
		InterleaveFetch:     true,
		FAQPrefetch:         true,
		MaxPrefetch:         4,
	}
}

// WithVariant returns a copy configured for an ELF variant (or the plain
// DCF baseline for core.NoELF).
func (c Config) WithVariant(v core.Variant) Config {
	c.Front = FrontDCF
	c.Variant = v
	return c
}

// NoDCF returns a copy configured as the coupled baseline.
func (c Config) NoDCF() Config {
	c.Front = FrontNoDCF
	c.Variant = core.NoELF
	return c
}

// Name describes the organisation for reports.
func (c Config) Name() string {
	if c.Front == FrontNoDCF {
		return "NoDCF"
	}
	return c.Variant.String()
}

// Validate rejects inconsistent configurations.
func (c *Config) Validate() error {
	if c.FetchWidth <= 0 || c.FAQSize <= 0 {
		return fmt.Errorf("pipeline: non-positive width/FAQ")
	}
	if c.Front == FrontNoDCF && c.Variant != core.NoELF {
		return fmt.Errorf("pipeline: ELF variant requires the DCF front-end")
	}
	if c.BPredToFetch < 1 {
		return fmt.Errorf("pipeline: BPredToFetch must be >= 1")
	}
	return nil
}
