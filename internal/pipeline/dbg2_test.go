package pipeline

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/workload"
)

func TestDebugBzip2LELF(t *testing.T) {
	if testing.Short() {
		t.Skip("debug")
	}
	e, err := workload.Lookup("401.bzip2")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(DefaultConfig().WithVariant(core.LELF), e.Program())
	m.EnableTrace()
	m.Run(200_000)
	t.Logf("watchdogs=%d", m.Stats.WatchdogRecoveries)
}
