package pipeline

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/program"
	"elfetch/internal/workload"
)

func workloadLookup(n string) (*workload.Entry, error) { return workload.Lookup(n) }

// dumpState prints the machine's control state — kept as a debug helper.
func (m *Machine) dumpState(t *testing.T) {
	t.Helper()
	f, d, dc := m.elf.Counts()
	t.Logf("cyc=%d committed=%d mode=%v draining=%v stalled=%v halted=%v busyUntil=%d redirectAt=%d",
		m.now, m.Stats.Committed, m.elf.Mode(), m.elf.Draining(), m.coupledStalled, m.fetchHalted, m.fetchBusyUntil, m.redirectAt)
	t.Logf("  counts f=%d d=%d dc=%d | faq=%d off=%d headProc=%v headRec=%v headIdx=%d | inFlight=%d renameQ=%d robOcc=%d iq=%d",
		f, d, dc, m.faq.Len(), m.faqOffset, m.headProcessed, m.headRecorded, m.headPeriodIdx, m.inFlight.Len(), m.renameQ.Len(), m.be.Occupancy(), m.be.IQCount())
	t.Logf("  fetchPC=%v fetchSeq=%d wrongPath=%v dcfHalted=%v stalledRec=%+v",
		m.fetchPC, m.fetchSeq, m.onWrongPath, m.dcf != nil && m.dcf.Halted(), m.stalled)
	if h := m.faq.Head(); h != nil {
		t.Logf("  head start=%v count=%d ready=%d term=%v seqmiss=%v", h.Start, h.Count, h.ReadyAt, h.TermTaken, h.SeqMiss)
	}
	if r := m.be.OldestResolution(); r != nil {
		t.Logf("  pending resolution id=%d kind=%v pc=%v coupled=%v bound=%v head=%d",
			r.ID, r.Kind, r.U.PC, r.U.Coupled, r.U.CkptBound, m.be.HeadID())
	}
	m.be.DumpWindow(func(id, pc uint64, class string, state uint8, pending int8, mdpWait int64, doneAt uint64, wrong bool) {
		t.Logf("  rob id=%d pc=0x%x %s state=%d pending=%d mdpWait=%d doneAt=%d wrong=%v", id, pc, class, state, pending, mdpWait, doneAt, wrong)
	})
}

// chaoticProgram mirrors TestChaoticBranchCausesFlushes.
func chaoticProgram(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(4)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 1}, "other")
	loop.Nop(2)
	loop.JumpTo("loop")
	other := f.Block("other")
	other.Nop(2)
	other.JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// debugWedge runs a machine watching for commit stalls and dumps state.
func debugWedge(t *testing.T, m *Machine, target uint64) {
	last := uint64(0)
	stuckSince := uint64(0)
	for i := 0; i < 40_000_000; i++ {
		m.Cycle()
		if m.Stats.Committed != last {
			last = m.Stats.Committed
			stuckSince = m.now
		}
		if m.now-stuckSince > 200000 {
			m.dumpState(t)
			for i := 0; i < m.renameQ.Len(); i++ {
				q := m.renameQ.At(i)
				t.Logf("  renameQ[%d] fid=%d pc=%v seq=%d wrong=%v class=%v", i, q.FetchID, q.PC, q.Seq, q.WrongPath, q.SI.Class)
				if i > 5 {
					break
				}
			}
			t.Fatalf("wedged at cycle %d after %d commits", m.now, last)
		}
		if m.Stats.Committed >= target {
			return
		}
	}
	t.Fatalf("too slow: %d commits", m.Stats.Committed)
}

func TestDebugWedgeHunt(t *testing.T) {
	for name, cfg := range allConfigs() {
		name, cfg := name, cfg
		t.Run("tiny/"+name, func(t *testing.T) {
			debugWedge(t, MustNew(cfg, tinyLoop(t)), 50_000)
		})
		t.Run("chaotic/"+name, func(t *testing.T) {
			m := MustNew(cfg, chaoticProgram(t))
			if name == "L-ELF" {
				m.Debug = true
			}
			debugWedge(t, m, 50_000)
		})
	}
}

func TestDebugLeelaUELF(t *testing.T) {
	e, err := workloadLookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(DefaultConfig().WithVariant(core.UELF), e.Program())
	m.EnableTrace()
	debugWedge(t, m, 120_000)
}

func TestDebugFigureSetWedgeHunt(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, name := range workload.FigureSet() {
		e, err := workload.Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		for cname, cfg := range allConfigs() {
			name, cname, cfg, e := name, cname, cfg, e
			t.Run(name+"/"+cname, func(t *testing.T) {
				t.Parallel()
				debugWedge(t, MustNew(cfg, e.Program()), 200_000)
			})
		}
	}
}
