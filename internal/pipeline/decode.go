package pipeline

import (
	"elfetch/internal/core"
	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/uop"
)

// decode is the DEC stage: it consumes fetch groups whose latency has
// elapsed, performs the organisation-specific control logic (NoDCF
// decode-time prediction, DCF misfetch recovery, ELF coupled decisions and
// divergence recording), and forwards kept uops to rename.
func (m *Machine) decode(now uint64) {
	for m.inFlight.Len() > 0 {
		// Decode-buffer backpressure: hold groups while rename is backed
		// up (bounds renameQ like a real decode queue would).
		if m.renameQ.Len() > m.cfg.FetchWidth*4 {
			return
		}
		g := m.inFlight.Front()
		if g.canceled {
			m.inFlight.PopFront()
			continue
		}
		if g.decodeAt > now {
			return
		}
		stop, done := m.decodeGroup(now, g)
		// decodeGroup may have squashed the queue out from under us (its
		// stop path clears inFlight); only pop when g is still the head.
		if done && m.inFlight.Len() > 0 && m.inFlight.Front() == g {
			m.inFlight.PopFront()
		}
		if stop || !done {
			return
		}
	}
}

// decodeGroup processes one group in program order from its cursor.
// stop=true means a redirect/stall squashed the younger front-end contents;
// done=false means a structural stall paused the group mid-way (resume next
// cycle).
func (m *Machine) decodeGroup(now uint64, g *fetchGroup) (stop, done bool) {
	for i := g.next; i < len(g.uops); i++ {
		u := &g.uops[i]
		if u.Coupled && m.cfg.Front == FrontDCF {
			// Full tracking structures stall decode (the indexing
			// depends on every decoded instruction being recorded).
			isBr := u.SI.Class.IsBranch()
			if !m.elf.CanRecordCoupled(isBr, isBr) {
				g.next = i
				return false, false
			}
		}
		switch {
		case m.cfg.Front == FrontNoDCF:
			stop = m.decodeNoDCF(now, u)
		case u.Coupled:
			stop = m.decodeElfCoupled(now, u)
		default:
			stop = m.decodeDCFMode(now, u)
		}
		if stop {
			// Younger instructions of this group are overshoot.
			m.discardTail(g, i+1)
			m.squashUndecodedGroups()
			return true, true
		}
	}
	return false, true
}

// discardTail drops group instructions beyond keep, rolling back their
// coupled-count contributions.
func (m *Machine) discardTail(g *fetchGroup, keep int) {
	for j := keep; j < len(g.uops); j++ {
		if g.uops[j].Coupled {
			m.elf.OnCoupledSquash(1)
		}
	}
	g.uops = g.uops[:keep]
}

// keep forwards a decoded uop to rename.
func (m *Machine) keep(u *uop.Uop) {
	if m.tracer != nil {
		m.tracer.decoded(u.FetchID, m.now)
	}
	m.renameQ.PushBack(*u)
}

// frontRedirect points fetch at target starting at cycle `at`, rewinding
// the oracle binding past u.
func (m *Machine) frontRedirect(u *uop.Uop, target isa.Addr, at uint64) {
	if u.WrongPath {
		m.fetchPC = target
		m.redirectAt = at
		m.fetchBusyUntil = 0
		m.fetchHalted = false
		m.coupledStalled = false
	} else {
		m.resteerFetchTo(u.Seq+1, target, at)
	}
	if target == 0 {
		m.fetchHalted = true
	}
}

// ---- NoDCF: prediction in parallel with decode (Section III-B1) ----

func (m *Machine) decodeNoDCF(now uint64, u *uop.Uop) bool {
	si := u.SI
	if !si.Class.IsBranch() {
		m.keep(u)
		return false
	}

	u.HistCp = m.specHist
	u.RASCp = m.rasDCF.Checkpoint()
	u.HasCkpt = true
	redirect := false
	extra := 0

	switch si.Class {
	case isa.CondBranch:
		pred := m.tage.Predict(u.PC, m.specHist)
		u.TagePred, u.HasTage = pred, true
		u.PredTaken = pred.Taken
		m.specHist.UpdateCond(uint64(u.PC), pred.Taken)
		if pred.Taken {
			u.PredTarget = si.Target
			redirect = true
		}
	case isa.Jump:
		u.PredTaken, u.PredTarget = true, si.Target
		redirect = true
	case isa.Call:
		u.PredTaken, u.PredTarget = true, si.Target
		m.rasDCF.Push(u.PC.Next())
		redirect = true
	case isa.Ret:
		u.PredTaken = true
		if ra, ok := m.rasDCF.Pop(); ok {
			u.PredTarget = ra
		}
		m.specHist.UpdateIndirect(uint64(u.PredTarget))
		redirect = true
	default: // indirect branch / indirect call
		u.PredTaken = true
		if tgt, ok := m.btcL0.Predict(u.PC); ok {
			u.PredTarget = tgt
		} else {
			it := m.ittage.Predict(u.PC, m.specHist)
			u.ITPred, u.HasIT = it, true
			u.PredTarget = it.Target
			extra = m.cfg.IndirectSlowBubbles
		}
		if si.Class.IsCall() {
			m.rasDCF.Push(u.PC.Next())
		}
		m.specHist.UpdateIndirect(uint64(u.PredTarget))
		redirect = true
	}

	m.keep(u)
	if redirect {
		m.Stats.TakenBubbles += uint64(1 + extra)
		m.frontRedirect(u, u.PredTarget, now+1+uint64(extra))
		return true
	}
	return false
}

// ---- DCF decoupled mode: misfetch detection and recovery (Section III-C) ----

func (m *Machine) decodeDCFMode(now uint64, u *uop.Uop) bool {
	si := u.SI

	// The coupled RAS of U-ELF/RET-ELF is updated in both modes
	// (Section IV-D2).
	m.updateCoupledRAS(si, u.PC)

	if !si.Class.IsBranch() || u.PredTaken {
		m.keep(u)
		return false
	}
	// A branch the FAQ block did not predict taken: either a listed
	// conditional predicted not-taken (HasTage — fine), an invisible
	// never-taken conditional (fine), or a misfetch.
	if si.Class == isa.CondBranch {
		if u.FromSeqMiss {
			// BTB miss: decode may resteer using the predictor
			// ("if the branch predictor predicted taken").
			pred := m.tage.Predict(u.PC, m.dcf.Hist)
			if pred.Taken {
				u.TagePred, u.HasTage = pred, true
				u.PredTaken, u.PredTarget = true, si.Target
				m.keep(u)
				m.misfetchResteer(now, u, si.Target)
				return true
			}
		}
		m.keep(u)
		return false
	}

	// Unconditional branch unknown to the BTB: misfetch (Figure 2's
	// resteer-on-decode cases).
	var target isa.Addr
	switch si.Class {
	case isa.Jump, isa.Call:
		target = si.Target
	case isa.Ret:
		if ra, ok := m.rasDCF.Pop(); ok {
			target = ra
		}
	default: // indirect: only the target predictor can help
		it := m.ittage.Predict(u.PC, m.dcf.Hist)
		u.ITPred, u.HasIT = it, true
		target = it.Target
	}
	u.PredTaken, u.PredTarget = true, target
	m.keep(u)
	m.misfetchResteer(now, u, target)
	return true
}

// misfetchResteer recovers a decode-detected BTB miss: squash the front
// end, resteer BP1 — and, for elastic variants, enter coupled mode at the
// resolved target (Section IV-A).
func (m *Machine) misfetchResteer(now uint64, u *uop.Uop, target isa.Addr) {
	if m.Debug {
		println("cyc", now, "MISFETCH pc", uint64(u.PC), "class", u.SI.Class.String(), "target", uint64(target), "wrong", u.WrongPath)
	}
	m.Stats.DecodeResteers++
	m.Stats.Flushes[uop.FlushFrontend]++
	if target != 0 {
		m.btbBuilder.ForceBoundary(target)
	}
	m.faq.Clear()
	m.faqOffset = 0
	m.headProcessed = false
	m.headRecorded = false
	if target == 0 {
		// No target anywhere (cold RAS / cold indirect predictors):
		// both engines wait for the execute-time resteer.
		m.dcf.Halt()
	} else {
		m.dcf.Resteer(target, m.dcf.Hist, nil)
	}
	m.frontRedirect(u, target, now+1)
	m.enterCoupledAt()
}

// ---- ELF coupled mode: decode decisions (Section IV-B/IV-C) ----

func (m *Machine) decodeElfCoupled(now uint64, u *uop.Uop) bool {
	si := u.SI
	d, target, predTaken, usedPred := m.elf.Variant.Resolve(
		m.elf.Pred, si.Class, u.PC, si.Target, m.cfg.SatFilter)
	if si.Class.IsBranch() {
		u.PredTaken = predTaken
		u.PredTarget = target
		u.CoupledPredUsed = usedPred
	}
	if m.elf.Pred.RAS != nil && si.Class.IsCall() {
		m.elf.Pred.RAS.Push(u.PC.Next())
	}

	// Period-relative index of this instruction: the tracking vector's
	// next slot when vectors are maintained (divergence indexes must match
	// exactly), otherwise the decode coupled count (L-ELF).
	if m.elf.TrackingEnabled() {
		u.CoupledIdx = m.elf.CoupledIdx()
	} else {
		_, dccBefore, _ := m.elf.Counts()
		u.CoupledIdx = dccBefore
	}
	u.CoupledGen = m.periodGen
	recTarget := target
	if recTarget == 0 && si.Class.IsDirect() {
		recTarget = si.Target
	}
	m.elf.RecordCoupled(si.Class, u.PredTaken, recTarget)
	m.elf.OnCoupledDecoded(1)
	if d != core.Stall {
		m.keep(u)
	}

	switch d {
	case core.Redirect:
		at := now + 1
		if m.cfg.CoupledZeroBubble {
			// Section IV-E: sub-cycle L0I + tiny coupled predictors
			// let coupled mode redirect without a bubble.
			at = now
		} else {
			m.Stats.TakenBubbles++
		}
		if !m.elf.TrackingEnabled() && (si.Class == isa.Jump || si.Class == isa.Call) {
			// Counts-only variants must still verify the DCF knows
			// about this unconditional (BTB-miss divergence).
			m.uncondChecks.PushBack(uncondCheck{idx: u.CoupledIdx, target: target})
		}
		m.frontRedirect(u, target, at)
		return true
	case core.Stall:
		if m.Debug {
			println("cyc", now, "STALL pc", uint64(u.PC), "seq", u.Seq, "wrong", u.WrongPath)
		}
		// Hold the instruction at decode until the DCF resolves the
		// decision (it is released by adoptStalledDecision, or dies
		// with the period on a flush).
		m.coupledStalled = true
		m.stalled.active = true
		m.stalled.fetchID = u.FetchID
		m.stalled.idx = u.CoupledIdx
		m.stalled.u = *u
		// The blind sequential overshoot past this decision is
		// discarded (Section IV-B1 case 2b); the caller squashes the
		// in-flight groups, and the binding rewinds so the successor
		// refetches once the DCF takes over.
		if !u.WrongPath {
			if m.Debug {
				println("cyc", now, "STALL-BIND seq", u.Seq+1)
			}
			m.fetchSeq = u.Seq + 1
			m.onWrongPath = false
		}
		return true
	default:
		return false
	}
}

// updateCoupledRAS keeps the coupled RAS current in decoupled mode.
func (m *Machine) updateCoupledRAS(si *program.Static, pc isa.Addr) {
	if m.elf.Pred.RAS == nil {
		return
	}
	switch {
	case si.Class.IsCall():
		m.elf.Pred.RAS.Push(pc.Next())
	case si.Class.IsReturn():
		m.elf.Pred.RAS.Pop()
	}
}
