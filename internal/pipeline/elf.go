package pipeline

import (
	"elfetch/internal/core"
	"elfetch/internal/frontend"
	"elfetch/internal/isa"
	"elfetch/internal/uop"
)

// resyncStep runs once per cycle for elastic variants. Order matters: the
// head block is first *recorded* into the decoupled tracking structures,
// then divergence is checked, and only if the streams still agree does the
// Figure 5 count algorithm get to pop heads or switch modes — otherwise a
// sequential BTB-miss guess could win the count race against a coupled
// stream that correctly followed a branch.
func (m *Machine) resyncStep(now uint64) {
	if m.elf.Mode() == core.Coupled {
		m.recordFAQHead(now)
	}
	if div := m.elf.CheckDivergence(); div.Kind != core.DivNone {
		m.applyDivergence(now, div)
		return
	}
	if m.elf.Mode() == core.Coupled {
		m.countFAQHead(now)
	}
}

// recordFAQHead logs a freshly available head block into the decoupled
// tracking structures, once.
func (m *Machine) recordFAQHead(now uint64) {
	head := m.faq.Head()
	if head == nil || head.ReadyAt > now || m.headRecorded || m.headProcessed {
		return
	}
	takens := 0
	if head.TermTaken {
		takens = 1
	}
	if !m.elf.CanRecordDecoupled(head.Count, takens) {
		return
	}
	m.recordDecoupledBlock(head)
	m.headRecorded = true
}

// countFAQHead runs the Figure 5 algorithm on a recorded head (or retries
// the pop condition for an already-counted one).
func (m *Machine) countFAQHead(now uint64) {
	head := m.faq.Head()
	if head == nil || head.ReadyAt > now {
		return
	}
	if !m.verifyUncondChecks(head) {
		return
	}
	var act core.ResyncAction
	var keep int
	switch {
	case m.headProcessed:
		act, keep = m.elf.Reevaluate(head.Count)
	case m.headRecorded:
		act, keep = m.elf.ProcessHead(head.Count)
		m.headProcessed = true
	default:
		return
	}
	switch act {
	case core.ResyncPop:
		m.headPeriodIdx += head.Count
		m.popHead()
		m.markCheckpointsBound()
	case core.ResyncSwitch:
		if m.Debug {
			println("cyc", now, "SWITCH keep", keep, "head", uint64(head.Start))
		}
		m.applySwitch(head, keep)
	case core.ResyncPrepare:
		// FAQ has caught up: stop initiating coupled fetches so decode
		// drains, then switch.
		m.switchPending = true
		m.probeSwitchPrepare(now)
	}
}

// applySwitch trims the FAQ head to its uncovered tail and resumes
// decoupled fetching (Figure 5, cycle 1). The coupled stream's next fetch
// PC is authoritative: if the resume point disagrees (count drift after a
// redirect the DCF saw differently), the FAQ is rebuilt from that PC
// instead of fetching from a misaligned block.
func (m *Machine) applySwitch(head *frontend.FAQBlock, keep int) {
	m.probeSwitchDecoupled(m.now)
	consumed := head.Count - keep
	m.headPeriodIdx += consumed
	var resume isa.Addr
	if keep == 0 {
		resume = head.NextPC
		if head.TermTaken && consumed < head.Count {
			// The terminating branch was coupled-fetched; its
			// successor is the coupled PC below anyway.
			resume = m.fetchPC
		}
		m.popHead()
	} else {
		m.trimHead(head, consumed)
		resume = head.Start
	}
	m.faqOffset = 0
	m.headProcessed = false
	m.headRecorded = false
	m.coupledStalled = false
	m.switchPending = false
	m.markCheckpointsBound()

	m.adoptStalledDecision(resume)
	if resume != m.fetchPC {
		// Misaligned: restart the DCF exactly at the coupled
		// successor (costs the BP1→FE refill, like a misfetch).
		m.faq.Clear()
		m.faqOffset = 0
		m.headProcessed = false
		m.headRecorded = false
		m.dcf.Resteer(m.fetchPC, m.dcf.Hist, nil)
	}
}

// trimHead drops the first `consumed` instructions of the block (they were
// fetched in coupled mode), dropping branches that fell off the front.
func (m *Machine) trimHead(head *frontend.FAQBlock, consumed int) {
	head.Start = head.Start.Plus(consumed)
	head.Count -= consumed
	kept := 0
	for i := 0; i < head.NumBr; i++ {
		br := head.Brs[i]
		if br.Offset < consumed {
			continue
		}
		br.Offset -= consumed
		head.Brs[kept] = br
		kept++
	}
	head.NumBr = kept
}

// markCheckpointsBound implements Section IV-D1 late binding: once FAQ
// information has covered the coupled instructions, their checkpoint-queue
// entries are populated and they may trigger immediate flushes.
func (m *Machine) markCheckpointsBound() {
	if m.cfg.Ckpt != CkptLateBind {
		return
	}
	m.ckptWatermark = m.fetchID
	m.be.MarkCkptBound(m.be.NextID())
	for i := 0; i < m.renameQ.Len(); i++ {
		if q := m.renameQ.At(i); q.Coupled {
			q.CkptBound = true
		}
	}
}

// recordDecoupledBlock logs every instruction the block covers into the
// decoupled tracking vector/target queue.
func (m *Machine) recordDecoupledBlock(head *frontend.FAQBlock) {
	for off := 0; off < head.Count; off++ {
		var cls isa.Class = isa.ALU
		isBr, taken := false, false
		var tgt isa.Addr
		for b := 0; b < head.NumBr; b++ {
			br := &head.Brs[b]
			if br.Offset != off {
				continue
			}
			cls = br.Class
			isBr = true
			taken = br.PredTaken
			tgt = br.Target
			break
		}
		m.elf.RecordDecoupled(cls, isBr, taken, tgt)
	}
}

// adoptStalledDecision hands the stalled control decision over to the DCF
// at the moment the machine switches to decoupled fetching: the resumption
// PC *is* the DCF's decision for the stalled branch (the FAQ entry drives
// the fetcher from here on, so its implied prediction is what the
// checkpoint machinery must validate at execution). ReResolve covers the
// race where the branch already executed under the stall-default.
func (m *Machine) adoptStalledDecision(resume isa.Addr) {
	if !m.stalled.active {
		return
	}
	m.stalled.active = false
	u := m.stalled.u
	if resume == 0 {
		// No target anywhere: release with the stall-default; the
		// execute-time resteer recovers.
		m.fetchHalted = true
		m.renameQ.PushBack(u)
		return
	}
	if resume == u.PC.Next() {
		u.PredTaken = false
		u.PredTarget = 0
	} else {
		u.PredTaken = true
		u.PredTarget = resume
	}
	m.fetchPC = resume
	m.renameQ.PushBack(u)
}

// findUopByFetchID searches the back end and the rename queue.
func (m *Machine) findUopByFetchID(fid uint64) *uop.Uop {
	if id, ok := m.be.FindByFetchID(fid); ok {
		return m.be.EntryByID(id)
	}
	for i := 0; i < m.renameQ.Len(); i++ {
		if q := m.renameQ.At(i); q.FetchID == fid {
			return q
		}
	}
	return nil
}

// verifyUncondChecks confirms the head block agrees with the unconditional
// direct branches the coupled stream followed (counts-only variants).
// Returns false when a fetcher-wins recovery was applied.
func (m *Machine) verifyUncondChecks(head *frontend.FAQBlock) bool {
	for m.uncondChecks.Len() > 0 {
		chk := *m.uncondChecks.Front()
		if chk.idx < m.headPeriodIdx {
			// Covered by an already-consumed block that agreed (or a
			// recovery): drop.
			m.uncondChecks.PopFront()
			continue
		}
		if chk.idx >= m.headPeriodIdx+head.Count {
			return true // head precedes the branch; fine to count it
		}
		off := chk.idx - m.headPeriodIdx
		ok := false
		for b := 0; b < head.NumBr; b++ {
			br := &head.Brs[b]
			if br.Offset == off && br.PredTaken && br.Target == chk.target {
				ok = true
				break
			}
		}
		if !ok {
			// The DCF does not know this branch (BTB miss): fetcher
			// wins — flush the DCF and restart it past the branch.
			if m.Debug {
				println("UNCOND-CHECK fail idx", chk.idx, "target", uint64(chk.target))
			}
			m.faq.Clear()
			m.faqOffset = 0
			m.headProcessed = false
			m.headRecorded = false
			m.headPeriodIdx = chk.idx + 1
			m.dcf.Resteer(chk.target, m.dcf.Hist, nil)
			m.elf.FetcherWins(chk.idx+1, m.elf.CoupledTgts.Next())
			m.uncondChecks.PopFront()
			return false
		}
		m.uncondChecks.PopFront()
	}
	return true
}

// applyDivergence applies the Section IV-C2 winner rules.
func (m *Machine) applyDivergence(now uint64, div core.Divergence) {
	if m.Debug {
		println("cyc", now, "DIVERGE", div.Kind.String(), "idx", div.InstIdx, "winner", int(div.Winner))
	}
	if div.Winner == core.WinFetcher {
		m.applyFetcherWin(div)
		return
	}
	m.applyDCFWin(now, div)
}

// applyFetcherWin: the fetcher's decoded direct target (or a decoded
// unconditional the BTB missed) outranks the DCF: flush the DCF and restart
// it on the fetcher's path; fetching continues coupled.
func (m *Machine) applyFetcherWin(div core.Divergence) {
	next := m.coupledNextPCAt(div.InstIdx)
	m.faq.Clear()
	m.faqOffset = 0
	m.headProcessed = false
	m.headPeriodIdx = div.InstIdx + 1
	m.dcf.Resteer(next, m.dcf.Hist, nil)
	m.elf.FetcherWins(div.InstIdx+1, m.elf.CoupledTgts.Next())
}

// coupledNextPCAt reconstructs the coupled stream's successor PC after the
// instruction at the given period index.
func (m *Machine) coupledNextPCAt(idx int) isa.Addr {
	if u := m.findCoupledUop(idx); u != nil {
		if u.PredTaken && u.PredTarget != 0 {
			return u.PredTarget
		}
		if u.PredTaken && u.SI.Class.IsDirect() {
			return u.SI.Target
		}
		return u.PC.Next()
	}
	// Fall back to the recorded target.
	if tgt, ok := m.elf.CoupledTgts.TargetAt(idx); ok && tgt != 0 {
		return tgt
	}
	return 0
}

// findCoupledUop locates the in-flight coupled uop with the given period
// index, in the back end or the rename queue.
func (m *Machine) findCoupledUop(idx int) *uop.Uop {
	if m.stalled.active && m.stalled.u.CoupledGen == m.periodGen && m.stalled.u.CoupledIdx == idx {
		return &m.stalled.u
	}
	if id, ok := m.be.FindByCoupledIdx(m.periodGen, idx); ok {
		return m.be.EntryByID(id)
	}
	for i := 0; i < m.renameQ.Len(); i++ {
		q := m.renameQ.At(i)
		if q.Coupled && q.CoupledGen == m.periodGen && q.CoupledIdx == idx {
			return q
		}
	}
	return nil
}

// applyDCFWin: trust the DCF — fix the diverging instruction's prediction
// to the DCF's intent, squash every younger coupled instruction, and
// continue decoupled from the FAQ (a mini-flush at the divergence point).
func (m *Machine) applyDCFWin(now uint64, div core.Divergence) {
	_, dTaken, _ := m.elf.DecoupledVec.IntentAt(div.InstIdx)
	dTarget, _ := m.elf.DecoupledTgts.TargetAt(div.InstIdx)

	u := m.findCoupledUop(div.InstIdx)
	if u != nil && !u.SI.Class.IsBranch() {
		// Safety net: a DCF win against a decoded non-branch means the
		// DCF stream is structurally bogus — the fetcher wins instead.
		m.applyFetcherWin(div)
		return
	}
	var next isa.Addr
	var bindSeq uint64
	bindOK := false
	if u != nil {
		u.PredTaken = dTaken
		if dTaken {
			if dTarget == 0 && u.SI.Class.IsDirect() {
				dTarget = u.SI.Target
			}
			u.PredTarget = dTarget
			next = dTarget
		} else {
			next = u.PC.Next()
		}
		if !u.WrongPath {
			bindSeq, bindOK = u.Seq+1, true
		}
		// The branch may already have executed under its old
		// prediction; re-evaluate so a now-mispredicted branch still
		// flushes.
		if id, ok := m.be.FindByFetchID(u.FetchID); ok {
			m.be.ReResolve(id)
		}
	}

	// Squash younger coupled instructions everywhere.
	if id, ok := m.be.FirstCoupledAfter(m.periodGen, div.InstIdx); ok {
		m.be.SquashFrom(id)
	}
	m.renameQ.Filter(func(q *uop.Uop) bool {
		return !(q.Coupled && q.CoupledGen == m.periodGen && q.CoupledIdx > div.InstIdx)
	})
	m.squashUndecodedGroups()

	// Rewind the oracle binding to the diverging instruction's successor.
	if bindOK {
		if m.Debug {
			println("cyc", now, "DCFWIN-BIND seq", bindSeq, "next", uint64(next))
		}
		m.fetchSeq = bindSeq
		m.onWrongPath = false
	}
	m.redirectAt = now + 1
	m.fetchHalted = next == 0
	m.coupledStalled = false

	// Resolve the decode-held stalled instruction: if it is the diverging
	// one its (fixed) copy is released to rename; a younger one dies with
	// the squash.
	if m.stalled.active {
		if u == &m.stalled.u {
			m.renameQ.PushBack(m.stalled.u)
		}
		m.stalled.active = false
	}

	// Fast-forward the FAQ past the instructions the coupled stream kept.
	m.fastForwardFAQ(div.InstIdx+1, next)
	// The period-index bookkeeping can drift across recoveries; the
	// resume PC is authoritative. If the head does not start exactly at
	// the successor, restart the DCF there instead of fetching from a
	// misaligned block.
	if next != 0 {
		if head := m.faq.Head(); head != nil && head.Start != next {
			m.faq.Clear()
			m.faqOffset = 0
			m.headProcessed = false
			m.headRecorded = false
			m.headPeriodIdx = div.InstIdx + 1
			m.dcf.Resteer(next, m.dcf.Hist, nil)
		}
	}
	if m.elf.Mode() == core.Coupled {
		m.probeSwitchDecoupled(now)
	}
	m.elf.SwitchAfterDivergence()
	m.markCheckpointsBound()
}

// fastForwardFAQ pops/trims blocks so the head starts at period index
// target; if the queued blocks do not reach it, the DCF is resteered to
// resumePC.
func (m *Machine) fastForwardFAQ(target int, resumePC isa.Addr) {
	for {
		head := m.faq.Head()
		if head == nil {
			// The DCF has not generated that far: restart it at the
			// resume point.
			m.headPeriodIdx = target
			if resumePC != 0 {
				m.dcf.Resteer(resumePC, m.dcf.Hist, nil)
			} else {
				m.dcf.Halt()
			}
			return
		}
		skip := target - m.headPeriodIdx
		if skip <= 0 {
			return
		}
		if skip >= head.Count {
			m.headPeriodIdx += head.Count
			m.popHead()
			continue
		}
		m.trimHead(head, skip)
		m.headPeriodIdx = target
		m.faqOffset = 0
		m.headProcessed = false
		return
	}
}
