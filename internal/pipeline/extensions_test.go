package pipeline

import (
	"testing"

	"elfetch/internal/core"
)

// TestBoomerangHelpsBTBMissHeavyWorkload: predecode-based BTB-miss
// resolution (Section VI-C / Kumar et al. [11]) must reduce decode
// resteers — and not slow down — a workload that misses the BTB constantly.
func TestBoomerangHelpsBTBMissHeavyWorkload(t *testing.T) {
	off := DefaultConfig()
	on := off
	on.Boomerang = true

	run := func(cfg Config) *Stats {
		m := mustWorkloadMachine(t, cfg, "server1_subtest_1")
		m.Run(100_000)
		m.ResetStats()
		return m.Run(250_000)
	}
	base := run(off)
	boom := run(on)
	if boom.DecodeResteers >= base.DecodeResteers {
		t.Errorf("Boomerang did not reduce decode resteers: %d vs %d",
			boom.DecodeResteers, base.DecodeResteers)
	}
	if boom.IPC() < base.IPC()*0.98 {
		t.Errorf("Boomerang IPC %.3f clearly below baseline %.3f", boom.IPC(), base.IPC())
	}
}

// TestBoomerangNoEffectWhenBTBCovers: on a tiny, BTB-resident kernel the
// predecoder should barely fire.
func TestBoomerangNoEffectWhenBTBCovers(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Boomerang = true
	m := MustNew(cfg, tinyLoop(t))
	m.Run(50_000)
	if m.BTBStats().Misses > 200 {
		t.Errorf("BTB misses = %d on a tiny loop", m.BTBStats().Misses)
	}
}

// TestCoupledZeroBubble: the Section IV-E optimization removes coupled-mode
// redirect bubbles, so it can only help an elastic configuration.
func TestCoupledZeroBubble(t *testing.T) {
	off := DefaultConfig().WithVariant(core.UELF)
	on := off
	on.CoupledZeroBubble = true

	run := func(cfg Config) *Stats {
		m := mustWorkloadMachine(t, cfg, "641.leela_s")
		m.Run(80_000)
		m.ResetStats()
		return m.Run(200_000)
	}
	slow := run(off)
	fast := run(on)
	if fast.TakenBubbles >= slow.TakenBubbles {
		t.Errorf("zero-bubble mode still counted %d redirect bubbles (baseline %d)",
			fast.TakenBubbles, slow.TakenBubbles)
	}
	if fast.IPC() < slow.IPC()*0.99 {
		t.Errorf("zero-bubble IPC %.3f below baseline %.3f", fast.IPC(), slow.IPC())
	}
}

// TestCondConfidenceFilterBlocksBadBranches: on a bimodal-hostile workload
// (the omnetpp proxy), the confidence filter must actually gate
// speculation and must not lose to unfiltered COND-ELF.
func TestCondConfidenceFilterBlocksBadBranches(t *testing.T) {
	off := DefaultConfig().WithVariant(core.CONDELF)
	on := off
	on.CondConfidence = true

	run := func(cfg Config) (*Stats, *Machine) {
		m := mustWorkloadMachine(t, cfg, "620.omnetpp_s")
		m.Run(80_000)
		m.ResetStats()
		return m.Run(200_000), m
	}
	plain, _ := run(off)
	filtered, mf := run(on)
	conf := mf.ELF().Pred.Conf
	if conf == nil {
		t.Fatal("confidence table not attached")
	}
	if conf.Blocks == 0 {
		t.Error("confidence filter never blocked a speculation")
	}
	if filtered.IPC() < plain.IPC()*0.98 {
		t.Errorf("confidence filter lost: %.3f vs %.3f", filtered.IPC(), plain.IPC())
	}
}

// TestConfTableBasics unit-tests the filter.
func TestConfTableBasics(t *testing.T) {
	c := core.NewConfTable(64)
	if !c.Allow(0x100) {
		t.Fatal("fresh table should mildly allow")
	}
	c.Train(0x100, false)
	if c.Allow(0x100) {
		t.Fatal("one bad episode must silence the branch")
	}
	c.Train(0x100, true)
	c.Train(0x100, true)
	if !c.Allow(0x100) {
		t.Fatal("branch did not re-earn trust")
	}
	if c.Allows == 0 || c.Blocks == 0 {
		t.Error("decision counters not maintained")
	}
}

// TestPeriodHistogramSums: the histogram partitions the periods.
func TestPeriodHistogramSums(t *testing.T) {
	m := mustWorkloadMachine(t, DefaultConfig().WithVariant(core.UELF), "641.leela_s")
	m.Run(120_000)
	elf := m.ELF()
	var sum uint64
	for _, c := range elf.PeriodHist {
		sum += c
	}
	if sum != elf.Periods {
		t.Errorf("histogram sums to %d, periods %d", sum, elf.Periods)
	}
}
