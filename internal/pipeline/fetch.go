package pipeline

import (
	"elfetch/internal/frontend"
	"elfetch/internal/isa"
	"elfetch/internal/uop"
)

// fetch is the FE stage. In coupled mode (NoDCF always; ELF after a flush)
// it blindly fetches sequential instructions from fetchPC. In decoupled
// mode it consumes FAQ blocks, optionally crossing a predicted-taken branch
// within the cycle when the branch and target lines map to different L0I
// interleave banks (Section VI-A).
func (m *Machine) fetch(now uint64) {
	switch {
	case m.fetchBusyUntil > now:
		m.Stats.CycFetchBusy++
		return
	case m.redirectAt > now:
		m.Stats.CycRedirect++
		return
	case m.fetchHalted:
		m.Stats.CycHalted++
		return
	}
	if m.inFlight.Len() >= maxInFlightGroups || m.renameQ.Len() > m.cfg.FetchWidth*4 {
		m.Stats.CycBackpressure++
		return
	}
	if m.inCoupledMode() {
		m.fetchCoupled(now)
		return
	}
	m.fetchDecoupled(now)
}

// fetchCoupled fetches FetchWidth sequential instructions from fetchPC.
func (m *Machine) fetchCoupled(now uint64) {
	if m.coupledStalled {
		m.Stats.CycCoupledStall++
		return
	}
	if m.switchPending {
		m.Stats.CycSwitchPending++
		return
	}
	m.Stats.CycCoupledFetch++
	elastic := m.cfg.Front == FrontDCF && m.elf.Variant.Elastic()
	if elastic {
		// Finite tracking structures stall the fetcher when full
		// (Section IV-C2): conservatively require a full group's room.
		if m.elf.TrackingEnabled() &&
			(!m.elf.CoupledVec.CanAppend() || !m.elf.CoupledTgts.CanAppend()) {
			return
		}
	}

	g := m.pushGroup()
	pc := m.fetchPC
	var lines [2]isa.Addr
	nLines := 0
	for i := 0; i < m.cfg.FetchWidth; i++ {
		u := m.newUop(pc)
		if elastic {
			u.Coupled = true
			m.elf.OnCoupledFetch(1)
			m.Stats.CoupledFetched++
		}
		g.uops = append(g.uops, u)
		line := pc.Line(m.hier.L0I.LineBytes())
		if nLines == 0 || lines[nLines-1] != line {
			lines[nLines] = line
			nLines++
		}
		pc = pc.Next()
	}
	m.fetchPC = pc

	lat := m.groupLatency(now, lines[:nLines])
	g.decodeAt = now + uint64(lat-1) + uint64(m.cfg.FetchToDecode)
	if lat > 1 {
		m.fetchBusyUntil = now + uint64(lat-1)
	}
}

// pushGroup claims the next inFlight ring slot and resets it for reuse,
// keeping the slot's uops backing array so steady-state fetch never
// allocates.
func (m *Machine) pushGroup() *fetchGroup {
	g := m.inFlight.PushSlot()
	g.uops = g.uops[:0]
	g.canceled = false
	g.next = 0
	g.decodeAt = 0
	return g
}

// fetchDecoupled consumes FAQ blocks.
func (m *Machine) fetchDecoupled(now uint64) {
	head := m.faq.Head()
	if head == nil || head.ReadyAt > now {
		m.Stats.CycFAQEmpty++
		return
	}
	m.Stats.CycDecoupledFetch++
	g := m.pushGroup()
	var lines [4]isa.Addr
	nLines := 0
	addLine := func(pc isa.Addr) {
		line := pc.Line(m.hier.L0I.LineBytes())
		for i := 0; i < nLines; i++ {
			if lines[i] == line {
				return
			}
		}
		if nLines < len(lines) {
			lines[nLines] = line
			nLines++
		}
	}

	crossed := false
	for len(g.uops) < m.cfg.FetchWidth {
		head = m.faq.Head()
		if head == nil || head.ReadyAt > now {
			break
		}
		pc := head.Start.Plus(m.faqOffset)
		u := m.newUop(pc)
		u.FromSeqMiss = head.SeqMiss
		m.bindBlockBranch(&u, head, m.faqOffset)
		g.uops = append(g.uops, u)
		addLine(pc)
		m.faqOffset++

		if m.faqOffset >= head.Count {
			// Block exhausted.
			takenEnd := head.TermTaken
			next := head.NextPC
			m.popHead()
			if next == 0 {
				// Generator had no target: stop fetching until
				// an execute resteer.
				m.fetchHalted = true
				break
			}
			if takenEnd {
				// Crossing a predicted-taken branch within the
				// cycle requires the interleave condition; only
				// one crossing per cycle.
				if !m.cfg.InterleaveFetch || crossed {
					break
				}
				nb := m.faq.Head()
				if nb == nil || nb.ReadyAt > now ||
					m.hier.L0I.Interleave(pc) == m.hier.L0I.Interleave(nb.Start) {
					break
				}
				crossed = true
			}
		}
	}

	if len(g.uops) == 0 {
		m.inFlight.PopBack()
		return
	}
	lat := m.groupLatency(now, lines[:nLines])
	g.decodeAt = now + uint64(lat-1) + uint64(m.cfg.FetchToDecode)
	if lat > 1 {
		m.fetchBusyUntil = now + uint64(lat-1)
	}
}

// popHead removes the consumed FAQ head and resets the offset. In coupled
// mode popping is owned by the resync step, so this is only called from
// decoupled-mode fetch and recovery paths.
func (m *Machine) popHead() {
	m.faq.Pop()
	m.faqOffset = 0
	m.headProcessed = false
	m.headRecorded = false
}

// bindBlockBranch copies the FAQ block's prediction payload for the branch
// at the given offset into the uop.
func (m *Machine) bindBlockBranch(u *uop.Uop, blk *frontend.FAQBlock, offset int) {
	for i := 0; i < blk.NumBr; i++ {
		br := &blk.Brs[i]
		if br.Offset != offset {
			continue
		}
		u.PredTaken = br.PredTaken
		u.PredTarget = br.Target
		u.TagePred = br.Tage
		u.HasTage = br.HasTage
		u.ITPred = br.IT
		u.HasIT = br.HasIT
		u.HistCp = br.HistCp
		u.RASCp = br.RASCp
		u.HasCkpt = true
		return
	}
}

// groupLatency performs the I-cache accesses for the group's lines and
// returns the cycles until the instructions are available (1 = L0I hit).
// Lines covered by an in-flight prefetch complete when the prefetch does.
func (m *Machine) groupLatency(now uint64, lines []isa.Addr) int {
	lat := 1
	for _, line := range lines {
		l := m.demandFetch(now, line)
		if l > lat {
			lat = l
		}
	}
	return lat
}

func (m *Machine) demandFetch(now uint64, line isa.Addr) int {
	// An in-flight prefetch to this line completes the access early.
	for i := range m.pendingPF {
		if m.pendingPF[i].line == line {
			remaining := int(m.pendingPF[i].completeAt - now)
			m.pendingPF[i] = m.pendingPF[len(m.pendingPF)-1]
			m.pendingPF = m.pendingPF[:len(m.pendingPF)-1]
			m.hier.PrefetchI(line) // fill arrives now
			if remaining < 1 {
				remaining = 1
			}
			return remaining
		}
	}
	return m.hier.FetchLatency(line)
}

// prefetchStep issues FAQ-driven instruction prefetches on idle L0I cycles
// (Table II: older to younger, up to MaxPrefetch in flight).
func (m *Machine) prefetchStep(now uint64) {
	// Retire completed prefetches (fill the caches at completion).
	kept := m.pendingPF[:0]
	for _, p := range m.pendingPF {
		if p.completeAt <= now {
			m.hier.PrefetchI(p.line)
			continue
		}
		kept = append(kept, p)
	}
	m.pendingPF = kept

	if !m.cfg.FAQPrefetch || m.cfg.Front != FrontDCF {
		return
	}
	// L0I idle = fetch stalled on a miss or on a redirect this cycle.
	idle := m.fetchBusyUntil > now || m.redirectAt > now || m.fetchHalted
	if !idle || len(m.pendingPF) >= m.cfg.MaxPrefetch {
		return
	}
	lineBytes := m.hier.L0I.LineBytes()
	for i := 0; i < m.faq.Len() && len(m.pendingPF) < m.cfg.MaxPrefetch; i++ {
		blk := m.faq.At(i)
		for off := 0; off < blk.Count; off += lineBytes / isa.InstBytes {
			line := blk.Start.Plus(off).Line(lineBytes)
			if m.hier.L0I.Probe(line) || m.pfInFlight(line) {
				continue
			}
			lat := m.prefetchLatency(line)
			m.pendingPF = append(m.pendingPF, pendingPrefetch{line: line, completeAt: now + uint64(lat)})
			m.Stats.PrefetchIssued++
			if len(m.pendingPF) >= m.cfg.MaxPrefetch {
				return
			}
		}
	}
}

func (m *Machine) pfInFlight(line isa.Addr) bool {
	for _, p := range m.pendingPF {
		if p.line == line {
			return true
		}
	}
	return false
}

// prefetchLatency probes (without filling) where the line currently lives.
func (m *Machine) prefetchLatency(line isa.Addr) int {
	switch {
	case m.hier.L1I.Probe(line):
		return m.hier.Lat.L1I
	case m.hier.L2.Probe(line):
		return m.hier.Lat.L2
	case m.hier.L3.Probe(line):
		return m.hier.Lat.L3
	default:
		return m.hier.Lat.Mem
	}
}

// enterCoupledAt switches an elastic machine into coupled mode at pc
// (pipeline flush or decode-resolved BTB miss).
func (m *Machine) enterCoupledAt() {
	if m.cfg.Front != FrontDCF || !m.elf.Variant.Elastic() {
		return
	}
	m.elf.EnterCoupled()
	m.probeEnterCoupled(m.now)
	m.periodGen++
	m.coupledStalled = false
	m.switchPending = false
	m.headPeriodIdx = 0
	m.headProcessed = false
	m.headRecorded = false
	m.uncondChecks.Clear()
	m.stalled.active = false
}
