package pipeline

import (
	"elfetch/internal/bpred"
	"elfetch/internal/isa"
	"elfetch/internal/uop"
)

// handleResolutions applies the oldest pending back-end event (branch
// misprediction or memory-order violation): squash, repair speculative
// predictor state, resteer the front end — and, for elastic variants, drop
// into coupled mode so fetch can probe the I-cache immediately while BP1
// restarts (Section IV-A).
func (m *Machine) handleResolutions(now uint64) {
	m.be.ResetCommitLimit()
	r := m.be.OldestResolution()
	if r == nil {
		return
	}
	// Coupled-checkpoint policy (Section IV-D1): an instruction without a
	// bound checkpoint cannot restore predictor state; it must wait for
	// binding (late-bind) or the ROB head.
	if r.U.Coupled {
		live := m.be.EntryByID(r.ID)
		bound := live != nil && live.CkptBound
		atHead := r.ID == m.be.HeadID()
		wait := false
		switch m.cfg.Ckpt {
		case CkptROBHeadWait:
			wait = !atHead
		default: // late bind
			wait = !bound && !atHead
		}
		if wait {
			if m.Debug && m.Stats.CkptDeferredCycles%50 == 0 {
				println("cyc", now, "DEFER flush id", r.ID, "head", m.be.HeadID())
			}
			m.Stats.CkptDeferredCycles++
			m.be.DeferredFlushes++
			// The deferred instruction must not retire before its
			// flush fires.
			m.be.LimitCommit(r.ID)
			return
		}
	}
	m.be.PopResolution()
	m.Stats.Flushes[r.Kind]++
	m.probeFlush(now)
	m.btbBuilder.ForceBoundary(r.RefetchPC)
	if m.Debug {
		println("cyc", now, "FLUSH", r.Kind.String(), "pc", uint64(r.U.PC), "refetch", uint64(r.RefetchPC), "seq", r.RefetchSeq)
	}
	// Squash: memory-order violations refetch the load itself; branch
	// mispredictions keep the branch and squash younger.
	boundary := r.ID + 1
	if r.Kind == uop.FlushMemOrder {
		boundary = r.ID
	}
	m.be.SquashFrom(boundary)
	m.squashFrontendAll()
	// Repair speculative predictor state.
	hist, rasRepaired := m.repairSpeculativeState(&r.U, r.Kind)
	// Restart the front end at the correct PC.
	if m.cfg.Front == FrontNoDCF {
		m.specHist = hist
		if !rasRepaired {
			m.rasDCF.CopyFrom(m.archRAS)
		}
		m.resteerFetchTo(r.RefetchSeq, r.RefetchPC, now+1)
		return
	}
	// DCF fronts: BP1 restarts with repaired state; the FAQ is gone.
	m.faq.Clear()
	m.faqOffset = 0
	m.headProcessed = false
	m.headRecorded = false
	if !rasRepaired {
		m.rasDCF.CopyFrom(m.archRAS)
	}
	m.dcf.Resteer(r.RefetchPC, hist, nil)
	m.resteerFetchTo(r.RefetchSeq, r.RefetchPC, now+1)
	m.enterCoupledAt()
	// Repair the coupled RAS from architectural state too (Section
	// IV-D2: on a flush both stacks must realign).
	if m.elf.Pred.RAS != nil {
		m.elf.Pred.RAS.CopyFrom(m.archRAS)
	}
}

// repairSpeculativeState rebuilds the speculative history and DCF RAS as of
// just *after* the flushing instruction. Returns the repaired history and
// whether the RAS was restored precisely from a checkpoint.
func (m *Machine) repairSpeculativeState(u *uop.Uop, kind uop.FlushKind) (bpred.History, bool) {
	var hist bpred.History
	precise := false
	if u.HasCkpt {
		hist = u.HistCp
		m.rasDCF.Restore(u.RASCp)
		precise = true
	} else {
		// Coupled-fetched without a bound per-branch checkpoint: the
		// architectural (retire-time) state is the best repair
		// available — the documented approximation for checkpoint-less
		// recovery.
		hist = m.retHist
	}
	if kind == uop.FlushMemOrder {
		// The load re-executes; no branch outcome to apply.
		return hist, precise
	}
	// Apply the flushing branch's actual outcome so the restarted BP1
	// continues from post-branch state.
	si := u.SI
	switch {
	case si.Class == isa.CondBranch:
		hist.UpdateCond(uint64(u.PC), u.ActTaken)
	case si.Class.IsBranch():
		hist.UpdateIndirect(uint64(u.ActTarget))
		if precise {
			switch {
			case si.Class.IsCall():
				m.rasDCF.Push(u.PC.Next())
			case si.Class.IsReturn():
				m.rasDCF.Pop()
			}
		}
	}
	return hist, precise
}
