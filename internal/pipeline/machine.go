package pipeline

import (
	"context"
	"errors"

	"elfetch/internal/backend"
	"elfetch/internal/bpred"
	"elfetch/internal/btb"
	"elfetch/internal/cache"
	"elfetch/internal/core"
	"elfetch/internal/frontend"
	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/ringq"
	"elfetch/internal/trace"
	"elfetch/internal/uop"
)

// maxInFlightGroups is the fetch→decode buffer depth: fetch applies
// backpressure once this many groups await decode, so the inFlight ring
// never grows past it.
const maxInFlightGroups = 4

// fetchGroup is one cycle's fetch output in flight to decode.
type fetchGroup struct {
	uops     []uop.Uop
	decodeAt uint64
	canceled bool
	// next is the decode cursor: instructions before it already decoded
	// (decode can pause mid-group on structural stalls).
	next int
}

// pendingPrefetch is one in-flight FAQ instruction prefetch.
type pendingPrefetch struct {
	line       isa.Addr
	completeAt uint64
}

// uncondCheck is a coupled-followed unconditional direct branch awaiting
// confirmation in the decoupled stream.
type uncondCheck struct {
	idx    int // period-relative instruction index of the branch
	target isa.Addr
}

// Machine is one simulated core: a front-end organisation, the ELF
// controller, and the out-of-order back-end, bound to a workload's oracle.
type Machine struct {
	cfg  Config
	prog *program.Program

	stream *trace.Stream
	synth  *trace.Synth

	hier       *cache.Hierarchy
	btbH       *btb.BTB
	btbBuilder *btb.Builder

	// Decoupled-location predictors (also the NoDCF front-end's
	// predictors — same structures, coupled location, Figure 1).
	tage   *bpred.TAGE
	ittage *bpred.ITTAGE
	btcL0  *bpred.BTC
	rasDCF *bpred.RAS

	faq *frontend.FAQ
	dcf *frontend.DCF
	elf *core.Controller
	be  *backend.Backend

	now     uint64
	fetchID uint64

	// Oracle binding.
	fetchSeq    uint64
	onWrongPath bool

	// Fetch state.
	fetchPC        isa.Addr // coupled/NoDCF next fetch PC
	fetchBusyUntil uint64
	redirectAt     uint64 // decode-redirect bubble: fetch resumes here
	fetchHalted    bool   // waiting for an execute-time resteer
	coupledStalled bool   // ELF coupled mode stalled at a control decision
	switchPending  bool   // ELF: FAQ caught up; coupled fetch paused to drain
	faqOffset      int    // instructions of the FAQ head already fetched
	headProcessed  bool   // ELF: current FAQ head already counted by ProcessHead
	headRecorded   bool   // ELF: current FAQ head already in the decoupled vectors

	// uncondChecks are pending verifications that the DCF stream contains
	// the unconditional direct branches the coupled fetcher followed —
	// the minimal divergence detection the counts-only L-ELF needs when
	// the BTB misses an unconditional (cf. Section IV-C2 case 1).
	uncondChecks *ringq.Queue[uncondCheck]

	// stalled holds the control decision coupled fetch is parked at. The
	// instruction itself is HELD AT DECODE (paper semantics: the fetcher
	// stalls at the decision) and released with the DCF's adopted
	// prediction when resynchronization resolves it.
	stalled struct {
		active  bool
		fetchID uint64
		idx     int     // period-relative instruction index
		u       uop.Uop // the held instruction
	}
	headPeriodIdx int // ELF: period index of the FAQ head's first inst

	// inFlight and renameQ are the per-cycle hot queues; both are rings
	// whose slots (and, for inFlight, each slot's uops backing array) are
	// recycled so the steady-state loop never allocates (DESIGN.md §17).
	inFlight *ringq.Queue[fetchGroup]
	renameQ  *ringq.Queue[uop.Uop]

	// NoDCF decode-time speculative history (the DCF owns its own).
	specHist bpred.History

	// Architectural (retire-time) state for checkpoint-less repair.
	retHist bpred.History
	archRAS *bpred.RAS

	// Late-binding watermark: uops with FetchID <= this are
	// checkpoint-bound (Section IV-D1).
	ckptWatermark uint64

	// periodGen numbers ELF coupled periods so period-relative indexes
	// can be matched against in-flight uops unambiguously.
	periodGen uint64

	// lastRetired tracks the newest committed sequence (watchdog resume
	// point). idleCycles counts consecutive completely-empty cycles.
	lastRetired uint64
	haveRetired bool
	idleCycles  uint64
	quietCycles uint64

	pendingPF []pendingPrefetch

	nopStatic program.Static // synthetic nop for out-of-image wrong paths

	// Stats is the run's metric sink.
	Stats Stats

	// Debug enables event tracing to stdout (tests only).
	Debug bool

	// tracer, when attached, records per-instruction pipeline events.
	tracer *Tracer

	// probe, when attached, receives sampled distributions (probe.go).
	// The timestamps below are its interval state.
	probe          *Probe
	nextFAQSample  uint64
	flushAt        uint64
	flushArmed     bool
	coupledEnterAt uint64
	drainStartAt   uint64
	drainArmed     bool
}

// EnableTrace turns on backend tracing too.
func (m *Machine) EnableTrace() {
	m.Debug = true
	m.be.Trace = true
}

// New builds a machine for the program under the given configuration.
func New(cfg Config, prog *program.Program) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Machine{
		cfg:    cfg,
		prog:   prog,
		stream: trace.NewStream(prog),
		synth:  trace.NewSynth(prog),
		hier:   cache.NewHierarchy(),
		btbH:   btb.New(cfg.BTB),
		tage:   bpred.NewTAGE(),
		ittage: bpred.NewITTAGE(),
		btcL0:  bpred.NewBTC(64),
		rasDCF: bpred.NewRAS(32),
		faq:    frontend.NewFAQ(cfg.FAQSize),
	}
	m.btbBuilder = btb.NewBuilder(m.btbH)
	m.archRAS = bpred.NewRAS(32)
	// Size the hot-loop rings from the configuration and prime every
	// inFlight slot's uops backing array: the steady-state loop recycles
	// these buffers instead of allocating (DESIGN.md §17). renameQ's bound
	// is the decode backpressure threshold (FetchWidth*4) plus one more
	// decoded group plus the released stalled instruction.
	m.inFlight = ringq.New[fetchGroup](maxInFlightGroups)
	for i := 0; i < m.inFlight.Cap(); i++ {
		m.inFlight.PushSlot().uops = make([]uop.Uop, 0, cfg.FetchWidth)
	}
	m.inFlight.Clear()
	m.renameQ = ringq.New[uop.Uop](cfg.FetchWidth*5 + 2)
	m.uncondChecks = ringq.New[uncondCheck](16)
	m.pendingPF = make([]pendingPrefetch, 0, cfg.MaxPrefetch)
	m.be = backend.New(cfg.Backend, m.hier)
	m.elf = core.NewController(cfg.Variant)
	m.elf.SatFilter = cfg.SatFilter
	if cfg.CondConfidence && m.elf.Pred.Bimodal != nil {
		m.elf.Pred.Conf = core.NewConfTable(512)
	}
	m.nopStatic = program.Static{Class: isa.ALU, StateID: -1, FuncID: -1}

	if cfg.Front == FrontDCF {
		m.dcf = frontend.NewDCF(m.btbH, m.tage, m.ittage, m.btcL0, m.rasDCF, m.faq)
		m.dcf.BPredToFAQ = uint64(cfg.BPredToFetch)
		if cfg.Boomerang {
			m.dcf.SetPredecoder(&predecoder{m: m})
		}
		m.dcf.Resteer(prog.Entry, bpred.History{}, nil)
	}
	m.fetchPC = prog.Entry
	// Every machine starts "after a flush": ELF variants begin coupled.
	m.elf.EnterCoupled()
	return m, nil
}

// MustNew is New that panics on config errors.
func MustNew(cfg Config, prog *program.Program) *Machine {
	m, err := New(cfg, prog)
	if err != nil {
		panic(err)
	}
	return m
}

// ELF exposes the controller (stats: coupled periods, divergences).
func (m *Machine) ELF() *core.Controller { return m.elf }

// BTBStats exposes the BTB hit statistics.
func (m *Machine) BTBStats() *btb.Stats { return &m.btbH.Stats }

// Hierarchy exposes the cache hierarchy (stats).
func (m *Machine) Hierarchy() *cache.Hierarchy { return m.hier }

// Backend exposes the OoO engine (stats).
func (m *Machine) Backend() *backend.Backend { return m.be }

// Now returns the current cycle.
func (m *Machine) Now() uint64 { return m.now }

// FAQHighWater exposes the FAQ's deepest occupancy in blocks since the
// last stats reset (0 until a DCF front enqueues anything).
func (m *Machine) FAQHighWater() int { return m.faq.HighWater() }

// inCoupledMode reports whether fetch is currently self-directed.
func (m *Machine) inCoupledMode() bool {
	if m.cfg.Front == FrontNoDCF {
		return true
	}
	return m.elf.Mode() == core.Coupled
}

// ErrWedged reports that a run hit the safety cycle bound without
// committing its instruction budget (the machine is provably stuck).
var ErrWedged = errors.New("pipeline: machine wedged (safety cycle bound hit)")

// abortPollCycles is how often RunContext polls its context. At a few
// thousand cycles it bounds cancellation latency well under a millisecond
// of host time while keeping the fast path branch-free between polls.
const abortPollCycles = 2048

// Run simulates until n correct-path instructions have committed (or a
// safety cycle bound is hit) and returns the stats.
func (m *Machine) Run(n uint64) *Stats {
	st, err := m.RunContext(context.Background(), n)
	if err != nil {
		//lint:allow panic Run is the panicking convenience wrapper; serving paths use RunContext
		panic(err.Error())
	}
	return st
}

// RunContext is Run with a cycle-budget abort hook: every abortPollCycles
// simulated cycles it polls ctx and, when the context is done, stops and
// returns the stats so far alongside ctx.Err(). A wedged machine returns
// ErrWedged instead of panicking, so servers can survive bad configs.
func (m *Machine) RunContext(ctx context.Context, n uint64) (*Stats, error) {
	target := m.Stats.Committed + n
	limit := m.now + n*100 + 1_000_000 // safety net: IPC 0.01 floor
	nextPoll := m.now + abortPollCycles
	for m.Stats.Committed < target && m.now < limit {
		m.Cycle()
		if m.now >= nextPoll {
			nextPoll = m.now + abortPollCycles
			if err := ctx.Err(); err != nil {
				return &m.Stats, err
			}
		}
	}
	if m.Stats.Committed < target {
		return &m.Stats, ErrWedged
	}
	return &m.Stats, nil
}

// Cycle advances the machine one clock.
//
// Resolutions (flushes) are applied before commit: a mispredicted branch
// must trigger its pipeline flush no later than its own retirement, or the
// front-end would be stranded on the wrong path with nothing left in
// flight to resteer it.
func (m *Machine) Cycle() {
	now := m.now
	m.hier.SetClock(now)
	if m.probe != nil {
		m.probeSample(now)
	}
	m.handleResolutions(now)
	m.be.Commit(now)
	m.retire()
	m.be.Cycle(now)
	m.rename(now)
	m.decode(now)
	m.fetch(now)
	if m.dcf != nil {
		m.dcf.Cycle(now)
		if m.elf.Variant.Elastic() {
			m.resyncStep(now)
		}
	}
	m.prefetchStep(now)
	m.watchdog(now)
	m.Stats.Cycles++
	m.now++
}

// watchdog forces a recovery when the machine is provably stuck: nothing in
// the back end, nothing in the front end, no cache access or redirect
// pending, and the state has not moved for far longer than the largest
// architected latency. The recovery is exactly what a flush would do —
// restart both engines at the oldest uncommitted instruction — so measured
// results stay architecturally exact; the occurrence count is reported.
func (m *Machine) watchdog(now uint64) {
	busy := !m.be.ROBEmpty() || m.renameQ.Len() > 0 || m.inFlight.Len() > 0 ||
		m.fetchBusyUntil > now || m.redirectAt > now ||
		m.be.OldestResolution() != nil
	if busy {
		m.idleCycles = 0
	} else {
		m.idleCycles++
	}

	// A halted fetch with a completely empty machine can only be rescued
	// by an in-flight resteer — which does not exist: recover immediately
	// (cost comparable to a misfetch). Other idle shapes get a long grace
	// period (a cold I-cache miss keeps the machine legitimately empty
	// for up to the memory latency).
	fire := m.idleCycles >= 600 || (m.fetchHalted && m.idleCycles >= 4)
	if !fire && m.onWrongPath && m.quietCycles >= 256 && m.quietCycles%64 == 0 {
		// Perpetual wrong path: no commits for a long time, and no
		// correct-path instruction anywhere that could anchor a flush.
		if !m.be.HasCorrectPathWork() && !m.hasCorrectPathFrontendWork() {
			fire = true
		}
	}
	if !fire {
		return
	}
	m.idleCycles = 0
	m.quietCycles = 0
	if m.Debug {
		println("cyc", now, "WATCHDOG fire; wrongPath", m.onWrongPath, "halted", m.fetchHalted, "stalled", m.coupledStalled, "mode coupled:", m.inCoupledMode(), "fetchSeq", m.fetchSeq, "fetchPC", uint64(m.fetchPC))
	}
	m.Stats.WatchdogRecoveries++
	seq := uint64(0)
	if m.haveRetired {
		seq = m.lastRetired + 1
	}
	pc := m.stream.Get(seq).PC
	m.squashFrontendAll()
	if m.dcf != nil {
		m.faq.Clear()
		m.dcf.Resteer(pc, m.retHist, nil)
		m.rasDCF.CopyFrom(m.archRAS)
		m.enterCoupledAt()
		if m.elf.Pred.RAS != nil {
			m.elf.Pred.RAS.CopyFrom(m.archRAS)
		}
	} else {
		m.specHist = m.retHist
		m.rasDCF.CopyFrom(m.archRAS)
	}
	m.resteerFetchTo(seq, pc, now+1)
}

// hasCorrectPathFrontendWork reports a bound (non-wrong-path) uop in the
// front-end queues.
func (m *Machine) hasCorrectPathFrontendWork() bool {
	for i := 0; i < m.renameQ.Len(); i++ {
		if !m.renameQ.At(i).WrongPath {
			return true
		}
	}
	for gi := 0; gi < m.inFlight.Len(); gi++ {
		g := m.inFlight.At(gi)
		if g.canceled {
			continue
		}
		for i := range g.uops {
			if !g.uops[i].WrongPath {
				return true
			}
		}
	}
	return false
}

// rename moves decoded uops into the back-end, up to RenameWidth.
func (m *Machine) rename(now uint64) {
	w := m.cfg.Backend.RenameWidth
	n := 0
	for n < w && m.renameQ.Len() > 0 {
		u := *m.renameQ.Front()
		if u.Coupled && u.FetchID <= m.ckptWatermark {
			u.CkptBound = true
		}
		if !m.be.Accept(u) {
			break
		}
		if m.tracer != nil {
			m.tracer.renamed(u.FetchID, now)
		}
		m.renameQ.PopFront()
		n++
	}
}

// newUop materialises the instruction at pc, binding it to the oracle when
// on the correct path.
func (m *Machine) newUop(pc isa.Addr) uop.Uop {
	m.fetchID++
	u := uop.Uop{FetchID: m.fetchID, PC: pc, CoupledIdx: -1}

	if !m.onWrongPath {
		d := m.stream.Get(m.fetchSeq)
		if d.PC == pc {
			u.Seq = d.Seq
			u.SI = d.SI
			u.ActTaken = d.Taken
			u.ActTarget = d.NextPC
			u.MemAddr = d.MemAddr
			m.fetchSeq++
			m.Stats.FetchedUops++
			if m.tracer != nil {
				m.tracer.fetched(&u, m.now)
			}
			return u
		}
		if m.Debug {
			println("cyc", m.now, "WRONGPATH start pc", uint64(pc), "oracle seq", m.fetchSeq, "oraclePC", uint64(d.PC))
		}
		m.onWrongPath = true
	}

	u.WrongPath = true
	si := m.prog.At(pc)
	if si == nil {
		si = &m.nopStatic
	}
	u.SI = si
	if si.Class.IsMemory() {
		u.MemAddr = m.synth.MemAddr(si)
	}
	m.Stats.FetchedUops++
	m.Stats.WrongPathFetched++
	if m.tracer != nil {
		m.tracer.fetched(&u, m.now)
	}
	return u
}

// resteerFetchTo repoints the oracle binding and the coupled fetch PC.
func (m *Machine) resteerFetchTo(seq uint64, pc isa.Addr, at uint64) {
	if m.Debug {
		println("cyc", m.now, "RESTEER-BIND seq", seq, "pc", uint64(pc))
	}
	m.fetchSeq = seq
	m.onWrongPath = false
	m.fetchPC = pc
	m.redirectAt = at
	m.fetchHalted = false
	m.coupledStalled = false
	m.switchPending = false
	m.fetchBusyUntil = 0
	m.faqOffset = 0
	m.headProcessed = false
	m.headRecorded = false
}

// squashUndecodedGroups drops in-flight fetch groups that have not passed
// decode yet (decode-time resteers: everything younger than the resteering
// instruction is fetched-but-undecoded), rolling back their coupled-count
// contributions.
func (m *Machine) squashUndecodedGroups() {
	for gi := 0; gi < m.inFlight.Len(); gi++ {
		g := m.inFlight.At(gi)
		if g.canceled {
			continue
		}
		for i := range g.uops {
			if g.uops[i].Coupled {
				m.elf.OnCoupledSquash(1)
			}
		}
		g.canceled = true
	}
	m.inFlight.Clear()
}

// squashFrontendAll additionally drops decoded-but-not-renamed uops (full
// pipeline flushes; the ELF period restarts via EnterCoupled, so no count
// rollback is needed for renameQ entries).
func (m *Machine) squashFrontendAll() {
	m.squashUndecodedGroups()
	m.renameQ.Clear()
}

// ResetStats zeroes the measurement counters after warmup so reported
// numbers cover only the measured region (SimPoint-style methodology).
// Microarchitectural state (caches, predictors, BTB) is preserved.
func (m *Machine) ResetStats() {
	m.Stats = Stats{}
	m.btbH.Stats = btb.Stats{}
	m.faq.ResetHighWater()
	for _, c := range []*cache.Cache{m.hier.L0I, m.hier.L1I, m.hier.L1D, m.hier.L2, m.hier.L3} {
		c.Accesses, c.Misses = 0, 0
	}
	m.elf.Periods = 0
	m.elf.CoupledInstsTotal = 0
	m.elf.PeriodHist = [12]uint64{}
	m.elf.Divergences = [4]uint64{}
	m.elf.ResyncSwitches = 0
	m.elf.ResyncPops = 0
	m.be.Committed = 0
	m.be.WrongPathExec = 0
	m.be.LoadViolations = 0
}
