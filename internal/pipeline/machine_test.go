package pipeline

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/uop"
	"elfetch/internal/workload"
)

// tinyLoop: a predictable inner loop with a call — the smallest program
// that exercises fetch, decode, BTB establishment, RAS, and commit.
func tinyLoop(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder(0x10000)
	m := b.Func("main")
	loop := m.Block("loop")
	loop.Nop(6)
	loop.CallTo("leaf")
	loop.CondTo(program.Loop{Trip: 16}, "loop")
	m.Block("wrap").JumpTo("loop")
	lf := b.Func("leaf")
	lf.Block("e").Nop(3).Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// allConfigs returns every front-end organisation under test.
func allConfigs() map[string]Config {
	base := DefaultConfig()
	cfgs := map[string]Config{
		"NoDCF": base.NoDCF(),
		"DCF":   base,
	}
	for _, v := range core.Variants() {
		cfgs[v.String()] = base.WithVariant(v)
	}
	return cfgs
}

func TestAllConfigsRunTinyLoop(t *testing.T) {
	for name, cfg := range allConfigs() {
		name, cfg := name, cfg
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m := MustNew(cfg, tinyLoop(t))
			st := m.Run(50_000)
			if st.Committed < 50_000 {
				t.Fatalf("committed %d", st.Committed)
			}
			if ipc := st.IPC(); ipc < 0.5 || ipc > float64(cfg.FetchWidth) {
				t.Errorf("IPC = %v — out of plausible range", ipc)
			}
			// A fully predictable loop: near-zero MPKI after warmup.
			if mpki := st.BranchMPKI(); mpki > 3 {
				t.Errorf("MPKI = %v on a predictable loop", mpki)
			}
		})
	}
}

func TestCommittedStreamMatchesOracle(t *testing.T) {
	// The committed instruction count per branch class must be identical
	// across all organisations: front-ends change timing, never
	// architecture.
	type sig struct {
		cond, ind, ret, taken uint64
	}
	var want sig
	first := true
	for name, cfg := range allConfigs() {
		m := MustNew(cfg, tinyLoop(t))
		st := m.Run(30_000)
		got := sig{st.CondBranches, st.IndBranches, st.Returns, st.TakenBranches}
		if first {
			want = got
			first = false
			continue
		}
		if got != want {
			t.Errorf("%s: committed mix %+v differs from %+v", name, got, want)
		}
	}
}

func TestChaoticBranchCausesFlushes(t *testing.T) {
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(4)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 1}, "other")
	loop.Nop(2)
	loop.JumpTo("loop")
	other := f.Block("other")
	other.Nop(2)
	other.JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range allConfigs() {
		m := MustNew(cfg, p)
		st := m.Run(30_000)
		if st.Flushes[uop.FlushBranch] == 0 {
			t.Errorf("%s: no branch flushes on a coin-flip branch", name)
		}
		if st.BranchMPKI() < 20 {
			t.Errorf("%s: MPKI = %v, expected high", name, st.BranchMPKI())
		}
		if st.WrongPathFetched == 0 {
			t.Errorf("%s: no wrong-path fetches despite mispredictions", name)
		}
	}
}

func TestELFEntersAndLeavesCoupledMode(t *testing.T) {
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(6)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 2}, "alt")
	loop.Nop(4)
	loop.JumpTo("loop")
	alt := f.Block("alt")
	alt.Nop(4)
	alt.JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range core.Variants() {
		m := MustNew(DefaultConfig().WithVariant(v), p)
		st := m.Run(50_000)
		elf := m.ELF()
		if elf.Periods == 0 {
			t.Errorf("%v: no completed coupled periods despite %d flushes",
				v, st.Flushes[uop.FlushBranch])
		}
		if st.CoupledFetched == 0 {
			t.Errorf("%v: nothing fetched in coupled mode", v)
		}
		if avg := elf.AvgCoupledInsts(); avg <= 0 || avg > 1000 {
			t.Errorf("%v: avg coupled insts per period = %v", v, avg)
		}
	}
}

func TestDCFPaysFlushDepthVsELF(t *testing.T) {
	// On a flush-heavy, otherwise-simple workload, every ELF variant must
	// beat (or at least match) plain DCF, and NoDCF should too — the
	// Figure 6/7 mechanism.
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(8)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 3}, "alt")
	loop.Nop(6)
	loop.JumpTo("loop")
	f.Block("alt").Nop(6).JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	run := func(cfg Config) float64 {
		m := MustNew(cfg, p)
		return m.Run(80_000).IPC()
	}
	base := DefaultConfig()
	dcf := run(base)
	nodcf := run(base.NoDCF())
	lelf := run(base.WithVariant(core.LELF))
	uelf := run(base.WithVariant(core.UELF))

	// NoDCF trades flush depth against taken-branch bubbles; on this
	// kernel it should at least be competitive (the paper's Figure 6
	// shows it winning only in select cases).
	if nodcf < dcf*0.9 {
		t.Errorf("NoDCF (%v) should be within 10%% of DCF (%v) here", nodcf, dcf)
	}
	if lelf <= dcf*0.99 {
		t.Errorf("L-ELF (%v) should beat DCF (%v)", lelf, dcf)
	}
	if uelf <= dcf*0.99 {
		t.Errorf("U-ELF (%v) should beat DCF (%v)", uelf, dcf)
	}
}

func TestDCFPrefetchWinsOnHugeFootprint(t *testing.T) {
	// A server1-style instruction footprint: DCF's FAQ prefetching should
	// clearly beat NoDCF (the +40% of Figure 6).
	e, err := workload.Lookup("server1_subtest_1")
	if err != nil {
		t.Fatal(err)
	}
	p := e.Program()
	base := DefaultConfig()
	dcf := MustNew(base, p).Run(120_000).IPC()
	nodcf := MustNew(base.NoDCF(), p).Run(120_000).IPC()
	if dcf <= nodcf {
		t.Errorf("DCF (%v) should beat NoDCF (%v) on a huge I-footprint", dcf, nodcf)
	}
}

func TestRegisteredWorkloadsRunOnUELF(t *testing.T) {
	// Smoke: a representative slice of the registry runs to completion on
	// the most complex configuration.
	names := []string{"641.leela_s", "620.omnetpp_s", "433.milc", "server2_subtest_2"}
	for _, n := range names {
		n := n
		t.Run(n, func(t *testing.T) {
			t.Parallel()
			e, err := workload.Lookup(n)
			if err != nil {
				t.Fatal(err)
			}
			m := MustNew(DefaultConfig().WithVariant(core.UELF), e.Program())
			st := m.Run(60_000)
			if st.IPC() <= 0 {
				t.Fatal("zero IPC")
			}
		})
	}
}

func TestMemOrderViolationsFlushPipeline(t *testing.T) {
	// Store->load aliasing through a fixed slot with the store's data
	// dependent on a slow op: classic RAW-violation material.
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	slot := program.FixedSlot{Addr: program.DataBase + 64}
	loop.MulDiv(5, 6, 7)
	loop.Store(5, isa.RegZero, slot)
	loop.Load(1, isa.RegZero, slot)
	loop.Nop(4)
	loop.JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(DefaultConfig(), p)
	st := m.Run(30_000)
	if st.Flushes[uop.FlushMemOrder] == 0 {
		t.Error("no memory-order flushes on an aliasing store→load kernel")
	}
	// The filter must eventually control them.
	perKilo := float64(st.Flushes[uop.FlushMemOrder]) / float64(st.Committed) * 1000
	if perKilo > 100 {
		t.Errorf("RAW flush rate %v/kilo-inst — filter not learning", perKilo)
	}
}

func TestBTBMissesRecoverAtDecode(t *testing.T) {
	// A jump-chain program too big for the BTB exercises SeqMiss blocks
	// and decode resteers.
	e, err := workload.Lookup("server1_subtest_1")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(DefaultConfig(), e.Program())
	st := m.Run(80_000)
	if st.DecodeResteers == 0 {
		t.Error("no decode resteers on a BTB-thrashing workload")
	}
	if m.BTBStats().Misses == 0 {
		t.Error("no BTB misses on a huge footprint")
	}
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.Front = FrontNoDCF
	bad.Variant = core.UELF
	if _, err := New(bad, tinyLoop(t)); err == nil {
		t.Error("NoDCF+ELF accepted")
	}
	bad2 := DefaultConfig()
	bad2.FetchWidth = 0
	if _, err := New(bad2, tinyLoop(t)); err == nil {
		t.Error("zero fetch width accepted")
	}
}

func TestDeterministicRuns(t *testing.T) {
	p := tinyLoop(t)
	cfg := DefaultConfig().WithVariant(core.UELF)
	a := MustNew(cfg, p).Run(40_000)
	b := MustNew(cfg, p).Run(40_000)
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.CondMispredict != b.CondMispredict {
		t.Errorf("non-deterministic: %+v vs %+v", a, b)
	}
}
