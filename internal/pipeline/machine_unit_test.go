package pipeline

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/program"
	"elfetch/internal/uop"
)

// straightLine builds a long nop run closed by a jump back — maximally
// boring control flow for mechanics tests.
func straightLine(t testing.TB, nops int) *program.Program {
	t.Helper()
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	f.Block("loop").Nop(nops).JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOracleBindingStaysOnCorrectPath(t *testing.T) {
	// Straight-line code never diverges: no wrong-path fetches at all
	// once the BTB knows the loop (the only wrong path is the cold-start
	// sequential overshoot past the jump).
	m := MustNew(DefaultConfig(), straightLine(t, 62))
	st := m.Run(100_000)
	frac := float64(st.WrongPathFetched) / float64(st.FetchedUops)
	if frac > 0.05 {
		t.Errorf("wrong-path fraction %.2f on straight-line code", frac)
	}
}

func TestFetchGroupsRespectWidth(t *testing.T) {
	m := MustNew(DefaultConfig(), straightLine(t, 62))
	st := m.Run(50_000)
	// Max useful IPC = commit width bound by fetch width = 8.
	if st.IPC() > float64(m.cfg.FetchWidth) {
		t.Errorf("IPC %.2f exceeds fetch width", st.IPC())
	}
	// Pure-ALU code is execution-port limited: 4 ALU ports bound IPC at
	// ~4; anything well below that means fetch is not streaming.
	if st.IPC() < 3.5 {
		t.Errorf("IPC %.2f — fetch not streaming on trivial code", st.IPC())
	}
}

func TestCrossTakenBranchFetch(t *testing.T) {
	// Tiny 2-inst blocks linked by jumps: with interleave-crossing fetch,
	// one cycle can span two blocks when the lines alternate banks;
	// disabling the feature must not *increase* IPC.
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	for i := 0; i < 8; i++ {
		blk := f.Block(blkName(i))
		blk.Nop(13) // block ends near a line boundary
		blk.JumpTo(blkName((i + 1) % 8))
	}
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	on := DefaultConfig()
	off := on
	off.InterleaveFetch = false
	ipcOn := MustNew(on, p).Run(60_000).IPC()
	ipcOff := MustNew(off, p).Run(60_000).IPC()
	if ipcOff > ipcOn*1.01 {
		t.Errorf("disabling interleave fetch improved IPC: %.3f vs %.3f", ipcOff, ipcOn)
	}
}

func blkName(i int) string {
	return string(rune('a'+i)) + "blk"
}

func TestWatchdogUnitFiresOnHaltedEmpty(t *testing.T) {
	m := MustNew(DefaultConfig(), straightLine(t, 10))
	m.Run(5_000)
	// Force the stranded state by hand: halt fetch, then drain what is
	// already in flight.
	m.fetchHalted = true
	m.onWrongPath = true
	for i := 0; i < 5_000 && (!m.be.ROBEmpty() || m.renameQ.Len() > 0 || m.inFlight.Len() > 0); i++ {
		m.Cycle()
	}
	if !m.be.ROBEmpty() {
		t.Fatal("setup: machine did not drain")
	}
	m.fetchHalted = true // the drain's watchdog may already have cleared it
	m.onWrongPath = true
	before := m.Stats.WatchdogRecoveries
	for i := 0; i < 50 && m.Stats.WatchdogRecoveries == before; i++ {
		m.Cycle()
	}
	if m.Stats.WatchdogRecoveries != before+1 {
		t.Fatalf("watchdog did not fire on a halted empty machine")
	}
	if m.fetchHalted || m.onWrongPath {
		t.Error("watchdog recovery did not repair the front-end state")
	}
	// And the machine keeps committing afterwards.
	c := m.Stats.Committed
	m.Run(1_000)
	if m.Stats.Committed <= c {
		t.Error("no progress after watchdog recovery")
	}
}

func TestDecodeOvershootDiscard(t *testing.T) {
	// NoDCF fetches blindly past taken branches; the overshoot is
	// discarded at decode, never renamed: committed classes still match
	// the oracle (covered elsewhere), and the wrong-path fraction on a
	// taken-branch-dense loop stays bounded by the overshoot per
	// redirect.
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	f.Block("a").Nop(3).JumpTo("b")
	f.Block("b").Nop(3).JumpTo("a")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	m := MustNew(DefaultConfig().NoDCF(), p)
	st := m.Run(40_000)
	// Per 4-inst block the fetcher overshoots ≤ fetch-width extra.
	frac := float64(st.WrongPathFetched) / float64(st.FetchedUops)
	if frac > 0.70 {
		t.Errorf("overshoot fraction %.2f — discard not working", frac)
	}
	if st.Flushes[uop.FlushBranch] > 10 {
		t.Errorf("%d branch flushes on fully-predictable jumps", st.Flushes[uop.FlushBranch])
	}
}

func TestPendingPrefetchAccounting(t *testing.T) {
	e := mustWorkloadMachine(t, DefaultConfig(), "server1_subtest_1")
	e.Run(150_000)
	if e.Stats.PrefetchIssued == 0 {
		t.Fatal("no prefetches on the server workload")
	}
	if len(e.pendingPF) > e.cfg.MaxPrefetch {
		t.Fatalf("pending prefetches %d exceed the Table II bound %d",
			len(e.pendingPF), e.cfg.MaxPrefetch)
	}
}

func TestResetStatsPreservesMicroarchState(t *testing.T) {
	m := mustWorkloadMachine(t, DefaultConfig(), "641.leela_s")
	m.Run(100_000)
	warmMPKI := m.Stats.BranchMPKI()
	m.ResetStats()
	if m.Stats.Committed != 0 || m.Stats.Cycles != 0 {
		t.Fatal("counters not reset")
	}
	st := m.Run(100_000)
	// Trained predictors: post-reset MPKI should not be dramatically
	// worse than the warmup's (state preserved).
	if st.BranchMPKI() > warmMPKI*1.5 {
		t.Errorf("post-reset MPKI %.1f vs warmup %.1f — state lost?", st.BranchMPKI(), warmMPKI)
	}
}

func TestRunIsResumable(t *testing.T) {
	p := straightLine(t, 30)
	a := MustNew(DefaultConfig().WithVariant(core.UELF), p)
	a.Run(10_000)
	a.Run(10_000)
	b := MustNew(DefaultConfig().WithVariant(core.UELF), p)
	b.Run(20_000)
	if a.Stats.Committed != b.Stats.Committed || a.Stats.Cycles != b.Stats.Cycles {
		t.Errorf("split run diverged: %d/%d vs %d/%d cycles",
			a.Stats.Committed, a.Stats.Cycles, b.Stats.Committed, b.Stats.Cycles)
	}
}

func TestMSHRPressureVisibleOnMemoryBoundWorkload(t *testing.T) {
	m := mustWorkloadMachine(t, DefaultConfig(), "605.mcf_s")
	m.Run(100_000)
	if m.Hierarchy().DMSHRQueued == 0 {
		t.Error("no MSHR queuing on a memory-bound pointer chase")
	}
}
