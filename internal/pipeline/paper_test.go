package pipeline

import (
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/program"
	"elfetch/internal/uop"
	"elfetch/internal/workload"
)

// TestFigure3MispredictPenalty checks the paper's Figure 3 claim: the DCF
// pays BPredToFetch extra cycles on every branch misprediction relative to
// a coupled restart, and ELF hides (most of) that difference.
//
// The kernel is all-sequential except one coin-flip branch whose both
// arms rejoin immediately, so per-flush costs dominate the cycle deltas.
func TestFigure3MispredictPenalty(t *testing.T) {
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(10)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 99}, "alt")
	loop.Nop(8)
	loop.JumpTo("loop")
	f.Block("alt").Nop(8).JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}

	run := func(cfg Config) *Stats {
		m := MustNew(cfg, p)
		m.Run(100_000)
		m.ResetStats()
		return m.Run(400_000)
	}
	base := DefaultConfig()
	dcf := run(base)
	uelf := run(base.WithVariant(core.UELF))

	flushes := float64(dcf.Flushes[uop.FlushBranch])
	if flushes < 1000 {
		t.Fatalf("kernel produced too few flushes: %v", flushes)
	}
	// Cycles saved per flush by ELF's coupled restart: positive, and not
	// more than the full front-depth plus taken-bubble effects.
	perFlush := (float64(dcf.Cycles) - float64(uelf.Cycles)) / flushes
	if perFlush <= 0 {
		t.Errorf("ELF saved %.2f cycles/flush — expected a positive saving", perFlush)
	}
	if perFlush > 8 {
		t.Errorf("ELF saved %.2f cycles/flush — exceeds the %d-cycle depth it can hide",
			perFlush, base.BPredToFetch)
	}
}

// TestCoupledPeriodInstrumentation checks the Figure 8 secondary metric is
// produced and plausible: the average coupled instructions per period is
// positive and bounded by the tracking capacity regime.
func TestCoupledPeriodInstrumentation(t *testing.T) {
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(8)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 7}, "alt")
	loop.Nop(4)
	loop.JumpTo("loop")
	f.Block("alt").Nop(4).JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range core.Variants() {
		m := MustNew(DefaultConfig().WithVariant(v), p)
		m.Run(150_000)
		elf := m.ELF()
		if elf.Periods == 0 {
			t.Errorf("%v: no coupled periods", v)
			continue
		}
		avg := elf.AvgCoupledInsts()
		if avg <= 0 || avg > 3*core.TrackCap {
			t.Errorf("%v: avg coupled insts/period = %v", v, avg)
		}
	}
}

// TestWatchdogRateNegligible bounds the residual recovery-interaction rate:
// forced restarts must stay far below one per thousand committed
// instructions on a hostile workload mix.
func TestWatchdogRateNegligible(t *testing.T) {
	names := []string{"641.leela_s", "620.omnetpp_s", "server1_subtest_1", "401.bzip2"}
	for _, v := range []core.Variant{core.LELF, core.UELF, core.CONDELF} {
		for _, n := range names {
			m := mustWorkloadMachine(t, DefaultConfig().WithVariant(v), n)
			st := m.Run(150_000)
			rate := float64(st.WatchdogRecoveries) / float64(st.Committed) * 1000
			if rate > 1.0 {
				t.Errorf("%v/%s: %.2f watchdog recoveries per kilo-inst (%d total)",
					v, n, rate, st.WatchdogRecoveries)
			}
		}
	}
}

// TestCheckpointPolicyOrdering: waiting at the ROB head can never be faster
// than late binding (it strictly delays flushes).
func TestCheckpointPolicyOrdering(t *testing.T) {
	cfgLate := DefaultConfig().WithVariant(core.UELF)
	cfgWait := cfgLate
	cfgWait.Ckpt = CkptROBHeadWait

	late := mustWorkloadMachine(t, cfgLate, "641.leela_s").Run(200_000)
	wait := mustWorkloadMachine(t, cfgWait, "641.leela_s").Run(200_000)
	if wait.CkptDeferredCycles < late.CkptDeferredCycles {
		t.Errorf("ROB-head-wait deferred %d < late-bind %d",
			wait.CkptDeferredCycles, late.CkptDeferredCycles)
	}
	// IPC ordering holds within noise.
	if wait.IPC() > late.IPC()*1.02 {
		t.Errorf("ROB-head-wait IPC %.3f clearly beats late-bind %.3f", wait.IPC(), late.IPC())
	}
}

// TestPrefetchAblation: disabling FAQ prefetch must hurt a huge-I-footprint
// workload and leave a cache-resident one untouched.
func TestPrefetchAblation(t *testing.T) {
	on := DefaultConfig()
	off := on
	off.FAQPrefetch = false

	srvOn := mustWorkloadMachine(t, on, "server1_subtest_1").Run(200_000)
	srvOff := mustWorkloadMachine(t, off, "server1_subtest_1").Run(200_000)
	if srvOn.IPC() <= srvOff.IPC() {
		t.Errorf("prefetch off faster on server1: %.3f vs %.3f", srvOff.IPC(), srvOn.IPC())
	}

	smallOn := mustWorkloadMachine(t, on, "648.exchange2_s").Run(150_000)
	smallOff := mustWorkloadMachine(t, off, "648.exchange2_s").Run(150_000)
	ratio := smallOn.IPC() / smallOff.IPC()
	if ratio < 0.97 || ratio > 1.03 {
		t.Errorf("prefetch changed a cache-resident workload by %.1f%%", 100*(ratio-1))
	}
}

func mustWorkloadMachine(t *testing.T, cfg Config, name string) *Machine {
	t.Helper()
	m, err := newWorkloadMachine(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func newWorkloadMachine(cfg Config, name string) (*Machine, error) {
	e, err := workload.Lookup(name)
	if err != nil {
		return nil, err
	}
	return New(cfg, e.Program())
}
