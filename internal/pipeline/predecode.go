package pipeline

import (
	"elfetch/internal/btb"
	"elfetch/internal/isa"
)

// predecoder implements frontend.Predecoder: Boomerang-lite BTB-miss
// resolution. A miss is resolvable when the instruction bytes of the fetch
// region are already resident in the L0/L1 instruction cache — their
// predecode bits (branch positions, types, direct targets) then rebuild the
// BTB entry without waiting for the retire-time builder.
//
// Unlike retire-time establishment, predecode cannot know which
// conditionals were "observed taken before" (Section III-A): it
// conservatively gives the first MaxBranches branches of any kind a slot,
// which the direction predictor then resolves as usual — exactly
// Boomerang's behaviour of inserting decoded branches and letting
// prediction sort out direction.
type predecoder struct {
	m *Machine
}

func (p *predecoder) Predecode(pc isa.Addr) (btb.Entry, bool) {
	m := p.m
	// The whole region's bytes must be cache-resident (no memory access
	// on the BP1 path).
	lineBytes := m.hier.L0I.LineBytes()
	for off := 0; off < btb.MaxInsts; off += lineBytes / isa.InstBytes {
		line := pc.Plus(off).Line(lineBytes)
		if !m.hier.L0I.Probe(line) && !m.hier.L1I.Probe(line) {
			return btb.Entry{}, false
		}
	}

	e := btb.Entry{Start: pc}
	for i := 0; i < btb.MaxInsts; i++ {
		si := m.prog.At(pc.Plus(i))
		if si == nil {
			break
		}
		if si.Class.IsBranch() {
			if e.NumBranches == btb.MaxBranches {
				// A third branch would need a slot: the entry
				// ends before it (the split rule).
				break
			}
			var tgt isa.Addr
			if si.Class.IsDirect() {
				tgt = si.Target
			}
			e.Branches[e.NumBranches] = btb.Branch{
				Offset: uint8(i),
				Class:  si.Class,
				Target: tgt,
			}
			e.NumBranches++
			if si.Class.IsUnconditional() {
				e.Count = uint8(i + 1)
				e.Term = btb.TermUncond
				return e, true
			}
		}
		e.Count = uint8(i + 1)
	}
	if e.Count == 0 {
		return btb.Entry{}, false
	}
	e.Term = btb.TermFallthrough
	return e, true
}
