package pipeline

// Observer receives one sample of a distribution. *obs.Histogram
// satisfies it; the pipeline depends only on this interface so the hot
// loop stays free of the metrics layer.
type Observer interface {
	Observe(v float64)
}

// Probe is the machine's sampled-distribution hook: the cycle-level
// distributions the paper's Sections IV-B/IV-C argue from (flush-recovery
// latency, FAQ occupancy, coupled-mode residency, resynchronization drain
// time), delivered to pluggable Observers instead of scalar counters.
//
// A nil *Probe (the default) costs one predictable nil-check per event
// site; a non-nil Probe with nil fields skips the corresponding
// distributions. Observers must be safe for use from the single simulation
// goroutine; obs.Histogram additionally allows many machines to share one
// Probe concurrently (every update is atomic).
type Probe struct {
	// FlushRecovery observes, per pipeline flush, the cycles between the
	// flush being applied and the next instruction committing — the
	// "refill the window" latency ELF exists to hide.
	FlushRecovery Observer

	// FAQOccupancy observes the fetch address queue's depth in blocks,
	// sampled every SampleEvery cycles (DCF fronts only).
	FAQOccupancy Observer

	// CoupledResidency observes, per ELF coupled period, the cycles from
	// entering coupled mode to the switch back to decoupled fetch.
	CoupledResidency Observer

	// ResyncDrain observes, per resynchronization, the cycles between the
	// Figure 5 algorithm declaring the FAQ caught up (ResyncPrepare) and
	// the mode switch actually firing once decode drains.
	ResyncDrain Observer

	// SampleEvery is the FAQOccupancy sampling period in cycles (0 = 64).
	SampleEvery uint64
}

// sampleEvery resolves the FAQ sampling period.
func (p *Probe) sampleEvery() uint64 {
	if p.SampleEvery == 0 {
		return 64
	}
	return p.SampleEvery
}

// AttachProbe enables distribution sampling on the machine. Attach after
// warmup (alongside ResetStats) so distributions cover the measured
// region only; pass nil to detach.
func (m *Machine) AttachProbe(p *Probe) {
	m.probe = p
	m.flushArmed, m.drainArmed = false, false
	m.coupledEnterAt = m.now
	if p != nil {
		m.nextFAQSample = m.now
	}
}

// probeSample runs once per cycle when a probe is attached (called from
// Cycle behind the nil check, so an unprobed machine pays one branch; the
// guard here keeps the function correct on its own).
func (m *Machine) probeSample(now uint64) {
	p := m.probe
	if p == nil {
		return
	}
	if p.FAQOccupancy != nil && m.dcf != nil && now >= m.nextFAQSample {
		m.nextFAQSample = now + p.sampleEvery()
		p.FAQOccupancy.Observe(float64(m.faq.Len()))
	}
}

// probeFlush arms the flush-recovery timer (called when a flush applies).
func (m *Machine) probeFlush(now uint64) {
	if m.probe != nil && m.probe.FlushRecovery != nil {
		m.flushAt, m.flushArmed = now, true
	}
}

// probeCommit closes the flush-recovery interval at the first commit
// after a flush. flushArmed is only ever set by probeFlush with the
// FlushRecovery observer present (and AttachProbe disarms it), but the
// guard restates that locally so the site is safe by inspection.
func (m *Machine) probeCommit(now uint64) {
	if m.flushArmed {
		m.flushArmed = false
		if p := m.probe; p != nil && p.FlushRecovery != nil {
			p.FlushRecovery.Observe(float64(now - m.flushAt))
		}
	}
}

// probeEnterCoupled stamps the coupled period's start.
func (m *Machine) probeEnterCoupled(now uint64) {
	m.coupledEnterAt = now
	m.drainArmed = false
}

// probeSwitchPrepare stamps the drain start (ResyncPrepare fired).
func (m *Machine) probeSwitchPrepare(now uint64) {
	if m.probe != nil && m.probe.ResyncDrain != nil && !m.drainArmed {
		m.drainStartAt, m.drainArmed = now, true
	}
}

// probeSwitchDecoupled closes the coupled-residency (and, when armed, the
// drain) intervals as the machine resumes decoupled fetch.
func (m *Machine) probeSwitchDecoupled(now uint64) {
	p := m.probe
	if p == nil {
		return
	}
	if p.CoupledResidency != nil {
		p.CoupledResidency.Observe(float64(now - m.coupledEnterAt))
	}
	if m.drainArmed {
		m.drainArmed = false
		if p.ResyncDrain != nil {
			p.ResyncDrain.Observe(float64(now - m.drainStartAt))
		}
	}
}
