package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"elfetch/internal/core"
	"elfetch/internal/program"
)

// collector is a minimal Observer: it records every sample.
type collector struct {
	samples []float64
}

func (c *collector) Observe(v float64) { c.samples = append(c.samples, v) }

// branchyProgram: a coin-flip branch keeps the mispredict (and therefore
// flush) rate high enough for probe distributions to fill quickly.
func branchyProgram(t testing.TB) *program.Program {
	t.Helper()
	b := program.NewBuilder(0x10000)
	f := b.Func("main")
	loop := f.Block("loop")
	loop.Nop(4)
	loop.CondTo(program.Bernoulli{P: 0.5, Salt: 7}, "other")
	loop.Nop(2)
	loop.JumpTo("loop")
	other := f.Block("other")
	other.Nop(2)
	other.JumpTo("loop")
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProbeObservesDistributions(t *testing.T) {
	m := MustNew(DefaultConfig().WithVariant(core.UELF), branchyProgram(t))
	m.Run(5_000) // warm up unprobed: AttachProbe after warmup is the contract
	flush := &collector{}
	occ := &collector{}
	res := &collector{}
	drain := &collector{}
	m.AttachProbe(&Probe{
		FlushRecovery:    flush,
		FAQOccupancy:     occ,
		CoupledResidency: res,
		ResyncDrain:      drain,
		SampleEvery:      16,
	})
	st := m.Run(50_000)

	if st.Flushes[0]+st.Flushes[1]+st.Flushes[2]+st.Flushes[3] == 0 {
		t.Fatal("test program produced no flushes; probe cannot be exercised")
	}
	if len(flush.samples) == 0 {
		t.Error("no flush-recovery samples")
	}
	for _, v := range flush.samples {
		if v < 0 || v > 5_000_000 {
			t.Fatalf("implausible flush-recovery latency %v", v)
		}
	}
	if len(occ.samples) == 0 {
		t.Error("no FAQ occupancy samples")
	}
	cap := float64(DefaultConfig().FAQSize)
	for _, v := range occ.samples {
		if v < 0 || v > cap {
			t.Fatalf("FAQ occupancy %v out of [0, %v]", v, cap)
		}
	}
	if m.ELF().ResyncSwitches > 0 && len(res.samples) == 0 {
		t.Error("resync switches happened but no coupled-residency samples")
	}
	for _, v := range res.samples {
		if v < 0 {
			t.Fatalf("negative coupled residency %v", v)
		}
	}
	// Residency counts whole periods; drains are the tail of a subset of
	// them, so there can never be more drains than residencies.
	if len(drain.samples) > len(res.samples) {
		t.Errorf("%d drain samples > %d residency samples", len(drain.samples), len(res.samples))
	}
}

func TestProbeDetachAndNilFieldsAreSafe(t *testing.T) {
	m := MustNew(DefaultConfig().WithVariant(core.UELF), branchyProgram(t))
	m.AttachProbe(&Probe{}) // all observers nil: every site must skip
	m.Run(10_000)
	m.AttachProbe(nil) // detach mid-run
	m.Run(10_000)
}

func TestProbeMatchesUnprobedExecution(t *testing.T) {
	// A probed machine must be architecturally identical to an unprobed
	// one: same cycles, same commits, same flush counts.
	run := func(probe bool) *Stats {
		m := MustNew(DefaultConfig().WithVariant(core.UELF), branchyProgram(t))
		if probe {
			m.AttachProbe(&Probe{
				FlushRecovery:    &collector{},
				FAQOccupancy:     &collector{},
				CoupledResidency: &collector{},
				ResyncDrain:      &collector{},
			})
		}
		return m.Run(30_000)
	}
	a, b := run(false), run(true)
	if a.Cycles != b.Cycles || a.Committed != b.Committed || a.Flushes != b.Flushes {
		t.Errorf("probe perturbed execution: %+v vs %+v", a, b)
	}
}

func TestFAQHighWater(t *testing.T) {
	m := MustNew(DefaultConfig(), branchyProgram(t))
	m.Run(20_000)
	hw := m.FAQHighWater()
	if hw <= 0 || hw > DefaultConfig().FAQSize {
		t.Errorf("FAQ high-water %d out of (0, %d]", hw, DefaultConfig().FAQSize)
	}
	m.ResetStats()
	if m.FAQHighWater() > hw {
		t.Errorf("high-water grew across reset: %d", m.FAQHighWater())
	}
}

func TestWriteChromeTrace(t *testing.T) {
	m := MustNew(DefaultConfig().WithVariant(core.UELF), branchyProgram(t))
	m.Run(2_000)
	tr := NewTracer(512)
	m.AttachTracer(tr)
	m.Run(400)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var slices, metas int
	for _, e := range out.TraceEvents {
		switch e.Ph {
		case "X":
			slices++
			if e.Dur == 0 {
				t.Errorf("complete event %q has zero duration", e.Name)
			}
			if e.TID < tidFetch || e.TID > tidBackend {
				t.Errorf("slice %q on unknown tid %d", e.Name, e.TID)
			}
			if _, ok := e.Args["seq"]; !ok {
				t.Errorf("slice %q missing seq arg", e.Name)
			}
		case "M":
			metas++
		}
	}
	if slices == 0 {
		t.Fatal("no pipeline slices in the trace")
	}
	if metas != 4 { // process name + 3 thread names
		t.Errorf("metadata events = %d, want 4", metas)
	}
}
