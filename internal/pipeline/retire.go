package pipeline

import (
	"elfetch/internal/isa"
)

// retire drains the cycle's committed uops: BTB establishment (Section
// III-A — entries are built non-speculatively at retire), predictor
// training, architectural history/RAS maintenance, statistics, and oracle
// stream release.
func (m *Machine) retire() {
	retired := m.be.DrainRetired()
	if len(retired) == 0 {
		m.quietCycles++
	} else {
		m.quietCycles = 0
		if m.probe != nil {
			m.probeCommit(m.now)
		}
	}
	for i := range retired {
		u := &retired[i]
		si := u.SI

		if si.Class == isa.Store {
			// Write-allocate at commit: the store drains from the
			// store buffer into the hierarchy (the latency hides in
			// the buffer; the fill warms/claims the line).
			m.hier.DataLatency(u.PC, u.MemAddr)
		}

		// Direct target for BTB establishment.
		var directTarget isa.Addr
		if si.Class.IsDirect() {
			directTarget = si.Target
		}
		m.btbBuilder.Retire(u.PC, si.Class, u.ActTaken, directTarget)

		switch {
		case si.Class == isa.CondBranch:
			m.Stats.CondBranches++
			if u.PredTaken != u.ActTaken {
				m.Stats.CondMispredict++
			}
			if u.ActTaken {
				m.Stats.TakenBranches++
			}
			// Train the decoupled TAGE: with the prediction-time
			// payload when available, otherwise (coupled-fetched or
			// BTB-invisible branch) with a fresh retire-time
			// read-out.
			if u.HasTage {
				m.tage.Update(u.PC, u.TagePred, u.ActTaken)
			} else {
				pred := m.tage.Predict(u.PC, m.retHist)
				m.tage.Update(u.PC, pred, u.ActTaken)
			}
			m.retHist.UpdateCond(uint64(u.PC), u.ActTaken)
			// Coupled bimodal update policy (Section IV-D3 vs the
			// all-branches alternative; see Config.CoupledUpdateAll).
			if m.elf.Pred.Bimodal != nil && (u.Coupled || m.cfg.CoupledUpdateAll) {
				m.elf.Pred.Bimodal.Update(u.PC, u.ActTaken)
			}
			// Confidence-filter training: only coupled speculations
			// teach it (that is the behaviour it gates).
			if m.elf.Pred.Conf != nil && u.Coupled && u.CoupledPredUsed {
				m.elf.Pred.Conf.Train(u.PC, u.PredTaken == u.ActTaken)
			}

		case si.Class.IsBranch():
			m.Stats.TakenBranches++
			if si.Class.IsIndirect() {
				m.Stats.IndBranches++
				if si.Class.IsReturn() {
					m.Stats.Returns++
				}
				if u.PredTarget != u.ActTarget {
					m.Stats.IndMispredict++
				}
				// Train the two-level indirect predictor (returns
				// train neither — the RAS handles them).
				if !si.Class.IsReturn() {
					m.btcL0.Update(u.PC, u.ActTarget)
					if u.HasIT {
						m.ittage.Update(u.PC, u.ITPred, u.ActTarget)
					} else {
						p := m.ittage.Predict(u.PC, m.retHist)
						m.ittage.Update(u.PC, p, u.ActTarget)
					}
					// Coupled BTC (Section IV-D3 / CoupledUpdateAll).
					if m.elf.Pred.BTC != nil && (u.Coupled || m.cfg.CoupledUpdateAll) {
						m.elf.Pred.BTC.Update(u.PC, u.ActTarget)
					}
				}
				m.retHist.UpdateIndirect(uint64(u.ActTarget))
			}
			// Architectural RAS.
			switch {
			case si.Class.IsCall():
				m.archRAS.Push(u.PC.Next())
			case si.Class.IsReturn():
				m.archRAS.Pop()
			}
		}

		m.Stats.Committed++
		m.lastRetired, m.haveRetired = u.Seq, true
		if m.tracer != nil {
			m.tracer.retired(u.FetchID, m.now)
		}
		m.stream.Release(u.Seq + 1)
	}
}
