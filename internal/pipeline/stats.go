package pipeline

import "elfetch/internal/uop"

// Stats aggregates everything the evaluation section reports.
type Stats struct {
	Cycles    uint64
	Committed uint64

	// Branch accounting (retired, correct-path only).
	CondBranches   uint64
	CondMispredict uint64
	IndBranches    uint64
	IndMispredict  uint64
	Returns        uint64
	TakenBranches  uint64

	// Flushes by kind.
	Flushes [uop.NumFlushKinds]uint64

	// Front-end behaviour.
	FetchedUops      uint64
	WrongPathFetched uint64
	DecodeResteers   uint64 // BTB-miss / misfetch recoveries at decode
	TakenBubbles     uint64 // coupled-mode decode-redirect bubbles
	CoupledFetched   uint64 // uops fetched in ELF coupled mode
	PrefetchIssued   uint64

	// Checkpoint policy behaviour.
	CkptDeferredCycles uint64

	// Cycle census: where fetch time goes.
	CycCoupledFetch   uint64 // coupled-mode fetch issued
	CycCoupledStall   uint64 // coupled mode, stalled at a control decision
	CycSwitchPending  uint64 // coupled mode, draining for the switch
	CycDecoupledFetch uint64 // decoupled fetch issued
	CycFAQEmpty       uint64 // decoupled mode, FAQ empty/not ready
	CycFetchBusy      uint64 // I-cache miss stall
	CycRedirect       uint64 // decode-redirect bubble
	CycHalted         uint64 // waiting for an execute resteer
	CycBackpressure   uint64 // decode/rename backpressure

	// WatchdogRecoveries counts forced front-end restarts after the
	// machine went provably idle (empty back end, empty front end, no
	// pending events). A correct machine needs none; the simulator keeps
	// the counter visible so residual recovery-interaction corner cases
	// are bounded and observable rather than silent (tests assert the
	// rate stays negligible).
	WatchdogRecoveries uint64
}

// IPC returns committed instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Committed) / float64(s.Cycles)
}

// BranchMPKI returns conditional direction mispredictions per kilo
// instruction (the secondary axis of Figures 6-7).
func (s *Stats) BranchMPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CondMispredict) / float64(s.Committed) * 1000
}

// TotalMPKI includes indirect target mispredictions.
func (s *Stats) TotalMPKI() float64 {
	if s.Committed == 0 {
		return 0
	}
	return float64(s.CondMispredict+s.IndMispredict) / float64(s.Committed) * 1000
}
