package pipeline

import (
	"fmt"
	"io"

	"elfetch/internal/isa"
	"elfetch/internal/uop"
)

// Tracer records per-instruction pipeline timestamps (fetch, decode,
// rename, complete, retire/squash) — the raw material for pipeline
// visualisation (cmd/elfview renders it as a text pipeview). It is nil by
// default; attach with Machine.AttachTracer. Recording is bounded: once
// Max events are held, older completed events are dropped.
type Tracer struct {
	// Max bounds retained events (0 = 4096).
	Max int

	events []TraceEvent
	open   map[uint64]int // FetchID -> index into events
}

// TraceEvent is one instruction's lifetime.
type TraceEvent struct {
	FetchID   uint64
	Seq       uint64
	PC        isa.Addr
	Class     isa.Class
	WrongPath bool
	Coupled   bool

	Fetched  uint64
	Decoded  uint64
	Renamed  uint64
	Done     uint64
	Retired  uint64 // 0 if squashed
	Squashed bool
}

// NewTracer returns an empty tracer.
func NewTracer(max int) *Tracer {
	if max <= 0 {
		max = 4096
	}
	return &Tracer{Max: max, open: make(map[uint64]int)}
}

// AttachTracer enables event recording on the machine.
func (m *Machine) AttachTracer(t *Tracer) { m.tracer = t }

// Events returns the recorded events in fetch order.
func (t *Tracer) Events() []TraceEvent { return t.events }

func (t *Tracer) fetched(u *uop.Uop, now uint64) {
	if len(t.events) >= t.Max {
		// Drop the oldest closed event; if none, stop recording.
		dropped := false
		for i := range t.events {
			if t.events[i].Retired != 0 || t.events[i].Squashed {
				t.shift(i)
				dropped = true
				break
			}
		}
		if !dropped {
			return
		}
	}
	t.open[u.FetchID] = len(t.events)
	t.events = append(t.events, TraceEvent{
		FetchID: u.FetchID, Seq: u.Seq, PC: u.PC, Class: u.SI.Class,
		WrongPath: u.WrongPath, Coupled: u.Coupled, Fetched: now,
	})
}

// shift removes event i, fixing the open map.
func (t *Tracer) shift(i int) {
	delete(t.open, t.events[i].FetchID)
	t.events = append(t.events[:i], t.events[i+1:]...)
	for fid, idx := range t.open {
		if idx > i {
			t.open[fid] = idx - 1
		}
	}
}

func (t *Tracer) mark(fid uint64, f func(*TraceEvent), now uint64) {
	if i, ok := t.open[fid]; ok {
		f(&t.events[i])
	}
	_ = now
}

// Decoded/Renamed/Done/Retired/Squashed marks.
func (t *Tracer) decoded(fid, now uint64) {
	t.mark(fid, func(e *TraceEvent) { e.Decoded = now }, now)
}
func (t *Tracer) renamed(fid, now uint64) {
	t.mark(fid, func(e *TraceEvent) { e.Renamed = now }, now)
}
func (t *Tracer) retired(fid, now uint64) {
	t.mark(fid, func(e *TraceEvent) {
		e.Retired = now
		delete(t.open, e.FetchID)
	}, now)
}

// CloseSquashed marks every still-open event below the retirement horizon
// as squashed (called lazily from the viewer; squash plumbing does not
// need cycle accuracy).
func (t *Tracer) CloseSquashed() {
	for fid, i := range t.open {
		e := &t.events[i]
		if e.Retired == 0 {
			e.Squashed = true
		}
		delete(t.open, fid)
	}
}

// WritePipeview renders a gem5-pipeview-flavoured text chart: one line per
// instruction, one column per cycle between the window's bounds.
//
//	F = fetched, D = decoded, R = renamed, C = retired, x = squashed
func (t *Tracer) WritePipeview(w io.Writer, maxRows int) error {
	t.CloseSquashed()
	ev := t.events
	if maxRows > 0 && len(ev) > maxRows {
		ev = ev[len(ev)-maxRows:]
	}
	if len(ev) == 0 {
		_, err := fmt.Fprintln(w, "(no events recorded)")
		return err
	}
	lo := ev[0].Fetched
	hi := lo
	for _, e := range ev {
		if e.Retired > hi {
			hi = e.Retired
		}
		if e.Renamed > hi {
			hi = e.Renamed
		}
		if e.Fetched > hi {
			hi = e.Fetched
		}
	}
	span := hi - lo + 1
	const maxSpan = 160
	if span > maxSpan {
		span = maxSpan
	}
	for _, e := range ev {
		line := make([]byte, span)
		for i := range line {
			line[i] = '.'
		}
		put := func(cyc uint64, ch byte) {
			if cyc == 0 || cyc < lo {
				return
			}
			if off := cyc - lo; off < span {
				line[off] = ch
			}
		}
		put(e.Fetched, 'F')
		put(e.Decoded, 'D')
		put(e.Renamed, 'R')
		put(e.Retired, 'C')
		tag := " "
		switch {
		case e.Squashed && e.WrongPath:
			tag = "w"
		case e.Squashed:
			tag = "x"
		case e.Coupled:
			tag = "c"
		}
		if _, err := fmt.Fprintf(w, "%8d %-7v %v %s |%s|\n",
			e.Seq, e.Class, e.PC, tag, line); err != nil {
			return err
		}
	}
	return nil
}
