package pipeline

import (
	"bytes"
	"strings"
	"testing"
)

func TestTracerRecordsLifecycle(t *testing.T) {
	m := MustNew(DefaultConfig(), straightLine(t, 30))
	m.Run(5_000)
	tr := NewTracer(4096)
	m.AttachTracer(tr)
	m.Run(2_000)

	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events recorded")
	}
	retired := 0
	for _, e := range evs {
		if e.Fetched == 0 {
			t.Fatal("event without fetch timestamp")
		}
		if e.Retired != 0 {
			retired++
			if !(e.Fetched <= e.Decoded && e.Decoded <= e.Renamed && e.Renamed <= e.Retired) {
				t.Fatalf("out-of-order timestamps: %+v", e)
			}
		}
	}
	if retired == 0 {
		t.Fatal("no retired events")
	}
}

func TestTracerBounded(t *testing.T) {
	m := MustNew(DefaultConfig(), straightLine(t, 30))
	tr := NewTracer(64)
	m.AttachTracer(tr)
	m.Run(5_000)
	if len(tr.Events()) > 64 {
		t.Fatalf("tracer retained %d events, bound 64", len(tr.Events()))
	}
}

func TestPipeviewRenders(t *testing.T) {
	m := MustNew(DefaultConfig(), straightLine(t, 30))
	m.Run(2_000)
	tr := NewTracer(4096)
	m.AttachTracer(tr)
	m.Run(1_000)
	var buf bytes.Buffer
	if err := tr.WritePipeview(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "F") || !strings.Contains(out, "C") {
		t.Fatalf("pipeview lacks marks:\n%s", out)
	}
	buf.Reset()
	if err := tr.WritePipeview(&buf, 20); err != nil {
		t.Fatal(err)
	}
	if n := len(strings.Split(strings.TrimSpace(buf.String()), "\n")); n > 21 {
		t.Errorf("maxRows not honoured: %d lines", n)
	}
}

func TestPipeviewEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTracer(8).WritePipeview(&buf, 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no events") {
		t.Error("empty tracer output")
	}
}
