package program

import (
	"elfetch/internal/xrand"
)

// State is the mutable per-static-instruction execution state owned by a
// walker. Two generic words cover every model: loop counters, pattern
// positions, RNG streams, and local histories. The zero value means
// "uninitialised"; models lazily seed from it.
type State struct {
	A, B uint64
}

// Env is the walker-global context visible to behaviour models. GHR is the
// walker's outcome history (most recent outcome in bit 0), which lets
// behaviours correlate with global history — the property that separates
// TAGE-predictable branches from bimodal-predictable ones, and is what makes
// the COND-ELF results (Section VI-B) reproducible.
type Env struct {
	// GHR is the global history of conditional outcomes, bit 0 newest.
	GHR uint64
	// PC of the instruction being executed (for per-branch seeding).
	PC uint64
}

// Behavior generates the outcome stream of one conditional branch.
//
// Implementations must be deterministic functions of (st, env): the oracle
// and tests rely on replayability.
type Behavior interface {
	// Taken returns the next outcome and advances st.
	Taken(st *State, env *Env) bool
	// Bias returns the long-run taken fraction, used by workload tooling
	// and by wrong-path walkers that need a static guess.
	Bias() float64
}

// ---- Concrete behaviours ----

// AlwaysTaken is a branch that is always taken.
type AlwaysTaken struct{}

func (AlwaysTaken) Taken(*State, *Env) bool { return true }
func (AlwaysTaken) Bias() float64           { return 1 }

// NeverTaken is a branch that is never taken. Per the paper's BTB entry
// rules (Section III-A), such a branch never occupies a BTB branch slot.
type NeverTaken struct{}

func (NeverTaken) Taken(*State, *Env) bool { return false }
func (NeverTaken) Bias() float64           { return 0 }

// Loop models a loop backedge: taken Trip-1 times, then not taken once,
// repeating. Trip must be >= 1; Trip == 1 degenerates to never taken.
type Loop struct {
	Trip uint64
}

func (l Loop) Taken(st *State, _ *Env) bool {
	st.A++
	if st.A >= l.Trip {
		st.A = 0
		return false
	}
	return true
}

func (l Loop) Bias() float64 {
	if l.Trip == 0 {
		return 0
	}
	return float64(l.Trip-1) / float64(l.Trip)
}

// Pattern replays a fixed outcome pattern of length Len from the low bits of
// Bits (bit 0 first). Perfectly predictable by any history-based predictor
// with sufficient history; mispredicted by a bimodal if the pattern is mixed.
type Pattern struct {
	Bits uint64
	Len  uint8
}

func (p Pattern) Taken(st *State, _ *Env) bool {
	i := st.A % uint64(p.Len)
	st.A++
	return p.Bits>>(i&63)&1 == 1
}

func (p Pattern) Bias() float64 {
	n := 0
	for i := uint8(0); i < p.Len; i++ {
		if p.Bits>>i&1 == 1 {
			n++
		}
	}
	return float64(n) / float64(p.Len)
}

// Bernoulli is taken with independent probability P each execution. This is
// the "inherently unpredictable" branch: both TAGE and bimodal converge to
// the bias and still mispredict min(P, 1-P) of the time. The workload
// generator uses it to dial branch MPKI.
type Bernoulli struct {
	P    float64
	Salt uint64
}

func (b Bernoulli) Taken(st *State, env *Env) bool {
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, b.Salt) | 1 // never the zero sentinel
	}
	r := xrand.Rand{}
	r.Seed(st.A)
	st.A = r.Uint64() | 1
	rv := float64(st.A>>11) / (1 << 53)
	return rv < b.P
}

func (b Bernoulli) Bias() float64 { return b.P }

// HistoryHash computes the outcome as the parity of (GHR & Mask), optionally
// inverted. It is perfectly predictable by a global-history predictor whose
// history covers Mask (TAGE) and ~50% predictable by a bimodal — the
// archetype of the branch class that makes COND-ELF risky (omnetpp story,
// Section VI-B).
type HistoryHash struct {
	Mask   uint64
	Invert bool
}

func (h HistoryHash) Taken(st *State, env *Env) bool {
	// XOR in a local alternation bit so an all-zero history (e.g. this
	// branch feeding back its own outcome) cannot lock the stream at a
	// fixed point; the combined function stays a deterministic function
	// of (global history, local count), i.e. TAGE-learnable.
	st.A++
	v := (env.GHR & h.Mask) ^ (st.A & 1)
	// Parity of v.
	v ^= v >> 32
	v ^= v >> 16
	v ^= v >> 8
	v ^= v >> 4
	v ^= v >> 2
	v ^= v >> 1
	taken := v&1 == 1
	if h.Invert {
		taken = !taken
	}
	return taken
}

func (HistoryHash) Bias() float64 { return 0.5 }

// LocalPattern is taken according to the branch's own outcome count modulo a
// short period with a phase; predictable with long history, mixed for
// bimodal. Unlike Pattern, the period is prime-ish per instance so many
// instances decorrelate.
type LocalPattern struct {
	Period uint64 // >= 2
	TakenN uint64 // taken when (count % Period) < TakenN
}

func (l LocalPattern) Taken(st *State, _ *Env) bool {
	i := st.A % l.Period
	st.A++
	return i < l.TakenN
}

func (l LocalPattern) Bias() float64 { return float64(l.TakenN) / float64(l.Period) }

// Markov is a two-state first-order Markov branch: the next outcome's
// probability depends on the previous outcome (PTakenAfterTaken /
// PTakenAfterNotTaken). With asymmetric probabilities it produces bursty
// taken/not-taken runs — predictable by short-history predictors in
// proportion to the state persistence, unlike memoryless Bernoulli noise.
type Markov struct {
	PTakenAfterTaken    float64
	PTakenAfterNotTaken float64
	Salt                uint64
}

func (m Markov) Taken(st *State, env *Env) bool {
	// st.A: RNG stream; st.B: previous outcome (0/1, starts not-taken).
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, m.Salt) | 1
	}
	r := xrand.Rand{}
	r.Seed(st.A)
	st.A = r.Uint64() | 1
	p := m.PTakenAfterNotTaken
	if st.B == 1 {
		p = m.PTakenAfterTaken
	}
	taken := float64(st.A>>11)/(1<<53) < p
	if taken {
		st.B = 1
	} else {
		st.B = 0
	}
	return taken
}

func (m Markov) Bias() float64 {
	// Stationary distribution of the two-state chain.
	a, b := m.PTakenAfterNotTaken, 1-m.PTakenAfterTaken
	if a+b == 0 {
		return 0.5
	}
	return a / (a + b)
}
