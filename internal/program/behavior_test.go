package program

import (
	"testing"
	"testing/quick"
)

func runBehavior(b Behavior, n int, env *Env) []bool {
	var st State
	if env == nil {
		env = &Env{PC: 0x1000}
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = b.Taken(&st, env)
		env.GHR = env.GHR<<1 | b2u(out[i])
	}
	return out
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func takenFrac(out []bool) float64 {
	n := 0
	for _, t := range out {
		if t {
			n++
		}
	}
	return float64(n) / float64(len(out))
}

func TestAlwaysNeverTaken(t *testing.T) {
	if f := takenFrac(runBehavior(AlwaysTaken{}, 100, nil)); f != 1 {
		t.Errorf("AlwaysTaken frac = %v", f)
	}
	if f := takenFrac(runBehavior(NeverTaken{}, 100, nil)); f != 0 {
		t.Errorf("NeverTaken frac = %v", f)
	}
}

func TestLoopBehavior(t *testing.T) {
	out := runBehavior(Loop{Trip: 4}, 12, nil)
	want := []bool{true, true, true, false, true, true, true, false, true, true, true, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Loop{4} outcome[%d] = %v, want %v (full: %v)", i, out[i], want[i], out)
		}
	}
	if got, want := (Loop{Trip: 4}).Bias(), 0.75; got != want {
		t.Errorf("Bias = %v, want %v", got, want)
	}
}

func TestPatternBehavior(t *testing.T) {
	// Pattern 0b0101 (len 4): T, F, T, F, repeating (bit 0 first).
	p := Pattern{Bits: 0b0101, Len: 4}
	out := runBehavior(p, 8, nil)
	want := []bool{true, false, true, false, true, false, true, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("Pattern outcome[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if p.Bias() != 0.5 {
		t.Errorf("Bias = %v, want 0.5", p.Bias())
	}
}

func TestBernoulliBiasAndDeterminism(t *testing.T) {
	b := Bernoulli{P: 0.3, Salt: 7}
	out := runBehavior(b, 50000, nil)
	if f := takenFrac(out); f < 0.27 || f > 0.33 {
		t.Errorf("Bernoulli(0.3) frac = %v", f)
	}
	// Determinism: same state start, same stream.
	out2 := runBehavior(b, 50000, nil)
	for i := range out {
		if out[i] != out2[i] {
			t.Fatalf("Bernoulli not deterministic at %d", i)
		}
	}
	// Different PCs decorrelate.
	env := &Env{PC: 0x2000}
	out3 := runBehavior(b, 1000, env)
	same := 0
	for i := 0; i < 1000; i++ {
		if out[i] == out3[i] {
			same++
		}
	}
	if same > 900 || same < 100 {
		t.Errorf("different PCs gave %d/1000 identical outcomes", same)
	}
}

func TestHistoryHashFollowsGHR(t *testing.T) {
	h := HistoryHash{Mask: 0xF}
	// Outcome = parity((GHR & Mask) ^ localAlternation). With the local
	// counter at 1 (odd), parity(0b1011 ^ 1) = parity(0b1010) = 0.
	var st State
	env := &Env{GHR: 0b1011}
	if h.Taken(&st, env) {
		t.Error("parity(0b1010) should be not-taken")
	}
	// Counter now 2 (even): parity(0b1011) = 1 -> taken.
	if !h.Taken(&st, env) {
		t.Error("parity(0b1011) should be taken")
	}
	inv := HistoryHash{Mask: 0xF, Invert: true}
	stA, stB := State{A: 10}, State{A: 10}
	if inv.Taken(&stA, env) == h.Taken(&stB, env) {
		t.Error("Invert did not flip the outcome")
	}
}

func TestHistoryHashIsDeterministicInState(t *testing.T) {
	h := HistoryHash{Mask: 0x7F}
	st1, st2 := State{}, State{}
	env := &Env{}
	for i := 0; i < 200; i++ {
		env.GHR = uint64(i) * 0x9e37
		a := h.Taken(&st1, env)
		b := h.Taken(&st2, env)
		if a != b {
			t.Fatalf("diverged at %d", i)
		}
	}
}

func TestHistoryHashIsGloballyPredictable(t *testing.T) {
	// An oracle that knows GHR predicts HistoryHash perfectly; check the
	// outcome stream is ~50/50 though (hostile to bimodal).
	out := runBehavior(HistoryHash{Mask: 0x1F}, 4096, nil)
	f := takenFrac(out)
	if f < 0.4 || f > 0.6 {
		t.Errorf("HistoryHash frac = %v, want ~0.5", f)
	}
}

func TestLocalPattern(t *testing.T) {
	l := LocalPattern{Period: 5, TakenN: 2}
	out := runBehavior(l, 10, nil)
	want := []bool{true, true, false, false, false, true, true, false, false, false}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("LocalPattern outcome[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	if l.Bias() != 0.4 {
		t.Errorf("Bias = %v, want 0.4", l.Bias())
	}
}

func TestBiasMatchesEmpiricalRate(t *testing.T) {
	behaviors := []Behavior{
		Loop{Trip: 7},
		Pattern{Bits: 0b110, Len: 3},
		Bernoulli{P: 0.8, Salt: 3},
		LocalPattern{Period: 9, TakenN: 6},
	}
	for _, b := range behaviors {
		out := runBehavior(b, 20000, nil)
		if f, bias := takenFrac(out), b.Bias(); f < bias-0.05 || f > bias+0.05 {
			t.Errorf("%T: empirical %v vs Bias %v", b, f, bias)
		}
	}
}

func TestBernoulliStateNeverZeroAfterUse(t *testing.T) {
	f := func(pc uint64, salt uint64) bool {
		b := Bernoulli{P: 0.5, Salt: salt}
		var st State
		env := &Env{PC: pc}
		b.Taken(&st, env)
		return st.A != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMarkovBurstiness(t *testing.T) {
	// Sticky chain: long runs of the same outcome.
	m := Markov{PTakenAfterTaken: 0.95, PTakenAfterNotTaken: 0.05, Salt: 3}
	out := runBehavior(m, 50000, nil)
	// Transition rate should be ~5%, far below a memoryless coin's 50%.
	trans := 0
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			trans++
		}
	}
	rate := float64(trans) / float64(len(out)-1)
	if rate > 0.10 {
		t.Errorf("transition rate %v, want ~0.05 (bursty)", rate)
	}
	// Stationary bias ~0.5 for the symmetric sticky chain.
	if f := takenFrac(out); f < 0.3 || f > 0.7 {
		t.Errorf("stationary frac %v", f)
	}
	if b := m.Bias(); b < 0.45 || b > 0.55 {
		t.Errorf("Bias() = %v, want 0.5", b)
	}
}

func TestMarkovDeterministic(t *testing.T) {
	m := Markov{PTakenAfterTaken: 0.8, PTakenAfterNotTaken: 0.3, Salt: 9}
	a := runBehavior(m, 2000, nil)
	b := runBehavior(m, 2000, nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("diverged at %d", i)
		}
	}
}
