package program

import (
	"testing"

	"elfetch/internal/isa"
)

const testBase = isa.Addr(0x10000)

func twoFuncProgram(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(testBase)
	main := b.Func("main")
	loop := main.Block("loop")
	loop.Nop(3)
	loop.CallTo("leaf")
	loop.CondTo(Loop{Trip: 10}, "loop")
	main.Block("exit").JumpTo("loop")

	leaf := b.Func("leaf")
	leaf.Block("entry").Nop(2).Ret()

	p, err := b.Build("main")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return p
}

func TestBuildLayout(t *testing.T) {
	p := twoFuncProgram(t)
	if p.Entry != testBase {
		t.Errorf("Entry = %v, want %v", p.Entry, testBase)
	}
	if len(p.Funcs) != 2 {
		t.Fatalf("len(Funcs) = %d, want 2", len(p.Funcs))
	}
	// main: 3 nops + call + cond + jump = 6 insts; leaf starts at the next
	// 16-instruction boundary.
	leaf := p.Funcs[1]
	if leaf.Name != "leaf" {
		t.Fatalf("Funcs[1].Name = %q", leaf.Name)
	}
	if leaf.Entry != testBase.Plus(16) {
		t.Errorf("leaf.Entry = %v, want %v (16-inst alignment)", leaf.Entry, testBase.Plus(16))
	}
	if leaf.Size() != 3 {
		t.Errorf("leaf.Size = %d, want 3", leaf.Size())
	}
}

func TestBuildResolvesTargets(t *testing.T) {
	p := twoFuncProgram(t)
	call := p.MustAt(testBase.Plus(3))
	if call.Class != isa.Call {
		t.Fatalf("inst at +3 = %v, want call", call.Class)
	}
	if call.Target != p.Funcs[1].Entry {
		t.Errorf("call.Target = %v, want %v", call.Target, p.Funcs[1].Entry)
	}
	cond := p.MustAt(testBase.Plus(4))
	if cond.Class != isa.CondBranch || cond.Target != testBase {
		t.Errorf("cond = %v target %v, want condbr to %v", cond.Class, cond.Target, testBase)
	}
}

func TestPaddingIsNops(t *testing.T) {
	p := twoFuncProgram(t)
	// Instructions 6..15 are padding between main and leaf.
	for i := 6; i < 16; i++ {
		s := p.MustAt(testBase.Plus(i))
		if s.Class != isa.ALU || s.FuncID != -1 {
			t.Errorf("padding at +%d: class=%v funcID=%d", i, s.Class, s.FuncID)
		}
	}
}

func TestAtBoundsAndAlignment(t *testing.T) {
	p := twoFuncProgram(t)
	if p.At(testBase-isa.InstBytes) != nil {
		t.Error("At(before base) != nil")
	}
	if p.At(p.End()) != nil {
		t.Error("At(end) != nil")
	}
	if p.At(testBase+1) != nil {
		t.Error("At(unaligned) != nil")
	}
	if p.At(testBase) == nil {
		t.Error("At(base) == nil")
	}
}

func TestStateIDsAreDenseAndUnique(t *testing.T) {
	p := twoFuncProgram(t)
	seen := make(map[int32]bool)
	for i := 0; i < p.Len(); i++ {
		s := p.MustAt(p.Base.Plus(i))
		if s.StateID < 0 {
			continue
		}
		if seen[s.StateID] {
			t.Errorf("duplicate StateID %d", s.StateID)
		}
		seen[s.StateID] = true
		if int(s.StateID) >= p.NumStates {
			t.Errorf("StateID %d >= NumStates %d", s.StateID, p.NumStates)
		}
	}
	if len(seen) != p.NumStates {
		t.Errorf("got %d stateful statics, NumStates = %d", len(seen), p.NumStates)
	}
}

func TestBuildErrors(t *testing.T) {
	t.Run("missing terminator", func(t *testing.T) {
		b := NewBuilder(testBase)
		b.Func("f").Block("b").Nop(1)
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for missing terminator")
		}
	})
	t.Run("undefined label", func(t *testing.T) {
		b := NewBuilder(testBase)
		b.Func("f").Block("b").JumpTo("nowhere")
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for undefined label")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		b := NewBuilder(testBase)
		fn := b.Func("f")
		fn.Block("b").CallTo("ghost").JumpTo("b")
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for undefined callee")
		}
	})
	t.Run("undefined entry", func(t *testing.T) {
		b := NewBuilder(testBase)
		b.Func("f").Block("b").Ret()
		if _, err := b.Build("main"); err == nil {
			t.Error("want error for undefined entry")
		}
	})
	t.Run("duplicate function", func(t *testing.T) {
		b := NewBuilder(testBase)
		b.Func("f").Block("b").Ret()
		b.Func("f").Block("b").Ret()
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for duplicate function")
		}
	})
	t.Run("duplicate label", func(t *testing.T) {
		b := NewBuilder(testBase)
		fn := b.Func("f")
		fn.Block("b").Ret()
		fn.Block("b").Ret()
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for duplicate label")
		}
	})
	t.Run("instruction after terminator", func(t *testing.T) {
		b := NewBuilder(testBase)
		fn := b.Func("f")
		blk := fn.Block("b")
		blk.Ret()
		blk.Nop(1)
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for instruction after terminator")
		}
	})
	t.Run("empty indirect target set", func(t *testing.T) {
		b := NewBuilder(testBase)
		b.Func("f").Block("b").IndirectTo(RoundRobin{})
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for empty indirect target set")
		}
	})
	t.Run("no functions", func(t *testing.T) {
		b := NewBuilder(testBase)
		if _, err := b.Build("f"); err == nil {
			t.Error("want error for empty program")
		}
	})
}

func TestIndirectTargetsResolved(t *testing.T) {
	b := NewBuilder(testBase)
	f := b.Func("f")
	sw := f.Block("switch")
	sw.IndirectTo(RoundRobin{}, "case0", "case1", "case2")
	f.Block("case0").JumpTo("switch")
	f.Block("case1").JumpTo("switch")
	f.Block("case2").JumpTo("switch")
	p, err := b.Build("f")
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	ind := p.MustAt(testBase)
	if len(ind.Targets) != 3 {
		t.Fatalf("len(Targets) = %d, want 3", len(ind.Targets))
	}
	for i, want := range []isa.Addr{testBase.Plus(1), testBase.Plus(2), testBase.Plus(3)} {
		if ind.Targets[i] != want {
			t.Errorf("Targets[%d] = %v, want %v", i, ind.Targets[i], want)
		}
	}
}

func TestFootprintBytes(t *testing.T) {
	p := twoFuncProgram(t)
	if p.FootprintBytes() != p.Len()*isa.InstBytes {
		t.Errorf("FootprintBytes = %d, want %d", p.FootprintBytes(), p.Len()*isa.InstBytes)
	}
}
