package program

import (
	"elfetch/internal/isa"
	"elfetch/internal/xrand"
)

// MemModel generates the address stream of one load or store instruction.
// Addresses land in the data segment; the cache hierarchy and the memory
// dependence machinery consume them.
type MemModel interface {
	// NextAddr returns the next effective address and advances st.
	NextAddr(st *State, env *Env) isa.Addr
	// Footprint returns the approximate number of distinct bytes touched,
	// for tooling.
	Footprint() uint64
}

// Data-segment layout constants. Code lives well below DataBase, so
// instruction and data lines never collide.
const (
	// DataBase is the start of the heap-like data segment.
	DataBase isa.Addr = 0x1000_0000
	// StackBase is the start of the downward-growing stack segment used
	// by call/return-heavy workloads' frame accesses.
	StackBase isa.Addr = 0x7fff_0000
)

// SeqStream walks Base..Base+Size with the given stride, wrapping — the
// streaming access pattern, friendly to the stride prefetcher.
type SeqStream struct {
	Base   isa.Addr
	Size   uint64 // bytes
	Stride uint64 // bytes per access
}

func (m SeqStream) NextAddr(st *State, _ *Env) isa.Addr {
	a := m.Base + isa.Addr(st.A%m.Size)
	st.A += m.Stride
	return a
}

func (m SeqStream) Footprint() uint64 { return m.Size }

// RandomIn touches uniformly random addresses in [Base, Base+Size) —
// prefetch-hostile; large Size gives the multi-GB-footprint behaviour of
// the paper's server 2 subtest 3 graph workload.
type RandomIn struct {
	Base isa.Addr
	Size uint64
	Salt uint64
}

func (m RandomIn) NextAddr(st *State, env *Env) isa.Addr {
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, m.Salt) | 1
	}
	r := xrand.Rand{}
	r.Seed(st.A)
	st.A = r.Uint64() | 1
	return m.Base + isa.Addr(st.A%m.Size)&^7
}

func (m RandomIn) Footprint() uint64 { return m.Size }

// FixedSlot always touches the same 8-byte slot — models a hot global or a
// spilled stack slot; always a cache hit after warmup, and a reliable
// store→load forwarding partner for memory-dependence tests.
type FixedSlot struct {
	Addr isa.Addr
}

func (m FixedSlot) NextAddr(*State, *Env) isa.Addr { return m.Addr }
func (m FixedSlot) Footprint() uint64              { return 8 }

// FrameSlot touches StackBase minus a per-call-depth offset: the walker's
// Env does not carry depth, so we approximate with a small rotating window,
// which preserves the property that matters — recursion touches a small,
// hot, reused region (server 2 subtest 2).
type FrameSlot struct {
	Slot   uint64 // which slot within the frame
	Frames uint64 // how many frames the rotation spans
}

func (m FrameSlot) NextAddr(st *State, _ *Env) isa.Addr {
	frame := st.A % maxU64(m.Frames, 1)
	st.A++
	return StackBase - isa.Addr(frame*64+m.Slot*8)
}

func (m FrameSlot) Footprint() uint64 { return maxU64(m.Frames, 1) * 64 }

// PointerChase models a dependent-chain walk: each address is a hash of the
// previous one within [Base, Base+Size). Combined with a load→load register
// dependence in the program builder this produces classic memory-latency-
// bound behaviour (mcf-like).
type PointerChase struct {
	Base isa.Addr
	Size uint64
	Salt uint64
}

func (m PointerChase) NextAddr(st *State, env *Env) isa.Addr {
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, m.Salt) | 1
	}
	st.A = xrand.Mix(st.A, m.Salt|1)
	return m.Base + isa.Addr(st.A%m.Size)&^7
}

func (m PointerChase) Footprint() uint64 { return m.Size }

func maxU64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// Strided2D walks a matrix in row-major order with a row stride larger
// than the element stride — the classic stencil/row-walk pattern: hits
// within a row, a conflict-prone jump between rows. Cols and Rows are in
// elements of Elem bytes.
type Strided2D struct {
	Base       isa.Addr
	Cols, Rows uint64
	Elem       uint64 // bytes per element
	RowPad     uint64 // extra bytes between rows (leading dimension pad)
}

func (m Strided2D) NextAddr(st *State, _ *Env) isa.Addr {
	cols := maxU64(m.Cols, 1)
	rows := maxU64(m.Rows, 1)
	elem := maxU64(m.Elem, 1)
	i := st.A % (cols * rows)
	st.A++
	r, c := i/cols, i%cols
	return m.Base + isa.Addr(r*(cols*elem+m.RowPad)+c*elem)
}

func (m Strided2D) Footprint() uint64 {
	return maxU64(m.Rows, 1) * (maxU64(m.Cols, 1)*maxU64(m.Elem, 1) + m.RowPad)
}
