package program

import (
	"testing"

	"elfetch/internal/isa"
)

func TestRoundRobinCycles(t *testing.T) {
	var st State
	env := &Env{PC: 1}
	rr := RoundRobin{}
	for i := 0; i < 12; i++ {
		if got := rr.NextTarget(&st, env, 4); got != i%4 {
			t.Fatalf("step %d: got %d, want %d", i, got, i%4)
		}
	}
	if rr.Spread(4) != 4 {
		t.Errorf("Spread = %d, want 4", rr.Spread(4))
	}
}

func TestFixedTarget(t *testing.T) {
	var st State
	env := &Env{PC: 1}
	ft := FixedTarget{}
	for i := 0; i < 5; i++ {
		if got := ft.NextTarget(&st, env, 7); got != 0 {
			t.Fatalf("got %d, want 0", got)
		}
	}
	if ft.Spread(7) != 1 {
		t.Errorf("Spread = %d, want 1", ft.Spread(7))
	}
}

func TestUniformRandomInRangeAndDeterministic(t *testing.T) {
	u := UniformRandom{Salt: 5}
	var st1, st2 State
	env := &Env{PC: 0x40}
	for i := 0; i < 1000; i++ {
		a := u.NextTarget(&st1, env, 9)
		b := u.NextTarget(&st2, env, 9)
		if a != b {
			t.Fatalf("not deterministic at %d", i)
		}
		if a < 0 || a >= 9 {
			t.Fatalf("out of range: %d", a)
		}
	}
}

func TestHistoryTargetCorrelates(t *testing.T) {
	h := HistoryTarget{Mask: 0xFF}
	var st State
	if got := h.NextTarget(&st, &Env{GHR: 0b1111}, 8); got != 4 {
		t.Errorf("popcount(0b1111)%%8 = %d, want 4", got)
	}
	if got := h.NextTarget(&st, &Env{GHR: 0}, 8); got != 0 {
		t.Errorf("popcount(0)%%8 = %d, want 0", got)
	}
}

func TestSkewedTargetFavorsHot(t *testing.T) {
	s := SkewedTarget{Hot: 0.9, Salt: 11}
	var st State
	env := &Env{PC: 0x80}
	hot := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if s.NextTarget(&st, env, 4) == 0 {
			hot++
		}
	}
	frac := float64(hot) / n
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("hot fraction = %v, want ~0.9", frac)
	}
}

func TestSeqStreamWrapsAndStrides(t *testing.T) {
	m := SeqStream{Base: DataBase, Size: 256, Stride: 64}
	var st State
	env := &Env{PC: 1}
	want := []isa.Addr{DataBase, DataBase + 64, DataBase + 128, DataBase + 192, DataBase}
	for i, w := range want {
		if got := m.NextAddr(&st, env); got != w {
			t.Fatalf("access %d: got %v, want %v", i, got, w)
		}
	}
}

func TestRandomInStaysInBounds(t *testing.T) {
	m := RandomIn{Base: DataBase, Size: 4096, Salt: 3}
	var st State
	env := &Env{PC: 0x44}
	for i := 0; i < 10000; i++ {
		a := m.NextAddr(&st, env)
		if a < DataBase || a >= DataBase+4096 {
			t.Fatalf("address %v out of bounds", a)
		}
	}
}

func TestFixedSlot(t *testing.T) {
	m := FixedSlot{Addr: DataBase + 8}
	var st State
	if m.NextAddr(&st, nil) != DataBase+8 || m.NextAddr(&st, nil) != DataBase+8 {
		t.Error("FixedSlot moved")
	}
}

func TestFrameSlotRotatesWithinWindow(t *testing.T) {
	m := FrameSlot{Slot: 2, Frames: 4}
	var st State
	seen := make(map[isa.Addr]bool)
	for i := 0; i < 16; i++ {
		a := m.NextAddr(&st, nil)
		if a > StackBase {
			t.Fatalf("frame address above stack base: %v", a)
		}
		seen[a] = true
	}
	if len(seen) != 4 {
		t.Errorf("distinct frame addresses = %d, want 4", len(seen))
	}
}

func TestPointerChaseDeterministicAndBounded(t *testing.T) {
	m := PointerChase{Base: DataBase, Size: 1 << 20, Salt: 9}
	var st1, st2 State
	env := &Env{PC: 0x48}
	seen := make(map[isa.Addr]bool)
	for i := 0; i < 5000; i++ {
		a := m.NextAddr(&st1, env)
		if b := m.NextAddr(&st2, env); a != b {
			t.Fatalf("not deterministic at %d", i)
		}
		if a < DataBase || a >= DataBase+1<<20 {
			t.Fatalf("out of bounds: %v", a)
		}
		seen[a] = true
	}
	if len(seen) < 4000 {
		t.Errorf("pointer chase revisits too much: %d distinct of 5000", len(seen))
	}
}

func TestMemFootprints(t *testing.T) {
	if (SeqStream{Size: 100}).Footprint() != 100 {
		t.Error("SeqStream footprint")
	}
	if (RandomIn{Size: 200}).Footprint() != 200 {
		t.Error("RandomIn footprint")
	}
	if (FixedSlot{}).Footprint() != 8 {
		t.Error("FixedSlot footprint")
	}
	if (PointerChase{Size: 300}).Footprint() != 300 {
		t.Error("PointerChase footprint")
	}
}

func TestStrided2DWalksRowMajor(t *testing.T) {
	m := Strided2D{Base: DataBase, Cols: 4, Rows: 2, Elem: 8, RowPad: 32}
	var st State
	want := []isa.Addr{
		DataBase, DataBase + 8, DataBase + 16, DataBase + 24, // row 0
		DataBase + 64, DataBase + 72, DataBase + 80, DataBase + 88, // row 1 (32B pad)
		DataBase, // wraps
	}
	for i, w := range want {
		if got := m.NextAddr(&st, nil); got != w {
			t.Fatalf("access %d: %v, want %v", i, got, w)
		}
	}
	if m.Footprint() != 2*(4*8+32) {
		t.Errorf("footprint = %d", m.Footprint())
	}
}
