// Package program represents synthetic static programs: a laid-out code image
// of fixed-length instructions organised into functions and basic blocks,
// plus per-instruction behaviour models.
//
// The simulator never executes real binaries (the paper's SPEC and
// proprietary server workloads are unavailable; see DESIGN.md §2). Instead,
// a Program is the static side of a synthetic workload: every conditional
// branch carries a Behavior that generates its taken/not-taken outcome
// stream, every indirect branch a TargetModel, and every memory instruction
// a MemModel generating its address stream. The oracle executor in
// internal/trace walks this structure to produce the dynamic instruction
// stream, and the front-end walks it speculatively down wrong paths.
package program

import (
	"fmt"

	"elfetch/internal/isa"
)

// Static is one static instruction in the code image.
//
// Statics are immutable after Build; all mutable per-instruction execution
// state (loop counters, RNG streams, local histories) lives in a State table
// owned by the walker, indexed by StateID. This separation lets the oracle
// and any number of wrong-path walkers execute the same static code with
// independent state.
type Static struct {
	PC    isa.Addr
	Class isa.Class

	// Dest, Src1, Src2 are architectural register operands. RegZero means
	// "no operand" / no dependence.
	Dest, Src1, Src2 isa.Reg

	// Target is the direct branch target (CondBranch, Jump, Call).
	Target isa.Addr

	// Targets is the possible-target set of an indirect branch, resolved
	// at Build time; TargetSel picks among them.
	Targets   []isa.Addr
	TargetSel TargetModel

	// Behavior generates conditional-branch outcomes.
	Behavior Behavior

	// Mem generates load/store addresses.
	Mem MemModel

	// StateID indexes the walker-owned state table, or -1 if the
	// instruction is stateless.
	StateID int32

	// FuncID identifies the containing function (index into Program.Funcs).
	FuncID int32
}

// IsBranch reports whether the static is any control-flow instruction.
func (s *Static) IsBranch() bool { return s.Class.IsBranch() }

// FallThrough returns the address of the sequential successor.
func (s *Static) FallThrough() isa.Addr { return s.PC.Next() }

// Func is static metadata about one function.
type Func struct {
	Name  string
	Entry isa.Addr
	// End is one past the last instruction of the function.
	End isa.Addr
}

// Size returns the function size in instructions.
func (f *Func) Size() int { return f.Entry.InstsTo(f.End) }

// Program is a laid-out code image.
type Program struct {
	// Base is the address of the first instruction.
	Base isa.Addr
	// Entry is the address execution starts at.
	Entry isa.Addr

	code  []Static
	Funcs []*Func

	// NumStates is the size of the State table a walker must allocate.
	NumStates int
}

// Len returns the number of static instructions in the image.
func (p *Program) Len() int { return len(p.code) }

// End returns one past the last instruction.
func (p *Program) End() isa.Addr { return p.Base.Plus(len(p.code)) }

// At returns the static instruction at pc, or nil if pc is outside the code
// image or unaligned. Wrong-path walkers rely on the nil return to stop at
// the image boundary.
func (p *Program) At(pc isa.Addr) *Static {
	if pc < p.Base || pc%isa.InstBytes != 0 {
		return nil
	}
	i := p.Base.InstsTo(pc)
	if i >= len(p.code) {
		return nil
	}
	return &p.code[i]
}

// MustAt is like At but panics on out-of-image addresses; for tests and
// builders where the address is known valid.
func (p *Program) MustAt(pc isa.Addr) *Static {
	s := p.At(pc)
	if s == nil {
		panic(fmt.Sprintf("program: no instruction at %v", pc))
	}
	return s
}

// FuncAt returns the function containing pc, or nil.
func (p *Program) FuncAt(pc isa.Addr) *Func {
	s := p.At(pc)
	if s == nil {
		return nil
	}
	return p.Funcs[s.FuncID]
}

// FootprintBytes returns the code footprint in bytes, the headline
// "instruction footprint" knob of the server workloads.
func (p *Program) FootprintBytes() int { return len(p.code) * isa.InstBytes }
