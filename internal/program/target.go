package program

import (
	"elfetch/internal/isa"
	"elfetch/internal/xrand"
)

// TargetModel picks the next target of an indirect branch from its resolved
// target set. Deterministic in (st, env), like Behavior.
type TargetModel interface {
	// NextTarget returns an index into the static's Targets slice and
	// advances st. len(targets) >= 1 is guaranteed by the builder.
	NextTarget(st *State, env *Env, n int) int
	// Spread returns an estimate of the number of distinct targets the
	// model actually exercises, for tooling.
	Spread(n int) int
}

// FixedTarget always selects target 0 — a monomorphic indirect branch,
// trivially predictable once seen.
type FixedTarget struct{}

func (FixedTarget) NextTarget(*State, *Env, int) int { return 0 }
func (FixedTarget) Spread(int) int                   { return 1 }

// RoundRobin cycles through all targets in order — predictable by ITTAGE
// (history-correlated) but hostile to a direct-mapped L0 branch target cache
// once the set exceeds its reach.
type RoundRobin struct{}

func (RoundRobin) NextTarget(st *State, _ *Env, n int) int {
	i := int(st.A % uint64(n))
	st.A++
	return i
}

func (RoundRobin) Spread(n int) int { return n }

// UniformRandom selects uniformly at random — essentially unpredictable
// beyond the most-recent-target guess; dials indirect MPKI up.
type UniformRandom struct {
	Salt uint64
}

func (u UniformRandom) NextTarget(st *State, env *Env, n int) int {
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, u.Salt) | 1
	}
	r := xrand.Rand{}
	r.Seed(st.A)
	st.A = r.Uint64() | 1
	return int(st.A>>7) % n
}

func (u UniformRandom) Spread(n int) int { return n }

// HistoryTarget selects target popcount(GHR & Mask) mod n — perfectly
// correlated with global outcome history, so ITTAGE learns it while the
// simple L0 branch target cache does not.
type HistoryTarget struct {
	Mask uint64
}

func (h HistoryTarget) NextTarget(_ *State, env *Env, n int) int {
	v := env.GHR & h.Mask
	// popcount
	c := 0
	for v != 0 {
		v &= v - 1
		c++
	}
	return c % n
}

func (h HistoryTarget) Spread(n int) int { return n }

// SkewedTarget selects target 0 with probability Hot, else one of the rest
// uniformly — models virtual-call sites with a dominant receiver.
type SkewedTarget struct {
	Hot  float64
	Salt uint64
}

func (s SkewedTarget) NextTarget(st *State, env *Env, n int) int {
	if st.A == 0 {
		st.A = xrand.Mix(env.PC, s.Salt) | 1
	}
	r := xrand.Rand{}
	r.Seed(st.A)
	st.A = r.Uint64() | 1
	if n == 1 || float64(st.A>>11)/(1<<53) < s.Hot {
		return 0
	}
	return 1 + int(st.A>>7)%(n-1)
}

func (s SkewedTarget) Spread(n int) int { return n }

// resolveTargets is used by the builder to turn block labels into addresses.
// Kept here to keep target-set invariants near the models.
func validTargetSet(targets []isa.Addr) bool { return len(targets) >= 1 }
