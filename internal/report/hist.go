package report

import (
	"math"
	"strconv"
	"strings"

	"elfetch/internal/obs"
)

// Hist renders a histogram snapshot as a Table: one row per bucket with
// its count, share of observations, and a text bar, plus summary notes
// (count, mean, p50/p90/p99). Empty tail buckets are elided so narrow
// distributions stay narrow on screen.
func Hist(title string, s obs.HistogramSnapshot) *Table {
	t := New(title, "le", "count", "share", "")
	if s.Count == 0 {
		return t.Note("(no observations)")
	}
	// Find the last non-empty bucket so we can trim the empty tail while
	// keeping interior zeros (gaps are information; tails are noise).
	last := 0
	for i, c := range s.Counts {
		if c > 0 {
			last = i
		}
	}
	max := uint64(0)
	for _, c := range s.Counts {
		if c > max {
			max = c
		}
	}
	for i := 0; i <= last; i++ {
		le := "+Inf"
		if i < len(s.Bounds) {
			le = strconv.FormatFloat(s.Bounds[i], 'g', -1, 64)
		}
		c := s.Counts[i]
		n := 0
		if max > 0 {
			n = int(math.Round(30 * float64(c) / float64(max)))
		}
		// Pad every bar to the same width so the column renders
		// left-anchored despite the table's right-aligned cells.
		bar := strings.Repeat("#", n) + strings.Repeat(" ", 30-n)
		t.Add(le, I(c), Pct(float64(c)/float64(s.Count)), bar)
	}
	t.Note("n=" + I(s.Count) +
		"  mean=" + F1(s.Mean()) +
		"  p50=" + F1(s.Quantile(0.5)) +
		"  p90=" + F1(s.Quantile(0.9)) +
		"  p99=" + F1(s.Quantile(0.99)))
	return t
}
