// Package report renders experiment results as aligned text, CSV, or JSON.
// The eval harness builds Tables; cmd/elfbench selects the rendering, so
// the same figure data feeds terminals, spreadsheets, and scripts.
package report

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Table is one titled, column-labelled result grid. The json tags are the
// wire shape shared by WriteJSON and embedders (elfd's figure payloads).
type Table struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	// Notes render after the grid (methodology, caveats).
	Notes []string `json:"notes,omitempty"`
}

// New returns an empty table.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends one row; the cell count must match the columns.
func (t *Table) Add(cells ...string) *Table {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns", len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
	return t
}

// Note appends a trailing note line.
func (t *Table) Note(s string) *Table {
	t.Notes = append(t.Notes, s)
	return t
}

// SortBy orders rows by the given column (lexicographic; numeric cells
// compare numerically when both parse).
func (t *Table) SortBy(col int) *Table {
	if col < 0 || col >= len(t.Columns) {
		panic("report: sort column out of range")
	}
	sort.SliceStable(t.Rows, func(i, j int) bool {
		a, b := t.Rows[i][col], t.Rows[j][col]
		fa, ea := strconv.ParseFloat(a, 64)
		fb, eb := strconv.ParseFloat(b, 64)
		if ea == nil && eb == nil {
			return fa < fb
		}
		return a < b
	})
	return t
}

// WriteText renders an aligned, human-readable grid.
func (t *Table) WriteText(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintln(w, t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) error {
		var sb strings.Builder
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i == 0 {
				sb.WriteString(pad(cell, widths[i], false))
			} else {
				sb.WriteString(pad(cell, widths[i], true))
			}
		}
		_, err := fmt.Fprintln(w, strings.TrimRight(sb.String(), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintln(w, n); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int, right bool) string {
	if len(s) >= w {
		return s
	}
	sp := strings.Repeat(" ", w-len(s))
	if right {
		return sp + s
	}
	return s + sp
}

// WriteCSV renders RFC-4180 CSV (title and notes as comment-ish rows are
// omitted; columns first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON renders the table as a single JSON object.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Format names a rendering.
type Format string

// Supported formats.
const (
	Text Format = "text"
	CSV  Format = "csv"
	JSON Format = "json"
)

// ParseFormat parses a format name ("text", "csv", "json"), rejecting
// anything else — CLIs and servers should fail loudly on a typoed format
// rather than silently fall back to text.
func ParseFormat(s string) (Format, error) {
	switch f := Format(strings.ToLower(strings.TrimSpace(s))); f {
	case Text, CSV, JSON:
		return f, nil
	case "":
		return Text, nil
	default:
		return "", fmt.Errorf("report: unknown format %q (want text, csv or json)", s)
	}
}

// Write renders in the named format.
func (t *Table) Write(w io.Writer, f Format) error {
	switch f {
	case CSV:
		return t.WriteCSV(w)
	case JSON:
		return t.WriteJSON(w)
	default:
		return t.WriteText(w)
	}
}

// F formats a float with 3 decimals (the relative-IPC house style).
func F(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }

// F1 formats a float with 1 decimal (MPKI, averages).
func F1(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }

// Pct formats a fraction as a percentage with 1 decimal.
func Pct(v float64) string { return strconv.FormatFloat(100*v, 'f', 1, 64) + "%" }

// I formats an integer.
func I[T ~int | ~int64 | ~uint64](v T) string { return fmt.Sprintf("%d", v) }
