package report

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func sample() *Table {
	return New("Demo", "workload", "rel", "mpki").
		Add("leela", "1.024", "30.3").
		Add("bzip2", "1.021", "18.8").
		Note("(note line)")
}

func TestWriteTextAligned(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + header + 2 rows + note
		t.Fatalf("want 5 lines, got %d:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "workload") {
		t.Errorf("header: %q", lines[1])
	}
	// Numeric columns right-align: the rel values end at the same offset.
	iL := strings.Index(lines[2], "1.024")
	iB := strings.Index(lines[3], "1.021")
	if iL != iB {
		t.Errorf("columns misaligned: %d vs %d\n%s", iL, iB, out)
	}
	if lines[3] != strings.TrimRight(lines[3], " ") {
		t.Error("trailing spaces not trimmed")
	}
}

func TestWriteCSVRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || recs[0][0] != "workload" || recs[2][1] != "1.021" {
		t.Fatalf("csv content: %v", recs)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Title   string     `json:"title"`
		Columns []string   `json:"columns"`
		Rows    [][]string `json:"rows"`
		Notes   []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Title != "Demo" || len(got.Rows) != 2 || got.Notes[0] != "(note line)" {
		t.Fatalf("json content: %+v", got)
	}
}

func TestSortByNumericAndLexicographic(t *testing.T) {
	tb := New("", "name", "v").
		Add("b", "10").
		Add("a", "9").
		Add("c", "2")
	tb.SortBy(1)
	if tb.Rows[0][1] != "2" || tb.Rows[2][1] != "10" {
		t.Errorf("numeric sort: %v", tb.Rows)
	}
	tb.SortBy(0)
	if tb.Rows[0][0] != "a" || tb.Rows[2][0] != "c" {
		t.Errorf("lexicographic sort: %v", tb.Rows)
	}
}

func TestAddPanicsOnArity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch accepted")
		}
	}()
	New("", "a", "b").Add("only-one")
}

func TestFormatters(t *testing.T) {
	if F(1.0239) != "1.024" || F1(30.25) != "30.2" {
		t.Error("float formatting")
	}
	if Pct(0.4955) != "49.5%" {
		t.Errorf("Pct = %q", Pct(0.4955))
	}
	if I(42) != "42" || I(uint64(7)) != "7" {
		t.Error("int formatting")
	}
}

func TestWriteDispatch(t *testing.T) {
	for _, f := range []Format{Text, CSV, JSON} {
		var buf bytes.Buffer
		if err := sample().Write(&buf, f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if buf.Len() == 0 {
			t.Fatalf("%s: empty output", f)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for in, want := range map[string]Format{
		"text": Text, "csv": CSV, "json": JSON, "JSON": JSON, " csv ": CSV, "": Text,
	} {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("ParseFormat accepted xml")
	}
}
