package ringq

import (
	"testing"
)

// FuzzQueueVsSlice cross-checks the ring against the plain-slice queue
// semantics it replaced in the pipeline (append to push, `s = s[1:]` to
// pop, `kept = s[:0]; append(kept, ...)` to filter). Every byte of the
// fuzz input is one operation; after each op the ring and the model must
// agree element-for-element.
func FuzzQueueVsSlice(f *testing.F) {
	f.Add([]byte{0, 0, 1, 0, 0, 0, 2, 1, 1, 3, 0, 4})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add([]byte{0, 2, 0, 2, 0, 2, 0, 2, 3, 0, 0, 4, 0, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		q := New[int](2)
		var model []int
		next := 0
		check := func(op string) {
			if q.Len() != len(model) {
				t.Fatalf("after %s: len %d, model %d", op, q.Len(), len(model))
			}
			for i, want := range model {
				if got := *q.At(i); got != want {
					t.Fatalf("after %s: At(%d) = %d, model %d", op, i, got, want)
				}
			}
			if len(model) == 0 {
				if q.Front() != nil {
					t.Fatalf("after %s: Front non-nil on empty", op)
				}
			} else if *q.Front() != model[0] {
				t.Fatalf("after %s: Front = %d, model %d", op, *q.Front(), model[0])
			}
		}
		for _, b := range ops {
			switch b % 5 {
			case 0: // push
				q.PushBack(next)
				model = append(model, next)
				next++
				check("push")
			case 1: // pop front (the `s = s[1:]` idiom)
				if len(model) > 0 {
					q.PopFront()
					model = model[1:]
				}
				check("pop")
			case 2: // push via PushSlot
				p := q.PushSlot()
				*p = next
				model = append(model, next)
				next++
				check("pushslot")
			case 3: // filter: keep evens (the kept-compaction idiom)
				q.Filter(func(p *int) bool { return *p%2 == 0 })
				kept := model[:0]
				for _, v := range model {
					if v%2 == 0 {
						kept = append(kept, v)
					}
				}
				model = kept
				check("filter")
			case 4: // clear (flush-drain)
				q.Clear()
				model = model[:0]
				check("clear")
			}
		}
	})
}
