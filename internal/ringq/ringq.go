// Package ringq provides the fixed-capacity ring buffer behind the cycle
// loop's queues (DESIGN.md §17). The simulator's steady state must not
// allocate: every per-cycle queue — fetch groups in flight to decode, the
// rename queue, pending resolutions, resync checks — is a Queue whose
// backing array is sized once from the machine configuration and then
// recycled forever. Growth is kept as a safety valve (semantics over
// stalls for queues whose architectural bound is indirect), but a
// correctly sized queue never grows after warmup.
//
// Queue is deliberately not concurrency-safe: it lives inside a single
// simulated machine, and the sim core is single-goroutine by construction.
package ringq

// Queue is a FIFO ring over a contiguous backing array. The zero value is
// unusable; construct with New.
//
// Slots are stable: Front/At return pointers into the backing array that
// remain valid until the queue grows (which only happens on PushBack or
// PushSlot beyond capacity). Value types that own recyclable storage
// (e.g. a fetch group's uops slice) should be pushed with PushSlot, which
// exposes the retired slot's previous contents for reuse instead of
// overwriting them.
type Queue[T any] struct {
	buf  []T
	head int
	n    int
}

// New returns a queue with the given initial capacity (minimum 1).
func New[T any](capacity int) *Queue[T] {
	if capacity < 1 {
		capacity = 1
	}
	return &Queue[T]{buf: make([]T, capacity)}
}

// Len returns the number of queued elements.
func (q *Queue[T]) Len() int { return q.n }

// Cap returns the current capacity.
func (q *Queue[T]) Cap() int { return len(q.buf) }

// Empty reports an empty queue.
func (q *Queue[T]) Empty() bool { return q.n == 0 }

// Full reports that the next push will grow the backing array.
func (q *Queue[T]) Full() bool { return q.n == len(q.buf) }

// slot maps a logical index (0 = front) to a backing index.
func (q *Queue[T]) slot(i int) int {
	s := q.head + i
	if s >= len(q.buf) {
		s -= len(q.buf)
	}
	return s
}

// grow doubles the backing array, unwrapping the ring so the front lands
// at index 0. Existing slot pointers are invalidated; steady-state code
// never triggers it after warmup.
func (q *Queue[T]) grow() {
	nb := make([]T, 2*len(q.buf))
	for i := 0; i < q.n; i++ {
		nb[i] = q.buf[q.slot(i)]
	}
	q.buf = nb
	q.head = 0
}

// PushBack appends v to the tail, growing if full.
func (q *Queue[T]) PushBack(v T) {
	*q.PushSlot() = v
}

// PushSlot claims the next tail slot and returns a pointer to it WITHOUT
// clearing it: the slot still holds whatever value last occupied it (a
// zero T if never used). Callers that pool per-slot storage reset the
// fields they care about and recycle the rest; callers that want plain
// queue semantics should use PushBack.
func (q *Queue[T]) PushSlot() *T {
	if q.n == len(q.buf) {
		q.grow()
	}
	p := &q.buf[q.slot(q.n)]
	q.n++
	return p
}

// Front returns the oldest element, or nil when empty.
func (q *Queue[T]) Front() *T {
	if q.n == 0 {
		return nil
	}
	return &q.buf[q.head]
}

// At returns the i-th oldest element (0 = front), or nil when out of
// range.
func (q *Queue[T]) At(i int) *T {
	if i < 0 || i >= q.n {
		return nil
	}
	return &q.buf[q.slot(i)]
}

// PopFront removes the oldest element. The slot's value is left in place
// for PushSlot recycling.
func (q *Queue[T]) PopFront() {
	if q.n == 0 {
		//lint:allow panic ring invariant: callers check Len/Front before popping; underflow means a modeling bug
		panic("ringq: PopFront on empty queue")
	}
	q.head++
	if q.head == len(q.buf) {
		q.head = 0
	}
	q.n--
}

// PopBack abandons the newest element — the undo of a PushSlot whose
// producer turned out to have nothing to enqueue. The slot's value is left
// in place for recycling.
func (q *Queue[T]) PopBack() {
	if q.n == 0 {
		//lint:allow panic ring invariant: PopBack only undoes a PushSlot the caller just made
		panic("ringq: PopBack on empty queue")
	}
	q.n--
}

// Clear empties the queue without touching slot contents (pooled storage
// survives for PushSlot reuse).
func (q *Queue[T]) Clear() {
	q.head, q.n = 0, 0
}

// Filter keeps, in order, the elements for which keep returns true,
// compacting them toward the front. keep may mutate the element through
// its pointer. Dropped elements' slots are overwritten by later kept
// elements (or left stale past the new tail), matching the semantics of
// the `kept = append(kept[:0], ...)` slice idiom this replaces.
func (q *Queue[T]) Filter(keep func(*T) bool) {
	w := 0
	for i := 0; i < q.n; i++ {
		p := &q.buf[q.slot(i)]
		if !keep(p) {
			continue
		}
		if w != i {
			q.buf[q.slot(w)] = *p
		}
		w++
	}
	q.n = w
}
