package ringq

import (
	"testing"
)

func drain(q *Queue[int]) []int {
	var out []int
	for q.Len() > 0 {
		out = append(out, *q.Front())
		q.PopFront()
	}
	return out
}

func TestFIFOOrder(t *testing.T) {
	q := New[int](4)
	for i := 0; i < 4; i++ {
		q.PushBack(i)
	}
	if !q.Full() {
		t.Fatalf("queue should be full at capacity: len=%d cap=%d", q.Len(), q.Cap())
	}
	got := drain(q)
	for i, v := range got {
		if v != i {
			t.Fatalf("FIFO order broken: got %v", got)
		}
	}
	if !q.Empty() {
		t.Fatalf("queue not empty after drain")
	}
}

// TestWraparound pushes and pops across the backing-array seam many times
// at constant occupancy, so head walks through every slot repeatedly.
func TestWraparound(t *testing.T) {
	q := New[int](3)
	next := 0
	// Prime to occupancy 2.
	for ; next < 2; next++ {
		q.PushBack(next)
	}
	expect := 0
	for i := 0; i < 100; i++ {
		q.PushBack(next)
		next++
		if got := *q.Front(); got != expect {
			t.Fatalf("iteration %d: front = %d, want %d", i, got, expect)
		}
		q.PopFront()
		expect++
		if q.Len() != 2 {
			t.Fatalf("iteration %d: len = %d, want 2", i, q.Len())
		}
		if q.Cap() != 3 {
			t.Fatalf("iteration %d: queue grew to cap %d at constant occupancy", i, q.Cap())
		}
	}
}

// TestGrowthUnwraps fills a wrapped ring past capacity and checks order
// survives the doubling.
func TestGrowthUnwraps(t *testing.T) {
	q := New[int](4)
	// Wrap: push 4, pop 2, push 2 more → head mid-array.
	for i := 0; i < 4; i++ {
		q.PushBack(i)
	}
	q.PopFront()
	q.PopFront()
	q.PushBack(4)
	q.PushBack(5)
	// Now full and wrapped; next push grows.
	q.PushBack(6)
	if q.Cap() != 8 {
		t.Fatalf("cap after growth = %d, want 8", q.Cap())
	}
	got := drain(q)
	want := []int{2, 3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("drained %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drained %v, want %v", got, want)
		}
	}
}

func TestAt(t *testing.T) {
	q := New[int](4)
	// Wrap head to index 2.
	for i := 0; i < 4; i++ {
		q.PushBack(-1)
	}
	q.PopFront()
	q.PopFront()
	q.PopFront()
	q.PopFront()
	for i := 10; i < 13; i++ {
		q.PushBack(i)
	}
	for i := 0; i < 3; i++ {
		if got := *q.At(i); got != 10+i {
			t.Fatalf("At(%d) = %d, want %d", i, got, 10+i)
		}
	}
	if q.At(-1) != nil || q.At(3) != nil {
		t.Fatalf("At out of range must return nil")
	}
	if New[int](1).Front() != nil {
		t.Fatalf("Front of empty queue must return nil")
	}
}

// TestPushSlotRecyclesStorage verifies the pooling contract: a slot freed
// by PopFront hands back its previous contents on the next PushSlot, so a
// struct holding a slice can reuse that slice's backing array.
func TestPushSlotRecyclesStorage(t *testing.T) {
	type group struct {
		uops []int
		id   int
	}
	q := New[group](2)
	g := q.PushSlot()
	g.id = 1
	g.uops = append(g.uops[:0], 1, 2, 3)
	firstBacking := &g.uops[0]
	q.PopFront()

	// Cycle once around the ring back to the same slot.
	q.PushSlot()
	q.PopFront()
	g2 := q.PushSlot()
	if g2.id != 1 || len(g2.uops) != 3 {
		t.Fatalf("slot contents not recycled: %+v", *g2)
	}
	g2.uops = g2.uops[:0]
	g2.uops = append(g2.uops, 9)
	if &g2.uops[0] != firstBacking {
		t.Fatalf("uops backing array was reallocated instead of recycled")
	}
}

func TestFilter(t *testing.T) {
	q := New[int](4)
	// Wrap so the filter crosses the seam.
	for i := 0; i < 3; i++ {
		q.PushBack(-1)
	}
	q.PopFront()
	q.PopFront()
	q.PopFront()
	for i := 0; i < 4; i++ {
		q.PushBack(i)
	}
	q.Filter(func(p *int) bool { return *p%2 == 0 })
	got := drain(q)
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("filter kept %v, want [0 2]", got)
	}

	q.Clear()
	q.PushBack(7)
	q.Filter(func(p *int) bool { *p *= 10; return true })
	if got := *q.Front(); got != 70 {
		t.Fatalf("filter must allow mutation through the pointer: got %d", got)
	}
}

func TestPopBack(t *testing.T) {
	q := New[int](2)
	q.PushBack(1)
	q.PushBack(2)
	q.PopBack()
	if q.Len() != 1 || *q.Front() != 1 {
		t.Fatalf("PopBack must drop only the newest element: len=%d", q.Len())
	}
	q.PopBack()
	defer func() {
		if recover() == nil {
			t.Fatalf("PopBack on empty queue must panic")
		}
	}()
	q.PopBack()
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("PopFront on empty queue must panic")
		}
	}()
	New[int](1).PopFront()
}

func TestClear(t *testing.T) {
	q := New[int](2)
	q.PushBack(1)
	q.PushBack(2)
	q.PushBack(3) // grown
	q.Clear()
	if q.Len() != 0 || q.Front() != nil {
		t.Fatalf("Clear left elements behind")
	}
	q.PushBack(4)
	if *q.Front() != 4 {
		t.Fatalf("push after Clear broken")
	}
}
