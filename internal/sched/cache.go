package sched

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key content-addresses a job: it hashes the JSON encoding of its parts
// (configuration, workload identity, warmup, measure, ...) so two submits
// describing the same simulation collide and the second is served from
// cache. Parts must be JSON-encodable; encoding failures fold the error
// string into the hash, which still yields a stable, collision-safe key.
func Key(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			fmt.Fprintf(h, "!err:%v", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a bounded LRU result cache keyed by content address.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key   string
	value any
}

// NewCache returns an LRU cache holding at most max results (max <= 0
// selects the 512-entry default).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 512
	}
	return &Cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached value for key, counting a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores value under key, evicting the least-recently-used entry when
// full.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key, value})
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.order.Len(), Hits: c.hits, Misses: c.misses}
}
