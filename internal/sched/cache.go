package sched

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"
)

// Key content-addresses a job: it hashes the JSON encoding of its parts
// (configuration, workload identity, warmup, measure, ...) so two submits
// describing the same simulation collide and the second is served from
// cache. Parts must be JSON-encodable; encoding failures fold the error
// string into the hash, which still yields a stable, collision-safe key.
func Key(parts ...any) string {
	h := sha256.New()
	enc := json.NewEncoder(h)
	for _, p := range parts {
		if err := enc.Encode(p); err != nil {
			fmt.Fprintf(h, "!err:%v", err)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Cache is a bounded LRU result cache keyed by content address.
type Cache struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element whose Value is *cacheEntry
	bytes   int64                    // sum of entry approxSize
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key   string
	value any
	size  int64 // approximate bytes: key + JSON encoding of value
}

// approxSize estimates one entry's footprint as the key length plus the
// length of the value's JSON encoding — approximate (it ignores Go object
// overhead) but cheap relative to producing the value, stable, and good
// enough to size a cache on /debug/stats.
func approxSize(key string, value any) int64 {
	n := int64(len(key))
	if b, err := json.Marshal(value); err == nil {
		n += int64(len(b))
	} else {
		n += int64(len(fmt.Sprintf("%v", value)))
	}
	return n
}

// NewCache returns an LRU cache holding at most max results (max <= 0
// selects the 512-entry default).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 512
	}
	return &Cache{max: max, order: list.New(), entries: make(map[string]*list.Element)}
}

// Get returns the cached value for key, counting a hit or a miss.
func (c *Cache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).value, true
}

// Put stores value under key, evicting the least-recently-used entry when
// full.
func (c *Cache) Put(key string, value any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	size := approxSize(key, value)
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.bytes += size - e.size
		e.value, e.size = value, size
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value, size: size})
	c.bytes += size
	if c.order.Len() > c.max {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		e := oldest.Value.(*cacheEntry)
		delete(c.entries, e.key)
		c.bytes -= e.size
	}
}

// Len reports the number of live entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Remove drops key from the cache, reporting whether it was present.
func (c *Cache) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return false
	}
	c.order.Remove(el)
	e := el.Value.(*cacheEntry)
	delete(c.entries, e.key)
	c.bytes -= e.size
	return true
}

// CacheStats is a point-in-time cache counter snapshot.
type CacheStats struct {
	Entries int `json:"entries"`
	// Bytes approximates the live footprint (keys + JSON-encoded values).
	Bytes  int64  `json:"bytes"`
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.order.Len(), Bytes: c.bytes, Hits: c.hits, Misses: c.misses}
}
