// Package sched is the serving layer's job engine: a bounded worker-pool
// scheduler with a content-addressed result cache. cmd/elfd submits
// simulation closures here; identical submissions (same config, workload,
// warmup, measure) coalesce while in flight and are served from cache once
// complete, so repeated figure/sweep requests cost one simulation.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"elfetch/internal/obs"
)

// Task is one unit of work. It must honour ctx: the scheduler relies on
// tasks returning promptly after cancellation (simulations poll their
// context every few thousand cycles via pipeline.Machine.RunContext).
type Task func(ctx context.Context) (any, error)

// State is a job's lifecycle position.
type State string

// Job states. Terminal states are Done, Failed and Canceled.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether a job in this state will never run again.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Submission errors.
var (
	ErrQueueFull = errors.New("sched: queue full")
	ErrShutdown  = errors.New("sched: scheduler shut down")
)

// Config sizes the scheduler.
type Config struct {
	// Workers is the worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds queued-but-not-running jobs (0 = 64). Submissions
	// beyond it fail fast with ErrQueueFull.
	QueueDepth int
	// JobTimeout bounds one job's runtime (0 = unlimited).
	JobTimeout time.Duration
	// CacheSize bounds the result cache (0 = 512 entries).
	CacheSize int
	// Metrics, when non-nil, receives the scheduler's operational metrics
	// (queue depth, job latency, cache hit/miss, per-outcome job counts)
	// as Prometheus-exposable registry entries.
	Metrics *obs.Registry
}

// Job is one scheduled task. All fields are private; read through
// Status(), wait through Done‑channel semantics via Wait().
type Job struct {
	id    string
	key   string
	label string
	task  Task

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     State
	cached    bool
	result    any
	err       error
	submitted time.Time
	started   time.Time
	finished  time.Time
}

// ID returns the job's scheduler-assigned identifier.
func (j *Job) ID() string { return j.id }

// Wait blocks until the job reaches a terminal state or ctx is done. It
// cancels the job when its own wait context expires, which is how elfd
// propagates a client abort into the simulation: the caller waits with the
// HTTP request context, the client hangs up, the job cancels.
func (j *Job) Wait(ctx context.Context) (JobStatus, error) {
	select {
	case <-j.done:
		return j.Status(), nil
	case <-ctx.Done():
		j.Cancel()
		return j.Status(), ctx.Err()
	}
}

// Cancel aborts the job. A queued job never runs; a running job's context
// is cancelled and it finishes as Canceled. Cancelling a terminal job is a
// no-op. Note a coalesced job is shared: cancelling it cancels it for
// every submitter.
func (j *Job) Cancel() {
	j.cancel()
	j.mu.Lock()
	if j.state == Queued {
		j.finish(Canceled, nil, context.Canceled)
	}
	j.mu.Unlock()
}

// finish moves to a terminal state. Caller holds j.mu.
func (j *Job) finish(s State, result any, err error) {
	if j.state.Terminal() {
		return
	}
	j.state = s
	j.result = result
	j.err = err
	j.finished = time.Now()
	close(j.done)
}

// JobStatus is the JSON-friendly snapshot of a job.
type JobStatus struct {
	ID        string     `json:"id"`
	Label     string     `json:"label,omitempty"`
	Key       string     `json:"key,omitempty"`
	State     State      `json:"state"`
	Cached    bool       `json:"cached"`
	Submitted time.Time  `json:"submitted"`
	Started   *time.Time `json:"started,omitempty"`
	Finished  *time.Time `json:"finished,omitempty"`
	Error     string     `json:"error,omitempty"`
	Result    any        `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID: j.id, Label: j.label, Key: j.key, State: j.state,
		Cached: j.cached, Submitted: j.submitted,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if j.state == Done {
		st.Result = j.result
	}
	return st
}

// Stats is a scheduler counter snapshot (served by elfd's /debug/stats).
type Stats struct {
	Workers     int     `json:"workers"`
	QueueDepth  int     `json:"queueDepth"`
	Queued      int     `json:"queued"`
	Running     int     `json:"running"`
	Submitted   uint64  `json:"submitted"`
	Completed   uint64  `json:"completed"`
	Failed      uint64  `json:"failed"`
	Canceled    uint64  `json:"canceled"`
	Coalesced   uint64  `json:"coalesced"`
	TaskSeconds float64 `json:"taskSeconds"`
	// QueueHighWater is the deepest the queue has been since start — the
	// capacity-planning companion to the instantaneous Queued.
	QueueHighWater int        `json:"queueHighWater"`
	Cache          CacheStats `json:"cache"`
}

// metrics is the scheduler's registry wiring (nil when Config.Metrics is
// nil; every use is behind a nil check).
type metrics struct {
	submitted  *obs.Counter
	coalesced  *obs.Counter
	done       *obs.Counter
	failed     *obs.Counter
	canceled   *obs.Counter
	cacheHit   *obs.Counter
	cacheMiss  *obs.Counter
	jobSeconds *obs.Histogram
}

// newMetrics registers the scheduler's metric families on reg. Gauges are
// computed at scrape time from the scheduler itself.
func newMetrics(reg *obs.Registry, s *Scheduler) *metrics {
	m := &metrics{
		submitted: reg.Counter("elfd_sched_jobs_submitted_total",
			"Jobs accepted into the queue."),
		coalesced: reg.Counter("elfd_sched_jobs_coalesced_total",
			"Submissions that joined an identical in-flight job."),
		done: reg.Counter("elfd_sched_jobs_total",
			"Jobs finished, by outcome.", obs.L("outcome", "done")),
		failed: reg.Counter("elfd_sched_jobs_total",
			"Jobs finished, by outcome.", obs.L("outcome", "failed")),
		canceled: reg.Counter("elfd_sched_jobs_total",
			"Jobs finished, by outcome.", obs.L("outcome", "canceled")),
		// One family across exec.Local and the elfd worker path (both wire
		// their scheduler here), so federated views sum a single series.
		cacheHit: reg.Counter("elf_cache_requests_total",
			"Result-cache lookups, by result.", obs.L("result", "hit")),
		cacheMiss: reg.Counter("elf_cache_requests_total",
			"Result-cache lookups, by result.", obs.L("result", "miss")),
		jobSeconds: reg.Histogram("elfd_sched_job_seconds",
			"Wall-clock runtime of executed jobs.",
			obs.ExpBuckets(0.005, 4, 8)),
	}
	reg.GaugeFunc("elfd_sched_queue_depth",
		"Jobs queued but not yet running.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("elfd_sched_queue_high_water",
		"Deepest queue occupancy since start.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.queueHW) })
	reg.GaugeFunc("elfd_sched_running",
		"Jobs currently executing.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.running) })
	reg.GaugeFunc("elfd_sched_workers",
		"Worker-pool size.",
		func() float64 { return float64(s.cfg.Workers) })
	reg.GaugeFunc("elfd_sched_cache_entries",
		"Live result-cache entries.",
		func() float64 { return float64(s.cache.Len()) })
	reg.GaugeFunc("elfd_sched_cache_bytes",
		"Approximate result-cache footprint (keys + JSON-encoded values).",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	return m
}

// Scheduler runs submitted jobs on a bounded worker pool.
type Scheduler struct {
	cfg   Config
	cache *Cache
	queue chan *Job
	// base is the root every job context derives from, so Shutdown can
	// cancel all in-flight work at once; it is process-scoped, not
	// request-scoped, which is why storing it here is sound.
	//lint:ignore ctx the scheduler is the context root jobs derive from (Shutdown cancels through it)
	base   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job // every job ever submitted, by id
	inflight map[string]*Job // queued/running cacheable jobs, by key
	seq      uint64
	closed   bool

	running     int
	queueHW     int
	submitted   uint64
	completed   uint64
	failed      uint64
	canceled    uint64
	coalesced   uint64
	taskSeconds float64

	met *metrics // nil unless Config.Metrics was set
}

// New starts a scheduler sized by cfg.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Scheduler{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheSize),
		queue:    make(chan *Job, cfg.QueueDepth),
		base:     ctx,
		cancel:   cancel,
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
	if cfg.Metrics != nil {
		s.met = newMetrics(cfg.Metrics, s)
	}
	for w := 0; w < cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Cache exposes the result cache (for stats).
func (s *Scheduler) Cache() *Cache { return s.cache }

// Submit queues a task. key content-addresses the job ("" = uncacheable):
// a completed key is answered from cache without running anything (the
// returned job is born Done with Cached set), and a key already queued or
// running coalesces onto the in-flight job, which is returned as-is.
func (s *Scheduler) Submit(label, key string, task Task) (*Job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShutdown
	}
	if key != "" {
		if v, ok := s.cache.Get(key); ok {
			if s.met != nil {
				s.met.cacheHit.Inc()
			}
			j := s.newJobLocked(label, key)
			j.cached = true
			j.mu.Lock()
			j.finish(Done, v, nil)
			j.mu.Unlock()
			return j, nil
		}
		if s.met != nil {
			s.met.cacheMiss.Inc()
		}
		if infl, ok := s.inflight[key]; ok {
			s.coalesced++
			if s.met != nil {
				s.met.coalesced.Inc()
			}
			return infl, nil
		}
	}
	j := s.newJobLocked(label, key)
	j.task = task
	select {
	case s.queue <- j:
	default:
		delete(s.jobs, j.id)
		return nil, fmt.Errorf("%w (depth %d)", ErrQueueFull, s.cfg.QueueDepth)
	}
	if key != "" {
		s.inflight[key] = j
	}
	s.submitted++
	if depth := len(s.queue); depth > s.queueHW {
		s.queueHW = depth
	}
	if s.met != nil {
		s.met.submitted.Inc()
	}
	return j, nil
}

// newJobLocked allocates and registers a job. Caller holds s.mu.
func (s *Scheduler) newJobLocked(label, key string) *Job {
	s.seq++
	ctx, cancel := context.WithCancel(s.base)
	j := &Job{
		id:        fmt.Sprintf("j%06d", s.seq),
		key:       key,
		label:     label,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     Queued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	return j
}

// Get returns a submitted job by id.
func (s *Scheduler) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the counters.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Workers:        s.cfg.Workers,
		QueueDepth:     s.cfg.QueueDepth,
		Queued:         len(s.queue),
		Running:        s.running,
		Submitted:      s.submitted,
		Completed:      s.completed,
		Failed:         s.failed,
		Canceled:       s.canceled,
		Coalesced:      s.coalesced,
		TaskSeconds:    s.taskSeconds,
		QueueHighWater: s.queueHW,
		Cache:          s.cache.Stats(),
	}
}

// Shutdown stops accepting jobs and waits for the pool to drain. If ctx
// expires first, every outstanding job is cancelled and Shutdown waits for
// the workers to notice before returning ctx.Err().
func (s *Scheduler) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		s.cancel() // abort in-flight simulations
		<-drained
		return ctx.Err()
	}
}

func (s *Scheduler) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one job to a terminal state.
func (s *Scheduler) run(j *Job) {
	j.mu.Lock()
	if j.state != Queued { // cancelled while queued
		j.mu.Unlock()
		s.retire(j, Canceled, 0, false)
		return
	}
	j.state = Running
	j.started = time.Now()
	j.mu.Unlock()
	s.mu.Lock()
	s.running++
	s.mu.Unlock()

	ctx := j.ctx
	if s.cfg.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer cancel()
	}
	result, err := runTask(ctx, j.task)

	state := Done
	switch {
	case err == nil:
		if j.key != "" {
			s.cache.Put(j.key, result)
		}
	case errors.Is(err, context.Canceled):
		state = Canceled
	default:
		state = Failed
	}
	j.mu.Lock()
	j.finish(state, result, err)
	elapsed := j.finished.Sub(j.started).Seconds()
	j.mu.Unlock()
	s.retire(j, state, elapsed, true)
}

// retire updates scheduler counters and the in-flight index.
func (s *Scheduler) retire(j *Job, state State, seconds float64, ran bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.key != "" && s.inflight[j.key] == j {
		delete(s.inflight, j.key)
	}
	if ran {
		s.running--
		if s.met != nil {
			s.met.jobSeconds.Observe(seconds)
		}
	}
	s.taskSeconds += seconds
	switch state {
	case Done:
		s.completed++
		if s.met != nil {
			s.met.done.Inc()
		}
	case Failed:
		s.failed++
		if s.met != nil {
			s.met.failed.Inc()
		}
	case Canceled:
		s.canceled++
		if s.met != nil {
			s.met.canceled.Inc()
		}
	}
}

// runTask calls the task, converting a panic into an error so one bad
// config cannot take down the serving pool.
func runTask(ctx context.Context, task Task) (result any, err error) {
	defer func() {
		if r := recover(); r != nil {
			result, err = nil, fmt.Errorf("sched: task panicked: %v", r)
		}
	}()
	return task(ctx)
}
