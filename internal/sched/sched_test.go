package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func waitDone(t *testing.T, j *Job) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := j.Wait(ctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	return st
}

func TestSubmitRunsAndCaches(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Shutdown(context.Background())

	var calls int
	var mu sync.Mutex
	task := func(ctx context.Context) (any, error) {
		mu.Lock()
		calls++
		mu.Unlock()
		return 42, nil
	}
	key := Key("cfg", "wl", 1, 2)
	j1, err := s.Submit("first", key, task)
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j1)
	if st.State != Done || st.Result != 42 || st.Cached {
		t.Fatalf("first job: %+v", st)
	}

	j2, err := s.Submit("second", key, task)
	if err != nil {
		t.Fatal(err)
	}
	st2 := waitDone(t, j2)
	if st2.State != Done || st2.Result != 42 || !st2.Cached {
		t.Fatalf("second job not served from cache: %+v", st2)
	}
	if j2.ID() == j1.ID() {
		t.Error("cache hit should mint a fresh job id")
	}
	mu.Lock()
	if calls != 1 {
		t.Errorf("task ran %d times, want 1", calls)
	}
	mu.Unlock()
	cs := s.Stats().Cache
	if cs.Hits != 1 || cs.Misses != 1 || cs.Entries != 1 {
		t.Errorf("cache stats: %+v", cs)
	}
}

func TestInflightCoalescing(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	release := make(chan struct{})
	task := func(ctx context.Context) (any, error) {
		<-release
		return "v", nil
	}
	key := Key("same")
	j1, err := s.Submit("a", key, task)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit("b", key, task)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight submissions should coalesce onto one job")
	}
	close(release)
	if st := waitDone(t, j2); st.State != Done || st.Result != "v" {
		t.Fatalf("coalesced job: %+v", st)
	}
	if got := s.Stats().Coalesced; got != 1 {
		t.Errorf("coalesced = %d, want 1", got)
	}
}

func TestQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Shutdown(context.Background())

	block := make(chan struct{})
	defer close(block)
	slow := func(ctx context.Context) (any, error) { <-block; return nil, nil }
	if _, err := s.Submit("running", "", slow); err != nil {
		t.Fatal(err)
	}
	// The worker may not have dequeued the first job yet; fill until full.
	deadline := time.Now().Add(5 * time.Second)
	n := 0
	for {
		_, err := s.Submit(fmt.Sprintf("q%d", n), "", slow)
		if errors.Is(err, ErrQueueFull) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		if n > 2 || time.Now().After(deadline) {
			t.Fatalf("queue never filled after %d extra submits", n)
		}
	}
}

func TestCancelRunningJob(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	started := make(chan struct{})
	task := func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}
	j, err := s.Submit("c", "", task)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j.Cancel()
	st := waitDone(t, j)
	if st.State != Canceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	if got := s.Stats().Canceled; got != 1 {
		t.Errorf("canceled counter = %d, want 1", got)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 4})
	defer s.Shutdown(context.Background())

	block := make(chan struct{})
	if _, err := s.Submit("blocker", "", func(ctx context.Context) (any, error) {
		<-block
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ran := false
	j, err := s.Submit("victim", "", func(ctx context.Context) (any, error) {
		ran = true
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	j.Cancel()
	if st := waitDone(t, j); st.State != Canceled {
		t.Fatalf("state = %s, want canceled", st.State)
	}
	close(block)
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled queued job still ran")
	}
}

func TestJobTimeout(t *testing.T) {
	s := New(Config{Workers: 1, JobTimeout: 20 * time.Millisecond})
	defer s.Shutdown(context.Background())

	j, err := s.Submit("slow", "", func(ctx context.Context) (any, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != Failed || st.Error == "" {
		t.Fatalf("timed-out job: %+v", st)
	}
}

func TestTaskPanicBecomesFailure(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Shutdown(context.Background())

	j, err := s.Submit("boom", "", func(ctx context.Context) (any, error) {
		panic("kaboom")
	})
	if err != nil {
		t.Fatal(err)
	}
	st := waitDone(t, j)
	if st.State != Failed || st.Error == "" {
		t.Fatalf("panicking job: %+v", st)
	}
	// The pool must survive: a follow-up job still runs.
	j2, err := s.Submit("after", "", func(ctx context.Context) (any, error) { return "ok", nil })
	if err != nil {
		t.Fatal(err)
	}
	if st := waitDone(t, j2); st.State != Done {
		t.Fatalf("job after panic: %+v", st)
	}
}

func TestShutdownDrainsAndRejects(t *testing.T) {
	s := New(Config{Workers: 2})
	var done int
	var mu sync.Mutex
	for i := 0; i < 8; i++ {
		if _, err := s.Submit("drain", "", func(ctx context.Context) (any, error) {
			mu.Lock()
			done++
			mu.Unlock()
			return nil, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	if done != 8 {
		t.Errorf("drained %d jobs, want 8", done)
	}
	mu.Unlock()
	if _, err := s.Submit("late", "", func(ctx context.Context) (any, error) { return nil, nil }); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown submit: %v", err)
	}
}

func TestShutdownDeadlineCancelsJobs(t *testing.T) {
	s := New(Config{Workers: 1})
	started := make(chan struct{})
	if _, err := s.Submit("hang", "", func(ctx context.Context) (any, error) {
		close(started)
		<-ctx.Done() // only a cancel releases this task
		return nil, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
}

func TestConcurrentSubmitStress(t *testing.T) {
	s := New(Config{Workers: 4, QueueDepth: 4096, CacheSize: 64})
	defer s.Shutdown(context.Background())

	var wg sync.WaitGroup
	jobs := make(chan *Job, 512)
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 64; i++ {
				key := Key("stress", i%16) // plenty of key collisions
				j, err := s.Submit("stress", key, func(ctx context.Context) (any, error) {
					return g, nil
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				jobs <- j
			}
		}()
	}
	wg.Wait()
	close(jobs)
	for j := range jobs {
		st := waitDone(t, j)
		if st.State != Done {
			t.Fatalf("stress job: %+v", st)
		}
	}
}

func TestKeyIsStableAndDiscriminating(t *testing.T) {
	a := Key("cfg", map[string]int{"x": 1}, 100)
	b := Key("cfg", map[string]int{"x": 1}, 100)
	c := Key("cfg", map[string]int{"x": 2}, 100)
	if a != b {
		t.Error("identical parts produced different keys")
	}
	if a == c {
		t.Error("different parts collided")
	}
}

// TestKeyFoldsEncodingErrors pins the documented fallback: a part that
// JSON cannot encode folds the error string into the hash instead of
// panicking, and the fold is still a stable, non-colliding key — two
// submits with the same unencodable part coalesce, and neither collides
// with an encodable part or a different unencodable one.
func TestKeyFoldsEncodingErrors(t *testing.T) {
	ch := make(chan int)
	a := Key("cfg", ch)
	b := Key("cfg", ch)
	if a != b {
		t.Error("identical unencodable parts produced different keys")
	}
	if c := Key("cfg", "encodable"); a == c {
		t.Error("error fold collided with an encodable part")
	}
	if d := Key("cfg", func() {}); a == d {
		t.Error("distinct unencodable types collided")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if _, ok := c.Get("a"); !ok { // touch a: now b is LRU
		t.Fatal("a missing")
	}
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Error("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Error("a should have survived")
	}
	if st := c.Stats(); st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}
