package store

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
)

// countingDialer wraps a Transport's DialContext so a test can assert how
// many TCP connections a request sequence actually opened. net/http only
// returns a connection to its idle pool when the response body was read
// to EOF before Close — so a missing drain on any path shows up here as
// an extra dial, not as a subtle production slowdown months later.
func countingClient(dials *atomic.Int32) *http.Client {
	tr := &http.Transport{
		DialContext: func(ctx context.Context, network, addr string) (net.Conn, error) {
			dials.Add(1)
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		},
	}
	return &http.Client{Transport: tr}
}

// TestPeerGetReusesConnections drives Peer.Get through every status arm —
// hit, 404 miss, unexpected 5xx — against one keep-alive server and
// requires the whole sequence to share a single connection. The 404 and
// 500 handlers deliberately write response bodies: those are the bytes
// the drain-before-close in Get exists to consume.
func TestPeerGetReusesConnections(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/cells/")
		switch key {
		case "hit":
			fmt.Fprint(w, `{"ipc":1.9}`)
		case "boom":
			http.Error(w, `{"error":{"code":"internal","message":"scheduler wedged"}}`,
				http.StatusInternalServerError)
		default:
			http.Error(w, "no such cell", http.StatusNotFound)
		}
	}))
	defer srv.Close()

	var dials atomic.Int32
	client := countingClient(&dials)
	defer client.CloseIdleConnections()
	p, err := NewPeer(PeerConfig{Base: srv.URL, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	for i, key := range []string{"hit", "miss", "boom", "miss", "hit", "boom"} {
		b, ok, err := p.Get(key)
		switch key {
		case "hit":
			if err != nil || !ok || string(b) != `{"ipc":1.9}` {
				t.Fatalf("Get(hit) #%d = (%q, %v, %v)", i, b, ok, err)
			}
		case "miss":
			if err != nil || ok {
				t.Fatalf("Get(miss) #%d = (_, %v, %v), want clean miss", i, ok, err)
			}
		default: // boom: miss with error
			if err == nil || ok {
				t.Fatalf("Get(%s) #%d = (_, %v, %v), want error", key, i, ok, err)
			}
		}
	}
	if n := dials.Load(); n != 1 {
		t.Errorf("request sequence opened %d connections, want 1 (a status arm is closing an undrained body)", n)
	}
}
