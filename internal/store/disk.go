package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"elfetch/internal/obs"
)

// Disk defaults.
const (
	// DefaultMaxBytes bounds a Disk built with MaxBytes <= 0 (1 GiB of
	// live record bytes).
	DefaultMaxBytes = 1 << 30
	// DefaultSegmentBytes rotates the active segment once it exceeds
	// this size (64 MiB), when MaxSegmentBytes is 0.
	DefaultSegmentBytes = 64 << 20
	// checksumLen is the sha256 trailer on every record.
	checksumLen = sha256.Size
	// recordHeaderLen is the length prefix: uint32 key length plus
	// uint32 value length, big-endian.
	recordHeaderLen = 8
	// maxKeyLen and maxValueLen bound one record's parts, so a corrupt
	// length prefix cannot make the opener allocate gigabytes.
	maxKeyLen   = 4 << 10
	maxValueLen = 64 << 20
)

// DiskConfig sizes the persistent tier.
type DiskConfig struct {
	// Dir is the store directory (created if missing). Segment files are
	// named seg-NNNNNNNN.log; nothing else in the directory is touched.
	Dir string
	// MaxBytes is the live-record quota (0 = DefaultMaxBytes).
	// Compaction evicts the oldest live entries beyond it.
	MaxBytes int64
	// MaxSegmentBytes is the rotation threshold (0 = DefaultSegmentBytes).
	MaxSegmentBytes int64
	// Metrics, when non-nil, receives the tier's elf_store_* families
	// under tier="disk".
	Metrics *obs.Registry
	// Events, when non-nil, receives store_hit_disk / store_fill /
	// store_compact flight-recorder events.
	Events *obs.Ring
	// Logger receives torn-tail and corruption warnings (nil =
	// slog.Default()).
	Logger *slog.Logger
}

// rec locates one live record inside a segment.
type rec struct {
	seg  int    // segment id
	off  int64  // offset of the record header within the segment
	klen int    // key length
	vlen int    // value length
	seq  uint64 // insertion order, for oldest-first eviction
}

func (r rec) size() int64 {
	return recordHeaderLen + int64(r.klen) + int64(r.vlen) + checksumLen
}

// Disk is the persistent tier: append-only segment files of
// length-prefixed, sha256-checksummed records, with an in-memory index
// rebuilt on open.
//
// Record format (all integers big-endian):
//
//	uint32 keyLen | uint32 valLen | key | value | sha256(key ‖ value)
//
// Crash-safety contract: Put appends; the OS may lose an unsynced tail
// on a crash, and a torn final record is detected by its length prefix
// or checksum on the next open, logged, and truncated away — every
// record before it survives intact. Rotation, compaction and Close
// fsync, so a clean shutdown loses nothing. Compaction rewrites the live
// set into fresh segments (superseded records dropped, oldest live
// entries evicted beyond the quota) and installs them with atomic
// renames before deleting the originals, so a crash mid-compaction
// leaves either the old segments, or both (the rewritten records simply
// supersede on replay) — never a hole.
type Disk struct {
	cfg DiskConfig
	log *slog.Logger

	mu      sync.Mutex
	index   map[string]rec
	files   map[int]*os.File // open segment handles (reads via ReadAt)
	segIDs  []int            // sorted live segment ids
	active  int              // id of the append segment
	actSize int64            // bytes written to the active segment

	liveBytes  int64 // record bytes reachable through the index
	totalBytes int64 // record bytes on disk, including superseded
	seq        uint64
	closed     bool

	hits        uint64
	misses      uint64
	puts        uint64
	compactions uint64
	errs        uint64

	met *tierMetrics
}

// errClosed reports an operation on a closed tier.
func errClosed(tier string) error { return fmt.Errorf("store: %s tier is closed", tier) }

// Open opens (or creates) a disk store rooted at cfg.Dir, replaying
// every segment to rebuild the index. A torn or truncated tail — the
// signature of a crash mid-append — is logged and dropped; everything
// before it is served.
func Open(cfg DiskConfig) (*Disk, error) {
	if cfg.Dir == "" {
		return nil, errors.New("store: DiskConfig.Dir is required")
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	if cfg.MaxSegmentBytes <= 0 {
		cfg.MaxSegmentBytes = DefaultSegmentBytes
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.Default()
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	d := &Disk{
		cfg:   cfg,
		log:   cfg.Logger,
		index: make(map[string]rec),
		files: make(map[int]*os.File),
	}
	if err := d.load(); err != nil {
		d.closeFilesLocked()
		return nil, err
	}
	d.met = newTierMetrics(cfg.Metrics, "disk", d.stats)
	return d, nil
}

// segPath names one segment file.
func (d *Disk) segPath(id int) string {
	return filepath.Join(d.cfg.Dir, fmt.Sprintf("seg-%08d.log", id))
}

// segIDsOnDisk lists existing segment ids in ascending order.
func segIDsOnDisk(dir string) ([]int, error) {
	names, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil {
		return nil, err
	}
	var ids []int
	for _, n := range names {
		var id int
		if _, err := fmt.Sscanf(filepath.Base(n), "seg-%08d.log", &id); err == nil {
			ids = append(ids, id)
		}
	}
	sort.Ints(ids)
	return ids, nil
}

// load replays every segment into the index and prepares the active
// segment for appends. Caller holds no lock (construction only).
func (d *Disk) load() error {
	ids, err := segIDsOnDisk(d.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	for _, id := range ids {
		f, err := os.OpenFile(d.segPath(id), os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		good, err := d.replay(id, f)
		if err != nil {
			f.Close()
			return err
		}
		fi, err := f.Stat()
		if err != nil {
			f.Close()
			return fmt.Errorf("store: %w", err)
		}
		if good < fi.Size() {
			// Torn tail: a crash mid-append left a partial or corrupt
			// record. Drop it so future appends extend a clean prefix.
			d.log.Warn("store: dropping torn segment tail",
				"segment", d.segPath(id), "goodBytes", good, "fileBytes", fi.Size())
			if err := f.Truncate(good); err != nil {
				f.Close()
				return fmt.Errorf("store: truncating torn tail: %w", err)
			}
		}
		d.files[id] = f
		d.segIDs = append(d.segIDs, id)
		d.totalBytes += good
	}
	if len(d.segIDs) == 0 {
		if err := d.openActiveLocked(1); err != nil {
			return err
		}
	} else {
		d.active = d.segIDs[len(d.segIDs)-1]
		fi, err := d.files[d.active].Stat()
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		d.actSize = fi.Size()
	}
	for _, r := range d.index {
		d.liveBytes += r.size()
	}
	return nil
}

// replay scans one segment sequentially, indexing every intact record.
// It returns the offset just past the last good record; anything beyond
// it is torn or corrupt.
func (d *Disk) replay(id int, f *os.File) (int64, error) {
	br := bufferedReaderAt{f: f}
	var off int64
	for {
		var hdr [recordHeaderLen]byte
		if _, err := br.readFull(off, hdr[:]); err != nil {
			return off, nil // clean EOF or short header = end of good data
		}
		klen := int(binary.BigEndian.Uint32(hdr[0:4]))
		vlen := int(binary.BigEndian.Uint32(hdr[4:8]))
		if klen <= 0 || klen > maxKeyLen || vlen < 0 || vlen > maxValueLen {
			d.log.Warn("store: implausible record header, stopping replay",
				"segment", d.segPath(id), "offset", off, "keyLen", klen, "valLen", vlen)
			return off, nil
		}
		body := make([]byte, klen+vlen+checksumLen)
		if _, err := br.readFull(off+recordHeaderLen, body); err != nil {
			return off, nil // truncated body
		}
		key := body[:klen]
		val := body[klen : klen+vlen]
		sum := sha256.Sum256(body[:klen+vlen])
		if !bytes.Equal(sum[:], body[klen+vlen:]) {
			d.log.Warn("store: record checksum mismatch, stopping replay",
				"segment", d.segPath(id), "offset", off, "key", shortKey(string(key)))
			return off, nil
		}
		_ = val
		d.seq++
		d.index[string(key)] = rec{seg: id, off: off, klen: klen, vlen: vlen, seq: d.seq}
		off += recordHeaderLen + int64(klen+vlen+checksumLen)
	}
}

// bufferedReaderAt reads sequentially via ReadAt without seeking the
// file's append offset.
type bufferedReaderAt struct{ f *os.File }

func (b bufferedReaderAt) readFull(off int64, p []byte) (int, error) {
	n, err := b.f.ReadAt(p, off)
	if n < len(p) {
		if err == nil {
			err = io.ErrUnexpectedEOF
		}
		return n, err
	}
	return n, nil
}

// openActiveLocked creates segment id and makes it the append target.
func (d *Disk) openActiveLocked(id int) error {
	f, err := os.OpenFile(d.segPath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	d.files[id] = f
	d.segIDs = append(d.segIDs, id)
	sort.Ints(d.segIDs)
	d.active = id
	d.actSize = 0
	return d.syncDir()
}

// syncDir flushes directory metadata so newly created/renamed segment
// files survive a crash.
func (d *Disk) syncDir() error {
	dir, err := os.Open(d.cfg.Dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	err = dir.Sync()
	if cerr := dir.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// record appends one event when a ring is configured.
func (d *Disk) record(kind, detail string) {
	if d.cfg.Events != nil {
		d.cfg.Events.Add(obs.Event{Kind: kind, Worker: "store", Detail: detail})
	}
}

// encodeRecord renders one record into a buffer.
func encodeRecord(key string, value []byte) []byte {
	buf := make([]byte, recordHeaderLen+len(key)+len(value)+checksumLen)
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(key)))
	binary.BigEndian.PutUint32(buf[4:8], uint32(len(value)))
	copy(buf[recordHeaderLen:], key)
	copy(buf[recordHeaderLen+len(key):], value)
	sum := sha256.Sum256(buf[recordHeaderLen : recordHeaderLen+len(key)+len(value)])
	copy(buf[recordHeaderLen+len(key)+len(value):], sum[:])
	return buf
}

// Get returns the stored value for key, verifying its checksum. A
// record that fails verification (silent disk corruption) is dropped
// from the index, logged, and reported as a miss with an error.
func (d *Disk) Get(key string) ([]byte, bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, false, errClosed("disk")
	}
	r, ok := d.index[key]
	if !ok {
		d.misses++
		d.met.miss()
		return nil, false, nil
	}
	f := d.files[r.seg]
	body := make([]byte, r.klen+r.vlen+checksumLen)
	if _, err := f.ReadAt(body, r.off+recordHeaderLen); err != nil {
		d.errs++
		d.misses++
		d.met.miss()
		return nil, false, fmt.Errorf("store: reading %s: %w", shortKey(key), err)
	}
	sum := sha256.Sum256(body[:r.klen+r.vlen])
	if !bytes.Equal(sum[:], body[r.klen+r.vlen:]) {
		delete(d.index, key)
		d.liveBytes -= r.size()
		d.errs++
		d.misses++
		d.met.miss()
		d.log.Warn("store: checksum mismatch on read, entry dropped",
			"key", shortKey(key), "segment", r.seg, "offset", r.off)
		return nil, false, fmt.Errorf("store: checksum mismatch for %s", shortKey(key))
	}
	d.hits++
	d.met.hit()
	d.record(obs.EventStoreHitDisk, shortKey(key))
	return body[r.klen : r.klen+r.vlen], true, nil
}

// Put appends one record to the active segment, superseding any earlier
// value for key. The segment rotates past MaxSegmentBytes, and the store
// auto-compacts when the live set exceeds the quota or superseded
// garbage exceeds half of it.
func (d *Disk) Put(key string, value []byte) error {
	if len(key) == 0 || len(key) > maxKeyLen {
		return fmt.Errorf("store: key length %d out of (0, %d]", len(key), maxKeyLen)
	}
	if len(value) > maxValueLen {
		return fmt.Errorf("store: value length %d exceeds %d", len(value), maxValueLen)
	}
	buf := encodeRecord(key, value)

	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed("disk")
	}
	f := d.files[d.active]
	if _, err := f.WriteAt(buf, d.actSize); err != nil {
		d.errs++
		return fmt.Errorf("store: appending %s: %w", shortKey(key), err)
	}
	newRec := rec{seg: d.active, off: d.actSize, klen: len(key), vlen: len(value)}
	d.seq++
	newRec.seq = d.seq
	if old, ok := d.index[key]; ok {
		d.liveBytes -= old.size() // the old record is now garbage
	}
	d.index[key] = newRec
	d.liveBytes += newRec.size()
	d.totalBytes += newRec.size()
	d.actSize += int64(len(buf))
	d.puts++
	d.met.fill()
	d.record(obs.EventStoreFill, shortKey(key))

	if d.actSize >= d.cfg.MaxSegmentBytes {
		if err := d.rotateLocked(); err != nil {
			return err
		}
	}
	if d.liveBytes > d.cfg.MaxBytes || d.totalBytes-d.liveBytes > d.cfg.MaxBytes/2 {
		return d.compactLocked()
	}
	return nil
}

// rotateLocked seals the active segment (fsync) and starts the next one.
func (d *Disk) rotateLocked() error {
	if err := d.files[d.active].Sync(); err != nil {
		return fmt.Errorf("store: sealing segment %d: %w", d.active, err)
	}
	return d.openActiveLocked(d.active + 1)
}

// Compact rewrites the live set into fresh segments: superseded records
// are dropped, and the oldest live entries are evicted until the live
// set fits in 90% of MaxBytes (headroom, so one more Put does not
// immediately re-trigger compaction). New segments are written complete,
// fsynced, and installed with atomic renames before the old segments are
// removed.
func (d *Disk) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return errClosed("disk")
	}
	return d.compactLocked()
}

func (d *Disk) compactLocked() error {
	// Live records, oldest first — eviction drops from the front.
	type liveRec struct {
		key string
		rec rec
	}
	live := make([]liveRec, 0, len(d.index))
	for k, r := range d.index {
		live = append(live, liveRec{k, r})
	}
	sort.Slice(live, func(i, j int) bool { return live[i].rec.seq < live[j].rec.seq })

	target := d.cfg.MaxBytes - d.cfg.MaxBytes/10
	keep := live
	var keepBytes int64
	for i := len(live) - 1; i >= 0; i-- {
		sz := live[i].rec.size()
		if keepBytes+sz > target {
			keep = live[i+1:]
			break
		}
		keepBytes += sz
	}
	if keepBytes == 0 && len(live) > 0 {
		// Quota smaller than the newest record: keep just that record so
		// the store never silently empties itself.
		keep = live[len(live)-1:]
		keepBytes = keep[0].rec.size()
	}
	evicted := len(live) - len(keep)

	// Rewrite the kept records into fresh segments numbered after every
	// existing one, via tmp files + rename so a crash mid-compaction can
	// never expose a half-written segment.
	nextID := d.active + 1
	var (
		newSegs  []int
		newFiles = make(map[int]*os.File)
		newIndex = make(map[string]rec, len(keep))
		cur      *os.File
		curID    int
		curSize  int64
	)
	fail := func(err error) error {
		for _, f := range newFiles {
			name := f.Name()
			f.Close()
			os.Remove(name)
		}
		return err
	}
	openNext := func() error {
		id := nextID
		nextID++
		f, err := os.OpenFile(d.segPath(id)+".tmp", os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return fmt.Errorf("store: %w", err)
		}
		newFiles[id] = f
		newSegs = append(newSegs, id)
		cur, curID, curSize = f, id, 0
		return nil
	}
	if err := openNext(); err != nil {
		return fail(err)
	}
	for _, lr := range keep {
		f := d.files[lr.rec.seg]
		buf := make([]byte, lr.rec.size())
		if _, err := f.ReadAt(buf, lr.rec.off); err != nil {
			// Unreadable during compaction: drop it, like a Get would.
			d.log.Warn("store: dropping unreadable record during compaction",
				"key", shortKey(lr.key), "err", err)
			d.errs++
			continue
		}
		if curSize+int64(len(buf)) > d.cfg.MaxSegmentBytes && curSize > 0 {
			if err := cur.Sync(); err != nil {
				return fail(fmt.Errorf("store: %w", err))
			}
			if err := openNext(); err != nil {
				return fail(err)
			}
		}
		if _, err := cur.WriteAt(buf, curSize); err != nil {
			return fail(fmt.Errorf("store: %w", err))
		}
		d.seq++
		newIndex[lr.key] = rec{seg: curID, off: curSize, klen: lr.rec.klen,
			vlen: lr.rec.vlen, seq: d.seq}
		curSize += int64(len(buf))
	}
	for _, f := range newFiles {
		if err := f.Sync(); err != nil {
			return fail(fmt.Errorf("store: %w", err))
		}
	}
	// Install: rename every tmp into place, fsync the directory, then
	// retire the old segments. A crash between renames and removes leaves
	// old and new side by side; replay order makes the new records win.
	for _, id := range newSegs {
		if err := os.Rename(d.segPath(id)+".tmp", d.segPath(id)); err != nil {
			return fail(fmt.Errorf("store: installing compacted segment: %w", err))
		}
	}
	if err := d.syncDir(); err != nil {
		return err
	}
	oldIDs, oldFiles := d.segIDs, d.files
	d.index = newIndex
	d.files = newFiles
	d.segIDs = append([]int(nil), newSegs...)
	d.liveBytes = 0
	for _, r := range d.index {
		d.liveBytes += r.size()
	}
	d.totalBytes = d.liveBytes
	for _, id := range oldIDs {
		oldFiles[id].Close()
		if err := os.Remove(d.segPath(id)); err != nil {
			d.log.Warn("store: removing retired segment", "segment", id, "err", err)
		}
	}
	// The newest compacted segment becomes the append target.
	d.active = newSegs[len(newSegs)-1]
	d.actSize = curSize
	d.compactions++
	d.met.compaction()
	d.record(obs.EventStoreCompact,
		fmt.Sprintf("kept %d entries (%d evicted), %d segments", len(newIndex), evicted, len(newSegs)))
	return d.syncDir()
}

// stats snapshots the counters.
func (d *Disk) stats() TierStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return TierStats{
		Tier:        "disk",
		Hits:        d.hits,
		Misses:      d.misses,
		Puts:        d.puts,
		Entries:     len(d.index),
		Bytes:       d.liveBytes,
		Compactions: d.compactions,
		Segments:    len(d.segIDs),
		Errors:      d.errs,
	}
}

// Stats snapshots the tier.
func (d *Disk) Stats() []TierStats { return []TierStats{d.stats()} }

// closeFilesLocked closes every open segment handle.
func (d *Disk) closeFilesLocked() {
	for _, f := range d.files {
		f.Close()
	}
}

// Close fsyncs the active segment and releases every handle.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	err := d.files[d.active].Sync()
	d.closeFilesLocked()
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

var _ Store = (*Disk)(nil)
