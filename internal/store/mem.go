package store

import (
	"container/list"
	"sync"

	"elfetch/internal/obs"
)

// Mem defaults.
const (
	// DefaultMemEntries bounds a Mem built with MaxEntries <= 0.
	DefaultMemEntries = 4096
	// DefaultMemBytes bounds a Mem built with MaxBytes <= 0 (64 MiB).
	DefaultMemBytes = 64 << 20
)

// MemConfig sizes the in-memory tier.
type MemConfig struct {
	// MaxEntries bounds the live set (0 = DefaultMemEntries).
	MaxEntries int
	// MaxBytes bounds key+value bytes held (0 = DefaultMemBytes).
	MaxBytes int64
	// Metrics, when non-nil, receives the tier's elf_store_* families
	// under tier="mem".
	Metrics *obs.Registry
}

// Mem is the in-memory tier: a bounded LRU over raw result bytes with
// approximate byte accounting. It is the front of a Tiered store; the
// scheduler's own decoded-value cache usually plays this role in the
// serving path, so Mem mostly serves embedders and tests.
type Mem struct {
	mu      sync.Mutex
	cfg     MemConfig
	order   *list.List               // front = most recent
	entries map[string]*list.Element // key -> element holding *memEntry
	bytes   int64
	hits    uint64
	misses  uint64
	puts    uint64
	closed  bool

	met *tierMetrics
}

type memEntry struct {
	key   string
	value []byte
}

func (e *memEntry) size() int64 { return int64(len(e.key) + len(e.value)) }

// NewMem returns an in-memory tier sized by cfg.
func NewMem(cfg MemConfig) *Mem {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMemEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMemBytes
	}
	m := &Mem{
		cfg:     cfg,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
	m.met = newTierMetrics(cfg.Metrics, "mem", m.stats)
	return m
}

// Get returns the cached bytes for key (a copy: callers own the result).
func (m *Mem) Get(key string) ([]byte, bool, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, false, errClosed("mem")
	}
	el, ok := m.entries[key]
	if !ok {
		m.misses++
		m.met.miss()
		return nil, false, nil
	}
	m.hits++
	m.met.hit()
	m.order.MoveToFront(el)
	e := el.Value.(*memEntry)
	out := make([]byte, len(e.value))
	copy(out, e.value)
	return out, true, nil
}

// Put stores value under key, evicting least-recently-used entries until
// both bounds hold.
func (m *Mem) Put(key string, value []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return errClosed("mem")
	}
	m.puts++
	m.met.fill()
	v := make([]byte, len(value))
	copy(v, value)
	if el, ok := m.entries[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes -= e.size()
		e.value = v
		m.bytes += e.size()
		m.order.MoveToFront(el)
	} else {
		e := &memEntry{key: key, value: v}
		m.entries[key] = m.order.PushFront(e)
		m.bytes += e.size()
	}
	for m.order.Len() > 0 &&
		(m.order.Len() > m.cfg.MaxEntries || m.bytes > m.cfg.MaxBytes) {
		oldest := m.order.Back()
		if oldest == m.order.Front() { // never evict the entry just stored
			break
		}
		e := oldest.Value.(*memEntry)
		m.order.Remove(oldest)
		delete(m.entries, e.key)
		m.bytes -= e.size()
	}
	return nil
}

// stats snapshots the counters. Caller need not hold the lock.
func (m *Mem) stats() TierStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return TierStats{
		Tier:    "mem",
		Hits:    m.hits,
		Misses:  m.misses,
		Puts:    m.puts,
		Entries: m.order.Len(),
		Bytes:   m.bytes,
	}
}

// Stats snapshots the tier.
func (m *Mem) Stats() []TierStats { return []TierStats{m.stats()} }

// Compact is a no-op: the LRU is always compact.
func (m *Mem) Compact() error { return nil }

// Close drops the live set.
func (m *Mem) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.closed {
		m.closed = true
		m.order.Init()
		m.entries = make(map[string]*list.Element)
		m.bytes = 0
	}
	return nil
}

var _ Store = (*Mem)(nil)
