package store

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"elfetch/internal/obs"
)

// DefaultPeerTimeout bounds one peer lookup when PeerConfig.Timeout is 0.
const DefaultPeerTimeout = 5 * time.Second

// PeerConfig points a read-through tier at another process's store.
type PeerConfig struct {
	// Base is the peer's base URL (e.g. http://coordinator:8080); the
	// tier issues GET {Base}/v1/cells/{key}.
	Base string
	// Timeout bounds one lookup (0 = DefaultPeerTimeout).
	Timeout time.Duration
	// Client overrides the HTTP client (nil = a client with Timeout).
	Client *http.Client
	// Metrics, when non-nil, receives the tier's elf_store_* families
	// under tier="peer".
	Metrics *obs.Registry
}

// Peer is a read-only tier over another elfd's GET /v1/cells/{key}
// endpoint: fleet workers consult their coordinator's store before
// simulating, so a grid already computed anywhere in the fleet fills
// everywhere from one copy. Put, Compact and Close are no-ops — the peer
// owns its own durability; this tier only reads. Use it as the back of
// NewTiered(disk, peer) so peer hits are promoted into the local disk.
type Peer struct {
	base   string
	client *http.Client

	hits   atomic.Uint64
	misses atomic.Uint64
	errs   atomic.Uint64
	closed atomic.Bool

	met *tierMetrics
}

// NewPeer returns a read-through tier over cfg.Base.
func NewPeer(cfg PeerConfig) (*Peer, error) {
	u, err := url.Parse(cfg.Base)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("store: peer base %q is not an absolute URL", cfg.Base)
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = DefaultPeerTimeout
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: cfg.Timeout}
	}
	p := &Peer{base: strings.TrimRight(u.String(), "/"), client: client}
	p.met = newTierMetrics(cfg.Metrics, "peer", p.stats)
	return p, nil
}

// Get fetches key from the peer. 404 is a miss; transport failures and
// unexpected statuses are misses with an error (the caller simulates).
func (p *Peer) Get(key string) ([]byte, bool, error) {
	if p.closed.Load() {
		return nil, false, errClosed("peer")
	}
	resp, err := p.client.Get(p.base + "/v1/cells/" + url.PathEscape(key))
	if err != nil {
		p.errs.Add(1)
		p.misses.Add(1)
		p.met.miss()
		return nil, false, fmt.Errorf("store: peer lookup %s: %w", shortKey(key), err)
	}
	// Drain-before-close: on the 404 and unexpected-status arms below the
	// body is never read, and closing an undrained body tears down the
	// keep-alive connection — every peer miss would then pay a fresh dial.
	defer obs.DrainClose(resp.Body)
	switch resp.StatusCode {
	case http.StatusOK:
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxValueLen+1))
		if err != nil {
			p.errs.Add(1)
			p.misses.Add(1)
			p.met.miss()
			return nil, false, fmt.Errorf("store: peer body %s: %w", shortKey(key), err)
		}
		if len(body) > maxValueLen {
			p.errs.Add(1)
			p.misses.Add(1)
			p.met.miss()
			return nil, false, fmt.Errorf("store: peer value for %s exceeds %d bytes", shortKey(key), maxValueLen)
		}
		p.hits.Add(1)
		p.met.hit()
		return body, true, nil
	case http.StatusNotFound:
		p.misses.Add(1)
		p.met.miss()
		return nil, false, nil
	default:
		p.errs.Add(1)
		p.misses.Add(1)
		p.met.miss()
		return nil, false, fmt.Errorf("store: peer lookup %s: unexpected status %d", shortKey(key), resp.StatusCode)
	}
}

// Put is a no-op: the peer owns its own fills.
func (p *Peer) Put(string, []byte) error { return nil }

func (p *Peer) stats() TierStats {
	return TierStats{
		Tier:   "peer",
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Errors: p.errs.Load(),
	}
}

// Stats snapshots the tier.
func (p *Peer) Stats() []TierStats { return []TierStats{p.stats()} }

// Compact is a no-op.
func (p *Peer) Compact() error { return nil }

// Close stops further lookups.
func (p *Peer) Close() error {
	p.closed.Store(true)
	return nil
}

var _ Store = (*Peer)(nil)
