// Package store is the persistence layer behind warm restarts: a
// durable, crash-safe, content-addressed result store. Every simulated
// cell is expensive (a full cycle-level run) yet perfectly reusable —
// results are content-addressed by their sched.Key — so the store keeps
// completed results across processes and shares them across the fleet
// instead of re-deriving them (DESIGN.md §15).
//
// Four implementations compose behind one interface:
//
//   - Mem: a bounded, byte-accounted LRU over raw result bytes — the
//     in-process front tier.
//   - Disk: append-only segment files with length-prefixed, sha256-
//     checksummed records and an in-memory index rebuilt on open. Torn
//     or truncated tails (a crash mid-append) are tolerated and logged,
//     segments rotate atomically at a size threshold, and compaction
//     drops superseded and over-quota entries.
//   - Tiered: a front/back pair with read-through promotion (a back-tier
//     hit is copied into the front) and in-flight singleflight, so
//     concurrent misses on one key fill once.
//   - Peer: an HTTP read-through tier over another process's
//     GET /v1/cells/{key} endpoint, so fleet workers can peer-fill from
//     their coordinator before simulating.
//
// The production arrangement keeps today's scheduler LRU (decoded
// values, in-flight coalescing) as the hot memory front and consults the
// store — typically Disk, optionally Tiered(Disk, Peer) — only when it
// misses; a store hit skips the simulation entirely and the decoded
// result is promoted back into the scheduler cache.
//
// Layering: this package may import internal/obs and nothing else
// module-internal (enforced by elflint's layering check); values are
// opaque bytes, so the store never learns what an eval.Result is.
package store

import (
	"elfetch/internal/obs"
)

// Store is a content-addressed result store. Keys are sched.Key content
// addresses (hex strings); values are opaque bytes (the serving layer
// stores JSON-encoded results). Implementations must be safe for
// concurrent use.
type Store interface {
	// Get returns the stored value for key. A miss is (nil, false, nil);
	// an error reports an I/O or integrity failure, which callers should
	// treat as a miss (the store degrades, it never blocks progress).
	Get(key string) ([]byte, bool, error)
	// Put stores value under key, superseding any previous value.
	Put(key string, value []byte) error
	// Stats snapshots per-tier counters, front tier first.
	Stats() []TierStats
	// Compact reclaims space: superseded records are dropped and, when a
	// quota is configured, the oldest live entries are evicted until the
	// store fits. A no-op for tiers with nothing to reclaim.
	Compact() error
	// Close flushes and releases the store. A closed store fails Get/Put.
	Close() error
}

// TierStats is one tier's point-in-time counter snapshot.
type TierStats struct {
	// Tier is "mem", "disk" or "peer".
	Tier string `json:"tier"`
	// Hits and Misses count Get outcomes.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Puts counts fills (values written). On a warm restart a grid that
	// re-simulates nothing performs zero Puts.
	Puts uint64 `json:"puts"`
	// Entries and Bytes size the live set (bytes are record bytes for
	// disk, value+key bytes for mem).
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// Compactions counts completed compaction passes (disk only).
	Compactions uint64 `json:"compactions"`
	// Segments counts live segment files (disk only).
	Segments int `json:"segments,omitempty"`
	// Errors counts failed Gets/Puts (I/O trouble, bad checksums,
	// unreachable peers).
	Errors uint64 `json:"errors,omitempty"`
}

// tierMetrics registers the elf_store_* families for one tier and is
// shared by every implementation. reg may be nil (no-op wiring).
type tierMetrics struct {
	hits        *obs.Counter
	misses      *obs.Counter
	fills       *obs.Counter
	compactions *obs.Counter
}

// newTierMetrics wires the per-tier store families onto reg. The
// bytes/entries gauges are computed at scrape time from stats.
func newTierMetrics(reg *obs.Registry, tier string, stats func() TierStats) *tierMetrics {
	if reg == nil {
		return nil
	}
	lbl := obs.L("tier", tier)
	m := &tierMetrics{
		hits: reg.Counter("elf_store_hits_total",
			"Result-store lookups answered, by tier.", lbl),
		misses: reg.Counter("elf_store_misses_total",
			"Result-store lookups missed, by tier.", lbl),
		fills: reg.Counter("elf_store_fills_total",
			"Results written into the store, by tier.", lbl),
		compactions: reg.Counter("elf_store_compactions_total",
			"Completed compaction passes, by tier.", lbl),
	}
	reg.GaugeFunc("elf_store_bytes", "Live bytes held, by tier.",
		func() float64 { return float64(stats().Bytes) }, lbl)
	reg.GaugeFunc("elf_store_entries", "Live entries held, by tier.",
		func() float64 { return float64(stats().Entries) }, lbl)
	return m
}

func (m *tierMetrics) hit() {
	if m != nil {
		m.hits.Inc()
	}
}

func (m *tierMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *tierMetrics) fill() {
	if m != nil {
		m.fills.Inc()
	}
}

func (m *tierMetrics) compaction() {
	if m != nil {
		m.compactions.Inc()
	}
}

// shortKey truncates a content address for event detail fields: the
// first 12 hex digits identify a key for a human without drowning the
// flight recorder.
func shortKey(key string) string {
	if len(key) > 12 {
		return key[:12]
	}
	return key
}
