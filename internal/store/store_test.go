package store

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"elfetch/internal/obs"
)

func mustPut(t *testing.T, s Store, key string, value []byte) {
	t.Helper()
	if err := s.Put(key, value); err != nil {
		t.Fatalf("Put(%q): %v", key, err)
	}
}

func wantGet(t *testing.T, s Store, key string, want []byte) {
	t.Helper()
	got, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if !ok {
		t.Fatalf("Get(%q): miss, want hit", key)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("Get(%q) = %q, want %q", key, got, want)
	}
}

func wantMiss(t *testing.T, s Store, key string) {
	t.Helper()
	_, ok, err := s.Get(key)
	if err != nil {
		t.Fatalf("Get(%q): %v", key, err)
	}
	if ok {
		t.Fatalf("Get(%q): hit, want miss", key)
	}
}

func TestMemRoundTripAndEviction(t *testing.T) {
	m := NewMem(MemConfig{MaxEntries: 3})
	defer m.Close()
	mustPut(t, m, "a", []byte("1"))
	mustPut(t, m, "b", []byte("2"))
	mustPut(t, m, "c", []byte("3"))
	wantGet(t, m, "a", []byte("1")) // touch a: now b is LRU
	mustPut(t, m, "d", []byte("4"))
	wantMiss(t, m, "b")
	wantGet(t, m, "a", []byte("1"))
	wantGet(t, m, "d", []byte("4"))
	st := m.Stats()[0]
	if st.Tier != "mem" || st.Entries != 3 {
		t.Fatalf("stats = %+v, want tier=mem entries=3", st)
	}
}

func TestMemByteBound(t *testing.T) {
	// Each entry is 1-byte key + 8-byte value = 9 bytes; cap at two
	// entries' worth.
	m := NewMem(MemConfig{MaxEntries: 100, MaxBytes: 18})
	defer m.Close()
	mustPut(t, m, "a", []byte("12345678"))
	mustPut(t, m, "b", []byte("12345678"))
	mustPut(t, m, "c", []byte("12345678"))
	wantMiss(t, m, "a")
	wantGet(t, m, "b", []byte("12345678"))
	wantGet(t, m, "c", []byte("12345678"))
	if st := m.Stats()[0]; st.Bytes != 18 {
		t.Fatalf("bytes = %d, want 18", st.Bytes)
	}
}

func TestMemReturnsCopies(t *testing.T) {
	m := NewMem(MemConfig{})
	defer m.Close()
	v := []byte("hello")
	mustPut(t, m, "k", v)
	v[0] = 'X' // caller's buffer must not alias the stored copy
	got, _, _ := m.Get("k")
	if string(got) != "hello" {
		t.Fatalf("stored value aliased caller buffer: %q", got)
	}
	got[0] = 'Y'
	wantGet(t, m, "k", []byte("hello"))
}

func TestMemClosed(t *testing.T) {
	m := NewMem(MemConfig{})
	m.Close()
	if err := m.Put("k", nil); err == nil {
		t.Fatal("Put on closed Mem: want error")
	}
	if _, _, err := m.Get("k"); err == nil {
		t.Fatal("Get on closed Mem: want error")
	}
}

func openDisk(t *testing.T, dir string, cfg DiskConfig) *Disk {
	t.Helper()
	cfg.Dir = dir
	d, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return d
}

func TestDiskRoundTripAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	mustPut(t, d, "alpha", []byte("one"))
	mustPut(t, d, "beta", []byte("two"))
	mustPut(t, d, "alpha", []byte("three")) // supersede
	wantGet(t, d, "alpha", []byte("three"))
	wantGet(t, d, "beta", []byte("two"))
	wantMiss(t, d, "gamma")
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Warm restart: the index is rebuilt from the segments and the
	// superseding record wins.
	d2 := openDisk(t, dir, DiskConfig{})
	defer d2.Close()
	wantGet(t, d2, "alpha", []byte("three"))
	wantGet(t, d2, "beta", []byte("two"))
	st := d2.Stats()[0]
	if st.Entries != 2 {
		t.Fatalf("entries after reopen = %d, want 2", st.Entries)
	}
	if st.Puts != 0 {
		t.Fatalf("puts after reopen = %d, want 0", st.Puts)
	}
}

func TestDiskRotation(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{MaxSegmentBytes: 128})
	for i := 0; i < 16; i++ {
		mustPut(t, d, fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{'v'}, 32))
	}
	st := d.Stats()[0]
	if st.Segments < 2 {
		t.Fatalf("segments = %d, want >= 2 after rotation", st.Segments)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openDisk(t, dir, DiskConfig{MaxSegmentBytes: 128})
	defer d2.Close()
	for i := 0; i < 16; i++ {
		wantGet(t, d2, fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{'v'}, 32))
	}
}

func TestDiskCompactDropsSuperseded(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	for i := 0; i < 8; i++ {
		mustPut(t, d, "hot", bytes.Repeat([]byte{byte('0' + i)}, 64))
	}
	mustPut(t, d, "cold", []byte("keep"))
	before := d.Stats()[0]
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	after := d.Stats()[0]
	if after.Compactions != before.Compactions+1 {
		t.Fatalf("compactions = %d, want %d", after.Compactions, before.Compactions+1)
	}
	wantGet(t, d, "hot", bytes.Repeat([]byte{'7'}, 64))
	wantGet(t, d, "cold", []byte("keep"))
	d.Close()

	// On-disk bytes shrank to the live set: exactly two records remain.
	var total int64
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		fi, _ := e.Info()
		total += fi.Size()
	}
	if want := int64(recordHeaderLen+3+64+checksumLen) + int64(recordHeaderLen+4+4+checksumLen); total != want {
		t.Fatalf("on-disk bytes after compact = %d, want %d", total, want)
	}

	d2 := openDisk(t, dir, DiskConfig{})
	defer d2.Close()
	wantGet(t, d2, "hot", bytes.Repeat([]byte{'7'}, 64))
	wantGet(t, d2, "cold", []byte("keep"))
}

func TestDiskQuotaEvictsOldestFirst(t *testing.T) {
	dir := t.TempDir()
	// Each record is 8 + 6 + 10 + 32 = 56 bytes; quota five records.
	d := openDisk(t, dir, DiskConfig{MaxBytes: 56 * 5})
	for i := 0; i < 12; i++ {
		mustPut(t, d, fmt.Sprintf("key-%02d", i), bytes.Repeat([]byte{'v'}, 10))
	}
	defer d.Close()
	st := d.Stats()[0]
	if st.Compactions == 0 {
		t.Fatal("expected an auto-compaction over quota")
	}
	if st.Bytes > 56*5 {
		t.Fatalf("live bytes %d exceed quota %d", st.Bytes, 56*5)
	}
	// The newest key always survives; the oldest ones are gone.
	wantGet(t, d, "key-11", bytes.Repeat([]byte{'v'}, 10))
	wantMiss(t, d, "key-00")
	wantMiss(t, d, "key-01")
}

// TestDiskTruncatedTailTolerated is the crash-safety contract: a partial
// final record — what a crash mid-append leaves behind — is detected,
// logged, and truncated away on open, and every record before it is
// served intact.
func TestDiskTruncatedTailTolerated(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	mustPut(t, d, "alpha", []byte("survives"))
	mustPut(t, d, "beta", []byte("also survives"))
	mustPut(t, d, "victim", []byte("will be torn"))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Tear the tail: chop 5 bytes off the final record, as if the
	// process died mid-write.
	seg := filepath.Join(dir, "seg-00000001.log")
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if err := os.Truncate(seg, fi.Size()-5); err != nil {
		t.Fatalf("Truncate: %v", err)
	}

	d2 := openDisk(t, dir, DiskConfig{})
	wantGet(t, d2, "alpha", []byte("survives"))
	wantGet(t, d2, "beta", []byte("also survives"))
	wantMiss(t, d2, "victim")
	// The torn bytes were removed, so the store appends cleanly.
	mustPut(t, d2, "victim", []byte("rewritten"))
	wantGet(t, d2, "victim", []byte("rewritten"))
	if err := d2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d3 := openDisk(t, dir, DiskConfig{})
	defer d3.Close()
	wantGet(t, d3, "victim", []byte("rewritten"))
}

// TestDiskCorruptTailChecksum covers the other torn-tail shape: the
// record is length-complete but its trailing bytes were never written
// (checksum mismatch). Replay stops at it; earlier records survive.
func TestDiskCorruptTailChecksum(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	mustPut(t, d, "alpha", []byte("survives"))
	mustPut(t, d, "victim", []byte("checksum breaks"))
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	seg := filepath.Join(dir, "seg-00000001.log")
	f, err := os.OpenFile(seg, os.O_RDWR, 0)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	fi, _ := f.Stat()
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, fi.Size()-4); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	f.Close()

	d2 := openDisk(t, dir, DiskConfig{})
	defer d2.Close()
	wantGet(t, d2, "alpha", []byte("survives"))
	wantMiss(t, d2, "victim")
}

func TestDiskChecksumMismatchOnRead(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{})
	mustPut(t, d, "good", []byte("fine"))
	mustPut(t, d, "bad", []byte("rotting"))
	// Flip a value byte of "bad" in place, behind the index's back
	// (silent media corruption).
	d.mu.Lock()
	r := d.index["bad"]
	f := d.files[r.seg]
	if _, err := f.WriteAt([]byte{'X'}, r.off+recordHeaderLen+int64(r.klen)); err != nil {
		d.mu.Unlock()
		t.Fatalf("WriteAt: %v", err)
	}
	d.mu.Unlock()

	if _, ok, err := d.Get("bad"); ok || err == nil {
		t.Fatalf("Get(bad) after corruption = ok=%v err=%v, want miss with error", ok, err)
	}
	wantGet(t, d, "good", []byte("fine"))
	if st := d.Stats()[0]; st.Errors == 0 {
		t.Fatal("expected an error counted after checksum mismatch")
	}
	d.Close()
}

func TestDiskConcurrent(t *testing.T) {
	dir := t.TempDir()
	d := openDisk(t, dir, DiskConfig{MaxSegmentBytes: 4 << 10})
	defer d.Close()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := d.Put(key, []byte(key)); err != nil {
					t.Errorf("Put(%s): %v", key, err)
					return
				}
				if v, ok, err := d.Get(key); err != nil || !ok || string(v) != key {
					t.Errorf("Get(%s) = %q ok=%v err=%v", key, v, ok, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestDiskClosed(t *testing.T) {
	d := openDisk(t, t.TempDir(), DiskConfig{})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil { // idempotent
		t.Fatalf("second Close: %v", err)
	}
	if err := d.Put("k", nil); err == nil {
		t.Fatal("Put on closed Disk: want error")
	}
	if _, _, err := d.Get("k"); err == nil {
		t.Fatal("Get on closed Disk: want error")
	}
}

func TestDiskMetricsAndEvents(t *testing.T) {
	reg := obs.NewRegistry()
	ring := obs.NewRing(64)
	d := openDisk(t, t.TempDir(), DiskConfig{Metrics: reg, Events: ring})
	defer d.Close()
	mustPut(t, d, "k", []byte("v"))
	wantGet(t, d, "k", []byte("v"))
	wantMiss(t, d, "nope")
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`elf_store_hits_total{tier="disk"} 1`,
		`elf_store_misses_total{tier="disk"} 1`,
		`elf_store_fills_total{tier="disk"} 1`,
		`elf_store_compactions_total{tier="disk"} 1`,
		`elf_store_entries{tier="disk"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q in:\n%s", want, out)
		}
	}
	kinds := map[string]bool{}
	for _, e := range ring.Snapshot(0) {
		kinds[e.Kind] = true
	}
	for _, want := range []string{obs.EventStoreFill, obs.EventStoreHitDisk, obs.EventStoreCompact} {
		if !kinds[want] {
			t.Errorf("flight recorder missing %s event (got %v)", want, kinds)
		}
	}
}

func TestTieredPromotion(t *testing.T) {
	front := NewMem(MemConfig{})
	back := openDisk(t, t.TempDir(), DiskConfig{})
	ti := NewTiered(front, back)
	defer ti.Close()

	// Fill the back tier directly; a tiered read promotes to the front.
	mustPut(t, back, "k", []byte("v"))
	wantGet(t, ti, "k", []byte("v"))
	wantGet(t, front, "k", []byte("v"))
	// The second read is a front hit: back's hit count stays at 1.
	wantGet(t, ti, "k", []byte("v"))
	if st := back.Stats()[0]; st.Hits != 1 {
		t.Fatalf("back hits = %d, want 1 (promotion should absorb repeats)", st.Hits)
	}

	sts := ti.Stats()
	if len(sts) != 2 || sts[0].Tier != "mem" || sts[1].Tier != "disk" {
		t.Fatalf("Stats tiers = %+v, want [mem disk]", sts)
	}
}

func TestTieredPutWritesBoth(t *testing.T) {
	front := NewMem(MemConfig{})
	back := openDisk(t, t.TempDir(), DiskConfig{})
	ti := NewTiered(front, back)
	defer ti.Close()
	mustPut(t, ti, "k", []byte("v"))
	wantGet(t, front, "k", []byte("v"))
	wantGet(t, back, "k", []byte("v"))
}

func TestTieredDoSingleflight(t *testing.T) {
	front := NewMem(MemConfig{})
	back := openDisk(t, t.TempDir(), DiskConfig{})
	ti := NewTiered(front, back)
	defer ti.Close()

	var fills atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := ti.Do("k", func() ([]byte, error) {
				fills.Add(1)
				<-gate // hold every concurrent caller on one in-progress fill
				return []byte("filled"), nil
			})
			if err != nil || string(v) != "filled" {
				t.Errorf("Do = %q, %v", v, err)
			}
		}()
	}
	close(gate)
	wg.Wait()
	if n := fills.Load(); n != 1 {
		t.Fatalf("fill ran %d times, want 1", n)
	}
	// After the flight lands, Do serves from the store.
	v, err := ti.Do("k", func() ([]byte, error) {
		t.Error("fill ran on a warm key")
		return nil, nil
	})
	if err != nil || string(v) != "filled" {
		t.Fatalf("warm Do = %q, %v", v, err)
	}
}

func TestTieredDoFillError(t *testing.T) {
	ti := NewTiered(NewMem(MemConfig{}), NewMem(MemConfig{}))
	defer ti.Close()
	wantErr := fmt.Errorf("boom")
	if _, err := ti.Do("k", func() ([]byte, error) { return nil, wantErr }); err != wantErr {
		t.Fatalf("Do err = %v, want %v", err, wantErr)
	}
	// The failure was not cached: the next Do retries the fill.
	v, err := ti.Do("k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("retry Do = %q, %v", v, err)
	}
}

func TestPeer(t *testing.T) {
	vals := map[string][]byte{"hit": []byte("payload")}
	var reqs atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqs.Add(1)
		key := strings.TrimPrefix(r.URL.Path, "/v1/cells/")
		v, ok := vals[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Write(v)
	}))
	defer srv.Close()

	p, err := NewPeer(PeerConfig{Base: srv.URL})
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	wantGet(t, p, "hit", []byte("payload"))
	wantMiss(t, p, "absent")
	if err := p.Put("x", []byte("ignored")); err != nil { // no-op
		t.Fatalf("Put: %v", err)
	}
	if st := p.Stats()[0]; st.Tier != "peer" || st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want peer hits=1 misses=1", st)
	}
	p.Close()
	if _, _, err := p.Get("hit"); err == nil {
		t.Fatal("Get on closed Peer: want error")
	}

	if _, err := NewPeer(PeerConfig{Base: "not a url"}); err == nil {
		t.Fatal("NewPeer with relative base: want error")
	}
}

func TestPeerServerError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	p, err := NewPeer(PeerConfig{Base: srv.URL})
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	defer p.Close()
	_, ok, err := p.Get("k")
	if ok || err == nil {
		t.Fatalf("Get against 500 = ok=%v err=%v, want miss with error", ok, err)
	}
	if st := p.Stats()[0]; st.Errors != 1 {
		t.Fatalf("errors = %d, want 1", st.Errors)
	}
}

func TestTieredBehindPeer(t *testing.T) {
	// The worker arrangement: Tiered(disk, peer). A peer hit lands in
	// the local disk, so the next process start (or peer outage) still
	// has the value.
	coord := map[string][]byte{"remote": []byte("from-coordinator")}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		key := strings.TrimPrefix(r.URL.Path, "/v1/cells/")
		if v, ok := coord[key]; ok {
			w.Write(v)
			return
		}
		http.NotFound(w, r)
	}))
	defer srv.Close()

	dir := t.TempDir()
	disk := openDisk(t, dir, DiskConfig{})
	peer, err := NewPeer(PeerConfig{Base: srv.URL})
	if err != nil {
		t.Fatalf("NewPeer: %v", err)
	}
	ti := NewTiered(disk, peer)
	wantGet(t, ti, "remote", []byte("from-coordinator"))
	ti.Close()
	srv.Close() // coordinator gone

	disk2 := openDisk(t, dir, DiskConfig{})
	defer disk2.Close()
	wantGet(t, disk2, "remote", []byte("from-coordinator"))
}
