package store

import (
	"sync"
)

// Tiered chains a fast front tier over a slower back tier. Reads consult
// the front first; a back-tier hit is promoted (copied) into the front so
// repeats stay cheap. Writes go to both tiers. Do adds in-flight
// singleflight: concurrent misses on one key run the fill function once.
type Tiered struct {
	front Store
	back  Store

	mu       sync.Mutex
	inflight map[string]*flight
	closed   bool
}

// flight is one in-progress fill that late arrivals wait on.
type flight struct {
	done  chan struct{}
	value []byte
	err   error
}

// NewTiered layers front over back. Both are owned by the returned store:
// Close closes them (front first).
func NewTiered(front, back Store) *Tiered {
	return &Tiered{
		front:    front,
		back:     back,
		inflight: make(map[string]*flight),
	}
}

// Get consults the front tier, then the back tier, promoting back-tier
// hits into the front. Tier errors degrade to misses at that tier: the
// other tier is still consulted, and the first error (if any) is
// reported alongside whatever was found.
func (t *Tiered) Get(key string) ([]byte, bool, error) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, false, errClosed("tiered")
	}
	t.mu.Unlock()
	v, ok, ferr := t.front.Get(key)
	if ok {
		return v, true, nil
	}
	v, ok, berr := t.back.Get(key)
	if ok {
		// Promote. A failed promotion does not fail the read.
		_ = t.front.Put(key, v)
		return v, true, ferr
	}
	if ferr != nil {
		return nil, false, ferr
	}
	return nil, false, berr
}

// Put writes value into both tiers. The back tier (durable) error wins;
// a front-tier failure alone does not fail the write.
func (t *Tiered) Put(key string, value []byte) error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return errClosed("tiered")
	}
	t.mu.Unlock()
	ferr := t.front.Put(key, value)
	if err := t.back.Put(key, value); err != nil {
		return err
	}
	return ferr
}

// Do returns the stored value for key, or runs fill exactly once across
// concurrent callers to produce and store it. This is the read-through
// entry point for embedders that do not already coalesce misses (the
// scheduler does its own coalescing, so the serving path calls Get/Put
// directly).
func (t *Tiered) Do(key string, fill func() ([]byte, error)) ([]byte, error) {
	if v, ok, _ := t.Get(key); ok {
		return v, nil
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, errClosed("tiered")
	}
	if fl, ok := t.inflight[key]; ok {
		t.mu.Unlock()
		<-fl.done
		return fl.value, fl.err
	}
	fl := &flight{done: make(chan struct{})}
	t.inflight[key] = fl
	t.mu.Unlock()

	// Re-check under the flight: another process may have filled the
	// store between our miss and claiming the flight.
	if v, ok, _ := t.Get(key); ok {
		fl.value = v
	} else {
		fl.value, fl.err = fill()
		if fl.err == nil {
			fl.err = t.Put(key, fl.value)
		}
	}
	close(fl.done)
	t.mu.Lock()
	delete(t.inflight, key)
	t.mu.Unlock()
	return fl.value, fl.err
}

// Stats concatenates per-tier snapshots, front first.
func (t *Tiered) Stats() []TierStats {
	return append(t.front.Stats(), t.back.Stats()...)
}

// Compact compacts both tiers.
func (t *Tiered) Compact() error {
	ferr := t.front.Compact()
	if err := t.back.Compact(); err != nil {
		return err
	}
	return ferr
}

// Close closes both tiers, front first, returning the first error.
func (t *Tiered) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	ferr := t.front.Close()
	if err := t.back.Close(); err != nil {
		return err
	}
	return ferr
}

var _ Store = (*Tiered)(nil)
