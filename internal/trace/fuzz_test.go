package trace

import (
	"testing"

	"elfetch/internal/workload"
	"elfetch/internal/xrand"
)

// TestStreamFuzzReplay hammers the ring-buffered stream with randomized
// fetch-ahead / squash-rewind / release patterns (the access pattern the
// pipeline produces) and checks that every record re-read after a rewind is
// bit-identical to its first materialisation.
func TestStreamFuzzReplay(t *testing.T) {
	e, err := workload.Lookup("641.leela_s")
	if err != nil {
		t.Fatal(err)
	}
	s := NewStream(e.Program())
	r := xrand.New(0x57F)

	type key struct {
		pc, next, mem uint64
		taken         bool
	}
	recorded := make(map[uint64]key)
	var fetch, floor uint64

	for step := 0; step < 300_000; step++ {
		switch {
		case r.Intn(100) < 80: // fetch ahead
			d := s.Get(fetch)
			k := key{uint64(d.PC), uint64(d.NextPC), uint64(d.MemAddr), d.Taken}
			if old, seen := recorded[fetch]; seen && old != k {
				t.Fatalf("seq %d changed on replay: %+v vs %+v", fetch, old, k)
			}
			recorded[fetch] = k
			fetch++
		case r.Intn(100) < 60 && fetch > floor: // squash-rewind
			span := uint64(r.Intn(int(fetch-floor)) + 1)
			fetch -= span
		default: // commit-release
			if fetch > floor {
				adv := uint64(r.Intn(int(fetch-floor)) + 1)
				for i := floor; i < floor+adv; i++ {
					delete(recorded, i)
				}
				floor += adv
				s.Release(floor)
			}
		}
		// Keep the window inside the ring capacity like the pipeline
		// does (its in-flight window is far smaller).
		if fetch-floor > DefaultStreamCap/2 {
			adv := fetch - floor - DefaultStreamCap/4
			for i := floor; i < floor+adv; i++ {
				delete(recorded, i)
			}
			floor += adv
			s.Release(floor)
			if fetch < floor {
				fetch = floor
			}
		}
	}
}
