// Package trace turns a static program into its dynamic instruction stream.
//
// The simulator is oracle-driven (DESIGN.md §7): an Oracle walks the
// program's architecturally correct path, producing one Dyn record per
// retired-path instruction. The pipeline model fetches *speculatively* —
// possibly down wrong paths — and binds fetched slots to oracle records only
// while it is on the correct path. A Stream wraps the Oracle with a ring
// buffer so the pipeline can re-fetch already-generated records after a
// flush (e.g. a memory-order violation squashes younger correct-path
// instructions, which must be fetched again) without rewinding oracle state.
//
// Wrong-path instructions are synthesized by a Synth, which walks the same
// static code with private scratch state: they have classes, register
// operands, and memory addresses (so they pollute caches and occupy pipeline
// resources — required for the paper's wrong-path findings) but never retire.
package trace

import (
	"fmt"

	"elfetch/internal/isa"
	"elfetch/internal/program"
)

// Dyn is one dynamic instruction on the architecturally correct path.
type Dyn struct {
	// Seq is the position in the correct-path stream, starting at 0.
	Seq uint64
	// PC is the instruction address.
	PC isa.Addr
	// SI is the static instruction.
	SI *program.Static
	// Taken is the branch outcome (true for every taken control transfer,
	// including unconditional ones; false for non-branches).
	Taken bool
	// NextPC is the address of the next correct-path instruction.
	NextPC isa.Addr
	// MemAddr is the effective address of a load or store.
	MemAddr isa.Addr
}

// Oracle walks the correct path of a program. It never rewinds; callers that
// need replay use Stream.
type Oracle struct {
	prog  *program.Program
	pc    isa.Addr
	stack []isa.Addr
	state []program.State
	env   program.Env
	seq   uint64

	// Restarts counts how many times the walker fell off the program
	// (return with empty stack, or unmapped PC) and was reset to the
	// entry point. Well-formed workloads never restart.
	Restarts uint64
}

// MaxCallDepth bounds the oracle call stack; recursion beyond this resets
// the walker (workloads bound their recursion well below this).
const MaxCallDepth = 1 << 16

// NewOracle returns an oracle positioned at the program entry.
func NewOracle(p *program.Program) *Oracle {
	return &Oracle{
		prog:  p,
		pc:    p.Entry,
		state: make([]program.State, p.NumStates),
	}
}

// GHR exposes the oracle's behaviour-model history, for tests.
func (o *Oracle) GHR() uint64 { return o.env.GHR }

// Depth returns the current call depth.
func (o *Oracle) Depth() int { return len(o.stack) }

// Step produces the next correct-path instruction into d.
func (o *Oracle) Step(d *Dyn) {
	si := o.prog.At(o.pc)
	if si == nil {
		// Fell off the image: restart (documented escape hatch; real
		// workloads are infinite loops and never get here).
		o.Restarts++
		o.pc = o.prog.Entry
		o.stack = o.stack[:0]
		si = o.prog.MustAt(o.pc)
	}
	o.env.PC = uint64(o.pc)

	d.Seq = o.seq
	d.PC = o.pc
	d.SI = si
	d.Taken = false
	d.MemAddr = 0
	next := o.pc.Next()

	var st *program.State
	if si.StateID >= 0 {
		st = &o.state[si.StateID]
	}

	switch si.Class {
	case isa.CondBranch:
		taken := si.Behavior.Taken(st, &o.env)
		o.env.GHR = o.env.GHR<<1 | b2u(taken)
		d.Taken = taken
		if taken {
			next = si.Target
		}
	case isa.Jump:
		d.Taken = true
		next = si.Target
	case isa.Call:
		d.Taken = true
		next = si.Target
		o.push(o.pc.Next())
	case isa.Ret:
		d.Taken = true
		if n := len(o.stack); n > 0 {
			next = o.stack[n-1]
			o.stack = o.stack[:n-1]
		} else {
			o.Restarts++
			next = o.prog.Entry
		}
	case isa.IndirectBranch:
		d.Taken = true
		next = si.Targets[si.TargetSel.NextTarget(st, &o.env, len(si.Targets))]
	case isa.IndirectCall:
		d.Taken = true
		next = si.Targets[si.TargetSel.NextTarget(st, &o.env, len(si.Targets))]
		o.push(o.pc.Next())
	case isa.Load, isa.Store:
		d.MemAddr = si.Mem.NextAddr(st, &o.env)
	}

	d.NextPC = next
	o.pc = next
	o.seq++
}

func (o *Oracle) push(ra isa.Addr) {
	if len(o.stack) >= MaxCallDepth {
		o.Restarts++
		o.stack = o.stack[:0]
	}
	o.stack = append(o.stack, ra)
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Stream buffers oracle output so the pipeline can fetch the same record
// more than once (after squashes). Records with Seq >= released floor stay
// addressable.
type Stream struct {
	o    *Oracle
	buf  []Dyn
	mask uint64
	// floor is the oldest seq that may still be requested (everything
	// below it has committed).
	floor uint64
	// next is the first seq not yet generated.
	next uint64
}

// DefaultStreamCap comfortably exceeds the maximum in-flight window
// (256-entry ROB + front-end queues).
const DefaultStreamCap = 1 << 13

// NewStream wraps an oracle for the given program.
func NewStream(p *program.Program) *Stream {
	return &Stream{o: NewOracle(p), buf: make([]Dyn, DefaultStreamCap), mask: DefaultStreamCap - 1}
}

// Oracle exposes the underlying oracle (for restart accounting).
func (s *Stream) Oracle() *Oracle { return s.o }

// Get returns the correct-path record at seq, generating forward as needed.
// seq must be >= the release floor and within capacity of it.
func (s *Stream) Get(seq uint64) *Dyn {
	if seq < s.floor {
		//lint:allow panic window invariant: Release only advances past retired records
		panic(fmt.Sprintf("trace: Get(%d) below release floor %d", seq, s.floor))
	}
	if seq-s.floor >= uint64(len(s.buf)) {
		//lint:allow panic window invariant: the in-flight window is bounded by the ROB
		panic(fmt.Sprintf("trace: Get(%d) exceeds window (floor %d, cap %d)", seq, s.floor, len(s.buf)))
	}
	for s.next <= seq {
		s.o.Step(&s.buf[s.next&s.mask])
		s.next++
	}
	return &s.buf[seq&s.mask]
}

// Release declares every record with Seq < seq committed; their buffer slots
// may be reused. Release floors are monotone.
func (s *Stream) Release(seq uint64) {
	if seq > s.floor {
		s.floor = seq
	}
}

// Generated returns how many records have been produced so far.
func (s *Stream) Generated() uint64 { return s.next }

// Synth synthesizes wrong-path instruction attributes. It shares the static
// code but owns scratch state, so wrong-path walks never perturb the oracle.
// Direction/target *choices* on the wrong path are made by the front-end's
// predictors; Synth only supplies what "execution" of a wrong-path
// instruction needs: a memory address, and a resolution outcome that by
// construction equals the prediction (wrong-path branches never trigger
// nested flushes — the standard trace-driven simplification).
type Synth struct {
	prog  *program.Program
	state []program.State
	env   program.Env
}

// NewSynth returns a wrong-path synthesizer for the program.
func NewSynth(p *program.Program) *Synth {
	return &Synth{prog: p, state: make([]program.State, p.NumStates)}
}

// At returns the static at pc, or nil outside the image.
func (s *Synth) At(pc isa.Addr) *program.Static { return s.prog.At(pc) }

// MemAddr produces a plausible effective address for a wrong-path memory
// instruction.
func (s *Synth) MemAddr(si *program.Static) isa.Addr {
	if si.Mem == nil {
		return 0
	}
	s.env.PC = uint64(si.PC) ^ 0x5a5a // decorrelate from correct path
	var st *program.State
	if si.StateID >= 0 {
		st = &s.state[si.StateID]
	} else {
		st = new(program.State)
	}
	return si.Mem.NextAddr(st, &s.env)
}
