package trace

import (
	"testing"

	"elfetch/internal/isa"
	"elfetch/internal/program"
)

const base = isa.Addr(0x10000)

// loopCallProgram: main loops 4x{nop, call leaf, backedge}, leaf = nop+ret.
func loopCallProgram(t *testing.T) *program.Program {
	t.Helper()
	b := program.NewBuilder(base)
	m := b.Func("main")
	loop := m.Block("loop")
	loop.Nop(1)
	loop.CallTo("leaf")
	loop.CondTo(program.Loop{Trip: 4}, "loop")
	m.Block("wrap").JumpTo("loop")
	lf := b.Func("leaf")
	lf.Block("e").Nop(1).Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOracleWalksCallsAndReturns(t *testing.T) {
	p := loopCallProgram(t)
	o := NewOracle(p)
	var d Dyn

	// nop at base
	o.Step(&d)
	if d.PC != base || d.SI.Class != isa.ALU || d.NextPC != base.Plus(1) {
		t.Fatalf("step0: %+v", d)
	}
	// call
	o.Step(&d)
	if d.SI.Class != isa.Call || !d.Taken || d.NextPC != p.Funcs[1].Entry {
		t.Fatalf("step1 (call): %+v", d)
	}
	if o.Depth() != 1 {
		t.Fatalf("depth after call = %d", o.Depth())
	}
	// leaf nop
	o.Step(&d)
	if d.PC != p.Funcs[1].Entry {
		t.Fatalf("step2: %+v", d)
	}
	// ret -> back to cond branch in main
	o.Step(&d)
	if d.SI.Class != isa.Ret || d.NextPC != base.Plus(2) {
		t.Fatalf("step3 (ret): %+v", d)
	}
	if o.Depth() != 0 {
		t.Fatalf("depth after ret = %d", o.Depth())
	}
	// backedge taken (loop trip 4: taken 3x then not taken)
	o.Step(&d)
	if d.SI.Class != isa.CondBranch || !d.Taken || d.NextPC != base {
		t.Fatalf("step4 (backedge): %+v", d)
	}
}

func TestOracleLoopExitAndWrap(t *testing.T) {
	p := loopCallProgram(t)
	o := NewOracle(p)
	var d Dyn
	// One iteration is nop,call,leafnop,ret,cond = 5 dynamic insts.
	// Iterations 1-3 take the backedge; iteration 4 falls through to the
	// wrap jump.
	for i := 0; i < 19; i++ {
		o.Step(&d)
	}
	// 20th instruction: the 4th cond, not taken.
	o.Step(&d)
	if d.SI.Class != isa.CondBranch || d.Taken {
		t.Fatalf("4th backedge should be not-taken: %+v", d)
	}
	o.Step(&d)
	if d.SI.Class != isa.Jump || d.NextPC != base {
		t.Fatalf("wrap jump: %+v", d)
	}
	if o.Restarts != 0 {
		t.Fatalf("unexpected restarts: %d", o.Restarts)
	}
}

func TestOracleSeqMonotone(t *testing.T) {
	p := loopCallProgram(t)
	o := NewOracle(p)
	var d Dyn
	for i := uint64(0); i < 1000; i++ {
		o.Step(&d)
		if d.Seq != i {
			t.Fatalf("seq = %d, want %d", d.Seq, i)
		}
	}
}

func TestOracleRestartOnEmptyStackReturn(t *testing.T) {
	b := program.NewBuilder(base)
	b.Func("f").Block("e").Ret()
	p, err := b.Build("f")
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(p)
	var d Dyn
	o.Step(&d)
	if d.NextPC != p.Entry {
		t.Fatalf("bare ret should restart at entry, got %v", d.NextPC)
	}
	if o.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", o.Restarts)
	}
}

func TestStreamReplayAfterSquash(t *testing.T) {
	p := loopCallProgram(t)
	s := NewStream(p)
	// Fetch forward.
	var first [50]Dyn
	for i := uint64(0); i < 50; i++ {
		first[i] = *s.Get(i)
	}
	// Squash back to 10 and re-fetch: records must be identical.
	for i := uint64(10); i < 50; i++ {
		d := s.Get(i)
		if *d != first[i] {
			t.Fatalf("replay mismatch at %d: %+v vs %+v", i, *d, first[i])
		}
	}
	if s.Generated() != 50 {
		t.Fatalf("Generated = %d, want 50", s.Generated())
	}
}

func TestStreamReleasePanicsBelowFloor(t *testing.T) {
	p := loopCallProgram(t)
	s := NewStream(p)
	s.Get(20)
	s.Release(10)
	defer func() {
		if recover() == nil {
			t.Error("Get below floor did not panic")
		}
	}()
	s.Get(5)
}

func TestStreamWindowOverflowPanics(t *testing.T) {
	p := loopCallProgram(t)
	s := NewStream(p)
	defer func() {
		if recover() == nil {
			t.Error("Get beyond window did not panic")
		}
	}()
	s.Get(DefaultStreamCap + 1)
}

func TestSynthDoesNotPerturbOracle(t *testing.T) {
	p := loopCallProgram(t)
	s1 := NewStream(p)
	s2 := NewStream(p)
	syn := NewSynth(p)
	for i := uint64(0); i < 200; i++ {
		d1 := *s1.Get(i)
		// Interleave wrong-path synthesis against stream 2.
		if si := syn.At(base.Plus(int(i) % p.Len())); si != nil && si.Class.IsMemory() {
			syn.MemAddr(si)
		}
		d2 := *s2.Get(i)
		if d1 != d2 {
			t.Fatalf("synth perturbed oracle at %d", i)
		}
	}
}

func TestSynthMemAddrStable(t *testing.T) {
	b := program.NewBuilder(base)
	f := b.Func("f")
	f.Block("e").
		Load(1, 0, program.SeqStream{Base: program.DataBase, Size: 1 << 12, Stride: 8}).
		JumpTo("e")
	p, err := b.Build("f")
	if err != nil {
		t.Fatal(err)
	}
	syn := NewSynth(p)
	ld := p.MustAt(base)
	a := syn.MemAddr(ld)
	if a < program.DataBase || a >= program.DataBase+1<<12 {
		t.Fatalf("synth address out of model bounds: %v", a)
	}
	if syn.MemAddr(p.MustAt(base.Plus(1))) != 0 {
		t.Error("non-memory instruction should synth addr 0")
	}
}

func TestDeepRecursionBounded(t *testing.T) {
	// A function that always recurses would blow the stack; the oracle
	// resets at MaxCallDepth. Build bounded recursion instead and check
	// depth tracks.
	b := program.NewBuilder(base)
	m := b.Func("main")
	m.Block("loop").CallTo("rec").JumpTo("loop")
	f := b.Func("rec")
	e := f.Block("e")
	e.CondTo(program.Loop{Trip: 8}, "again")
	e.Ret()
	again := f.Block("again")
	again.CallTo("rec")
	again.Ret()
	p, err := b.Build("main")
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(p)
	var d Dyn
	maxDepth := 0
	for i := 0; i < 10000; i++ {
		o.Step(&d)
		if o.Depth() > maxDepth {
			maxDepth = o.Depth()
		}
	}
	if maxDepth < 3 {
		t.Errorf("expected recursion depth >= 3, got %d", maxDepth)
	}
	if o.Restarts != 0 {
		t.Errorf("bounded recursion should not restart (got %d)", o.Restarts)
	}
}
