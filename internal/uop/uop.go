// Package uop defines the dynamic micro-operation record that flows from
// the front-end through the back-end, and the flush taxonomy both sides
// share. It exists so frontend, core (ELF), backend, and pipeline can
// exchange instructions without import cycles.
package uop

import (
	"elfetch/internal/bpred"
	"elfetch/internal/isa"
	"elfetch/internal/program"
)

// Uop is one in-flight dynamic instruction.
type Uop struct {
	// Seq is the correct-path sequence number, valid when !WrongPath.
	Seq uint64
	// FetchID is a unique, monotonically increasing identity across both
	// correct- and wrong-path fetches (age comparisons).
	FetchID uint64

	PC isa.Addr
	SI *program.Static

	// WrongPath marks instructions fetched past an unresolved
	// misprediction; they consume resources but never commit.
	WrongPath bool

	// Coupled marks instructions fetched in ELF coupled mode.
	Coupled bool
	// CkptBound: for coupled instructions, whether the branch-prediction
	// checkpoint has been bound from FAQ information (Section IV-D1).
	// Unbound instructions may not trigger an immediate flush.
	CkptBound bool

	// Front-end prediction.
	PredTaken  bool
	PredTarget isa.Addr // predicted next PC when PredTaken

	// Architectural outcome (oracle for correct path; for wrong-path
	// instructions resolution equals prediction).
	ActTaken  bool
	ActTarget isa.Addr // actual next PC
	MemAddr   isa.Addr

	// Predictor bookkeeping captured at prediction time. HasTage/HasIT
	// say whether the respective payloads are valid; HasCkpt whether
	// HistCp/RASCp were captured (decoupled-fetched branches always
	// capture them; coupled-fetched ones may not — Section IV-D1).
	TagePred bpred.TAGEPred
	ITPred   bpred.ITTAGEPred
	HasTage  bool
	HasIT    bool
	HistCp   bpred.History       // speculative history before this branch
	RASCp    bpred.RASCheckpoint // decoupled RAS checkpoint
	HasCkpt  bool
	// CoupledPredUsed marks branches whose direction/target came from a
	// coupled (U-ELF) predictor, for the update policy of Section IV-D3.
	CoupledPredUsed bool
	// CoupledIdx is the ELF period-relative instruction index of a
	// coupled-fetched instruction (-1 otherwise); divergence recovery
	// maps bitvector indexes back to in-flight instructions with it.
	// CoupledGen disambiguates periods — indexes repeat every period, so
	// lookups must match the generation too.
	CoupledIdx int
	CoupledGen uint64
	// FromSeqMiss marks instructions materialised from a sequential-guess
	// FAQ block (BTB miss): decode applies its misfetch recovery rules.
	FromSeqMiss bool
}

// IsBranch reports whether the uop is a control-flow instruction.
func (u *Uop) IsBranch() bool { return u.SI.Class.IsBranch() }

// Mispredicted reports whether the front-end prediction disagrees with the
// architectural outcome. Only meaningful for correct-path branches.
func (u *Uop) Mispredicted() bool {
	if !u.IsBranch() {
		return false
	}
	if u.PredTaken != u.ActTaken {
		return true
	}
	return u.PredTaken && u.PredTarget != u.ActTarget
}

// FlushKind classifies pipeline flushes for statistics and for the
// restart-mode decision (every kind restarts the front-end; ELF enters
// coupled mode on all of them).
type FlushKind uint8

const (
	// FlushBranch: conditional direction misprediction.
	FlushBranch FlushKind = iota
	// FlushTarget: indirect/return target misprediction.
	FlushTarget
	// FlushMemOrder: load-store RAW order violation.
	FlushMemOrder
	// FlushFrontend: decode-time misfetch recovery (BTB miss/stale);
	// squashes only front-end stages, not the back-end window.
	FlushFrontend
	// NumFlushKinds is the count of flush kinds.
	NumFlushKinds
)

func (k FlushKind) String() string {
	switch k {
	case FlushBranch:
		return "branch"
	case FlushTarget:
		return "target"
	case FlushMemOrder:
		return "memorder"
	case FlushFrontend:
		return "frontend"
	default:
		return "?"
	}
}
