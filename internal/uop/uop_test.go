package uop

import (
	"testing"

	"elfetch/internal/isa"
	"elfetch/internal/program"
)

func branchUop(class isa.Class) Uop {
	return Uop{SI: &program.Static{Class: class, Target: 0x100}}
}

func TestMispredicted(t *testing.T) {
	u := branchUop(isa.CondBranch)
	u.PredTaken, u.ActTaken = false, false
	if u.Mispredicted() {
		t.Error("agreeing not-taken flagged")
	}
	u.ActTaken = true
	if !u.Mispredicted() {
		t.Error("direction mismatch missed")
	}
	u.PredTaken = true
	u.PredTarget, u.ActTarget = 0x100, 0x100
	if u.Mispredicted() {
		t.Error("agreeing taken flagged")
	}
	u.ActTarget = 0x200
	if !u.Mispredicted() {
		t.Error("target mismatch missed")
	}
}

func TestMispredictedNonBranch(t *testing.T) {
	u := Uop{SI: &program.Static{Class: isa.ALU}}
	u.PredTaken, u.ActTaken = false, true // garbage fields must not matter
	if u.Mispredicted() {
		t.Error("non-branch flagged as mispredicted")
	}
}

func TestFlushKindStrings(t *testing.T) {
	for k, want := range map[FlushKind]string{
		FlushBranch: "branch", FlushTarget: "target",
		FlushMemOrder: "memorder", FlushFrontend: "frontend",
	} {
		if k.String() != want {
			t.Errorf("%d -> %q, want %q", k, k.String(), want)
		}
	}
	if FlushKind(99).String() != "?" {
		t.Error("out-of-range flush kind")
	}
}
