package workload

import (
	"fmt"

	"elfetch/internal/isa"
	"elfetch/internal/program"
	"elfetch/internal/xrand"
)

// Generate builds a synthetic program from a profile and a seed. The same
// (profile, seed) pair always yields the identical program.
//
// Structure: a driver function loops forever calling level-0 functions in a
// traversal order set by HotFuncs/ColdEvery; each function is a loop over a
// few body blocks containing the profile's instruction mix, with calls
// descending a levelled DAG (so static call depth is bounded) and optional
// self-recursive functions.
func Generate(p Profile, seed uint64) (*program.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p = p.withDefaults()
	g := &generator{p: p, r: xrand.New(seed), b: program.NewBuilder(CodeBase)}
	return g.build()
}

// MustGenerate is Generate that panics on error (profiles in the registry
// are validated by tests).
func MustGenerate(p Profile, seed uint64) *program.Program {
	prog, err := Generate(p, seed)
	if err != nil {
		panic(err)
	}
	return prog
}

type generator struct {
	p Profile
	r xrand.Rand
	b *program.Builder

	// regs rotates destination registers to create tunable dependence
	// chains.
	lastDest isa.Reg

	aliasSlots []program.FixedSlot
}

const driverName = "driver"

func fname(level, i int) string { return fmt.Sprintf("f_%d_%d", level, i) }
func recName(i int) string      { return fmt.Sprintf("rec_%d", i) }

func (g *generator) build() (*program.Program, error) {
	p := g.p

	// Shared alias slots for the store→load memory-order pathology.
	for i := 0; i < p.AliasSlots; i++ {
		g.aliasSlots = append(g.aliasSlots, program.FixedSlot{Addr: program.DataBase + isa.Addr(0x8000+i*8)})
	}

	// Distribute functions over levels: level 0 gets the most, deeper
	// levels fewer. Calls go strictly to deeper levels.
	levels := p.CallDepth
	if levels < 1 {
		levels = 1
	}
	perLevel := make([]int, levels)
	remaining := p.Funcs
	for l := 0; l < levels; l++ {
		n := remaining / 2
		if l == levels-1 || n == 0 {
			n = remaining
		}
		perLevel[l] = n
		remaining -= n
	}

	nRec := 0
	if p.Recursive {
		nRec = 1 + p.Funcs/8
	}

	// Driver first so it sits at the entry address.
	g.emitDriver(perLevel[0], nRec)

	for l := 0; l < levels; l++ {
		for i := 0; i < perLevel[l]; i++ {
			g.emitFunc(l, i, levels, perLevel)
		}
	}
	for i := 0; i < nRec; i++ {
		g.emitRecursive(i)
	}

	return g.b.Build(driverName)
}

// emitDriver builds the top-level infinite loop. With HotFuncs set, it
// cycles over the hot prefix and occasionally (ColdEvery) takes a detour
// over a cold function; otherwise it sweeps all of level 0 uniformly —
// which, with enough functions, defeats the BTB and I-cache (server 1).
func (g *generator) emitDriver(level0, nRec int) {
	f := g.b.Func(driverName)
	hot := g.p.HotFuncs
	if hot <= 0 || hot > level0 {
		hot = level0
	}
	loop := f.Block("loop")
	for i := 0; i < hot; i++ {
		loop.CallTo(fname(0, i))
	}
	if nRec > 0 {
		for i := 0; i < nRec; i++ {
			loop.CallTo(recName(i))
		}
	}
	if hot < level0 && g.p.ColdEvery > 0 {
		// The backedge is taken ColdEvery-1 of ColdEvery times; the
		// fall-through visits the cold tail, then loops.
		loop.CondTo(program.Loop{Trip: uint64(g.p.ColdEvery)}, "loop")
		for i := hot; i < level0; i++ {
			loop.CallTo(fname(0, i))
		}
	}
	loop.JumpTo("loop")
}

// nextDest returns a destination register, threading a dependence from the
// previous instruction with probability ChainFrac.
func (g *generator) srcReg() isa.Reg {
	if g.lastDest != isa.RegZero && g.r.Bool(g.p.ChainFrac) {
		return g.lastDest
	}
	return isa.Reg(1 + g.r.Intn(8))
}

func (g *generator) destReg() isa.Reg {
	d := isa.Reg(1 + g.r.Intn(24))
	g.lastDest = d
	return d
}

// emitBody fills a block with the profile's instruction mix: ALU/MulDiv/
// SIMD, loads, and stores. Calls are emitted only in function prologues
// (emitFunc), never inside loop bodies — otherwise nested call trees inside
// nested loops would multiply and a single function invocation could run for
// hundreds of thousands of dynamic instructions.
func (g *generator) emitBody(blk *program.BlockBuilder, n int) {
	p := g.p
	for i := 0; i < n; i++ {
		switch {
		case p.LoadEvery > 0 && g.r.Intn(p.LoadEvery) == 0:
			blk.Load(g.destReg(), g.srcReg(), g.p.pickMem(&g.r, false))
		case p.StoreEvery > 0 && g.r.Intn(p.StoreEvery) == 0:
			blk.Store(g.srcReg(), isa.RegZero, g.p.pickMem(&g.r, true))
		case p.MulDivFrac > 0 && g.r.Bool(p.MulDivFrac):
			blk.MulDiv(g.destReg(), g.srcReg(), g.srcReg())
		case p.SIMDFrac > 0 && g.r.Bool(p.SIMDFrac):
			blk.SIMD(g.destReg(), g.srcReg(), g.srcReg())
		default:
			blk.ALU(g.destReg(), g.srcReg(), g.srcReg())
		}
	}
}

// emitFunc builds one levelled function: an optional alias-store prologue,
// a loop over body blocks with forward conditional diamonds and an optional
// indirect switch, then an alias-load epilogue and return.
//
// The alias prologue/epilogue places a store to a shared slot in the callee
// and a load from the same slot in the epilogue of the *caller-visible*
// path (right before return), so after RET-ELF speculates across the
// return, a younger load can issue before the older store drains — the
// memory-order-violation raw material (Section VI-B, milc).
func (g *generator) emitFunc(level, idx, levels int, perLevel []int) {
	p := g.p
	f := g.b.Func(fname(level, idx))
	nBlocks := 1 + g.r.Intn(p.BlocksPerFunc*2-1)

	// Prologue: alias store, then a bounded number of calls to deeper
	// levels. Calls live here — executed once per invocation — so the
	// dynamic size of an invocation stays bounded (see emitBody).
	entry := f.Block("entry")
	if len(g.aliasSlots) > 0 {
		slot := g.aliasSlots[g.r.Intn(len(g.aliasSlots))]
		entry.Store(g.srcReg(), isa.RegZero, slot)
	}
	if p.CallEvery > 0 && level+1 < levels && perLevel[level+1] > 0 {
		// Expected call count scales inversely with CallEvery, capped.
		want := minInt(maxInt((p.BlocksPerFunc*p.BlockInsts)/p.CallEvery, 0), 4)
		if want == 0 && g.r.Intn(p.CallEvery) == 0 {
			want = 1
		}
		for c := 0; c < want; c++ {
			entry.CallTo(fname(level+1, g.r.Intn(perLevel[level+1])))
		}
	}
	entry.JumpTo("body0")

	for bi := 0; bi < nBlocks; bi++ {
		blk := f.Block(fmt.Sprintf("body%d", bi))
		insts := 1 + g.r.Intn(p.BlockInsts*2-1)
		// Interleave conditionals within the block by splitting the
		// body around them: emit runs, then a conditional skipping to
		// the next block.
		run := insts
		g.emitBody(blk, run)
		if p.CondEvery > 0 && g.r.Intn(maxInt(p.CondEvery/maxInt(insts, 1), 1)) == 0 {
			// Forward conditional skipping the rest of this block
			// chain — a diamond.
			target := fmt.Sprintf("body%d", minInt(bi+1+g.r.Intn(2), nBlocks))
			blk.CondTo(g.p.pickBehavior(&g.r), target)
			g.emitBody(blk, 1+g.r.Intn(3))
		}
		if p.IndirectEvery > 0 && g.r.Intn(maxInt(p.IndirectEvery/maxInt(insts, 1), 1)) == 0 && nBlocks-bi-1 >= 2 {
			// Indirect switch over a few following blocks.
			nt := minInt(p.IndirectTargets, nBlocks-bi-1)
			labels := make([]string, nt)
			for k := 0; k < nt; k++ {
				labels[k] = fmt.Sprintf("body%d", bi+1+k)
			}
			blk.IndirectTo(g.p.pickIndirect(&g.r), labels...)
		}
	}

	// Loop block: run the bodies LoopTrip times.
	tail := f.Block(fmt.Sprintf("body%d", nBlocks))
	trip := uint64(2 + g.r.Intn(p.LoopTrip*2))
	tail.CondTo(program.Loop{Trip: trip}, "body0")
	if len(g.aliasSlots) > 0 {
		slot := g.aliasSlots[g.r.Intn(len(g.aliasSlots))]
		tail.Load(g.destReg(), isa.RegZero, slot)
	}
	tail.Ret()
}

// emitRecursive builds a self-recursive function with expected depth
// RecDepth: recurse while the Loop behaviour is taken.
func (g *generator) emitRecursive(idx int) {
	p := g.p
	f := g.b.Func(recName(idx))
	e := f.Block("entry")
	g.emitBody(e, maxInt(p.BlockInsts/2, 2))
	if len(g.aliasSlots) > 0 {
		slot := g.aliasSlots[g.r.Intn(len(g.aliasSlots))]
		e.Store(g.srcReg(), isa.RegZero, slot)
	}
	e.CondTo(program.Loop{Trip: uint64(p.RecDepth)}, "down")
	e.JumpTo("unwind")
	down := f.Block("down")
	down.CallTo(recName(idx))
	down.JumpTo("unwind")
	u := f.Block("unwind")
	g.emitBody(u, maxInt(p.BlockInsts/2, 2))
	if len(g.aliasSlots) > 0 {
		slot := g.aliasSlots[g.r.Intn(len(g.aliasSlots))]
		u.Load(g.destReg(), isa.RegZero, slot)
	}
	u.Ret()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
