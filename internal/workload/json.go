package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"elfetch/internal/program"
	"elfetch/internal/xrand"
)

// jsonProfile is the external (JSON) shape of a workload definition, so
// users can run custom workloads without writing Go:
//
//	{
//	  "name": "my-kernel",
//	  "seed": 7,
//	  "funcs": 24, "blocksPerFunc": 4, "blockInsts": 8,
//	  "mix": {"loops": 0.4, "patterned": 0.1, "biased": 0.3, "chaotic": 0.2,
//	          "biasP": 0.95, "chaosP": 0.55},
//	  "condEvery": 7, "loopTrip": 12,
//	  "callDepth": 3, "callEvery": 24,
//	  "recursive": true, "recDepth": 8,
//	  "indirectEvery": 40, "indirectTargets": 6, "indirectKind": "history",
//	  "loadEvery": 5, "storeEvery": 11,
//	  "memBytes": 16384, "memKind": "random",
//	  "mem2Kind": "chase", "mem2Frac": 0.05, "mem2Bytes": 8388608,
//	  "aliasSlots": 0, "chainFrac": 0.35,
//	  "mulDivFrac": 0.02, "simdFrac": 0
//	}
//
// Omitted fields take the generator defaults.
type jsonProfile struct {
	Name string `json:"name"`
	Seed uint64 `json:"seed"`

	Funcs         int `json:"funcs"`
	BlocksPerFunc int `json:"blocksPerFunc"`
	BlockInsts    int `json:"blockInsts"`
	HotFuncs      int `json:"hotFuncs"`
	ColdEvery     int `json:"coldEvery"`

	Mix struct {
		Loops     float64 `json:"loops"`
		Patterned float64 `json:"patterned"`
		Biased    float64 `json:"biased"`
		Chaotic   float64 `json:"chaotic"`
		BiasP     float64 `json:"biasP"`
		ChaosP    float64 `json:"chaosP"`
	} `json:"mix"`
	CondEvery int `json:"condEvery"`
	LoopTrip  int `json:"loopTrip"`

	CallDepth int  `json:"callDepth"`
	CallEvery int  `json:"callEvery"`
	Recursive bool `json:"recursive"`
	RecDepth  int  `json:"recDepth"`

	IndirectEvery   int    `json:"indirectEvery"`
	IndirectTargets int    `json:"indirectTargets"`
	IndirectKind    string `json:"indirectKind"`

	LoadEvery  int     `json:"loadEvery"`
	StoreEvery int     `json:"storeEvery"`
	MemBytes   uint64  `json:"memBytes"`
	MemKind    string  `json:"memKind"`
	Mem2Kind   string  `json:"mem2Kind"`
	Mem2Frac   float64 `json:"mem2Frac"`
	Mem2Bytes  uint64  `json:"mem2Bytes"`
	AliasSlots int     `json:"aliasSlots"`

	ChainFrac  float64 `json:"chainFrac"`
	MulDivFrac float64 `json:"mulDivFrac"`
	SIMDFrac   float64 `json:"simdFrac"`
}

var memKinds = map[string]MemPattern{
	"": MemStream, "stream": MemStream, "random": MemRandom,
	"chase": MemChase, "frame": MemFrame,
}

var indirectKinds = map[string]IndirectKind{
	"": IndirectMono, "mono": IndirectMono, "roundrobin": IndirectRoundRobin,
	"skewed": IndirectSkewed, "history": IndirectHistory, "random": IndirectRandom,
}

// FromJSON parses a workload definition and generates its program. The
// returned name is the definition's (or "custom" if unset).
func FromJSON(r io.Reader) (string, *program.Program, error) {
	var j jsonProfile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return "", nil, fmt.Errorf("workload: parsing JSON profile: %w", err)
	}
	mk, ok := memKinds[j.MemKind]
	if !ok {
		return "", nil, fmt.Errorf("workload: unknown memKind %q", j.MemKind)
	}
	mk2, ok := memKinds[j.Mem2Kind]
	if !ok {
		return "", nil, fmt.Errorf("workload: unknown mem2Kind %q", j.Mem2Kind)
	}
	ik, ok := indirectKinds[j.IndirectKind]
	if !ok {
		return "", nil, fmt.Errorf("workload: unknown indirectKind %q", j.IndirectKind)
	}
	p := Profile{
		Funcs: j.Funcs, BlocksPerFunc: j.BlocksPerFunc, BlockInsts: j.BlockInsts,
		HotFuncs: j.HotFuncs, ColdEvery: j.ColdEvery,
		Mix: BranchMix{
			Loops: j.Mix.Loops, Patterned: j.Mix.Patterned,
			Biased: j.Mix.Biased, Chaotic: j.Mix.Chaotic,
			BiasP: j.Mix.BiasP, ChaosP: j.Mix.ChaosP,
		},
		CondEvery: j.CondEvery, LoopTrip: j.LoopTrip,
		CallDepth: j.CallDepth, CallEvery: j.CallEvery,
		Recursive: j.Recursive, RecDepth: j.RecDepth,
		IndirectEvery: j.IndirectEvery, IndirectTargets: j.IndirectTargets, IndirectKind: ik,
		LoadEvery: j.LoadEvery, StoreEvery: j.StoreEvery,
		MemBytes: j.MemBytes, MemKind: mk,
		Mem2Kind: mk2, Mem2Frac: j.Mem2Frac, Mem2Bytes: j.Mem2Bytes,
		AliasSlots: j.AliasSlots,
		ChainFrac:  j.ChainFrac, MulDivFrac: j.MulDivFrac, SIMDFrac: j.SIMDFrac,
	}
	seed := j.Seed
	if seed == 0 {
		seed = xrand.Mix(0xC05703, hashName(j.Name))
	}
	prog, err := Generate(p, seed)
	if err != nil {
		return "", nil, err
	}
	name := j.Name
	if name == "" {
		name = "custom"
	}
	return name, prog, nil
}
