package workload

import (
	"strings"
	"testing"

	"elfetch/internal/trace"
)

const sampleJSON = `{
  "name": "custom-kernel",
  "funcs": 8, "blockInsts": 6,
  "mix": {"loops": 0.5, "chaotic": 0.5, "chaosP": 0.5},
  "recursive": true, "recDepth": 5,
  "indirectEvery": 30, "indirectTargets": 4, "indirectKind": "history",
  "memBytes": 8192, "memKind": "random"
}`

func TestFromJSONRuns(t *testing.T) {
	name, p, err := FromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom-kernel" || p.Len() == 0 {
		t.Fatalf("name=%q len=%d", name, p.Len())
	}
	o := trace.NewOracle(p)
	var d trace.Dyn
	for i := 0; i < 30_000; i++ {
		o.Step(&d)
	}
	if o.Restarts != 0 {
		t.Errorf("oracle restarted %d times", o.Restarts)
	}
}

func TestFromJSONDeterministicForSameName(t *testing.T) {
	_, p1, err := FromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	_, p2, err := FromJSON(strings.NewReader(sampleJSON))
	if err != nil {
		t.Fatal(err)
	}
	if p1.Len() != p2.Len() {
		t.Error("same JSON produced different programs")
	}
}

func TestFromJSONErrors(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"bogus": 1}`,
		"bad memKind":   `{"memKind": "quantum"}`,
		"bad indirect":  `{"indirectKind": "psychic"}`,
		"bad chainFrac": `{"chainFrac": 2.0}`,
	}
	for label, js := range cases {
		if _, _, err := FromJSON(strings.NewReader(js)); err == nil {
			t.Errorf("%s: accepted", label)
		}
	}
}

func TestFromJSONDefaultName(t *testing.T) {
	name, _, err := FromJSON(strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if name != "custom" {
		t.Errorf("default name = %q", name)
	}
}

func TestCustomEntryWrapsProgram(t *testing.T) {
	_, p, err := FromJSON(strings.NewReader(`{"name":"x","funcs":4}`))
	if err != nil {
		t.Fatal(err)
	}
	e := Custom("x", p)
	if e.Program() != p {
		t.Error("Custom did not preserve the program")
	}
	if e.Suite != "custom" {
		t.Errorf("suite %q", e.Suite)
	}
}
